//! TnB — a Rust reproduction of *"TnB: Resolving Collisions in LoRa based on
//! the Peak Matching Cost and Block Error Correction"* (CoNEXT 2022).
//!
//! This facade crate re-exports the whole workspace so applications can
//! depend on a single crate:
//!
//! - [`dsp`]: FFT, peak finding, smoothing, statistics.
//! - [`phy`]: the complete LoRa PHY (chirp modulation, Gray mapping,
//!   diagonal interleaver, (8,4) Hamming code, whitening, header, CRC) with
//!   a full transmitter and a standard single-packet receiver.
//! - [`channel`]: AWGN / CFO / timing impairments, Rayleigh and ETU fading,
//!   and the multi-packet trace synthesizer.
//! - [`core`]: the paper's contribution — packet detection and
//!   synchronization, **Thrive** peak assignment and **BEC** block error
//!   correction, composed into the TnB receiver.
//! - [`baselines`]: the compared schemes (standard LoRa decoder, CIC,
//!   AlignTrack*) behind a common trait.
//! - [`sim`]: deployments, traffic generation and metrics used by the
//!   experiment harness.
//! - [`gateway`]: the networked gateway daemon — framed IQ over TCP into
//!   per-stream streaming receivers, decoded packets out as JSON lines.
//!
//! # Quick start
//!
//! ```
//! use tnb::phy::{LoRaParams, SpreadingFactor, CodingRate, Transmitter};
//! use tnb::core::TnbReceiver;
//! use tnb::channel::TraceBuilder;
//!
//! let params = LoRaParams::new(SpreadingFactor::SF8, CodingRate::CR4);
//! let payload = b"hello collisions";
//! let tx = Transmitter::new(params);
//! let samples = tx.transmit(payload);
//!
//! // One packet at 10 dB SNR over an AWGN channel:
//! let mut trace = TraceBuilder::new(params, 12345);
//! trace.add_packet_samples(&samples, 1000, 0.0, 10.0);
//! let rx = TnbReceiver::new(params);
//! let decoded = rx.decode(trace.build().samples());
//! assert_eq!(decoded.len(), 1);
//! assert_eq!(decoded[0].payload, payload);
//! ```

pub use tnb_baselines as baselines;
pub use tnb_channel as channel;
pub use tnb_core as core;
pub use tnb_dsp as dsp;
pub use tnb_gateway as gateway;
pub use tnb_phy as phy;
pub use tnb_sim as sim;
