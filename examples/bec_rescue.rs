//! Block Error Correction in isolation: corrupt two symbols of a CR-4
//! code block — beyond the default Hamming decoder — and watch BEC
//! recover the data via companions and the packet CRC.
//!
//! Run with: `cargo run --release --example bec_rescue`

use tnb::core::bec::{decode_header_with_bec, decode_payload_with_bec};
use tnb::phy::encoder::encode_packet_symbols;
use tnb::phy::hamming::{decode_default, encode};
use tnb::phy::params::{CodingRate, LoRaParams, SpreadingFactor};

fn main() {
    // --- Block level -----------------------------------------------------
    // The scenario of paper Fig. 2/Fig. 7: a CR-3 block with two corrupted
    // symbols (= two error columns).
    let cr = CodingRate::CR3;
    let data: Vec<u8> = vec![0x3, 0x5, 0x9, 0xC, 0x0, 0xF, 0x6, 0xA];
    let mut rows: Vec<u8> = data.iter().map(|&n| encode(n, cr)).collect();
    // Errors in columns 2 and 7 (1-indexed), row 7 hit in both.
    for (i, flips) in [0b00u8, 0b01, 0b10, 0b01, 0b10, 0b01, 0b11, 0b10]
        .iter()
        .enumerate()
    {
        if flips & 1 != 0 {
            rows[i] ^= 1 << 1; // column 2
        }
        if flips & 2 != 0 {
            rows[i] ^= 1 << 6; // column 7
        }
    }

    let default: Vec<u8> = rows.iter().map(|&r| decode_default(r, cr).nibble).collect();
    println!("true data        : {data:X?}");
    println!("default decoder  : {default:X?}  (row 7 mis-corrected)");
    let dec = tnb::core::bec::decode_block(&rows, cr);
    println!("BEC candidates   : {} blocks", dec.candidates.len());
    for (i, c) in dec.candidates.iter().enumerate() {
        let mark = if c == &data { "  <- true data" } else { "" };
        println!("  candidate {i}: {c:X?}{mark}");
    }

    // --- Packet level ----------------------------------------------------
    // Corrupt two payload symbols of a whole packet; the packet CRC picks
    // the right BEC-fixed combination.
    let params = LoRaParams::new(SpreadingFactor::SF8, CodingRate::CR4);
    let payload = b"rescued by BEC!!".to_vec();
    let mut symbols = encode_packet_symbols(&payload, &params);
    symbols[8] = (symbols[8] + 100) % 256; // corrupt payload symbols 0 and 5
    symbols[13] = (symbols[13] + 77) % 256;
    let (header, extras, _) = decode_header_with_bec(&symbols, &params).expect("header decodes");
    let d = decode_payload_with_bec(&symbols[8..], &header, &extras, &params)
        .expect("BEC repairs the packet");
    println!(
        "\npacket level: decoded {:?} with {} rescued codewords, {} CRC checks",
        String::from_utf8_lossy(&d.payload),
        d.stats.rescued_codewords,
        d.stats.crc_checks,
    );
    assert_eq!(d.payload, payload);
}
