//! Collision resolution: three nodes transmit overlapping packets; TnB
//! (Thrive + BEC) recovers all of them while the standard decoder cannot.
//!
//! Run with: `cargo run --release --example collision_resolution`

use tnb::baselines::SchemeKind;
use tnb::channel::trace::{PacketConfig, TraceBuilder};
use tnb::phy::{CodingRate, LoRaParams, SpreadingFactor};

fn main() {
    let params = LoRaParams::new(SpreadingFactor::SF8, CodingRate::CR3);
    let l = params.samples_per_symbol();

    // Three nodes with different timing offsets, CFOs and powers — the
    // features Thrive's matching cost exploits.
    let payloads: Vec<Vec<u8>> = (1..=3u8)
        .map(|i| format!("node {i} says hi!").into_bytes())
        .collect();
    let mut builder = TraceBuilder::new(params, 99);
    let offsets = [5_000, 5_000 + 13 * l + 444, 5_000 + 26 * l + 1717];
    let snrs = [13.0f32, 9.0, 11.0];
    let cfos = [1200.0f64, -2700.0, 3600.0];
    for i in 0..3 {
        builder.add_packet(
            &payloads[i],
            PacketConfig {
                start_sample: offsets[i],
                snr_db: snrs[i],
                cfo_hz: cfos[i],
                ..Default::default()
            },
        );
    }
    let trace = builder.build();

    for kind in [SchemeKind::LoRaPhy, SchemeKind::Cic, SchemeKind::Tnb] {
        let scheme = kind.build(params);
        let decoded = scheme.decode_single(trace.samples());
        let ok = decoded
            .iter()
            .filter(|d| payloads.iter().any(|p| p == &d.payload))
            .count();
        println!("{:<12} decoded {ok}/3 collided packets", scheme.name());
    }
}
