//! Network-scale simulation: a full deployment (19 indoor nodes) offers
//! random traffic and every scheme decodes the same trace — a miniature
//! of the paper's Figs. 12–14.
//!
//! Run with: `cargo run --release --example network_simulation`

use tnb::baselines::SchemeKind;
use tnb::phy::{CodingRate, LoRaParams, SpreadingFactor};
use tnb::sim::{build_experiment, run_scheme, Deployment, ExperimentConfig};

fn main() {
    let params = LoRaParams::new(SpreadingFactor::SF8, CodingRate::CR4);
    let cfg = ExperimentConfig {
        load_pps: 15.0,
        duration_s: 2.0,
        seed: 2024,
        ..ExperimentConfig::new(params, Deployment::Indoor)
    };
    println!(
        "deployment {} ({} nodes), {} pkt/s offered for {} s",
        cfg.deployment.name(),
        cfg.deployment.node_count(),
        cfg.load_pps,
        cfg.duration_s
    );
    let built = build_experiment(&cfg);
    println!("{} packets transmitted\n", built.schedule.len());

    println!(
        "{:<12} {:>8} {:>12} {:>6}",
        "scheme", "decoded", "throughput", "PRR"
    );
    for kind in [
        SchemeKind::Tnb,
        SchemeKind::Thrive,
        SchemeKind::Cic,
        SchemeKind::AlignTrack,
        SchemeKind::LoRaPhy,
    ] {
        let r = run_scheme(kind.build(params).as_ref(), &built);
        println!(
            "{:<12} {:>8} {:>10.1}/s {:>6.2}",
            r.scheme,
            r.matched.correct.len(),
            r.throughput_pps,
            r.prr
        );
    }
}
