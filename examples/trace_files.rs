//! Trace files: write a synthetic multi-node trace in the paper's USRP
//! 16-bit I/Q format, read it back, and decode it — the same workflow as
//! the paper's published artifact (trace file in, packet list out).
//!
//! Run with: `cargo run --release --example trace_files`

use tnb::baselines::SchemeKind;
use tnb::channel::io::{load_trace, save_trace};
use tnb::phy::{CodingRate, LoRaParams, SpreadingFactor};
use tnb::sim::traffic::parse_payload;
use tnb::sim::{build_experiment, Deployment, ExperimentConfig};

fn main() {
    let params = LoRaParams::new(SpreadingFactor::SF8, CodingRate::CR3);
    let cfg = ExperimentConfig {
        load_pps: 8.0,
        duration_s: 2.0,
        seed: 77,
        ..ExperimentConfig::new(params, Deployment::Indoor)
    };
    let built = build_experiment(&cfg);

    let path = std::env::temp_dir().join("indoor-SF8-CR3.iq16");
    save_trace(&path, built.trace.samples()).expect("write trace");
    println!(
        "wrote {} ({:.1} MB, {} packets hidden inside)",
        path.display(),
        (built.trace.len() * 4) as f64 / 1e6,
        built.schedule.len()
    );

    let samples = load_trace(&path).expect("read trace");
    let scheme = SchemeKind::Tnb.build(params);
    let decoded = scheme.decode_single(&samples);
    println!("\nnode  seq   SNR(dB)  start(s)");
    let mut correct = 0;
    for d in &decoded {
        if let Some((node, seq)) = parse_payload(&d.payload) {
            println!(
                "{node:<5} {seq:<5} {:<8.1} {:.4}",
                d.snr_db,
                d.start / params.sample_rate()
            );
            correct += 1;
        }
    }
    println!("\n- TnB decoded {correct} pkts from the file -");
    std::fs::remove_file(&path).ok();
}
