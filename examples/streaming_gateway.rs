//! Streaming gateway: decode packets from a live sample stream, chunk by
//! chunk, the way a real gateway receives I/Q from its radio front-end.
//!
//! Run with: `cargo run --release --example streaming_gateway`

use tnb::core::StreamingReceiver;
use tnb::phy::{CodingRate, LoRaParams, SpreadingFactor};
use tnb::sim::traffic::parse_payload;
use tnb::sim::{build_experiment, Deployment, ExperimentConfig};

fn main() {
    let params = LoRaParams::new(SpreadingFactor::SF8, CodingRate::CR4);
    let cfg = ExperimentConfig {
        load_pps: 6.0,
        duration_s: 3.0,
        seed: 11,
        ..ExperimentConfig::new(params, Deployment::Indoor)
    };
    let built = build_experiment(&cfg);
    println!(
        "streaming a {:.1}s trace with {} packets in 100 ms chunks...\n",
        cfg.duration_s,
        built.schedule.len()
    );

    let mut rx = StreamingReceiver::new(params);
    let chunk = 100_000; // 100 ms at 1 Msps
    let mut total = 0;
    for (k, c) in built.trace.samples().chunks(chunk).enumerate() {
        for d in rx.push(c) {
            let who = parse_payload(&d.payload)
                .map(|(n, s)| format!("node {n} seq {s}"))
                .unwrap_or_else(|| "unknown".into());
            println!(
                "t={:>5.2}s  emitted {who} (started {:.3}s, SNR {:.1} dB)",
                (k + 1) as f64 * chunk as f64 / 1e6,
                d.start / params.sample_rate(),
                d.snr_db
            );
            total += 1;
        }
    }
    total += rx.finish().len();
    println!(
        "\n{total}/{} packets decoded from the stream",
        built.schedule.len()
    );
}
