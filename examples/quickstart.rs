//! Quickstart: encode a LoRa packet, put it on a noisy channel, and
//! decode it with the TnB receiver.
//!
//! Run with: `cargo run --release --example quickstart`

use tnb::channel::trace::TraceBuilder;
use tnb::core::TnbReceiver;
use tnb::phy::{CodingRate, LoRaParams, SpreadingFactor, Transmitter};

fn main() {
    // The paper's default configuration: 125 kHz bandwidth, OSF 8.
    let params = LoRaParams::new(SpreadingFactor::SF8, CodingRate::CR4);
    let payload = b"hello, LoRa PHY!";

    // 1. Transmit: payload → CRC → whitening → Hamming + interleaving →
    //    Gray-mapped chirps, preceded by the 12.25-symbol preamble.
    let tx = Transmitter::new(params);
    let wave = tx.transmit(payload);
    println!(
        "packet: {} payload bytes -> {} data symbols, {:.1} ms airtime",
        payload.len(),
        tx.data_symbols(payload).len(),
        tx.packet_airtime(payload.len()) * 1e3,
    );

    // 2. Channel: place the modulated samples in a trace at 6 dB SNR
    //    with a CFO typical of a commodity node.
    let mut builder = TraceBuilder::new(params, 7);
    builder.add_packet_samples(&wave, 10_000, 2400.0, 6.0);
    let trace = builder.build();
    println!("trace: {} complex samples at 1 Msps", trace.len());

    // 3. Receive with TnB.
    let rx = TnbReceiver::new(params);
    let decoded = rx.decode(trace.samples());
    assert_eq!(decoded.len(), 1, "expected one decoded packet");
    let pkt = &decoded[0];
    println!(
        "decoded: {:?} at sample {:.0}, CFO {:.0} Hz, SNR {:.1} dB",
        String::from_utf8_lossy(&pkt.payload),
        pkt.start,
        pkt.cfo_cycles * params.bin_hz(),
        pkt.snr_db,
    );
    assert_eq!(pkt.payload, payload);
    println!("payload matches — success");
}
