//! Deterministic signal impairments: carrier frequency offset and
//! (fractional) timing offset.
//!
//! Commodity LoRa nodes have crystal-driven CFOs (the paper's simulations
//! draw them from ±4.88 kHz) and arbitrary transmit times, so a received
//! packet is offset by a real-valued number of samples. The integer part is
//! handled by packet placement in the trace; the fractional part is applied
//! here with a linear-interpolation resampler.

use tnb_dsp::Complex32;

/// Applies a carrier frequency offset of `cfo_hz` to `samples` (sample rate
/// `fs` Hz) in place: sample `n` is rotated by `e^{j2π·cfo·n/fs}`.
pub fn apply_cfo(samples: &mut [Complex32], cfo_hz: f64, fs: f64) {
    let step = 2.0 * std::f64::consts::PI * cfo_hz / fs;
    for (n, s) in samples.iter_mut().enumerate() {
        *s *= Complex32::from_phase(step * n as f64);
    }
}

/// Delays a signal by a fractional number of samples `frac` ∈ [0, 1) using
/// linear interpolation: `out[n] = (1−frac)·x[n] + frac·x[n−1]`.
///
/// Returns a vector one sample longer than the input (the delayed signal's
/// tail spills into one extra sample). An out-of-range or non-finite
/// `frac` is wrapped into [0, 1) — only the fractional part of a delay is
/// meaningful here (the integer part is packet placement) — so malformed
/// configuration degrades instead of panicking.
pub fn fractional_delay(samples: &[Complex32], frac: f32) -> Vec<Complex32> {
    let frac = if frac.is_finite() {
        frac.rem_euclid(1.0)
    } else {
        0.0
    };
    let (first, last) = match (samples.first(), samples.last()) {
        (Some(&f), Some(&l)) => (f, l),
        _ => return Vec::new(),
    };
    let a = 1.0 - frac;
    let mut out = Vec::with_capacity(samples.len() + 1);
    out.push(first * a);
    for i in 1..samples.len() {
        out.push(samples[i] * a + samples[i - 1] * frac);
    }
    out.push(last * frac);
    out
}

/// Scales a signal's amplitude in place (linear factor).
pub fn scale_amplitude(samples: &mut [Complex32], factor: f32) {
    for s in samples.iter_mut() {
        *s = s.scale(factor);
    }
}

/// Applies sample-clock drift of `ppm` parts per million: the transmitter's
/// crystal runs fast (`ppm > 0`) or slow (`ppm < 0`) relative to the
/// receiver, so the received waveform is the transmitted one resampled at
/// rate `1 + ppm·10⁻⁶` (linear interpolation). The same crystal drives the
/// carrier, which is why hardware CFO and clock drift are correlated; they
/// are exposed separately so either can be studied in isolation.
///
/// Output length matches the drift-stretched duration.
pub fn apply_clock_drift(samples: &[Complex32], ppm: f64) -> Vec<Complex32> {
    if samples.is_empty() || ppm == 0.0 {
        return samples.to_vec();
    }
    let rate = 1.0 + ppm * 1e-6;
    let out_len = ((samples.len() as f64) / rate).floor() as usize;
    let mut out = Vec::with_capacity(out_len);
    for n in 0..out_len {
        let t = n as f64 * rate;
        let i = t as usize;
        let frac = (t - i as f64) as f32;
        let a = samples[i.min(samples.len() - 1)];
        let b = samples[(i + 1).min(samples.len() - 1)];
        out.push(a * (1.0 - frac) + b * frac);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfo_rotates_at_expected_rate() {
        let fs = 1_000_000.0;
        let cfo = 1000.0; // 1 kHz
        let mut s = vec![Complex32::ONE; 1001];
        apply_cfo(&mut s, cfo, fs);
        // After 1 ms (1000 samples at 1 Msps) the phase advanced 2π.
        assert!((s[1000] - Complex32::ONE).abs() < 1e-3);
        // After 0.25 ms the phase is π/2.
        assert!((s[250] - Complex32::I).abs() < 1e-3);
    }

    #[test]
    fn zero_cfo_is_identity() {
        let mut s = vec![Complex32::new(0.5, -0.5); 32];
        apply_cfo(&mut s, 0.0, 1e6);
        assert!(s
            .iter()
            .all(|z| (*z - Complex32::new(0.5, -0.5)).abs() < 1e-7));
    }

    #[test]
    fn fractional_delay_zero_is_identity_padded() {
        let s = vec![Complex32::ONE, Complex32::I];
        let d = fractional_delay(&s, 0.0);
        assert_eq!(d.len(), 3);
        assert!((d[0] - Complex32::ONE).abs() < 1e-7);
        assert!((d[1] - Complex32::I).abs() < 1e-7);
        assert!(d[2].abs() < 1e-7);
    }

    #[test]
    fn fractional_delay_shifts_a_tone() {
        // A slow complex tone delayed by 0.5 samples should match the tone
        // evaluated at n − 0.5 (linear interpolation is accurate for slow
        // tones).
        let n = 256;
        let f = 0.01; // cycles per sample
        let tone = |t: f64| Complex32::from_phase(2.0 * std::f64::consts::PI * f * t);
        let s: Vec<Complex32> = (0..n).map(|i| tone(i as f64)).collect();
        let d = fractional_delay(&s, 0.5);
        for (i, &di) in d.iter().enumerate().take(n).skip(1) {
            let expect = tone(i as f64 - 0.5);
            assert!((di - expect).abs() < 0.01, "i={i}");
        }
    }

    #[test]
    fn out_of_range_frac_wraps_instead_of_panicking() {
        let s = [Complex32::ONE, Complex32::I];
        // 1.5 wraps to 0.5; -0.25 wraps to 0.75; NaN degrades to 0.
        assert_eq!(fractional_delay(&s, 1.5), fractional_delay(&s, 0.5));
        assert_eq!(fractional_delay(&s, -0.25), fractional_delay(&s, 0.75));
        assert_eq!(fractional_delay(&s, f32::NAN), fractional_delay(&s, 0.0));
    }

    #[test]
    fn zero_drift_is_identity() {
        let s: Vec<Complex32> = (0..64).map(|i| Complex32::new(i as f32, -1.0)).collect();
        assert_eq!(apply_clock_drift(&s, 0.0), s);
        assert!(apply_clock_drift(&[], 25.0).is_empty());
    }

    #[test]
    fn drift_stretches_duration() {
        let s = vec![Complex32::ONE; 1_000_000];
        // A 100 ppm fast transmitter delivers its waveform in fewer
        // receiver samples.
        let fast = apply_clock_drift(&s, 100.0);
        assert!((fast.len() as i64 - 999_900).abs() <= 1, "{}", fast.len());
        let slow = apply_clock_drift(&s, -100.0);
        assert!((slow.len() as i64 - 1_000_100).abs() <= 1, "{}", slow.len());
    }

    #[test]
    fn drift_shifts_a_tone_frequency() {
        // Resampling at 1+δ scales every frequency by 1+δ: a tone at bin
        // 64 of a 4096-point window moves by a fractional bin for small
        // ppm, measurable through the phase slope.
        let n = 65_536usize;
        let f = 0.01;
        let tone: Vec<Complex32> = (0..n)
            .map(|i| Complex32::from_phase(2.0 * std::f64::consts::PI * f * i as f64))
            .collect();
        let drifted = apply_clock_drift(&tone, 1000.0); // 0.1 %
                                                        // After k samples the drifted tone's phase leads by 2π·f·k·δ.
        let k = 50_000usize;
        let expect_lead = 2.0 * std::f64::consts::PI * f * k as f64 * 1e-3;
        let lead = (drifted[k].mul_conj(tone[k])).arg() as f64;
        let diff = (lead - expect_lead).rem_euclid(2.0 * std::f64::consts::PI);
        let diff = diff.min(2.0 * std::f64::consts::PI - diff);
        assert!(diff < 0.15, "lead {lead} expect {expect_lead}");
    }

    #[test]
    fn scale_amplitude_scales_power() {
        let mut s = vec![Complex32::ONE; 4];
        scale_amplitude(&mut s, 2.0);
        assert!(s.iter().all(|z| (z.norm_sqr() - 4.0).abs() < 1e-6));
    }
}
