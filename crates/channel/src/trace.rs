//! Multi-packet trace synthesis with ground truth.
//!
//! A [`TraceBuilder`] superposes LoRa packets — each with its own start
//! time, SNR, CFO, fractional timing offset and channel model — into one
//! complex-sample stream per antenna, then adds unit-power AWGN. This is
//! the synthetic stand-in for the paper's USRP trace files (DESIGN.md,
//! substitutions table): receivers consume the result exactly as they
//! would consume a recorded trace.
//!
//! Convention: when noise is enabled its power is 1.0, so a packet added
//! with `snr_db` has amplitude `√(10^(snr/10))` and its per-sample SNR in
//! the trace is exactly `snr_db`.

use crate::awgn::add_awgn;
use crate::fading::{ChannelModel, TappedChannel};
use crate::impairments::{apply_cfo, fractional_delay, scale_amplitude};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tnb_dsp::Complex32;
use tnb_phy::{LoRaParams, Transmitter};

/// Ground-truth record for one transmitted packet.
#[derive(Debug, Clone)]
pub struct GroundTruth {
    /// Transmitting node (metadata for metrics; also embedded in the
    /// payload by the simulation harness).
    pub node_id: u32,
    /// Sequence number (metadata).
    pub seq: u32,
    /// The transmitted payload bytes.
    pub payload: Vec<u8>,
    /// First sample of the packet in the trace.
    pub start_sample: usize,
    /// Packet length on the air, in samples.
    pub airtime_samples: usize,
    /// Applied carrier frequency offset in Hz.
    pub cfo_hz: f64,
    /// Per-sample SNR of the packet in dB (relative to unit noise power).
    pub snr_db: f32,
}

/// A synthesized trace: one sample stream per antenna plus ground truth.
#[derive(Debug, Clone)]
pub struct Trace {
    /// Per-antenna complex sample streams (all the same length).
    pub antennas: Vec<Vec<Complex32>>,
    /// Ground truth of every packet added, in insertion order.
    pub truth: Vec<GroundTruth>,
    /// Parameters the trace was generated with.
    pub params: LoRaParams,
}

impl Trace {
    /// The first (or only) antenna's samples.
    pub fn samples(&self) -> &[Complex32] {
        &self.antennas[0]
    }

    /// Trace length in samples.
    pub fn len(&self) -> usize {
        self.antennas[0].len()
    }

    /// True if the trace holds no samples.
    pub fn is_empty(&self) -> bool {
        self.antennas[0].is_empty()
    }
}

/// Per-packet impairment configuration for [`TraceBuilder::add_packet`].
#[derive(Debug, Clone, Copy)]
pub struct PacketConfig {
    /// First sample of the packet in the trace.
    pub start_sample: usize,
    /// Per-sample SNR in dB (noise power is 1 when enabled).
    pub snr_db: f32,
    /// Carrier frequency offset in Hz.
    pub cfo_hz: f64,
    /// Fractional timing offset in samples, `[0, 1)`.
    pub frac_delay: f32,
    /// Channel model applied to this packet.
    pub channel: ChannelModel,
    /// Node metadata.
    pub node_id: u32,
    /// Sequence-number metadata.
    pub seq: u32,
}

impl Default for PacketConfig {
    fn default() -> Self {
        PacketConfig {
            start_sample: 0,
            snr_db: 20.0,
            cfo_hz: 0.0,
            frac_delay: 0.0,
            channel: ChannelModel::Static,
            node_id: 0,
            seq: 0,
        }
    }
}

/// Builds a multi-packet trace.
#[derive(Debug)]
pub struct TraceBuilder {
    params: LoRaParams,
    tx: Transmitter,
    rng: StdRng,
    antennas: Vec<Vec<Complex32>>,
    truth: Vec<GroundTruth>,
    /// AWGN power added at build time (0 disables noise).
    noise_power: f32,
    /// Minimum trace length in samples (padding after the last packet).
    min_len: usize,
}

impl TraceBuilder {
    /// Creates a builder with one antenna and unit-power noise enabled.
    pub fn new(params: LoRaParams, seed: u64) -> Self {
        TraceBuilder {
            tx: Transmitter::new(params),
            params,
            rng: StdRng::seed_from_u64(seed),
            antennas: vec![Vec::new()],
            truth: Vec::new(),
            noise_power: 1.0,
            min_len: 0,
        }
    }

    /// Uses `n` receive antennas (independent phase/fading per antenna).
    /// At least one antenna always exists: `n = 0` is treated as 1.
    pub fn with_antennas(mut self, n: usize) -> Self {
        self.antennas = vec![Vec::new(); n.max(1)];
        self
    }

    /// Disables the AWGN added at build time (useful for deterministic
    /// tests).
    pub fn without_noise(mut self) -> Self {
        self.noise_power = 0.0;
        self
    }

    /// Pads the trace to at least `samples` samples at build time.
    pub fn set_min_len(&mut self, samples: usize) {
        self.min_len = samples;
    }

    /// The parameter set of this builder.
    pub fn params(&self) -> &LoRaParams {
        &self.params
    }

    /// Airtime in samples of a packet with `len` payload bytes.
    pub fn packet_samples(&self, len: usize) -> usize {
        self.tx.packet_samples(len)
    }

    /// Encodes `payload` and mixes the packet into the trace with the
    /// given impairments. Returns the ground-truth index.
    pub fn add_packet(&mut self, payload: &[u8], cfg: PacketConfig) -> usize {
        let clean = self.tx.transmit(payload);
        self.add_waveform(&clean, payload, cfg)
    }

    /// Low-level variant of [`Self::add_packet`]: mixes pre-modulated
    /// samples (e.g. from [`Transmitter::transmit`]) at `start_sample`
    /// with a CFO and SNR, no fading, no fractional delay.
    pub fn add_packet_samples(
        &mut self,
        samples: &[Complex32],
        start_sample: usize,
        cfo_hz: f64,
        snr_db: f32,
    ) -> usize {
        self.add_waveform(
            samples,
            &[],
            PacketConfig {
                start_sample,
                snr_db,
                cfo_hz,
                ..PacketConfig::default()
            },
        )
    }

    fn add_waveform(&mut self, clean: &[Complex32], payload: &[u8], cfg: PacketConfig) -> usize {
        let amplitude = tnb_dsp::stats::from_db(cfg.snr_db).sqrt();
        let fs = self.params.sample_rate();

        // Shared (antenna-independent) impairments.
        let mut wave = if cfg.frac_delay > 0.0 {
            fractional_delay(clean, cfg.frac_delay)
        } else {
            clean.to_vec()
        };
        apply_cfo(&mut wave, cfg.cfo_hz, fs);
        scale_amplitude(&mut wave, amplitude);

        let n_antennas = self.antennas.len();
        for a in 0..n_antennas {
            // Per-antenna channel: independent fading realisation, or an
            // independent phase rotation for the static channel.
            let faded: Vec<Complex32> = match TappedChannel::realise(&mut self.rng, cfg.channel, fs)
            {
                Some(ch) => ch.apply(&wave),
                None => {
                    let phase = if a == 0 && n_antennas == 1 {
                        0.0
                    } else {
                        self.rng.gen::<f64>() * 2.0 * std::f64::consts::PI
                    };
                    let rot = Complex32::from_phase(phase);
                    wave.iter().map(|&z| z * rot).collect()
                }
            };
            let buf = &mut self.antennas[a];
            let end = cfg.start_sample + faded.len();
            if buf.len() < end {
                buf.resize(end, Complex32::ZERO);
            }
            for (i, &z) in faded.iter().enumerate() {
                buf[cfg.start_sample + i] += z;
            }
        }

        self.truth.push(GroundTruth {
            node_id: cfg.node_id,
            seq: cfg.seq,
            payload: payload.to_vec(),
            start_sample: cfg.start_sample,
            airtime_samples: clean.len(),
            cfo_hz: cfg.cfo_hz,
            snr_db: cfg.snr_db,
        });
        self.truth.len() - 1
    }

    /// Finalises the trace: pads all antennas to a common length (at least
    /// `min_len`) and adds AWGN.
    pub fn build(mut self) -> Trace {
        let len = self
            .antennas
            .iter()
            .map(Vec::len)
            .max()
            .unwrap_or(0)
            .max(self.min_len);
        for buf in &mut self.antennas {
            buf.resize(len, Complex32::ZERO);
            add_awgn(&mut self.rng, buf, self.noise_power);
        }
        Trace {
            antennas: self.antennas,
            truth: self.truth,
            params: self.params,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tnb_phy::{CodingRate, SpreadingFactor};

    fn params() -> LoRaParams {
        LoRaParams::new(SpreadingFactor::SF8, CodingRate::CR4)
    }

    #[test]
    fn single_packet_trace_layout() {
        let mut b = TraceBuilder::new(params(), 1).without_noise();
        let payload = vec![0xAB; 16];
        b.add_packet(
            &payload,
            PacketConfig {
                start_sample: 5000,
                snr_db: 0.0,
                ..Default::default()
            },
        );
        let t = b.build();
        assert_eq!(t.truth.len(), 1);
        let gt = &t.truth[0];
        assert_eq!(gt.start_sample, 5000);
        assert_eq!(gt.payload, payload);
        assert_eq!(t.len(), 5000 + gt.airtime_samples);
        // Samples before the packet are silent; the packet has unit power
        // (0 dB SNR → amplitude 1).
        assert!(t.samples()[..5000].iter().all(|z| z.abs() < 1e-9));
        let p = t.samples()[5000].norm_sqr();
        assert!((p - 1.0).abs() < 1e-3);
    }

    #[test]
    fn snr_sets_amplitude() {
        let mut b = TraceBuilder::new(params(), 2).without_noise();
        b.add_packet(
            &[1; 4],
            PacketConfig {
                snr_db: 10.0,
                ..Default::default()
            },
        );
        let t = b.build();
        // 10 dB → power 10.
        assert!((t.samples()[0].norm_sqr() - 10.0).abs() < 0.05);
    }

    #[test]
    fn packets_superpose() {
        let mut b = TraceBuilder::new(params(), 3).without_noise();
        b.add_packet(
            &[1; 8],
            PacketConfig {
                start_sample: 0,
                snr_db: 0.0,
                ..Default::default()
            },
        );
        b.add_packet(
            &[2; 8],
            PacketConfig {
                start_sample: 0,
                snr_db: 0.0,
                ..Default::default()
            },
        );
        let t = b.build();
        // Two identical-preamble packets at offset 0 add coherently in the
        // preamble: power 4 at sample 0.
        assert!((t.samples()[0].norm_sqr() - 4.0).abs() < 0.05);
        assert_eq!(t.truth.len(), 2);
    }

    #[test]
    fn noise_fills_whole_trace() {
        let mut b = TraceBuilder::new(params(), 4);
        b.set_min_len(10_000);
        let t = b.build();
        assert_eq!(t.len(), 10_000);
        let pwr: f32 = t.samples().iter().map(|z| z.norm_sqr()).sum::<f32>() / t.len() as f32;
        assert!((pwr - 1.0).abs() < 0.1, "noise power {pwr}");
    }

    #[test]
    fn antennas_have_independent_phases() {
        let mut b = TraceBuilder::new(params(), 5)
            .without_noise()
            .with_antennas(2);
        b.add_packet(
            &[7; 8],
            PacketConfig {
                snr_db: 0.0,
                ..Default::default()
            },
        );
        let t = b.build();
        assert_eq!(t.antennas.len(), 2);
        assert_eq!(t.antennas[0].len(), t.antennas[1].len());
        // Same magnitude, different phase.
        let a = t.antennas[0][100];
        let b2 = t.antennas[1][100];
        assert!((a.abs() - b2.abs()).abs() < 1e-4);
        assert!((a - b2).abs() > 1e-3);
    }

    #[test]
    fn deterministic_given_seed() {
        let make = |seed| {
            let mut b = TraceBuilder::new(params(), seed);
            b.add_packet(&[9; 16], PacketConfig::default());
            b.build()
        };
        let t1 = make(42);
        let t2 = make(42);
        assert_eq!(t1.samples()[1234], t2.samples()[1234]);
        let t3 = make(43);
        assert_ne!(t1.samples()[1234], t3.samples()[1234]);
    }

    #[test]
    fn etu_channel_extends_trace_slightly() {
        let mut b = TraceBuilder::new(params(), 6).without_noise();
        b.add_packet(
            &[3; 8],
            PacketConfig {
                channel: ChannelModel::Etu { doppler_hz: 5.0 },
                ..Default::default()
            },
        );
        let t = b.build();
        let clean_len = t.truth[0].airtime_samples;
        assert_eq!(t.len(), clean_len + 5); // ETU max delay at 1 Msps
    }
}
