//! Composable, seed-deterministic fault injection for IQ traces.
//!
//! The receivers must keep decoding — degrading per packet, never
//! panicking — when fed hostile input: truncated captures, dropped
//! sample runs, NaN/Inf bins from a broken front end, ADC saturation,
//! DC offset and IQ imbalance from cheap radios, and wideband
//! interference bursts. A [`FaultPlan`] composes any number of
//! [`Fault`]s and applies them to a trace; the same seed always yields
//! the same corrupted output, so fault-matrix tests are reproducible.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tnb_dsp::Complex32;

use crate::awgn::add_awgn;

/// One injectable impairment. Positions are fractions of the trace
/// length in `0.0..=1.0` so the same fault applies sensibly to traces
/// of any length.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Fault {
    /// Keep only the leading `keep` fraction of the samples (an
    /// interrupted capture).
    Truncate { keep: f64 },
    /// Remove `len` samples starting at fraction `at` (USRP overflow /
    /// dropped packets on the sample link); everything after the gap
    /// shifts earlier, desynchronizing any packet that spans it.
    DropGap { at: f64, len: usize },
    /// Overwrite `len` samples at fraction `at` with NaN.
    NanBurst { at: f64, len: usize },
    /// Overwrite `len` samples at fraction `at` with ±infinity.
    InfBurst { at: f64, len: usize },
    /// Hard-clip both I and Q at `±level` (ADC saturation).
    Clip { level: f32 },
    /// Add a constant DC offset to every sample (LO leakage).
    DcOffset { i: f32, q: f32 },
    /// IQ imbalance: the Q rail is scaled by `gain_db` and skewed by
    /// `phase_deg` relative to I.
    IqImbalance { gain_db: f32, phase_deg: f32 },
    /// Wideband interferer: complex Gaussian noise of total power
    /// `power` added over `len` samples at fraction `at`.
    Interferer { at: f64, len: usize, power: f32 },
}

impl Fault {
    /// Short stable name for reports and logs.
    pub fn name(&self) -> &'static str {
        match self {
            Fault::Truncate { .. } => "truncate",
            Fault::DropGap { .. } => "drop-gap",
            Fault::NanBurst { .. } => "nan-burst",
            Fault::InfBurst { .. } => "inf-burst",
            Fault::Clip { .. } => "clip",
            Fault::DcOffset { .. } => "dc-offset",
            Fault::IqImbalance { .. } => "iq-imbalance",
            Fault::Interferer { .. } => "interferer",
        }
    }
}

/// Resolves a fractional position to a start index in `0..len`.
fn at_index(at: f64, len: usize) -> usize {
    if len == 0 {
        return 0;
    }
    let at = at.clamp(0.0, 1.0);
    ((at * len as f64) as usize).min(len - 1)
}

/// An ordered, seed-deterministic list of faults to inject into a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// An empty (clean) plan. The seed only matters for faults that draw
    /// randomness ([`Fault::Interferer`]).
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            faults: Vec::new(),
        }
    }

    /// Appends a fault (builder style). Faults apply in insertion order.
    pub fn with(mut self, fault: Fault) -> Self {
        self.faults.push(fault);
        self
    }

    /// The faults in application order.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// True when the plan injects nothing.
    pub fn is_clean(&self) -> bool {
        self.faults.is_empty()
    }

    /// Applies every fault to a copy of `samples`. Deterministic: the
    /// RNG is re-seeded from the plan's seed on every call.
    pub fn apply(&self, samples: &[Complex32]) -> Vec<Complex32> {
        let mut out = samples.to_vec();
        let mut rng = StdRng::seed_from_u64(self.seed);
        for fault in &self.faults {
            apply_one(*fault, &mut out, &mut rng);
        }
        out
    }

    /// The standard fault matrix used by `tnb-cli faults` and the test
    /// suite: one named plan per injector, a clean reference, and a
    /// combined worst case.
    pub fn matrix(seed: u64) -> Vec<(&'static str, FaultPlan)> {
        vec![
            ("clean", FaultPlan::new(seed)),
            (
                "truncate",
                FaultPlan::new(seed).with(Fault::Truncate { keep: 0.55 }),
            ),
            (
                "drop-gap",
                FaultPlan::new(seed).with(Fault::DropGap {
                    at: 0.35,
                    len: 1500,
                }),
            ),
            (
                "nan-burst",
                FaultPlan::new(seed).with(Fault::NanBurst { at: 0.4, len: 256 }),
            ),
            (
                "inf-burst",
                FaultPlan::new(seed).with(Fault::InfBurst { at: 0.55, len: 64 }),
            ),
            (
                "clip",
                FaultPlan::new(seed).with(Fault::Clip { level: 1.5 }),
            ),
            (
                "dc-offset",
                FaultPlan::new(seed).with(Fault::DcOffset { i: 0.75, q: -0.5 }),
            ),
            (
                "iq-imbalance",
                FaultPlan::new(seed).with(Fault::IqImbalance {
                    gain_db: 1.5,
                    phase_deg: 8.0,
                }),
            ),
            (
                "interferer",
                FaultPlan::new(seed).with(Fault::Interferer {
                    at: 0.3,
                    len: 20_000,
                    power: 50.0,
                }),
            ),
            (
                "combined",
                FaultPlan::new(seed)
                    .with(Fault::DcOffset { i: 0.3, q: 0.2 })
                    .with(Fault::IqImbalance {
                        gain_db: 1.0,
                        phase_deg: 5.0,
                    })
                    .with(Fault::NanBurst { at: 0.25, len: 128 })
                    .with(Fault::Interferer {
                        at: 0.5,
                        len: 10_000,
                        power: 25.0,
                    })
                    .with(Fault::Truncate { keep: 0.85 }),
            ),
        ]
    }
}

fn apply_one(fault: Fault, out: &mut Vec<Complex32>, rng: &mut StdRng) {
    match fault {
        Fault::Truncate { keep } => {
            let keep = keep.clamp(0.0, 1.0);
            let n = (keep * out.len() as f64) as usize;
            out.truncate(n);
        }
        Fault::DropGap { at, len } => {
            let s = at_index(at, out.len());
            let e = (s + len).min(out.len());
            out.drain(s..e);
        }
        Fault::NanBurst { at, len } => {
            let s = at_index(at, out.len());
            let e = (s + len).min(out.len());
            for z in &mut out[s..e] {
                *z = Complex32::new(f32::NAN, f32::NAN);
            }
        }
        Fault::InfBurst { at, len } => {
            let s = at_index(at, out.len());
            let e = (s + len).min(out.len());
            for (k, z) in out[s..e].iter_mut().enumerate() {
                // Alternate signs so the burst has no consistent DC bias.
                let sign = if k % 2 == 0 { 1.0 } else { -1.0 };
                *z = Complex32::new(sign * f32::INFINITY, -sign * f32::INFINITY);
            }
        }
        Fault::Clip { level } => {
            let level = level.abs();
            for z in out.iter_mut() {
                z.re = z.re.clamp(-level, level);
                z.im = z.im.clamp(-level, level);
            }
        }
        Fault::DcOffset { i, q } => {
            let dc = Complex32::new(i, q);
            for z in out.iter_mut() {
                *z += dc;
            }
        }
        Fault::IqImbalance { gain_db, phase_deg } => {
            let g = 10f32.powf(gain_db / 20.0);
            let phi = phase_deg.to_radians();
            let (sin, cos) = (phi.sin(), phi.cos());
            for z in out.iter_mut() {
                // Common receive-side model: I passes through, Q picks up
                // a gain mismatch and a phase skew that leaks I into Q.
                z.im = g * (z.im * cos + z.re * sin);
            }
        }
        Fault::Interferer { at, len, power } => {
            let s = at_index(at, out.len());
            let e = (s + len).min(out.len());
            add_awgn(rng, &mut out[s..e], power);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(n: usize) -> Vec<Complex32> {
        (0..n)
            .map(|i| Complex32::new(i as f32 * 0.01, -(i as f32) * 0.005))
            .collect()
    }

    #[test]
    fn clean_plan_is_identity() {
        let x = ramp(500);
        let plan = FaultPlan::new(7);
        assert!(plan.is_clean());
        assert_eq!(plan.apply(&x), x);
    }

    #[test]
    fn apply_is_deterministic_per_seed() {
        let x = ramp(4000);
        let plan = FaultPlan::new(42).with(Fault::Interferer {
            at: 0.2,
            len: 1000,
            power: 10.0,
        });
        let a = plan.apply(&x);
        let b = plan.apply(&x);
        assert_eq!(a, b);
        let other = FaultPlan::new(43).with(Fault::Interferer {
            at: 0.2,
            len: 1000,
            power: 10.0,
        });
        assert_ne!(other.apply(&x), a);
    }

    #[test]
    fn truncate_shortens() {
        let x = ramp(1000);
        let y = FaultPlan::new(0)
            .with(Fault::Truncate { keep: 0.25 })
            .apply(&x);
        assert_eq!(y.len(), 250);
        assert_eq!(y[..], x[..250]);
    }

    #[test]
    fn drop_gap_removes_and_shifts() {
        let x = ramp(1000);
        let y = FaultPlan::new(0)
            .with(Fault::DropGap { at: 0.5, len: 100 })
            .apply(&x);
        assert_eq!(y.len(), 900);
        assert_eq!(y[499], x[499]);
        assert_eq!(y[500], x[600]);
    }

    #[test]
    fn nan_and_inf_bursts_hit_only_their_window() {
        let x = ramp(1000);
        let y = FaultPlan::new(0)
            .with(Fault::NanBurst { at: 0.1, len: 50 })
            .with(Fault::InfBurst { at: 0.9, len: 10 })
            .apply(&x);
        assert!(y[100..150].iter().all(|z| z.re.is_nan() && z.im.is_nan()));
        assert!(y[900..910].iter().all(|z| z.re.is_infinite()));
        assert!(y[..100].iter().all(|z| z.re.is_finite()));
        assert!(y[150..900].iter().all(|z| z.re.is_finite()));
        assert!(y[910..].iter().all(|z| z.re.is_finite()));
    }

    #[test]
    fn clip_bounds_everything() {
        let x = ramp(1000);
        let y = FaultPlan::new(0).with(Fault::Clip { level: 2.0 }).apply(&x);
        assert!(y
            .iter()
            .all(|z| z.re.abs() <= 2.0 + f32::EPSILON && z.im.abs() <= 2.0 + f32::EPSILON));
    }

    #[test]
    fn dc_offset_shifts_mean() {
        let x = ramp(200);
        let y = FaultPlan::new(0)
            .with(Fault::DcOffset { i: 1.0, q: -2.0 })
            .apply(&x);
        for (a, b) in x.iter().zip(&y) {
            assert!((b.re - a.re - 1.0).abs() < 1e-6);
            assert!((b.im - a.im + 2.0).abs() < 1e-6);
        }
    }

    #[test]
    fn interferer_raises_power_only_in_burst() {
        let x = vec![Complex32::new(0.0, 0.0); 10_000];
        let y = FaultPlan::new(3)
            .with(Fault::Interferer {
                at: 0.0,
                len: 5000,
                power: 4.0,
            })
            .apply(&x);
        let p_burst: f32 = y[..5000].iter().map(|z| z.norm_sqr()).sum::<f32>() / 5000.0;
        let p_rest: f32 = y[5000..].iter().map(|z| z.norm_sqr()).sum::<f32>();
        assert!((p_burst - 4.0).abs() < 0.5, "burst power {p_burst}");
        assert_eq!(p_rest, 0.0);
    }

    #[test]
    fn matrix_contains_clean_and_every_injector() {
        let m = FaultPlan::matrix(9);
        let names: Vec<_> = m.iter().map(|(n, _)| *n).collect();
        assert!(names.contains(&"clean"));
        for n in [
            "truncate",
            "drop-gap",
            "nan-burst",
            "inf-burst",
            "clip",
            "dc-offset",
            "iq-imbalance",
            "interferer",
            "combined",
        ] {
            assert!(names.contains(&n), "missing {n}");
        }
        let clean = m.iter().find(|(n, _)| *n == "clean").map(|(_, p)| p);
        assert!(clean.is_some_and(FaultPlan::is_clean));
    }

    #[test]
    fn faults_on_empty_trace_do_not_panic() {
        let empty: Vec<Complex32> = Vec::new();
        for (_, plan) in FaultPlan::matrix(1) {
            assert!(plan.apply(&empty).is_empty());
        }
    }
}
