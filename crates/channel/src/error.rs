//! Typed errors for trace I/O.
//!
//! Real gateway recordings arrive over flaky links and interrupted
//! captures, so the readers in [`crate::io`] must never panic on a short
//! or corrupt file: every malformed input surfaces as a [`TraceError`].

use std::fmt;
use std::io;

/// Error reading or writing a trace file.
#[derive(Debug)]
pub enum TraceError {
    /// Underlying I/O failure (file missing, permission denied, ...).
    Io(io::Error),
    /// The file ends mid-sample: its length is not a whole number of
    /// interleaved `i16` I/Q pairs (4 bytes per complex sample).
    Truncated {
        /// Total length of the file in bytes.
        bytes: usize,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace i/o error: {e}"),
            TraceError::Truncated { bytes } => write!(
                f,
                "truncated trace: {bytes} bytes is not a whole number of 4-byte I/Q samples"
            ),
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            TraceError::Truncated { .. } => None,
        }
    }
}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> Self {
        TraceError::Io(e)
    }
}
