//! Channel models and trace synthesis (substrate for the evaluation).
//!
//! The paper evaluates on USRP-recorded traces of 19–25 commodity LoRa
//! nodes; this crate synthesizes equivalent traces: per-packet carrier
//! frequency offset and timing offset, AWGN at a target SNR, optional flat
//! Rayleigh or LTE-ETU frequency-selective fading with Jakes Doppler, and
//! superposition of many packets (optionally on several antennas) into a
//! single complex-sample trace with ground-truth metadata.

pub mod awgn;
pub mod error;
pub mod fading;
pub mod faults;
pub mod impairments;
pub mod io;
pub mod trace;

pub use error::TraceError;
pub use faults::{Fault, FaultPlan};
pub use trace::{GroundTruth, Trace, TraceBuilder};
