//! Trace file I/O in the paper's USRP format.
//!
//! The artifact appendix (B.3.4) describes the recorded traces: "The
//! signal was sampled by a USRP B210 at 1 Msps, where each sample
//! consists of a real part and an imaginary part, both as 16-bit
//! integers." This module reads and writes exactly that format
//! (interleaved little-endian `i16` I/Q pairs), so synthetic traces can
//! be stored, exchanged, and — with appropriate scaling — real USRP
//! recordings can be decoded by this workspace's receivers.

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;
use tnb_dsp::Complex32;

use crate::error::TraceError;

/// Scale used when converting float samples to `i16`: the synthetic
/// traces have unit noise power, so ±8 standard deviations of headroom
/// around strong packets fits comfortably. Exported so other IQ16
/// serializers (the gateway wire protocol) quantize identically to the
/// trace files — a trace streamed over the wire and a trace saved to
/// disk decode to the same bytes.
pub const IQ16_SCALE: f32 = 1024.0;

/// Writes samples as interleaved little-endian `i16` I/Q pairs, scaled by
/// `scale` (values saturate at the `i16` range).
pub fn write_iq16<W: Write>(out: W, samples: &[Complex32], scale: f32) -> io::Result<()> {
    let mut w = BufWriter::new(out);
    let mut buf = [0u8; 4];
    for s in samples {
        let re = (s.re * scale)
            .round()
            .clamp(i16::MIN as f32, i16::MAX as f32) as i16;
        let im = (s.im * scale)
            .round()
            .clamp(i16::MIN as f32, i16::MAX as f32) as i16;
        buf[..2].copy_from_slice(&re.to_le_bytes());
        buf[2..].copy_from_slice(&im.to_le_bytes());
        w.write_all(&buf)?;
    }
    w.flush()
}

/// Writes a trace file at `path` (see [`write_iq16`]).
pub fn save_trace<P: AsRef<Path>>(path: P, samples: &[Complex32]) -> io::Result<()> {
    write_iq16(File::create(path)?, samples, IQ16_SCALE)
}

/// Reads interleaved little-endian `i16` I/Q pairs, dividing by `scale`.
/// A trailing partial sample (a file length that is not a multiple of 4
/// bytes) is reported as [`TraceError::Truncated`], never a panic.
pub fn read_iq16<R: Read>(input: R, scale: f32) -> Result<Vec<Complex32>, TraceError> {
    let mut r = BufReader::new(input);
    let mut bytes = Vec::new();
    r.read_to_end(&mut bytes)?;
    if bytes.len() % 4 != 0 {
        return Err(TraceError::Truncated { bytes: bytes.len() });
    }
    let inv = 1.0 / scale;
    Ok(bytes
        .chunks_exact(4)
        .map(|c| {
            let re = i16::from_le_bytes([c[0], c[1]]) as f32 * inv;
            let im = i16::from_le_bytes([c[2], c[3]]) as f32 * inv;
            Complex32::new(re, im)
        })
        .collect())
}

/// Reads a trace file written by [`save_trace`].
pub fn load_trace<P: AsRef<Path>>(path: P) -> Result<Vec<Complex32>, TraceError> {
    read_iq16(File::open(path)?, IQ16_SCALE)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_samples_within_quantization() {
        let samples: Vec<Complex32> = (0..1000)
            .map(|i| Complex32::new((i as f32 * 0.013).sin() * 3.0, (i as f32 * 0.007).cos()))
            .collect();
        let mut buf = Vec::new();
        write_iq16(&mut buf, &samples, IQ16_SCALE).unwrap();
        assert_eq!(buf.len(), 4000);
        let back = read_iq16(&buf[..], IQ16_SCALE).unwrap();
        assert_eq!(back.len(), samples.len());
        for (a, b) in samples.iter().zip(&back) {
            assert!((*a - *b).abs() < 1.0 / IQ16_SCALE, "{a} vs {b}");
        }
    }

    #[test]
    fn saturation_clamps() {
        let samples = [Complex32::new(1e6, -1e6)];
        let mut buf = Vec::new();
        write_iq16(&mut buf, &samples, IQ16_SCALE).unwrap();
        let back = read_iq16(&buf[..], IQ16_SCALE).unwrap();
        assert!((back[0].re - i16::MAX as f32 / IQ16_SCALE).abs() < 0.01);
        assert!((back[0].im - i16::MIN as f32 / IQ16_SCALE).abs() < 0.01);
    }

    #[test]
    fn truncated_file_is_a_typed_error() {
        let bytes = [1u8, 2, 3]; // not a multiple of 4
        match read_iq16(&bytes[..], 1.0) {
            Err(TraceError::Truncated { bytes: 3 }) => {}
            other => panic!("expected Truncated error, got {other:?}"),
        }
        // Odd-length beyond one sample: 2 full samples plus 2 stray bytes.
        let bytes = [0u8; 10];
        match read_iq16(&bytes[..], 1.0) {
            Err(TraceError::Truncated { bytes: 10 }) => {}
            other => panic!("expected Truncated error, got {other:?}"),
        }
    }

    #[test]
    fn empty_file_is_empty_trace() {
        assert!(read_iq16(&[][..], 1.0).unwrap().is_empty());
    }

    #[test]
    fn file_roundtrip_decodes() {
        use crate::trace::{PacketConfig, TraceBuilder};
        use tnb_phy::{CodingRate, LoRaParams, SpreadingFactor};
        let params = LoRaParams::new(SpreadingFactor::SF7, CodingRate::CR4);
        let mut b = TraceBuilder::new(params, 11);
        b.add_packet(
            &[0x42; 8],
            PacketConfig {
                start_sample: 2000,
                snr_db: 12.0,
                ..Default::default()
            },
        );
        let t = b.build();
        let dir = std::env::temp_dir().join("tnb_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.iq16");
        save_trace(&path, t.samples()).unwrap();
        let back = load_trace(&path).unwrap();
        assert_eq!(back.len(), t.len());
        // Quantization must not meaningfully hurt the signal: the power
        // difference stays tiny.
        let p1: f32 = t.samples().iter().map(|z| z.norm_sqr()).sum();
        let p2: f32 = back.iter().map(|z| z.norm_sqr()).sum();
        assert!((p1 - p2).abs() / p1 < 0.01);
        std::fs::remove_file(&path).ok();
    }
}
