//! Additive white Gaussian noise.

use rand::Rng;
use tnb_dsp::Complex32;

/// Draws one sample of circularly-symmetric complex Gaussian noise with
/// total variance `power` (i.e. `power/2` per real dimension), using the
/// Box–Muller transform (the `rand` crate alone has no normal
/// distribution).
pub fn complex_gaussian<R: Rng + ?Sized>(rng: &mut R, power: f32) -> Complex32 {
    let sigma = (power / 2.0).sqrt();
    // Box–Muller: two uniforms → two independent standard normals.
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen::<f32>();
    let r = (-2.0 * u1.ln()).sqrt();
    let theta = 2.0 * std::f32::consts::PI * u2;
    Complex32::new(r * theta.cos() * sigma, r * theta.sin() * sigma)
}

/// Adds complex AWGN with the given total noise power to `samples` in
/// place.
pub fn add_awgn<R: Rng + ?Sized>(rng: &mut R, samples: &mut [Complex32], power: f32) {
    if power <= 0.0 {
        return;
    }
    for s in samples.iter_mut() {
        *s += complex_gaussian(rng, power);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn noise_power_matches_target() {
        let mut rng = StdRng::seed_from_u64(7);
        for &power in &[0.1f32, 1.0, 4.0] {
            let n = 200_000;
            let mut acc = 0.0f64;
            let mut mean = Complex32::ZERO;
            for _ in 0..n {
                let z = complex_gaussian(&mut rng, power);
                acc += z.norm_sqr() as f64;
                mean += z / n as f32;
            }
            let measured = acc / n as f64;
            assert!(
                (measured / power as f64 - 1.0).abs() < 0.02,
                "target {power}, measured {measured}"
            );
            assert!(mean.abs() < 0.05 * power.sqrt());
        }
    }

    #[test]
    fn zero_power_is_noop() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut s = vec![Complex32::ONE; 16];
        add_awgn(&mut rng, &mut s, 0.0);
        assert!(s.iter().all(|&z| z == Complex32::ONE));
    }

    #[test]
    fn awgn_is_deterministic_per_seed() {
        let gen = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut s = vec![Complex32::ZERO; 64];
            add_awgn(&mut rng, &mut s, 1.0);
            s
        };
        assert_eq!(gen(42), gen(42));
        assert_ne!(gen(42), gen(43));
    }
}
