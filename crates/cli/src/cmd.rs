//! Subcommand implementations for `tnb-cli`.

use tnb_baselines::SchemeKind;
use tnb_channel::io::{load_trace, save_trace};
use tnb_channel::trace::{PacketConfig, TraceBuilder};
use tnb_channel::FaultPlan;
use tnb_core::streaming::{StreamingConfig, StreamingReceiver};
use tnb_core::{
    DecodeReport, DegradeReason, MetricsSnapshot, ParallelReceiver, Stage, TnbConfig, TnbReceiver,
};
use tnb_phy::{CodingRate, LoRaParams, SpreadingFactor};
use tnb_sim::traffic::parse_payload;
use tnb_sim::{build_experiment, Deployment, ExperimentConfig};

/// Top-level usage text.
pub const USAGE: &str = "\
tnb-cli — LoRa trace generation and collision decoding (TnB, CoNEXT'22)

commands:
  generate --out FILE --sf N [--cr N] [--load PPS] [--duration S]
           [--deployment indoor|outdoor1|outdoor2] [--seed N]
      synthesize a multi-node trace and write it as 16-bit I/Q (1 Msps)

  decode --trace FILE --sf N [--cr N] [--scheme NAME] [--workers N]
         [--wideband]
      decode a trace file; schemes: tnb (default), tnb+sic, thrive,
      sibling, lora-phy, cic, cic+, aligntrack, aligntrack+. --workers N
      decodes with N threads (TnB-family schemes only; same output,
      faster). --wideband treats the trace as one wideband capture
      spanning 8 LoRa uplink channels: a polyphase channelizer splits
      it and every channel is decoded with its own streaming receiver
      (tnb scheme only)

  compare --trace FILE --sf N [--cr N] [--workers N]
      decode with every scheme and print the comparison table

  report (--trace FILE | --demo-collision) [--sf N] [--cr N] [--seed N]
         [--workers N] [--sic] [--json]
      decode with the TnB pipeline and print the observability report:
      per-stage wall times, event counters and distributions.
      --demo-collision synthesizes a seeded 3-packet SF8 collision;
      --sic enables the SIC rescue pass (subtract decoded packets,
      re-decode the residual)

  faults (--trace FILE | --demo-collision) [--sf N] [--cr N] [--seed N]
         [--receiver serial|parallel|streaming|all] [--workers N]
         [--sic] [--json]
      run the seeded fault-injection matrix (truncation, sample gaps,
      NaN/Inf bursts, clipping, DC offset, IQ imbalance, interferer
      bursts) against the decode pipeline and print, per fault, how
      the receiver degraded: detected/decoded counts, per-reason
      degradation histogram and exhausted iteration budgets. The
      clean row is the fault-free baseline

  gateway serve --addr HOST:PORT --sf N [--cr N] [--workers N] [--queue N]
                [--quota N] [--idle-timeout MS] [--max-conns N] [--sic]
      run the networked gateway daemon: framed IQ in over TCP, decoded
      packets out as JSON lines (Semtech-style rxpk objects with
      sample-clock timestamps). Stops on a client SHUTDOWN verb.
      --idle-timeout disconnects silent peers after MS ms (0 = off),
      --max-conns answers BUSY past N concurrent connections (0 = off),
      --quota caps buffered chunks per stream (0 = off)

  gateway send --addr HOST:PORT (--trace FILE | --demo-collision)
               [--sf N] [--cr N] [--seed N] [--stream N] [--chunk N]
               [--wideband] [--stats] [--shutdown] [--chaos-seed N]
      stream a trace to a running daemon and print its uplink lines.
      --wideband marks every DATA frame with the WIDEBAND flag so the
      daemon channelizes the stream into 8 uplink channels first.
      --chaos-seed routes the connection through an in-process
      NetFaultPlan proxy (seeded injector picked from the matrix) and
      drives it with the reconnect+RESUME resilient client

  gateway bench [--sf N] [--cr N] [--workers N,M] [--streams N]
                [--packets N] [--seed N] [--json] [--chaos-seed N]
      in-process loopback throughput of the daemon (also verifies the
      uplink is byte-identical to a direct decode). --chaos-seed runs
      the seeded network-chaos soak matrix instead: every NetFaultPlan
      injector against a live daemon, asserting transcript parity

  deploy run [--nodes N] [--gateways K] [--load PPS] [--duration S]
             [--seed N] [--sf LIST] [--cr N] [--side M]
             [--traffic poisson|bursty:N] [--workers N] [--shard N]
             [--chunk N] [--sic] [--wideband] [--json]
      city-scale discrete-event deployment simulation: N nodes drop on
      a planar city, K gateways synthesize their IQ in streaming chunks
      (never a full trace in memory) through the complete TnB receive
      chain, and a network layer dedups cross-gateway copies with
      capture. --sf takes a comma list (e.g. 7,8,10) assigned to nodes
      by link quality; --traffic bursty:N sends duty-cycle-constrained
      bursts of up to N packets. Prints offered load, goodput, PRR and
      delay percentiles (--json for the machine-readable report).
      Output is byte-identical for any --workers / --shard / --chunk

  info --trace FILE
      print basic trace statistics";

/// Tiny `--flag value` parser.
struct Flags<'a>(&'a [String]);

impl<'a> Flags<'a> {
    fn get(&self, name: &str) -> Option<&'a str> {
        self.0
            .iter()
            .position(|a| a == name)
            .and_then(|i| self.0.get(i + 1))
            .map(String::as_str)
    }

    fn require(&self, name: &str) -> Result<&'a str, String> {
        self.get(name).ok_or_else(|| format!("missing {name}"))
    }

    fn parse_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("bad value for {name}: {v}")),
        }
    }

    fn has(&self, name: &str) -> bool {
        self.0.iter().any(|a| a == name)
    }
}

/// Receiver configuration from the shared flags (currently just `--sic`).
fn parse_tnb_config(flags: &Flags) -> TnbConfig {
    let mut cfg = TnbConfig::default();
    cfg.sic.enabled = flags.has("--sic");
    cfg
}

fn parse_params(flags: &Flags) -> Result<LoRaParams, String> {
    let sf: usize = flags.require("--sf")?.parse().map_err(|_| "bad --sf")?;
    let sf = SpreadingFactor::from_value(sf).ok_or("--sf must be 7..=12")?;
    let cr: usize = flags.parse_or("--cr", 4usize)?;
    let cr = CodingRate::from_value(cr).ok_or("--cr must be 1..=4")?;
    Ok(LoRaParams::new(sf, cr))
}

/// `tnb-cli generate`: synthesize a deployment trace to a file.
pub fn generate(args: &[String]) -> Result<(), String> {
    let flags = Flags(args);
    let out = flags.require("--out")?;
    let params = parse_params(&flags)?;
    let deployment = match flags.get("--deployment").unwrap_or("indoor") {
        "indoor" => Deployment::Indoor,
        "outdoor1" => Deployment::Outdoor1,
        "outdoor2" => Deployment::Outdoor2,
        other => return Err(format!("unknown deployment {other}")),
    };
    let cfg = ExperimentConfig {
        load_pps: flags.parse_or("--load", 10.0f64)?,
        duration_s: flags.parse_or("--duration", 3.0f64)?,
        seed: flags.parse_or("--seed", 1u64)?,
        ..ExperimentConfig::new(params, deployment)
    };
    let built = build_experiment(&cfg);
    save_trace(out, built.trace.samples()).map_err(|e| e.to_string())?;
    println!(
        "wrote {} ({} samples, {:.1} s at 1 Msps, {} packets from {} nodes)",
        out,
        built.trace.len(),
        built.trace.len() as f64 / params.sample_rate(),
        built.schedule.len(),
        deployment.node_count(),
    );
    Ok(())
}

/// `tnb-cli decode`: decode a trace file with a scheme and list packets.
pub fn decode(args: &[String]) -> Result<(), String> {
    let flags = Flags(args);
    let path = flags.require("--trace")?;
    let params = parse_params(&flags)?;
    let kind = match flags.get("--scheme").unwrap_or("tnb") {
        "tnb" => SchemeKind::Tnb,
        "tnb+sic" => SchemeKind::TnbSic,
        "thrive" => SchemeKind::Thrive,
        "sibling" => SchemeKind::Sibling,
        "lora-phy" => SchemeKind::LoRaPhy,
        "cic" => SchemeKind::Cic,
        "cic+" => SchemeKind::CicBec,
        "aligntrack" => SchemeKind::AlignTrack,
        "aligntrack+" => SchemeKind::AlignTrackBec,
        other => return Err(format!("unknown scheme {other}")),
    };
    let workers: usize = flags.parse_or("--workers", 1usize)?;
    let samples = load_trace(path).map_err(|e| e.to_string())?;
    if flags.has("--wideband") {
        if !matches!(kind, SchemeKind::Tnb) {
            return Err("--wideband supports only the tnb scheme (streaming pipeline)".into());
        }
        return decode_wideband(params, &samples, workers.max(1));
    }
    let scheme = kind.build(params);
    let decoded = scheme.decode_with_workers(&[&samples], workers.max(1));

    println!("node   seq    SNR(dB)  start(s)  CFO(Hz)");
    for d in &decoded {
        let (node, seq) = parse_payload(&d.payload)
            .map(|(n, s)| (n.to_string(), s.to_string()))
            .unwrap_or_else(|| ("?".into(), "?".into()));
        println!(
            "{node:<6} {seq:<6} {:<8.1} {:<9.4} {:<8.0}",
            d.snr_db,
            d.start / params.sample_rate(),
            d.cfo_cycles * params.bin_hz(),
        );
    }
    println!("- {} decoded {} pkts -", scheme.name(), decoded.len());
    Ok(())
}

/// `tnb-cli decode --wideband`: split one wideband capture into its
/// LoRa uplink channels with the polyphase channelizer and decode each
/// channel with its own streaming receiver.
fn decode_wideband(
    params: LoRaParams,
    samples: &[tnb_dsp::Complex32],
    workers: usize,
) -> Result<(), String> {
    let cfg = tnb_core::WidebandConfig {
        streaming: StreamingConfig {
            workers,
            ..StreamingConfig::default()
        },
        ..tnb_core::WidebandConfig::default()
    };
    let mut rx = tnb_core::WidebandReceiver::with_config(params, cfg);
    let channels = rx.channels();
    let mut decoded = Vec::new();
    for chunk in samples.chunks(262_144) {
        decoded.extend(rx.push(chunk));
    }
    decoded.extend(rx.finish());

    println!("chan   node   seq    SNR(dB)  start(s)  CFO(Hz)");
    for cp in &decoded {
        let d = &cp.packet;
        let (node, seq) = parse_payload(&d.payload)
            .map(|(n, s)| (n.to_string(), s.to_string()))
            .unwrap_or_else(|| ("?".into(), "?".into()));
        println!(
            "{:<6} {node:<6} {seq:<6} {:<8.1} {:<9.4} {:<8.0}",
            cp.channel,
            d.snr_db,
            d.start / params.sample_rate(),
            d.cfo_cycles * params.bin_hz(),
        );
    }
    println!(
        "- tnb wideband decoded {} pkts across {} channels -",
        decoded.len(),
        channels
    );
    Ok(())
}

/// `tnb-cli compare`: run every scheme over a trace file and print the
/// comparison table (decoded counts), like a one-trace Fig. 12 cell.
pub fn compare(args: &[String]) -> Result<(), String> {
    let flags = Flags(args);
    let path = flags.require("--trace")?;
    let params = parse_params(&flags)?;
    let workers: usize = flags.parse_or("--workers", 1usize)?;
    let samples = load_trace(path).map_err(|e| e.to_string())?;
    println!("{:<14} {:>8}", "scheme", "decoded");
    for kind in SchemeKind::ALL {
        let scheme = kind.build(params);
        let n = scheme
            .decode_with_workers(&[&samples], workers.max(1))
            .len();
        println!("{:<14} {:>8}", scheme.name(), n);
    }
    Ok(())
}

/// Synthesizes the seeded three-packet collision used by the repo's
/// determinism tests: three SF8/CR4 packets from distinct nodes, the
/// middle one colliding with both neighbours.
fn demo_collision(params: LoRaParams, seed: u64) -> Vec<tnb_dsp::Complex32> {
    let l = params.samples_per_symbol();
    let mut b = TraceBuilder::new(params, seed);
    let cfg = [
        (vec![0xA1u8; 16], 4_000usize, 12.0f32, 1_500.0f64),
        (vec![0x5B; 16], 4_000 + 14 * l + 300, 10.0, -2_200.0),
        (vec![0x3C; 16], 4_000 + 28 * l + 900, 9.0, 800.0),
    ];
    for (payload, start_sample, snr_db, cfo_hz) in cfg {
        b.add_packet(
            &payload,
            PacketConfig {
                start_sample,
                snr_db,
                cfo_hz,
                ..Default::default()
            },
        );
    }
    b.build().samples().to_vec()
}

/// Renders the observability report as one JSON object: top-level decode
/// outcome, per-stage deterministic counters, then the wall-time and
/// distribution snapshot.
fn report_json(workers: usize, report: &DecodeReport, snapshot: &MetricsSnapshot) -> String {
    let mut stages = String::new();
    for (i, &stage) in Stage::ALL.iter().enumerate() {
        if i > 0 {
            stages.push(',');
        }
        stages.push_str(&format!("\"{}\":{{", stage.name()));
        for (j, (name, value)) in report.stages.stage_fields(stage).iter().enumerate() {
            if j > 0 {
                stages.push(',');
            }
            stages.push_str(&format!("\"{name}\":{value}"));
        }
        stages.push('}');
    }
    format!(
        "{{\"scheme\":\"tnb\",\"workers\":{workers},\
         \"detected\":{},\"decoded\":{},\"header_failures\":{},\
         \"payload_failures\":{},\"truncated\":{},\
         \"second_pass_rescues\":{},\"outcomes\":{},\
         \"stage_counters\":{{{stages}}},\"metrics\":{}}}",
        report.detected,
        report.decoded,
        report.header_failures,
        report.payload_failures,
        report.truncated,
        report.second_pass_rescues,
        report.outcomes_json(),
        snapshot.to_json(),
    )
}

/// `tnb-cli report`: decode with the TnB pipeline and print per-stage
/// wall times, counters and distributions (the observability layer).
pub fn report(args: &[String]) -> Result<(), String> {
    let flags = Flags(args);
    let (params, samples) = if flags.has("--demo-collision") {
        let sf = SpreadingFactor::from_value(flags.parse_or("--sf", 8usize)?)
            .ok_or("--sf must be 7..=12")?;
        let cr =
            CodingRate::from_value(flags.parse_or("--cr", 4usize)?).ok_or("--cr must be 1..=4")?;
        let params = LoRaParams::new(sf, cr);
        (
            params,
            demo_collision(params, flags.parse_or("--seed", 7u64)?),
        )
    } else {
        let path = flags.require("--trace")?;
        let params = parse_params(&flags)?;
        (params, load_trace(path).map_err(|e| e.to_string())?)
    };
    let workers: usize = flags.parse_or("--workers", 1usize)?.max(1);
    let cfg = parse_tnb_config(&flags);
    let (decoded, report, snapshot) = if workers > 1 {
        ParallelReceiver::with_config(params, cfg, workers).decode_with_metrics(&samples)
    } else {
        TnbReceiver::with_config(params, cfg).decode_with_metrics(&samples)
    };

    if flags.has("--json") {
        println!("{}", report_json(workers, &report, &snapshot));
        return Ok(());
    }

    println!(
        "decoded {} / {} detected  (header fail {}, payload fail {}, truncated {})",
        decoded.len(),
        report.detected,
        report.header_failures,
        report.payload_failures,
        report.truncated,
    );
    println!(
        "{:<8} {:>6} {:>12} {:>10} {:>10}  counters",
        "stage", "spans", "wall_sum_us", "p50_us", "p99_us"
    );
    for stage in Stage::ALL {
        let w = snapshot.wall(stage);
        let counters = report
            .stages
            .stage_fields(stage)
            .iter()
            .map(|(name, value)| format!("{name}={value}"))
            .collect::<Vec<_>>()
            .join(" ");
        println!(
            "{:<8} {:>6} {:>12.1} {:>10.1} {:>10.1}  {counters}",
            stage.name(),
            w.count,
            w.sum as f64 / 1e3,
            w.p50 as f64 / 1e3,
            w.p99 as f64 / 1e3,
        );
    }
    let cost = &snapshot.matching_cost_milli;
    let cand = &snapshot.bec_candidates;
    println!(
        "matching cost (milli): n={} p50={} p99={}   BEC candidates: n={} p50={} p99={}",
        cost.count, cost.p50, cost.p99, cand.count, cand.p50, cand.p99,
    );
    Ok(())
}

/// All degradation reasons, in the order the fault report prints them.
const REASONS: [DegradeReason; 5] = [
    DegradeReason::Header,
    DegradeReason::Payload,
    DegradeReason::PayloadBudget,
    DegradeReason::Truncated,
    DegradeReason::WorkerPanic,
];

/// One fault-matrix row: which receiver saw which fault, and how it fared.
struct FaultRow {
    receiver: &'static str,
    fault: &'static str,
    samples: usize,
    decoded: usize,
    report: DecodeReport,
}

/// Decodes `samples` with one receiver flavour, returning packet count
/// and the full report. Streaming pushes in 64k-sample chunks to
/// exercise the chunk-boundary path.
fn decode_flavour(
    flavour: &'static str,
    params: LoRaParams,
    cfg: TnbConfig,
    workers: usize,
    samples: &[tnb_dsp::Complex32],
) -> (usize, DecodeReport) {
    match flavour {
        "parallel" => {
            let (d, r, _) =
                ParallelReceiver::with_config(params, cfg, workers).decode_with_metrics(samples);
            (d.len(), r)
        }
        "streaming" => {
            let cfg = StreamingConfig {
                receiver: cfg,
                workers,
                ..Default::default()
            };
            let mut rx = StreamingReceiver::with_config(params, cfg);
            let mut n = 0;
            for chunk in samples.chunks(65_536) {
                n += rx.push(chunk).len();
            }
            n += rx.finish().len();
            (n, rx.report())
        }
        _ => {
            let (d, r, _) = TnbReceiver::with_config(params, cfg).decode_with_metrics(samples);
            (d.len(), r)
        }
    }
}

/// Renders the fault matrix as a JSON array of row objects.
fn faults_json(rows: &[FaultRow]) -> String {
    let mut out = String::from("[");
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let mut reasons = String::new();
        for (j, r) in REASONS.iter().enumerate() {
            if j > 0 {
                reasons.push(',');
            }
            reasons.push_str(&format!(
                "\"{}\":{}",
                r.name(),
                row.report.degraded_with(*r)
            ));
        }
        out.push_str(&format!(
            "{{\"receiver\":\"{}\",\"fault\":\"{}\",\"samples\":{},\
             \"detected\":{},\"decoded\":{},\"degraded\":{},\
             \"reasons\":{{{reasons}}},\
             \"thrive_budget_exhausted\":{},\"bec_budget_exhausted\":{}}}",
            row.receiver,
            row.fault,
            row.samples,
            row.report.detected,
            row.decoded,
            row.report.degraded(),
            row.report.stages.thrive_budget_exhausted,
            row.report.stages.bec_budget_exhausted,
        ));
    }
    out.push(']');
    out
}

/// `tnb-cli faults`: run the seeded fault-injection matrix against the
/// decode pipeline and report graceful-degradation behaviour per fault.
pub fn faults(args: &[String]) -> Result<(), String> {
    let flags = Flags(args);
    let seed: u64 = flags.parse_or("--seed", 7u64)?;
    let (params, base) = if flags.has("--trace") {
        let path = flags.require("--trace")?;
        let params = parse_params(&flags)?;
        (params, load_trace(path).map_err(|e| e.to_string())?)
    } else {
        let sf = SpreadingFactor::from_value(flags.parse_or("--sf", 8usize)?)
            .ok_or("--sf must be 7..=12")?;
        let cr =
            CodingRate::from_value(flags.parse_or("--cr", 4usize)?).ok_or("--cr must be 1..=4")?;
        let params = LoRaParams::new(sf, cr);
        (params, demo_collision(params, seed))
    };
    let workers: usize = flags.parse_or("--workers", 2usize)?.max(1);
    let flavours: Vec<&'static str> = match flags.get("--receiver").unwrap_or("all") {
        "serial" => vec!["serial"],
        "parallel" => vec!["parallel"],
        "streaming" => vec!["streaming"],
        "all" => vec!["serial", "parallel", "streaming"],
        other => return Err(format!("unknown receiver {other}")),
    };

    let matrix = FaultPlan::matrix(seed);
    let cfg = parse_tnb_config(&flags);
    let mut rows = Vec::new();
    for flavour in &flavours {
        for (name, plan) in &matrix {
            let faulty = plan.apply(&base);
            let (decoded, report) = decode_flavour(flavour, params, cfg, workers, &faulty);
            rows.push(FaultRow {
                receiver: flavour,
                fault: name,
                samples: faulty.len(),
                decoded,
                report,
            });
        }
    }

    if flags.has("--json") {
        println!("{}", faults_json(&rows));
        return Ok(());
    }

    println!(
        "{:<10} {:<14} {:>9} {:>8} {:>7} {:>8}  degradation reasons / budgets",
        "receiver", "fault", "samples", "detected", "decoded", "degraded"
    );
    for row in &rows {
        let mut notes: Vec<String> = REASONS
            .iter()
            .filter_map(|r| {
                let n = row.report.degraded_with(*r);
                (n > 0).then(|| format!("{}={n}", r.name()))
            })
            .collect();
        if row.report.stages.thrive_budget_exhausted > 0 {
            notes.push(format!(
                "thrive-budget={}",
                row.report.stages.thrive_budget_exhausted
            ));
        }
        if row.report.stages.bec_budget_exhausted > 0 {
            notes.push(format!(
                "bec-budget={}",
                row.report.stages.bec_budget_exhausted
            ));
        }
        println!(
            "{:<10} {:<14} {:>9} {:>8} {:>7} {:>8}  {}",
            row.receiver,
            row.fault,
            row.samples,
            row.report.detected,
            row.decoded,
            row.report.degraded(),
            if notes.is_empty() {
                "-".to_string()
            } else {
                notes.join(" ")
            },
        );
    }
    println!(
        "- fault matrix: {} faults x {} receivers, seed {}, no panics -",
        matrix.len(),
        flavours.len(),
        seed
    );
    Ok(())
}

/// `tnb-cli info`: basic statistics of a trace file.
pub fn info(args: &[String]) -> Result<(), String> {
    let flags = Flags(args);
    let path = flags.require("--trace")?;
    let samples = load_trace(path).map_err(|e| e.to_string())?;
    let power: f64 =
        samples.iter().map(|z| z.norm_sqr() as f64).sum::<f64>() / samples.len().max(1) as f64;
    println!(
        "{path}: {} samples, {:.3} s at 1 Msps",
        samples.len(),
        samples.len() as f64 / 1e6
    );
    println!("mean power {power:.3} (unit noise floor = 1.0 for synthetic traces)");
    Ok(())
}

/// `tnb-cli deploy`: the city-scale deployment simulator.
pub fn deploy(args: &[String]) -> Result<(), String> {
    let Some(sub) = args.first() else {
        return Err("deploy needs a subcommand: run".into());
    };
    match sub.as_str() {
        "run" => deploy_run(&args[1..]),
        other => Err(format!("unknown deploy subcommand '{other}' (run)")),
    }
}

/// `tnb-cli deploy run`: simulate a seeded city and print the report.
fn deploy_run(args: &[String]) -> Result<(), String> {
    let flags = Flags(args);
    let mut cfg = tnb_deploy::DeployConfig::default();
    cfg.nodes = flags.parse_or("--nodes", cfg.nodes)?;
    cfg.gateways = flags.parse_or("--gateways", cfg.gateways)?;
    cfg.load_pps = flags.parse_or("--load", cfg.load_pps)?;
    cfg.duration_s = flags.parse_or("--duration", cfg.duration_s)?;
    cfg.seed = flags.parse_or("--seed", cfg.seed)?;
    cfg.side_m = flags.parse_or("--side", cfg.side_m)?;
    cfg.shard_samples = flags.parse_or("--shard", cfg.shard_samples)?;
    cfg.chunk_samples = flags.parse_or("--chunk", cfg.chunk_samples)?;
    cfg.sic = flags.has("--sic");
    cfg.wideband = flags.has("--wideband");
    cfg.cr = CodingRate::from_value(flags.parse_or("--cr", 4usize)?).ok_or("--cr must be 1..=4")?;
    if let Some(list) = flags.get("--sf") {
        let mut sfs = Vec::new();
        for part in list.split(',') {
            let v: usize = part
                .trim()
                .parse()
                .map_err(|_| format!("bad value for --sf: {part}"))?;
            sfs.push(SpreadingFactor::from_value(v).ok_or("--sf must list values in 7..=12")?);
        }
        cfg.sfs = sfs;
    }
    if let Some(t) = flags.get("--traffic") {
        cfg.traffic = match t {
            "poisson" => tnb_deploy::TrafficModel::Poisson,
            other => match other.strip_prefix("bursty:").map(str::parse) {
                Some(Ok(n)) => tnb_deploy::TrafficModel::Bursty { max_burst: n },
                _ => return Err(format!("bad value for --traffic: {t} (poisson | bursty:N)")),
            },
        };
    }
    if cfg.nodes == 0 || cfg.gateways == 0 {
        return Err("--nodes and --gateways must be at least 1".into());
    }
    let workers: usize = flags.parse_or("--workers", 1usize)?.max(1);
    let scene = tnb_deploy::Scene::new(cfg);
    let report = tnb_deploy::run_deploy(&scene, workers);
    if flags.has("--json") {
        println!("{}", report.to_json());
    } else {
        println!("{}", report.summary());
    }
    Ok(())
}

/// `tnb-cli gateway`: the networked daemon and its loopback clients.
pub fn gateway(args: &[String]) -> Result<(), String> {
    let Some(sub) = args.first() else {
        return Err("gateway needs a subcommand: serve | send | bench".into());
    };
    let rest = &args[1..];
    match sub.as_str() {
        "serve" => gateway_serve(rest),
        "send" => gateway_send(rest),
        "bench" => gateway_bench(rest),
        other => Err(format!(
            "unknown gateway subcommand '{other}' (serve|send|bench)"
        )),
    }
}

/// `tnb-cli gateway serve`: run the daemon until a client sends the
/// SHUTDOWN verb.
fn gateway_serve(args: &[String]) -> Result<(), String> {
    let flags = Flags(args);
    let addr = flags.get("--addr").unwrap_or("127.0.0.1:7878");
    let params = parse_params(&flags)?;
    let workers: usize = flags.parse_or("--workers", 1usize)?.max(1);
    let idle_ms: u64 = flags.parse_or("--idle-timeout", 0u64)?;
    let max_conns: usize = flags.parse_or("--max-conns", 0usize)?;
    let cfg = tnb_gateway::GatewayConfig {
        params,
        streaming: StreamingConfig {
            receiver: parse_tnb_config(&flags),
            workers,
            ..StreamingConfig::default()
        },
        queue_chunks: flags.parse_or("--queue", 256usize)?,
        quota_chunks: flags.parse_or("--quota", 0usize)?,
        idle_timeout: (idle_ms > 0).then(|| std::time::Duration::from_millis(idle_ms)),
        max_conns,
        ..tnb_gateway::GatewayConfig::new(params)
    };
    let gw = tnb_gateway::Gateway::spawn(addr, cfg).map_err(|e| format!("bind {addr}: {e}"))?;
    println!(
        "gateway listening on {} (sf {}, cr {}, {} worker{}, queue {} chunks, \
         idle-timeout {}, max-conns {})",
        gw.local_addr(),
        params.sf.value(),
        params.cr.value(),
        workers,
        if workers == 1 { "" } else { "s" },
        flags.parse_or("--queue", 256usize)?,
        if idle_ms > 0 {
            format!("{idle_ms}ms")
        } else {
            "off".into()
        },
        if max_conns > 0 {
            max_conns.to_string()
        } else {
            "off".into()
        },
    );
    // Serve until a client's SHUTDOWN verb flips the flag (the daemon
    // has no signal handling of its own — a wire verb is the one
    // graceful stop, which is what the e2e smoke exercises).
    while !gw.is_shutting_down() {
        std::thread::sleep(std::time::Duration::from_millis(100));
    }
    let stats = gw.join();
    println!("gateway stopped: {}", stats.to_json());
    Ok(())
}

/// `tnb-cli gateway send`: stream a trace (or the demo collision) to a
/// daemon and print every uplink line it returns.
fn gateway_send(args: &[String]) -> Result<(), String> {
    let flags = Flags(args);
    let addr = flags.require("--addr")?;
    let (params, samples) = if flags.has("--demo-collision") {
        let sf = SpreadingFactor::from_value(flags.parse_or("--sf", 8usize)?)
            .ok_or("--sf must be 7..=12")?;
        let cr =
            CodingRate::from_value(flags.parse_or("--cr", 4usize)?).ok_or("--cr must be 1..=4")?;
        let params = LoRaParams::new(sf, cr);
        (
            params,
            demo_collision(params, flags.parse_or("--seed", 7u64)?),
        )
    } else {
        let path = flags.require("--trace")?;
        let params = parse_params(&flags)?;
        (params, load_trace(path).map_err(|e| e.to_string())?)
    };
    let _ = params;
    let stream_id: u32 = flags.parse_or("--stream", 0u32)?;
    let chunk: usize = flags.parse_or("--chunk", tnb_gateway::client::DEFAULT_CHUNK)?;
    if let Some(chaos) = flags.get("--chaos-seed") {
        let chaos_seed: u64 = chaos
            .parse()
            .map_err(|_| format!("bad value for --chaos-seed: {chaos}"))?;
        if flags.has("--wideband") {
            return Err("--chaos-seed does not support --wideband".into());
        }
        return gateway_send_chaos(&flags, addr, chaos_seed, stream_id, &samples, chunk);
    }
    let mut client = tnb_gateway::GatewayClient::connect(
        addr,
        std::time::Duration::from_secs(flags.parse_or("--connect-timeout", 10u64)?),
    )
    .map_err(|e| format!("connect {addr}: {e}"))?;
    if flags.has("--wideband") {
        client
            .send_samples_wideband(stream_id, &samples, chunk)
            .map_err(|e| format!("stream: {e}"))?;
    } else {
        client
            .send_samples(stream_id, &samples, chunk)
            .map_err(|e| format!("stream: {e}"))?;
    }
    client
        .end_stream(stream_id)
        .map_err(|e| format!("stream: {e}"))?;
    if flags.has("--stats") {
        client.request_stats().map_err(|e| format!("stats: {e}"))?;
    }
    if flags.has("--shutdown") {
        client
            .request_shutdown()
            .map_err(|e| format!("shutdown: {e}"))?;
    }
    for line in client.finish() {
        println!("{line}");
    }
    Ok(())
}

/// The `--chaos-seed` leg of `gateway send`: route the connection
/// through an in-process [`NetFaultPlan`] proxy (the seed picks one
/// injector from the matrix and its fault offsets) and drive it with
/// the resilient client, proving reconnect+RESUME survives the fault.
fn gateway_send_chaos(
    flags: &Flags,
    addr: &str,
    chaos_seed: u64,
    stream_id: u32,
    samples: &[tnb_dsp::Complex32],
    chunk: usize,
) -> Result<(), String> {
    use std::net::ToSocketAddrs;
    let target = addr
        .to_socket_addrs()
        .map_err(|e| format!("resolve {addr}: {e}"))?
        .next()
        .ok_or_else(|| format!("resolve {addr}: no address"))?;
    let plans = tnb_gateway::NetFaultPlan::matrix(chaos_seed);
    let pick = (chaos_seed % plans.len() as u64) as usize;
    let plan = plans.into_iter().nth(pick).ok_or("empty chaos matrix")?;
    eprintln!(
        "chaos: injecting '{}' (seed {chaos_seed}) between client and {target}",
        plan.name
    );
    let proxy =
        tnb_gateway::ChaosProxy::spawn(target, plan).map_err(|e| format!("chaos proxy: {e}"))?;
    let mut client = tnb_gateway::ResilientClient::connect(
        proxy.local_addr(),
        tnb_gateway::ResilientConfig {
            seed: chaos_seed,
            connect_timeout: std::time::Duration::from_secs(
                flags.parse_or("--connect-timeout", 10u64)?,
            ),
            ..tnb_gateway::ResilientConfig::default()
        },
    )
    .map_err(|e| format!("connect {addr}: {e}"))?;
    client
        .send_samples(stream_id, samples, chunk)
        .map_err(|e| format!("stream: {e}"))?;
    client
        .end_stream(stream_id)
        .map_err(|e| format!("stream: {e}"))?;
    client.drain().map_err(|e| format!("drain: {e}"))?;
    if flags.has("--stats") {
        client.request_stats().map_err(|e| format!("stats: {e}"))?;
    }
    if flags.has("--shutdown") {
        client
            .request_shutdown()
            .map_err(|e| format!("shutdown: {e}"))?;
    }
    let cstats = client.stats();
    for line in client.finish() {
        println!("{line}");
    }
    let (conns, up, down, faults) = proxy.stats();
    eprintln!(
        "chaos: {} reconnect(s), {} frame(s) resent, proxy saw {} connection(s), \
         {} byte(s) up / {} down, {} fault(s) fired",
        cstats.reconnects, cstats.retransmitted_frames, conns, up, down, faults
    );
    Ok(())
}

/// `tnb-cli gateway bench`: loopback throughput (daemon + client in one
/// process) for the benchmark artifact.
fn gateway_bench(args: &[String]) -> Result<(), String> {
    let flags = Flags(args);
    let sf = SpreadingFactor::from_value(flags.parse_or("--sf", 8usize)?)
        .ok_or("--sf must be 7..=12")?;
    let cr = CodingRate::from_value(flags.parse_or("--cr", 4usize)?).ok_or("--cr must be 1..=4")?;
    let params = LoRaParams::new(sf, cr);
    if let Some(chaos) = flags.get("--chaos-seed") {
        let chaos_seed: u64 = chaos
            .parse()
            .map_err(|_| format!("bad value for --chaos-seed: {chaos}"))?;
        return gateway_bench_chaos(&flags, params, chaos_seed);
    }
    let workers_list: Vec<usize> = match flags.get("--workers") {
        None => vec![1, 4],
        Some(w) => w
            .split(',')
            .map(|x| x.trim().parse().map_err(|_| format!("bad --workers: {w}")))
            .collect::<Result<_, _>>()?,
    };
    let mut rows = Vec::new();
    for &workers in &workers_list {
        let cfg = tnb_sim::gateway::LoopbackConfig {
            workers: workers.max(1),
            streams: flags.parse_or("--streams", 2u32)?,
            packets: flags.parse_or("--packets", 3usize)?,
            seed: flags.parse_or("--seed", 7u64)?,
            ..tnb_sim::gateway::LoopbackConfig::new(params)
        };
        let bench = tnb_sim::gateway::bench_loopback(&cfg).map_err(|e| e.to_string())?;
        if !bench.byte_identical {
            return Err(format!(
                "loopback at {workers} workers diverged from the direct decode"
            ));
        }
        rows.push((workers, bench));
    }
    if flags.has("--json") {
        let body: Vec<String> = rows.iter().map(|(w, b)| b.to_json(*w)).collect();
        println!("{{\"gateway_loopback\":[{}]}}", body.join(","));
    } else {
        for (w, b) in &rows {
            println!(
                "workers {w}: {:.1} packets/s, {:.2} Msamples/s ({} uplinked, byte-identical)",
                b.packets_per_sec,
                b.samples_per_sec / 1e6,
                b.uplinked,
            );
        }
    }
    Ok(())
}

/// The `--chaos-seed` leg of `gateway bench`: the network-chaos soak.
/// Runs every [`NetFaultPlan::matrix`] injector against a live daemon
/// through the chaos proxy and errors unless every recoverable run's
/// transcript is byte-identical to the clean reference.
fn gateway_bench_chaos(flags: &Flags, params: LoRaParams, chaos_seed: u64) -> Result<(), String> {
    let cfg = tnb_sim::chaos::ChaosConfig {
        streams: flags.parse_or("--streams", 1u32)?,
        packets: flags.parse_or("--packets", 2usize)?,
        seed: flags.parse_or("--seed", 7u64)?,
        chaos_seed,
        ..tnb_sim::chaos::ChaosConfig::new(params)
    };
    let rows = tnb_sim::chaos::run_chaos_matrix(&cfg).map_err(|e| e.to_string())?;
    for row in &rows {
        if row.stats.worker_panics > 0 {
            return Err(format!("chaos '{}': daemon worker panicked", row.scenario));
        }
        if row.recoverable && !row.parity {
            return Err(format!(
                "chaos '{}': transcript diverged from the clean run \
                 (reconnects={}, resent={})",
                row.scenario, row.reconnects, row.resent
            ));
        }
    }
    if flags.has("--json") {
        println!("{}", tnb_sim::chaos::chaos_json(&rows));
    } else {
        for row in &rows {
            println!(
                "{:<18} parity={} reconnects={} resent={} faults={} parked={} resumed={}",
                row.scenario,
                row.parity,
                row.reconnects,
                row.resent,
                row.proxy_faults,
                row.stats.sessions_parked,
                row.stats.sessions_resumed,
            );
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn generate_then_decode_roundtrip() {
        let dir = std::env::temp_dir().join("tnb_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.iq16");
        let path_s = path.to_str().unwrap();
        generate(&s(&[
            "--out",
            path_s,
            "--sf",
            "8",
            "--cr",
            "4",
            "--load",
            "4",
            "--duration",
            "1.2",
            "--seed",
            "3",
        ]))
        .unwrap();
        decode(&s(&[
            "--trace",
            path_s,
            "--sf",
            "8",
            "--scheme",
            "tnb",
            "--workers",
            "2",
        ]))
        .unwrap();
        info(&s(&["--trace", path_s])).unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_flags_are_reported() {
        assert!(generate(&s(&["--sf", "8"])).is_err());
        assert!(decode(&s(&["--sf", "8"])).is_err());
        assert!(parse_params(&Flags(&s(&["--sf", "6"]))).is_err());
        assert!(parse_params(&Flags(&s(&["--sf", "8", "--cr", "5"]))).is_err());
    }

    #[test]
    fn malformed_numeric_flags_error_and_name_the_flag() {
        // Every subcommand must turn a malformed numeric value into a
        // usage error naming the offending flag — never a panic.
        let cases: Vec<(Result<(), String>, &str)> = vec![
            (
                generate(&s(&["--out", "/dev/null", "--sf", "8", "--load", "fast"])),
                "--load",
            ),
            (
                generate(&s(&["--out", "/dev/null", "--sf", "8", "--duration", "3s"])),
                "--duration",
            ),
            (
                generate(&s(&["--out", "/dev/null", "--sf", "8", "--seed", "0x7"])),
                "--seed",
            ),
            (
                decode(&s(&[
                    "--trace",
                    "/dev/null",
                    "--sf",
                    "8",
                    "--workers",
                    "many",
                ])),
                "--workers",
            ),
            (
                compare(&s(&[
                    "--trace",
                    "/dev/null",
                    "--sf",
                    "8",
                    "--workers",
                    "-1",
                ])),
                "--workers",
            ),
            (
                report(&s(&["--demo-collision", "--seed", "deadbeef"])),
                "--seed",
            ),
            (
                report(&s(&["--demo-collision", "--workers", "two"])),
                "--workers",
            ),
            (faults(&s(&["--demo-collision", "--seed", "1.5"])), "--seed"),
            (
                gateway(&s(&["serve", "--sf", "8", "--queue", "big"])),
                "--queue",
            ),
            (
                gateway(&s(&[
                    "send",
                    "--addr",
                    "x",
                    "--demo-collision",
                    "--chunk",
                    "huge",
                ])),
                "--chunk",
            ),
            (
                gateway(&s(&[
                    "send",
                    "--addr",
                    "x",
                    "--demo-collision",
                    "--stream",
                    "-2",
                ])),
                "--stream",
            ),
            (gateway(&s(&["bench", "--streams", "three"])), "--streams"),
            (gateway(&s(&["bench", "--workers", "1,x"])), "--workers"),
            (
                gateway(&s(&["serve", "--sf", "8", "--idle-timeout", "soon"])),
                "--idle-timeout",
            ),
            (
                gateway(&s(&["serve", "--sf", "8", "--max-conns", "lots"])),
                "--max-conns",
            ),
            (
                gateway(&s(&["serve", "--sf", "8", "--quota", "-3"])),
                "--quota",
            ),
            (
                gateway(&s(&[
                    "send",
                    "--addr",
                    "x",
                    "--demo-collision",
                    "--chaos-seed",
                    "lucky",
                ])),
                "--chaos-seed",
            ),
            (
                gateway(&s(&["bench", "--chaos-seed", "0x1"])),
                "--chaos-seed",
            ),
            (deploy(&s(&["run", "--nodes", "many"])), "--nodes"),
            (deploy(&s(&["run", "--load", "heavy"])), "--load"),
            (deploy(&s(&["run", "--shard", "wide"])), "--shard"),
            (deploy(&s(&["run", "--sf", "x,8"])), "--sf"),
            (deploy(&s(&["run", "--traffic", "sometimes"])), "--traffic"),
        ];
        for (result, flag) in cases {
            let err = result.expect_err(flag);
            assert!(err.contains(flag), "error {err:?} should name {flag}");
        }
    }

    #[test]
    fn decode_wideband_roundtrip() {
        // Save an 8-channel wideband scene as a trace file, then decode
        // it through the public subcommand with --wideband.
        let dir = std::env::temp_dir().join("tnb_cli_wideband");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("w.iq16");
        let path_s = path.to_str().unwrap();
        let params = LoRaParams::new(SpreadingFactor::SF8, CodingRate::CR4);
        let cfg = tnb_sim::wideband::WidebandLoopbackConfig::new(params);
        let (scene, _) = tnb_sim::wideband::wideband_scene(&cfg);
        save_trace(path_s, &scene).unwrap();
        decode(&s(&["--trace", path_s, "--sf", "8", "--wideband"])).unwrap();
        // Non-TnB schemes cannot ride the channelizer pipeline.
        let err = decode(&s(&[
            "--trace",
            path_s,
            "--sf",
            "8",
            "--wideband",
            "--scheme",
            "cic",
        ]))
        .unwrap_err();
        assert!(err.contains("--wideband"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn compare_runs_all_schemes() {
        let dir = std::env::temp_dir().join("tnb_cli_cmp");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("c.iq16");
        let path_s = path.to_str().unwrap();
        generate(&s(&[
            "--out",
            path_s,
            "--sf",
            "8",
            "--load",
            "3",
            "--duration",
            "1.0",
        ]))
        .unwrap();
        compare(&s(&["--trace", path_s, "--sf", "8"])).unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn report_demo_collision_emits_all_stages() {
        // Human-readable path just has to run.
        report(&s(&["--demo-collision", "--seed", "7"])).unwrap();
        // JSON path: check the object carries every stage plus timings.
        let params = LoRaParams::new(SpreadingFactor::SF8, CodingRate::CR4);
        let samples = demo_collision(params, 7);
        let (_, rep, snap) = TnbReceiver::new(params).decode_with_metrics(&samples);
        let json = report_json(1, &rep, &snap);
        for key in [
            "\"detect\"",
            "\"sync\"",
            "\"sigcalc\"",
            "\"thrive\"",
            "\"bec\"",
            "\"sic\"",
            "\"timings_ns\"",
            "\"stage_counters\"",
            "\"matching_cost_milli\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert!(json.contains("\"decoded\":3"), "{json}");
        // Per-packet outcomes ride along for degradation-reason analysis
        // (and the gateway uplink reuses the same schema).
        assert!(json.contains("\"outcomes\":["), "{json}");
        assert_eq!(json.matches("\"status\":\"decoded\"").count(), 3, "{json}");
    }

    #[test]
    fn gateway_roundtrip_serve_send_and_bench() {
        // Daemon + client through the public subcommand entry points:
        // serve on an ephemeral port in a thread, send the demo
        // collision with --stats --shutdown, then confirm serve exits.
        let gw = tnb_gateway::Gateway::spawn(
            ("127.0.0.1", 0),
            tnb_gateway::GatewayConfig::new(LoRaParams::new(SpreadingFactor::SF8, CodingRate::CR4)),
        )
        .unwrap();
        let addr = gw.local_addr().to_string();
        gateway(&s(&[
            "send",
            "--addr",
            &addr,
            "--demo-collision",
            "--stats",
            "--shutdown",
        ]))
        .unwrap();
        let stats = gw.join();
        assert!(stats.packets_uplinked >= 2, "{stats:?}");

        // Bench path (also asserts byte-identity internally).
        gateway(&s(&["bench", "--workers", "1", "--streams", "1", "--json"])).unwrap();

        // Error paths are typed, not panics.
        assert!(gateway(&s(&["bogus"])).is_err());
        assert!(gateway(&[]).is_err());
    }

    #[test]
    fn report_parallel_counters_match_serial() {
        let params = LoRaParams::new(SpreadingFactor::SF8, CodingRate::CR4);
        let samples = demo_collision(params, 7);
        let (_, serial, _) = TnbReceiver::new(params).decode_with_metrics(&samples);
        let (_, par, _) = ParallelReceiver::new(params, 4).decode_with_metrics(&samples);
        assert_eq!(serial.stages, par.stages);
    }

    #[test]
    fn deploy_run_smoke() {
        // A pocket-sized city through the public subcommand, both
        // output modes; error paths are typed, not panics.
        let base = [
            "run",
            "--nodes",
            "500",
            "--gateways",
            "1",
            "--sf",
            "7",
            "--load",
            "10",
            "--duration",
            "0.2",
            "--side",
            "300",
            "--seed",
            "2",
            "--workers",
            "2",
        ];
        deploy(&s(&base)).unwrap();
        let mut json = base.to_vec();
        json.push("--json");
        deploy(&s(&json)).unwrap();
        assert!(deploy(&[]).is_err());
        assert!(deploy(&s(&["bogus"])).is_err());
        assert!(deploy(&s(&["run", "--sf", "6"])).is_err());
        assert!(deploy(&s(&["run", "--nodes", "0"])).is_err());
    }

    #[test]
    fn unknown_scheme_rejected() {
        let e = decode(&s(&[
            "--trace",
            "/nonexistent",
            "--sf",
            "8",
            "--scheme",
            "magic",
        ]));
        assert!(e.is_err());
    }
}
