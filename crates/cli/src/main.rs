//! `tnb-cli` — generate and decode LoRa traces from the command line.
//!
//! Mirrors the paper's artifact workflow (`TnBMain.m`): point the tool at
//! a trace file and a spreading factor, get the list of decoded packets
//! (node, sequence number, SNR, start time, CFO) and the total count.
//!
//! ```text
//! tnb-cli generate --out indoor-SF8-CR3.iq16 --sf 8 --cr 3 --load 10 --duration 3
//! tnb-cli decode   --trace indoor-SF8-CR3.iq16 --sf 8 --scheme tnb
//! tnb-cli info     --trace indoor-SF8-CR3.iq16
//! ```

use std::process::ExitCode;

mod cmd;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{}", cmd::USAGE);
        return ExitCode::from(2);
    };
    let rest = &args[1..];
    let result = match cmd.as_str() {
        "generate" => cmd::generate(rest),
        "decode" => cmd::decode(rest),
        "compare" => cmd::compare(rest),
        "report" => cmd::report(rest),
        "faults" => cmd::faults(rest),
        "gateway" => cmd::gateway(rest),
        "deploy" => cmd::deploy(rest),
        "info" => cmd::info(rest),
        "--help" | "-h" | "help" => {
            println!("{}", cmd::USAGE);
            Ok(())
        }
        other => Err(format!("unknown command '{other}'\n{}", cmd::USAGE)),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(1)
        }
    }
}
