//! The paper's three testbed deployments (§8.1, Fig. 9/10).
//!
//! The paper deployed 19 (Indoor) and 25 (Outdoor 1, Outdoor 2) Adafruit
//! RFM95 nodes around a USRP sniffer. We model each deployment by its
//! node count and a per-node SNR distribution calibrated to the CDFs of
//! Fig. 10: SNRs within one deployment spread by more than 20 dB, the
//! outdoor deployments skew lower than the indoor one, and the same
//! node's packets vary by several dB within a run.

use rand::Rng;

/// One of the paper's testbeds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Deployment {
    /// 19 nodes inside a building (Fig. 9b).
    Indoor,
    /// 25 nodes, first outdoor layout (Fig. 9c).
    Outdoor1,
    /// 25 nodes, second outdoor layout (Fig. 9d).
    Outdoor2,
}

impl Deployment {
    /// All deployments in paper order.
    pub const ALL: [Deployment; 3] = [
        Deployment::Indoor,
        Deployment::Outdoor1,
        Deployment::Outdoor2,
    ];

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            Deployment::Indoor => "Indoor",
            Deployment::Outdoor1 => "Outdoor 1",
            Deployment::Outdoor2 => "Outdoor 2",
        }
    }

    /// Number of nodes (paper §8.1).
    pub fn node_count(self) -> usize {
        match self {
            Deployment::Indoor => 19,
            Deployment::Outdoor1 => 25,
            Deployment::Outdoor2 => 25,
        }
    }

    /// Mean and standard deviation (dB) of the per-node SNR distribution
    /// (calibration of Fig. 10: indoor highest, outdoor 1 lowest).
    fn snr_model(self) -> (f32, f32) {
        match self {
            Deployment::Indoor => (15.0, 7.0),
            Deployment::Outdoor1 => (8.0, 7.0),
            Deployment::Outdoor2 => (12.0, 7.0),
        }
    }

    /// Draws the base SNR (dB) of each node, clamped to a range where the
    /// weakest nodes are barely decodable (as in Fig. 10).
    pub fn draw_node_snrs<R: Rng + ?Sized>(self, rng: &mut R) -> Vec<f32> {
        let (mean, sd) = self.snr_model();
        (0..self.node_count())
            .map(|_| (mean + gaussian(rng) * sd).clamp(-6.0, 30.0))
            .collect()
    }

    /// Per-packet SNR jitter in dB (paper: "The SNR of the same node can
    /// also vary, such as by over 5 dB, in one run").
    pub fn packet_jitter_db<R: Rng + ?Sized>(rng: &mut R) -> f32 {
        (gaussian(rng) * 1.8).clamp(-4.0, 4.0)
    }
}

/// Standard normal sample via Box–Muller.
fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f32 {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn node_counts_match_paper() {
        assert_eq!(Deployment::Indoor.node_count(), 19);
        assert_eq!(Deployment::Outdoor1.node_count(), 25);
        assert_eq!(Deployment::Outdoor2.node_count(), 25);
    }

    #[test]
    fn snr_spread_exceeds_20db() {
        let mut rng = StdRng::seed_from_u64(1);
        for d in Deployment::ALL {
            let mut max_spread = 0.0f32;
            for _ in 0..20 {
                let snrs = d.draw_node_snrs(&mut rng);
                assert_eq!(snrs.len(), d.node_count());
                let lo = snrs.iter().copied().fold(f32::MAX, f32::min);
                let hi = snrs.iter().copied().fold(f32::MIN, f32::max);
                max_spread = max_spread.max(hi - lo);
            }
            // Paper: "the SNRs of the nodes may also differ by more than
            // 20 dB" within a deployment.
            assert!(max_spread > 20.0, "{}: spread {max_spread}", d.name());
        }
    }

    #[test]
    fn indoor_snr_higher_than_outdoor1() {
        let mut rng = StdRng::seed_from_u64(2);
        let mean = |d: Deployment, rng: &mut StdRng| {
            let mut acc = 0.0f32;
            let mut n = 0;
            for _ in 0..50 {
                for s in d.draw_node_snrs(rng) {
                    acc += s;
                    n += 1;
                }
            }
            acc / n as f32
        };
        let indoor = mean(Deployment::Indoor, &mut rng);
        let out1 = mean(Deployment::Outdoor1, &mut rng);
        assert!(indoor > out1 + 3.0, "indoor {indoor} out1 {out1}");
    }

    #[test]
    fn jitter_bounded() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let j = Deployment::packet_jitter_db(&mut rng);
            assert!((-4.0..=4.0).contains(&j));
        }
    }
}
