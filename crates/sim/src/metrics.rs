//! Evaluation metrics (paper §8): decoded-packet matching, throughput,
//! per-node PRR, medium usage, collision levels and BEC-rescue counts.

use crate::traffic::{parse_payload, ScheduledPacket};
use std::collections::{HashMap, HashSet};
use tnb_core::packet::DecodedPacket;

/// Result of matching a scheme's output against the transmitted schedule.
#[derive(Debug, Clone, Default)]
pub struct MatchResult {
    /// Distinct correctly decoded `(node, seq)` pairs.
    pub correct: Vec<(u32, u32)>,
    /// Decoded packets whose payload matched no transmission (CRC-passing
    /// ghosts; should be empty or nearly so).
    pub unmatched: usize,
    /// Codewords rescued by BEC per correctly decoded packet (Fig. 16).
    pub rescued_per_packet: Vec<usize>,
    /// Estimated SNR (dB) per correctly decoded packet.
    pub snr_per_packet: Vec<f32>,
    /// Decode pass (1 or 2) per correctly decoded packet.
    pub pass_per_packet: Vec<u8>,
}

/// Matches decoded packets against the transmitted schedule by payload
/// content (node and sequence number are embedded in every payload).
/// Duplicate decodes of the same transmission are counted once.
pub fn match_decoded(decoded: &[DecodedPacket], schedule: &[ScheduledPacket]) -> MatchResult {
    let sent: HashSet<(u32, u32)> = schedule.iter().map(|p| (p.node, p.seq)).collect();
    let mut seen: HashSet<(u32, u32)> = HashSet::new();
    let mut result = MatchResult::default();
    for d in decoded {
        match parse_payload(&d.payload) {
            Some(key) if sent.contains(&key) => {
                if seen.insert(key) {
                    result.correct.push(key);
                    result.rescued_per_packet.push(d.rescued_codewords);
                    result.snr_per_packet.push(d.snr_db);
                    result.pass_per_packet.push(d.pass);
                }
            }
            _ => result.unmatched += 1,
        }
    }
    result
}

/// Throughput in packets per second.
pub fn throughput(correct: usize, duration_s: f64) -> f64 {
    correct as f64 / duration_s
}

/// Per-node packet reception ratio: `(node → (decoded, sent))`.
pub fn per_node_prr(
    correct: &[(u32, u32)],
    schedule: &[ScheduledPacket],
) -> HashMap<u32, (usize, usize)> {
    let mut map: HashMap<u32, (usize, usize)> = HashMap::new();
    for p in schedule {
        map.entry(p.node).or_default().1 += 1;
    }
    for &(node, _) in correct {
        map.entry(node).or_default().0 += 1;
    }
    map
}

/// Overall PRR across all transmissions.
pub fn overall_prr(correct: usize, sent: usize) -> f64 {
    if sent == 0 {
        0.0
    } else {
        correct as f64 / sent as f64
    }
}

/// Medium usage over time (paper Fig. 11): the number of packets on the
/// air at each sampling instant, computed from packet start times and
/// airtimes. The paper's version is a lower bound over decoded packets;
/// pass whichever packet set is wanted.
pub fn medium_usage(
    intervals: &[(f64, f64)], // (start_s, end_s) per packet
    duration_s: f64,
    resolution_s: f64,
) -> Vec<usize> {
    let steps = (duration_s / resolution_s).ceil() as usize;
    let mut usage = vec![0usize; steps];
    for &(a, b) in intervals {
        let lo = (a / resolution_s).floor().max(0.0) as usize;
        let hi = ((b / resolution_s).ceil() as usize).min(steps);
        for slot in usage.iter_mut().take(hi).skip(lo.min(steps)) {
            *slot += 1;
        }
    }
    usage
}

/// Collision level of each packet (paper Fig. 18): the highest number of
/// *other* packets simultaneously on the air at any instant during its
/// transmission. Computed over the given intervals (the paper uses the
/// decoded subset, making it a lower bound).
pub fn collision_levels(intervals: &[(f64, f64)]) -> Vec<usize> {
    let mut out = Vec::with_capacity(intervals.len());
    for (i, &(a, b)) in intervals.iter().enumerate() {
        // Sweep the boundaries of overlapping packets: the overlap count
        // changes only at starts/ends.
        let mut events: Vec<(f64, i32)> = Vec::new();
        for (k, &(c, d)) in intervals.iter().enumerate() {
            if k == i || d <= a || c >= b {
                continue;
            }
            events.push((c.max(a), 1));
            events.push((d.min(b), -1));
        }
        events.sort_by(|x, y| x.0.total_cmp(&y.0).then(y.1.cmp(&x.1)));
        let mut cur = 0i32;
        let mut max = 0i32;
        for (_, e) in events {
            cur += e;
            max = max.max(cur);
        }
        out.push(max as usize);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::make_payload;
    use tnb_phy::header::Header;
    use tnb_phy::params::CodingRate;

    fn decoded(node: u32, seq: u32) -> DecodedPacket {
        DecodedPacket {
            payload: make_payload(node, seq),
            header: Header {
                payload_len: 16,
                cr: CodingRate::CR4,
                has_crc: true,
            },
            start: 0.0,
            cfo_cycles: 0.0,
            snr_db: 10.0,
            rescued_codewords: 2,
            pass: 1,
        }
    }

    fn sched(node: u32, seq: u32, time: f64) -> ScheduledPacket {
        ScheduledPacket { node, seq, time }
    }

    #[test]
    fn matching_counts_distinct_correct() {
        let schedule = vec![sched(1, 0, 0.0), sched(2, 0, 1.0)];
        let out = vec![decoded(1, 0), decoded(1, 0), decoded(2, 0), decoded(9, 9)];
        let m = match_decoded(&out, &schedule);
        assert_eq!(m.correct.len(), 2);
        assert_eq!(m.unmatched, 1); // (9,9) was never sent
        assert_eq!(m.rescued_per_packet, vec![2, 2]);
    }

    #[test]
    fn prr_accounting() {
        let schedule = vec![sched(1, 0, 0.0), sched(1, 1, 1.0), sched(2, 0, 2.0)];
        let m = match_decoded(&[decoded(1, 1)], &schedule);
        let prr = per_node_prr(&m.correct, &schedule);
        assert_eq!(prr[&1], (1, 2));
        assert_eq!(prr[&2], (0, 1));
        assert_eq!(overall_prr(m.correct.len(), schedule.len()), 1.0 / 3.0);
    }

    #[test]
    fn medium_usage_counts_overlaps() {
        let intervals = vec![(0.0, 2.0), (1.0, 3.0), (5.0, 6.0)];
        let u = medium_usage(&intervals, 7.0, 1.0);
        assert_eq!(u, vec![1, 2, 1, 0, 0, 1, 0]);
    }

    #[test]
    fn collision_levels_basic() {
        // A overlaps B and C, but B and C do not overlap each other.
        let intervals = vec![(0.0, 10.0), (1.0, 2.0), (3.0, 4.0), (20.0, 21.0)];
        let lv = collision_levels(&intervals);
        assert_eq!(lv, vec![1, 1, 1, 0]);
        // Three-way overlap.
        let tri = vec![(0.0, 3.0), (1.0, 4.0), (2.0, 5.0)];
        assert_eq!(collision_levels(&tri), vec![2, 2, 2]);
    }

    #[test]
    fn empty_inputs() {
        assert!(match_decoded(&[], &[]).correct.is_empty());
        assert!(collision_levels(&[]).is_empty());
        assert_eq!(overall_prr(0, 0), 0.0);
    }
}
