//! Experiment runner: synthesizes one trace per configuration and feeds
//! it to each scheme, producing the metrics the paper's figures report.

use crate::deployment::Deployment;
use crate::metrics::{match_decoded, overall_prr, throughput, MatchResult};
use crate::traffic::{generate_schedule, make_payload, ScheduledPacket};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tnb_baselines::Scheme;
use tnb_channel::fading::ChannelModel;
use tnb_channel::trace::{PacketConfig, Trace, TraceBuilder};
use tnb_channel::FaultPlan;
use tnb_core::{DecodeReport, MetricsSnapshot, PipelineMetrics};
use tnb_phy::{LoRaParams, Transmitter};

/// Configuration of one experiment run (one trace).
#[derive(Debug, Clone, Copy)]
pub struct ExperimentConfig {
    /// PHY parameters (SF, CR, BW, OSF).
    pub params: LoRaParams,
    /// Deployment whose node count and SNR distribution to use.
    pub deployment: Deployment,
    /// Aggregate offered load in packets per second (paper: 5..=25).
    pub load_pps: f64,
    /// Trace duration in seconds (paper: 30; scaled down by default for
    /// single-machine runs — offered load keeps collision statistics
    /// duration-invariant).
    pub duration_s: f64,
    /// RNG seed (one seed = one reproducible "run").
    pub seed: u64,
    /// Channel model (Static for the testbed traces, ETU for Fig. 19).
    pub channel: ChannelModel,
    /// Receive antennas.
    pub antennas: usize,
    /// When set, node SNRs are drawn uniformly from this range instead of
    /// the deployment model (the ETU simulations of §8.5 use
    /// [0, 20] dB for SF 8 and [−6, 14] dB for SF 10).
    pub snr_range_db: Option<(f32, f32)>,
    /// CFOs are drawn uniformly from ±this (paper §8.5: ±4.88 kHz).
    pub cfo_range_hz: f64,
}

impl ExperimentConfig {
    /// A baseline configuration for the given PHY parameters.
    pub fn new(params: LoRaParams, deployment: Deployment) -> Self {
        ExperimentConfig {
            params,
            deployment,
            load_pps: 25.0,
            duration_s: 3.0,
            seed: 1,
            channel: ChannelModel::Static,
            antennas: 1,
            snr_range_db: None,
            cfo_range_hz: 4880.0,
        }
    }
}

/// A synthesized experiment: the trace plus everything needed to score
/// scheme outputs.
pub struct BuiltExperiment {
    /// The synthetic trace.
    pub trace: Trace,
    /// The transmitted schedule.
    pub schedule: Vec<ScheduledPacket>,
    /// Ground-truth (start, end) airtime of each scheduled packet, in
    /// seconds.
    pub intervals: Vec<(f64, f64)>,
    /// The configuration that produced this experiment.
    pub config: ExperimentConfig,
}

/// Per-scheme outcome on one experiment.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Scheme display name.
    pub scheme: String,
    /// Matching details (correct packets, SNRs, BEC rescues, …).
    pub matched: MatchResult,
    /// Number of transmitted packets.
    pub sent: usize,
    /// Decoded throughput in packets per second.
    pub throughput_pps: f64,
    /// Overall packet reception ratio.
    pub prr: f64,
    /// Airtime intervals (seconds) of the correctly decoded packets — the
    /// paper's lower-bound input for Figs. 11 and 18.
    pub decoded_intervals: Vec<(f64, f64)>,
    /// Decode report with deterministic per-stage event counters. `None`
    /// for schemes without TnB's instrumented pipeline, or when run
    /// through the unobserved entry points.
    pub report: Option<DecodeReport>,
    /// Per-stage wall times and distributions. `None` unless run via
    /// [`run_scheme_observed`].
    pub stage_metrics: Option<MetricsSnapshot>,
}

/// Synthesizes the trace for a configuration.
pub fn build_experiment(cfg: &ExperimentConfig) -> BuiltExperiment {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let fs = cfg.params.sample_rate();
    let tx = Transmitter::new(cfg.params);
    let airtime = tx.packet_airtime(crate::traffic::PAYLOAD_LEN);

    let n_nodes = cfg.deployment.node_count();
    let node_snrs: Vec<f32> = match cfg.snr_range_db {
        Some((lo, hi)) => (0..n_nodes).map(|_| rng.gen_range(lo..=hi)).collect(),
        None => cfg.deployment.draw_node_snrs(&mut rng),
    };
    let node_cfos: Vec<f64> = (0..n_nodes)
        .map(|_| rng.gen_range(-cfg.cfo_range_hz..=cfg.cfo_range_hz))
        .collect();

    let schedule = generate_schedule(&mut rng, n_nodes, cfg.load_pps, cfg.duration_s, airtime);

    let mut builder = TraceBuilder::new(cfg.params, cfg.seed.wrapping_mul(0x9E37_79B9))
        .with_antennas(cfg.antennas);
    builder.set_min_len((cfg.duration_s * fs).ceil() as usize);

    let mut intervals = Vec::with_capacity(schedule.len());
    for p in &schedule {
        let start_sample = (p.time * fs).round() as usize;
        let snr = node_snrs[p.node as usize] + Deployment::packet_jitter_db(&mut rng);
        builder.add_packet(
            &make_payload(p.node, p.seq),
            PacketConfig {
                start_sample,
                snr_db: snr,
                cfo_hz: node_cfos[p.node as usize],
                frac_delay: rng.gen_range(0.0..1.0f32).min(0.999),
                channel: cfg.channel,
                node_id: p.node,
                seq: p.seq,
            },
        );
        intervals.push((p.time, p.time + airtime));
    }

    BuiltExperiment {
        trace: builder.build(),
        schedule,
        intervals,
        config: *cfg,
    }
}

/// Runs one scheme over a built experiment and scores it.
pub fn run_scheme(scheme: &dyn Scheme, built: &BuiltExperiment) -> ExperimentResult {
    run_scheme_limited(scheme, built, usize::MAX)
}

/// Applies a [`FaultPlan`] to every antenna of a built experiment's
/// trace, in place. Robustness experiments build once, inject a fault,
/// and score the schemes against the same ground-truth schedule — the
/// decode pipeline degrades per packet (see `DecodeReport::outcomes`)
/// instead of panicking on the hostile samples.
pub fn apply_faults(built: &mut BuiltExperiment, plan: &FaultPlan) {
    for antenna in &mut built.trace.antennas {
        *antenna = plan.apply(antenna);
    }
}

/// Like [`run_scheme`] but decodes with up to `workers` threads (schemes
/// without a parallel pipeline ignore the hint). Results are identical to
/// the serial run for any worker count.
pub fn run_scheme_with_workers(
    scheme: &dyn Scheme,
    built: &BuiltExperiment,
    workers: usize,
) -> ExperimentResult {
    run_scheme_limited_with_workers(scheme, built, usize::MAX, workers)
}

/// Like [`run_scheme`] but exposes at most `max_antennas` antennas to the
/// scheme (Fig. 19 compares single-antenna schemes with `TnB2ant` on the
/// same 2-antenna trace).
pub fn run_scheme_limited(
    scheme: &dyn Scheme,
    built: &BuiltExperiment,
    max_antennas: usize,
) -> ExperimentResult {
    run_scheme_limited_with_workers(scheme, built, max_antennas, 1)
}

/// Like [`run_scheme_with_workers`] but with the observability layer on:
/// the result carries the scheme's [`DecodeReport`] (deterministic stage
/// counters) and a [`MetricsSnapshot`] of per-stage wall times, so BENCH
/// outputs can report where decode time goes.
pub fn run_scheme_observed(
    scheme: &dyn Scheme,
    built: &BuiltExperiment,
    workers: usize,
) -> ExperimentResult {
    let metrics = PipelineMetrics::enabled();
    run_scheme_inner(scheme, built, usize::MAX, workers, Some(&metrics))
}

/// The general runner: antenna cap and worker-count knob combined.
pub fn run_scheme_limited_with_workers(
    scheme: &dyn Scheme,
    built: &BuiltExperiment,
    max_antennas: usize,
    workers: usize,
) -> ExperimentResult {
    run_scheme_inner(scheme, built, max_antennas, workers, None)
}

fn run_scheme_inner(
    scheme: &dyn Scheme,
    built: &BuiltExperiment,
    max_antennas: usize,
    workers: usize,
    metrics: Option<&PipelineMetrics>,
) -> ExperimentResult {
    let refs: Vec<&[tnb_dsp::Complex32]> = built
        .trace
        .antennas
        .iter()
        .take(max_antennas.max(1))
        .map(|a| a.as_slice())
        .collect();
    let (decoded, report) = match metrics {
        Some(m) => scheme.decode_observed(&refs, workers.max(1), m),
        None => (scheme.decode_with_workers(&refs, workers.max(1)), None),
    };
    let matched = match_decoded(&decoded, &built.schedule);
    let sent = built.schedule.len();
    let correct = matched.correct.len();
    // Airtime intervals of the decoded subset (for Figs. 11 and 18).
    let lookup: std::collections::HashMap<(u32, u32), usize> = built
        .schedule
        .iter()
        .enumerate()
        .map(|(i, p)| ((p.node, p.seq), i))
        .collect();
    let decoded_intervals = matched
        .correct
        .iter()
        .filter_map(|key| lookup.get(key).map(|&i| built.intervals[i]))
        .collect();
    ExperimentResult {
        scheme: scheme.name().to_string(),
        matched,
        sent,
        throughput_pps: throughput(correct, built.config.duration_s),
        prr: overall_prr(correct, sent),
        decoded_intervals,
        report,
        stage_metrics: metrics.map(PipelineMetrics::snapshot),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tnb_baselines::SchemeKind;
    use tnb_phy::{CodingRate, SpreadingFactor};

    fn quick_cfg() -> ExperimentConfig {
        let params = LoRaParams::new(SpreadingFactor::SF8, CodingRate::CR4);
        ExperimentConfig {
            load_pps: 6.0,
            duration_s: 1.5,
            ..ExperimentConfig::new(params, Deployment::Indoor)
        }
    }

    #[test]
    fn build_produces_consistent_ground_truth() {
        let cfg = quick_cfg();
        let built = build_experiment(&cfg);
        assert_eq!(built.schedule.len(), 9);
        assert_eq!(built.intervals.len(), 9);
        assert!(built.trace.len() >= (cfg.duration_s * cfg.params.sample_rate()) as usize);
        assert_eq!(built.trace.truth.len(), 9);
    }

    #[test]
    fn build_is_deterministic() {
        let cfg = quick_cfg();
        let a = build_experiment(&cfg);
        let b = build_experiment(&cfg);
        assert_eq!(a.trace.samples()[12345], b.trace.samples()[12345]);
        assert_eq!(a.schedule, b.schedule);
    }

    #[test]
    fn tnb_decodes_most_light_load_packets() {
        let cfg = quick_cfg();
        let built = build_experiment(&cfg);
        let scheme = SchemeKind::Tnb.build(cfg.params);
        let r = run_scheme(scheme.as_ref(), &built);
        assert_eq!(r.sent, 9);
        assert!(
            r.matched.correct.len() >= 5,
            "decoded only {}/9",
            r.matched.correct.len()
        );
        assert_eq!(r.matched.unmatched, 0);
        assert!((r.throughput_pps - r.matched.correct.len() as f64 / 1.5).abs() < 1e-9);
    }

    #[test]
    fn observed_run_carries_report_and_timings() {
        let cfg = quick_cfg();
        let built = build_experiment(&cfg);
        let scheme = SchemeKind::Tnb.build(cfg.params);
        let plain = run_scheme(scheme.as_ref(), &built);
        assert!(plain.report.is_none());
        assert!(plain.stage_metrics.is_none());

        let observed = run_scheme_observed(scheme.as_ref(), &built, 2);
        assert_eq!(observed.matched.correct, plain.matched.correct);
        let report = observed.report.expect("TnB returns a report");
        assert_eq!(report.decoded, observed.matched.correct.len());
        assert!(report.stages.sync_attempts >= report.detected as u64);
        let snap = observed
            .stage_metrics
            .expect("observed run records timings");
        assert!(snap.total_wall_ns() > 0);

        // Baselines without the instrumented pipeline record no report.
        let cic = SchemeKind::Cic.build(cfg.params);
        let r = run_scheme_observed(cic.as_ref(), &built, 1);
        assert!(r.report.is_none());
    }

    #[test]
    fn faulted_experiment_scores_without_panicking() {
        let cfg = quick_cfg();
        let mut built = build_experiment(&cfg);
        let clean = run_scheme_observed(SchemeKind::Tnb.build(cfg.params).as_ref(), &built, 1);
        let baseline = clean.matched.correct.len();

        // Inject a mid-capture truncation + NaN burst and re-score: the
        // run must complete, account for every detected packet, and not
        // decode more than the clean trace did.
        let plan = FaultPlan::new(11)
            .with(tnb_channel::Fault::NanBurst { at: 0.3, len: 512 })
            .with(tnb_channel::Fault::Truncate { keep: 0.6 });
        apply_faults(&mut built, &plan);
        let faulted = run_scheme_observed(SchemeKind::Tnb.build(cfg.params).as_ref(), &built, 2);
        let report = faulted.report.expect("TnB returns a report");
        assert_eq!(report.outcomes.len(), report.detected);
        assert_eq!(report.detected, report.decoded + report.degraded());
        assert!(faulted.matched.correct.len() <= baseline);
    }

    #[test]
    fn worker_knob_reproduces_serial_results() {
        let cfg = quick_cfg();
        let built = build_experiment(&cfg);
        let scheme = SchemeKind::Tnb.build(cfg.params);
        let serial = run_scheme(scheme.as_ref(), &built);
        let parallel = run_scheme_with_workers(scheme.as_ref(), &built, 4);
        assert_eq!(parallel.matched.correct, serial.matched.correct);
        assert_eq!(parallel.matched.unmatched, serial.matched.unmatched);
        assert_eq!(parallel.prr, serial.prr);
    }
}
