//! Wideband (multi-channel) loopback harness.
//!
//! Synthesizes an `M`-channel wideband IQ scene — one LoRa packet per
//! occupied uplink channel, generated at `M×` oversampling and
//! upconverted to its channel slot — and streams it through the gateway
//! daemon with the wire protocol's WIDEBAND flag, checking the uplinked
//! JSON lines are **byte-identical** to a direct in-process
//! [`WidebandReceiver`] decode of the same wire-quantized samples. The
//! same scene feeds the `channelizer_throughput` benchmark.

use std::io;
use std::time::Duration;

use tnb_channel::trace::{PacketConfig, TraceBuilder};
use tnb_core::{StreamingConfig, WidebandConfig, WidebandReceiver};
use tnb_dsp::channelizer::upconvert;
use tnb_dsp::{ChannelizerConfig, Complex32};
use tnb_gateway::wire::quantize;
use tnb_gateway::{uplink, Gateway, GatewayClient, GatewayConfig, GatewayStatsSnapshot};
use tnb_phy::LoRaParams;

/// One wideband loopback run's shape.
#[derive(Debug, Clone)]
pub struct WidebandLoopbackConfig {
    /// PHY parameters of each narrowband channel.
    pub params: LoRaParams,
    /// Filterbank geometry (defines `M`, the channel count).
    pub channelizer: ChannelizerConfig,
    /// Channels carrying one packet each (`0..M`, ascending frequency).
    pub occupied: Vec<usize>,
    /// DATA-frame chunk length in wideband samples.
    pub chunk: usize,
    /// Synthesis seed.
    pub seed: u64,
}

impl WidebandLoopbackConfig {
    /// Default scene: packets on channels 1, 4 and 6 of an 8-channel
    /// band, 40 k-sample chunks.
    pub fn new(params: LoRaParams) -> Self {
        WidebandLoopbackConfig {
            params,
            channelizer: ChannelizerConfig::default(),
            occupied: vec![1, 4, 6],
            chunk: 40_000,
            seed: 40,
        }
    }
}

/// Synthesizes the wideband scene: one packet per occupied channel
/// (payload derived from the channel index and `seed`), each layer
/// generated at the wideband rate and upconverted to its slot. Unit
/// noise rides on the first layer only, so the wideband floor stays
/// near a single channel's. Trailing silence covers the filterbank's
/// group delay so the last packet's tail cannot be clipped.
///
/// Returns `(scene, expected)` where `expected` pairs each occupied
/// channel with its payload.
pub fn wideband_scene(cfg: &WidebandLoopbackConfig) -> (Vec<Complex32>, Vec<(usize, Vec<u8>)>) {
    let m = cfg.channelizer.channels.max(2);
    let mut wide = cfg.params;
    wide.osf *= m;
    let expected: Vec<(usize, Vec<u8>)> = cfg
        .occupied
        .iter()
        .map(|&c| {
            let payload: Vec<u8> = (0..12)
                .map(|j| (cfg.seed as u8) ^ (c as u8 * 37) ^ (j as u8 * 11) ^ 0xA5)
                .collect();
            (c % m, payload)
        })
        .collect();
    let mut scene: Vec<Complex32> = Vec::new();
    for (i, (c, payload)) in expected.iter().enumerate() {
        let mut b = TraceBuilder::new(wide, cfg.seed + i as u64);
        if i > 0 {
            b = b.without_noise();
        }
        b.add_packet(
            payload,
            PacketConfig {
                start_sample: (6_000 + 11_000 * i) * m,
                snr_db: 25.0,
                ..Default::default()
            },
        );
        let mut layer = b.build().samples().to_vec();
        upconvert(&mut layer, *c, m);
        if scene.len() < layer.len() {
            scene.resize(layer.len(), Complex32::ZERO);
        }
        for (dst, src) in scene.iter_mut().zip(&layer) {
            *dst += *src;
        }
    }
    let tail = 4 * cfg.params.samples_per_symbol() * m;
    scene.resize(scene.len() + tail, Complex32::ZERO);
    (scene, expected)
}

/// The reference transcript of a wideband stream: decodes the
/// wire-quantized scene with a local [`WidebandReceiver`] pushed at
/// exactly the daemon's chunk boundaries, rendering lines through the
/// same serializers. Returns `(lines, per_channel_uplinks)`.
pub fn wideband_reference_transcript(
    cfg: &WidebandLoopbackConfig,
    stream_id: u32,
    quantized: &[Complex32],
) -> (Vec<String>, Vec<u64>) {
    let mut rx = WidebandReceiver::with_config(
        cfg.params,
        WidebandConfig {
            channelizer: cfg.channelizer,
            streaming: StreamingConfig::default(),
        },
    );
    let mut lines = Vec::new();
    let mut uplinked = 0u64;
    let mut per_channel = vec![0u64; rx.channels()];
    let emit = |cps: Vec<tnb_core::ChannelPacket>,
                uplinked: &mut u64,
                lines: &mut Vec<String>,
                per_channel: &mut [u64]| {
        for cp in cps {
            lines.push(uplink::uplink_line_on_channel(
                &cfg.params,
                stream_id,
                *uplinked,
                cp.channel,
                &cp.packet,
            ));
            *uplinked += 1;
            per_channel[cp.channel] += 1;
        }
    };
    for c in quantized.chunks(cfg.chunk.max(1)) {
        let cps = rx.push(c);
        emit(cps, &mut uplinked, &mut lines, &mut per_channel);
    }
    let cps = rx.finish();
    emit(cps, &mut uplinked, &mut lines, &mut per_channel);
    let mut report = tnb_core::DecodeReport::default();
    for r in rx.reports() {
        report.absorb(&r);
    }
    let position = rx.position(0) * rx.channels() as u64;
    lines.push(uplink::end_line(stream_id, position, uplinked, &report));
    (lines, per_channel)
}

/// What one wideband loopback run produced.
#[derive(Debug)]
pub struct WidebandOutcome {
    /// Uplink + end lines received from the daemon, in arrival order.
    pub daemon_lines: Vec<String>,
    /// Reference lines from the direct in-process decode.
    pub reference_lines: Vec<String>,
    /// Decoded packets uplinked per channel (from the reference).
    pub per_channel: Vec<u64>,
    /// Wideband samples streamed.
    pub samples: u64,
    /// Final daemon counters.
    pub stats: GatewayStatsSnapshot,
}

impl WidebandOutcome {
    /// True when the daemon transcript equals the reference byte for
    /// byte.
    pub fn byte_identical(&self) -> bool {
        self.daemon_lines == self.reference_lines
    }
}

/// Runs one full wideband loopback: daemon up, stream the scene with
/// the WIDEBAND flag, end the stream, collect the transcript, shut
/// down.
pub fn run_wideband_loopback(cfg: &WidebandLoopbackConfig) -> io::Result<WidebandOutcome> {
    let (scene, _) = wideband_scene(cfg);
    let gw = Gateway::spawn(
        ("127.0.0.1", 0),
        GatewayConfig {
            params: cfg.params,
            channelizer: cfg.channelizer,
            queue_chunks: 1024,
            ..GatewayConfig::new(cfg.params)
        },
    )?;
    let mut client = GatewayClient::connect(gw.local_addr(), Duration::from_secs(5))?;
    client.send_samples_wideband(0, &scene, cfg.chunk)?;
    client.end_stream(0)?;
    let daemon_lines = client.finish();
    let stats = gw.join();

    let quantized = quantize(&scene);
    let (reference_lines, per_channel) = wideband_reference_transcript(cfg, 0, &quantized);
    Ok(WidebandOutcome {
        daemon_lines,
        reference_lines,
        per_channel,
        samples: scene.len() as u64,
        stats,
    })
}

/// Wall-clock wideband loopback throughput for the benchmark artifact
/// (timing is sim-layer only; the daemon never reads the wall clock).
#[derive(Debug, Clone)]
pub struct WidebandBench {
    /// Decoded packets uplinked per wall-clock second, all channels.
    pub packets_per_sec: f64,
    /// Streamed wideband samples per wall-clock second.
    pub samples_per_sec: f64,
    /// Decoded packets per channel.
    pub per_channel: Vec<u64>,
    /// Total packets uplinked.
    pub uplinked: u64,
    /// Total wideband samples streamed.
    pub samples: u64,
    /// Whether the run was byte-identical to the reference decode.
    pub byte_identical: bool,
}

impl WidebandBench {
    /// JSON object for the benchmark artifact; `channels` is rendered
    /// as a per-channel packet-count array.
    pub fn to_json(&self) -> String {
        let per: Vec<String> = self.per_channel.iter().map(u64::to_string).collect();
        format!(
            "{{\"channels\":{},\"per_channel_packets\":[{}],\
             \"packets_per_sec\":{:.2},\"samples_per_sec\":{:.0},\
             \"uplinked\":{},\"samples\":{},\"byte_identical\":{}}}",
            self.per_channel.len(),
            per.join(","),
            self.packets_per_sec,
            self.samples_per_sec,
            self.uplinked,
            self.samples,
            self.byte_identical
        )
    }
}

/// Times [`run_wideband_loopback`] end to end.
pub fn bench_wideband(cfg: &WidebandLoopbackConfig) -> io::Result<WidebandBench> {
    let t0 = std::time::Instant::now();
    let outcome = run_wideband_loopback(cfg)?;
    let dt = t0.elapsed().as_secs_f64().max(1e-9);
    let uplinked: u64 = outcome.per_channel.iter().sum();
    Ok(WidebandBench {
        packets_per_sec: uplinked as f64 / dt,
        samples_per_sec: outcome.samples as f64 / dt,
        uplinked,
        samples: outcome.samples,
        byte_identical: outcome.byte_identical(),
        per_channel: outcome.per_channel,
    })
}
