//! Experiment harness reproducing the paper's evaluation (§8).
//!
//! Provides the three testbed deployments (SNR distributions calibrated to
//! Fig. 10), random traffic generation at the paper's offered loads, a
//! runner that synthesizes a trace and feeds it to every scheme, and the
//! metrics the figures report (throughput, PRR, medium usage, collision
//! level, BEC-rescued codewords).

pub mod chaos;
pub mod deployment;
pub mod gateway;
pub mod metrics;
pub mod runner;
pub mod traffic;
pub mod wideband;

pub use deployment::Deployment;
pub use runner::{
    apply_faults, build_experiment, run_scheme, run_scheme_limited, run_scheme_observed,
    run_scheme_with_workers, BuiltExperiment, ExperimentConfig, ExperimentResult,
};
