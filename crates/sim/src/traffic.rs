//! Traffic generation and the application payload format (paper §8.1).
//!
//! Each node transmits packets at randomly selected times during the
//! experiment. A 16-byte payload carries 4 bytes of header, 4 bytes of
//! node ID, 4 bytes of sequence number, 4 bytes of data, and the PHY
//! appends the 2-byte CRC (artifact appendix B.3.4 — the paper counts the
//! CRC inside the "16 bytes", so the application payload here is 16 bytes
//! and the CRC travels separately, exactly as our PHY frames it). Node
//! and sequence fields are 32-bit so city-scale deployments (10⁵–10⁶
//! nodes, `tnb-deploy`) do not overflow the encoding.

use rand::Rng;

/// Fixed application payload length (bytes) used throughout the paper.
pub const PAYLOAD_LEN: usize = 16;

/// One scheduled transmission.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScheduledPacket {
    /// Transmitting node.
    pub node: u32,
    /// Per-node sequence number.
    pub seq: u32,
    /// Transmit time in seconds from the trace start.
    pub time: f64,
}

/// Builds the paper's payload layout: `[0xA5; 4]` app header, node ID,
/// sequence number (both big-endian), then deterministic data bytes.
pub fn make_payload(node: u32, seq: u32) -> Vec<u8> {
    let mut p = Vec::with_capacity(PAYLOAD_LEN);
    p.extend_from_slice(&[0xA5, 0x5A, 0xA5, 0x5A]);
    p.extend_from_slice(&node.to_be_bytes());
    p.extend_from_slice(&seq.to_be_bytes());
    for i in 0..(PAYLOAD_LEN - 12) {
        p.push(
            (node as u8)
                .wrapping_mul(31)
                .wrapping_add(seq as u8)
                .wrapping_add(i as u8),
        );
    }
    p
}

/// Parses a payload back into `(node, seq)`; `None` if it does not match
/// the layout of [`make_payload`].
pub fn parse_payload(payload: &[u8]) -> Option<(u32, u32)> {
    if payload.len() != PAYLOAD_LEN || payload[..4] != [0xA5, 0x5A, 0xA5, 0x5A] {
        return None;
    }
    let node = u32::from_be_bytes([payload[4], payload[5], payload[6], payload[7]]);
    let seq = u32::from_be_bytes([payload[8], payload[9], payload[10], payload[11]]);
    if payload == make_payload(node, seq).as_slice() {
        Some((node, seq))
    } else {
        None
    }
}

/// Generates a random schedule: an aggregate offered load of `load_pps`
/// packets per second over `duration_s` seconds, split evenly across
/// `n_nodes` nodes, each packet at a uniformly random time (paper §8.1:
/// "a node transmits packets at randomly selected times").
///
/// Returns the schedule sorted by time.
pub fn generate_schedule<R: Rng + ?Sized>(
    rng: &mut R,
    n_nodes: usize,
    load_pps: f64,
    duration_s: f64,
    airtime_s: f64,
) -> Vec<ScheduledPacket> {
    let total = (load_pps * duration_s).round() as usize;
    let mut out = Vec::with_capacity(total);
    let latest = (duration_s - airtime_s).max(0.0);
    for k in 0..total {
        let node = (k % n_nodes) as u32;
        let seq = (k / n_nodes) as u32;
        out.push(ScheduledPacket {
            node,
            seq,
            time: rng.gen::<f64>() * latest,
        });
    }
    out.sort_by(|a, b| a.time.total_cmp(&b.time));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn payload_roundtrip() {
        for (node, seq) in [(0u32, 0u32), (7, 1), (24, 999), (65535, 65535)] {
            let p = make_payload(node, seq);
            assert_eq!(p.len(), PAYLOAD_LEN);
            assert_eq!(parse_payload(&p), Some((node, seq)));
        }
    }

    #[test]
    fn corrupted_payload_rejected() {
        let mut p = make_payload(3, 4);
        p[10] ^= 0xFF;
        assert_eq!(parse_payload(&p), None);
        assert_eq!(parse_payload(&p[..10]), None);
        assert_eq!(parse_payload(&[0u8; 16]), None);
    }

    #[test]
    fn schedule_counts_and_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        let s = generate_schedule(&mut rng, 19, 10.0, 30.0, 0.15);
        assert_eq!(s.len(), 300);
        for p in &s {
            assert!(p.time >= 0.0 && p.time <= 30.0 - 0.15);
        }
        // Sorted by time.
        for w in s.windows(2) {
            assert!(w[0].time <= w[1].time);
        }
        // Packets spread across all nodes.
        let nodes: std::collections::HashSet<u32> = s.iter().map(|p| p.node).collect();
        assert_eq!(nodes.len(), 19);
    }

    #[test]
    fn city_scale_node_ids_roundtrip() {
        // Regression: node ids past u16::MAX must survive the payload
        // encoding (city-scale deployments address 10^5..10^6 nodes).
        for (node, seq) in [(65_536u32, 0u32), (250_000, 123), (u32::MAX, u32::MAX)] {
            let p = make_payload(node, seq);
            assert_eq!(p.len(), PAYLOAD_LEN);
            assert_eq!(parse_payload(&p), Some((node, seq)));
        }
        // Two nodes that collide mod 2^16 must produce distinct payloads.
        assert_ne!(make_payload(1, 0), make_payload(65_537, 0));
    }

    #[test]
    fn node_seq_pairs_unique() {
        let mut rng = StdRng::seed_from_u64(6);
        let s = generate_schedule(&mut rng, 5, 20.0, 3.0, 0.1);
        let mut seen = std::collections::HashSet::new();
        for p in &s {
            assert!(
                seen.insert((p.node, p.seq)),
                "duplicate {:?}",
                (p.node, p.seq)
            );
        }
    }
}
