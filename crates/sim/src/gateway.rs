//! Loopback load generator for the gateway daemon.
//!
//! Spawns a [`tnb_gateway::Gateway`] on a loopback ephemeral port,
//! streams synthesized collided traffic at it through the wire client,
//! and checks the uplinked JSON lines are **byte-identical** to a
//! direct [`StreamingReceiver`] decode of the same (wire-quantized)
//! samples — the gateway's end-to-end determinism contract: putting a
//! socket, framing, and a daemon between the samples and the decoder
//! must not change a single uplinked byte.

use std::io;
use std::time::Duration;

use tnb_core::{DecodedPacket, StreamingConfig, StreamingReceiver};
use tnb_dsp::Complex32;
use tnb_gateway::client::DEFAULT_CHUNK;
use tnb_gateway::wire::quantize;
use tnb_gateway::{uplink, Gateway, GatewayClient, GatewayConfig, GatewayStatsSnapshot};
use tnb_phy::LoRaParams;

use tnb_channel::trace::{PacketConfig, TraceBuilder};

/// One loopback run's shape.
#[derive(Debug, Clone, Copy)]
pub struct LoopbackConfig {
    /// PHY parameters for synthesis and decode.
    pub params: LoRaParams,
    /// Worker threads inside each per-stream streaming receiver.
    pub workers: usize,
    /// Concurrent streams multiplexed on the single connection.
    pub streams: u32,
    /// Colliding packets synthesized per stream.
    pub packets: usize,
    /// DATA-frame chunk length in samples.
    pub chunk: usize,
    /// Synthesis seed (stream `s` uses `seed + s`).
    pub seed: u64,
}

impl LoopbackConfig {
    /// A 3-packet collision on one stream, single worker.
    pub fn new(params: LoRaParams) -> Self {
        LoopbackConfig {
            params,
            workers: 1,
            streams: 1,
            packets: 3,
            chunk: DEFAULT_CHUNK,
            seed: 7,
        }
    }

    fn streaming(&self) -> StreamingConfig {
        StreamingConfig {
            workers: self.workers,
            ..StreamingConfig::default()
        }
    }
}

/// What one loopback run produced.
#[derive(Debug)]
pub struct LoopbackOutcome {
    /// Per-stream uplink + end lines received from the daemon, in
    /// arrival order (index = stream id).
    pub daemon_lines: Vec<Vec<String>>,
    /// Per-stream reference lines from the direct in-process decode.
    pub reference_lines: Vec<Vec<String>>,
    /// Total decoded packets uplinked by the daemon.
    pub uplinked: u64,
    /// Total samples streamed across all streams.
    pub samples: u64,
    /// Final daemon counters.
    pub stats: GatewayStatsSnapshot,
}

impl LoopbackOutcome {
    /// True when every stream's daemon transcript equals its reference
    /// byte for byte.
    pub fn byte_identical(&self) -> bool {
        self.daemon_lines == self.reference_lines
    }
}

/// Synthesizes one stream's collided trace: `packets` transmissions
/// whose airtimes overlap pairwise (starts staggered by a third of a
/// packet), distinct payloads, per-packet SNR/CFO spread.
pub fn collided_samples(params: LoRaParams, seed: u64, packets: usize) -> Vec<Complex32> {
    let mut b = TraceBuilder::new(params, seed).without_noise();
    let extent = b.packet_samples(16);
    let stagger = extent / 3;
    for i in 0..packets.max(1) {
        let payload: Vec<u8> = (0..16)
            .map(|j| (seed as u8) ^ (i as u8 * 31) ^ (j as u8 * 7))
            .collect();
        b.add_packet(
            &payload,
            PacketConfig {
                start_sample: 4_000 + i * stagger,
                snr_db: 10.0 - i as f32 * 2.0,
                cfo_hz: (i as f64 - 1.0) * 900.0,
                ..Default::default()
            },
        );
    }
    b.build().samples().to_vec()
}

/// The reference transcript: decodes the **wire-quantized** samples
/// with a local [`StreamingReceiver`] pushed in exactly the gateway's
/// chunking, rendering lines through the same serializers the daemon
/// uses. Returns `(lines, uplinked)`.
pub fn reference_transcript(
    params: LoRaParams,
    streaming: StreamingConfig,
    stream_id: u32,
    quantized: &[Complex32],
    chunk: usize,
) -> (Vec<String>, u64) {
    let mut rx = StreamingReceiver::with_config(params, streaming);
    let mut lines = Vec::new();
    let mut uplinked = 0u64;
    let emit = |pkts: &[DecodedPacket], uplinked: &mut u64, lines: &mut Vec<String>| {
        for p in pkts {
            lines.push(uplink::uplink_line(&params, stream_id, *uplinked, p));
            *uplinked += 1;
        }
    };
    for c in quantized.chunks(chunk.max(1)) {
        let pkts = rx.push(c);
        emit(&pkts, &mut uplinked, &mut lines);
    }
    let pkts = rx.finish();
    emit(&pkts, &mut uplinked, &mut lines);
    lines.push(uplink::end_line(
        stream_id,
        rx.position(),
        uplinked,
        &rx.report(),
    ));
    (lines, uplinked)
}

/// Runs one full loopback: daemon up, stream every configured stream
/// over one connection, end them, collect the transcript, shut down.
pub fn run_loopback(cfg: &LoopbackConfig) -> io::Result<LoopbackOutcome> {
    let gw = Gateway::spawn(
        ("127.0.0.1", 0),
        GatewayConfig {
            params: cfg.params,
            streaming: cfg.streaming(),
            queue_chunks: 1024,
            ..GatewayConfig::new(cfg.params)
        },
    )?;
    let addr = gw.local_addr();
    let mut client = GatewayClient::connect(addr, Duration::from_secs(5))?;

    let mut reference_lines = Vec::new();
    let mut samples_total = 0u64;
    for s in 0..cfg.streams {
        let samples = collided_samples(cfg.params, cfg.seed + s as u64, cfg.packets);
        samples_total += samples.len() as u64;
        client.send_samples(s, &samples, cfg.chunk)?;
        client.end_stream(s)?;
        let quantized = quantize(&samples);
        let (lines, _) =
            reference_transcript(cfg.params, cfg.streaming(), s, &quantized, cfg.chunk);
        reference_lines.push(lines);
    }

    let transcript = client.finish();
    let stats = gw.join();

    // Split the daemon transcript back out per stream (a single decoder
    // thread drains the queue FIFO, so per-stream order is preserved).
    let mut daemon_lines: Vec<Vec<String>> = vec![Vec::new(); cfg.streams as usize];
    for line in transcript {
        for s in 0..cfg.streams {
            if line.contains(&format!("\"stream\":{s},")) {
                daemon_lines[s as usize].push(line);
                break;
            }
        }
    }
    Ok(LoopbackOutcome {
        daemon_lines,
        reference_lines,
        uplinked: stats.packets_uplinked,
        samples: samples_total,
        stats,
    })
}

/// Wall-clock loopback throughput (decoded packets and streamed
/// megasamples per second) for the benchmark artifact. Timing here is
/// sim-layer only — the daemon itself never reads the wall clock.
#[derive(Debug, Clone, Copy)]
pub struct LoopbackBench {
    /// Decoded packets uplinked per wall-clock second.
    pub packets_per_sec: f64,
    /// Streamed samples per wall-clock second.
    pub samples_per_sec: f64,
    /// Total packets uplinked.
    pub uplinked: u64,
    /// Total samples streamed.
    pub samples: u64,
    /// Whether the run was byte-identical to the reference decode.
    pub byte_identical: bool,
}

impl LoopbackBench {
    /// JSON object for the benchmark artifact.
    pub fn to_json(&self, workers: usize) -> String {
        format!(
            "{{\"workers\":{},\"packets_per_sec\":{:.2},\"samples_per_sec\":{:.0},\
             \"uplinked\":{},\"samples\":{},\"byte_identical\":{}}}",
            workers,
            self.packets_per_sec,
            self.samples_per_sec,
            self.uplinked,
            self.samples,
            self.byte_identical
        )
    }
}

/// Times [`run_loopback`] end to end.
pub fn bench_loopback(cfg: &LoopbackConfig) -> io::Result<LoopbackBench> {
    let t0 = std::time::Instant::now();
    let outcome = run_loopback(cfg)?;
    let dt = t0.elapsed().as_secs_f64().max(1e-9);
    Ok(LoopbackBench {
        packets_per_sec: outcome.uplinked as f64 / dt,
        samples_per_sec: outcome.samples as f64 / dt,
        uplinked: outcome.uplinked,
        samples: outcome.samples,
        byte_identical: outcome.byte_identical(),
    })
}
