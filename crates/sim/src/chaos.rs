//! Chaos soak harness for the gateway resilience layer.
//!
//! Runs the gateway loopback through a [`ChaosProxy`] under every
//! scenario of [`NetFaultPlan::matrix`], driving traffic with the
//! [`ResilientClient`] (HELLO/RESUME sessions, reconnect, resend), and
//! checks the **recovery contract**: whenever reconnect+resend can
//! recover — every matrix scenario, since destructive faults are
//! one-shot — the uplink transcript (uplink + end lines, per stream)
//! is byte-identical to a clean, fault-free run, and the daemon never
//! panics.

use std::io;
use std::time::Duration;

use tnb_gateway::netfaults::{ChaosProxy, NetFaultPlan};
use tnb_gateway::wire::quantize;
use tnb_gateway::{Gateway, GatewayConfig, GatewayStatsSnapshot, ResilientClient, ResilientConfig};
use tnb_phy::LoRaParams;

use crate::gateway::{collided_samples, reference_transcript};
use tnb_core::StreamingConfig;

/// One chaos run's shape (the traffic mirrors the loopback harness but
/// with small chunks, so seeded fault offsets land mid-stream).
#[derive(Debug, Clone, Copy)]
pub struct ChaosConfig {
    /// PHY parameters for synthesis and decode.
    pub params: LoRaParams,
    /// Concurrent streams multiplexed on the connection.
    pub streams: u32,
    /// Colliding packets synthesized per stream.
    pub packets: usize,
    /// DATA-frame chunk length in samples (small: ~16 KiB frames, so
    /// the matrix's sub-64 KiB fault offsets hit mid-frame).
    pub chunk: usize,
    /// Traffic synthesis seed (stream `s` uses `seed + s`).
    pub seed: u64,
    /// Seed for [`NetFaultPlan::matrix`] and the client backoff jitter.
    pub chaos_seed: u64,
}

impl ChaosConfig {
    /// One 3-packet collision stream, 4096-sample chunks.
    pub fn new(params: LoRaParams) -> Self {
        ChaosConfig {
            params,
            streams: 1,
            packets: 3,
            chunk: 4096,
            seed: 7,
            chaos_seed: 1,
        }
    }
}

/// Outcome of one scenario of the chaos matrix.
#[derive(Debug, Clone)]
pub struct ChaosRow {
    /// Scenario name from the fault plan.
    pub scenario: &'static str,
    /// Whether the plan guarantees reconnect+resend recovery.
    pub recoverable: bool,
    /// Uplink+end transcript byte-identical to the clean reference.
    pub parity: bool,
    /// Client-side reconnect cycles.
    pub reconnects: u64,
    /// Client-side frames re-sent after resume.
    pub resent: u64,
    /// Destructive proxy faults fired.
    pub proxy_faults: u64,
    /// Final daemon counters.
    pub stats: GatewayStatsSnapshot,
}

impl ChaosRow {
    /// JSON object for the chaos artifact.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"scenario\":\"{}\",\"recoverable\":{},\"parity\":{},\
             \"reconnects\":{},\"resent\":{},\"proxy_faults\":{},\
             \"worker_panics\":{},\"protocol_errors\":{},\
             \"sessions_parked\":{},\"sessions_resumed\":{},\
             \"retransmitted_frames\":{},\"seq_dups\":{},\
             \"chunks_dropped\":{},\"shed_frames\":{},\"uplinked\":{}}}",
            self.scenario,
            self.recoverable,
            self.parity,
            self.reconnects,
            self.resent,
            self.proxy_faults,
            self.stats.worker_panics,
            self.stats.protocol_errors,
            self.stats.sessions_parked,
            self.stats.sessions_resumed,
            self.stats.retransmitted_frames,
            self.stats.seq_dups,
            self.stats.chunks_dropped,
            self.stats.shed_frames,
            self.stats.packets_uplinked,
        )
    }
}

/// Keeps only the lines that define the decode transcript (uplink and
/// end), dropping control chatter (hello/resumed/ack/goaway/...).
pub fn uplink_transcript(lines: &[String]) -> Vec<String> {
    lines
        .iter()
        .filter(|l| l.starts_with("{\"type\":\"uplink\"") || l.starts_with("{\"type\":\"end\""))
        .cloned()
        .collect()
}

/// Splits a transcript per stream id, preserving arrival order.
fn per_stream(lines: &[String], streams: u32) -> Vec<Vec<String>> {
    let mut out: Vec<Vec<String>> = vec![Vec::new(); streams as usize];
    for line in lines {
        for s in 0..streams {
            if line.contains(&format!("\"stream\":{s},")) {
                out[s as usize].push(line.clone());
                break;
            }
        }
    }
    out
}

/// Runs one scenario: daemon up, chaos proxy in front under `plan`,
/// resilient client streaming the configured collided traffic through
/// it, transcript compared (uplink+end lines, per stream) against the
/// direct in-process reference decode.
pub fn run_chaos_case(cfg: &ChaosConfig, plan: NetFaultPlan) -> io::Result<ChaosRow> {
    let scenario = plan.name;
    let recoverable = plan.recoverable;
    let gw = Gateway::spawn(
        ("127.0.0.1", 0),
        GatewayConfig {
            queue_chunks: 1024,
            ack_every: 4,
            resume_grace: Duration::from_secs(30),
            ..GatewayConfig::new(cfg.params)
        },
    )?;
    let proxy = ChaosProxy::spawn(gw.local_addr(), plan)?;
    let mut client = ResilientClient::connect(
        proxy.local_addr(),
        ResilientConfig {
            seed: cfg.chaos_seed,
            max_reconnects: 10,
            base_delay: Duration::from_millis(20),
            reply_timeout: Duration::from_secs(10),
            ..ResilientConfig::default()
        },
    )?;

    let streaming = StreamingConfig::default();
    let mut reference = Vec::new();
    for s in 0..cfg.streams {
        let samples = collided_samples(cfg.params, cfg.seed + s as u64, cfg.packets);
        client.send_samples(s, &samples, cfg.chunk)?;
        client.end_stream(s)?;
        let quantized = quantize(&samples);
        let (lines, _) = reference_transcript(cfg.params, streaming, s, &quantized, cfg.chunk);
        reference.push(lines);
    }
    client.drain()?;
    let client_stats = client.stats();
    let transcript = client.finish();
    let stats = gw.join();
    let (_, _, _, proxy_faults) = proxy.stats();
    drop(proxy);

    let daemon_lines = per_stream(&uplink_transcript(&transcript), cfg.streams);
    Ok(ChaosRow {
        scenario,
        recoverable,
        parity: daemon_lines == reference,
        reconnects: client_stats.reconnects,
        resent: client_stats.retransmitted_frames,
        proxy_faults,
        stats,
    })
}

/// Runs the full chaos matrix for `cfg.chaos_seed`.
pub fn run_chaos_matrix(cfg: &ChaosConfig) -> io::Result<Vec<ChaosRow>> {
    NetFaultPlan::matrix(cfg.chaos_seed)
        .into_iter()
        .map(|plan| run_chaos_case(cfg, plan))
        .collect()
}

/// The chaos artifact: `{"gateway_chaos":[row, ...]}`.
pub fn chaos_json(rows: &[ChaosRow]) -> String {
    let body: Vec<String> = rows.iter().map(ChaosRow::to_json).collect();
    format!("{{\"gateway_chaos\":[{}]}}", body.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uplink_transcript_filters_control_chatter() {
        let lines = vec![
            "{\"type\":\"hello\",\"session\":1,\"grace_ms\":1}".to_owned(),
            "{\"type\":\"uplink\",\"stream\":0,\"n\":0,\"x\":1}".to_owned(),
            "{\"type\":\"ack\",\"stream\":0,\"seq\":3}".to_owned(),
            "{\"type\":\"end\",\"stream\":0,\"samples\":9}".to_owned(),
            "{\"type\":\"goaway\",\"reason\":\"shutdown\"}".to_owned(),
        ];
        let kept = uplink_transcript(&lines);
        assert_eq!(kept.len(), 2);
        assert!(kept[0].contains("uplink") && kept[1].contains("end"));
    }

    #[test]
    fn chaos_row_json_is_flat_and_complete() {
        let row = ChaosRow {
            scenario: "bitflip",
            recoverable: true,
            parity: true,
            reconnects: 1,
            resent: 4,
            proxy_faults: 1,
            stats: GatewayStatsSnapshot::default(),
        };
        let json = row.to_json();
        for key in [
            "scenario",
            "recoverable",
            "parity",
            "reconnects",
            "resent",
            "proxy_faults",
            "worker_panics",
            "sessions_resumed",
            "retransmitted_frames",
        ] {
            assert!(json.contains(&format!("\"{key}\":")), "{json}");
        }
        assert!(json.contains("\"scenario\":\"bitflip\""));
        let wrapped = chaos_json(&[row.clone(), row]);
        assert!(wrapped.starts_with("{\"gateway_chaos\":["));
        assert!(wrapped.ends_with("]}"));
    }
}
