//! Chaos soak: the full `NetFaultPlan::matrix` against a live daemon,
//! driven through the `ChaosProxy` by the `ResilientClient`. Under
//! every injector the daemon must never panic, the counters must
//! account for the faults, and — since every matrix scenario is
//! recoverable by construction (destructive faults are one-shot) — the
//! uplink transcript must be byte-identical to a fault-free run.

use tnb_phy::{CodingRate, LoRaParams, SpreadingFactor};
use tnb_sim::chaos::{run_chaos_matrix, ChaosConfig};

#[test]
fn chaos_matrix_never_panics_and_recovers_byte_identically() {
    let cfg = ChaosConfig {
        packets: 2,
        ..ChaosConfig::new(LoRaParams::new(SpreadingFactor::SF7, CodingRate::CR4))
    };
    let rows = run_chaos_matrix(&cfg).expect("chaos matrix runs");
    assert_eq!(rows.len(), 8, "every matrix scenario ran");
    for row in &rows {
        assert_eq!(
            row.stats.worker_panics, 0,
            "{}: no contained panics either",
            row.scenario
        );
        assert!(
            row.recoverable,
            "{}: matrix plans are recoverable",
            row.scenario
        );
        assert!(
            row.parity,
            "{}: transcript must be byte-identical to a clean run \
             (reconnects={} resent={} stats={:?})",
            row.scenario, row.reconnects, row.resent, row.stats
        );
    }
    // The clean scenario needs no recovery machinery at all…
    let clean = &rows[0];
    assert_eq!(clean.reconnects, 0, "clean run never reconnects");
    assert_eq!(clean.stats.sessions_parked, 0);
    assert_eq!(clean.proxy_faults, 0);
    // …while every destructive scenario exercised park/resume and the
    // counters account for the recovery: a fault fired, the session
    // parked and resumed, and the resent frames show up on both sides.
    for row in rows.iter().filter(|r| {
        matches!(
            r.scenario,
            "disconnect-mid-frame" | "bitflip" | "split+disconnect" | "coalesce+bitflip"
        )
    }) {
        assert!(row.proxy_faults >= 1, "{}: fault must fire", row.scenario);
        assert!(
            row.reconnects >= 1,
            "{}: destructive faults force a reconnect",
            row.scenario
        );
        assert!(
            row.stats.sessions_parked >= 1 && row.stats.sessions_resumed >= 1,
            "{}: park/resume must run: {:?}",
            row.scenario,
            row.stats
        );
        assert!(
            row.resent >= 1,
            "{}: the unacked tail must be retransmitted",
            row.scenario
        );
        // Stale retransmissions the daemon dropped are visible in its
        // counters, never decoded twice (parity above proves that).
        assert!(
            row.stats.retransmitted_frames + row.stats.seq_dups + row.resent
                >= row.stats.retransmitted_frames,
            "{}: accounting holds",
            row.scenario
        );
    }
    // Content-transparent scenarios must not trip the recovery path.
    for row in rows
        .iter()
        .filter(|r| matches!(r.scenario, "split-writes" | "coalesced-reads" | "stall"))
    {
        assert_eq!(
            row.stats.protocol_errors, 0,
            "{}: segmentation/timing chaos is invisible to the wire layer",
            row.scenario
        );
    }
}
