//! Second-pass behaviour at high load: the two-pass receiver must decode
//! at least as much as the single-pass one, and pass-2 rescues appear
//! under heavy collisions.

use tnb_baselines::Scheme;
use tnb_core::packet::DecodedPacket;
use tnb_core::receiver::{TnbConfig, TnbReceiver};
use tnb_dsp::Complex32;
use tnb_phy::{CodingRate, LoRaParams, SpreadingFactor};
use tnb_sim::{build_experiment, run_scheme, Deployment, ExperimentConfig};

struct ConfiguredTnb(TnbReceiver);

impl Scheme for ConfiguredTnb {
    fn name(&self) -> &'static str {
        "TnB(configured)"
    }
    fn decode(&self, antennas: &[&[Complex32]]) -> Vec<DecodedPacket> {
        self.0.decode_multi(antennas)
    }
}

#[test]
fn two_pass_never_worse_and_sometimes_rescues() {
    let params = LoRaParams::new(SpreadingFactor::SF8, CodingRate::CR4);
    let mut total_one = 0usize;
    let mut total_two = 0usize;
    let mut pass2_seen = 0usize;
    for seed in [1u64, 2, 3] {
        let cfg = ExperimentConfig {
            load_pps: 22.0,
            duration_s: 2.0,
            seed,
            ..ExperimentConfig::new(params, Deployment::Indoor)
        };
        let built = build_experiment(&cfg);
        let one = ConfiguredTnb(TnbReceiver::with_config(
            params,
            TnbConfig {
                two_pass: false,
                ..TnbConfig::default()
            },
        ));
        let two = ConfiguredTnb(TnbReceiver::with_config(params, TnbConfig::default()));
        let r1 = run_scheme(&one, &built);
        let r2 = run_scheme(&two, &built);
        total_one += r1.matched.correct.len();
        total_two += r2.matched.correct.len();
        pass2_seen += r2
            .matched
            .pass_per_packet
            .iter()
            .filter(|&&p| p == 2)
            .count();
        for &p in &r2.matched.pass_per_packet {
            assert!(p == 1 || p == 2);
        }
    }
    assert!(
        total_two >= total_one,
        "two-pass {total_two} < single-pass {total_one}"
    );
    // Across three heavily loaded runs at least one packet should need
    // the second pass (the paper's motivation for it).
    assert!(pass2_seen >= 1, "no pass-2 rescues observed");
}
