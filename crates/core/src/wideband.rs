//! Wideband front-end: one polyphase channelizer feeding per-channel
//! [`StreamingReceiver`]s.
//!
//! A multi-channel gateway captures one wideband IQ stream covering all
//! eight standard LoRa uplink channels at `M×` the per-channel rate.
//! [`WidebandReceiver`] splits that stream with the critically-sampled
//! [`Channelizer`] and runs an independent streaming decoder per
//! channel, so a trace that was channelized offline and decoded with
//! standalone receivers yields byte-identical packets and reports (the
//! channelizer is chunk-invariant and every decoder sees the same
//! per-channel sample sequence either way).

use crate::packet::DecodedPacket;
use crate::receiver::DecodeReport;
use crate::streaming::{StreamingConfig, StreamingReceiver};
use tnb_dsp::{Channelizer, ChannelizerConfig, Complex32};
use tnb_phy::params::LoRaParams;

/// Wideband front-end configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct WidebandConfig {
    /// Filterbank geometry (channel count `M`, prototype taps).
    pub channelizer: ChannelizerConfig,
    /// Streaming-receiver configuration applied to every channel.
    pub streaming: StreamingConfig,
}

/// One decoded packet attributed to the channel it was heard on.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelPacket {
    /// Logical channel index (`0..M`, ascending center frequency).
    pub channel: usize,
    /// The decoded packet; `start` is an absolute sample index on the
    /// *per-channel* (decimated) sample clock.
    pub packet: DecodedPacket,
}

/// Splits a wideband IQ stream into `M` channels and decodes each with
/// its own [`StreamingReceiver`].
pub struct WidebandReceiver {
    chan: Channelizer,
    rxs: Vec<StreamingReceiver>,
    bufs: Vec<Vec<Complex32>>,
}

impl WidebandReceiver {
    /// Creates a wideband receiver with default configuration (8
    /// channels, default streaming behaviour).
    pub fn new(params: LoRaParams) -> Self {
        Self::with_config(params, WidebandConfig::default())
    }

    /// Creates a wideband receiver with a custom configuration. Every
    /// channel decodes with the same `params` (the per-channel sample
    /// rate: the wideband input runs `M×` faster).
    pub fn with_config(params: LoRaParams, cfg: WidebandConfig) -> Self {
        let chan = Channelizer::new(cfg.channelizer);
        let m = chan.channels();
        let rxs = (0..m)
            .map(|_| StreamingReceiver::with_config(params, cfg.streaming))
            .collect();
        let bufs = vec![Vec::new(); m];
        WidebandReceiver { chan, rxs, bufs }
    }

    /// Number of channels `M`.
    pub fn channels(&self) -> usize {
        self.chan.channels()
    }

    /// Center-frequency offset of channel `c` as a fraction of the
    /// wideband input rate.
    pub fn channel_offset(&self, c: usize) -> f64 {
        self.chan.channel_offset(c)
    }

    /// Absolute per-channel sample position of channel `c`'s decoder
    /// (zero for out-of-range `c`).
    pub fn position(&self, c: usize) -> u64 {
        self.rxs.get(c).map_or(0, StreamingReceiver::position)
    }

    /// Per-channel cumulative decode reports (index = channel).
    pub fn reports(&self) -> Vec<DecodeReport> {
        self.rxs.iter().map(StreamingReceiver::report).collect()
    }

    /// Feeds a chunk of *wideband* samples; returns any packets the
    /// chunk completed, tagged with their channel, in ascending channel
    /// order.
    pub fn push(&mut self, samples: &[Complex32]) -> Vec<ChannelPacket> {
        for b in &mut self.bufs {
            b.clear();
        }
        self.chan.push(samples, &mut self.bufs);
        let mut out = Vec::new();
        for (c, (rx, buf)) in self.rxs.iter_mut().zip(&self.bufs).enumerate() {
            for packet in rx.push(buf) {
                out.push(ChannelPacket { channel: c, packet });
            }
        }
        out
    }

    /// Flushes every channel's decoder at end of stream and resets the
    /// front-end (channelizer delay line included) for a fresh stream.
    /// Cumulative per-channel reports are preserved.
    pub fn finish(&mut self) -> Vec<ChannelPacket> {
        let mut out = Vec::new();
        for (c, rx) in self.rxs.iter_mut().enumerate() {
            for packet in rx.finish() {
                out.push(ChannelPacket { channel: c, packet });
            }
        }
        self.chan.reset();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tnb_phy::params::{CodingRate, SpreadingFactor};

    fn params() -> LoRaParams {
        LoRaParams::new(SpreadingFactor::SF8, CodingRate::CR4)
    }

    #[test]
    fn empty_stream_decodes_nothing() {
        let mut rx = WidebandReceiver::new(params());
        assert_eq!(rx.channels(), 8);
        assert!(rx.push(&[]).is_empty());
        assert!(rx.finish().is_empty());
        assert_eq!(rx.reports().len(), 8);
    }

    #[test]
    fn position_advances_at_the_decimated_rate() {
        let mut rx = WidebandReceiver::new(params());
        rx.push(&[Complex32::ZERO; 800]);
        for c in 0..rx.channels() {
            assert_eq!(rx.position(c), 100);
        }
    }

    #[test]
    fn channel_offsets_cover_the_band() {
        let rx = WidebandReceiver::new(params());
        assert_eq!(rx.channel_offset(4), 0.0);
        assert!(rx.channel_offset(0) < rx.channel_offset(7));
    }
}
