//! Packet detection, steps 1–3 (paper §7).
//!
//! 1. Scan the trace in symbol-length windows; runs of consecutive windows
//!    whose signal vector peaks at the same bin reveal a preamble (the 8
//!    identical upchirps make *every* window fully inside the preamble
//!    peak at the same bin, regardless of alignment).
//! 2. Validate each candidate with whole-symbol adjustments of −2T..2T:
//!    the two full downchirp windows must produce consistent peaks (this
//!    also resolves start-time errors that are multiples of T).
//! 3. Coarse timing and CFO from the up/down peak locations `x₁`, `x₂`
//!    (after \[25\]): timing error `= U·(x₁ − x₂)/2` samples and CFO
//!    `= (x₁ + x₂)/2` bins — an upchirp window offset by `e` samples peaks
//!    at `e/U + δ` while a downchirp window peaks at `−e/U + δ`.
//!
//! Step 4 (fractional timing/CFO) lives in [`crate::sync`].

use crate::packet::{same_transmission, DetectedPacket};
use crate::sync::{fractional_sync_observed, SyncConfig};

use tnb_dsp::{find_peaks, Complex32, DspScratch, PeakFinderConfig};
use tnb_metrics::{PipelineMetrics, Stage, StageCounters};
use tnb_phy::demodulate::Demodulator;
use tnb_phy::params::LoRaParams;

/// Tunables for packet detection.
#[derive(Debug, Clone, Copy)]
pub struct DetectorConfig {
    /// Minimum run of consecutive same-bin windows to accept a preamble.
    /// The 8 upchirps guarantee 7 fully-contained windows.
    pub min_run: usize,
    /// A peak must exceed this multiple of the window's median bin value.
    pub peak_median_factor: f32,
    /// Maximum allowed |CFO| in Hz (paper: "the relaxation is determined
    /// by the maximum allowable CFO"; its simulations draw CFOs from
    /// ±4.88 kHz). Converted to bins per spreading factor internally.
    pub max_cfo_hz: f64,
    /// Keep at most this many peaks per scan window.
    pub max_scan_peaks: usize,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            min_run: 5,
            peak_median_factor: 10.0,
            max_cfo_hz: 6000.0,
            max_scan_peaks: 8,
        }
    }
}

/// A preamble candidate from step 1: a run of windows peaking at one bin.
#[derive(Debug, Clone, Copy)]
struct PreambleRun {
    /// First window index of the run.
    first_window: usize,
    /// Peak bin the run was tracked at.
    bin: usize,
    /// Run length in windows.
    len: usize,
}

/// The packet detector (steps 1–4 composed).
#[derive(Debug)]
pub struct Detector {
    params: LoRaParams,
    demod: Demodulator,
    cfg: DetectorConfig,
}

impl Detector {
    /// Builds a detector with default configuration.
    pub fn new(params: LoRaParams) -> Self {
        Self::with_config(params, DetectorConfig::default())
    }

    /// Builds a detector with a custom configuration.
    pub fn with_config(params: LoRaParams, cfg: DetectorConfig) -> Self {
        Detector {
            demod: Demodulator::new(params),
            params,
            cfg,
        }
    }

    /// The demodulator (shared with later pipeline stages).
    pub fn demodulator(&self) -> &Demodulator {
        &self.demod
    }

    /// Detects all packets in `samples`, returning their synchronized
    /// start times and CFOs sorted by start time.
    pub fn detect(&self, samples: &[Complex32]) -> Vec<DetectedPacket> {
        let mut scratch = DspScratch::new();
        self.detect_with_scratch(samples, &mut scratch)
    }

    /// [`Self::detect`] with a caller-owned [`DspScratch`], so repeated
    /// detection passes reuse buffers and FFT plans.
    pub fn detect_with_scratch(
        &self,
        samples: &[Complex32],
        scratch: &mut DspScratch,
    ) -> Vec<DetectedPacket> {
        let metrics = PipelineMetrics::disabled();
        let mut counters = StageCounters::default();
        self.detect_observed(samples, scratch, &metrics, &mut counters)
    }

    /// [`Self::detect_with_scratch`] with observability: stage wall times
    /// go to `metrics`, deterministic event counts to `counters`.
    pub fn detect_observed(
        &self,
        samples: &[Complex32],
        scratch: &mut DspScratch,
        metrics: &PipelineMetrics,
        counters: &mut StageCounters,
    ) -> Vec<DetectedPacket> {
        counters.detect_windows += (samples.len() / self.params.samples_per_symbol()) as u64;
        let t0 = metrics.now();
        let runs = self.scan_preambles(samples, scratch);
        metrics.record_span(Stage::Detect, t0);
        counters.detect_runs += runs.len() as u64;
        let mut out: Vec<DetectedPacket> = Vec::new();
        for run in runs {
            if std::env::var("TNB_DEBUG_DETECT").is_ok() {
                eprintln!(
                    "DBG run first_window={} bin={} len={}",
                    run.first_window, run.bin, run.len
                );
            }
            if let Some(p) = self.validate_and_sync(samples, &run, scratch, metrics, counters) {
                if merge_dedup(&mut out, p, self.params.samples_per_symbol() as f64) {
                    counters.detect_duplicates += 1;
                }
            }
        }
        out.sort_by(|a, b| a.start.total_cmp(&b.start));
        out
    }

    /// [`Self::detect`] with preamble validation fanned out over
    /// `workers` threads (each with its own scratch). The scan pass is a
    /// single cheap sweep and stays serial; validation — five candidate
    /// alignments plus the 36-point fractional search per run — dominates
    /// detection cost and parallelizes per run. Results are identical to
    /// the serial path: candidates are deduplicated in scan order, exactly
    /// as [`Self::detect`] does.
    pub fn detect_parallel(&self, samples: &[Complex32], workers: usize) -> Vec<DetectedPacket> {
        let metrics = PipelineMetrics::disabled();
        let mut counters = StageCounters::default();
        self.detect_parallel_observed(samples, workers, &metrics, &mut counters)
    }

    /// [`Self::detect_parallel`] with observability. Each validation
    /// worker records into its own [`PipelineMetrics`] and
    /// [`StageCounters`], merged after join; merges are commutative sums,
    /// so the totals equal the serial path's regardless of scheduling.
    pub fn detect_parallel_observed(
        &self,
        samples: &[Complex32],
        workers: usize,
        metrics: &PipelineMetrics,
        counters: &mut StageCounters,
    ) -> Vec<DetectedPacket> {
        let workers = workers.max(1);
        if workers == 1 {
            let mut scratch = DspScratch::new();
            return self.detect_observed(samples, &mut scratch, metrics, counters);
        }
        let mut scratch = DspScratch::new();
        counters.detect_windows += (samples.len() / self.params.samples_per_symbol()) as u64;
        let t0 = metrics.now();
        let runs = self.scan_preambles(samples, &mut scratch);
        metrics.record_span(Stage::Detect, t0);
        counters.detect_runs += runs.len() as u64;
        let enabled = metrics.is_enabled();
        let mut validated: Vec<Option<DetectedPacket>> = vec![None; runs.len()];
        let next = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers.min(runs.len().max(1)))
                .map(|_| {
                    s.spawn(|| {
                        let mut scratch = DspScratch::new();
                        let wm = if enabled {
                            PipelineMetrics::enabled()
                        } else {
                            PipelineMetrics::disabled()
                        };
                        let mut wc = StageCounters::default();
                        let mut local: Vec<(usize, DetectedPacket)> = Vec::new();
                        loop {
                            let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            if i >= runs.len() {
                                break;
                            }
                            if let Some(p) = self.validate_and_sync(
                                samples,
                                &runs[i],
                                &mut scratch,
                                &wm,
                                &mut wc,
                            ) {
                                local.push((i, p));
                            }
                        }
                        (local, wm, wc)
                    })
                })
                .collect();
            for h in handles {
                // A panicking validation worker forfeits its runs (they stay
                // unvalidated) instead of taking the whole pipeline down.
                if let Ok((local, wm, wc)) = h.join() {
                    metrics.absorb(&wm);
                    counters.absorb(&wc);
                    for (i, p) in local {
                        validated[i] = Some(p);
                    }
                }
            }
        });
        let mut out: Vec<DetectedPacket> = Vec::new();
        for p in validated.into_iter().flatten() {
            if merge_dedup(&mut out, p, self.params.samples_per_symbol() as f64) {
                counters.detect_duplicates += 1;
            }
        }
        out.sort_by(|a, b| a.start.total_cmp(&b.start));
        out
    }

    /// Step 1: scan for runs of same-bin peaks across consecutive windows.
    fn scan_preambles(&self, samples: &[Complex32], scratch: &mut DspScratch) -> Vec<PreambleRun> {
        let l = self.params.samples_per_symbol();
        let n = self.params.n() as i64;
        let n_windows = samples.len() / l;
        let mut finished: Vec<PreambleRun> = Vec::new();

        /// An in-progress run of same-bin peaks.
        struct Run {
            bin: usize,
            first: usize,
            last: usize,
            len: usize,
        }
        let mut active: Vec<Run> = Vec::new();

        let finder_cfg = PeakFinderConfig {
            circular: true,
            max_peaks: Some(self.cfg.max_scan_peaks),
            ..PeakFinderConfig::default()
        };

        for w in 0..n_windows {
            self.demod
                .signal_vector_scratch(&samples[w * l..(w + 1) * l], 0.0, scratch);
            let y = &scratch.fbuf;
            let median = tnb_dsp::stats::median(y);
            let thresh = median * self.cfg.peak_median_factor;
            let peaks: Vec<usize> = find_peaks(y, &finder_cfg)
                .into_iter()
                .filter(|p| p.height > thresh)
                .map(|p| p.index)
                .collect();

            let mut consumed = vec![false; peaks.len()];
            for run in active.iter_mut() {
                if let Some(pi) = peaks
                    .iter()
                    .position(|&b| bins_close(b as i64, run.bin as i64, n, 1))
                {
                    run.bin = peaks[pi];
                    run.last = w;
                    run.len += 1;
                    consumed[pi] = true;
                }
            }
            // Finalize runs that were not extended in this window.
            let min_run = self.cfg.min_run;
            active.retain(|run| {
                if run.last == w {
                    return true;
                }
                if run.len >= min_run {
                    finished.push(PreambleRun {
                        first_window: run.first,
                        bin: run.bin,
                        len: run.len,
                    });
                }
                false
            });
            // Unconsumed peaks open new runs.
            for (pi, &b) in peaks.iter().enumerate() {
                if !consumed[pi] {
                    active.push(Run {
                        bin: b,
                        first: w,
                        last: w,
                        len: 1,
                    });
                }
            }
        }
        for run in active {
            if run.len >= self.cfg.min_run {
                finished.push(PreambleRun {
                    first_window: run.first,
                    bin: run.bin,
                    len: run.len,
                });
            }
        }
        // Longer runs first on ties: they are the more trustworthy
        // preamble evidence when two runs start in the same window.
        finished.sort_by_key(|r| (r.first_window, usize::MAX - r.len));
        finished
    }

    /// Steps 2–4 for one preamble run: whole-symbol validation, coarse
    /// timing/CFO (timed as [`Stage::Detect`]), then the fractional search
    /// (timed as [`Stage::Sync`]).
    fn validate_and_sync(
        &self,
        samples: &[Complex32],
        run: &PreambleRun,
        scratch: &mut DspScratch,
        metrics: &PipelineMetrics,
        counters: &mut StageCounters,
    ) -> Option<DetectedPacket> {
        let t0 = metrics.now();
        let coarse = self.validate_coarse(samples, run, scratch);
        metrics.record_span(Stage::Detect, t0);
        let (s_coarse, cfo_est) = coarse?;
        // Step 4: fractional timing and CFO around the integer-bin CFO.
        let cfo_int = cfo_est.round();
        fractional_sync_observed(
            samples,
            &self.demod,
            s_coarse,
            cfo_int,
            &SyncConfig::default(),
            scratch,
            metrics,
            counters,
        )
    }

    /// Steps 2–3 for one preamble run: whole-symbol validation and coarse
    /// timing/CFO estimation.
    fn validate_coarse(
        &self,
        samples: &[Complex32],
        run: &PreambleRun,
        scratch: &mut DspScratch,
    ) -> Option<(i64, f64)> {
        let l = self.params.samples_per_symbol() as i64;
        let u = self.params.osf as i64;
        let n = self.params.n() as i64;

        // Preliminary start (step 2), assuming zero CFO.
        let p0 = run.first_window as i64 * l - run.bin as i64 * u;

        let mut best: Option<(f32, i64, f64)> = None; // (score, start, cfo)
        for k in -2i64..=2 {
            let p = p0 + k * l;
            if p + 13 * l > samples.len() as i64 {
                continue;
            }
            // Upchirp peaks from three windows well inside the preamble.
            // These windows are aligned to the candidate start, so this
            // preamble's peak sits near bin 0, displaced only by the CFO —
            // search that neighbourhood rather than taking the window
            // maximum, which a stronger colliding packet would hijack.
            let max_cfo_bins = (self.cfg.max_cfo_hz / self.params.bin_hz()).ceil() as i64 + 1;
            // Median over five windows: a colliding packet's payload peak
            // can outshine this preamble near bin 0 in any single window,
            // but not in the majority of them.
            let mut bins: Vec<i64> = Vec::with_capacity(5);
            let mut heights: Vec<f32> = Vec::with_capacity(5);
            let mut ok = true;
            for j in 1i64..=5 {
                match self.peak_near(samples, p + j * l, false, 0, max_cfo_bins, scratch) {
                    Some((bin, h)) => {
                        bins.push(center(bin, n));
                        heights.push(h);
                    }
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
            if !ok {
                continue;
            }
            bins.sort_unstable();
            let x1 = bins[bins.len() / 2].rem_euclid(n);
            heights.sort_by(f32::total_cmp);
            let up_h = heights[heights.len() / 2];
            // Two full downchirp windows (also rejects ±T start errors:
            // only the true alignment puts full downchirps in both). The
            // downchirp bin is unknown a priori; consider every peak of
            // the first window that (a) repeats in the second and (b)
            // yields a CFO within bounds, and keep the strongest.
            let down_a = self.window_peaks(samples, p + 10 * l, true, scratch);
            let down_b = self.window_peaks(samples, p + 11 * l, true, scratch);
            let (Some(down_a), Some(down_b)) = (down_a, down_b) else {
                continue;
            };
            let c1 = center(x1, n);
            let mut best_down: Option<(f32, i64)> = None; // (score, x2)
            for pa in &down_a {
                let Some(pb) = down_b
                    .iter()
                    .find(|pb| bins_close(pb.index as i64, pa.index as i64, n, 1))
                else {
                    continue;
                };
                let c2 = center(pa.index as i64, n);
                let cfo = (c1 + c2) as f64 / 2.0;
                if cfo.abs() * self.params.bin_hz() > self.cfg.max_cfo_hz {
                    continue;
                }
                let score = pa.height.min(pb.height);
                if best_down.map(|(s, _)| score > s).unwrap_or(true) {
                    best_down = Some((score, pa.index as i64));
                }
            }
            let Some((score, x2)) = best_down else {
                if std::env::var("TNB_DEBUG_DETECT").is_ok() {
                    eprintln!(
                        "DBG k={k} x1={x1} up_h={up_h:.0} no consistent down peak: a={:?} b={:?}",
                        down_a
                            .iter()
                            .map(|p| (p.index, p.height as i64))
                            .collect::<Vec<_>>(),
                        down_b
                            .iter()
                            .map(|p| (p.index, p.height as i64))
                            .collect::<Vec<_>>()
                    );
                }
                continue;
            };
            // Downchirp height vs upchirp height must be comparable — a
            // spurious "downchirp" from noise or a colliding upchirp is
            // weak.
            if score < up_h * 0.2 {
                if std::env::var("TNB_DEBUG_DETECT").is_ok() {
                    eprintln!("DBG k={k} score {score:.0} < 0.2*up_h {up_h:.0}");
                }
                continue;
            }
            let c2 = center(x2, n);
            let cfo = (c1 + c2) as f64 / 2.0;
            let timing_err = u * (c1 - c2) / 2; // samples
            let start = p - timing_err;
            if best.map(|(s, _, _)| score > s).unwrap_or(true) {
                best = Some((score, start, cfo));
            }
        }

        if std::env::var("TNB_DEBUG_DETECT").is_ok() {
            eprintln!("DBG best={:?}", best.map(|(s, st, c)| (s as i64, st, c)));
        }
        let (_, s_coarse, cfo_est) = best?;
        if s_coarse < 0 {
            return None;
        }
        Some((s_coarse, cfo_est))
    }

    /// Signal vector of one window, processed with the downchirp
    /// (`down = false`, for upchirps) or the upchirp (`down = true`, for
    /// downchirps), left in `scratch.fbuf`. `None` when the window runs
    /// off the trace.
    fn window_vector<'s>(
        &self,
        samples: &[Complex32],
        start: i64,
        down: bool,
        scratch: &'s mut DspScratch,
    ) -> Option<&'s [f32]> {
        let l = self.params.samples_per_symbol();
        if start < 0 || start as usize + l > samples.len() {
            return None;
        }
        let w = &samples[start as usize..start as usize + l];
        if down {
            self.demod.signal_vector_down_scratch(w, 0.0, scratch);
        } else {
            self.demod.signal_vector_scratch(w, 0.0, scratch);
        }
        Some(&scratch.fbuf)
    }

    /// Top peaks of one window (circular peak finding, capped).
    fn window_peaks(
        &self,
        samples: &[Complex32],
        start: i64,
        down: bool,
        scratch: &mut DspScratch,
    ) -> Option<Vec<tnb_dsp::Peak>> {
        let y = self.window_vector(samples, start, down, scratch)?;
        let cfg = PeakFinderConfig {
            circular: true,
            max_peaks: Some(self.cfg.max_scan_peaks),
            ..PeakFinderConfig::default()
        };
        Some(find_peaks(y, &cfg))
    }

    /// The signal-vector value and bin of the strongest bin within `tol`
    /// of `expect` in one window (reads the raw vector, so a peak
    /// overshadowed by a stronger colliding peak is still found).
    fn peak_near(
        &self,
        samples: &[Complex32],
        start: i64,
        down: bool,
        expect: i64,
        tol: i64,
        scratch: &mut DspScratch,
    ) -> Option<(i64, f32)> {
        let y = self.window_vector(samples, start, down, scratch)?;
        let n = y.len() as i64;
        let mut best: Option<(i64, f32)> = None;
        for d in -tol..=tol {
            let bin = (expect + d).rem_euclid(n);
            let h = y[bin as usize];
            if best.map(|(_, bh)| h > bh).unwrap_or(true) {
                best = Some((bin, h));
            }
        }
        best
    }
}

/// Merges `p` into `out` under the shared [`same_transmission`] predicate:
/// appends when no equivalent detection is present, otherwise keeps the
/// higher-scored (`preamble_peak`) of the two. Returns `true` when `p` was
/// a duplicate. Deduplication matters because two runs (e.g. split by a
/// collision glitch) or two antennas can describe the same preamble, and
/// keeping the stronger observation gives Thrive the better history
/// bootstrap.
pub(crate) fn merge_dedup(out: &mut Vec<DetectedPacket>, p: DetectedPacket, l: f64) -> bool {
    match out
        .iter()
        .position(|q| same_transmission(q.start, q.cfo_cycles, p.start, p.cfo_cycles, l))
    {
        Some(i) => {
            if p.preamble_peak > out[i].preamble_peak {
                out[i] = p;
            }
            true
        }
        None => {
            out.push(p);
            false
        }
    }
}

/// Maps a bin in `[0, n)` to the centred range `[−n/2, n/2)`.
pub(crate) fn center(x: i64, n: i64) -> i64 {
    ((x + n / 2).rem_euclid(n)) - n / 2
}

/// True if two bins are within `tol` of each other modulo `n`.
fn bins_close(a: i64, b: i64, n: i64, tol: i64) -> bool {
    center(a - b, n).abs() <= tol
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn center_maps_to_half_open_range() {
        assert_eq!(center(0, 256), 0);
        assert_eq!(center(255, 256), -1);
        assert_eq!(center(128, 256), -128);
        assert_eq!(center(127, 256), 127);
        assert_eq!(center(-1, 256), -1);
    }

    #[test]
    fn bins_close_wraps() {
        assert!(bins_close(0, 255, 256, 1));
        assert!(bins_close(255, 0, 256, 1));
        assert!(!bins_close(0, 250, 256, 2));
    }

    #[test]
    fn merge_dedup_keeps_higher_peak() {
        let l = 1024.0;
        let mk = |start: f64, cfo: f64, peak: f32| DetectedPacket {
            start,
            cfo_cycles: cfo,
            preamble_peak: peak,
        };
        let mut out = vec![mk(1000.0, 0.5, 10.0)];
        // Duplicate (within l/4 and 1.5 bins) with a stronger preamble
        // replaces the weaker observation in place.
        assert!(merge_dedup(&mut out, mk(1100.0, 0.2, 25.0), l));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].preamble_peak, 25.0);
        assert_eq!(out[0].start, 1100.0);
        // A weaker duplicate is still reported as one but changes nothing.
        assert!(merge_dedup(&mut out, mk(1050.0, 0.4, 5.0), l));
        assert_eq!(out[0].preamble_peak, 25.0);
        // Same start but far-off CFO is a different transmission.
        assert!(!merge_dedup(&mut out, mk(1100.0, 4.0, 1.0), l));
        assert_eq!(out.len(), 2);
    }
}
