//! Fractional timing and CFO estimation — detection step 4 (paper §7).
//!
//! A three-phase search evaluates `Q(δt, δf)`, the phase-coherent peak
//! energy of the preamble: the complex signal vectors of the 8 upchirps
//! are summed and the energy taken at the peak of the summed vector. Any
//! residual fractional CFO rotates consecutive symbols against each other
//! and collapses the sum, which is what makes `Q` sharp in `δf`.
//!
//! - **Phase 1**: 17 points along `δt = 0`, `δf ∈ [−1, 0]` in steps of
//!   1/16 bin → `δf*` (possibly off by exactly 1 because `Q` only looks
//!   at peak energy, which is invariant to integer-bin shifts).
//! - **Phase 2**: 10 points, `δt ∈ {−1, −½, 0, ½, 1}` chips ×
//!   `δf ∈ {δf*, δf*+1}`, scored by `Q*` — `Q` gated on both the upchirp
//!   and downchirp peaks landing at bin 0, which disambiguates the ±1.
//! - **Phase 3**: `U + 1` points refining `δt` in steps of `1/U` chip
//!   (= 1 receiver sample) around the phase-2 winner.
//!
//! Total: 36 evaluations for `U = 8`, matching the paper.

use crate::packet::DetectedPacket;
use tnb_dsp::{Complex32, DspScratch};
use tnb_metrics::{PipelineMetrics, Stage, StageCounters};
use tnb_phy::demodulate::Demodulator;
use tnb_phy::params::LoRaParams;

/// Tunables for the fractional search.
#[derive(Debug, Clone, Copy)]
pub struct SyncConfig {
    /// Phase-1 grid points along the CFO axis (paper: 17 → 1/16-bin steps).
    pub cfo_grid: usize,
    /// Reject a preamble whose best `Q*` is zero (no consistent peak).
    pub require_qstar: bool,
}

impl Default for SyncConfig {
    fn default() -> Self {
        SyncConfig {
            cfo_grid: 17,
            require_qstar: true,
        }
    }
}

/// Evaluation of `Q`/`Q*` at one `(δt, δf)` point.
struct QValue {
    /// Peak energy of the summed upchirp spectra.
    q: f32,
    /// True if the upchirp peak *and* the downchirp peak are at bin 0.
    peaks_at_zero: bool,
}

/// Runs the fractional search and returns the synchronized packet, or
/// `None` if the preamble does not produce consistent peaks.
///
/// `start` is the coarse start estimate in samples, `cfo_int` the coarse
/// CFO in (integer) bins.
pub fn fractional_sync(
    samples: &[Complex32],
    demod: &Demodulator,
    start: i64,
    cfo_int: f64,
    cfg: &SyncConfig,
) -> Option<DetectedPacket> {
    let mut scratch = DspScratch::new();
    fractional_sync_scratch(samples, demod, start, cfo_int, cfg, &mut scratch)
}

/// [`fractional_sync_scratch`] with observability: counts the attempt and
/// its acceptance in `counters` and times the whole 36-point search under
/// [`Stage::Sync`].
// Observed variant threads scratch + two observability sinks on top of the five search inputs.
#[allow(clippy::too_many_arguments)]
pub fn fractional_sync_observed(
    samples: &[Complex32],
    demod: &Demodulator,
    start: i64,
    cfo_int: f64,
    cfg: &SyncConfig,
    scratch: &mut DspScratch,
    metrics: &PipelineMetrics,
    counters: &mut StageCounters,
) -> Option<DetectedPacket> {
    counters.sync_attempts += 1;
    let t0 = metrics.now();
    let out = fractional_sync_scratch(samples, demod, start, cfo_int, cfg, scratch);
    metrics.record_span(Stage::Sync, t0);
    if out.is_some() {
        counters.sync_accepted += 1;
    }
    out
}

/// [`fractional_sync`] with a caller-owned [`DspScratch`], so the 36-point
/// search performs no per-evaluation allocations. Results are bit-identical
/// to the allocating path.
// tnb-lint: no_alloc_root -- the 36-point (δt, δf) search runs per detected packet; every buffer lives in the scratch
pub fn fractional_sync_scratch(
    samples: &[Complex32],
    demod: &Demodulator,
    start: i64,
    cfo_int: f64,
    cfg: &SyncConfig,
    scratch: &mut DspScratch,
) -> Option<DetectedPacket> {
    let params = *demod.params();
    let u = params.osf as i64;

    let mut eval = |dt_chips: f64, df: f64| -> Option<QValue> {
        evaluate_q(samples, demod, start, dt_chips, cfo_int + df, scratch)
    };

    // Phase 1: δt = 0, δf from −1 to 0.
    let steps = cfg.cfo_grid.max(2) - 1;
    let mut best_df = 0.0;
    let mut best_q = f32::NEG_INFINITY;
    for i in 0..=steps {
        let df = -1.0 + i as f64 / steps as f64;
        if let Some(v) = eval(0.0, df) {
            if v.q > best_q {
                best_q = v.q;
                best_df = df;
            }
        }
    }
    if best_q <= 0.0 {
        return None;
    }

    // Phase 2: δt ∈ {−1, −½, 0, ½, 1} chips × δf ∈ {δf*, δf*+1}, by Q*.
    let mut p2: Option<(f32, f64, f64)> = None;
    for &df in &[best_df, best_df + 1.0] {
        for i in -2i64..=2 {
            let dt = i as f64 / 2.0;
            if let Some(v) = eval(dt, df) {
                if v.peaks_at_zero && p2.map(|(q, _, _)| v.q > q).unwrap_or(true) {
                    p2 = Some((v.q, dt, df));
                }
            }
        }
    }
    let (_, dt2, df2) = match p2 {
        Some(v) => v,
        None if cfg.require_qstar => return None,
        None => (0.0, 0.0, best_df),
    };

    // Phase 3: refine δt at 1/U-chip (1-sample) resolution.
    let mut p3: Option<(f32, f64)> = None;
    for i in 0..=params.osf {
        let dt = dt2 - 0.5 + i as f64 / u as f64;
        if let Some(v) = eval(dt, df2) {
            if v.peaks_at_zero && p3.map(|(q, _)| v.q > q).unwrap_or(true) {
                p3 = Some((v.q, dt));
            }
        }
    }
    let (q3, dt3) = p3.unwrap_or((best_q, dt2));

    let final_start = start as f64 + dt3 * u as f64;
    if final_start < 0.0 {
        return None;
    }
    // Per-symbol preamble peak height for Thrive's history bootstrap: the
    // coherent sum over 8 symbols scales as 8², so one symbol's peak is
    // Q/64.
    let preamble_peak = q3 / (LoRaParams::PREAMBLE_UPCHIRPS * LoRaParams::PREAMBLE_UPCHIRPS) as f32;
    Some(DetectedPacket {
        start: final_start,
        cfo_cycles: cfo_int + df2,
        preamble_peak,
    })
}

/// Computes `Q` and the peaks-at-zero predicate for one candidate
/// `(δt, δf)`: sums the complex spectra of the 8 upchirp windows and the 2
/// full downchirp windows, CFO-corrected by `cfo` bins, with the windows
/// shifted by `dt_chips` chips.
fn evaluate_q(
    samples: &[Complex32],
    demod: &Demodulator,
    start: i64,
    dt_chips: f64,
    cfo: f64,
    scratch: &mut DspScratch,
) -> Option<QValue> {
    let params = demod.params();
    let l = params.samples_per_symbol() as i64;
    let shift = (dt_chips * params.osf as f64).round() as i64;
    let base = start + shift;

    let window = |off: i64| -> Option<&[Complex32]> {
        let s = base + off;
        if s < 0 {
            return None;
        }
        // `get` degrades to None when the window runs off the trace.
        samples.get(s as usize..(s + l) as usize)
    };

    // Summed upchirp spectra, accumulated in `scratch.cacc_a`. The
    // per-window CFO correction uses a local time index, so each window
    // must additionally be de-rotated by the correction phase accumulated
    // since the packet start (2π·cfo per symbol) — otherwise the sum's
    // coherence would depend on the *true* fractional CFO instead of the
    // corrected residual, and Q would not discriminate δf at all.
    let carry = |j: i64| Complex32::from_phase(-2.0 * std::f64::consts::PI * cfo * j as f64);
    scratch.cacc_a.clear();
    scratch.cacc_a.resize(l as usize, Complex32::ZERO);
    for j in 0..LoRaParams::PREAMBLE_UPCHIRPS as i64 {
        let w = window(j * l)?;
        demod.complex_spectrum_scratch(w, cfo, scratch);
        let rot = carry(j);
        let DspScratch { cbuf, cacc_a, .. } = &mut *scratch;
        for (a, b) in cacc_a.iter_mut().zip(cbuf.iter()) {
            *a += *b * rot;
        }
    }
    {
        let DspScratch { cacc_a, fbuf, .. } = &mut *scratch;
        demod.fold_into(cacc_a, fbuf);
    }
    let folded = &scratch.fbuf;
    let (up_bin, &q) = folded
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))?;
    let up_pos = centred_peak_position(folded, up_bin);

    // Downchirp peak location (two full downchirp windows start 10 and 11
    // symbols in). Their dechirped spectra also sum coherently, in
    // `scratch.cacc_b`; the fold reuses `scratch.fbuf` (the upchirp
    // readouts above are already taken).
    scratch.cacc_b.clear();
    scratch.cacc_b.resize(l as usize, Complex32::ZERO);
    for j in [10i64, 11] {
        let w = window(j * l)?;
        demod.complex_spectrum_down_scratch(w, cfo, scratch);
        let rot = carry(j);
        let DspScratch { cbuf, cacc_b, .. } = &mut *scratch;
        for (a, b) in cacc_b.iter_mut().zip(cbuf.iter()) {
            *a += *b * rot;
        }
    }
    {
        let DspScratch { cacc_b, fbuf, .. } = &mut *scratch;
        demod.fold_into(cacc_b, fbuf);
    }
    let down_folded = &scratch.fbuf;
    let down_bin = down_folded
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))?
        .0;
    let down_pos = centred_peak_position(down_folded, down_bin);

    // "At location 1" (paper, 1-indexed) = within half a bin of bin 0
    // here; 0.6 leaves margin for interpolation error while still
    // rejecting the ±1-bin CFO/timing ambiguities.
    let peaks_at_zero = up_pos.abs() <= 0.6 && down_pos.abs() <= 0.6;
    Some(QValue { q, peaks_at_zero })
}

/// Sub-bin peak position of a circular spectrum peak, centred so bin
/// `n−1` reads as `−1`.
fn centred_peak_position(folded: &[f32], bin: usize) -> f32 {
    let n = folded.len() as i64;
    let (delta, _) = tnb_dsp::peakfinder::refine_peak(folded, bin);
    crate::detect::center(bin as i64, n) as f32 + delta
}
