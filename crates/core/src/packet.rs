//! Packet types shared across the TnB pipeline.

use tnb_phy::header::Header;

/// A packet found by the detection/synchronization stages: its timing and
/// CFO, before any data symbols have been demodulated.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectedPacket {
    /// Start of the first preamble upchirp, in receiver samples
    /// (fractional: integer placement plus the estimated fractional timing
    /// offset).
    pub start: f64,
    /// Estimated carrier frequency offset in cycles per symbol (one cycle
    /// per symbol = one FFT bin = `BW/2^SF` Hz), integer plus fractional
    /// part. This is the value the signal-calculation stage removes.
    pub cfo_cycles: f64,
    /// Peak height observed in the preamble (bootstraps Thrive's history
    /// model and SNR estimation).
    pub preamble_peak: f32,
}

impl DetectedPacket {
    /// CFO in Hz for a given bin spacing (`params.bin_hz()`).
    pub fn cfo_hz(&self, bin_hz: f64) -> f64 {
        self.cfo_cycles * bin_hz
    }
}

/// True when two detections describe the same transmission: starts within
/// a quarter symbol *and* CFOs within 1.5 bins. This single predicate is
/// shared by the detector's deduplication, the receivers' cross-antenna
/// candidate merges and the streaming frontend's overlap deduplication,
/// so a packet can never be double-emitted by one layer using a looser
/// window than another.
pub fn same_transmission(
    start_a: f64,
    cfo_a: f64,
    start_b: f64,
    cfo_b: f64,
    samples_per_symbol: f64,
) -> bool {
    (start_a - start_b).abs() < samples_per_symbol / 4.0 && (cfo_a - cfo_b).abs() < 1.5
}

/// A successfully decoded packet.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodedPacket {
    /// CRC-validated payload bytes.
    pub payload: Vec<u8>,
    /// Parsed PHY header.
    pub header: Header,
    /// Start of the packet (first preamble sample) in the trace.
    pub start: f64,
    /// Estimated CFO in cycles per symbol.
    pub cfo_cycles: f64,
    /// Estimated SNR in dB (from preamble peak height vs noise floor).
    pub snr_db: f32,
    /// Codewords rescued by BEC (0 when the default decoder would have
    /// decoded the same packet) — the paper's Fig. 16 metric.
    pub rescued_codewords: usize,
    /// Which decode pass succeeded: 1, 2 (paper §4: failed packets are
    /// re-examined with known peaks masked), or 3 (SIC rescue: decoded on
    /// the residual after subtracting reconstructed packets).
    pub pass: u8,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfo_hz_conversion() {
        let d = DetectedPacket {
            start: 0.0,
            cfo_cycles: 3.5,
            preamble_peak: 1.0,
        };
        assert!((d.cfo_hz(488.28125) - 3.5 * 488.28125).abs() < 1e-9);
    }
}
