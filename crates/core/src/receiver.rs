//! The end-to-end TnB receiver (paper Fig. 3): detection → signal
//! calculation → Thrive → BEC, with the second decoding pass of §4
//! (failed packets are re-examined with the peaks of decoded packets
//! masked).

use crate::bec;
use crate::detect::{merge_dedup, Detector, DetectorConfig};
use crate::packet::{same_transmission, DecodedPacket, DetectedPacket};
use crate::sic::{self, SicConfig};
use crate::sigcalc::{estimate_snr_db, SigCalc};
use crate::thrive::{
    assign_checkpoint_scratch, Assignment, CheckpointScratch, CheckpointSymbol, HistoryModel,
    ThriveConfig,
};
use tnb_dsp::{Complex32, DspScratch};
use tnb_metrics::{MetricsSnapshot, PipelineMetrics, Stage, StageCounters};
use tnb_phy::block;
use tnb_phy::decoder as phy_decoder;
use tnb_phy::header::Header;
use tnb_phy::params::LoRaParams;

/// Receiver configuration. The defaults are full TnB; the paper's
/// ablations map to:
/// - "Thrive" (no BEC): `use_bec = false`;
/// - "Sibling" (no history cost): `thrive.use_history = false`.
#[derive(Debug, Clone, Copy)]
pub struct TnbConfig {
    /// Detection tunables.
    pub detector: DetectorConfig,
    /// Thrive tunables.
    pub thrive: ThriveConfig,
    /// Decode blocks with BEC (true) or the default Hamming decoder.
    pub use_bec: bool,
    /// Run the second decoding pass over failed packets.
    pub two_pass: bool,
    /// Known noise power of the trace (per complex sample). When set, SNR
    /// estimates use the exact peak/noise relation; when `None`, a blind
    /// median-based estimate is used (compresses above ≈ 14 dB).
    pub noise_power: Option<f32>,
    /// Upper bound on BEC candidate combinations generated per packet.
    /// Adversarial symbol streams can make companion enumeration explode;
    /// once the budget is hit the remaining blocks fall back to their
    /// default decode and the packet is reported `PayloadBudget` if it
    /// then fails the CRC. The default is far above anything a clean
    /// trace generates, so normal decodes are unaffected.
    pub bec_candidate_budget: usize,
    /// SIC rescue pass: reconstruct and subtract decoded packets, then
    /// re-run detection and Thrive/BEC on the residual (off by default).
    pub sic: SicConfig,
}

impl Default for TnbConfig {
    fn default() -> Self {
        TnbConfig {
            detector: DetectorConfig::default(),
            thrive: ThriveConfig::default(),
            use_bec: true,
            two_pass: true,
            noise_power: Some(1.0),
            bec_candidate_budget: 100_000,
            sic: SicConfig::default(),
        }
    }
}

/// Why a detected packet degraded instead of decoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradeReason {
    /// The PHY header never decoded.
    Header,
    /// Header decoded but the payload CRC never passed.
    Payload,
    /// The payload CRC never passed and the BEC combination budget ran
    /// out first — a larger budget might still have decoded it.
    PayloadBudget,
    /// The packet ran off the end of the trace.
    Truncated,
    /// The decode of this packet's overlap cluster panicked; the cluster
    /// was dropped so the rest of the batch could finish.
    WorkerPanic,
}

impl DegradeReason {
    /// Short stable name for reports and JSON output.
    pub fn name(&self) -> &'static str {
        match self {
            DegradeReason::Header => "header",
            DegradeReason::Payload => "payload",
            DegradeReason::PayloadBudget => "payload-budget",
            DegradeReason::Truncated => "truncated",
            DegradeReason::WorkerPanic => "worker-panic",
        }
    }
}

impl DecodeOutcome {
    /// Detected packet start (fractional sample index) of either variant.
    pub fn start(&self) -> f64 {
        match self {
            DecodeOutcome::Decoded { start, .. } | DecodeOutcome::Degraded { start, .. } => *start,
        }
    }

    /// Compact JSON object, e.g.
    /// `{"status":"decoded","start":4000,"pass":1}` or
    /// `{"status":"degraded","start":4000,"reason":"header"}`.
    ///
    /// This is the per-packet outcome schema shared by `tnb-cli report
    /// --json` and the gateway uplink/stats lines, so downstream
    /// consumers parse degradation reasons the same way everywhere.
    pub fn to_json(&self) -> String {
        match self {
            DecodeOutcome::Decoded { start, pass } => {
                format!("{{\"status\":\"decoded\",\"start\":{start},\"pass\":{pass}}}")
            }
            DecodeOutcome::Degraded { start, reason } => format!(
                "{{\"status\":\"degraded\",\"start\":{start},\"reason\":\"{}\"}}",
                reason.name()
            ),
        }
    }
}

/// Per-packet outcome recorded in [`DecodeReport`]: every detected
/// packet ends up either decoded or degraded-with-reason, so a batch
/// over hostile input yields a full account instead of a crash.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DecodeOutcome {
    /// The payload passed the CRC.
    Decoded {
        /// Detected packet start (fractional sample index).
        start: f64,
        /// Decoding pass that succeeded: 1, 2 (masked re-decode), or 3
        /// (SIC rescue on the subtraction residual).
        pass: u8,
    },
    /// Detected but not decoded.
    Degraded {
        /// Detected packet start (fractional sample index).
        start: f64,
        /// Why the packet did not decode.
        reason: DegradeReason,
    },
}

/// Per-trace decode diagnostics (what happened to every detected
/// packet), returned by [`TnbReceiver::decode_with_report`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DecodeReport {
    /// Packets found by detection/synchronization.
    pub detected: usize,
    /// Packets whose payload passed the CRC.
    pub decoded: usize,
    /// Packets decoded only after the first pass: by the masked second
    /// pass (`pass = 2`) or by the SIC rescue pass (`pass = 3`).
    pub second_pass_rescues: usize,
    /// Packets whose PHY header never decoded.
    pub header_failures: usize,
    /// Packets with a valid header whose payload failed the CRC.
    pub payload_failures: usize,
    /// Packets that ran off the end of the trace.
    pub truncated: usize,
    /// One entry per detected packet, in detection order: decoded, or
    /// degraded with the reason.
    pub outcomes: Vec<DecodeOutcome>,
    /// Deterministic per-stage event counts (windows scanned, sync
    /// attempts, signal vectors computed, peaks considered, CRC checks, …).
    /// Identical between the serial and parallel receivers on the same
    /// input; wall-time measurements live in [`MetricsSnapshot`] instead.
    pub stages: StageCounters,
}

impl DecodeReport {
    /// Accumulates another report field-wise (used when merging
    /// independently decoded work items back into one trace report).
    pub fn absorb(&mut self, other: &DecodeReport) {
        self.detected += other.detected;
        self.decoded += other.decoded;
        self.second_pass_rescues += other.second_pass_rescues;
        self.header_failures += other.header_failures;
        self.payload_failures += other.payload_failures;
        self.truncated += other.truncated;
        self.outcomes.extend_from_slice(&other.outcomes);
        self.stages.absorb(&other.stages);
        debug_assert!(
            self.accounting_ok(),
            "DecodeReport accounting broke during merge: detected={} decoded={} degraded={}",
            self.detected,
            self.decoded,
            self.degraded()
        );
    }

    /// True when the per-packet accounting balances: every detected
    /// packet carries exactly one outcome, and the decoded/degraded
    /// split covers all of them. Checked via `debug_assert!` at the end
    /// of every decode and at every merge point, so a bookkeeping bug in
    /// a new code path fails loudly in debug/test builds while release
    /// builds stay panic-free.
    pub fn accounting_ok(&self) -> bool {
        self.outcomes.len() == self.detected && self.decoded + self.degraded() == self.detected
    }

    /// Degraded outcomes carrying the given reason.
    pub fn degraded_with(&self, reason: DegradeReason) -> usize {
        self.outcomes
            .iter()
            .filter(|o| matches!(o, DecodeOutcome::Degraded { reason: r, .. } if *r == reason))
            .count()
    }

    /// All degraded outcomes.
    pub fn degraded(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| matches!(o, DecodeOutcome::Degraded { .. }))
            .count()
    }

    /// JSON array of every per-packet outcome, in detection order (see
    /// [`DecodeOutcome::to_json`] for the element schema).
    pub fn outcomes_json(&self) -> String {
        let mut out = String::from("[");
        for (i, o) in self.outcomes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&o.to_json());
        }
        out.push(']');
        out
    }

    /// Compact JSON object with the aggregate counts and the per-packet
    /// outcomes (stage counters are reported separately — see
    /// `tnb-cli report --json`).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"detected\":{},\"decoded\":{},\"degraded\":{},\"second_pass_rescues\":{},\
             \"header_failures\":{},\"payload_failures\":{},\"truncated\":{},\"outcomes\":{}}}",
            self.detected,
            self.decoded,
            self.degraded(),
            self.second_pass_rescues,
            self.header_failures,
            self.payload_failures,
            self.truncated,
            self.outcomes_json(),
        )
    }
}

/// The TnB receiver.
#[derive(Debug)]
pub struct TnbReceiver {
    params: LoRaParams,
    cfg: TnbConfig,
    /// Diagnostics of the most recent decode (interior mutability keeps
    /// the decode API `&self`).
    last_report: std::cell::RefCell<Option<DecodeReport>>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Active,
    Decoded,
    Failed,
}

/// Per-packet tracking state across the checkpoint loop.
struct Tracked {
    det: DetectedPacket,
    data_start: i64,
    /// Total data symbols (known once the header is decoded).
    n_symbols: Option<usize>,
    values: Vec<Option<u16>>,
    history: HistoryModel,
    header: Option<(Header, Vec<Vec<u8>>)>,
    status: Status,
    snr_db: f32,
    rescued: usize,
    pass: u8,
    /// CRC-validated payload (set when `status == Decoded`).
    decoded_payload: Vec<u8>,
    /// Re-encoded transmitted symbols of a decoded packet, for masking in
    /// the second pass.
    known_symbols: Option<Vec<u16>>,
    /// Where the most recent failure happened (for diagnostics).
    failure: Failure,
    /// The BEC candidate budget ran out while decoding this packet's
    /// payload (refines a `Payload` failure into `PayloadBudget`).
    bec_budget_hit: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Failure {
    None,
    Header,
    Payload,
    Truncated,
}

impl TnbReceiver {
    /// Builds a receiver with default configuration (full TnB).
    pub fn new(params: LoRaParams) -> Self {
        Self::with_config(params, TnbConfig::default())
    }

    /// Builds a receiver with a custom configuration.
    pub fn with_config(params: LoRaParams, cfg: TnbConfig) -> Self {
        TnbReceiver {
            params,
            cfg,
            last_report: std::cell::RefCell::new(None),
        }
    }

    /// Decodes a single-antenna trace.
    pub fn decode(&self, samples: &[Complex32]) -> Vec<DecodedPacket> {
        self.decode_multi(&[samples])
    }

    /// Like [`Self::decode`], additionally returning per-trace
    /// diagnostics.
    pub fn decode_with_report(&self, samples: &[Complex32]) -> (Vec<DecodedPacket>, DecodeReport) {
        let decoded = self.decode_multi(&[samples]);
        let report = self.last_report.borrow_mut().take().unwrap_or_default();
        (decoded, report)
    }

    /// Decodes a multi-antenna trace. Detection runs on *every* antenna
    /// and the candidate lists are merged — under fading this is where
    /// antenna diversity pays (paper §8.5: "high channel fluctuations
    /// result in a high outage probability for single antenna systems");
    /// signal vectors are then summed over all antennas.
    pub fn decode_multi(&self, antennas: &[&[Complex32]]) -> Vec<DecodedPacket> {
        let metrics = PipelineMetrics::disabled();
        let (decoded, report) = self.decode_multi_report_observed(antennas, &metrics);
        *self.last_report.borrow_mut() = Some(report);
        decoded
    }

    /// [`Self::decode`] with full observability: returns the decoded
    /// packets, the per-trace report (including deterministic stage
    /// counters) and a snapshot of the wall-time/distribution metrics.
    pub fn decode_with_metrics(
        &self,
        samples: &[Complex32],
    ) -> (Vec<DecodedPacket>, DecodeReport, MetricsSnapshot) {
        self.decode_multi_with_metrics(&[samples])
    }

    /// Multi-antenna [`Self::decode_with_metrics`].
    pub fn decode_multi_with_metrics(
        &self,
        antennas: &[&[Complex32]],
    ) -> (Vec<DecodedPacket>, DecodeReport, MetricsSnapshot) {
        let metrics = PipelineMetrics::enabled();
        let (decoded, report) = self.decode_multi_report_observed(antennas, &metrics);
        (decoded, report, metrics.snapshot())
    }

    /// The full decode with an externally owned metrics sink — the common
    /// core of [`Self::decode_multi`] and [`Self::decode_with_metrics`].
    pub fn decode_multi_report_observed(
        &self,
        antennas: &[&[Complex32]],
        metrics: &PipelineMetrics,
    ) -> (Vec<DecodedPacket>, DecodeReport) {
        if antennas.is_empty() {
            return (Vec::new(), DecodeReport::default());
        }
        let mut scratch = DspScratch::new();
        let detector = Detector::with_config(self.params, self.cfg.detector);
        let l = self.params.samples_per_symbol() as f64;
        let mut counters = StageCounters::default();
        let mut detected: Vec<DetectedPacket> = Vec::new();
        for ant in antennas {
            for p in detector.detect_observed(ant, &mut scratch, metrics, &mut counters) {
                if merge_dedup(&mut detected, p, l) {
                    counters.detect_duplicates += 1;
                }
            }
        }
        detected.sort_by(|a, b| a.start.total_cmp(&b.start));
        let (decoded, mut report) = self.decode_detected_observed(
            &detected,
            detector.demodulator(),
            antennas,
            &mut scratch,
            metrics,
        );
        report.stages.absorb(&counters);
        (decoded, report)
    }

    /// Decodes given pre-detected packets (used by the evaluation harness
    /// to share detection across schemes).
    pub fn decode_detected(
        &self,
        detected: &[DetectedPacket],
        demod: &tnb_phy::demodulate::Demodulator,
        antennas: &[&[Complex32]],
    ) -> Vec<DecodedPacket> {
        let mut scratch = DspScratch::new();
        let (decoded, report) =
            self.decode_detected_report(detected, demod, antennas, &mut scratch);
        *self.last_report.borrow_mut() = Some(report);
        decoded
    }

    /// [`Self::decode_detected`] with a caller-owned [`DspScratch`],
    /// returning the report directly instead of stashing it. This is the
    /// worker-friendly entry point: it takes `&self` without touching the
    /// receiver's interior-mutable report slot, and reuses the scratch's
    /// buffers and pools across work items.
    pub fn decode_detected_report(
        &self,
        detected: &[DetectedPacket],
        demod: &tnb_phy::demodulate::Demodulator,
        antennas: &[&[Complex32]],
        scratch: &mut DspScratch,
    ) -> (Vec<DecodedPacket>, DecodeReport) {
        let metrics = PipelineMetrics::disabled();
        self.decode_detected_observed(detected, demod, antennas, scratch, &metrics)
    }

    /// [`Self::decode_detected_report`] with an observability sink for
    /// stage wall times and distributions; the deterministic stage
    /// counters ride in the returned report.
    pub fn decode_detected_observed(
        &self,
        detected: &[DetectedPacket],
        demod: &tnb_phy::demodulate::Demodulator,
        antennas: &[&[Complex32]],
        scratch: &mut DspScratch,
        metrics: &PipelineMetrics,
    ) -> (Vec<DecodedPacket>, DecodeReport) {
        if antennas.is_empty() {
            return (Vec::new(), DecodeReport::default());
        }
        let pool_before = scratch.pool_stats();
        let mut counters = StageCounters::default();
        let mut sig = SigCalc::observed(demod, antennas, scratch, Some(metrics));

        let mut tracked: Vec<Tracked> = detected
            .iter()
            .enumerate()
            .map(|(id, det)| self.new_tracked(&mut sig, id, det))
            .collect();

        // Pass 1: everything participates; known peaks are the preambles.
        self.run_pass(
            &mut sig,
            &mut tracked,
            antennas[0].len() as i64,
            1,
            metrics,
            &mut counters,
        );

        if self.cfg.two_pass && tracked.iter().any(|t| t.status == Status::Failed) {
            // Pass 2: re-examine failures with decoded packets' peaks
            // masked and the history curve fitted over all observations.
            for t in tracked.iter_mut() {
                if t.status == Status::Failed {
                    t.status = Status::Active;
                    t.pass = 2;
                    // Keep a successfully decoded header (and the implied
                    // length); reset all symbol values.
                    for v in t.values.iter_mut() {
                        *v = None;
                    }
                }
            }
            self.run_pass(
                &mut sig,
                &mut tracked,
                antennas[0].len() as i64,
                2,
                metrics,
                &mut counters,
            );
        }

        counters.sigcalc_vectors += sig.vectors_computed();
        drop(sig);

        if self.cfg.sic.enabled && !tracked.is_empty() {
            let t0 = metrics.now();
            self.run_sic_rescue(
                &mut tracked,
                demod,
                antennas,
                scratch,
                metrics,
                &mut counters,
            );
            metrics.record_span(Stage::Sic, t0);
            // Rescued packets append out of order; restore start order so
            // outcome lists stay position-stable across receiver flavours.
            tracked.sort_by(|a, b| a.det.start.total_cmp(&b.det.start));
        }

        if metrics.is_enabled() {
            let (hits, misses) = scratch.pool_stats();
            metrics.pool_hits.add(hits - pool_before.0);
            metrics.pool_misses.add(misses - pool_before.1);
        }

        let outcomes = tracked
            .iter()
            .map(|t| match t.status {
                Status::Decoded => DecodeOutcome::Decoded {
                    start: t.det.start,
                    pass: t.pass,
                },
                _ => DecodeOutcome::Degraded {
                    start: t.det.start,
                    reason: match t.failure {
                        Failure::Header => DegradeReason::Header,
                        Failure::Payload if t.bec_budget_hit => DegradeReason::PayloadBudget,
                        Failure::Payload => DegradeReason::Payload,
                        // `Failure::None` only while still active; anything
                        // not decoded by the end is off-trace.
                        Failure::Truncated | Failure::None => DegradeReason::Truncated,
                    },
                },
            })
            .collect();
        let report = DecodeReport {
            detected: tracked.len(),
            decoded: tracked
                .iter()
                .filter(|t| t.status == Status::Decoded)
                .count(),
            second_pass_rescues: tracked
                .iter()
                .filter(|t| t.status == Status::Decoded && t.pass >= 2)
                .count(),
            header_failures: tracked
                .iter()
                .filter(|t| t.failure == Failure::Header && t.status == Status::Failed)
                .count(),
            payload_failures: tracked
                .iter()
                .filter(|t| t.failure == Failure::Payload && t.status == Status::Failed)
                .count(),
            truncated: tracked
                .iter()
                .filter(|t| t.failure == Failure::Truncated && t.status == Status::Failed)
                .count(),
            outcomes,
            stages: counters,
        };
        debug_assert!(
            report.accounting_ok(),
            "DecodeReport accounting broke: detected={} decoded={} degraded={}",
            report.detected,
            report.decoded,
            report.degraded()
        );
        let decoded = tracked
            .into_iter()
            .filter(|t| t.status == Status::Decoded)
            .filter_map(|t| {
                // Decoded packets always carry a header; filter instead of
                // unwrapping so a broken invariant degrades, not panics.
                let (header, _) = t.header?;
                Some(DecodedPacket {
                    payload: t.decoded_payload.clone(),
                    header,
                    start: t.det.start,
                    cfo_cycles: t.det.cfo_cycles,
                    snr_db: t.snr_db,
                    rescued_codewords: t.rescued,
                    pass: t.pass,
                })
            })
            .collect();
        (decoded, report)
    }

    /// Builds the tracking entry for a freshly detected packet: preamble
    /// heights seed the history model and a preamble window provides the
    /// SNR estimate. `id` must be the entry's index in the vector the
    /// caller is building (it keys `sig`'s per-packet caches).
    fn new_tracked(&self, sig: &mut SigCalc<'_>, id: usize, det: &DetectedPacket) -> Tracked {
        let heights = sig.preamble_heights(id, det);
        let data_start = sig.symbol_start(det, 0);
        // SNR estimate from a preamble window (peak near bin 0).
        let snr_db = sig
            .symbol_vector(id, det, -12)
            .map(|v| {
                let n = v.len();
                let peak_bin = (0..n).max_by(|&a, &b| v[a].total_cmp(&v[b])).unwrap_or(0);
                match self.cfg.noise_power {
                    Some(np) => crate::sigcalc::snr_from_peak_db(
                        v[peak_bin],
                        self.params.samples_per_symbol(),
                        np,
                    ),
                    None => estimate_snr_db(v, peak_bin, self.params.samples_per_symbol()),
                }
            })
            .unwrap_or(f32::NEG_INFINITY);
        Tracked {
            det: *det,
            data_start,
            n_symbols: None,
            values: vec![None; LoRaParams::HEADER_SYMBOLS],
            history: HistoryModel::new(heights),
            header: None,
            status: Status::Active,
            snr_db,
            rescued: 0,
            pass: 1,
            decoded_payload: Vec::new(),
            known_symbols: None,
            failure: Failure::None,
            bec_budget_hit: false,
        }
    }

    /// The SIC rescue pass (runs after both Thrive/BEC passes when
    /// [`SicConfig::enabled`] is set). Within each overlap component that
    /// contains at least one decoded packet: reconstruct every decoded
    /// packet's waveform from its known symbols, estimate per-block
    /// complex gains against a residual copy of the component's IQ span,
    /// subtract, then re-run detection and the full Thrive/BEC pipeline
    /// on the residual. Rescues are recorded with `pass = 3`; entries
    /// that still fail keep their original failure, and re-detections
    /// that fail to decode are dropped — so a trace where no rescue fires
    /// decodes bit-identically to SIC-off.
    ///
    /// Determinism across receiver flavours: components are refinements
    /// of the parallel receiver's overlap clusters (actual packet extents
    /// are always inside the cluster horizon), every window bound derives
    /// from the component's own members, the re-detection scan stops one
    /// symbol past the component (a foreign preamble can contribute at
    /// most ~4.5 symbols of run, below the detector's minimum), and the
    /// residual is copied from the original trace — which serial and
    /// parallel receivers see identically.
    fn run_sic_rescue(
        &self,
        tracked: &mut Vec<Tracked>,
        demod: &tnb_phy::demodulate::Demodulator,
        antennas: &[&[Complex32]],
        scratch: &mut DspScratch,
        metrics: &PipelineMetrics,
        counters: &mut StageCounters,
    ) {
        let l = self.params.samples_per_symbol() as i64;
        let trace_len = antennas.iter().map(|a| a.len()).min().unwrap_or(0) as i64;
        let pre = self.params.preamble_samples() as i64;
        let max_extent = {
            let mut p = self.params;
            p.cr = tnb_phy::params::CodingRate::CR4;
            pre + block::data_symbol_count(255, &p) as i64 * l
        };
        // A packet's occupied span ends after its payload if the length is
        // known, else after the (CR4) header.
        let end_of = |t: &Tracked| {
            t.data_start + t.n_symbols.unwrap_or(LoRaParams::HEADER_SYMBOLS) as i64 * l
        };

        // Overlap components over the start-sorted entries: spans joined
        // when they come within one symbol of each other (the same margin
        // known-peak masks use).
        let mut comps: Vec<(usize, usize)> = Vec::new();
        let mut begin = 0usize;
        let mut max_end = i64::MIN;
        for (i, t) in tracked.iter().enumerate() {
            let s = t.det.start.floor() as i64;
            if i > begin && s > max_end + l {
                comps.push((begin, i));
                begin = i;
                max_end = i64::MIN;
            }
            max_end = max_end.max(end_of(t));
        }
        if begin < tracked.len() {
            comps.push((begin, tracked.len()));
        }

        let detector = Detector::with_config(self.params, self.cfg.detector);
        let mut replica: Vec<Complex32> = Vec::new();
        let mut gains: Vec<Vec<(f64, f64)>> = vec![Vec::new(); antennas.len()];
        let noise = f64::from(self.cfg.noise_power.unwrap_or(1.0).max(f32::MIN_POSITIVE));

        for (c_begin, c_end) in comps {
            let mut members: Vec<usize> = (c_begin..c_end).collect();
            // Window bounds are fixed from the component's original
            // members: the residual buffer reaches far enough for a rescue
            // detected anywhere in the scan range to decode in full, while
            // the scan range itself stays inside the component.
            let comp_min = members
                .iter()
                .map(|&i| tracked[i].det.start.floor() as i64)
                .min()
                .unwrap_or(0);
            let comp_max_end = members
                .iter()
                .map(|&i| end_of(&tracked[i]))
                .max()
                .unwrap_or(0);
            let r_lo = (comp_min - pre - l).max(0);
            let scan_hi = (comp_max_end + l).clamp(r_lo, trace_len);
            let r_hi = (comp_max_end + l + max_extent).clamp(scan_hi, trace_len);
            if r_hi <= r_lo {
                continue;
            }
            for _ in 0..self.cfg.sic.max_rounds {
                let decoded_members: Vec<usize> = members
                    .iter()
                    .copied()
                    .filter(|&i| {
                        tracked[i].status == Status::Decoded && tracked[i].known_symbols.is_some()
                    })
                    .collect();
                if decoded_members.is_empty() {
                    break;
                }
                counters.sic_rounds += 1;

                // Residual: a fresh copy of the component's span of every
                // antenna (each round restarts from the original trace so
                // gain estimates never compound).
                let mut residuals: Vec<Vec<Complex32>> = antennas
                    .iter()
                    .map(|a| {
                        a.get(r_lo as usize..r_hi as usize)
                            .map(<[Complex32]>::to_vec)
                            .unwrap_or_default()
                    })
                    .collect();
                if residuals.iter().any(Vec::is_empty) {
                    break;
                }

                // Subtract every decoded member whose replica matches the
                // trace with enough power to clear the SNR gate.
                for &mi in &decoded_members {
                    let Some(symbols) = tracked[mi].known_symbols.clone() else {
                        continue;
                    };
                    let start = tracked[mi].det.start;
                    let start_floor = start.floor();
                    sic::build_replica(
                        demod,
                        &symbols,
                        tracked[mi].det.cfo_cycles,
                        start - start_floor,
                        &mut replica,
                    );
                    let offset = start_floor as i64 - r_lo;
                    let mut best_power = 0.0f64;
                    for (a, res) in residuals.iter().enumerate() {
                        sic::estimate_block_gains(res, &replica, offset, l as usize, &mut gains[a]);
                        best_power = best_power.max(sic::mean_gain_power(&gains[a]));
                    }
                    let snr_db = 10.0 * (best_power / noise).max(1e-12).log10();
                    if snr_db < f64::from(self.cfg.sic.min_residual_snr) {
                        counters.sic_skipped += 1;
                        continue;
                    }
                    for (a, res) in residuals.iter_mut().enumerate() {
                        sic::subtract_replica(res, &replica, offset, l as usize, &gains[a]);
                    }
                    counters.sic_subtracted += 1;
                }

                // Re-detect on the residual, restricted to the component's
                // own span so another component's (unsubtracted) packets
                // cannot be picked up.
                let scan_len = (scan_hi - r_lo) as usize;
                let mut new_dets: Vec<DetectedPacket> = Vec::new();
                for res in &residuals {
                    let Some(slice) = res.get(..scan_len.min(res.len())) else {
                        continue;
                    };
                    for p in detector.detect_observed(slice, scratch, metrics, counters) {
                        if merge_dedup(&mut new_dets, p, l as f64) {
                            counters.detect_duplicates += 1;
                        }
                    }
                }
                new_dets.sort_by(|a, b| a.start.total_cmp(&b.start));
                new_dets.retain(|d| {
                    !members.iter().any(|&i| {
                        same_transmission(
                            tracked[i].det.start,
                            tracked[i].det.cfo_cycles,
                            d.start + r_lo as f64,
                            d.cfo_cycles,
                            l as f64,
                        )
                    })
                });
                counters.sic_redetections += new_dets.len() as u64;

                // Decode the residual in its own (window-relative) frame:
                // decoded members ride along as mask-only entries so their
                // subtraction residue stays masked, failed members retry
                // with any header they already decoded, and re-detections
                // start fresh.
                let resid_refs: Vec<&[Complex32]> = residuals.iter().map(Vec::as_slice).collect();
                let mut sig = SigCalc::observed(demod, &resid_refs, scratch, Some(metrics));
                let mut temp: Vec<Tracked> = Vec::new();
                // `Some(i)` maps a temp entry back to `tracked[i]`; `None`
                // marks a fresh re-detection.
                let mut origin: Vec<Option<usize>> = Vec::new();
                for &mi in &members {
                    let t = &tracked[mi];
                    let det = DetectedPacket {
                        start: t.det.start - r_lo as f64,
                        cfo_cycles: t.det.cfo_cycles,
                        preamble_peak: t.det.preamble_peak,
                    };
                    if t.status == Status::Decoded {
                        temp.push(Tracked {
                            det,
                            data_start: t.data_start - r_lo,
                            n_symbols: t.n_symbols,
                            values: Vec::new(),
                            history: HistoryModel::new(Vec::new()),
                            header: None,
                            status: Status::Decoded,
                            snr_db: t.snr_db,
                            rescued: 0,
                            pass: t.pass,
                            decoded_payload: Vec::new(),
                            known_symbols: t.known_symbols.clone(),
                            failure: Failure::None,
                            bec_budget_hit: false,
                        });
                    } else {
                        let id = temp.len();
                        let mut fresh = self.new_tracked(&mut sig, id, &det);
                        // Keep a header decoded in an earlier pass (and the
                        // implied length), like pass 2 does.
                        if t.header.is_some() {
                            fresh.header = t.header.clone();
                            fresh.n_symbols = t.n_symbols;
                            if let Some(n) = t.n_symbols {
                                fresh.values.resize(n, None);
                            }
                        }
                        fresh.pass = 3;
                        temp.push(fresh);
                    }
                    origin.push(Some(mi));
                }
                for d in &new_dets {
                    let id = temp.len();
                    let mut fresh = self.new_tracked(&mut sig, id, d);
                    fresh.pass = 3;
                    temp.push(fresh);
                    origin.push(None);
                }

                self.run_pass(&mut sig, &mut temp, r_hi - r_lo, 1, metrics, counters);
                counters.sigcalc_vectors += sig.vectors_computed();
                drop(sig);

                let mut rescued_any = false;
                for (mut t2, src) in temp.into_iter().zip(origin) {
                    if t2.status != Status::Decoded {
                        continue;
                    }
                    match src {
                        Some(mi) => {
                            if tracked[mi].status == Status::Decoded {
                                continue; // mask-only ride-along
                            }
                            let tr = &mut tracked[mi];
                            tr.status = Status::Decoded;
                            tr.pass = 3;
                            tr.n_symbols = t2.n_symbols;
                            tr.header = t2.header;
                            tr.decoded_payload = t2.decoded_payload;
                            tr.known_symbols = t2.known_symbols;
                            tr.rescued = t2.rescued;
                            tr.snr_db = t2.snr_db;
                            tr.failure = Failure::None;
                            counters.sic_rescues += 1;
                            rescued_any = true;
                        }
                        None => {
                            t2.det.start += r_lo as f64;
                            t2.data_start += r_lo;
                            counters.sic_rescues += 1;
                            members.push(tracked.len());
                            tracked.push(t2);
                            rescued_any = true;
                        }
                    }
                }
                if !rescued_any {
                    break;
                }
            }
        }
    }

    fn run_pass(
        &self,
        sig: &mut SigCalc<'_>,
        tracked: &mut [Tracked],
        trace_len: i64,
        pass: u8,
        metrics: &PipelineMetrics,
        counters: &mut StageCounters,
    ) {
        let l = self.params.samples_per_symbol() as i64;
        if tracked.is_empty() {
            return;
        }
        let c_start = tracked
            .iter()
            .filter(|t| t.status == Status::Active)
            .map(|t| t.data_start.div_euclid(l))
            .min()
            .unwrap_or(0)
            .max(0);
        let c_end = trace_len / l + 1;
        let dets: Vec<DetectedPacket> = tracked.iter().map(|t| t.det).collect();

        // Per-checkpoint working storage, reused across the whole pass so
        // the steady-state checkpoint loop does not reallocate it.
        let mut ws = CheckpointScratch::default();
        let mut slots: Vec<(usize, isize)> = Vec::new();
        let mut symbols: Vec<CheckpointSymbol> = Vec::new();
        let mut assignments: Vec<Assignment> = Vec::new();

        for c in c_start..=c_end {
            let t_now = c * l;
            // Which (packet, symbol) pairs intersect this checking point?
            slots.clear();
            for (i, tr) in tracked.iter().enumerate() {
                if tr.status != Status::Active {
                    continue;
                }
                let j = (t_now - tr.data_start).div_euclid(l);
                let limit = tr.n_symbols.unwrap_or(LoRaParams::HEADER_SYMBOLS) as i64;
                if j >= 0 && j < limit && tr.values[j as usize].is_none() {
                    slots.push((i, j as isize));
                }
            }
            if slots.is_empty() {
                if tracked.iter().all(|t| t.status != Status::Active) {
                    break;
                }
                continue;
            }

            // Build checkpoint symbols with masks and history bounds;
            // `symbols` only ever grows, so mask capacity is reused.
            while symbols.len() < slots.len() {
                symbols.push(CheckpointSymbol {
                    packet: 0,
                    symbol: 0,
                    masked_bins: Vec::new(),
                    bounds: (0.0, 0.0),
                });
            }
            for (k, &(i, j)) in slots.iter().enumerate() {
                let s = &mut symbols[k];
                s.packet = i;
                s.symbol = j;
                self.known_masks_into(tracked, i, j, &mut s.masked_bins);
                s.bounds = if pass == 1 {
                    tracked[i].history.bounds(&self.cfg.thrive)
                } else {
                    let idx = LoRaParams::PREAMBLE_UPCHIRPS + j as usize;
                    tracked[i].history.bounds_at(idx, &self.cfg.thrive)
                };
            }

            let t0 = metrics.now();
            // Note: checkpoint assignment pulls missing signal vectors
            // from SigCalc on demand, so this span *contains* nested
            // SigCalc spans; treat per-stage wall times as inclusive.
            assign_checkpoint_scratch(
                sig,
                &dets,
                &symbols[..slots.len()],
                &self.cfg.thrive,
                &mut ws,
                &mut assignments,
            );
            metrics.record_span(Stage::Thrive, t0);
            for a in &assignments {
                let (i, j) = slots[a.slot];
                let tr = &mut tracked[i];
                tr.values[j as usize] = Some(a.bin);
                if pass == 1 {
                    tr.history.push(a.height);
                }
            }

            // Header decode for packets that just completed symbol 7.
            for &(i, j) in &slots {
                if j as usize == LoRaParams::HEADER_SYMBOLS - 1 {
                    self.try_decode_header(&mut tracked[i], trace_len, l, metrics, counters);
                }
            }
            // Payload decode for packets whose last symbol was assigned.
            for &(i, _) in &slots {
                self.try_decode_payload(&mut tracked[i], metrics, counters);
            }
        }

        let tally = ws.tally();
        counters.thrive_checkpoints += tally.checkpoints;
        counters.thrive_peaks_considered += tally.peaks_considered;
        counters.thrive_assignments += tally.assignments;
        counters.thrive_fallbacks += tally.fallbacks;
        counters.thrive_budget_exhausted += tally.budget_exhausted;

        // Anything still active did not complete (e.g. ran off the trace).
        for tr in tracked.iter_mut() {
            if tr.status == Status::Active {
                if tr.failure == Failure::None {
                    tr.failure = Failure::Truncated;
                }
                tr.status = Status::Failed;
            }
        }
    }

    /// Expected bins, in packet `i`'s symbol-`j` vector, of all *known*
    /// transmissions of other packets overlapping that window: their
    /// preamble upchirps and sync symbols, and — once decoded — their data
    /// symbols (paper §5.3.4 and §4, second pass).
    fn known_masks_into(&self, tracked: &[Tracked], i: usize, j: isize, out: &mut Vec<i64>) {
        out.clear();
        let params = self.params;
        let l = params.samples_per_symbol() as f64;
        let u = params.osf as f64;
        let n = params.n() as i64;
        // Exact (fractional) window start of the target symbol. A known
        // chirp with value `v`, boundary `a` and CFO `δ_q`, seen in a
        // window starting at `w` processed with CFO `δ_i`, peaks at
        // `v + (w − a)/U + δ_q − δ_i (mod N)`. Note the preamble is 12.25
        // symbols, so boundary differences are generally NOT multiples of
        // the symbol length — the bins must be computed from the actual
        // emission times.
        let w_i = tracked[i].det.start + (params.preamble_symbols() + j as f64) * l;
        let delta_i = tracked[i].det.cfo_cycles;
        for (q, other) in tracked.iter().enumerate() {
            if q == i {
                continue;
            }
            let delta_q = other.det.cfo_cycles;
            let mut push = |emit_start: f64, value: u16| {
                if (emit_start - w_i).abs() < l {
                    let bin = value as f64 + (w_i - emit_start) / u + delta_q - delta_i;
                    out.push((bin.round() as i64).rem_euclid(n));
                }
            };
            // Preamble upchirps (value 0) and sync symbols.
            let p_start = other.det.start;
            for k in 0..LoRaParams::PREAMBLE_UPCHIRPS {
                push(p_start + k as f64 * l, 0);
            }
            for (k, &v) in LoRaParams::SYNC_VALUES.iter().enumerate() {
                push(p_start + (LoRaParams::PREAMBLE_UPCHIRPS + k) as f64 * l, v);
            }
            // Decoded packets: all their data symbols are known.
            if other.status == Status::Decoded {
                if let Some(symbols) = &other.known_symbols {
                    let d_start = p_start + params.preamble_symbols() * l;
                    for (k, &v) in symbols.iter().enumerate() {
                        push(d_start + k as f64 * l, v);
                    }
                }
            }
        }
        out.sort_unstable();
        out.dedup();
    }

    fn try_decode_header(
        &self,
        tr: &mut Tracked,
        trace_len: i64,
        l: i64,
        metrics: &PipelineMetrics,
        counters: &mut StageCounters,
    ) {
        if tr.header.is_some() && tr.n_symbols.is_some() {
            return; // kept from pass 1
        }
        let header_syms: Option<Vec<u16>> = tr.values[..LoRaParams::HEADER_SYMBOLS]
            .iter()
            .copied()
            .collect();
        let Some(hs) = header_syms else { return };
        counters.bec_calls += 1;
        let t0 = metrics.now();
        let decoded = if self.cfg.use_bec {
            bec::decode_header_with_bec(&hs, &self.params).map(|(h, extras, stats)| {
                counters.bec_candidates += stats.candidates_generated as u64;
                metrics.record_bec_candidates(stats.candidates_generated as u64);
                (h, extras, stats.rescued_codewords)
            })
        } else {
            phy_decoder::decode_header(&hs, &self.params)
                .ok()
                .map(|dh| (dh.header, vec![dh.extra_nibbles], 0))
        };
        metrics.record_span(Stage::Bec, t0);
        match decoded {
            Some((header, extras, rescued)) => {
                let mut p = self.params;
                p.cr = header.cr;
                let n_symbols = block::data_symbol_count(header.payload_len as usize, &p);
                // Sanity: the packet must not extend absurdly beyond the
                // trace (a corrupted-but-checksum-passing length).
                if tr.data_start + (n_symbols as i64) * l > trace_len + 4 * l {
                    tr.failure = Failure::Truncated;
                    tr.status = Status::Failed;
                    return;
                }
                tr.n_symbols = Some(n_symbols);
                tr.values.resize(n_symbols, None);
                tr.header = Some((header, extras));
                tr.rescued += rescued;
            }
            None => {
                if std::env::var("TNB_DEBUG_RX").is_ok() {
                    eprintln!(
                        "DBG header decode failed for packet at {:.0}, syms {:?}",
                        tr.det.start,
                        &tr.values[..8]
                    );
                }
                tr.failure = Failure::Header;
                tr.status = Status::Failed;
            }
        }
    }

    fn try_decode_payload(
        &self,
        tr: &mut Tracked,
        metrics: &PipelineMetrics,
        counters: &mut StageCounters,
    ) {
        let Some(n_symbols) = tr.n_symbols else {
            return;
        };
        if tr.status != Status::Active || tr.values.len() < n_symbols {
            return;
        }
        if tr.values[..n_symbols].iter().any(Option::is_none) {
            return;
        }
        // All values checked Some above; filter_map keeps this total.
        let symbols: Vec<u16> = tr.values[..n_symbols].iter().filter_map(|v| *v).collect();
        let Some((header, extras)) = tr.header.clone() else {
            // A complete symbol set without a header cannot happen (the
            // header decode gates `n_symbols`); degrade rather than panic.
            tr.failure = Failure::Header;
            tr.status = Status::Failed;
            return;
        };
        let payload_syms = &symbols[LoRaParams::HEADER_SYMBOLS.min(symbols.len())..];
        counters.bec_calls += 1;
        let t0 = metrics.now();
        let result = if self.cfg.use_bec {
            let (result, stats) = match bec::decode_payload_with_bec_budgeted(
                payload_syms,
                &header,
                &extras,
                &self.params,
                Some(self.cfg.bec_candidate_budget),
            ) {
                Ok(d) => {
                    let stats = d.stats.clone();
                    (Some((d.payload, d.stats.rescued_codewords)), stats)
                }
                Err(stats) => (None, stats),
            };
            counters.bec_candidates += stats.candidates_generated as u64;
            counters.crc_checks += stats.crc_checks as u64;
            counters.bec_budget_exhausted += stats.budget_exhausted as u64;
            tr.bec_budget_hit |= stats.budget_exhausted;
            metrics.record_bec_candidates(stats.candidates_generated as u64);
            result
        } else {
            let mut p = self.params;
            p.cr = header.cr;
            let mut nibbles = extras.first().cloned().unwrap_or_default();
            for rows in phy_decoder::received_payload_blocks(payload_syms, &p) {
                nibbles.extend(phy_decoder::default_decode_rows(&rows, p.cr));
            }
            counters.crc_checks += 1;
            phy_decoder::assemble_payload(&nibbles, header.payload_len as usize)
                .ok()
                .map(|payload| (payload, 0))
        };
        metrics.record_span(Stage::Bec, t0);
        match result {
            Some((payload, rescued)) => {
                counters.crc_pass += 1;
                tr.rescued += rescued;
                tr.decoded_payload = payload.clone();
                // Re-encode to get the exact transmitted symbols for
                // masking in the second pass.
                let mut p = self.params;
                p.cr = header.cr;
                tr.known_symbols = Some(tnb_phy::encoder::encode_packet_symbols(&payload, &p));
                tr.status = Status::Decoded;
            }
            None => {
                counters.crc_fail += 1;
                if std::env::var("TNB_DEBUG_RX").is_ok() {
                    eprintln!(
                        "DBG payload decode failed for packet at {:.0}",
                        tr.det.start
                    );
                }
                tr.failure = Failure::Payload;
                tr.status = Status::Failed;
            }
        }
    }
}
