//! Thrive: peak assignment by matching cost (paper §5).
//!
//! At every *checking point* (one per symbol period), Thrive examines the
//! symbols of all packets intersecting that instant and assigns one peak
//! to each. A peak's *matching cost* is the sum of:
//!
//! - the **sibling cost** (Eq. 1): a transmitted symbol produces *sibling*
//!   peaks in every overlapping symbol's signal vector; the peak is
//!   highest in its owner's vector (matching boundary and CFO), so
//!   `w = (1 − η/H*)²` where `H*` is the tallest sibling;
//! - the **history cost** (Eq. 2): peak heights of one packet follow a
//!   fitted trend; deviations outside `[A − 4D, A + 4D]` are penalised
//!   with weight `ω = 0.1`.
//!
//! Sibling locations follow from per-packet boundary and CFO differences
//! alone: a peak at bin `b` in packet `i`'s vector appears at
//! `b + (start_k − start_i)/U + δ_i − δ_k (mod N)` in packet `k`'s vector
//! (paper §5.3.2).

use crate::packet::DetectedPacket;
use crate::sigcalc::SigCalc;
use tnb_dsp::smooth::fit_history;
use tnb_dsp::{find_peaks, PeakFinderConfig};
use tnb_phy::params::LoRaParams;

/// Thrive tunables (paper defaults).
#[derive(Debug, Clone, Copy)]
pub struct ThriveConfig {
    /// Weight of the history cost (paper: ω = 0.1).
    pub omega: f32,
    /// Deviation multiplier for the upper/lower estimates (paper: 4).
    pub deviation_mult: f32,
    /// Smoothing window of the history curve fit.
    pub history_window: usize,
    /// Bins around a masked/assigned location considered covered.
    pub mask_tolerance: i64,
    /// Disable the history cost (the paper's "Sibling" ablation).
    pub use_history: bool,
    /// Budget on sibling-cost evaluations per checking point (candidates
    /// × other slots). A hostile trace can pile dozens of phantom
    /// detections onto one checkpoint, making the cost matrix quadratic
    /// in trash; over budget, each slot's candidate list is trimmed to
    /// its tallest peaks and the event is tallied as `budget_exhausted`.
    /// The default is far above anything real collisions produce, so
    /// clean traces are bit-identical with or without the cap.
    pub checkpoint_eval_budget: u64,
}

impl Default for ThriveConfig {
    fn default() -> Self {
        ThriveConfig {
            omega: 0.1,
            deviation_mult: 4.0,
            history_window: 7,
            mask_tolerance: 1,
            use_history: true,
            checkpoint_eval_budget: 1_000_000,
        }
    }
}

/// Peak-height history of one packet, bootstrapped by the preamble peaks.
#[derive(Debug, Clone, Default)]
pub struct HistoryModel {
    heights: Vec<f32>,
}

impl HistoryModel {
    /// Starts a history from the preamble peak heights.
    pub fn new(preamble_heights: Vec<f32>) -> Self {
        HistoryModel {
            heights: preamble_heights,
        }
    }

    /// Records an assigned peak height.
    pub fn push(&mut self, h: f32) {
        self.heights.push(h);
    }

    /// Number of recorded heights.
    pub fn len(&self) -> usize {
        self.heights.len()
    }

    /// True when no heights are recorded.
    pub fn is_empty(&self) -> bool {
        self.heights.is_empty()
    }

    /// All recorded heights.
    pub fn heights(&self) -> &[f32] {
        &self.heights
    }

    /// Upper and lower estimates `(U, L)` for the *next* peak: the fitted
    /// curve's value at the most recent sample ±`mult`·deviation
    /// (paper §5.3.3, first pass: `A_i` is the fitted value at `S_i^{−1}`).
    pub fn bounds(&self, cfg: &ThriveConfig) -> (f32, f32) {
        if self.heights.is_empty() {
            return (f32::MAX, 0.0);
        }
        let fit = fit_history(&self.heights, cfg.history_window);
        let a = fit.last();
        let d = fit.deviation;
        let up = a + cfg.deviation_mult * d;
        let lo = (a - cfg.deviation_mult * d).max(0.0);
        (up, lo)
    }

    /// Second-pass variant: the fit runs over *all* observed heights and
    /// is evaluated at index `at` (paper: `A_i` is the fitted value at
    /// `S_i` itself).
    pub fn bounds_at(&self, at: usize, cfg: &ThriveConfig) -> (f32, f32) {
        if self.heights.is_empty() {
            return (f32::MAX, 0.0);
        }
        let fit = fit_history(&self.heights, cfg.history_window);
        let a = fit.value_at(at);
        let d = fit.deviation;
        (
            (a + cfg.deviation_mult * d),
            (a - cfg.deviation_mult * d).max(0.0),
        )
    }
}

/// History cost `F` of a peak of height `eta` against bounds `(up, lo)`
/// (paper Eq. 2).
pub fn history_cost(eta: f32, up: f32, lo: f32, cfg: &ThriveConfig) -> f32 {
    if !cfg.use_history {
        return 0.0;
    }
    if eta > up {
        let r = 1.0 - up / eta.max(f32::MIN_POSITIVE);
        cfg.omega * r * r
    } else if eta >= lo {
        0.0
    } else {
        // lo > eta ≥ 0 here, so lo > 0.
        let r = 1.0 - eta / lo;
        cfg.omega * r * r
    }
}

/// Sibling cost `w` of a peak of height `eta` whose tallest sibling is
/// `h_star` (paper Eq. 1).
pub fn sibling_cost(eta: f32, h_star: f32) -> f32 {
    let r = 1.0 - eta / h_star.max(f32::MIN_POSITIVE);
    r * r
}

/// Expected bin displacement of a signal between two packets' signal
/// vectors: a peak at bin `b` in `from`'s vector appears at
/// `b + shift_bins(from, to)` (mod N) in `to`'s vector.
pub fn shift_bins(from: &DetectedPacket, to: &DetectedPacket, params: &LoRaParams) -> f64 {
    (to.start - from.start) / params.osf as f64 + from.cfo_cycles - to.cfo_cycles
}

/// One symbol participating in a checking point.
#[derive(Debug, Clone)]
pub struct CheckpointSymbol {
    /// Index of the packet in the caller's tracking array.
    pub packet: usize,
    /// Data-symbol index within that packet.
    pub symbol: isize,
    /// Bins that must not be assigned (known peaks of other packets and
    /// their siblings, mapped into this symbol's vector).
    pub masked_bins: Vec<i64>,
    /// History bounds (upper, lower) for this packet at this symbol.
    pub bounds: (f32, f32),
}

/// One peak assignment produced at a checking point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Assignment {
    /// Index into the checkpoint's symbol list.
    pub slot: usize,
    /// Assigned bin — this *is* the demodulated symbol value.
    pub bin: u16,
    /// Peak height (feeds the history model).
    pub height: f32,
}

#[derive(Debug, Clone)]
struct Candidate {
    bin: i64,
    height: f32,
    cost: f32,
    alive: bool,
}

/// Deterministic Thrive event tallies accumulated across checking points.
/// Every field counts per-slot events, so the totals are identical
/// between the serial and parallel receivers.
#[derive(Debug, Clone, Copy, Default)]
pub struct ThriveTally {
    /// Checking points with at least one participating symbol.
    pub checkpoints: u64,
    /// Peak candidates that survived masking, across all slots.
    pub peaks_considered: u64,
    /// Assignments made (one per assignable slot).
    pub assignments: u64,
    /// Assignments that fell back to the strongest unmasked bin.
    pub fallbacks: u64,
    /// Checking points whose candidate lists were trimmed because the
    /// sibling-cost evaluation budget ran out.
    pub budget_exhausted: u64,
}

/// Reusable working storage for [`assign_checkpoint_scratch`]: per-slot
/// vector copies, candidate lists and greedy-assignment bookkeeping keep
/// their capacity across checking points, so the steady-state checkpoint
/// loop does not reallocate them.
#[derive(Debug, Default)]
pub struct CheckpointScratch {
    /// Slot signal-vector copies (empty = vector unavailable).
    vectors: Vec<Vec<f32>>,
    /// Peak candidates per slot.
    cands: Vec<Vec<Candidate>>,
    /// Bins masked during the greedy rounds, per slot.
    dynamic: Vec<Vec<i64>>,
    /// (bin, height) snapshot of one slot's candidates.
    costs: Vec<(i64, f32)>,
    /// Slots still awaiting an assignment.
    remaining: Vec<usize>,
    /// Event tallies across all checkpoints run with this scratch.
    tally: ThriveTally,
}

impl CheckpointScratch {
    /// Event tallies accumulated so far.
    pub fn tally(&self) -> ThriveTally {
        self.tally
    }
}

/// Runs one checking point: finds peaks in each symbol's signal vector,
/// computes matching costs, and greedily assigns one peak per symbol
/// (paper §5.3.4).
///
/// `packets[i]` must be the detection record the `CheckpointSymbol.packet`
/// indices refer to. Returns one assignment per symbol (symbols whose
/// signal vector is unavailable are skipped).
pub fn assign_checkpoint(
    sigcalc: &mut SigCalc<'_>,
    packets: &[DetectedPacket],
    symbols: &[CheckpointSymbol],
    cfg: &ThriveConfig,
) -> Vec<Assignment> {
    let mut ws = CheckpointScratch::default();
    let mut out = Vec::new();
    assign_checkpoint_scratch(sigcalc, packets, symbols, cfg, &mut ws, &mut out);
    out
}

/// [`assign_checkpoint`] with reusable working storage: assignments are
/// written to `out` (cleared first), and all intermediates live in `ws`.
/// Produces exactly the assignments of the allocating path.
// tnb-lint: no_alloc_root -- per-checkpoint assignment runs in the symbol loop; intermediates live in CheckpointScratch
pub fn assign_checkpoint_scratch(
    sigcalc: &mut SigCalc<'_>,
    packets: &[DetectedPacket],
    symbols: &[CheckpointSymbol],
    cfg: &ThriveConfig,
    ws: &mut CheckpointScratch,
    out: &mut Vec<Assignment>,
) {
    out.clear();
    let params = *sigcalc.params();
    let n = params.n() as i64;
    let m = symbols.len();
    if m == 0 {
        return;
    }
    ws.tally.checkpoints += 1;

    while ws.vectors.len() < m {
        ws.vectors.push(Vec::new()); // tnb-lint: allow(TNB-ALLOC01) -- grow-only warm-up, reused across checkpoints
        ws.cands.push(Vec::new()); // tnb-lint: allow(TNB-ALLOC01) -- grow-only warm-up, reused across checkpoints
        ws.dynamic.push(Vec::new()); // tnb-lint: allow(TNB-ALLOC01) -- grow-only warm-up, reused across checkpoints
    }
    for k in 0..m {
        ws.vectors[k].clear();
        ws.cands[k].clear();
        ws.dynamic[k].clear();
    }

    // Signal vectors for each slot (cached inside SigCalc) and for
    // neighbour symbols, fetched on demand below. Copy the slot vectors
    // so we can hold them while querying neighbours mutably; an empty
    // entry means the vector is unavailable (runs off the trace).
    for (k, s) in symbols.iter().enumerate() {
        if let Some(v) = sigcalc.symbol_vector(s.packet, &packets[s.packet], s.symbol) {
            ws.vectors[k].extend_from_slice(v);
        }
    }

    // Peak candidates per slot: peakfinder capped at 2M peaks (paper
    // §5.3.1), with masked bins removed.
    let finder = PeakFinderConfig {
        circular: true,
        max_peaks: Some(2 * m),
        ..PeakFinderConfig::default()
    };
    for (slot, s) in symbols.iter().enumerate() {
        if ws.vectors[slot].is_empty() {
            continue;
        }
        let peaks = find_peaks(&ws.vectors[slot], &finder);
        ws.cands[slot].extend(
            peaks
                .into_iter()
                .filter(|p| {
                    !s.masked_bins
                        .iter()
                        .any(|&mb| bin_close(p.index as i64, mb, n, cfg.mask_tolerance))
                })
                .map(|p| Candidate {
                    bin: p.index as i64,
                    height: p.height,
                    cost: 0.0,
                    alive: true,
                }),
        );
    }
    ws.tally.peaks_considered += ws.cands.iter().take(m).map(|c| c.len() as u64).sum::<u64>();

    // Iteration budget: the cost matrix below costs roughly
    // |candidates| × (m − 1) sibling lookups. When a checkpoint would
    // blow past the budget (only adversarial input does), keep each
    // slot's tallest peaks so the work is bounded and the assignment
    // still favours plausible candidates.
    let total_cands: u64 = ws.cands.iter().take(m).map(|c| c.len() as u64).sum();
    let evals = total_cands * (m as u64).saturating_sub(1).max(1);
    if evals > cfg.checkpoint_eval_budget {
        ws.tally.budget_exhausted += 1;
        let keep = (cfg.checkpoint_eval_budget / (m as u64 * m as u64).max(1)).max(1) as usize;
        for cands in ws.cands.iter_mut().take(m) {
            if cands.len() > keep {
                cands.sort_by(|a, b| b.height.total_cmp(&a.height).then(a.bin.cmp(&b.bin)));
                cands.truncate(keep);
                cands.sort_by_key(|c| c.bin);
            }
        }
    }

    // Matching cost = sibling cost + history cost (paper §5.3.3). The
    // tallest sibling H* is read from the signal vectors of every other
    // slot's symbol and its time-adjacent neighbour at the expected
    // sibling location.
    for slot in 0..m {
        let s_i = &symbols[slot];
        let boundary_i = sigcalc.symbol_start(&packets[s_i.packet], s_i.symbol);
        ws.costs.clear();
        ws.costs
            .extend(ws.cands[slot].iter().map(|c| (c.bin, c.height)));
        for ci in 0..ws.costs.len() {
            let (bin, eta) = ws.costs[ci];
            let mut h_star = eta;
            for (other, s_k) in symbols.iter().enumerate() {
                if other == slot {
                    continue;
                }
                let shift = shift_bins(&packets[s_i.packet], &packets[s_k.packet], &params);
                let sib = (bin + shift.round() as i64).rem_euclid(n) as usize;
                let boundary_k = sigcalc.symbol_start(&packets[s_k.packet], s_k.symbol);
                // The hypothesised transmission spans S_i's window, so in
                // packet k it overlaps S_k and the neighbour on the far
                // side (paper §5.3.3).
                let neighbour = if boundary_k <= boundary_i { 1 } else { -1 };
                for dj in [0isize, neighbour] {
                    if let Some(v) =
                        sigcalc.symbol_vector(s_k.packet, &packets[s_k.packet], s_k.symbol + dj)
                    {
                        h_star = h_star.max(v[sib]);
                    }
                }
            }
            let w = sibling_cost(eta, h_star);
            let f = history_cost(eta, s_i.bounds.0, s_i.bounds.1, cfg);
            ws.cands[slot][ci].cost = w + f;
            if let Some(mx) = sigcalc.metrics() {
                // Costs are small non-negative floats; record them in
                // milli-units so the integer histogram keeps resolution.
                mx.record_cost(((w + f) as f64 * 1000.0) as u64);
            }
        }
    }

    // Greedy assignment (paper §5.3.4): repeatedly take the global
    // minimum cost; prefer the symbol that holds it uniquely, else the
    // one with the fewest minimum-cost peaks.
    ws.remaining.clear();
    ws.remaining
        .extend((0..m).filter(|&i| !ws.vectors[i].is_empty()));

    while !ws.remaining.is_empty() {
        // Global minimum cost over live candidates.
        let mut min_cost = f32::INFINITY;
        for &slot in &ws.remaining {
            for c in ws.cands[slot].iter().filter(|c| c.alive) {
                min_cost = min_cost.min(c.cost);
            }
        }

        let chosen_slot = if min_cost.is_finite() {
            // The remaining symbol with the fewest min-cost peaks (first
            // such symbol on ties, matching `min_by_key` semantics).
            let mut best: Option<(usize, usize)> = None; // (slot, count)
            for &slot in &ws.remaining {
                let cnt = ws.cands[slot]
                    .iter()
                    .filter(|c| c.alive && c.cost <= min_cost + f32::EPSILON)
                    .count();
                if cnt > 0 && best.map(|(_, bc)| cnt < bc).unwrap_or(true) {
                    best = Some((slot, cnt));
                }
            }
            best.map(|(slot, _)| slot).unwrap_or(ws.remaining[0])
        } else {
            // No candidates anywhere: fall back slot by slot.
            ws.remaining[0]
        };

        // Pick the assignment for the chosen slot.
        let pick = ws.cands[chosen_slot]
            .iter()
            .filter(|c| c.alive)
            .min_by(|a, b| a.cost.total_cmp(&b.cost))
            .map(|c| (c.bin, c.height));
        let (bin, height) = match pick {
            Some(p) => p,
            None => {
                // Fallback: strongest unmasked bin of the raw vector.
                ws.tally.fallbacks += 1;
                fallback_bin(
                    &ws.vectors[chosen_slot],
                    &symbols[chosen_slot].masked_bins,
                    &ws.dynamic[chosen_slot],
                    cfg.mask_tolerance,
                )
            }
        };

        out.push(Assignment {
            slot: chosen_slot,
            bin: bin.rem_euclid(n) as u16,
            height,
        });
        ws.remaining.retain(|&s| s != chosen_slot);

        // Mask the assigned peak's siblings in the remaining symbols.
        for &slot in &ws.remaining {
            let shift = shift_bins(
                &packets[symbols[chosen_slot].packet],
                &packets[symbols[slot].packet],
                &params,
            );
            let sib = (bin + shift.round() as i64).rem_euclid(n);
            ws.dynamic[slot].push(sib);
            for c in ws.cands[slot].iter_mut() {
                if c.alive && bin_close(c.bin, sib, n, cfg.mask_tolerance) {
                    c.alive = false;
                }
            }
        }
    }
    ws.tally.assignments += out.len() as u64;
}

/// Strongest bin not within `tol` of any masked location; falls back to
/// the raw argmax if everything is masked.
fn fallback_bin(v: &[f32], masks: &[i64], dynamic: &[i64], tol: i64) -> (i64, f32) {
    let n = v.len() as i64;
    let mut best: Option<(i64, f32)> = None;
    for (i, &h) in v.iter().enumerate() {
        let b = i as i64;
        if masks
            .iter()
            .chain(dynamic)
            .any(|&mb| bin_close(b, mb, n, tol))
        {
            continue;
        }
        if best.map(|(_, bh)| h > bh).unwrap_or(true) {
            best = Some((b, h));
        }
    }
    best.unwrap_or_else(|| {
        // Everything masked: take the raw argmax; bin 0 with zero height
        // stands in for a (never-produced) empty vector.
        v.iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, &h)| (i as i64, h))
            .unwrap_or((0, 0.0))
    })
}

fn bin_close(a: i64, b: i64, n: i64, tol: i64) -> bool {
    let d = (a - b).rem_euclid(n);
    d <= tol || d >= n - tol
}

#[cfg(test)]
mod tests {
    use super::*;
    use tnb_phy::params::{CodingRate, SpreadingFactor};

    fn cfg() -> ThriveConfig {
        ThriveConfig::default()
    }

    #[test]
    fn history_cost_inside_band_is_zero() {
        assert_eq!(history_cost(5.0, 8.0, 2.0, &cfg()), 0.0);
        assert_eq!(history_cost(8.0, 8.0, 2.0, &cfg()), 0.0);
        assert_eq!(history_cost(2.0, 8.0, 2.0, &cfg()), 0.0);
    }

    #[test]
    fn history_cost_above_band() {
        let c = history_cost(16.0, 8.0, 2.0, &cfg());
        assert!((c - 0.1 * 0.25).abs() < 1e-6); // ω(1 − 8/16)²
    }

    #[test]
    fn history_cost_below_band() {
        let c = history_cost(1.0, 8.0, 2.0, &cfg());
        assert!((c - 0.1 * 0.25).abs() < 1e-6); // ω(1 − 1/2)²
    }

    #[test]
    fn history_cost_disabled() {
        let mut c = cfg();
        c.use_history = false;
        assert_eq!(history_cost(100.0, 8.0, 2.0, &c), 0.0);
    }

    #[test]
    fn sibling_cost_highest_peak_is_zero() {
        assert_eq!(sibling_cost(7.0, 7.0), 0.0);
        let c = sibling_cost(3.5, 7.0);
        assert!((c - 0.25).abs() < 1e-6);
    }

    #[test]
    fn history_bounds_from_constant_history() {
        let h = HistoryModel::new(vec![10.0; 8]);
        let (up, lo) = h.bounds(&cfg());
        assert!((up - 10.0).abs() < 1e-4);
        assert!((lo - 10.0).abs() < 1e-4);
    }

    #[test]
    fn history_bounds_widen_with_noise() {
        let mut h = HistoryModel::new(vec![10.0, 14.0, 6.0, 12.0, 8.0, 13.0, 7.0, 11.0]);
        h.push(9.0);
        let (up, lo) = h.bounds(&cfg());
        assert!(up > 11.0, "up {up}");
        assert!(lo < 9.0, "lo {lo}");
        assert!(lo >= 0.0);
    }

    #[test]
    fn empty_history_accepts_anything() {
        let h = HistoryModel::default();
        let (up, lo) = h.bounds(&cfg());
        assert_eq!(history_cost(1e9, up, lo, &cfg()), 0.0);
    }

    #[test]
    fn shift_bins_symmetry() {
        let p = LoRaParams::new(SpreadingFactor::SF8, CodingRate::CR4);
        let a = DetectedPacket {
            start: 1000.0,
            cfo_cycles: 2.0,
            preamble_peak: 1.0,
        };
        let b = DetectedPacket {
            start: 1800.0,
            cfo_cycles: -1.5,
            preamble_peak: 1.0,
        };
        let ab = shift_bins(&a, &b, &p);
        let ba = shift_bins(&b, &a, &p);
        assert!((ab + ba).abs() < 1e-9);
        // (1800-1000)/8 + 2 − (−1.5) = 100 + 3.5
        assert!((ab - 103.5).abs() < 1e-9);
    }

    #[test]
    fn bin_close_wraps() {
        assert!(bin_close(0, 255, 256, 1));
        assert!(bin_close(255, 0, 256, 1));
        assert!(!bin_close(5, 250, 256, 2));
    }

    #[test]
    fn fallback_bin_respects_masks() {
        let mut v = vec![0.0f32; 16];
        v[3] = 10.0;
        v[9] = 8.0;
        let (b, h) = fallback_bin(&v, &[3], &[], 1);
        assert_eq!(b, 9);
        assert_eq!(h, 8.0);
        // Everything masked → raw argmax.
        let all: Vec<i64> = (0..16).collect();
        let (b, _) = fallback_bin(&v, &all, &[], 1);
        assert_eq!(b, 3);
    }
}
