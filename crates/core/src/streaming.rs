//! Gateway-style streaming frontend for the TnB receiver.
//!
//! A real gateway does not see a finished trace file: samples arrive
//! continuously. [`StreamingReceiver`] buffers incoming chunks, runs the
//! batch receiver over a sliding window, emits each packet once, and
//! keeps enough overlap that packets straddling a window boundary are
//! decoded whole in the next round.

use crate::packet::{same_transmission, DecodedPacket};
use crate::parallel::ParallelReceiver;
use crate::receiver::{DecodeReport, TnbConfig};
use tnb_dsp::Complex32;
use tnb_metrics::{MetricsSnapshot, PipelineMetrics};
use tnb_phy::params::LoRaParams;
use tnb_phy::Transmitter;

/// Streaming configuration.
#[derive(Debug, Clone, Copy)]
pub struct StreamingConfig {
    /// Receiver configuration for the underlying batch decodes.
    pub receiver: TnbConfig,
    /// Largest payload (bytes) expected on the air; bounds the window
    /// overlap so boundary-straddling packets are always retried whole.
    pub max_payload: usize,
    /// Process the buffer whenever it exceeds this many multiples of the
    /// longest packet airtime (larger = fewer, bigger batch decodes).
    pub window_factor: usize,
    /// Record pipeline observability (stage wall times, distributions)
    /// across the stream; read via
    /// [`StreamingReceiver::metrics_snapshot`]. Off by default: the
    /// disabled path never reads the clock.
    pub observe: bool,
    /// Worker threads for the underlying batch decodes. The default (1)
    /// decodes inline; any value keeps per-overlap-cluster fault
    /// isolation, so one poisoned cluster degrades alone instead of
    /// stalling the stream.
    pub workers: usize,
}

impl Default for StreamingConfig {
    fn default() -> Self {
        StreamingConfig {
            receiver: TnbConfig::default(),
            max_payload: 64,
            window_factor: 4,
            observe: false,
            workers: 1,
        }
    }
}

/// Incremental receiver: push sample chunks, collect decoded packets.
///
/// Packet `start` fields are *absolute* sample indices in the stream (not
/// window-relative).
pub struct StreamingReceiver {
    rx: ParallelReceiver,
    cfg: StreamingConfig,
    /// Samples of one maximal packet, used for overlap sizing.
    max_packet_samples: usize,
    buffer: Vec<Complex32>,
    /// Absolute index of `buffer[0]` in the stream.
    base: u64,
    /// Absolute (start, cfo_cycles) of already emitted packets, for
    /// deduplication in the overlap region under the same
    /// [`same_transmission`] predicate the detector uses.
    emitted: Vec<(f64, f64)>,
    samples_per_symbol: f64,
    /// Cumulative observability across all batch decodes of the stream.
    metrics: PipelineMetrics,
    report: DecodeReport,
}

impl StreamingReceiver {
    /// Creates a streaming receiver with default configuration.
    pub fn new(params: LoRaParams) -> Self {
        Self::with_config(params, StreamingConfig::default())
    }

    /// Creates a streaming receiver with a custom configuration.
    pub fn with_config(params: LoRaParams, cfg: StreamingConfig) -> Self {
        let max_packet_samples = Transmitter::new(params).packet_samples(cfg.max_payload);
        // The parallel receiver is the batch engine even at one worker:
        // it decodes per overlap cluster (byte-identical to the serial
        // path) and guards each cluster with a panic backstop.
        let rx = ParallelReceiver::with_config(params, cfg.receiver, cfg.workers)
            .with_max_payload_len(cfg.max_payload.max(1));
        StreamingReceiver {
            rx,
            cfg,
            max_packet_samples,
            buffer: Vec::new(),
            base: 0,
            emitted: Vec::new(),
            samples_per_symbol: params.samples_per_symbol() as f64,
            metrics: if cfg.observe {
                PipelineMetrics::enabled()
            } else {
                PipelineMetrics::disabled()
            },
            report: DecodeReport::default(),
        }
    }

    /// Cumulative decode report over every batch decode so far. Windows
    /// overlap, so detection-side counters (windows scanned, packets
    /// detected) can count a transmission more than once; emitted-packet
    /// deduplication happens downstream of this report.
    pub fn report(&self) -> DecodeReport {
        self.report.clone()
    }

    /// Snapshot of the cumulative pipeline metrics (all zeros unless
    /// [`StreamingConfig::observe`] was set).
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Absolute index of the next sample [`Self::push`] will consume.
    pub fn position(&self) -> u64 {
        self.base + self.buffer.len() as u64
    }

    /// Feeds a chunk of samples; returns any packets completed by it.
    pub fn push(&mut self, samples: &[Complex32]) -> Vec<DecodedPacket> {
        self.buffer.extend_from_slice(samples);
        let window = self.cfg.window_factor.max(2) * self.max_packet_samples;
        if self.buffer.len() < window {
            return Vec::new();
        }
        let out = self.process();
        // Keep enough overlap that any packet starting inside the kept
        // region is seen whole next time (one maximal packet plus one
        // preamble of slack). With SIC enabled the rescue window extends
        // one extra maximal packet past a decoded collider, so retain
        // one more airtime of overlap.
        let keep = (2 + usize::from(self.cfg.receiver.sic.enabled)) * self.max_packet_samples;
        if self.buffer.len() > keep {
            let drop = self.buffer.len() - keep;
            self.buffer.drain(..drop);
            self.base += drop as u64;
        }
        self.emitted
            .retain(|&(s, _)| s >= self.base as f64 - self.max_packet_samples as f64);
        out
    }

    /// Flushes the remaining buffer at end of stream and resets the
    /// receiver for a fresh stream: the buffer, the emitted-packet
    /// deduplication memory and the absolute position all restart at
    /// zero, so a reused receiver never suppresses packets that happen to
    /// land near a previous stream's offsets. Cumulative
    /// [`Self::report`]/[`Self::metrics_snapshot`] are preserved.
    pub fn finish(&mut self) -> Vec<DecodedPacket> {
        let out = self.process();
        self.buffer.clear();
        self.emitted.clear();
        self.base = 0;
        out
    }

    fn process(&mut self) -> Vec<DecodedPacket> {
        if self.buffer.is_empty() {
            return Vec::new();
        }
        let (decoded, mut report) = self
            .rx
            .decode_multi_report_observed(&[&self.buffer], &self.metrics);
        // A rescue that was already emitted from a previous window gets
        // re-decoded from the retained overlap; drop those duplicates
        // from the rescue tally before absorbing so the cumulative
        // report counts each rescued transmission once per stream.
        let dup_rescues = decoded
            .iter()
            .filter(|d| d.pass >= 2)
            .filter(|d| {
                let absolute = self.base as f64 + d.start;
                self.emitted.iter().any(|&(s, c)| {
                    same_transmission(s, c, absolute, d.cfo_cycles, self.samples_per_symbol)
                })
            })
            .count();
        report.second_pass_rescues = report.second_pass_rescues.saturating_sub(dup_rescues);
        self.report.absorb(&report);
        let mut out = Vec::new();
        for mut d in decoded {
            let absolute = self.base as f64 + d.start;
            if self.emitted.iter().any(|&(s, cfo)| {
                same_transmission(s, cfo, absolute, d.cfo_cycles, self.samples_per_symbol)
            }) {
                continue;
            }
            self.emitted.push((absolute, d.cfo_cycles));
            d.start = absolute;
            out.push(d);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tnb_phy::params::{CodingRate, SpreadingFactor};

    fn params() -> LoRaParams {
        LoRaParams::new(SpreadingFactor::SF8, CodingRate::CR4)
    }

    #[test]
    fn position_tracks_pushes() {
        let mut s = StreamingReceiver::new(params());
        assert_eq!(s.position(), 0);
        s.push(&[Complex32::ZERO; 1000]);
        assert_eq!(s.position(), 1000);
        s.push(&[Complex32::ZERO; 234]);
        assert_eq!(s.position(), 1234);
    }

    #[test]
    fn finish_on_empty_is_empty() {
        let mut s = StreamingReceiver::new(params());
        assert!(s.finish().is_empty());
        assert!(s.push(&[]).is_empty());
    }
}
