//! Parallel batched decoding: detection, then independent per-cluster
//! decode work items fanned out over scoped worker threads.
//!
//! # Why clusters are safe work items
//!
//! After detection, packets interact only through *time overlap*:
//!
//! - Thrive assigns peaks jointly to the symbols intersecting a checking
//!   point (sibling costs couple co-located symbols);
//! - known-peak masks reach less than one symbol length beyond another
//!   packet's own emission windows;
//! - the second pass masks decoded packets' peaks in the windows of
//!   overlapping failures.
//!
//! So two packets whose sample spans cannot overlap decode identically
//! whether processed together or apart. The receiver groups detected
//! packets into connected components under a conservative overlap
//! horizon (the longest possible packet plus one symbol of masking
//! margin) and decodes each component independently. Every worker owns a
//! [`DspScratch`], and results are merged back in cluster order — i.e.
//! by packet start sample — so the output is byte-identical to the
//! serial [`TnbReceiver`] regardless of worker count or scheduling.

use crate::detect::{merge_dedup, Detector};
use crate::packet::{DecodedPacket, DetectedPacket};
use crate::receiver::{DecodeOutcome, DecodeReport, DegradeReason, TnbConfig, TnbReceiver};
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use tnb_dsp::{Complex32, DspScratch};
use tnb_metrics::{MetricsSnapshot, PipelineMetrics, StageCounters};
use tnb_phy::block;
use tnb_phy::demodulate::Demodulator;
use tnb_phy::params::{CodingRate, LoRaParams};

/// Largest payload a LoRa header can announce (`payload_len` is a byte).
const MAX_PAYLOAD_LEN: usize = 255;

/// A [`TnbReceiver`] that fans independent decode work over worker
/// threads. With one worker it degenerates to the serial pipeline; with
/// more it produces the same bytes, faster.
#[derive(Debug)]
pub struct ParallelReceiver {
    params: LoRaParams,
    cfg: TnbConfig,
    workers: usize,
    /// Upper bound on payload length used for the clustering horizon.
    max_payload_len: usize,
}

impl ParallelReceiver {
    /// Builds a parallel receiver with default (full TnB) configuration.
    /// `workers` is clamped to at least 1.
    pub fn new(params: LoRaParams, workers: usize) -> Self {
        Self::with_config(params, TnbConfig::default(), workers)
    }

    /// Builds a parallel receiver with a custom receiver configuration.
    pub fn with_config(params: LoRaParams, cfg: TnbConfig, workers: usize) -> Self {
        ParallelReceiver {
            params,
            cfg,
            workers: workers.max(1),
            max_payload_len: MAX_PAYLOAD_LEN,
        }
    }

    /// Tightens the clustering horizon for deployments whose payloads are
    /// known to be at most `len` bytes (e.g. fixed-format sensor fleets).
    /// A tighter horizon splits dense traffic into more, smaller work
    /// items. `len` must cover every packet actually on the air: a longer
    /// packet would couple clusters this receiver treats as independent.
    pub fn with_max_payload_len(mut self, len: usize) -> Self {
        self.max_payload_len = len.clamp(1, MAX_PAYLOAD_LEN);
        self
    }

    /// Number of worker threads used for validation and decoding.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Decodes a single-antenna trace.
    pub fn decode(&self, samples: &[Complex32]) -> Vec<DecodedPacket> {
        self.decode_multi_report(&[samples]).0
    }

    /// Like [`Self::decode`], additionally returning the merged
    /// [`DecodeReport`].
    pub fn decode_with_report(&self, samples: &[Complex32]) -> (Vec<DecodedPacket>, DecodeReport) {
        self.decode_multi_report(&[samples])
    }

    /// Decodes a multi-antenna trace.
    pub fn decode_multi(&self, antennas: &[&[Complex32]]) -> Vec<DecodedPacket> {
        self.decode_multi_report(antennas).0
    }

    /// Full parallel pipeline: per-antenna detection (preamble validation
    /// fanned over workers), candidate merge, then per-cluster decoding.
    /// Mirrors [`TnbReceiver::decode_multi`] exactly.
    pub fn decode_multi_report(
        &self,
        antennas: &[&[Complex32]],
    ) -> (Vec<DecodedPacket>, DecodeReport) {
        let metrics = PipelineMetrics::disabled();
        self.decode_multi_report_observed(antennas, &metrics)
    }

    /// [`Self::decode`] with full observability: metrics are recorded
    /// per worker thread and merged after join (commutative sums), so the
    /// aggregate counters equal the serial receiver's.
    pub fn decode_with_metrics(
        &self,
        samples: &[Complex32],
    ) -> (Vec<DecodedPacket>, DecodeReport, MetricsSnapshot) {
        self.decode_multi_with_metrics(&[samples])
    }

    /// Multi-antenna [`Self::decode_with_metrics`].
    pub fn decode_multi_with_metrics(
        &self,
        antennas: &[&[Complex32]],
    ) -> (Vec<DecodedPacket>, DecodeReport, MetricsSnapshot) {
        let metrics = PipelineMetrics::enabled();
        let (decoded, report) = self.decode_multi_report_observed(antennas, &metrics);
        (decoded, report, metrics.snapshot())
    }

    /// The full parallel decode with an externally owned metrics sink.
    pub fn decode_multi_report_observed(
        &self,
        antennas: &[&[Complex32]],
        metrics: &PipelineMetrics,
    ) -> (Vec<DecodedPacket>, DecodeReport) {
        if antennas.is_empty() {
            return (Vec::new(), DecodeReport::default());
        }
        let detector = Detector::with_config(self.params, self.cfg.detector);
        let l = self.params.samples_per_symbol() as f64;
        let mut counters = StageCounters::default();
        let mut detected: Vec<DetectedPacket> = Vec::new();
        for ant in antennas {
            for p in detector.detect_parallel_observed(ant, self.workers, metrics, &mut counters) {
                if merge_dedup(&mut detected, p, l) {
                    counters.detect_duplicates += 1;
                }
            }
        }
        detected.sort_by(|a, b| a.start.total_cmp(&b.start));
        let (decoded, mut report) =
            self.decode_detected_observed(&detected, detector.demodulator(), antennas, metrics);
        report.stages.absorb(&counters);
        (decoded, report)
    }

    /// Decodes pre-detected packets over worker threads. `detected` must
    /// be sorted by start sample (as the detection pass returns it).
    pub fn decode_detected_report(
        &self,
        detected: &[DetectedPacket],
        demod: &Demodulator,
        antennas: &[&[Complex32]],
    ) -> (Vec<DecodedPacket>, DecodeReport) {
        let metrics = PipelineMetrics::disabled();
        self.decode_detected_observed(detected, demod, antennas, &metrics)
    }

    /// [`Self::decode_detected_report`] with an observability sink: each
    /// worker records into its own [`PipelineMetrics`], absorbed into
    /// `metrics` after join.
    pub fn decode_detected_observed(
        &self,
        detected: &[DetectedPacket],
        demod: &Demodulator,
        antennas: &[&[Complex32]],
        metrics: &PipelineMetrics,
    ) -> (Vec<DecodedPacket>, DecodeReport) {
        let clusters = self.clusters(detected);
        let workers = self.workers.min(clusters.len()).max(1);
        if metrics.is_enabled() {
            metrics.clusters.set(clusters.len() as f64);
            metrics.workers.set(workers as f64);
        }

        if workers == 1 {
            // One worker: decode the same work items inline, one scratch.
            let rx = TnbReceiver::with_config(self.params, self.cfg);
            let mut scratch = DspScratch::new();
            let mut all = Vec::new();
            let mut total = DecodeReport::default();
            for c in &clusters {
                let (d, r) = decode_cluster_guarded(
                    &rx,
                    &detected[c.clone()],
                    demod,
                    antennas,
                    &mut scratch,
                    metrics,
                );
                all.extend(d);
                total.absorb(&r);
            }
            return (all, total);
        }

        let enabled = metrics.is_enabled();
        let next = AtomicUsize::new(0);
        let mut results: Vec<Option<(Vec<DecodedPacket>, DecodeReport)>> = Vec::new();
        results.resize_with(clusters.len(), || None);
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    s.spawn(|| {
                        // Each worker owns a receiver (the report slot is
                        // interior-mutable, so receivers are not shared),
                        // a scratch reused across its work items, and a
                        // metrics sink merged after join.
                        let rx = TnbReceiver::with_config(self.params, self.cfg);
                        let mut scratch = DspScratch::new();
                        let wm = if enabled {
                            PipelineMetrics::enabled()
                        } else {
                            PipelineMetrics::disabled()
                        };
                        let mut local = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= clusters.len() {
                                break;
                            }
                            local.push((
                                i,
                                decode_cluster_guarded(
                                    &rx,
                                    &detected[clusters[i].clone()],
                                    demod,
                                    antennas,
                                    &mut scratch,
                                    &wm,
                                ),
                            ));
                        }
                        (local, wm)
                    })
                })
                .collect();
            for h in handles {
                // A worker dying outside the per-cluster guard (it should
                // not — every decode is wrapped) must not abort the batch:
                // its claimed-but-unreported clusters stay `None` and are
                // backfilled as degraded below.
                if let Ok((local, wm)) = h.join() {
                    metrics.absorb(&wm);
                    for (i, r) in local {
                        results[i] = Some(r);
                    }
                }
            }
        });

        // Deterministic merge: clusters are disjoint start-sample ranges
        // in ascending order, so concatenating in cluster order yields
        // the same packet order as the serial receiver.
        let mut all = Vec::new();
        let mut total = DecodeReport::default();
        for (slot, ci) in results.into_iter().zip(&clusters) {
            let (d, r) = slot.unwrap_or_else(|| degraded_cluster(&detected[ci.clone()]));
            all.extend(d);
            total.absorb(&r);
        }
        (all, total)
    }

    /// Groups start-sorted detections into connected components under the
    /// overlap horizon: a new cluster starts whenever a packet begins
    /// after every earlier packet's span has ended.
    fn clusters(&self, detected: &[DetectedPacket]) -> Vec<Range<usize>> {
        let horizon = self.horizon_samples();
        let mut out = Vec::new();
        let mut begin = 0usize;
        let mut max_end = f64::NEG_INFINITY;
        for (i, p) in detected.iter().enumerate() {
            if i > begin && p.start >= max_end {
                out.push(begin..i);
                begin = i;
                max_end = f64::NEG_INFINITY;
            }
            max_end = max_end.max(p.start + horizon);
        }
        if begin < detected.len() {
            out.push(begin..detected.len());
        }
        out
    }

    /// Conservative packet span in samples: preamble plus the longest
    /// possible payload at the most redundant coding rate, plus one
    /// symbol of masking margin (known-peak masks reach `< l` beyond a
    /// packet's own windows).
    fn horizon_samples(&self) -> f64 {
        let mut p = self.params;
        p.cr = CodingRate::CR4;
        let syms =
            p.preamble_symbols() + block::data_symbol_count(self.max_payload_len, &p) as f64 + 1.0;
        syms * p.samples_per_symbol() as f64
    }
}

/// Decodes one cluster with a panic backstop: if anything inside the
/// decode unwinds (a defect, not expected in normal operation), the
/// cluster's packets are reported [`DegradeReason::WorkerPanic`] and the
/// rest of the batch continues. The scratch is replaced after a panic —
/// its buffers may be mid-mutation.
fn decode_cluster_guarded(
    rx: &TnbReceiver,
    cluster: &[DetectedPacket],
    demod: &Demodulator,
    antennas: &[&[Complex32]],
    scratch: &mut DspScratch,
    metrics: &PipelineMetrics,
) -> (Vec<DecodedPacket>, DecodeReport) {
    let result = catch_unwind(AssertUnwindSafe(|| {
        rx.decode_detected_observed(cluster, demod, antennas, scratch, metrics)
    }));
    match result {
        Ok(r) => r,
        Err(_) => {
            *scratch = DspScratch::new();
            degraded_cluster(cluster)
        }
    }
}

/// The report for a cluster whose decode never completed: nothing
/// decoded, every detection degraded with [`DegradeReason::WorkerPanic`].
fn degraded_cluster(cluster: &[DetectedPacket]) -> (Vec<DecodedPacket>, DecodeReport) {
    let report = DecodeReport {
        detected: cluster.len(),
        outcomes: cluster
            .iter()
            .map(|det| DecodeOutcome::Degraded {
                start: det.start,
                reason: DegradeReason::WorkerPanic,
            })
            .collect(),
        ..DecodeReport::default()
    };
    (Vec::new(), report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tnb_phy::params::SpreadingFactor;

    fn pkt(start: f64) -> DetectedPacket {
        DetectedPacket {
            start,
            cfo_cycles: 0.0,
            preamble_peak: 1.0,
        }
    }

    fn rx() -> ParallelReceiver {
        ParallelReceiver::new(LoRaParams::new(SpreadingFactor::SF8, CodingRate::CR1), 4)
            .with_max_payload_len(16)
    }

    #[test]
    fn clusters_split_on_gaps() {
        let rx = rx();
        let h = rx.horizon_samples();
        let dets = [pkt(0.0), pkt(h / 2.0), pkt(h * 3.0), pkt(h * 10.0)];
        let c = rx.clusters(&dets);
        assert_eq!(c, vec![0..2, 2..3, 3..4]);
    }

    #[test]
    fn chained_overlaps_stay_together() {
        let rx = rx();
        let h = rx.horizon_samples();
        // Each packet overlaps only its neighbour; the chain is one
        // component.
        let dets = [pkt(0.0), pkt(h * 0.9), pkt(h * 1.8), pkt(h * 2.7)];
        assert_eq!(rx.clusters(&dets), vec![0..4]);
    }

    #[test]
    fn empty_and_single_detections() {
        let rx = rx();
        assert!(rx.clusters(&[]).is_empty());
        assert_eq!(rx.clusters(&[pkt(5000.0)]), vec![0..1]);
    }

    #[test]
    fn degraded_cluster_reports_worker_panic_per_packet() {
        let dets = [pkt(100.0), pkt(5000.0)];
        let (decoded, report) = degraded_cluster(&dets);
        assert!(decoded.is_empty());
        assert_eq!(report.detected, 2);
        assert_eq!(report.decoded, 0);
        assert_eq!(report.degraded(), 2);
        assert_eq!(report.degraded_with(DegradeReason::WorkerPanic), 2);
    }

    #[test]
    fn tighter_payload_bound_shrinks_horizon() {
        let params = LoRaParams::new(SpreadingFactor::SF8, CodingRate::CR1);
        let wide = ParallelReceiver::new(params, 2);
        let tight = ParallelReceiver::new(params, 2).with_max_payload_len(16);
        assert!(tight.horizon_samples() < wide.horizon_samples());
    }
}
