//! Per-packet signal-vector calculation (paper §4, second component).
//!
//! For every detected packet, the signal vectors of its symbols are
//! computed by aligning windows to the packet's own estimated symbol
//! boundary and removing its estimated CFO. With multiple receive
//! antennas the per-antenna signal vectors are summed (paper §3).

use crate::packet::DetectedPacket;
use std::collections::BTreeMap;
use tnb_dsp::{Complex32, DspScratch};
use tnb_metrics::{PipelineMetrics, Stage};
use tnb_phy::demodulate::Demodulator;
use tnb_phy::params::LoRaParams;

/// Computes (and caches) aligned, CFO-corrected signal vectors for
/// detected packets over a multi-antenna trace.
///
/// All per-symbol DSP runs inside the caller-owned [`DspScratch`]; the
/// cached vectors themselves are drawn from (and on drop returned to)
/// the scratch's recycling pool, so the steady-state symbol loop makes
/// no heap allocations once the pool is warm.
pub struct SigCalc<'a> {
    demod: &'a Demodulator,
    antennas: &'a [&'a [Complex32]],
    scratch: &'a mut DspScratch,
    /// Cache keyed by (packet id, data-symbol index). A `BTreeMap` so
    /// iteration (the `Drop` recycling pass) is key-ordered — a
    /// `HashMap`'s randomized drain order would return buffers to the
    /// scratch pool in a run-dependent order.
    cache: BTreeMap<(usize, isize), Option<Vec<f32>>>,
    /// Optional observability sink (wall time of vector computation and
    /// matching-cost samples recorded by Thrive through [`Self::metrics`]).
    metrics: Option<&'a PipelineMetrics>,
    /// Vectors computed so far (cache misses) — deterministic because the
    /// cache is keyed by (packet id, symbol index).
    computed: u64,
}

impl Drop for SigCalc<'_> {
    fn drop(&mut self) {
        for v in std::mem::take(&mut self.cache).into_values().flatten() {
            self.scratch.recycle_f32(v);
        }
    }
}

impl<'a> SigCalc<'a> {
    /// Creates a calculator over `antennas` (at least one), borrowing the
    /// caller's scratch for the lifetime of the calculator.
    pub fn new(
        demod: &'a Demodulator,
        antennas: &'a [&'a [Complex32]],
        scratch: &'a mut DspScratch,
    ) -> Self {
        Self::observed(demod, antennas, scratch, None)
    }

    /// [`Self::new`] with an optional observability sink: vector
    /// computations are timed under [`Stage::SigCalc`], and downstream
    /// stages holding only the calculator can reach the sink via
    /// [`Self::metrics`].
    pub fn observed(
        demod: &'a Demodulator,
        antennas: &'a [&'a [Complex32]],
        scratch: &'a mut DspScratch,
        metrics: Option<&'a PipelineMetrics>,
    ) -> Self {
        // Zero antennas is tolerated: every vector request returns `None`.
        SigCalc {
            demod,
            antennas,
            scratch,
            cache: BTreeMap::new(),
            metrics,
            computed: 0,
        }
    }

    /// The observability sink, when one was attached.
    pub fn metrics(&self) -> Option<&'a PipelineMetrics> {
        self.metrics
    }

    /// Number of signal vectors computed (cache misses) so far.
    pub fn vectors_computed(&self) -> u64 {
        self.computed
    }

    /// Parameters in use.
    pub fn params(&self) -> &LoRaParams {
        self.demod.params()
    }

    /// First sample (rounded) of data symbol `j` of a packet. Data symbols
    /// start after the 12.25-symbol preamble; negative `j` reaches back
    /// into the preamble (−13 = first preamble upchirp).
    pub fn symbol_start(&self, pkt: &DetectedPacket, j: isize) -> i64 {
        let l = self.params().samples_per_symbol() as f64;
        (pkt.start + l * (self.params().preamble_symbols() + j as f64)).round() as i64
    }

    /// Signal vector of data symbol `j` of `pkt` (id `pkt_id`), summed
    /// over antennas; `None` when the window runs off the trace. Results
    /// are cached.
    // tnb-lint: no_alloc_root -- steady-state symbol path: cache hits are free, misses draw from the scratch pool
    pub fn symbol_vector(
        &mut self,
        pkt_id: usize,
        pkt: &DetectedPacket,
        j: isize,
    ) -> Option<&Vec<f32>> {
        let key = (pkt_id, j);
        if !self.cache.contains_key(&key) {
            self.computed += 1;
            let t0 = self.metrics.and_then(PipelineMetrics::now);
            let v = self.compute(pkt, j);
            if let Some(m) = self.metrics {
                m.record_span(Stage::SigCalc, t0);
            }
            self.cache.insert(key, v);
        }
        self.cache.get(&key).and_then(Option::as_ref)
    }

    fn compute(&mut self, pkt: &DetectedPacket, j: isize) -> Option<Vec<f32>> {
        let l = self.params().samples_per_symbol();
        let start = self.symbol_start(pkt, j);
        if start < 0 {
            return None;
        }
        let start = start as usize;
        let mut sum: Option<Vec<f32>> = None;
        for ant in self.antennas {
            let Some(window) = ant.get(start..start + l) else {
                // Window runs off the trace: hand any partial sum back to
                // the pool and report the vector unavailable.
                if let Some(v) = sum.take() {
                    self.scratch.recycle_f32(v);
                }
                return None;
            };
            self.demod
                .signal_vector_scratch(window, pkt.cfo_cycles, self.scratch);
            match sum.as_mut() {
                None => {
                    let mut v = self.scratch.take_f32(0);
                    v.extend_from_slice(&self.scratch.fbuf);
                    sum = Some(v);
                }
                Some(acc) => {
                    for (a, b) in acc.iter_mut().zip(self.scratch.fbuf.iter()) {
                        *a += *b;
                    }
                }
            }
        }
        sum
    }

    /// Peak heights of the 8 preamble upchirps, processed with the
    /// packet's own alignment — the bootstrap data for Thrive's
    /// peak-height history (paper §5.2: "bootstrapped by the peaks in the
    /// preamble").
    pub fn preamble_heights(&mut self, pkt_id: usize, pkt: &DetectedPacket) -> Vec<f32> {
        let n = self.params().n() as isize;
        let pre = LoRaParams::PREAMBLE_UPCHIRPS as isize;
        let total = self.params().preamble_symbols(); // 12.25
        let mut out = Vec::with_capacity(pre as usize);
        for j in 0..pre {
            // Preamble upchirp j sits at data-symbol index j − 12.25; we
            // can only window at integer symbol offsets, and −13 + j
            // starts a quarter-symbol early — instead take the window at
            // offset j − 12 symbols, which covers upchirp j's tail plus
            // upchirp j+1's head: for identical upchirps this is still a
            // clean full-height peak at bin 0 except for the last one.
            let _ = total;
            let jj = j - 12;
            if let Some(v) = self.symbol_vector(pkt_id, pkt, jj) {
                // The preamble peak is at bin 0 (own alignment); read
                // around it to tolerate ±1-bin residuals.
                let h = (-1..=1)
                    .map(|d| v[(d + n).rem_euclid(n) as usize])
                    .fold(0.0f32, f32::max);
                out.push(h);
            }
        }
        out
    }
}

/// Blind SNR estimate in dB from a signal vector and a peak bin.
///
/// For signal amplitude `A`, the folded peak is `(A·L)²` while a noise
/// bin averages `≈ π·L·σ²` (folded magnitudes of two complex-Gaussian
/// bins), so `SNR = peak·π / (L · median_bin)` up to the median/mean
/// ratio of the noise bins. Above ≈ 14 dB the median becomes dominated by
/// the chirp's own spectral leakage, compressing the estimate — use
/// [`snr_from_peak_db`] when the noise power is known.
pub fn estimate_snr_db(vector: &[f32], peak_bin: usize, samples_per_symbol: usize) -> f32 {
    let median = tnb_dsp::stats::median(vector).max(f32::MIN_POSITIVE);
    let peak = vector[peak_bin];
    let snr = peak * std::f32::consts::PI / (samples_per_symbol as f32 * median);
    tnb_dsp::stats::to_db(snr.max(1e-12))
}

/// SNR in dB from a peak height when the noise power is known: the folded
/// peak of a clean symbol with amplitude `A` is `(A·L)²`, so
/// `SNR = peak / (L² · noise_power)`. The paper estimates node SNRs from
/// peak heights the same way (§8.1); the synthetic traces have unit noise
/// power by construction.
pub fn snr_from_peak_db(peak: f32, samples_per_symbol: usize, noise_power: f32) -> f32 {
    let l = samples_per_symbol as f32;
    tnb_dsp::stats::to_db((peak / (l * l * noise_power)).max(1e-12))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tnb_phy::params::{CodingRate, SpreadingFactor};

    fn demod() -> Demodulator {
        Demodulator::new(LoRaParams::new(SpreadingFactor::SF8, CodingRate::CR4))
    }

    #[test]
    fn symbol_start_offsets() {
        let d = demod();
        let ant: Vec<Complex32> = vec![Complex32::ZERO; 100_000];
        let refs: Vec<&[Complex32]> = vec![&ant];
        let mut scratch = DspScratch::new();
        let sc = SigCalc::new(&d, &refs, &mut scratch);
        let pkt = DetectedPacket {
            start: 1000.0,
            cfo_cycles: 0.0,
            preamble_peak: 1.0,
        };
        let l = 2048i64;
        // Data symbols start 12.25 symbols in.
        assert_eq!(sc.symbol_start(&pkt, 0), 1000 + (12 * l + l / 4));
        assert_eq!(sc.symbol_start(&pkt, 1), 1000 + (13 * l + l / 4));
        assert_eq!(sc.symbol_start(&pkt, -13), 1000 - 3 * l / 4);
    }

    #[test]
    fn out_of_bounds_returns_none() {
        let d = demod();
        let ant: Vec<Complex32> = vec![Complex32::ZERO; 10_000];
        let refs: Vec<&[Complex32]> = vec![&ant];
        let mut scratch = DspScratch::new();
        let mut sc = SigCalc::new(&d, &refs, &mut scratch);
        let pkt = DetectedPacket {
            start: 9_000.0,
            cfo_cycles: 0.0,
            preamble_peak: 1.0,
        };
        assert!(sc.symbol_vector(0, &pkt, 0).is_none());
        let early = DetectedPacket {
            start: 10.0,
            cfo_cycles: 0.0,
            preamble_peak: 1.0,
        };
        assert!(sc.symbol_vector(1, &early, -13).is_none());
    }

    #[test]
    fn snr_estimate_tracks_truth() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let d = demod();
        let p = *d.params();
        let l = p.samples_per_symbol();
        let mut rng = StdRng::seed_from_u64(11);
        for snr_db in [-5.0f32, 0.0, 10.0] {
            let amp = tnb_dsp::stats::from_db(snr_db).sqrt();
            let mut wave: Vec<Complex32> = d
                .chirps()
                .symbol(40)
                .into_iter()
                .map(|z| z.scale(amp))
                .collect();
            tnb_channel::awgn::add_awgn(&mut rng, &mut wave, 1.0);
            let y = d.signal_vector(&wave, 0.0);
            let est = estimate_snr_db(&y, 40, l);
            assert!((est - snr_db).abs() < 3.0, "snr {snr_db} est {est}");
        }
    }

    #[test]
    fn known_noise_snr_is_tight() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let d = demod();
        let l = d.params().samples_per_symbol();
        let mut rng = StdRng::seed_from_u64(12);
        for snr_db in [-5.0f32, 0.0, 10.0, 20.0, 30.0] {
            let amp = tnb_dsp::stats::from_db(snr_db).sqrt();
            let mut wave: Vec<Complex32> = d
                .chirps()
                .symbol(99)
                .into_iter()
                .map(|z| z.scale(amp))
                .collect();
            tnb_channel::awgn::add_awgn(&mut rng, &mut wave, 1.0);
            let y = d.signal_vector(&wave, 0.0);
            let est = snr_from_peak_db(y[99], l, 1.0);
            assert!((est - snr_db).abs() < 1.5, "snr {snr_db} est {est}");
        }
    }
}
