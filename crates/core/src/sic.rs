//! Successive interference cancellation (SIC) rescue primitives.
//!
//! After the two Thrive/BEC passes, every packet that passed its CRC is
//! fully known: its payload re-encodes to the exact transmitted symbol
//! sequence, and the standard preamble prepends it. This module rebuilds
//! that packet's baseband waveform (mirroring the channel model's
//! impairment order: fractional delay, then CFO rotation), estimates a
//! per-symbol-block complex gain by least squares against the received
//! IQ buffer, and subtracts the scaled replica. Re-running detection and
//! Thrive/BEC on the residual then rescues packets the strong collider
//! had buried — the near-far regime plain TnB cannot enter because the
//! weak preamble never produces a detectable peak run.
//!
//! # Estimator
//!
//! For block `k` covering samples `B_k` of the replica `r` against the
//! received buffer `x`, the least-squares complex gain is
//!
//! ```text
//! g_k = Σ_{n ∈ B_k} x[n]·conj(r[n]) / Σ_{n ∈ B_k} |r[n]|²
//! ```
//!
//! accumulated in `f64`. One gain per symbol-length block absorbs the
//! amplitude, the constant channel phase, *and* slow phase drift from
//! residual CFO estimation error as a piecewise-constant phase ramp: a
//! CFO error of δ cycles/symbol leaves a residual power factor of about
//! `1 − sinc²(πδ)` ≈ `(πδ)²/3` per block, i.e. ~1.3e-3 at δ = 0.02 —
//! enough to sink a 20 dB-stronger collider below unit noise power.
//!
//! All hot-path functions here are allocation-free (`tnb-lint:
//! no_alloc`) apart from amortized growth of caller-owned buffers, and
//! none of them read the clock — determinism and the zero-alloc steady
//! state of the receiver are preserved.

use tnb_dsp::Complex32;
use tnb_phy::demodulate::Demodulator;
use tnb_phy::params::LoRaParams;

/// Configuration of the SIC rescue pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SicConfig {
    /// Run the rescue pass after the regular two-pass decode.
    pub enabled: bool,
    /// Upper bound on rescue rounds per overlap component: each round
    /// subtracts every decoded packet and re-decodes the residual;
    /// another round only runs when the previous one decoded something
    /// new (which exposes the next-weaker packet).
    pub max_rounds: usize,
    /// Minimum estimated SNR (dB, against the configured noise power) of
    /// a reconstructed packet for its subtraction to proceed. A replica
    /// whose estimated gain power is below this floor is mostly fitting
    /// noise, and subtracting it would *add* interference.
    pub min_residual_snr: f32,
}

impl Default for SicConfig {
    fn default() -> Self {
        SicConfig {
            enabled: false,
            max_rounds: 2,
            min_residual_snr: -15.0,
        }
    }
}

/// Rebuilds the baseband waveform of a decoded packet into `out`
/// (cleared first): the standard 12.25-symbol preamble followed by the
/// re-encoded data symbols, shifted by the fractional part of the
/// estimated start (`frac_delay`, applied only when positive — matching
/// the channel model) and rotated by the estimated CFO.
///
/// `cfo_cycles` is the CFO in units of FFT bins per symbol (the
/// detector's estimate); the per-sample phase step `2π·cfo/L` equals the
/// channel's `2π·f_cfo/f_s` exactly when `cfo = f_cfo / bin_hz`.
pub fn build_replica(
    demod: &Demodulator,
    known_symbols: &[u16],
    cfo_cycles: f64,
    frac_delay: f64,
    out: &mut Vec<Complex32>,
) {
    let chirps = demod.chirps();
    let l = demod.params().samples_per_symbol();
    out.clear();
    out.reserve(demod.params().preamble_samples() + known_symbols.len() * l + 1);
    for _ in 0..LoRaParams::PREAMBLE_UPCHIRPS {
        chirps.write_symbol(0, out);
    }
    for &sync in &LoRaParams::SYNC_VALUES {
        chirps.write_symbol(sync, out);
    }
    chirps.write_downchirps(2, l / 4, out);
    for &h in known_symbols {
        chirps.write_symbol(h, out);
    }
    if frac_delay > 0.0 {
        fractional_delay_in_place(out, frac_delay);
    }
    rotate_cfo(out, cfo_cycles, l);
}

/// Two-tap linear-interpolation delay by `frac` (0..1) samples, in place,
/// growing the buffer by one sample — the same filter the channel model
/// applies, so a replica built with the true offsets matches the channel
/// output sample for sample.
fn fractional_delay_in_place(samples: &mut Vec<Complex32>, frac: f64) {
    let frac = frac.rem_euclid(1.0) as f32;
    let n = samples.len();
    if n == 0 {
        return;
    }
    let last = samples[n - 1];
    samples.push(last.scale(frac));
    for i in (1..n).rev() {
        let prev = samples[i - 1];
        samples[i] = samples[i].scale(1.0 - frac) + prev.scale(frac);
    }
    samples[0] = samples[0].scale(1.0 - frac);
}

/// Rotates `samples` by a CFO of `cfo_cycles` bins per symbol of length
/// `samples_per_symbol`, phase-referenced to the packet start (index 0) —
/// the same convention as the channel model's `apply_cfo`.
// tnb-lint: no_alloc_root -- per-sample rotation over a caller-owned buffer
pub fn rotate_cfo(samples: &mut [Complex32], cfo_cycles: f64, samples_per_symbol: usize) {
    if cfo_cycles == 0.0 {
        return;
    }
    let step = 2.0 * std::f64::consts::PI * cfo_cycles / samples_per_symbol as f64;
    for (n, s) in samples.iter_mut().enumerate() {
        *s *= Complex32::from_phase(step * n as f64);
    }
}

/// Per-block complex least-squares gains of `replica` against `rx`,
/// written into `gains` (cleared first), one `(re, im)` pair per
/// `block`-sample block of the replica. `offset` is the index in `rx`
/// where `replica[0]` aligns and may be negative or run past the end:
/// out-of-range samples are simply excluded from the block's sums, and a
/// block with no usable overlap gets gain zero (its subtraction is a
/// no-op). Accumulation is in `f64` so even the longest (SF12) blocks
/// cost no precision.
// tnb-lint: no_alloc_root -- pushes into a caller-owned, amortized-capacity buffer
pub fn estimate_block_gains(
    rx: &[Complex32],
    replica: &[Complex32],
    offset: i64,
    block: usize,
    gains: &mut Vec<(f64, f64)>,
) {
    gains.clear();
    if block == 0 {
        return;
    }
    let mut b0 = 0usize;
    while b0 < replica.len() {
        let b1 = (b0 + block).min(replica.len());
        let mut num_re = 0.0f64;
        let mut num_im = 0.0f64;
        let mut den = 0.0f64;
        for (i, r) in replica.iter().enumerate().take(b1).skip(b0) {
            let n = offset + i as i64;
            if n < 0 {
                continue;
            }
            let Some(&x) = rx.get(n as usize) else {
                continue;
            };
            let (xr, xi) = (x.re as f64, x.im as f64);
            let (rr, ri) = (r.re as f64, r.im as f64);
            num_re += xr * rr + xi * ri;
            num_im += xi * rr - xr * ri;
            den += rr * rr + ri * ri;
        }
        if den > f64::EPSILON {
            gains.push((num_re / den, num_im / den));
        } else {
            gains.push((0.0, 0.0));
        }
        b0 = b1;
    }
}

/// Mean gain power `|g|²` over the blocks that had usable overlap (zero
/// gains are placeholders for off-trace blocks). With a unit-amplitude
/// replica this is the estimated received signal power per sample, so
/// `10·log₁₀(mean/noise_power)` is the packet's estimated SNR.
// tnb-lint: no_alloc_root
pub fn mean_gain_power(gains: &[(f64, f64)]) -> f64 {
    let mut sum = 0.0f64;
    let mut n = 0usize;
    for &(re, im) in gains {
        let p = re * re + im * im;
        if p > 0.0 {
            sum += p;
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// Subtracts `gains[k] · replica[n]` from `residual[offset + n]` for
/// every block `k`, skipping out-of-range samples. `block` and `offset`
/// must match the [`estimate_block_gains`] call that produced `gains`.
// tnb-lint: no_alloc_root -- in-place subtraction over caller-owned buffers
pub fn subtract_replica(
    residual: &mut [Complex32],
    replica: &[Complex32],
    offset: i64,
    block: usize,
    gains: &[(f64, f64)],
) {
    if block == 0 {
        return;
    }
    for (k, &(gre, gim)) in gains.iter().enumerate() {
        if gre == 0.0 && gim == 0.0 {
            continue;
        }
        let g = Complex32::new(gre as f32, gim as f32);
        let b0 = k * block;
        let b1 = (b0 + block).min(replica.len());
        for (i, r) in replica.iter().enumerate().take(b1).skip(b0) {
            let n = offset + i as i64;
            if n < 0 {
                continue;
            }
            let Some(x) = residual.get_mut(n as usize) else {
                continue;
            };
            *x -= g * *r;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tnb_phy::params::{CodingRate, LoRaParams, SpreadingFactor};
    use tnb_phy::Transmitter;

    fn demod() -> Demodulator {
        Demodulator::new(LoRaParams::new(SpreadingFactor::SF8, CodingRate::CR4))
    }

    #[test]
    fn replica_matches_transmitter_exactly() {
        let d = demod();
        let tx = Transmitter::new(*d.params());
        let payload = b"sic replica test";
        let symbols = tx.data_symbols(payload);
        let mut replica = Vec::new();
        build_replica(&d, &symbols, 0.0, 0.0, &mut replica);
        let clean = tx.transmit(payload);
        assert_eq!(replica.len(), clean.len());
        // Same ChirpTable construction on both sides: bitwise identical.
        assert_eq!(replica, clean);
    }

    #[test]
    fn fractional_delay_matches_channel_filter() {
        let d = demod();
        let tx = Transmitter::new(*d.params());
        let symbols = tx.data_symbols(b"frac");
        let mut replica = Vec::new();
        build_replica(&d, &symbols, 0.0, 0.37, &mut replica);
        let expect = tnb_channel::impairments::fractional_delay(&tx.transmit(b"frac"), 0.37);
        assert_eq!(replica.len(), expect.len());
        for (a, b) in replica.iter().zip(&expect) {
            assert!((*a - *b).abs() < 1e-6);
        }
    }

    #[test]
    fn gains_recover_amplitude_and_phase() {
        let d = demod();
        let l = d.params().samples_per_symbol();
        let rep: Vec<Complex32> = d.chirps().symbol(17);
        let g_true = Complex32::from_polar(0.35, 1.1);
        let rx: Vec<Complex32> = rep.iter().map(|&r| g_true * r).collect();
        let mut gains = Vec::new();
        estimate_block_gains(&rx, &rep, 0, l, &mut gains);
        assert_eq!(gains.len(), 1);
        let (re, im) = gains[0];
        assert!((re - g_true.re as f64).abs() < 1e-5);
        assert!((im - g_true.im as f64).abs() < 1e-5);
        // Subtraction removes (essentially) everything.
        let mut resid = rx.clone();
        subtract_replica(&mut resid, &rep, 0, l, &gains);
        let power: f32 = resid.iter().map(|z| z.norm_sqr()).sum::<f32>() / resid.len() as f32;
        assert!(power < 1e-8, "residual power {power}");
    }

    #[test]
    fn partial_overlap_is_tolerated() {
        let d = demod();
        let l = d.params().samples_per_symbol();
        let rep = d.chirps().symbol(3);
        let rx = vec![Complex32::ONE; l / 2];
        let mut gains = Vec::new();
        // Replica hangs off both ends; no panic, gains stay finite.
        estimate_block_gains(&rx, &rep, -((l / 4) as i64), l, &mut gains);
        assert_eq!(gains.len(), 1);
        let mut resid = rx.clone();
        subtract_replica(&mut resid, &rep, -((l / 4) as i64), l, &gains);
        assert!(resid.iter().all(|z| !z.is_nan()));
        // Zero-length and off-trace cases degrade to no-ops.
        estimate_block_gains(&rx, &rep, 10_000_000, l, &mut gains);
        assert!(gains.iter().all(|&(re, im)| re == 0.0 && im == 0.0));
        assert_eq!(mean_gain_power(&gains), 0.0);
    }
}
