//! The TnB LoRa collision decoder (the paper's contribution).
//!
//! Pipeline (paper Fig. 3): packet detection → per-packet signal-vector
//! calculation → **Thrive** peak assignment → **BEC** block error
//! correction, composed into [`TnbReceiver`].

pub mod bec;
pub mod detect;
pub mod packet;
pub mod parallel;
pub mod receiver;
pub mod sic;
pub mod sigcalc;
pub mod streaming;
pub mod sync;
pub mod thrive;
pub mod wideband;

/// Pipeline observability (counters, gauges, histograms), re-exported so
/// downstream crates reach it without a manifest dependency of their own.
pub use tnb_metrics as metrics;

pub use detect::{Detector, DetectorConfig};
pub use packet::{same_transmission, DecodedPacket, DetectedPacket};
pub use parallel::ParallelReceiver;
pub use receiver::{DecodeOutcome, DecodeReport, DegradeReason, TnbConfig, TnbReceiver};
pub use sic::SicConfig;
pub use streaming::{StreamingConfig, StreamingReceiver};
pub use tnb_metrics::{MetricsSnapshot, PipelineMetrics, Stage, StageCounters};
pub use wideband::{ChannelPacket, WidebandConfig, WidebandReceiver};
