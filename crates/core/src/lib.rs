//! The TnB LoRa collision decoder (the paper's contribution).
//!
//! Pipeline (paper Fig. 3): packet detection → per-packet signal-vector
//! calculation → **Thrive** peak assignment → **BEC** block error
//! correction, composed into [`TnbReceiver`].

pub mod bec;
pub mod detect;
pub mod packet;
pub mod parallel;
pub mod receiver;
pub mod sigcalc;
pub mod streaming;
pub mod sync;
pub mod thrive;

pub use detect::{Detector, DetectorConfig};
pub use packet::{DecodedPacket, DetectedPacket};
pub use parallel::ParallelReceiver;
pub use receiver::{DecodeReport, TnbConfig, TnbReceiver};
pub use streaming::{StreamingConfig, StreamingReceiver};
