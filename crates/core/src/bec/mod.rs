//! Block Error Correction (paper §6).
//!
//! BEC decodes the same (8,4) Hamming code as the default LoRa decoder but
//! jointly over a whole code block, exploiting that a demodulation error
//! corrupts one *column* (one bit of every codeword at the same position).
//! It enumerates a small set of candidate error-column hypotheses — via
//! the *companion* structure of the code — produces a *BEC-fixed block*
//! for each, and lets the packet-level CRC select the right one.
//!
//! Capabilities (paper Table 1): CR 1/2 gain 1-symbol correction where the
//! default decoder only detects; CR 3 corrects 1-symbol and almost all
//! 2-symbol errors; CR 4 corrects all 1- and 2-symbol errors and over 96 %
//! of 3-symbol errors.

mod block;
mod packet;

pub mod analysis;

pub use block::{decode_block, BlockDecode};
pub use packet::{
    decode_header_with_bec, decode_payload_with_bec, decode_payload_with_bec_budgeted,
    decode_payload_with_bec_limited, w_limit, BecPacketDecode, BecStats,
};
