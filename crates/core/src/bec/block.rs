//! Per-block BEC decoding (paper §6.3–§6.8): the repair methods Δ′, Δ₁,
//! Δ₂, Δ₃ and the per-CR decoding procedures that turn one received block
//! `R` into a list of candidate *BEC-fixed blocks*.

use tnb_phy::hamming::{
    codeword_data, codeword_matching_masked, codeword_table, companions, cr1_parity_ok,
    decode_default,
};
use tnb_phy::params::CodingRate;

/// Result of decoding one block.
#[derive(Debug, Clone)]
pub struct BlockDecode {
    /// Candidate nibble rows, in the order they should be tried against
    /// the packet CRC. Always non-empty; if BEC found nothing to repair
    /// (or gave up) the single candidate is the default decode.
    pub candidates: Vec<Vec<u8>>,
    /// The default (per-row minimum-distance) decode, kept for the
    /// "codewords rescued by BEC" metric.
    pub default_nibbles: Vec<u8>,
    /// True if BEC generated repair candidates beyond the default decode.
    pub repaired: bool,
}

/// Bit mask of the set of columns in `cols`.
fn cols_to_mask(cols: &[usize]) -> u8 {
    cols.iter().fold(0u8, |m, &c| m | (1 << c))
}

/// Columns (ascending) present in a bit mask.
fn mask_to_cols(mask: u8) -> Vec<usize> {
    (0..8).filter(|&b| mask & (1 << b) != 0).collect()
}

/// Repair method Δ′ (CR 1 only): replace column `col` of every row with
/// the checksum of the other four columns (paper §6.3).
fn delta_prime(rows: &[u8], col: usize) -> Vec<u8> {
    rows.iter()
        .map(|&r| {
            let others = r & 0x1F & !(1 << col);
            let bit = (others.count_ones() & 1) as u8;
            let fixed = (r & !(1 << col)) | (bit << col);
            fixed & 0xF
        })
        .collect()
}

/// Repair method Δ₁: mask the columns in `cols` and match every row
/// against the codewords on the remaining columns. Succeeds only if every
/// row matches (paper §6.3). Returns the repaired nibbles.
fn delta1(rows: &[u8], cols: &[usize], cr: CodingRate) -> Option<Vec<u8>> {
    let mask = cols_to_mask(cols);
    rows.iter()
        .map(|&r| codeword_matching_masked(r, mask, cr).map(codeword_data))
        .collect()
}

/// Repair method Δ₂ (CR 4): assume `c_k1` is a true error column; a row in
/// `phi2` is repairable if flipping its `c_k1` bit leaves it at distance
/// exactly 1 from a codeword; all `phi2` rows must share the same *column
/// of mismatch* (paper §6.3). Rows not in `phi2` take their default
/// decode. Returns the repaired nibbles and the column of mismatch.
fn delta2(rows: &[u8], phi2: &[usize], c_k1: usize, cr: CodingRate) -> Option<(Vec<u8>, usize)> {
    let table = codeword_table(cr);
    let mut mismatch: Option<usize> = None;
    let mut out: Vec<u8> = rows.iter().map(|&r| decode_default(r, cr).nibble).collect();
    for &i in phi2 {
        let flipped = rows[i] ^ (1 << c_k1);
        // dmin 4 ⇒ at most one codeword within distance 1.
        let hit = table
            .iter()
            .enumerate()
            .find(|(_, &cw)| (cw ^ flipped).count_ones() == 1)?;
        let col = (hit.1 ^ flipped).trailing_zeros() as usize;
        match mismatch {
            None => mismatch = Some(col),
            Some(m) if m == col => {}
            Some(_) => return None,
        }
        out[i] = hit.0 as u8;
    }
    mismatch.map(|m| (out, m))
}

/// The mismatch-column discovery half of Δ₂, used when testing the 3-error
/// hypothesis (paper §6.7.2, proof of Lemma 3): returns the set of
/// distinct columns of mismatch over `phi2` rows, or `None` if some row
/// has no codeword at distance 1 after flipping `c_k1`.
fn delta2_mismatch_columns(
    rows: &[u8],
    phi2: &[usize],
    c_k1: usize,
    cr: CodingRate,
) -> Option<Vec<usize>> {
    let table = codeword_table(cr);
    let mut cols: Vec<usize> = Vec::new();
    for &i in phi2 {
        let flipped = rows[i] ^ (1 << c_k1);
        let hit = table.iter().find(|&&cw| (cw ^ flipped).count_ones() == 1)?;
        let col = (hit ^ flipped).trailing_zeros() as usize;
        if !cols.contains(&col) {
            cols.push(col);
        }
    }
    cols.sort_unstable();
    Some(cols)
}

/// Repair method Δ₃ (CR 4, `|Ξ| = 0`): flip the bits in the two
/// hypothesised error columns of every `phi2` row; each must then equal a
/// codeword exactly (paper §6.3).
fn delta3(rows: &[u8], phi2: &[usize], c1: usize, c2: usize, cr: CodingRate) -> Option<Vec<u8>> {
    let table = codeword_table(cr);
    let mut out: Vec<u8> = rows.iter().map(|&r| decode_default(r, cr).nibble).collect();
    for &i in phi2 {
        let flipped = rows[i] ^ (1 << c1) ^ (1 << c2);
        let d = table.iter().position(|&cw| cw == flipped)?;
        out[i] = d as u8;
    }
    Some(out)
}

/// State shared by the per-CR decoders: the cleaned block and the
/// difference structure of paper §6.2.
struct DiffInfo {
    default_nibbles: Vec<u8>,
    /// Rows where R and Γ differ in exactly one bit.
    phi1: Vec<usize>,
    /// Rows where R and Γ differ in exactly two bits.
    phi2: Vec<usize>,
    /// Ξ: columns in which φ₁ rows differ between R and Γ (bit mask).
    xi_mask: u8,
    /// Per-row difference masks R ⊕ Γ.
    diffs: Vec<u8>,
}

fn diff_info(rows: &[u8], cr: CodingRate) -> DiffInfo {
    let mut default_nibbles = Vec::with_capacity(rows.len());
    let mut phi1 = Vec::new();
    let mut phi2 = Vec::new();
    let mut xi_mask = 0u8;
    let mut diffs = Vec::with_capacity(rows.len());
    for (i, &r) in rows.iter().enumerate() {
        let d = decode_default(r, cr);
        default_nibbles.push(d.nibble);
        let diff = r ^ d.cleaned;
        diffs.push(diff);
        match diff.count_ones() {
            0 => {}
            1 => {
                phi1.push(i);
                xi_mask |= diff;
            }
            2 => phi2.push(i),
            _ => {}
        }
    }
    DiffInfo {
        default_nibbles,
        phi1,
        phi2,
        xi_mask,
        diffs,
    }
}

fn single(default_nibbles: Vec<u8>) -> BlockDecode {
    BlockDecode {
        candidates: vec![default_nibbles.clone()],
        default_nibbles,
        repaired: false,
    }
}

fn push_unique(cands: &mut Vec<Vec<u8>>, c: Vec<u8>) {
    if !cands.contains(&c) {
        cands.push(c);
    }
}

/// Decodes one received block into its candidate BEC-fixed blocks
/// (paper §6.4–§6.7).
pub fn decode_block(rows: &[u8], cr: CodingRate) -> BlockDecode {
    match cr {
        CodingRate::CR1 => decode_cr1(rows),
        CodingRate::CR2 => decode_cr2(rows),
        CodingRate::CR3 => decode_cr3(rows),
        CodingRate::CR4 => decode_cr4(rows),
    }
}

/// CR 1 (paper §6.4): if every row passes the parity check, accept;
/// otherwise repair with Δ′ on each of the 5 columns.
fn decode_cr1(rows: &[u8]) -> BlockDecode {
    let default_nibbles: Vec<u8> = rows.iter().map(|&r| r & 0xF).collect();
    if rows.iter().all(|&r| cr1_parity_ok(r)) {
        return single(default_nibbles);
    }
    let mut candidates = Vec::with_capacity(5);
    for col in 0..5 {
        push_unique(&mut candidates, delta_prime(rows, col));
    }
    BlockDecode {
        candidates,
        default_nibbles,
        repaired: true,
    }
}

/// CR 2 (paper §6.5): 1-column errors via the companion of Ξ.
fn decode_cr2(rows: &[u8]) -> BlockDecode {
    let info = diff_info(rows, CodingRate::CR2);
    let xi = mask_to_cols(info.xi_mask);
    if xi.is_empty() {
        return single(info.default_nibbles);
    }
    if xi.len() >= 3 {
        // More than one error column (paper §A.2): beyond CR 2's reach.
        return single(info.default_nibbles);
    }
    // Candidate error columns: Ξ plus the companion of its single column.
    let mut cols = xi.clone();
    if cols.len() == 1 {
        for comp in companions(&cols, CodingRate::CR2) {
            cols.extend(comp);
        }
    }
    let mut candidates = Vec::new();
    for &c in &cols {
        if let Some(fix) = delta1(rows, &[c], CodingRate::CR2) {
            push_unique(&mut candidates, fix);
        }
    }
    if candidates.is_empty() {
        return single(info.default_nibbles);
    }
    BlockDecode {
        candidates,
        default_nibbles: info.default_nibbles,
        repaired: true,
    }
}

/// CR 3 (paper §6.6): up to 2-column errors via the companion of Ξ.
fn decode_cr3(rows: &[u8]) -> BlockDecode {
    let info = diff_info(rows, CodingRate::CR3);
    let xi = mask_to_cols(info.xi_mask);
    // Also require φ₂-style anomalies to be absent: with CR 3 every row of
    // R is within 1 bit of Γ, so only Ξ matters.
    if xi.is_empty() || xi.len() == 1 {
        // No error, or a single error column the default decoder fixed.
        return single(info.default_nibbles);
    }
    if xi.len() >= 4 {
        return single(info.default_nibbles); // > 2 error columns: give up
    }
    // Build the 3-column candidate set: Ξ plus (if |Ξ| = 2) its companion.
    let mut cols = xi.clone();
    if cols.len() == 2 {
        for comp in companions(&cols, CodingRate::CR3) {
            cols.extend(comp);
        }
    }
    cols.sort_unstable();
    cols.dedup();
    let mut candidates = Vec::new();
    for i in 0..cols.len() {
        for j in (i + 1)..cols.len() {
            if let Some(fix) = delta1(rows, &[cols[i], cols[j]], CodingRate::CR3) {
                push_unique(&mut candidates, fix);
            }
        }
    }
    if candidates.is_empty() {
        return single(info.default_nibbles);
    }
    BlockDecode {
        candidates,
        default_nibbles: info.default_nibbles,
        repaired: true,
    }
}

/// CR 4 (paper §6.7): 2-column errors, then 3-column errors.
fn decode_cr4(rows: &[u8]) -> BlockDecode {
    let info = diff_info(rows, CodingRate::CR4);
    let xi = mask_to_cols(info.xi_mask);
    let no_diff = info.phi1.is_empty() && info.phi2.is_empty();
    if no_diff {
        return single(info.default_nibbles);
    }
    if xi.len() == 1 && info.phi2.is_empty() {
        // All differences in a single column: one error column, already
        // corrected by the default decoder.
        return single(info.default_nibbles);
    }

    // --- 2-column errors (§6.7.1), only if |Ξ| ≤ 2 ---
    if xi.len() <= 2 {
        let mut candidates = Vec::new();
        match xi.len() {
            0 => {
                // Very rare: every erroneous row has exactly 2 errors. All
                // φ₂ rows must share one companion group of column pairs.
                if let Some(group) = companion_group_of_phi2(&info) {
                    for (c1, c2) in group {
                        if let Some(fix) = delta3(rows, &info.phi2, c1, c2, CodingRate::CR4) {
                            push_unique(&mut candidates, fix);
                        }
                    }
                }
            }
            1 => {
                if let Some((fix, _)) = delta2(rows, &info.phi2, xi[0], CodingRate::CR4) {
                    push_unique(&mut candidates, fix);
                }
            }
            2 => {
                if let Some(fix) = delta1(rows, &xi, CodingRate::CR4) {
                    push_unique(&mut candidates, fix);
                }
            }
            // xi.len() > 2 is excluded by the guard above; adding no
            // candidate simply falls through to the default decode.
            _ => {}
        }
        if !candidates.is_empty() {
            return BlockDecode {
                candidates,
                default_nibbles: info.default_nibbles,
                repaired: true,
            };
        }
    }

    // --- 3-column errors (§6.7.2), only if 1 ≤ |Ξ| ≤ 4 ---
    if xi.is_empty() || xi.len() > 4 {
        return single(info.default_nibbles);
    }
    let mut candidates = Vec::new();
    match xi.len() {
        1 => {
            // Discover the other error columns via the columns of mismatch
            // (Lemma 3 guarantees 2 or 3 distinct columns).
            if let Some(mismatches) =
                delta2_mismatch_columns(rows, &info.phi2, xi[0], CodingRate::CR4)
            {
                let mut cols = vec![xi[0]];
                cols.extend(&mismatches);
                cols.sort_unstable();
                cols.dedup();
                if cols.len() == 3 {
                    // Two mismatch columns: add the companion of all three.
                    for comp in companions(&cols, CodingRate::CR4) {
                        cols.extend(comp);
                    }
                    cols.sort_unstable();
                    cols.dedup();
                }
                if cols.len() == 4 {
                    try_all_triples(rows, &cols, &mut candidates);
                }
            }
        }
        2 => {
            // 6 attempts: Ξ plus each other column; exactly 2 repair when
            // there really are 3 error columns (Lemmas 1 & 2).
            let mut thirds = Vec::new();
            for c in 0..8usize {
                if xi.contains(&c) {
                    continue;
                }
                if let Some(fix) = delta1(rows, &[xi[0], xi[1], c], CodingRate::CR4) {
                    push_unique(&mut candidates, fix);
                    thirds.push(c);
                }
            }
            if thirds.len() == 2 {
                // Ξ may hold the companion pair: also try the two swaps.
                for &keep in &xi {
                    if let Some(fix) = delta1(rows, &[thirds[0], thirds[1], keep], CodingRate::CR4)
                    {
                        push_unique(&mut candidates, fix);
                    }
                }
            }
        }
        3 | 4 => {
            let mut cols = xi.clone();
            if cols.len() == 3 {
                for comp in companions(&cols, CodingRate::CR4) {
                    cols.extend(comp);
                }
            }
            cols.sort_unstable();
            cols.dedup();
            try_all_triples(rows, &cols, &mut candidates);
        }
        // 0 and > 4 are excluded by the guard above; no candidates means
        // the default decode stands.
        _ => {}
    }
    if candidates.is_empty() {
        return single(info.default_nibbles);
    }
    BlockDecode {
        candidates,
        default_nibbles: info.default_nibbles,
        repaired: true,
    }
}

/// Δ₁ with every 3-column combination of `cols`.
fn try_all_triples(rows: &[u8], cols: &[usize], candidates: &mut Vec<Vec<u8>>) {
    for i in 0..cols.len() {
        for j in (i + 1)..cols.len() {
            for k in (j + 1)..cols.len() {
                if let Some(fix) = delta1(rows, &[cols[i], cols[j], cols[k]], CodingRate::CR4) {
                    push_unique(candidates, fix);
                }
            }
        }
    }
}

/// For CR 4 with `|Ξ| = 0`: the shared companion group of all φ₂ rows'
/// difference pairs, as 4 column pairs — or `None` if the rows disagree
/// (paper §6.7.1).
fn companion_group_of_phi2(info: &DiffInfo) -> Option<Vec<(usize, usize)>> {
    let first = *info.phi2.first()?;
    let pair = mask_to_cols(info.diffs[first]);
    debug_assert_eq!(pair.len(), 2);
    let mut group: Vec<(usize, usize)> = vec![(pair[0], pair[1])];
    for comp in companions(&pair, CodingRate::CR4) {
        group.push((comp[0], comp[1]));
    }
    group.sort_unstable();
    // Every other φ₂ row's pair must belong to the same group.
    for &i in &info.phi2[1..] {
        let p = mask_to_cols(info.diffs[i]);
        if p.len() != 2 || !group.contains(&(p[0], p[1])) {
            return None;
        }
    }
    Some(group)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tnb_phy::hamming::encode;
    use tnb_phy::params::CodingRate::*;

    /// Encodes nibbles into clean rows.
    fn clean_rows(nibbles: &[u8], cr: CodingRate) -> Vec<u8> {
        nibbles.iter().map(|&n| encode(n, cr)).collect()
    }

    /// Corrupts `rows` in the given columns with the given per-row flip
    /// patterns: `flips[i]` bit `j` set means row `i` flips column
    /// `cols[j]`.
    fn corrupt(rows: &mut [u8], cols: &[usize], flips: &[u8]) {
        for (i, &f) in flips.iter().enumerate() {
            for (j, &c) in cols.iter().enumerate() {
                if f & (1 << j) != 0 {
                    rows[i] ^= 1 << c;
                }
            }
        }
    }

    fn has_candidate(dec: &BlockDecode, nibbles: &[u8]) -> bool {
        dec.candidates.iter().any(|c| c == nibbles)
    }

    #[test]
    fn clean_block_all_crs() {
        let nib = [1u8, 2, 3, 4, 5, 6, 7, 8];
        for cr in CodingRate::ALL {
            let rows = clean_rows(&nib, cr);
            let dec = decode_block(&rows, cr);
            assert!(!dec.repaired, "cr={cr:?}");
            assert_eq!(dec.candidates, vec![nib.to_vec()]);
        }
    }

    #[test]
    fn paper_fig2_fig7_example() {
        // Reproduce the structure of Fig. 2/Fig. 7: SF 8, CR 3, errors in
        // columns 2 and 7 (paper's 1-indexed) = 1 and 6 here; row 7
        // (index 6) has errors in both, other rows at most one.
        let nib = [0x3u8, 0x5, 0x9, 0xC, 0x0, 0xF, 0x6, 0xA];
        let mut rows = clean_rows(&nib, CR3);
        // flips bit0 ↔ column 1, bit1 ↔ column 6.
        let flips = [0b00u8, 0b01, 0b10, 0b01, 0b10, 0b01, 0b11, 0b10];
        corrupt(&mut rows, &[1, 6], &flips);
        let dec = decode_block(&rows, CR3);
        assert!(dec.repaired);
        // One of the candidates must be the original data, and the default
        // decode must be wrong (row 6 had two errors).
        assert!(has_candidate(&dec, &nib));
        assert_ne!(dec.default_nibbles, nib.to_vec());
        // §6.6: 3 combinations are attempted → at most 3 candidates.
        assert!(dec.candidates.len() <= 3);
    }

    #[test]
    fn cr1_single_column_corrected() {
        let nib = [0u8, 1, 2, 3, 4, 5, 6, 7];
        for bad_col in 0..5 {
            let mut rows = clean_rows(&nib, CR1);
            // Flip the column in a few rows (not all).
            for i in [0usize, 2, 5] {
                rows[i] ^= 1 << bad_col;
            }
            let dec = decode_block(&rows, CR1);
            assert!(dec.repaired, "col {bad_col}");
            assert!(has_candidate(&dec, &nib), "col {bad_col}");
            assert!(dec.candidates.len() <= 5);
        }
    }

    #[test]
    fn cr2_single_column_corrected() {
        let nib = [7u8, 3, 12, 1, 9, 15, 2, 8];
        for bad_col in 0..6 {
            let mut rows = clean_rows(&nib, CR2);
            for i in [1usize, 3, 4, 6] {
                rows[i] ^= 1 << bad_col;
            }
            let dec = decode_block(&rows, CR2);
            assert!(dec.repaired, "col {bad_col}");
            assert!(has_candidate(&dec, &nib), "col {bad_col}");
            assert!(dec.candidates.len() <= 2);
        }
    }

    #[test]
    fn cr3_every_two_column_pattern() {
        // Exhaustive over error column pairs; random-ish flip patterns
        // guaranteeing at least one row with both errors and one row with
        // a single error.
        let nib = [0xAu8, 0x1, 0x7, 0xE, 0x4, 0xB, 0x3, 0x8];
        for a in 0..7usize {
            for b in (a + 1)..7 {
                let mut rows = clean_rows(&nib, CR3);
                let flips = [0b01u8, 0b10, 0b11, 0b01, 0b10, 0b00, 0b11, 0b01];
                corrupt(&mut rows, &[a, b], &flips);
                let dec = decode_block(&rows, CR3);
                assert!(
                    has_candidate(&dec, &nib),
                    "cols ({a},{b}): candidates {:?}",
                    dec.candidates
                );
            }
        }
    }

    #[test]
    fn cr4_every_two_column_pattern() {
        let nib = [0x5u8, 0xD, 0x2, 0x9, 0x0, 0x6, 0xF, 0x4];
        for a in 0..8usize {
            for b in (a + 1)..8 {
                for flips in [
                    [0b01u8, 0b10, 0b11, 0b01, 0b10, 0b00, 0b11, 0b01],
                    [0b11u8, 0b11, 0b11, 0b11, 0b11, 0b11, 0b11, 0b11],
                    [0b11u8, 0b00, 0b11, 0b00, 0b11, 0b00, 0b11, 0b00],
                    [0b10u8, 0b10, 0b10, 0b01, 0b01, 0b01, 0b10, 0b01],
                ] {
                    let mut rows = clean_rows(&nib, CR4);
                    corrupt(&mut rows, &[a, b], &flips);
                    let dec = decode_block(&rows, CR4);
                    assert!(
                        has_candidate(&dec, &nib),
                        "cols ({a},{b}) flips {flips:?}: {:?}",
                        dec.candidates
                    );
                }
            }
        }
    }

    #[test]
    fn cr4_three_column_patterns() {
        // §6.7.2: 3-column errors with |Ξ| from 1 to 4 are correctable;
        // sweep several triples and flip patterns and require the true
        // data to be among the candidates in the vast majority of cases.
        let nib = [0x5u8, 0xD, 0x2, 0x9, 0x0, 0x6, 0xF, 0x4];
        let flip_sets: &[[u8; 8]] = &[
            // Mixed single/double/triple errors per row → |Ξ| ≥ 1.
            [0b001, 0b010, 0b100, 0b011, 0b101, 0b110, 0b111, 0b001],
            [0b001, 0b001, 0b010, 0b100, 0b111, 0b011, 0b000, 0b110],
            [0b100, 0b010, 0b001, 0b111, 0b000, 0b011, 0b101, 0b110],
        ];
        let mut total = 0;
        let mut ok = 0;
        for a in 0..8usize {
            for b in (a + 1)..8 {
                for c in (b + 1)..8 {
                    for flips in flip_sets {
                        let mut rows = clean_rows(&nib, CR4);
                        corrupt(&mut rows, &[a, b, c], flips);
                        let dec = decode_block(&rows, CR4);
                        total += 1;
                        if has_candidate(&dec, &nib) {
                            ok += 1;
                        }
                    }
                }
            }
        }
        // Paper Table 1: "over 96% of 3-symbol errors" (for random error
        // values; these fixed patterns all have |Ξ| ≥ 1 and should all
        // decode).
        assert!(ok as f64 / total as f64 > 0.96, "corrected {ok}/{total}");
    }

    #[test]
    fn cr4_three_columns_all_rows_triple_fails_gracefully() {
        // Every row flips all 3 error columns → R rows are all at distance
        // 1 from a wrong codeword via the companion → |Ξ| = {c'}: BEC
        // (believing 1 error column) returns the default decode. This is
        // the Ψ₁-type residual error of Lemma 4 — it must not panic and
        // must not claim repair success with the true data.
        let nib = [0x5u8, 0xD, 0x2, 0x9, 0x0, 0x6, 0xF, 0x4];
        let mut rows = clean_rows(&nib, CR4);
        corrupt(&mut rows, &[0, 1, 2], &[0b111; 8]);
        let dec = decode_block(&rows, CR4);
        assert!(!has_candidate(&dec, &nib));
    }

    #[test]
    fn cr2_three_plus_diff_columns_returns_default() {
        // |Ξ| ≥ 3 for CR 2 means more than one error column: BEC must give
        // up gracefully.
        let nib = [1u8, 2, 3, 4, 5, 6, 7, 8];
        let mut rows = clean_rows(&nib, CR2);
        rows[0] ^= 1 << 0;
        rows[1] ^= 1 << 1;
        rows[2] ^= 1 << 4;
        rows[3] ^= 1 << 5;
        let dec = decode_block(&rows, CR2);
        assert!(!dec.repaired);
        assert_eq!(dec.candidates.len(), 1);
    }

    #[test]
    fn single_bit_error_cr3_no_bec_needed() {
        let nib = [4u8, 4, 4, 4, 4, 4, 4, 4];
        let mut rows = clean_rows(&nib, CR3);
        rows[3] ^= 1 << 2;
        let dec = decode_block(&rows, CR3);
        assert!(!dec.repaired);
        assert_eq!(dec.candidates, vec![nib.to_vec()]);
    }

    #[test]
    fn cr4_xi_zero_two_column_exhaustive() {
        // §6.7.1, |Ξ| = 0: every erroneous row has exactly 2 errors in the
        // same two columns. Exhaustive over column pairs and several
        // row-subset patterns — Δ₃ must always recover the data.
        let nib = [0x1u8, 0xE, 0x6, 0xB, 0x0, 0x9, 0x4, 0xD];
        for a in 0..8usize {
            for b in (a + 1)..8 {
                for pattern in [0b1010_1010u8, 0b0000_0001, 0b1111_1111, 0b0110_0110] {
                    let mut rows = clean_rows(&nib, CR4);
                    for (i, row) in rows.iter_mut().enumerate() {
                        if pattern & (1 << i) != 0 {
                            *row ^= (1 << a) | (1 << b);
                        }
                    }
                    let dec = decode_block(&rows, CR4);
                    assert!(
                        has_candidate(&dec, &nib),
                        "cols ({a},{b}) pattern {pattern:#b}"
                    );
                }
            }
        }
    }

    #[test]
    fn cr2_exhaustive_single_column_all_row_subsets() {
        // CR 2, single error column, every non-empty row subset of a
        // 7-row block: BEC must always include the true data.
        let nib = [0x2u8, 0x7, 0xC, 0x5, 0x8, 0xF, 0x3];
        for col in 0..6usize {
            for pattern in 1u8..128 {
                let mut rows = clean_rows(&nib, CR2);
                for (i, row) in rows.iter_mut().enumerate() {
                    if pattern & (1 << i) != 0 {
                        *row ^= 1 << col;
                    }
                }
                let dec = decode_block(&rows, CR2);
                assert!(has_candidate(&dec, &nib), "col {col} pattern {pattern:#b}");
            }
        }
    }

    #[test]
    fn sf_sized_blocks_supported() {
        // Blocks have SF rows (7..=12); make sure nothing assumes 8.
        for rows_n in [7usize, 10, 12] {
            let nib: Vec<u8> = (0..rows_n).map(|i| (i % 16) as u8).collect();
            let mut rows = clean_rows(&nib, CR4);
            rows[0] ^= 0b11; // 2 errors in row 0
            rows[1] ^= 0b01;
            rows[2] ^= 0b10;
            let dec = decode_block(&rows, CR4);
            assert!(has_candidate(&dec, &nib), "rows={rows_n}");
        }
    }
}
