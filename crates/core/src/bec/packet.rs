//! Packet-level BEC decoding (paper §6.9): assemble per-block candidate
//! BEC-fixed blocks into repaired packets and test the packet-level CRC,
//! trying at most `W` combinations.

use super::block::{decode_block, BlockDecode};
use tnb_phy::block as phy_block;
use tnb_phy::decoder::{assemble_payload, default_decode_rows, received_payload_blocks};
use tnb_phy::header::{Header, HEADER_NIBBLES};
use tnb_phy::params::{CodingRate, LoRaParams};

/// The paper's `W` limits on CRC attempts per packet: 125 for CR 1
/// (more BEC-fixed blocks are generated there), 16 otherwise.
pub fn w_limit(cr: CodingRate) -> usize {
    match cr {
        CodingRate::CR1 => 125,
        _ => 16,
    }
}

/// Statistics from a BEC packet decode, feeding the paper's Fig. 16 and
/// Table 2 metrics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BecStats {
    /// Codewords decoded by BEC that the default decoder got wrong
    /// ("BEC rescued codewords", Fig. 16).
    pub rescued_codewords: usize,
    /// Number of packet-CRC evaluations performed.
    pub crc_checks: usize,
    /// Number of blocks where BEC generated repair candidates.
    pub repaired_blocks: usize,
    /// Total repair candidates generated across all blocks (the size of
    /// the combination space BEC draws from, before the `W` cap).
    pub candidates_generated: usize,
    /// The per-packet candidate budget ran out: later blocks fell back to
    /// their default decode without enumerating repairs.
    pub budget_exhausted: bool,
}

/// Successful BEC packet decode.
#[derive(Debug, Clone)]
pub struct BecPacketDecode {
    /// The CRC-validated payload.
    pub payload: Vec<u8>,
    /// Decode statistics.
    pub stats: BecStats,
}

/// Decodes the 8 header symbols with BEC (paper §4: "once the PHY header
/// has been received, BEC is called to decode the PHY header").
///
/// The header block is CR 4 with `SF − 2` rows; its validity gate is the
/// header checksum rather than the packet CRC. Returns the parsed header
/// and the payload nibbles the header block carries (from the candidate
/// that passed), plus alternative extra-nibble sets from other passing
/// candidates (rare; they are tried against the packet CRC later).
pub fn decode_header_with_bec(
    symbols: &[u16],
    params: &LoRaParams,
) -> Option<(Header, Vec<Vec<u8>>, BecStats)> {
    if symbols.len() < LoRaParams::HEADER_SYMBOLS {
        return None;
    }
    let rows = phy_block::receive_header_block(&symbols[..LoRaParams::HEADER_SYMBOLS], params);
    let dec = decode_block(&rows, CodingRate::CR4);
    let mut stats = BecStats {
        repaired_blocks: dec.repaired as usize,
        candidates_generated: dec.candidates.len(),
        ..BecStats::default()
    };
    let mut header: Option<Header> = None;
    let mut extras: Vec<Vec<u8>> = Vec::new();
    for cand in &dec.candidates {
        if let Some(h) = Header::from_nibbles(&cand[..HEADER_NIBBLES]) {
            match header {
                None => header = Some(h),
                // Conflicting candidate headers would be unresolvable;
                // keep the first and only collect extras that agree.
                Some(prev) if prev != h => continue,
                Some(_) => {}
            }
            let extra = cand[HEADER_NIBBLES..].to_vec();
            if !extras.contains(&extra) {
                extras.push(extra);
            }
            if cand[..] != dec.default_nibbles[..] {
                stats.rescued_codewords += cand
                    .iter()
                    .zip(&dec.default_nibbles)
                    .filter(|(a, b)| a != b)
                    .count();
            }
        }
    }
    header.map(|h| (h, extras, stats))
}

/// Decodes the payload symbols with BEC, given the already-decoded header
/// and the candidate header-block extra nibbles.
///
/// `payload_symbols` must hold exactly the packet's payload symbols (the
/// caller computes the count from the header). Candidate combinations are
/// tried against the packet CRC, at most `W` of them; when the product of
/// per-block candidate counts exceeds `W`, a deterministic
/// pseudo-random subset is tried (the paper selects randomly; a seeded
/// LCG keeps results reproducible).
pub fn decode_payload_with_bec(
    payload_symbols: &[u16],
    header: &Header,
    header_extras: &[Vec<u8>],
    params: &LoRaParams,
) -> Result<BecPacketDecode, BecStats> {
    decode_payload_with_bec_limited(payload_symbols, header, header_extras, params, None)
}

/// [`decode_payload_with_bec`] with an explicit `W` override (the paper
/// §6.9 notes that lowering W from 125 to 25 for CR 1 loses < 5 % of the
/// decoded packets — the `ablation_w` binary reproduces this).
pub fn decode_payload_with_bec_limited(
    payload_symbols: &[u16],
    header: &Header,
    header_extras: &[Vec<u8>],
    params: &LoRaParams,
    w_override: Option<usize>,
) -> Result<BecPacketDecode, BecStats> {
    decode_payload_with_bec_full(
        payload_symbols,
        header,
        header_extras,
        params,
        w_override,
        None,
    )
}

/// [`decode_payload_with_bec`] with an explicit per-packet candidate
/// budget: once the blocks decoded so far have generated more than
/// `candidate_budget` repair candidates, the remaining blocks contribute
/// only their default decode and `stats.budget_exhausted` is set. This
/// bounds the work an adversarial symbol stream can trigger while leaving
/// clean traces (whose candidate counts are tiny) bit-identical.
pub fn decode_payload_with_bec_budgeted(
    payload_symbols: &[u16],
    header: &Header,
    header_extras: &[Vec<u8>],
    params: &LoRaParams,
    candidate_budget: Option<usize>,
) -> Result<BecPacketDecode, BecStats> {
    decode_payload_with_bec_full(
        payload_symbols,
        header,
        header_extras,
        params,
        None,
        candidate_budget,
    )
}

fn decode_payload_with_bec_full(
    payload_symbols: &[u16],
    header: &Header,
    header_extras: &[Vec<u8>],
    params: &LoRaParams,
    w_override: Option<usize>,
    candidate_budget: Option<usize>,
) -> Result<BecPacketDecode, BecStats> {
    let mut p = *params;
    p.cr = header.cr;
    let payload_len = header.payload_len as usize;

    let mut stats = BecStats::default();

    // Per-"block" candidate lists. Block 0 is the header block's extra
    // nibbles (already BEC'd by the header decode).
    let mut block_candidates: Vec<Vec<Vec<u8>>> = Vec::new();
    let mut default_choice: Vec<Vec<u8>> = Vec::new();
    if header_extras.is_empty() {
        block_candidates.push(vec![Vec::new()]);
        default_choice.push(Vec::new());
    } else {
        block_candidates.push(header_extras.to_vec());
        default_choice.push(header_extras[0].clone());
    }

    for rows in received_payload_blocks(payload_symbols, &p) {
        if candidate_budget.is_some_and(|b| stats.candidates_generated > b) {
            // Budget gone: skip BEC enumeration entirely for the rest of
            // the packet; the plain Hamming decode stands in.
            stats.budget_exhausted = true;
            let default_nibbles = default_decode_rows(&rows, p.cr);
            block_candidates.push(vec![default_nibbles.clone()]);
            default_choice.push(default_nibbles);
            continue;
        }
        let BlockDecode {
            candidates,
            default_nibbles,
            repaired,
        } = decode_block(&rows, p.cr);
        stats.repaired_blocks += repaired as usize;
        stats.candidates_generated += candidates.len();
        block_candidates.push(candidates);
        default_choice.push(default_nibbles);
    }

    let counts: Vec<usize> = block_candidates.iter().map(Vec::len).collect();
    let total: usize = counts
        .iter()
        .try_fold(1usize, |a, &b| a.checked_mul(b))
        .unwrap_or(usize::MAX);
    let w = w_override.unwrap_or_else(|| w_limit(header.cr)).max(1);

    let try_combo = |combo: &[usize], stats: &mut BecStats| -> Option<Vec<u8>> {
        let mut nibbles = Vec::new();
        for (b, &ci) in combo.iter().enumerate() {
            nibbles.extend_from_slice(&block_candidates[b][ci]);
        }
        stats.crc_checks += 1;
        assemble_payload(&nibbles, payload_len).ok()
    };

    let rescued = |combo: &[usize]| -> usize {
        combo
            .iter()
            .enumerate()
            .map(|(b, &ci)| {
                block_candidates[b][ci]
                    .iter()
                    .zip(&default_choice[b])
                    .filter(|(x, y)| x != y)
                    .count()
            })
            .sum()
    };

    if total <= w {
        // Exhaustive, in mixed-radix order (default candidates first).
        let mut combo = vec![0usize; counts.len()];
        loop {
            if let Some(payload) = try_combo(&combo, &mut stats) {
                stats.rescued_codewords = rescued(&combo);
                return Ok(BecPacketDecode { payload, stats });
            }
            // Increment the mixed-radix counter.
            let mut i = 0;
            loop {
                if i == counts.len() {
                    return Err(stats);
                }
                combo[i] += 1;
                if combo[i] < counts[i] {
                    break;
                }
                combo[i] = 0;
                i += 1;
            }
        }
    } else {
        // W combinations sampled *without replacement*: walk the
        // mixed-radix index space with a stride coprime to its size, so
        // every attempt tests a distinct combination (the paper samples
        // randomly; a deterministic permutation is reproducible and never
        // wastes a CRC on a repeat). Attempt 0 is always the all-default
        // combination, the single most likely one.
        let stride = {
            let mut s = (0x9E3779B97F4A7C15u64 % total as u64) as usize | 1;
            while gcd(s, total) != 1 {
                s += 2;
            }
            s
        };
        let mut combo = vec![0usize; counts.len()];
        let mut index = 0usize;
        for _ in 0..w.min(total) {
            // Decode the mixed-radix index into per-block choices.
            let mut rem = index;
            for (i, &c) in counts.iter().enumerate() {
                combo[i] = rem % c;
                rem /= c;
            }
            if let Some(payload) = try_combo(&combo, &mut stats) {
                stats.rescued_codewords = rescued(&combo);
                return Ok(BecPacketDecode { payload, stats });
            }
            index = (index + stride) % total;
        }
        Err(stats)
    }
}

/// Greatest common divisor (for the coprime combination stride).
fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tnb_phy::encoder::encode_packet_symbols;
    use tnb_phy::params::{LoRaParams, SpreadingFactor};

    fn make(sf: SpreadingFactor, cr: CodingRate, payload: &[u8]) -> (Vec<u16>, LoRaParams) {
        let p = LoRaParams::new(sf, cr);
        (encode_packet_symbols(payload, &p), p)
    }

    fn header_and_payload(symbols: &[u16], params: &LoRaParams) -> Option<Vec<u8>> {
        let (h, extras, _) = decode_header_with_bec(symbols, params)?;
        let rest = &symbols[LoRaParams::HEADER_SYMBOLS..];
        decode_payload_with_bec(rest, &h, &extras, params)
            .ok()
            .map(|d| d.payload)
    }

    #[test]
    fn clean_packet_decodes_all_crs() {
        let payload: Vec<u8> = (0..16).map(|i| i * 3 + 1).collect();
        for cr in CodingRate::ALL {
            let (symbols, p) = make(SpreadingFactor::SF8, cr, &payload);
            assert_eq!(
                header_and_payload(&symbols, &p).as_deref(),
                Some(&payload[..]),
                "cr={cr:?}"
            );
        }
    }

    /// Corrupt `n_sym` payload symbols of the same payload block: this is
    /// exactly an n-column block error.
    fn corrupt_payload_symbols(symbols: &mut [u16], which: &[usize], params: &LoRaParams) {
        let n = params.n() as u16;
        for &i in which {
            let idx = LoRaParams::HEADER_SYMBOLS + i;
            // A large bin error (not ±1): flips several Gray bits.
            symbols[idx] = (symbols[idx] + n / 3 + 7) % n;
        }
    }

    #[test]
    fn bec_rescues_two_symbol_errors_cr4() {
        // Two corrupted symbols in one CR 4 block: beyond the default
        // decoder whenever some row takes 2 errors, but always within BEC
        // (paper Table 1).
        let payload = b"block error corr".to_vec();
        let (mut symbols, p) = make(SpreadingFactor::SF8, CodingRate::CR4, &payload);
        corrupt_payload_symbols(&mut symbols, &[0, 5], &p);
        assert_eq!(header_and_payload(&symbols, &p), Some(payload));
    }

    #[test]
    fn bec_rescues_one_symbol_error_cr1_and_cr2() {
        for cr in [CodingRate::CR1, CodingRate::CR2] {
            let payload = b"detect->correct!".to_vec();
            let (mut symbols, p) = make(SpreadingFactor::SF8, cr, &payload);
            corrupt_payload_symbols(&mut symbols, &[2], &p);
            assert_eq!(header_and_payload(&symbols, &p), Some(payload), "cr={cr:?}");
        }
    }

    #[test]
    fn bec_rescues_two_symbol_errors_cr3() {
        let payload = b"cr3 has 7 cols!!".to_vec();
        let (mut symbols, p) = make(SpreadingFactor::SF8, CodingRate::CR3, &payload);
        corrupt_payload_symbols(&mut symbols, &[1, 4], &p);
        assert_eq!(header_and_payload(&symbols, &p), Some(payload));
    }

    #[test]
    fn bec_rescues_errors_in_two_different_blocks() {
        let payload = b"two bad blocks :".to_vec();
        let (mut symbols, p) = make(SpreadingFactor::SF8, CodingRate::CR4, &payload);
        // Symbols 0 and 5 are in block 1; 8+2 and 8+6 in block 2.
        corrupt_payload_symbols(&mut symbols, &[0, 5, 10, 14], &p);
        assert_eq!(header_and_payload(&symbols, &p), Some(payload));
    }

    #[test]
    fn bec_rescues_corrupted_header_symbol() {
        let payload = b"header needs bec".to_vec();
        let (mut symbols, p) = make(SpreadingFactor::SF10, CodingRate::CR2, &payload);
        let n = p.n() as u16;
        // Corrupt 2 of the 8 header symbols badly.
        symbols[1] = (symbols[1] + n / 2 + 13) % n;
        symbols[6] = (symbols[6] + n / 4 + 9) % n;
        assert_eq!(header_and_payload(&symbols, &p), Some(payload));
    }

    #[test]
    fn stats_count_rescued_codewords() {
        let payload = b"count the saves!".to_vec();
        let (mut symbols, p) = make(SpreadingFactor::SF8, CodingRate::CR4, &payload);
        corrupt_payload_symbols(&mut symbols, &[0, 5], &p);
        let (h, extras, _) = decode_header_with_bec(&symbols, &p).unwrap();
        let d = decode_payload_with_bec(&symbols[LoRaParams::HEADER_SYMBOLS..], &h, &extras, &p)
            .unwrap();
        assert!(d.stats.rescued_codewords > 0);
        assert!(d.stats.repaired_blocks >= 1);
        assert!(d.stats.crc_checks >= 1);
    }

    #[test]
    fn hopeless_corruption_fails_without_panic() {
        let payload = b"too many errors.".to_vec();
        let (mut symbols, p) = make(SpreadingFactor::SF8, CodingRate::CR4, &payload);
        // Corrupt most payload symbols.
        let all: Vec<usize> = (0..symbols.len() - 8).collect();
        corrupt_payload_symbols(&mut symbols, &all, &p);
        assert_eq!(header_and_payload(&symbols, &p), None);
    }

    #[test]
    fn crc_attempts_bounded_by_w() {
        let payload = b"respect the W!!!".to_vec();
        let (mut symbols, p) = make(SpreadingFactor::SF8, CodingRate::CR1, &payload);
        // Corrupt one symbol in each of several CR1 blocks so every block
        // yields 5 candidates: the product blows past W = 125.
        corrupt_payload_symbols(&mut symbols, &[0, 5, 10, 15, 20], &p);
        let (h, extras, _) = decode_header_with_bec(&symbols, &p).unwrap();
        let res = decode_payload_with_bec(&symbols[8..], &h, &extras, &p);
        let stats = match res {
            Ok(d) => d.stats,
            Err(s) => s,
        };
        assert!(stats.crc_checks <= w_limit(CodingRate::CR1));
    }

    #[test]
    fn garbage_header_returns_none() {
        let p = LoRaParams::new(SpreadingFactor::SF8, CodingRate::CR4);
        let symbols: Vec<u16> = (0..8).map(|i| (i * 97 + 31) % 256).collect();
        assert!(decode_header_with_bec(&symbols, &p).is_none());
        assert!(decode_header_with_bec(&symbols[..4], &p).is_none());
    }
}
