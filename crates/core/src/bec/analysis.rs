//! Theoretical analysis of BEC (paper Appendix A): the Ψ recursion and
//! Lemma 4's closed-form decoding-error probability for CR 4 with three
//! error columns, plus a Monte-Carlo counterpart. Reproduces paper
//! Fig. 20.

use super::block::decode_block;
use tnb_phy::hamming::encode;
use tnb_phy::params::CodingRate;

/// Ψ_x (paper §A.7): probability that exactly `x` *distinct* error
/// combinations (out of the 8 possible per-row patterns over 3 error
/// columns) occur across the SF rows of a block, under the independence
/// assumption.
///
/// Ψ₁ = (1/8)^SF; Ψ_x = (x/8)^SF − Σ_{y<x} C(x,y)·Ψ_y.
pub fn psi(x: usize, sf: usize) -> f64 {
    assert!((1..=8).contains(&x)); // tnb-lint: allow(TNB-PANIC02) -- analysis-only helper; x outside 1..=8 is a caller bug in closed-form math, not decode input
    let mut table = vec![0.0f64; x + 1];
    for xx in 1..=x {
        let mut v = (xx as f64 / 8.0).powi(sf as i32);
        for (y, &py) in table.iter().enumerate().take(xx).skip(1) {
            v -= binomial(xx, y) as f64 * py;
        }
        table[xx] = v;
    }
    table[x]
}

fn binomial(n: usize, k: usize) -> u64 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut num: u64 = 1;
    let mut den: u64 = 1;
    for i in 0..k {
        num *= (n - i) as u64;
        den *= (i + 1) as u64;
    }
    num / den
}

/// Lemma 4 (paper §A.7): decoding-error probability of BEC for CR 4 with
/// three error columns, under the independence assumption:
/// `Ψ₁ + 7Ψ₂ + 9Ψ₃ + 3Ψ₄ + 2^{−SF}`.
pub fn lemma4_error_probability(sf: usize) -> f64 {
    psi(1, sf) + 7.0 * psi(2, sf) + 9.0 * psi(3, sf) + 3.0 * psi(4, sf) + 2f64.powi(-(sf as i32))
}

/// Decoding-error probability of BEC for CR 3 with two error columns
/// (paper §A.5): the failure mode is every row having errors in both or
/// neither column, so that Ξ holds only the companion and BEC returns
/// prematurely — probability `2^{−SF}` under the independence assumption.
pub fn cr3_2col_error_probability(sf: usize) -> f64 {
    2f64.powi(-(sf as i32))
}

/// Monte-Carlo counterpart of [`cr3_2col_error_probability`].
pub fn simulate_cr3_2col_error_probability(sf: usize, trials: usize, seed: u64) -> f64 {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut failures = 0usize;
    for _ in 0..trials {
        let c1 = (next() % 7) as usize;
        let c2 = loop {
            let c = (next() % 7) as usize;
            if c != c1 {
                break c;
            }
        };
        let nibbles: Vec<u8> = (0..sf).map(|_| (next() % 16) as u8).collect();
        let mut rows: Vec<u8> = nibbles
            .iter()
            .map(|&n| encode(n, CodingRate::CR3))
            .collect();
        for row in rows.iter_mut() {
            for &c in &[c1, c2] {
                if next() & 1 == 1 {
                    *row ^= 1 << c;
                }
            }
        }
        let dec = decode_block(&rows, CodingRate::CR3);
        if !dec.candidates.iter().any(|c| c == &nibbles) {
            failures += 1;
        }
    }
    failures as f64 / trials as f64
}

/// Monte-Carlo estimate of the same probability: random data, three
/// random error columns, each bit of an error column flipped with
/// probability 0.5 (the paper's independence assumption — rows may end up
/// error-free). A trial fails when the true data is not among BEC's
/// candidates.
pub fn simulate_3col_error_probability(sf: usize, trials: usize, seed: u64) -> f64 {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut failures = 0usize;
    for _ in 0..trials {
        // Three distinct random columns out of 8.
        let mut cols = [0usize; 3];
        cols[0] = (next() % 8) as usize;
        loop {
            cols[1] = (next() % 8) as usize;
            if cols[1] != cols[0] {
                break;
            }
        }
        loop {
            cols[2] = (next() % 8) as usize;
            if cols[2] != cols[0] && cols[2] != cols[1] {
                break;
            }
        }
        let nibbles: Vec<u8> = (0..sf).map(|_| (next() % 16) as u8).collect();
        let mut rows: Vec<u8> = nibbles
            .iter()
            .map(|&n| encode(n, CodingRate::CR4))
            .collect();
        for row in rows.iter_mut() {
            for &c in &cols {
                if next() & 1 == 1 {
                    *row ^= 1 << c;
                }
            }
        }
        let dec = decode_block(&rows, CodingRate::CR4);
        if !dec.candidates.iter().any(|c| c == &nibbles) {
            failures += 1;
        }
    }
    failures as f64 / trials as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn psi_values_sane() {
        for sf in 7..=12 {
            let p1 = psi(1, sf);
            assert!((p1 - (1.0f64 / 8.0).powi(sf as i32)).abs() < 1e-15);
            // Ψ decreasing in x for small x at these SFs, and all
            // probabilities in [0, 1].
            for x in 1..=8 {
                let p = psi(x, sf);
                assert!((0.0..=1.0).contains(&p), "sf={sf} x={x} p={p}");
            }
        }
    }

    #[test]
    fn psi_sums_to_one() {
        // Σ_x C(8,x)·Ψ_x = 1: every block realises some number of distinct
        // patterns.
        for sf in 7..=10 {
            let total: f64 = (1..=8).map(|x| binomial(8, x) as f64 * psi(x, sf)).sum();
            assert!((total - 1.0).abs() < 1e-9, "sf={sf} total={total}");
        }
    }

    #[test]
    fn lemma4_matches_paper_fig20_shape() {
        // Paper Fig. 20: error probability < 0.04 at SF 7 and decreasing
        // with SF.
        let p7 = lemma4_error_probability(7);
        assert!(p7 < 0.04, "p7 = {p7}");
        let mut prev = p7;
        for sf in 8..=12 {
            let p = lemma4_error_probability(sf);
            assert!(p < prev, "sf={sf}: {p} !< {prev}");
            prev = p;
        }
    }

    #[test]
    fn simulation_close_to_analysis() {
        // Paper Fig. 20: "the analysis and the simulation results are
        // reasonably close".
        for sf in [7usize, 8] {
            let analytic = lemma4_error_probability(sf);
            let sim = simulate_3col_error_probability(sf, 20_000, 99);
            assert!(
                (sim - analytic).abs() < analytic.max(0.002) * 0.8 + 0.004,
                "sf={sf}: sim {sim} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn cr3_analysis_close_to_simulation() {
        // §A.5: error probability 2^-SF for CR 3 with 2 error columns.
        for sf in [7usize, 8] {
            let a = cr3_2col_error_probability(sf);
            let s = simulate_cr3_2col_error_probability(sf, 60_000, 0xC3);
            assert!(
                (s - a).abs() < a * 0.9 + 0.002,
                "sf={sf}: sim {s} vs analytic {a}"
            );
        }
    }

    #[test]
    fn binomial_basics() {
        assert_eq!(binomial(8, 0), 1);
        assert_eq!(binomial(8, 3), 56);
        assert_eq!(binomial(4, 2), 6);
        assert_eq!(binomial(3, 5), 0);
    }
}
