//! Determinism lockdown for the parallel receiver: the parallel pipeline
//! must be byte-identical to the serial [`TnbReceiver`] for any worker
//! count, and a seeded collision trace must decode to exact payloads
//! with exact report counters.

use tnb_channel::trace::{PacketConfig, Trace, TraceBuilder};
use tnb_core::{ParallelReceiver, TnbReceiver};
use tnb_phy::{CodingRate, LoRaParams, SpreadingFactor};

fn params() -> LoRaParams {
    LoRaParams::new(SpreadingFactor::SF8, CodingRate::CR4)
}

/// Three packets from distinct nodes, the middle one colliding with both
/// neighbours (starts one packet-length apart minus overlap), fixed seed.
fn three_packet_collision(seed: u64) -> (Trace, [Vec<u8>; 3]) {
    let p = params();
    let l = p.samples_per_symbol();
    let payloads = [vec![0xA1u8; 16], vec![0x5B; 16], vec![0x3C; 16]];
    let mut b = TraceBuilder::new(p, seed);
    let cfg = [
        (4_000usize, 12.0f32, 1_500.0f64),
        (4_000 + 14 * l + 300, 10.0, -2_200.0),
        (4_000 + 28 * l + 900, 9.0, 800.0),
    ];
    for (payload, &(start_sample, snr_db, cfo_hz)) in payloads.iter().zip(&cfg) {
        b.add_packet(
            payload,
            PacketConfig {
                start_sample,
                snr_db,
                cfo_hz,
                ..Default::default()
            },
        );
    }
    (b.build(), payloads)
}

/// Eight staggered packets — enough clusters for real fan-out.
fn staggered_trace(seed: u64) -> Trace {
    let p = params();
    let l = p.samples_per_symbol();
    let mut b = TraceBuilder::new(p, seed);
    for i in 0..8usize {
        b.add_packet(
            &[(i as u8 + 1) * 17; 16],
            PacketConfig {
                start_sample: 4_000 + i * 60 * l + i * 137,
                snr_db: 9.0 + (i % 3) as f32,
                cfo_hz: -2_000.0 + 550.0 * i as f64,
                ..Default::default()
            },
        );
    }
    b.build()
}

#[test]
fn seeded_collision_decodes_exact_payloads_serial_and_parallel() {
    let (trace, payloads) = three_packet_collision(7);
    let serial = TnbReceiver::new(params());
    let (decoded, report) = serial.decode_with_report(trace.samples());

    // All three payloads recovered, in start order, bit-exact.
    assert_eq!(decoded.len(), 3, "report: {report:?}");
    for (d, want) in decoded.iter().zip(&payloads) {
        assert_eq!(&d.payload, want);
        assert_eq!(d.header.payload_len, 16);
    }
    assert!(decoded.windows(2).all(|w| w[0].start < w[1].start));

    // Exact counters: every detection decoded, nothing failed.
    assert_eq!(report.detected, 3);
    assert_eq!(report.decoded, 3);
    assert_eq!(report.header_failures, 0);
    assert_eq!(report.payload_failures, 0);
    assert_eq!(report.truncated, 0);

    // The parallel receiver reproduces both packets and counters.
    for workers in [1, 4] {
        let par = ParallelReceiver::new(params(), workers).with_max_payload_len(16);
        let (pd, pr) = par.decode_with_report(trace.samples());
        assert_eq!(pd, decoded, "workers={workers}");
        assert_eq!(pr, report, "workers={workers}");
    }
}

#[test]
fn parallel_is_byte_identical_to_serial_across_worker_counts() {
    for seed in [3u64, 11] {
        let trace = staggered_trace(seed);
        let serial = TnbReceiver::new(params());
        let (sd, sr) = serial.decode_with_report(trace.samples());
        assert!(!sd.is_empty(), "seed {seed}: serial decoded nothing");
        for workers in [1usize, 2, 8] {
            let par = ParallelReceiver::new(params(), workers).with_max_payload_len(16);
            let (pd, pr) = par.decode_with_report(trace.samples());
            assert_eq!(pd, sd, "seed={seed} workers={workers}");
            assert_eq!(pr, sr, "seed={seed} workers={workers}");
        }
    }
}

#[test]
fn parallel_matches_serial_with_untightened_horizon() {
    // Without the payload-length hint every packet may land in one
    // cluster; the result must still be identical.
    let trace = staggered_trace(5);
    let serial = TnbReceiver::new(params());
    let (sd, sr) = serial.decode_with_report(trace.samples());
    let par = ParallelReceiver::new(params(), 4);
    let (pd, pr) = par.decode_with_report(trace.samples());
    assert_eq!(pd, sd);
    assert_eq!(pr, sr);
}

#[test]
fn empty_trace_decodes_to_nothing() {
    let mut b = TraceBuilder::new(params(), 42);
    b.set_min_len(40_000);
    let noise_only = b.build();
    let par = ParallelReceiver::new(params(), 4);
    let (pd, pr) = par.decode_with_report(noise_only.samples());
    assert!(pd.is_empty());
    assert_eq!(pr.detected, 0);
}
