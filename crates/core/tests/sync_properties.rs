//! Property tests for the fractional synchronization (detection step 4):
//! for random true offsets within the search range, the 3-phase search
//! must recover timing within ±2 samples and CFO within ±1/8 bin.

use proptest::prelude::*;
use tnb_channel::trace::{PacketConfig, TraceBuilder};
use tnb_core::sync::{fractional_sync, SyncConfig};
use tnb_phy::demodulate::Demodulator;
use tnb_phy::{CodingRate, LoRaParams, SpreadingFactor};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn recovers_fractional_offsets(
        cfo_hz in -4500.0f64..4500.0,
        start_err in -4i64..=4,      // coarse start error in samples
        frac in 0.0f32..0.95,        // sub-sample timing offset
        seed in 0u64..500,
    ) {
        let p = LoRaParams::new(SpreadingFactor::SF8, CodingRate::CR4);
        let true_start = 8_192usize;
        let mut b = TraceBuilder::new(p, seed);
        b.add_packet(
            &[0x5A; 16],
            PacketConfig {
                start_sample: true_start,
                snr_db: 10.0,
                cfo_hz,
                frac_delay: frac,
                ..Default::default()
            },
        );
        let trace = b.build();
        let demod = Demodulator::new(p);
        let cfo_bins = cfo_hz / p.bin_hz();
        let r = fractional_sync(
            trace.samples(),
            &demod,
            true_start as i64 + start_err,
            cfo_bins.round(),
            &SyncConfig::default(),
        );
        let r = r.expect("sync must lock at 10 dB");
        let true_pos = true_start as f64 + frac as f64;
        prop_assert!(
            (r.start - true_pos).abs() <= 2.0,
            "start {} vs true {true_pos}",
            r.start
        );
        prop_assert!(
            (r.cfo_cycles - cfo_bins).abs() <= 0.125,
            "cfo {} vs true {cfo_bins}",
            r.cfo_cycles
        );
    }
}

#[test]
fn sync_rejects_noise() {
    // Pure noise must not produce a Q*-gated lock at most offsets.
    let p = LoRaParams::new(SpreadingFactor::SF8, CodingRate::CR4);
    let mut b = TraceBuilder::new(p, 99);
    b.set_min_len(80_000);
    let trace = b.build();
    let demod = Demodulator::new(p);
    let mut locks = 0;
    for s in (0..10).map(|k| 1_000 + k * 5_000) {
        if fractional_sync(trace.samples(), &demod, s, 0.0, &SyncConfig::default()).is_some() {
            locks += 1;
        }
    }
    // The Q* gate (up AND down peaks at bin 0) makes accidental locks
    // rare; allow at most a couple across 10 probes of raw noise.
    assert!(locks <= 2, "{locks} noise locks");
}
