//! Golden-vector tests for the SIC replica: the reconstruction must
//! match the `tnb-phy` transmit chain sample-for-sample across coding
//! rates, CFOs and fractional timing offsets, and subtracting a packet
//! from its own clean trace must leave the residual below a fixed floor.

use tnb_channel::impairments::{apply_cfo, fractional_delay};
use tnb_core::detect::Detector;
use tnb_core::sic;
use tnb_dsp::{Complex32, DspScratch};
use tnb_phy::demodulate::Demodulator;
use tnb_phy::encoder::encode_packet_symbols;
use tnb_phy::{CodingRate, LoRaParams, SpreadingFactor, Transmitter};

const PAYLOAD: [u8; 12] = *b"golden bytes";

fn params(cr: CodingRate) -> LoRaParams {
    LoRaParams::new(SpreadingFactor::SF8, cr)
}

/// The transmit chain the channel applies: modulate, fractionally delay
/// (only when non-zero, mirroring the channel), then rotate by the CFO.
fn golden_packet(p: LoRaParams, cfo_hz: f64, frac: f32) -> Vec<Complex32> {
    let mut samples = Transmitter::new(p).transmit(&PAYLOAD);
    if frac > 0.0 {
        samples = fractional_delay(&samples, frac);
    }
    if cfo_hz != 0.0 {
        // Multiplying by phase 0 normalizes -0.0 samples to +0.0, which
        // would spoil the bitwise no-impairment comparison below.
        apply_cfo(&mut samples, cfo_hz, p.sample_rate());
    }
    samples
}

#[test]
fn replica_matches_modulator_across_cr_cfo_and_timing() {
    for cr in CodingRate::ALL {
        let p = params(cr);
        let demod = Demodulator::new(p);
        let symbols = encode_packet_symbols(&PAYLOAD, &p);
        let mut replica = Vec::new();
        for cfo_hz in [0.0f64, 1_234.5, -2_400.0, 4_880.0] {
            for frac in [0.0f32, 0.25, 0.73, 0.999] {
                let golden = golden_packet(p, cfo_hz, frac);
                let cfo_cycles = cfo_hz / p.bin_hz();
                sic::build_replica(&demod, &symbols, cfo_cycles, f64::from(frac), &mut replica);
                assert_eq!(
                    replica.len(),
                    golden.len(),
                    "cr={} cfo={cfo_hz} frac={frac}",
                    cr.value()
                );
                if cfo_hz == 0.0 && frac == 0.0 {
                    // No impairment: the replica must be bit-identical to
                    // the modulator output.
                    assert!(
                        replica.iter().zip(&golden).all(|(a, b)| {
                            a.re.to_bits() == b.re.to_bits() && a.im.to_bits() == b.im.to_bits()
                        }),
                        "cr={} bitwise mismatch",
                        cr.value()
                    );
                } else {
                    // CFO is parameterized as cycles/symbol instead of
                    // Hz; the two phase steps agree to f64 rounding,
                    // which stays far below f32 sample resolution.
                    let worst = replica
                        .iter()
                        .zip(&golden)
                        .map(|(a, b)| (*a - *b).abs())
                        .fold(0.0f32, f32::max);
                    assert!(
                        worst < 1e-4,
                        "cr={} cfo={cfo_hz} frac={frac}: worst sample error {worst}",
                        cr.value()
                    );
                }
            }
        }
    }
}

/// Embeds a packet at `offset` in a zero trace of length `n`.
fn embed(packet: &[Complex32], offset: usize, n: usize) -> Vec<Complex32> {
    let mut trace = vec![Complex32::ZERO; n];
    for (i, &s) in packet.iter().enumerate() {
        trace[offset + i] = s * 0.6; // arbitrary amplitude the gains must absorb
    }
    trace
}

fn power(x: &[Complex32]) -> f64 {
    x.iter().map(|z| f64::from(z.norm_sqr())).sum::<f64>() / x.len().max(1) as f64
}

#[test]
fn self_subtraction_with_ground_truth_is_below_floor() {
    for cr in [CodingRate::CR1, CodingRate::CR4] {
        let p = params(cr);
        let demod = Demodulator::new(p);
        let l = p.samples_per_symbol();
        let (cfo_hz, frac) = (1_700.0f64, 0.37f32);
        let packet = golden_packet(p, cfo_hz, frac);
        let offset = 3 * l + 100;
        let trace = embed(&packet, offset, packet.len() + 8 * l);
        let before = power(&trace);

        let symbols = encode_packet_symbols(&PAYLOAD, &p);
        let mut replica = Vec::new();
        sic::build_replica(
            &demod,
            &symbols,
            cfo_hz / p.bin_hz(),
            f64::from(frac),
            &mut replica,
        );
        let mut gains = Vec::new();
        sic::estimate_block_gains(&trace, &replica, offset as i64, l, &mut gains);
        let mut residual = trace;
        sic::subtract_replica(&mut residual, &replica, offset as i64, l, &gains);

        let after = power(&residual);
        assert!(
            after / before < 1e-6,
            "cr={}: residual power ratio {}",
            cr.value(),
            after / before
        );
    }
}

#[test]
fn self_subtraction_with_detector_estimates_is_below_floor() {
    // Same scene, but start and CFO come from the detector (quantized
    // estimates) instead of ground truth; the per-block gains must absorb
    // the leftover drift down to a fixed floor.
    let p = params(CodingRate::CR4);
    let demod = Demodulator::new(p);
    let l = p.samples_per_symbol();
    let (cfo_hz, frac) = (2_400.0f64, 0.73f32);
    let packet = golden_packet(p, cfo_hz, frac);
    let offset = 3 * l + 777;
    let trace = embed(&packet, offset, packet.len() + 8 * l);
    let before = power(&trace);

    let mut scratch = DspScratch::new();
    let detected = Detector::new(p).detect_with_scratch(&trace, &mut scratch);
    assert_eq!(detected.len(), 1, "clean packet must be detected");
    let det = detected[0];

    let symbols = encode_packet_symbols(&PAYLOAD, &p);
    let mut replica = Vec::new();
    let start_floor = det.start.floor();
    sic::build_replica(
        &demod,
        &symbols,
        det.cfo_cycles,
        det.start - start_floor,
        &mut replica,
    );
    let mut gains = Vec::new();
    sic::estimate_block_gains(&trace, &replica, start_floor as i64, l, &mut gains);
    let mut residual = trace;
    sic::subtract_replica(&mut residual, &replica, start_floor as i64, l, &gains);

    let after = power(&residual);
    assert!(
        after / before < 0.02,
        "residual power ratio {} (detector est: start {} vs {}, cfo {} vs {})",
        after / before,
        det.start,
        offset,
        det.cfo_cycles * p.bin_hz(),
        cfo_hz
    );
}
