//! Deterministic fault-injection matrix: every fault from
//! [`FaultPlan::matrix`] is run through the serial, parallel and
//! streaming receivers. The pipeline must never panic, every detected
//! packet must be accounted for (decoded or degraded-with-reason), and
//! the clean plan must leave decode output byte-identical to decoding
//! the untouched trace.

use tnb_channel::trace::{PacketConfig, TraceBuilder};
use tnb_channel::FaultPlan;
use tnb_core::streaming::{StreamingConfig, StreamingReceiver};
use tnb_core::{DecodeReport, ParallelReceiver, SicConfig, TnbConfig, TnbReceiver};
use tnb_dsp::Complex32;
use tnb_phy::{CodingRate, LoRaParams, SpreadingFactor};

const SEED: u64 = 7;

/// One receiver flavour under test: payloads plus the full report.
type DecodeFn = fn(&[Complex32]) -> (Vec<Vec<u8>>, DecodeReport);

fn params() -> LoRaParams {
    LoRaParams::new(SpreadingFactor::SF8, CodingRate::CR4)
}

/// Three-packet SF8 collision: the middle packet overlaps both
/// neighbours, so every receiver exercises the multi-packet path.
fn collision_trace() -> Vec<Complex32> {
    let p = params();
    let l = p.samples_per_symbol();
    let mut b = TraceBuilder::new(p, SEED);
    let cfg = [
        (vec![0xA1u8; 16], 4_000usize, 12.0f32, 1_500.0f64),
        (vec![0x5B; 16], 4_000 + 14 * l + 300, 10.0, -2_200.0),
        (vec![0x3C; 16], 4_000 + 28 * l + 900, 9.0, 800.0),
    ];
    for (payload, start_sample, snr_db, cfo_hz) in cfg {
        b.add_packet(
            &payload,
            PacketConfig {
                start_sample,
                snr_db,
                cfo_hz,
                ..Default::default()
            },
        );
    }
    b.build().samples().to_vec()
}

fn sic_cfg() -> TnbConfig {
    TnbConfig {
        sic: SicConfig {
            enabled: true,
            ..SicConfig::default()
        },
        ..TnbConfig::default()
    }
}

fn serial_decode(samples: &[Complex32]) -> (Vec<Vec<u8>>, DecodeReport) {
    let (d, r, _) = TnbReceiver::new(params()).decode_with_metrics(samples);
    (d.into_iter().map(|p| p.payload).collect(), r)
}

fn serial_decode_sic(samples: &[Complex32]) -> (Vec<Vec<u8>>, DecodeReport) {
    let (d, r, _) = TnbReceiver::with_config(params(), sic_cfg()).decode_with_metrics(samples);
    (d.into_iter().map(|p| p.payload).collect(), r)
}

fn parallel_decode_sic(samples: &[Complex32]) -> (Vec<Vec<u8>>, DecodeReport) {
    let (d, r, _) =
        ParallelReceiver::with_config(params(), sic_cfg(), 3).decode_with_metrics(samples);
    (d.into_iter().map(|p| p.payload).collect(), r)
}

fn streaming_decode_sic(samples: &[Complex32]) -> (Vec<Vec<u8>>, DecodeReport) {
    let cfg = StreamingConfig {
        receiver: sic_cfg(),
        workers: 2,
        ..Default::default()
    };
    let mut rx = StreamingReceiver::with_config(params(), cfg);
    let mut out = Vec::new();
    for chunk in samples.chunks(50_000) {
        out.extend(rx.push(chunk).into_iter().map(|p| p.payload));
    }
    out.extend(rx.finish().into_iter().map(|p| p.payload));
    (out, rx.report())
}

fn parallel_decode(samples: &[Complex32]) -> (Vec<Vec<u8>>, DecodeReport) {
    let (d, r, _) = ParallelReceiver::new(params(), 3).decode_with_metrics(samples);
    (d.into_iter().map(|p| p.payload).collect(), r)
}

fn streaming_decode(samples: &[Complex32]) -> (Vec<Vec<u8>>, DecodeReport) {
    let cfg = StreamingConfig {
        workers: 2,
        ..Default::default()
    };
    let mut rx = StreamingReceiver::with_config(params(), cfg);
    let mut out = Vec::new();
    for chunk in samples.chunks(50_000) {
        out.extend(rx.push(chunk).into_iter().map(|p| p.payload));
    }
    out.extend(rx.finish().into_iter().map(|p| p.payload));
    (out, rx.report())
}

/// Every detected packet ends up either decoded or degraded with a
/// reason; the outcome list covers the whole batch.
fn assert_accounted(kind: &str, fault: &str, decoded: usize, report: &DecodeReport) {
    assert_eq!(
        report.outcomes.len(),
        report.detected,
        "{kind}/{fault}: outcome per detected packet"
    );
    assert_eq!(
        report.decoded, decoded,
        "{kind}/{fault}: report.decoded matches packet list"
    );
    assert_eq!(
        report.detected,
        report.decoded + report.degraded(),
        "{kind}/{fault}: detected = decoded + degraded"
    );
}

#[test]
fn clean_plan_is_byte_identical_to_direct_decode() {
    let base = collision_trace();
    let plan = FaultPlan::new(SEED);
    assert!(plan.is_clean());
    let cleaned = plan.apply(&base);
    assert_eq!(base, cleaned, "a clean plan must not touch the samples");

    let (direct, direct_report) = serial_decode(&base);
    let (via_plan, plan_report) = serial_decode(&cleaned);
    assert_eq!(direct, via_plan, "clean-path payloads byte-identical");
    assert_eq!(direct_report, plan_report);
    assert_eq!(direct.len(), 3, "clean collision fully decodes");
}

#[test]
fn matrix_is_deterministic_per_seed() {
    // Bit-pattern comparison: float == would reject NaN == NaN even when
    // the injected bytes are identical.
    fn bits(v: &[Complex32]) -> Vec<(u32, u32)> {
        v.iter().map(|z| (z.re.to_bits(), z.im.to_bits())).collect()
    }
    let base = collision_trace();
    for (name, plan) in FaultPlan::matrix(SEED) {
        let a = plan.apply(&base);
        let b = plan.apply(&base);
        assert_eq!(bits(&a), bits(&b), "{name}: same plan, same bytes");
    }
}

#[test]
fn no_receiver_panics_on_any_fault_serial() {
    run_matrix("serial", serial_decode);
}

#[test]
fn no_receiver_panics_on_any_fault_parallel() {
    run_matrix("parallel", parallel_decode);
}

#[test]
fn no_receiver_panics_on_any_fault_streaming() {
    run_matrix("streaming", streaming_decode);
}

#[test]
fn no_receiver_panics_on_any_fault_serial_sic() {
    run_matrix("serial+sic", serial_decode_sic);
}

#[test]
fn no_receiver_panics_on_any_fault_parallel_sic() {
    run_matrix("parallel+sic", parallel_decode_sic);
}

#[test]
fn no_receiver_panics_on_any_fault_streaming_sic() {
    run_matrix("streaming+sic", streaming_decode_sic);
}

/// With SIC enabled but no rescue firing, every matrix row must decode
/// bit-identically to SIC-off: failed re-detections are dropped and
/// decoded packets keep their original pass labels, so the rescue pass is
/// invisible unless it actually rescues something.
#[test]
fn sic_rows_match_sic_off_when_no_rescue_fires() {
    let base = collision_trace();
    for (name, plan) in FaultPlan::matrix(SEED) {
        let faulty = plan.apply(&base);
        let (off_payloads, off_report) = serial_decode(&faulty);
        let (on_payloads, on_report) = serial_decode_sic(&faulty);
        if on_report.stages.sic_rescues == 0 {
            assert_eq!(on_payloads, off_payloads, "{name}: payloads");
            assert_eq!(
                on_report.outcomes_json(),
                off_report.outcomes_json(),
                "{name}: outcomes"
            );
            assert_eq!(
                on_report.second_pass_rescues, off_report.second_pass_rescues,
                "{name}: rescue tally"
            );
        } else {
            // A rescue may only ever add packets, never lose one.
            assert!(on_payloads.len() >= off_payloads.len(), "{name}");
        }
    }
}

fn run_matrix(kind: &str, decode: DecodeFn) {
    let base = collision_trace();
    let (clean_payloads, _) = decode(&base);
    assert_eq!(clean_payloads.len(), 3, "{kind}: clean baseline decodes");
    for (name, plan) in FaultPlan::matrix(SEED) {
        let faulty = plan.apply(&base);
        let (payloads, report) = decode(&faulty);
        assert_accounted(kind, name, payloads.len(), &report);
        if plan.is_clean() {
            assert_eq!(
                payloads, clean_payloads,
                "{kind}: clean matrix row is byte-identical"
            );
        }
        // Anything that did not decode must carry a degradation reason.
        for outcome in &report.outcomes {
            match outcome {
                tnb_core::DecodeOutcome::Decoded { .. } => {}
                tnb_core::DecodeOutcome::Degraded { reason, .. } => {
                    assert!(!reason.name().is_empty(), "{kind}/{name}: named reason");
                }
            }
        }
    }
}

#[test]
fn receivers_agree_on_degradation_counts() {
    let base = collision_trace();
    for (name, plan) in FaultPlan::matrix(SEED) {
        let faulty = plan.apply(&base);
        let (sp, sr) = serial_decode(&faulty);
        let (pp, pr) = parallel_decode(&faulty);
        assert_eq!(sp, pp, "{name}: serial and parallel payloads agree");
        assert_eq!(sr.stages, pr.stages, "{name}: deterministic counters agree");
        assert_eq!(
            sr.degraded(),
            pr.degraded(),
            "{name}: degraded counts agree"
        );
    }
}

#[test]
fn hostile_inputs_that_break_framing_degrade_with_reasons() {
    let base = collision_trace();
    let matrix = FaultPlan::matrix(SEED);
    let truncate = matrix
        .iter()
        .find(|(n, _)| *n == "truncate")
        .map(|(_, p)| p.apply(&base))
        .unwrap_or_default();
    let (_, report) = serial_decode(&truncate);
    assert!(
        report.degraded() > 0,
        "hard truncation must degrade at least one packet"
    );
    assert!(
        report
            .degraded_with(tnb_core::DegradeReason::Truncated)
            .max(report.degraded_with(tnb_core::DegradeReason::Header))
            > 0,
        "truncation shows up as truncated or header degradation"
    );
}
