//! Direct tests of Thrive's checkpoint assignment on synthetic collided
//! traces with known ground truth.

use tnb_channel::trace::{PacketConfig, TraceBuilder};
use tnb_core::packet::DetectedPacket;
use tnb_core::sigcalc::SigCalc;
use tnb_core::thrive::{
    assign_checkpoint, shift_bins, CheckpointSymbol, HistoryModel, ThriveConfig,
};
use tnb_dsp::DspScratch;
use tnb_phy::demodulate::Demodulator;
use tnb_phy::encoder::encode_packet_symbols;
use tnb_phy::{CodingRate, LoRaParams, SpreadingFactor};

fn params() -> LoRaParams {
    LoRaParams::new(SpreadingFactor::SF8, CodingRate::CR4)
}

/// Builds a two-packet collision and returns (trace, detections, true
/// symbol streams).
fn two_packet_setup(
    seed: u64,
    snr: (f32, f32),
    cfo: (f64, f64),
    offset2: usize,
) -> (
    tnb_channel::trace::Trace,
    [DetectedPacket; 2],
    [Vec<u16>; 2],
) {
    let p = params();
    let pay1 = b"thrive pkt alpha".to_vec();
    let pay2 = b"thrive pkt bravo".to_vec();
    let mut b = TraceBuilder::new(p, seed);
    b.add_packet(
        &pay1,
        PacketConfig {
            start_sample: 4_000,
            snr_db: snr.0,
            cfo_hz: cfo.0,
            ..Default::default()
        },
    );
    b.add_packet(
        &pay2,
        PacketConfig {
            start_sample: 4_000 + offset2,
            snr_db: snr.1,
            cfo_hz: cfo.1,
            ..Default::default()
        },
    );
    let trace = b.build();
    let d1 = DetectedPacket {
        start: 4_000.0,
        cfo_cycles: cfo.0 / p.bin_hz(),
        preamble_peak: 1.0,
    };
    let d2 = DetectedPacket {
        start: (4_000 + offset2) as f64,
        cfo_cycles: cfo.1 / p.bin_hz(),
        preamble_peak: 1.0,
    };
    let s1 = encode_packet_symbols(&pay1, &p);
    let s2 = encode_packet_symbols(&pay2, &p);
    (trace, [d1, d2], [s1, s2])
}

#[test]
fn sibling_location_relation_holds() {
    // The paper's §5.3.2 relation: a signal observed at bin a in packet
    // i's vector appears at a + shift(i→k) in packet k's — verify against
    // actual signal vectors.
    let p = params();
    let l = p.samples_per_symbol();
    let (trace, dets, truth) = two_packet_setup(3, (10.0, 10.0), (1500.0, -2000.0), 15 * l + 640);
    let demod = Demodulator::new(p);
    let ants: Vec<&[tnb_dsp::Complex32]> = vec![trace.samples()];
    let mut scratch = DspScratch::new();
    let mut sig = SigCalc::new(&demod, &ants, &mut scratch);

    // Packet 2's data symbol 0 overlaps packet 1's data symbols 15/16.
    let v2 = sig.symbol_vector(1, &dets[1], 0).unwrap().clone();
    let own_bin = truth[1][0] as i64;
    assert!(
        v2[own_bin as usize] > tnb_dsp::stats::median(&v2) * 20.0,
        "own peak visible"
    );
    let shift = shift_bins(&dets[1], &dets[0], &p);
    let n = p.n() as i64;
    let sib = (own_bin + shift.round() as i64).rem_euclid(n) as usize;
    // The sibling must be visible in one of packet 1's overlapping
    // symbols.
    let mut best = 0.0f32;
    for j in [15isize, 16] {
        if let Some(v1) = sig.symbol_vector(0, &dets[0], j) {
            best = best.max(v1[sib]);
        }
    }
    let med = tnb_dsp::stats::median(sig.symbol_vector(0, &dets[0], 15).unwrap());
    assert!(best > med * 10.0, "sibling {best} vs median {med}");
    // And the sibling is LOWER than the owner's peak (mismatched
    // boundary/CFO) — Thrive's core observation.
    assert!(
        best < v2[own_bin as usize],
        "sibling must be weaker than owner peak"
    );
}

#[test]
fn checkpoint_assigns_true_symbols_in_collision() {
    let p = params();
    let l = p.samples_per_symbol();
    let (trace, dets, truth) = two_packet_setup(4, (12.0, 9.0), (1000.0, -2600.0), 15 * l + 640);
    let demod = Demodulator::new(p);
    let ants: Vec<&[tnb_dsp::Complex32]> = vec![trace.samples()];
    let mut scratch = DspScratch::new();
    let mut sig = SigCalc::new(&demod, &ants, &mut scratch);
    let cfg = ThriveConfig::default();

    // Checkpoint where packet 1 is at symbol 20 and packet 2 at symbol 4.
    let symbols = vec![
        CheckpointSymbol {
            packet: 0,
            symbol: 20,
            masked_bins: vec![],
            bounds: (f32::MAX, 0.0),
        },
        CheckpointSymbol {
            packet: 1,
            symbol: 4,
            masked_bins: vec![],
            bounds: (f32::MAX, 0.0),
        },
    ];
    let assignments = assign_checkpoint(&mut sig, &dets, &symbols, &cfg);
    assert_eq!(assignments.len(), 2);
    for a in &assignments {
        let (pkt, sym) = match a.slot {
            0 => (0usize, 20usize),
            _ => (1, 4),
        };
        assert_eq!(
            a.bin, truth[pkt][sym],
            "packet {pkt} symbol {sym}: assigned {} truth {}",
            a.bin, truth[pkt][sym]
        );
    }
}

#[test]
fn masking_excludes_known_peaks() {
    let p = params();
    let l = p.samples_per_symbol();
    let (trace, dets, truth) = two_packet_setup(5, (14.0, 8.0), (900.0, -1400.0), 15 * l + 640);
    let demod = Demodulator::new(p);
    let ants: Vec<&[tnb_dsp::Complex32]> = vec![trace.samples()];
    let mut scratch = DspScratch::new();
    let mut sig = SigCalc::new(&demod, &ants, &mut scratch);
    let cfg = ThriveConfig::default();

    // Assign packet 2's symbol 4 alone, masking packet 1's (stronger)
    // known symbols at their expected locations. The window overlaps two
    // of packet 1's symbols (19 and 20), so both must be masked. Without
    // the masks the stronger interferer could win; with them, the true
    // peak must.
    let shift = shift_bins(&dets[0], &dets[1], &p);
    let n = p.n() as i64;
    let masked: Vec<i64> = [19usize, 20]
        .iter()
        .map(|&j| (truth[0][j] as i64 + shift.round() as i64).rem_euclid(n))
        .collect();
    let symbols = vec![CheckpointSymbol {
        packet: 1,
        symbol: 4,
        masked_bins: masked,
        bounds: (f32::MAX, 0.0),
    }];
    let assignments = assign_checkpoint(&mut sig, &dets, &symbols, &cfg);
    assert_eq!(assignments.len(), 1);
    assert_eq!(assignments[0].bin, truth[1][4]);
}

#[test]
fn history_model_progression() {
    // The model must follow a slow ramp and keep its band around it.
    let mut h = HistoryModel::new(vec![10.0, 10.5, 11.0, 10.8, 11.3, 11.6, 12.0, 12.2]);
    let cfg = ThriveConfig::default();
    for k in 0..10 {
        let v = 12.5 + k as f32 * 0.4;
        let (up, lo) = h.bounds(&cfg);
        assert!(
            v < up * 1.6 && v > lo * 0.4,
            "step {k}: {v} outside [{lo}, {up}]"
        );
        h.push(v);
    }
    // After the ramp, the band sits near the last values.
    let (up, lo) = h.bounds(&cfg);
    assert!(lo > 8.0, "lower bound {lo}");
    assert!(up < 25.0, "upper bound {up}");
}

#[test]
fn empty_checkpoint_is_empty() {
    let p = params();
    let demod = Demodulator::new(p);
    let samples = vec![tnb_dsp::Complex32::ZERO; 10 * p.samples_per_symbol()];
    let ants: Vec<&[tnb_dsp::Complex32]> = vec![&samples];
    let mut scratch = DspScratch::new();
    let mut sig = SigCalc::new(&demod, &ants, &mut scratch);
    let out = assign_checkpoint(&mut sig, &[], &[], &ThriveConfig::default());
    assert!(out.is_empty());
}
