//! SIC determinism and rescue-regression tests: the near-far collision
//! trace must decode byte-identically across the serial, parallel (any
//! worker count) and streaming (any chunking) receivers with SIC on, and
//! SIC must rescue the weak packet where plain TnB provably fails.

use tnb_channel::trace::{PacketConfig, TraceBuilder};
use tnb_core::streaming::{StreamingConfig, StreamingReceiver};
use tnb_core::{DecodeReport, ParallelReceiver, SicConfig, TnbConfig, TnbReceiver};
use tnb_dsp::Complex32;
use tnb_phy::{CodingRate, LoRaParams, SpreadingFactor};

fn params() -> LoRaParams {
    LoRaParams::new(SpreadingFactor::SF8, CodingRate::CR4)
}

fn sic_on() -> TnbConfig {
    TnbConfig {
        sic: SicConfig {
            enabled: true,
            ..SicConfig::default()
        },
        ..TnbConfig::default()
    }
}

/// Near-far scene: a weak packet whose preamble lands in the middle of a
/// strong collider `delta_db` louder, so the weak preamble is buried at
/// detection time and only subtraction of the strong packet reveals it.
fn near_far_trace(
    p: LoRaParams,
    seed: u64,
    weak_snr_db: f32,
    delta_db: f32,
) -> (Vec<Complex32>, Vec<u8>, Vec<u8>) {
    let l = p.samples_per_symbol();
    let weak_payload = vec![0x57u8; 16];
    let strong_payload = vec![0xA5u8; 16];
    let mut b = TraceBuilder::new(p, seed);
    b.add_packet(
        &strong_payload,
        PacketConfig {
            start_sample: 4_000,
            snr_db: weak_snr_db + delta_db,
            cfo_hz: -1_800.0,
            frac_delay: 0.41,
            node_id: 1,
            ..Default::default()
        },
    );
    b.add_packet(
        &weak_payload,
        PacketConfig {
            start_sample: 4_000 + 3 * l + l / 3,
            snr_db: weak_snr_db,
            cfo_hz: 2_400.0,
            frac_delay: 0.73,
            node_id: 2,
            ..Default::default()
        },
    );
    (b.build().samples().to_vec(), weak_payload, strong_payload)
}

/// Serializes everything a report carries (counts, per-packet outcomes,
/// deterministic stage counters) so byte-equality means full equality.
fn report_json(r: &DecodeReport) -> String {
    format!(
        "{{\"detected\":{},\"decoded\":{},\"second_pass_rescues\":{},\
         \"header_failures\":{},\"payload_failures\":{},\"truncated\":{},\
         \"outcomes\":{},\"stages\":\"{:?}\"}}",
        r.detected,
        r.decoded,
        r.second_pass_rescues,
        r.header_failures,
        r.payload_failures,
        r.truncated,
        r.outcomes_json(),
        r.stages,
    )
}

fn decode_streaming(
    p: LoRaParams,
    trace: &[Complex32],
    chunk: usize,
    workers: usize,
) -> (Vec<Vec<u8>>, DecodeReport) {
    let mut rx = StreamingReceiver::with_config(
        p,
        StreamingConfig {
            receiver: sic_on(),
            workers,
            ..StreamingConfig::default()
        },
    );
    let mut payloads = Vec::new();
    for c in trace.chunks(chunk) {
        payloads.extend(rx.push(c).into_iter().map(|d| d.payload));
    }
    payloads.extend(rx.finish().into_iter().map(|d| d.payload));
    (payloads, rx.report())
}

#[test]
fn near_far_reports_byte_identical_across_receivers() {
    let p = params();
    let (trace, weak, strong) = near_far_trace(p, 42, 3.0, 15.0);

    let (serial_decoded, serial_report) = TnbReceiver::with_config(p, sic_on())
        .decode_multi_report_observed(&[&trace], &tnb_core::PipelineMetrics::disabled());
    let reference = report_json(&serial_report);
    let payloads: Vec<Vec<u8>> = serial_decoded.iter().map(|d| d.payload.clone()).collect();
    assert!(payloads.contains(&weak) && payloads.contains(&strong));

    for workers in [1usize, 2, 8] {
        let (decoded, report) = ParallelReceiver::with_config(p, sic_on(), workers)
            .decode_multi_report_observed(&[&trace], &tnb_core::PipelineMetrics::disabled());
        assert_eq!(report_json(&report), reference, "workers={workers}");
        let par: Vec<Vec<u8>> = decoded.iter().map(|d| d.payload.clone()).collect();
        assert_eq!(par, payloads, "workers={workers}");
    }

    // Streaming: an odd chunk size and a power of two. The trace is
    // shorter than the streaming window, so the whole decode happens in
    // `finish` over the identical buffer — chunking must not matter.
    for chunk in [7_777usize, 65_536] {
        let (payloads_s, report_s) = decode_streaming(p, &trace, chunk, 2);
        assert_eq!(report_json(&report_s), reference, "chunk={chunk}");
        assert_eq!(payloads_s, payloads, "chunk={chunk}");
    }
}

#[test]
fn sic_rescues_where_plain_tnb_fails() {
    let p = params();
    // ΔSNR = 15 dB and up: the weak preamble is buried below the
    // detector's threshold under the strong collider.
    for delta in [15.0f32, 18.0] {
        let (trace, weak, strong) = near_far_trace(p, 42, 3.0, delta);

        let (plain_decoded, plain_report) = TnbReceiver::new(p)
            .decode_multi_report_observed(&[&trace], &tnb_core::PipelineMetrics::disabled());
        assert!(
            !plain_decoded.iter().any(|d| d.payload == weak),
            "plain TnB unexpectedly decodes the weak packet at delta={delta}"
        );
        assert!(plain_decoded.iter().any(|d| d.payload == strong));
        assert_eq!(plain_report.second_pass_rescues, 0);

        let (sic_decoded, sic_report) = TnbReceiver::with_config(p, sic_on())
            .decode_multi_report_observed(&[&trace], &tnb_core::PipelineMetrics::disabled());
        let rescued = sic_decoded
            .iter()
            .find(|d| d.payload == weak)
            .unwrap_or_else(|| panic!("SIC failed to rescue the weak packet at delta={delta}"));
        assert_eq!(rescued.pass, 3, "rescue must be recorded as pass 3");
        assert!(sic_report.second_pass_rescues > 0, "delta={delta}");
        assert!(sic_report.stages.sic_rescues > 0);
        assert!(sic_report.stages.sic_subtracted > 0);
        assert_eq!(
            sic_report.detected,
            sic_report.decoded + sic_report.degraded()
        );
    }
}

#[test]
fn sic_off_is_unchanged_and_clean_traces_match() {
    // On a trace where nothing needs rescuing, SIC-on must be
    // bit-identical to SIC-off (failed re-detections are dropped, decoded
    // packets keep their pass-1 labels).
    let p = params();
    let mut b = TraceBuilder::new(p, 9);
    b.add_packet(
        &[0x11u8; 16],
        PacketConfig {
            start_sample: 5_000,
            snr_db: 12.0,
            cfo_hz: 900.0,
            ..Default::default()
        },
    );
    let trace = b.build().samples().to_vec();
    let (d_off, r_off) = TnbReceiver::new(p)
        .decode_multi_report_observed(&[&trace], &tnb_core::PipelineMetrics::disabled());
    let (d_on, r_on) = TnbReceiver::with_config(p, sic_on())
        .decode_multi_report_observed(&[&trace], &tnb_core::PipelineMetrics::disabled());
    assert_eq!(d_off.len(), d_on.len());
    for (a, b) in d_off.iter().zip(&d_on) {
        assert_eq!(a.payload, b.payload);
        assert_eq!(a.pass, b.pass);
        assert_eq!(a.start, b.start);
    }
    assert_eq!(r_off.outcomes_json(), r_on.outcomes_json());
    assert_eq!(r_on.second_pass_rescues, 0);
}
