//! Integration tests for packet detection and synchronization against
//! synthetic traces with known ground truth.

use tnb_channel::trace::{PacketConfig, TraceBuilder};
use tnb_core::Detector;
use tnb_phy::{CodingRate, LoRaParams, SpreadingFactor};

fn params(sf: SpreadingFactor) -> LoRaParams {
    LoRaParams::new(sf, CodingRate::CR4)
}

/// CFO in cycles/symbol for a given Hz value.
fn cfo_cycles(p: &LoRaParams, hz: f64) -> f64 {
    hz / p.bin_hz()
}

#[test]
fn clean_packet_detected_exactly() {
    let p = params(SpreadingFactor::SF8);
    let mut b = TraceBuilder::new(p, 1).without_noise();
    b.add_packet(
        &[0x55; 16],
        PacketConfig {
            start_sample: 10_000,
            snr_db: 0.0,
            ..Default::default()
        },
    );
    let trace = b.build();
    let det = Detector::new(p);
    let found = det.detect(trace.samples());
    assert_eq!(found.len(), 1, "{found:?}");
    assert!(
        (found[0].start - 10_000.0).abs() <= 2.0,
        "start {}",
        found[0].start
    );
    assert!(
        found[0].cfo_cycles.abs() < 0.2,
        "cfo {}",
        found[0].cfo_cycles
    );
}

#[test]
fn cfo_and_offset_estimated() {
    let p = params(SpreadingFactor::SF8);
    for &(cfo_hz, start, frac) in &[
        (2000.0f64, 7_013usize, 0.0f32),
        (-3500.0, 12_345, 0.5),
        (4880.0, 20_001, 0.25),
        (-4880.0, 9_876, 0.75),
    ] {
        let mut b = TraceBuilder::new(p, 2).without_noise();
        b.add_packet(
            &[0xA7; 16],
            PacketConfig {
                start_sample: start,
                snr_db: 0.0,
                cfo_hz,
                frac_delay: frac,
                ..Default::default()
            },
        );
        let trace = b.build();
        let found = Detector::new(p).detect(trace.samples());
        assert_eq!(found.len(), 1, "cfo={cfo_hz} start={start}");
        let want_cfo = cfo_cycles(&p, cfo_hz);
        assert!(
            (found[0].cfo_cycles - want_cfo).abs() < 0.25,
            "cfo got {} want {want_cfo}",
            found[0].cfo_cycles
        );
        assert!(
            (found[0].start - start as f64).abs() <= 2.0,
            "start got {} want {start}",
            found[0].start
        );
    }
}

#[test]
fn detection_works_at_low_snr() {
    let p = params(SpreadingFactor::SF8);
    let mut b = TraceBuilder::new(p, 3);
    b.add_packet(
        &[0x11; 16],
        PacketConfig {
            start_sample: 30_000,
            snr_db: 0.0,
            cfo_hz: 1200.0,
            ..Default::default()
        },
    );
    let trace = b.build();
    let found = Detector::new(p).detect(trace.samples());
    assert_eq!(found.len(), 1);
    assert!(
        (found[0].start - 30_000.0).abs() <= 3.0,
        "start {}",
        found[0].start
    );
}

#[test]
fn sf10_detection() {
    let p = params(SpreadingFactor::SF10);
    let mut b = TraceBuilder::new(p, 4);
    b.add_packet(
        &[0x3C; 16],
        PacketConfig {
            start_sample: 50_000,
            snr_db: 3.0,
            cfo_hz: -2400.0,
            ..Default::default()
        },
    );
    let trace = b.build();
    let found = Detector::new(p).detect(trace.samples());
    assert_eq!(found.len(), 1);
    assert!((found[0].start - 50_000.0).abs() <= 2.0);
    let want = cfo_cycles(&p, -2400.0);
    assert!((found[0].cfo_cycles - want).abs() < 0.25);
}

#[test]
fn two_colliding_packets_both_detected() {
    let p = params(SpreadingFactor::SF8);
    let mut b = TraceBuilder::new(p, 5);
    let l = p.samples_per_symbol();
    // Second packet starts mid-payload of the first, different CFO.
    b.add_packet(
        &[1; 16],
        PacketConfig {
            start_sample: 5_000,
            snr_db: 6.0,
            cfo_hz: 1500.0,
            ..Default::default()
        },
    );
    b.add_packet(
        &[2; 16],
        PacketConfig {
            start_sample: 5_000 + 20 * l + 371,
            snr_db: 4.0,
            cfo_hz: -2000.0,
            ..Default::default()
        },
    );
    let trace = b.build();
    let found = Detector::new(p).detect(trace.samples());
    assert_eq!(found.len(), 2, "{found:?}");
    assert!((found[0].start - 5_000.0).abs() <= 2.0);
    assert!((found[1].start - (5_000 + 20 * l + 371) as f64).abs() <= 2.0);
}

#[test]
fn overlapping_preambles_detected() {
    // Preambles offset by a few symbols overlap heavily; both must be
    // found (they track at different bins).
    let p = params(SpreadingFactor::SF8);
    let l = p.samples_per_symbol();
    let mut b = TraceBuilder::new(p, 6);
    b.add_packet(
        &[3; 16],
        PacketConfig {
            start_sample: 4_000,
            snr_db: 8.0,
            cfo_hz: 800.0,
            ..Default::default()
        },
    );
    b.add_packet(
        &[4; 16],
        PacketConfig {
            start_sample: 4_000 + 3 * l + 1234,
            snr_db: 8.0,
            cfo_hz: -800.0,
            ..Default::default()
        },
    );
    let trace = b.build();
    let found = Detector::new(p).detect(trace.samples());
    assert_eq!(found.len(), 2, "{found:?}");
}

#[test]
fn pure_noise_produces_no_detections() {
    let p = params(SpreadingFactor::SF8);
    let mut b = TraceBuilder::new(p, 7);
    b.set_min_len(300_000);
    let trace = b.build();
    let found = Detector::new(p).detect(trace.samples());
    assert!(found.is_empty(), "{found:?}");
}

#[test]
fn truncated_preamble_not_detected() {
    // A packet cut off before its downchirps cannot be validated.
    let p = params(SpreadingFactor::SF8);
    let mut b = TraceBuilder::new(p, 8).without_noise();
    b.add_packet(
        &[9; 16],
        PacketConfig {
            start_sample: 1_000,
            snr_db: 0.0,
            ..Default::default()
        },
    );
    let trace = b.build();
    let l = p.samples_per_symbol();
    let cut = &trace.samples()[..1_000 + 9 * l];
    let found = Detector::new(p).detect(cut);
    assert!(found.is_empty(), "{found:?}");
}

#[test]
fn cfo_beyond_limit_rejected() {
    // CFO far outside the allowed range must not produce a (mis-timed)
    // detection: the validation's CFO bound rejects it.
    let p = params(SpreadingFactor::SF8);
    let mut b = TraceBuilder::new(p, 9).without_noise();
    b.add_packet(
        &[5; 16],
        PacketConfig {
            start_sample: 10_000,
            snr_db: 0.0,
            cfo_hz: 20_000.0, // 41 bins ≫ max_cfo_bins = 12
            ..Default::default()
        },
    );
    let trace = b.build();
    let found = Detector::new(p).detect(trace.samples());
    for f in &found {
        // If anything is detected, it must not be wildly mis-timed.
        assert!((f.start - 10_000.0).abs() < p.samples_per_symbol() as f64);
    }
}

#[test]
fn same_bin_preambles_merge_into_one_detection() {
    // Two preambles whose chip offsets and CFOs coincide track at the
    // same scan bin — a documented limitation shared with the paper: at
    // most one of them is detected (never more than two ghosts).
    let p = params(SpreadingFactor::SF8);
    let l = p.samples_per_symbol();
    let mut b = TraceBuilder::new(p, 40);
    b.add_packet(
        &[1; 16],
        PacketConfig {
            start_sample: 4_000,
            snr_db: 10.0,
            ..Default::default()
        },
    );
    // Exactly 3 symbols later: identical boundary alignment, same CFO.
    b.add_packet(
        &[2; 16],
        PacketConfig {
            start_sample: 4_000 + 3 * l,
            snr_db: 10.0,
            ..Default::default()
        },
    );
    let t = b.build();
    let found = Detector::new(p).detect(t.samples());
    assert!((1..=2).contains(&found.len()), "{found:?}");
}

#[test]
fn min_run_config_trades_sensitivity() {
    // A stricter minimum run length must never detect more packets than a
    // looser one.
    use tnb_core::DetectorConfig;
    let p = params(SpreadingFactor::SF8);
    let mut b = TraceBuilder::new(p, 41);
    b.add_packet(
        &[9; 16],
        PacketConfig {
            start_sample: 12_000,
            snr_db: 2.0,
            cfo_hz: 700.0,
            ..Default::default()
        },
    );
    let t = b.build();
    let loose = Detector::with_config(
        p,
        DetectorConfig {
            min_run: 3,
            ..Default::default()
        },
    )
    .detect(t.samples());
    let strict = Detector::with_config(
        p,
        DetectorConfig {
            min_run: 7,
            ..Default::default()
        },
    )
    .detect(t.samples());
    assert!(strict.len() <= loose.len());
    assert_eq!(loose.len(), 1, "loose detector should find the packet");
}
