//! End-to-end TnB receiver tests on synthetic traces.

use tnb_channel::trace::{PacketConfig, TraceBuilder};
use tnb_core::{TnbConfig, TnbReceiver};
use tnb_phy::{CodingRate, LoRaParams, SpreadingFactor};

fn params(sf: SpreadingFactor, cr: CodingRate) -> LoRaParams {
    LoRaParams::new(sf, cr)
}

#[test]
fn single_clean_packet_decodes() {
    let p = params(SpreadingFactor::SF8, CodingRate::CR4);
    let payload: Vec<u8> = (0..16).collect();
    let mut b = TraceBuilder::new(p, 1).without_noise();
    b.add_packet(
        &payload,
        PacketConfig {
            start_sample: 5000,
            snr_db: 0.0,
            ..Default::default()
        },
    );
    let t = b.build();
    let decoded = TnbReceiver::new(p).decode(t.samples());
    assert_eq!(decoded.len(), 1);
    assert_eq!(decoded[0].payload, payload);
    assert_eq!(decoded[0].header.payload_len, 16);
    assert_eq!(decoded[0].pass, 1);
}

#[test]
fn single_noisy_packet_with_cfo_decodes_all_crs() {
    for cr in CodingRate::ALL {
        let p = params(SpreadingFactor::SF8, cr);
        let payload = b"all coding rates".to_vec();
        let mut b = TraceBuilder::new(p, 2);
        b.add_packet(
            &payload,
            PacketConfig {
                start_sample: 9_321,
                snr_db: 6.0,
                cfo_hz: 2500.0,
                frac_delay: 0.3,
                ..Default::default()
            },
        );
        let t = b.build();
        let decoded = TnbReceiver::new(p).decode(t.samples());
        assert_eq!(decoded.len(), 1, "cr={cr:?}");
        assert_eq!(decoded[0].payload, payload, "cr={cr:?}");
    }
}

#[test]
fn two_colliding_packets_decode() {
    let p = params(SpreadingFactor::SF8, CodingRate::CR4);
    let l = p.samples_per_symbol();
    let pay1 = b"packet number 1!".to_vec();
    let pay2 = b"packet number 2?".to_vec();
    let mut b = TraceBuilder::new(p, 3);
    b.add_packet(
        &pay1,
        PacketConfig {
            start_sample: 4_000,
            snr_db: 12.0,
            cfo_hz: 1500.0,
            ..Default::default()
        },
    );
    b.add_packet(
        &pay2,
        PacketConfig {
            start_sample: 4_000 + 17 * l + 613,
            snr_db: 9.0,
            cfo_hz: -2300.0,
            ..Default::default()
        },
    );
    let t = b.build();
    let decoded = TnbReceiver::new(p).decode(t.samples());
    let payloads: Vec<&[u8]> = decoded.iter().map(|d| d.payload.as_slice()).collect();
    assert!(payloads.contains(&pay1.as_slice()), "{payloads:?}");
    assert!(payloads.contains(&pay2.as_slice()), "{payloads:?}");
}

#[test]
fn three_way_collision_sf8() {
    let p = params(SpreadingFactor::SF8, CodingRate::CR3);
    let l = p.samples_per_symbol();
    let mut b = TraceBuilder::new(p, 4);
    let payloads: Vec<Vec<u8>> = (0..3u8)
        .map(|i| {
            let mut v = vec![i; 16];
            v[0] = b'#';
            v
        })
        .collect();
    let offsets = [2_000usize, 2_000 + 11 * l + 300, 2_000 + 23 * l + 1500];
    let snrs = [14.0f32, 10.0, 12.0];
    let cfos = [900.0f64, -1800.0, 3100.0];
    for i in 0..3 {
        b.add_packet(
            &payloads[i],
            PacketConfig {
                start_sample: offsets[i],
                snr_db: snrs[i],
                cfo_hz: cfos[i],
                ..Default::default()
            },
        );
    }
    let t = b.build();
    let decoded = TnbReceiver::new(p).decode(t.samples());
    assert!(
        decoded.len() >= 2,
        "expected at least 2 of 3 collided packets, got {}",
        decoded.len()
    );
}

#[test]
fn disabling_bec_still_decodes_clean_packets() {
    let p = params(SpreadingFactor::SF8, CodingRate::CR4);
    let payload = b"no bec needed...".to_vec();
    let mut b = TraceBuilder::new(p, 5);
    b.add_packet(
        &payload,
        PacketConfig {
            start_sample: 3_000,
            snr_db: 15.0,
            ..Default::default()
        },
    );
    let t = b.build();
    let cfg = TnbConfig {
        use_bec: false,
        ..TnbConfig::default()
    };
    let decoded = TnbReceiver::with_config(p, cfg).decode(t.samples());
    assert_eq!(decoded.len(), 1);
    assert_eq!(decoded[0].payload, payload);
    assert_eq!(decoded[0].rescued_codewords, 0);
}

#[test]
fn empty_trace_decodes_nothing() {
    let p = params(SpreadingFactor::SF8, CodingRate::CR1);
    let mut b = TraceBuilder::new(p, 6);
    b.set_min_len(100_000);
    let t = b.build();
    assert!(TnbReceiver::new(p).decode(t.samples()).is_empty());
}

#[test]
fn truncated_packet_fails_cleanly() {
    let p = params(SpreadingFactor::SF8, CodingRate::CR4);
    let mut b = TraceBuilder::new(p, 7).without_noise();
    b.add_packet(
        &[0xEE; 16],
        PacketConfig {
            start_sample: 1_000,
            snr_db: 0.0,
            ..Default::default()
        },
    );
    let t = b.build();
    // Cut the trace in the middle of the payload.
    let cut = &t.samples()[..1_000 + p.preamble_samples() + 12 * p.samples_per_symbol()];
    let decoded = TnbReceiver::new(p).decode(cut);
    assert!(decoded.is_empty());
}

#[test]
fn snr_estimate_is_reasonable() {
    let p = params(SpreadingFactor::SF8, CodingRate::CR4);
    let mut b = TraceBuilder::new(p, 8);
    b.add_packet(
        &[0x42; 16],
        PacketConfig {
            start_sample: 2_000,
            snr_db: 10.0,
            ..Default::default()
        },
    );
    let t = b.build();
    let decoded = TnbReceiver::new(p).decode(t.samples());
    assert_eq!(decoded.len(), 1);
    assert!(
        (decoded[0].snr_db - 10.0).abs() < 5.0,
        "snr estimate {}",
        decoded[0].snr_db
    );
}

#[test]
fn two_antennas_decode() {
    let p = params(SpreadingFactor::SF10, CodingRate::CR2);
    let payload = b"antenna diversity".to_vec();
    let mut b = TraceBuilder::new(p, 9).with_antennas(2);
    b.add_packet(
        &payload,
        PacketConfig {
            start_sample: 12_000,
            snr_db: 3.0,
            cfo_hz: -900.0,
            ..Default::default()
        },
    );
    let t = b.build();
    let refs: Vec<&[tnb_dsp::Complex32]> = t.antennas.iter().map(|a| a.as_slice()).collect();
    let decoded = TnbReceiver::new(p).decode_multi(&refs);
    assert_eq!(decoded.len(), 1);
    assert_eq!(decoded[0].payload, payload);
}

#[test]
fn decode_report_accounts_for_every_detection() {
    let p = params(SpreadingFactor::SF8, CodingRate::CR4);
    let l = p.samples_per_symbol();
    let mut b = TraceBuilder::new(p, 20);
    // Two healthy packets and one weak one buried under a strong collider.
    b.add_packet(
        &[1; 16],
        PacketConfig {
            start_sample: 2_000,
            snr_db: 14.0,
            cfo_hz: 1000.0,
            ..Default::default()
        },
    );
    b.add_packet(
        &[2; 16],
        PacketConfig {
            start_sample: 2_000 + 14 * l + 500,
            snr_db: 12.0,
            cfo_hz: -1800.0,
            ..Default::default()
        },
    );
    let t = b.build();
    let rx = TnbReceiver::new(p);
    let (decoded, report) = rx.decode_with_report(t.samples());
    assert_eq!(report.detected, 2);
    assert_eq!(report.decoded, decoded.len());
    assert_eq!(
        report.decoded + report.header_failures + report.payload_failures + report.truncated,
        report.detected,
        "{report:?}"
    );
}

#[test]
fn decode_report_flags_truncation() {
    let p = params(SpreadingFactor::SF8, CodingRate::CR4);
    let mut b = TraceBuilder::new(p, 21).without_noise();
    b.add_packet(
        &[7; 16],
        PacketConfig {
            start_sample: 1_000,
            snr_db: 0.0,
            ..Default::default()
        },
    );
    let t = b.build();
    let cut = &t.samples()[..1_000 + p.preamble_samples() + 12 * p.samples_per_symbol()];
    let rx = TnbReceiver::new(p);
    let (decoded, report) = rx.decode_with_report(cut);
    assert!(decoded.is_empty());
    assert_eq!(report.detected, 1);
    assert_eq!(report.truncated, 1, "{report:?}");
}
