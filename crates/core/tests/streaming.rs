//! Streaming receiver vs batch receiver: feeding the same trace in
//! arbitrary chunks must produce the same packets, each exactly once.

use tnb_channel::trace::{PacketConfig, TraceBuilder};
use tnb_core::{StreamingReceiver, TnbReceiver};
use tnb_phy::{CodingRate, LoRaParams, SpreadingFactor};

fn build_trace(seed: u64, n_packets: usize) -> (tnb_channel::trace::Trace, Vec<Vec<u8>>) {
    let p = LoRaParams::new(SpreadingFactor::SF8, CodingRate::CR4);
    let mut b = TraceBuilder::new(p, seed);
    let airtime = b.packet_samples(16);
    let mut payloads = Vec::new();
    for k in 0..n_packets {
        let payload: Vec<u8> = (0..16).map(|i| (k * 31 + i) as u8).collect();
        b.add_packet(
            &payload,
            PacketConfig {
                start_sample: 3_000 + k * (airtime + 40_000),
                snr_db: 9.0 + (k % 3) as f32 * 2.0,
                cfo_hz: -3000.0 + 1200.0 * k as f64,
                ..Default::default()
            },
        );
        payloads.push(payload);
    }
    b.set_min_len(3_000 + n_packets * (airtime + 40_000) + 50_000);
    (b.build(), payloads)
}

fn stream_decode(trace: &[tnb_dsp::Complex32], chunk: usize) -> Vec<Vec<u8>> {
    let p = LoRaParams::new(SpreadingFactor::SF8, CodingRate::CR4);
    let mut rx = StreamingReceiver::new(p);
    let mut out = Vec::new();
    for c in trace.chunks(chunk) {
        out.extend(rx.push(c).into_iter().map(|d| d.payload));
    }
    out.extend(rx.finish().into_iter().map(|d| d.payload));
    out
}

#[test]
fn streaming_matches_batch() {
    let (trace, payloads) = build_trace(31, 5);
    let p = LoRaParams::new(SpreadingFactor::SF8, CodingRate::CR4);
    let batch: Vec<Vec<u8>> = TnbReceiver::new(p)
        .decode(trace.samples())
        .into_iter()
        .map(|d| d.payload)
        .collect();
    assert_eq!(batch.len(), 5, "batch baseline should decode all");
    for chunk in [10_000usize, 77_777, 1_000_000] {
        let streamed = stream_decode(trace.samples(), chunk);
        assert_eq!(streamed.len(), 5, "chunk={chunk}: {streamed:?}");
        for pay in &payloads {
            assert!(streamed.contains(pay), "chunk={chunk} missing {pay:?}");
        }
    }
}

#[test]
fn no_duplicate_emissions_across_windows() {
    let (trace, _) = build_trace(32, 4);
    // Tiny chunks maximise window-boundary crossings.
    let streamed = stream_decode(trace.samples(), 50_000);
    let mut seen = std::collections::HashSet::new();
    for p in &streamed {
        assert!(seen.insert(p.clone()), "duplicate emission of {p:?}");
    }
    assert_eq!(streamed.len(), 4);
}

/// A packet deliberately straddling the first processing boundary must be
/// emitted exactly once, with its absolute start — the overlap region is
/// retried in the next window and deduplicated.
#[test]
fn boundary_straddling_packet_emitted_exactly_once() {
    let p = LoRaParams::new(SpreadingFactor::SF8, CodingRate::CR4);
    let cfg = tnb_core::StreamingConfig::default();
    let max_packet = tnb_phy::Transmitter::new(p).packet_samples(cfg.max_payload);
    // The first decode fires once the buffer reaches the window size;
    // start the packet half an airtime before that boundary.
    let window = cfg.window_factor * max_packet;
    let airtime = tnb_phy::Transmitter::new(p).packet_samples(16);
    let start = window - airtime / 2;
    let payload: Vec<u8> = (0..16).map(|i| 0xC0 ^ i as u8).collect();

    let mut b = TraceBuilder::new(p, 44);
    b.add_packet(
        &payload,
        PacketConfig {
            start_sample: start,
            snr_db: 12.0,
            cfo_hz: 900.0,
            ..Default::default()
        },
    );
    b.set_min_len(window + 2 * airtime);
    let trace = b.build();

    let mut rx = StreamingReceiver::new(p);
    let mut got = Vec::new();
    for c in trace.samples().chunks(40_000) {
        got.extend(rx.push(c));
    }
    got.extend(rx.finish());
    assert_eq!(
        got.len(),
        1,
        "straddling packet must be emitted exactly once"
    );
    assert_eq!(got[0].payload, payload);
    assert!(
        (got[0].start - start as f64).abs() < 3.0,
        "absolute start {} expect {start}",
        got[0].start
    );
}

/// Regression: `finish()` must reset the stream state. A reused receiver
/// previously kept the emitted-packet dedup memory, silently suppressing
/// packets of the next stream that landed near a previous stream's
/// offsets.
#[test]
fn receiver_reusable_after_finish() {
    let (trace, payloads) = build_trace(35, 2);
    let p = LoRaParams::new(SpreadingFactor::SF8, CodingRate::CR4);
    let mut rx = StreamingReceiver::new(p);
    for round in 0..2 {
        let mut got = Vec::new();
        for c in trace.samples().chunks(80_000) {
            got.extend(rx.push(c));
        }
        got.extend(rx.finish());
        assert_eq!(got.len(), 2, "round {round}: {got:?}");
        for pay in &payloads {
            assert!(
                got.iter().any(|d| &d.payload == pay),
                "round {round} missing {pay:?}"
            );
        }
        assert_eq!(rx.position(), 0, "round {round}: position must reset");
    }
    // The cumulative report spans both streams (overlapping windows may
    // decode a packet more than once upstream of emission dedup).
    assert!(rx.report().decoded >= 4, "{:?}", rx.report());
}

/// Regression (satellite of the SIC PR): a rescue decoded in a push
/// window and re-decoded from the retained overlap at `finish` must be
/// counted once in the cumulative report, and a reused receiver must
/// count one rescue per stream — not one per overlapping window.
#[test]
fn reused_receiver_counts_rescues_once_per_stream() {
    let p = LoRaParams::new(SpreadingFactor::SF8, CodingRate::CR4);
    let l = p.samples_per_symbol();
    let cfg = tnb_core::StreamingConfig {
        receiver: tnb_core::TnbConfig {
            sic: tnb_core::SicConfig {
                enabled: true,
                ..tnb_core::SicConfig::default()
            },
            ..tnb_core::TnbConfig::default()
        },
        workers: 2,
        ..Default::default()
    };
    let max_packet = tnb_phy::Transmitter::new(p).packet_samples(cfg.max_payload);
    let window = cfg.window_factor * max_packet;
    let airtime = tnb_phy::Transmitter::new(p).packet_samples(16);
    // Near-far pair near the end of the first processing window: rescued
    // by the push-triggered decode, then re-decoded from the retained
    // overlap when `finish` flushes.
    let strong_start = window - 2 * airtime;
    let weak_payload: Vec<u8> = vec![0x57; 16];
    let strong_payload: Vec<u8> = vec![0xA5; 16];
    let mut b = TraceBuilder::new(p, 46);
    b.add_packet(
        &strong_payload,
        PacketConfig {
            start_sample: strong_start,
            snr_db: 18.0,
            cfo_hz: -1_800.0,
            frac_delay: 0.41,
            node_id: 1,
            ..Default::default()
        },
    );
    b.add_packet(
        &weak_payload,
        PacketConfig {
            start_sample: strong_start + 3 * l + l / 3,
            snr_db: 3.0,
            cfo_hz: 2_400.0,
            frac_delay: 0.73,
            node_id: 2,
            ..Default::default()
        },
    );
    b.set_min_len(window + airtime);
    let trace = b.build();

    let mut rx = tnb_core::StreamingReceiver::with_config(p, cfg);
    for round in 1..=2usize {
        let mut got = Vec::new();
        for c in trace.samples().chunks(60_000) {
            got.extend(rx.push(c).into_iter().map(|d| d.payload));
        }
        got.extend(rx.finish().into_iter().map(|d| d.payload));
        assert!(
            got.contains(&weak_payload) && got.contains(&strong_payload),
            "round {round}: {got:?}"
        );
        assert_eq!(got.len(), 2, "round {round}: each packet exactly once");
        assert_eq!(
            rx.report().second_pass_rescues,
            round,
            "round {round}: one rescue per stream, not per window"
        );
    }
}

#[test]
fn sic_rescue_at_end_of_trace_with_small_chunks_emits_exactly_once() {
    // Regression guard for the SIC-overlap boundary arithmetic: a
    // near-far pair sitting in the trace's *tail* — past the last
    // push-triggered processing window, so only `finish()` ever decodes
    // it — must be emitted exactly once, and the rescue counted exactly
    // once, even when every chunk is far smaller than one packet
    // airtime (many chunk boundaries crossing the retained SIC overlap).
    let p = LoRaParams::new(SpreadingFactor::SF8, CodingRate::CR4);
    let l = p.samples_per_symbol();
    let cfg = tnb_core::StreamingConfig {
        receiver: tnb_core::TnbConfig {
            sic: tnb_core::SicConfig {
                enabled: true,
                ..tnb_core::SicConfig::default()
            },
            ..tnb_core::TnbConfig::default()
        },
        workers: 2,
        ..Default::default()
    };
    let airtime = tnb_phy::Transmitter::new(p).packet_samples(16);
    let strong_start = 6_000;
    let weak_payload: Vec<u8> = vec![0x57; 16];
    let strong_payload: Vec<u8> = vec![0xA5; 16];
    let mut b = TraceBuilder::new(p, 47);
    b.add_packet(
        &strong_payload,
        PacketConfig {
            start_sample: strong_start,
            snr_db: 18.0,
            cfo_hz: -1_800.0,
            frac_delay: 0.41,
            node_id: 1,
            ..Default::default()
        },
    );
    b.add_packet(
        &weak_payload,
        PacketConfig {
            start_sample: strong_start + 3 * l + l / 3,
            snr_db: 3.0,
            cfo_hz: 2_400.0,
            frac_delay: 0.73,
            node_id: 2,
            ..Default::default()
        },
    );
    b.set_min_len(strong_start + 2 * airtime + 20_000);
    let trace = b.build();

    // Chunk sizes straddle awkward boundaries: both far below one
    // airtime, one not a divisor of anything round.
    for chunk in [20_000usize, 33_333] {
        let mut rx = tnb_core::StreamingReceiver::with_config(p, cfg);
        let mut got = Vec::new();
        for c in trace.samples().chunks(chunk) {
            got.extend(rx.push(c).into_iter().map(|d| d.payload));
        }
        got.extend(rx.finish().into_iter().map(|d| d.payload));
        assert!(
            got.contains(&weak_payload) && got.contains(&strong_payload),
            "chunk {chunk}: {got:?}"
        );
        assert_eq!(got.len(), 2, "chunk {chunk}: each packet exactly once");
        assert_eq!(
            rx.report().second_pass_rescues,
            1,
            "chunk {chunk}: the tail rescue must be counted exactly once"
        );
    }
}

#[test]
fn absolute_starts_reported() {
    let (trace, _) = build_trace(33, 3);
    let p = LoRaParams::new(SpreadingFactor::SF8, CodingRate::CR4);
    let mut rx = StreamingReceiver::new(p);
    let mut starts = Vec::new();
    for c in trace.samples().chunks(123_456) {
        starts.extend(rx.push(c).into_iter().map(|d| d.start));
    }
    starts.extend(rx.finish().into_iter().map(|d| d.start));
    starts.sort_by(f64::total_cmp);
    let airtime = tnb_phy::Transmitter::new(p).packet_samples(16);
    for (k, s) in starts.iter().enumerate() {
        let expect = (3_000 + k * (airtime + 40_000)) as f64;
        assert!(
            (s - expect).abs() < 3.0,
            "packet {k}: start {s} expect {expect}"
        );
    }
}
