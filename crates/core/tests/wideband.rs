//! Wideband front-end acceptance: the channelizer + per-channel
//! streaming pipeline must be byte-identical to channelizing a trace
//! offline and decoding each channel with a standalone receiver.

use tnb_channel::trace::{PacketConfig, TraceBuilder};
use tnb_core::{StreamingReceiver, WidebandReceiver};
use tnb_dsp::channelizer::upconvert;
use tnb_dsp::{Channelizer, ChannelizerConfig, Complex32};
use tnb_phy::params::{CodingRate, LoRaParams, SpreadingFactor};

const M: usize = 8;
/// Wideband chunk size; a multiple of `M` so every push emits exactly
/// `CHUNK / M` samples per channel.
const CHUNK: usize = 40_000;

fn params() -> LoRaParams {
    LoRaParams::new(SpreadingFactor::SF8, CodingRate::CR4)
}

/// Synthesizes an 8-channel scene at the wideband (`M×`) rate: one
/// packet on each of channels 1, 4 and 6, each generated at `M×`
/// oversampling (so it occupies one channel's bandwidth) and upconverted
/// to its channel slot. Unit-power noise rides on the first layer only,
/// so the wideband floor stays near 1.
fn wideband_scene() -> (Vec<Complex32>, Vec<(usize, Vec<u8>)>) {
    let mut wide = params();
    wide.osf *= M;
    let expected = vec![
        (1usize, vec![0xA1u8; 12]),
        (4, vec![0x5B; 12]),
        (6, vec![0x3C; 12]),
    ];
    let mut scene: Vec<Complex32> = Vec::new();
    for (i, (c, payload)) in expected.iter().enumerate() {
        let mut b = TraceBuilder::new(wide, 40 + i as u64);
        if i > 0 {
            b = b.without_noise();
        }
        b.add_packet(
            payload,
            PacketConfig {
                start_sample: (6_000 + 11_000 * i) * M,
                snr_db: 25.0,
                ..Default::default()
            },
        );
        let mut layer = b.build().samples().to_vec();
        upconvert(&mut layer, *c, M);
        if scene.len() < layer.len() {
            scene.resize(layer.len(), Complex32::ZERO);
        }
        for (dst, src) in scene.iter_mut().zip(&layer) {
            *dst += *src;
        }
    }
    // Trailing silence so the filterbank's group delay cannot clip the
    // last packet's tail at end of trace.
    scene.resize(scene.len() + 4 * 2048 * M, Complex32::ZERO);
    (scene, expected)
}

#[test]
fn wideband_pipeline_matches_standalone_receivers_bitwise() {
    let (scene, _) = wideband_scene();

    // Wideband pipeline: chunked pushes through the integrated receiver.
    let mut wb = WidebandReceiver::new(params());
    let mut piped = Vec::new();
    for chunk in scene.chunks(CHUNK) {
        piped.extend(wb.push(chunk));
    }
    piped.extend(wb.finish());
    let piped_reports = wb.reports();

    // Reference: channelize the whole scene offline, then decode each
    // extracted narrowband trace with a standalone StreamingReceiver fed
    // at the same per-channel chunk boundaries.
    let mut chan = Channelizer::new(ChannelizerConfig::default());
    let mut traces: Vec<Vec<Complex32>> = vec![Vec::new(); M];
    chan.push(&scene, &mut traces);
    let mut standalone = Vec::new();
    let mut standalone_reports = Vec::new();
    for (c, trace) in traces.iter().enumerate() {
        let mut rx = StreamingReceiver::new(params());
        for chunk in trace.chunks(CHUNK / M) {
            for p in rx.push(chunk) {
                standalone.push((c, p));
            }
        }
        for p in rx.finish() {
            standalone.push((c, p));
        }
        standalone_reports.push(rx.report());
    }

    assert!(!standalone.is_empty(), "reference decoded no packets");
    assert_eq!(piped.len(), standalone.len());
    for (got, (c, want)) in piped.iter().zip(&standalone) {
        assert_eq!(got.channel, *c);
        assert_eq!(got.packet, *want);
    }
    assert_eq!(piped_reports, standalone_reports);
}

#[test]
fn multichannel_scene_decodes_on_the_right_channels() {
    let (scene, expected) = wideband_scene();
    let mut wb = WidebandReceiver::new(params());
    let mut decoded = Vec::new();
    for chunk in scene.chunks(CHUNK) {
        decoded.extend(wb.push(chunk));
    }
    decoded.extend(wb.finish());

    for (c, payload) in &expected {
        assert!(
            decoded
                .iter()
                .any(|d| d.channel == *c && d.packet.payload == *payload),
            "channel {c} did not decode its packet; got {:?}",
            decoded
                .iter()
                .map(|d| (d.channel, d.packet.payload.first().copied()))
                .collect::<Vec<_>>()
        );
    }
    // Nothing decodes on channels that carried no packet.
    let allowed: Vec<usize> = expected.iter().map(|(c, _)| *c).collect();
    for d in &decoded {
        assert!(allowed.contains(&d.channel), "ghost packet: {d:?}");
    }
}
