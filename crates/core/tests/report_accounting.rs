//! Regression tests for the [`DecodeReport`] accounting invariant:
//! `detected == decoded + degraded()` with exactly one outcome per
//! detected packet, across clean decodes, degraded decodes, and merges.

use tnb_channel::trace::{PacketConfig, TraceBuilder};
use tnb_core::{DecodeReport, TnbReceiver};
use tnb_phy::{CodingRate, LoRaParams, SpreadingFactor};

fn params() -> LoRaParams {
    LoRaParams::new(SpreadingFactor::SF8, CodingRate::CR4)
}

#[test]
fn accounting_balances_for_mixed_outcomes() {
    let p = params();
    let l = p.samples_per_symbol();
    let mut b = TraceBuilder::new(p, 33).without_noise();
    b.add_packet(
        &[0x11; 16],
        PacketConfig {
            start_sample: 2_000,
            snr_db: 10.0,
            ..Default::default()
        },
    );
    b.add_packet(
        &[0x22; 16],
        PacketConfig {
            start_sample: 2_000 + 9 * l + 300,
            snr_db: 8.0,
            cfo_hz: 1200.0,
            ..Default::default()
        },
    );
    // A third packet that runs off the end of the trace degrades as
    // truncated, so the report mixes decoded and degraded outcomes.
    b.add_packet(
        &[0x33; 16],
        PacketConfig {
            start_sample: 2_000 + 30 * l,
            snr_db: 10.0,
            ..Default::default()
        },
    );
    let t = b.build();
    let cut = &t.samples()[..2_000 + 30 * l + p.preamble_samples() + 10 * l];
    let rx = TnbReceiver::new(p);
    let (decoded, report) = rx.decode_with_report(cut);
    assert!(report.detected >= 2, "{report:?}");
    assert!(report.accounting_ok(), "{report:?}");
    assert_eq!(report.outcomes.len(), report.detected);
    assert_eq!(report.decoded, decoded.len());
    assert_eq!(report.decoded + report.degraded(), report.detected);
}

#[test]
fn accounting_balances_on_empty_and_clean_traces() {
    let p = params();
    let rx = TnbReceiver::new(p);

    let quiet = vec![tnb_dsp::Complex32::ZERO; 40_000];
    let (_, report) = rx.decode_with_report(&quiet);
    assert_eq!(report.detected, 0);
    assert!(report.accounting_ok(), "{report:?}");

    let mut b = TraceBuilder::new(p, 7).without_noise();
    b.add_packet(
        &[0xA5; 12],
        PacketConfig {
            start_sample: 5_000,
            snr_db: 0.0,
            ..Default::default()
        },
    );
    let t = b.build();
    let (decoded, report) = rx.decode_with_report(t.samples());
    assert_eq!(decoded.len(), 1);
    assert!(report.accounting_ok(), "{report:?}");
}

#[test]
fn outcome_json_carries_per_packet_reasons() {
    use tnb_core::{DecodeOutcome, DegradeReason};
    let decoded = DecodeOutcome::Decoded {
        start: 4000.0,
        pass: 1,
    };
    assert_eq!(
        decoded.to_json(),
        "{\"status\":\"decoded\",\"start\":4000,\"pass\":1}"
    );
    assert_eq!(decoded.start(), 4000.0);
    let degraded = DecodeOutcome::Degraded {
        start: 123.5,
        reason: DegradeReason::Header,
    };
    assert_eq!(
        degraded.to_json(),
        "{\"status\":\"degraded\",\"start\":123.5,\"reason\":\"header\"}"
    );

    let report = DecodeReport {
        detected: 2,
        decoded: 1,
        header_failures: 1,
        outcomes: vec![decoded, degraded],
        ..DecodeReport::default()
    };
    assert!(report.accounting_ok());
    let json = report.to_json();
    assert!(
        json.contains("\"outcomes\":[{\"status\":\"decoded\""),
        "{json}"
    );
    assert!(json.contains("\"reason\":\"header\""), "{json}");
    assert!(json.contains("\"detected\":2"), "{json}");
    assert_eq!(report.outcomes_json().matches("status").count(), 2);
}

#[test]
fn absorb_preserves_accounting() {
    let p = params();
    let rx = TnbReceiver::new(p);
    let mut total = DecodeReport::default();
    assert!(total.accounting_ok());
    for (payload, start) in [(0x0Fu8, 3_000usize), (0xF0, 9_000)] {
        let mut b = TraceBuilder::new(p, 11).without_noise();
        b.add_packet(
            &[payload; 16],
            PacketConfig {
                start_sample: start,
                snr_db: 0.0,
                ..Default::default()
            },
        );
        let t = b.build();
        let (_, report) = rx.decode_with_report(t.samples());
        assert!(report.accounting_ok(), "{report:?}");
        total.absorb(&report);
    }
    assert_eq!(total.detected, 2);
    assert_eq!(total.outcomes.len(), 2);
    assert!(total.accounting_ok(), "{total:?}");
}
