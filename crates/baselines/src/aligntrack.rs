//! `AlignTrack*` — the peak-assignment core of AlignTrack (ICNP'21) as
//! the paper re-implemented it for comparison (§8.2).
//!
//! AlignTrack's observation: a peak is highest when the processing window
//! aligns with the actual symbol. AlignTrack* therefore "considers a peak
//! to be aligned to a symbol if it is higher in this symbol than in other
//! symbols" (paper §8.4): for each candidate peak of a symbol, compare
//! its height against the same signal's height in every other detected
//! packet's (boundary-aligned) signal vectors; a peak aligned to this
//! symbol wins. When several peaks claim alignment (e.g. accidental noise
//! peaks — the failure mode the paper analyses for SF 10), the strongest
//! is taken, an essentially arbitrary choice.
//!
//! Unlike Thrive there is no peak-height history, no matching cost, no
//! joint assignment across symbols and no masking.

use crate::scheme::{drive_baseline, interferers, Scheme, SymbolAssigner};
use tnb_core::packet::{DecodedPacket, DetectedPacket};
use tnb_core::sigcalc::SigCalc;
use tnb_core::thrive::shift_bins;
use tnb_dsp::{find_peaks, Complex32, PeakFinderConfig};
use tnb_phy::params::LoRaParams;

/// The AlignTrack* baseline (optionally decoded with BEC: "AlignTrack*+").
pub struct AlignTrackScheme {
    params: LoRaParams,
    use_bec: bool,
}

impl AlignTrackScheme {
    /// Builds the scheme; `use_bec` selects the `AlignTrack*+` variant.
    pub fn new(params: LoRaParams, use_bec: bool) -> Self {
        AlignTrackScheme { params, use_bec }
    }
}

struct AlignTrackAssigner {
    params: LoRaParams,
}

impl SymbolAssigner for AlignTrackAssigner {
    fn assign(
        &self,
        sig: &mut SigCalc<'_>,
        _antennas: &[&[Complex32]],
        packets: &[DetectedPacket],
        extents: &[(i64, i64)],
        pkt: usize,
        j: isize,
    ) -> Option<(u16, f32)> {
        let params = self.params;
        let n = params.n() as i64;
        let l = params.samples_per_symbol() as i64;
        let w = sig.symbol_start(&packets[pkt], j);
        let own = sig.symbol_vector(pkt, &packets[pkt], j)?.clone();

        let others = interferers(packets, extents, &params, pkt, w);
        let finder = PeakFinderConfig {
            circular: true,
            max_peaks: Some(2 * (others.len() + 1)),
            ..PeakFinderConfig::default()
        };
        let peaks = find_peaks(&own, &finder);
        if peaks.is_empty() {
            // No structure at all: fall back to the raw argmax.
            let (bin, &h) = own.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1))?;
            return Some((bin as u16, h));
        }

        // A peak is aligned with this symbol if it is higher here than at
        // its expected location in every other packet's overlapping
        // symbols.
        let mut aligned: Vec<(i64, f32)> = Vec::new();
        for p in &peaks {
            let mut is_aligned = true;
            'outer: for &q in &others {
                let shift = shift_bins(&packets[pkt], &packets[q], &params);
                let sib = (p.index as i64 + shift.round() as i64).rem_euclid(n) as usize;
                // The other packet's symbol(s) overlapping this window.
                let wq = sig.symbol_start(&packets[q], 0);
                let jq = (w - wq).div_euclid(l);
                for dj in [0isize, 1] {
                    let idx = jq as isize + dj;
                    if let Some(v) = sig.symbol_vector(q, &packets[q], idx) {
                        if v[sib] > p.height {
                            is_aligned = false;
                            break 'outer;
                        }
                    }
                }
            }
            if is_aligned {
                aligned.push((p.index as i64, p.height));
            }
        }

        // Strongest aligned peak; if none claims alignment, strongest peak.
        let pick = aligned
            .into_iter()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .or_else(|| {
                peaks
                    .iter()
                    .map(|p| (p.index as i64, p.height))
                    .max_by(|a, b| a.1.total_cmp(&b.1))
            })?;
        Some((pick.0.rem_euclid(n) as u16, pick.1))
    }
}

impl Scheme for AlignTrackScheme {
    fn name(&self) -> &'static str {
        if self.use_bec {
            "AlignTrack*+"
        } else {
            "AlignTrack*"
        }
    }

    fn decode(&self, antennas: &[&[Complex32]]) -> Vec<DecodedPacket> {
        let assigner = AlignTrackAssigner {
            params: self.params,
        };
        drive_baseline(self.params, self.use_bec, &assigner, antennas)
    }
}
