//! Baseline collision-resolution schemes the paper compares TnB against.
//!
//! - [`lora_phy`]: the standard single-packet LoRa decoder (strongest peak
//!   per symbol), i.e. the `LoRaPHY` baseline.
//! - [`cic`]: Concurrent Interference Cancellation (SIGCOMM'21), which
//!   demodulates each target symbol over sub-windows delimited by the
//!   interferers' symbol boundaries and intersects the surviving peaks.
//! - [`aligntrack`]: `AlignTrack*`, the peak-assignment core of AlignTrack
//!   (ICNP'21) as re-implemented by the paper: a peak belongs to the packet
//!   in whose (boundary-aligned) signal vector it is highest.
//!
//! All schemes implement the [`Scheme`] trait; each peak-assignment scheme
//! can be decoded with the default Hamming decoder or composed with BEC
//! (the paper's `CIC+` / `AlignTrack*+`).

pub mod aligntrack;
pub mod cic;
pub mod lora_phy;
pub mod scheme;

pub use scheme::{Scheme, SchemeKind};
