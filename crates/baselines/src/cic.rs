//! CIC — Concurrent Interference Cancellation (SIGCOMM'21), the paper's
//! main comparison scheme.
//!
//! Core mechanism (re-implemented per DESIGN.md): to demodulate one
//! symbol of the target packet, the symbol window is cut into
//! *sub-windows* at the symbol boundaries of every interfering packet.
//! The target's de-chirped tone is present in **every** sub-window
//! (alias folding maps both sides of its cyclic wrap to the same bin),
//! while an interferer's tone changes bins across its own boundary.
//! Candidate peaks therefore come from the full window (keeping its
//! processing gain); each candidate is scored by its *worst* normalised
//! height across the sub-windows, peaks failing the intersection are
//! dropped, and the strongest survivor wins.

use crate::scheme::{drive_baseline, interferers, Scheme, SymbolAssigner};
use tnb_core::packet::{DecodedPacket, DetectedPacket};
use tnb_core::sigcalc::SigCalc;
use tnb_dsp::{Complex32, FftPlan};
use tnb_phy::chirp::ChirpTable;
use tnb_phy::params::LoRaParams;

/// The CIC baseline (optionally decoded with BEC: "CIC+").
pub struct CicScheme {
    params: LoRaParams,
    use_bec: bool,
}

impl CicScheme {
    /// Builds the scheme; `use_bec` selects the `CIC+` variant.
    pub fn new(params: LoRaParams, use_bec: bool) -> Self {
        CicScheme { params, use_bec }
    }
}

struct CicAssigner {
    params: LoRaParams,
    chirps: ChirpTable,
    plan: FftPlan,
    /// Minimum sub-window length in samples (slivers carry no usable
    /// spectral information).
    min_segment: usize,
}

impl CicAssigner {
    fn new(params: LoRaParams) -> Self {
        let l = params.samples_per_symbol();
        CicAssigner {
            chirps: ChirpTable::new(&params),
            plan: FftPlan::new(l),
            params,
            min_segment: l / 16,
        }
    }

    /// Folded power spectrum of the de-chirped window restricted to
    /// `[a, b)` (zero elsewhere).
    fn segment_spectrum(&self, dechirped: &[Complex32], a: usize, b: usize) -> Vec<f32> {
        let l = dechirped.len();
        let n = self.params.n();
        let mut buf = vec![Complex32::ZERO; l];
        buf[a..b].copy_from_slice(&dechirped[a..b]);
        self.plan.forward(&mut buf);
        (0..n)
            .map(|k| {
                let m = buf[k].abs() + buf[l - n + k].abs();
                m * m
            })
            .collect()
    }
}

impl SymbolAssigner for CicAssigner {
    fn assign(
        &self,
        sig: &mut SigCalc<'_>,
        antennas: &[&[Complex32]],
        packets: &[DetectedPacket],
        extents: &[(i64, i64)],
        pkt: usize,
        j: isize,
    ) -> Option<(u16, f32)> {
        let params = self.params;
        let l = params.samples_per_symbol();
        let w = sig.symbol_start(&packets[pkt], j);
        if w < 0 {
            return None;
        }
        let w = w as usize;
        let trace = antennas[0];
        if w + l > trace.len() {
            return None;
        }

        // De-chirp the full window with the target's CFO removed.
        let cfo = packets[pkt].cfo_cycles;
        let step = -2.0 * std::f64::consts::PI * cfo / l as f64;
        let dechirped: Vec<Complex32> = trace[w..w + l]
            .iter()
            .zip(self.chirps.downchirp())
            .enumerate()
            .map(|(i, (s, d))| *s * *d * Complex32::from_phase(step * i as f64))
            .collect();

        // Cut points: every interferer symbol boundary inside the window.
        // Interferers have two boundary grids (preamble grid and the data
        // grid, offset by the 0.25-symbol tail of the downchirps); both
        // are added — a spurious cut only splits a consistent segment.
        let others = interferers(packets, extents, &params, pkt, w as i64);
        let mut cuts: Vec<usize> = Vec::new();
        for &q in &others {
            let pre = packets[q].start;
            let data = pre + params.preamble_symbols() * l as f64;
            for grid in [pre, data] {
                let off = (grid - w as f64).rem_euclid(l as f64).round() as usize;
                if off >= self.min_segment && off + self.min_segment <= l {
                    cuts.push(off);
                }
            }
        }
        cuts.sort_unstable();
        cuts.dedup();

        let full = self.segment_spectrum(&dechirped, 0, l);
        if cuts.is_empty() {
            // No interference: ordinary demodulation of the full window.
            let (bin, &h) = full.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1))?;
            return Some((bin as u16, h));
        }

        // CIC proper: candidate peaks come from the full window (keeping
        // its processing gain); each candidate's *consistency score* is
        // its worst normalised height across the sub-windows. Peaks
        // present in every sub-window (the paper's intersection) keep a
        // high score; an interferer's peak collapses in the sub-windows
        // beyond its symbol boundary.
        let n = params.n();
        let finder = tnb_dsp::PeakFinderConfig {
            circular: true,
            max_peaks: Some(2 * (others.len() + 2)),
            ..tnb_dsp::PeakFinderConfig::default()
        };
        let peaks = tnb_dsp::find_peaks(&full, &finder);
        if peaks.is_empty() {
            let (bin, &h) = full.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1))?;
            return Some((bin as u16, h));
        }
        let mut scores = vec![f32::INFINITY; peaks.len()];
        let mut seg_start = 0usize;
        let mut segments = cuts.clone();
        segments.push(l);
        for &end in &segments {
            if end - seg_start >= self.min_segment {
                let y = self.segment_spectrum(&dechirped, seg_start, end);
                let max = y.iter().copied().fold(f32::MIN_POSITIVE, f32::max);
                for (pi, p) in peaks.iter().enumerate() {
                    // Short segments blur peaks; accept the best value
                    // within ±1 bin.
                    let v = (-1i64..=1)
                        .map(|d| y[(p.index as i64 + d).rem_euclid(n as i64) as usize])
                        .fold(0.0f32, f32::max);
                    scores[pi] = scores[pi].min(v / max);
                }
            }
            seg_start = end;
        }
        // Peaks surviving the intersection (score above a fraction of the
        // best score); among them the strongest full-window peak wins.
        let best_score = scores.iter().copied().fold(0.0f32, f32::max);
        let surviving: Vec<usize> = (0..peaks.len())
            .filter(|&pi| scores[pi] >= best_score * 0.5)
            .collect();
        let pick = surviving
            .into_iter()
            .max_by(|&a, &b| peaks[a].height.total_cmp(&peaks[b].height))?;
        Some((peaks[pick].index as u16, peaks[pick].height))
    }
}

impl Scheme for CicScheme {
    fn name(&self) -> &'static str {
        if self.use_bec {
            "CIC+"
        } else {
            "CIC"
        }
    }

    fn decode(&self, antennas: &[&[Complex32]]) -> Vec<DecodedPacket> {
        let assigner = CicAssigner::new(self.params);
        drive_baseline(self.params, self.use_bec, &assigner, antennas)
    }
}
