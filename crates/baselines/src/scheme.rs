//! The common scheme interface and the shared baseline driver.
//!
//! CIC and AlignTrack* are *peak assignment* algorithms: they pick one
//! peak (symbol value) per symbol of each detected packet. Everything
//! around that — detection, header decode, payload decode — is shared, so
//! the driver here handles it, parameterised by a [`SymbolAssigner`].
//! Detection always uses TnB's detector: the paper does the same ("the
//! packet detection algorithm in TnB … also lends the benefit of the
//! fractional CFO information to AlignTrack").
//!
//! Each assigner can be decoded with the default Hamming decoder or with
//! BEC — the paper's `CIC+` and `AlignTrack*+` variants.

use tnb_core::bec;
use tnb_core::detect::Detector;
use tnb_core::packet::{DecodedPacket, DetectedPacket};
use tnb_core::receiver::{TnbConfig, TnbReceiver};
use tnb_core::sigcalc::{snr_from_peak_db, SigCalc};
use tnb_core::thrive::ThriveConfig;
use tnb_core::{DecodeReport, ParallelReceiver, PipelineMetrics};
use tnb_dsp::{Complex32, DspScratch};
use tnb_phy::decoder as phy_decoder;
use tnb_phy::header::Header;
use tnb_phy::params::LoRaParams;

/// A collision-resolution scheme: decodes a (multi-antenna) trace into
/// packets.
pub trait Scheme {
    /// Short name for tables/plots.
    fn name(&self) -> &'static str;
    /// Decodes the trace.
    fn decode(&self, antennas: &[&[Complex32]]) -> Vec<DecodedPacket>;

    /// Convenience for single-antenna traces.
    fn decode_single(&self, samples: &[Complex32]) -> Vec<DecodedPacket> {
        self.decode(&[samples])
    }

    /// Decodes the trace with up to `workers` threads. Schemes with a
    /// parallel pipeline (TnB) override this; the default ignores the
    /// hint and decodes serially, so results are identical either way.
    fn decode_with_workers(&self, antennas: &[&[Complex32]], workers: usize) -> Vec<DecodedPacket> {
        let _ = workers;
        self.decode(antennas)
    }

    /// Decodes the trace while recording pipeline observability into
    /// `metrics`. TnB-family schemes run their instrumented pipeline and
    /// return the per-trace [`DecodeReport`]; the default (baselines
    /// without an instrumented pipeline) decodes normally, records
    /// nothing, and returns `None`.
    fn decode_observed(
        &self,
        antennas: &[&[Complex32]],
        workers: usize,
        metrics: &PipelineMetrics,
    ) -> (Vec<DecodedPacket>, Option<DecodeReport>) {
        let _ = metrics;
        (self.decode_with_workers(antennas, workers), None)
    }
}

/// Every scheme evaluated in the paper, constructible by name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchemeKind {
    /// Full TnB (Thrive + BEC, two passes).
    Tnb,
    /// TnB with the SIC rescue pass (reconstruct-and-subtract decoded
    /// packets, re-decode the residual); an extension beyond the paper.
    TnbSic,
    /// TnB without BEC (paper Fig. 15 "Thrive").
    Thrive,
    /// Thrive without the history cost (paper Fig. 15 "Sibling").
    Sibling,
    /// Standard LoRa decoder (strongest peak, default Hamming decoder).
    LoRaPhy,
    /// Concurrent Interference Cancellation.
    Cic,
    /// CIC decoded with BEC (paper Fig. 19 "CIC+").
    CicBec,
    /// AlignTrack* (peak-assignment core of AlignTrack).
    AlignTrack,
    /// AlignTrack* decoded with BEC (paper Fig. 19 "AlignTrack*+").
    AlignTrackBec,
}

impl SchemeKind {
    /// All schemes.
    pub const ALL: [SchemeKind; 9] = [
        SchemeKind::Tnb,
        SchemeKind::TnbSic,
        SchemeKind::Thrive,
        SchemeKind::Sibling,
        SchemeKind::LoRaPhy,
        SchemeKind::Cic,
        SchemeKind::CicBec,
        SchemeKind::AlignTrack,
        SchemeKind::AlignTrackBec,
    ];

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            SchemeKind::Tnb => "TnB",
            SchemeKind::TnbSic => "TnB+SIC",
            SchemeKind::Thrive => "Thrive",
            SchemeKind::Sibling => "Sibling",
            SchemeKind::LoRaPhy => "LoRaPHY",
            SchemeKind::Cic => "CIC",
            SchemeKind::CicBec => "CIC+",
            SchemeKind::AlignTrack => "AlignTrack*",
            SchemeKind::AlignTrackBec => "AlignTrack*+",
        }
    }

    /// Builds the scheme for a parameter set.
    pub fn build(self, params: LoRaParams) -> Box<dyn Scheme> {
        match self {
            SchemeKind::Tnb => Box::new(TnbScheme::new(params, TnbConfig::default(), "TnB")),
            SchemeKind::TnbSic => Box::new(TnbScheme::new(
                params,
                TnbConfig {
                    sic: tnb_core::SicConfig {
                        enabled: true,
                        ..tnb_core::SicConfig::default()
                    },
                    ..TnbConfig::default()
                },
                "TnB+SIC",
            )),
            SchemeKind::Thrive => Box::new(TnbScheme::new(
                params,
                TnbConfig {
                    use_bec: false,
                    ..TnbConfig::default()
                },
                "Thrive",
            )),
            SchemeKind::Sibling => Box::new(TnbScheme::new(
                params,
                TnbConfig {
                    use_bec: false,
                    thrive: ThriveConfig {
                        use_history: false,
                        ..ThriveConfig::default()
                    },
                    ..TnbConfig::default()
                },
                "Sibling",
            )),
            SchemeKind::LoRaPhy => Box::new(crate::lora_phy::LoRaPhyScheme::new(params)),
            SchemeKind::Cic => Box::new(crate::cic::CicScheme::new(params, false)),
            SchemeKind::CicBec => Box::new(crate::cic::CicScheme::new(params, true)),
            SchemeKind::AlignTrack => {
                Box::new(crate::aligntrack::AlignTrackScheme::new(params, false))
            }
            SchemeKind::AlignTrackBec => {
                Box::new(crate::aligntrack::AlignTrackScheme::new(params, true))
            }
        }
    }
}

/// TnB-family schemes wrap the receiver directly.
struct TnbScheme {
    rx: TnbReceiver,
    params: LoRaParams,
    cfg: TnbConfig,
    name: &'static str,
}

impl TnbScheme {
    fn new(params: LoRaParams, cfg: TnbConfig, name: &'static str) -> Self {
        TnbScheme {
            rx: TnbReceiver::with_config(params, cfg),
            params,
            cfg,
            name,
        }
    }
}

impl Scheme for TnbScheme {
    fn name(&self) -> &'static str {
        self.name
    }
    fn decode(&self, antennas: &[&[Complex32]]) -> Vec<DecodedPacket> {
        self.rx.decode_multi(antennas)
    }
    fn decode_with_workers(&self, antennas: &[&[Complex32]], workers: usize) -> Vec<DecodedPacket> {
        if workers <= 1 {
            return self.decode(antennas);
        }
        ParallelReceiver::with_config(self.params, self.cfg, workers).decode_multi(antennas)
    }
    fn decode_observed(
        &self,
        antennas: &[&[Complex32]],
        workers: usize,
        metrics: &PipelineMetrics,
    ) -> (Vec<DecodedPacket>, Option<DecodeReport>) {
        let (decoded, report) = if workers <= 1 {
            self.rx.decode_multi_report_observed(antennas, metrics)
        } else {
            ParallelReceiver::with_config(self.params, self.cfg, workers)
                .decode_multi_report_observed(antennas, metrics)
        };
        (decoded, Some(report))
    }
}

/// Chooses one symbol value per (packet, symbol) for a baseline scheme.
pub trait SymbolAssigner {
    /// Returns the assigned bin (symbol value) and its peak height for
    /// data symbol `j` of packet `pkt`, or `None` if the window is
    /// unavailable. `extents[q] = (data_start, end_sample)` describes when
    /// each detected packet transmits data (used to find interferers).
    // The assigner sees the full multi-packet picture by design; bundling
    // the arguments would just move the width into a one-off struct.
    #[allow(clippy::too_many_arguments)]
    fn assign(
        &self,
        sig: &mut SigCalc<'_>,
        antennas: &[&[Complex32]],
        packets: &[DetectedPacket],
        extents: &[(i64, i64)],
        pkt: usize,
        j: isize,
    ) -> Option<(u16, f32)>;
}

/// The shared baseline pipeline: detect → assign header symbols → decode
/// header → assign payload symbols → decode payload (default or BEC).
pub(crate) fn drive_baseline<A: SymbolAssigner>(
    params: LoRaParams,
    use_bec: bool,
    assigner: &A,
    antennas: &[&[Complex32]],
) -> Vec<DecodedPacket> {
    assert!(!antennas.is_empty());
    let mut scratch = DspScratch::new();
    let detector = Detector::new(params);
    let detected = detector.detect_with_scratch(antennas[0], &mut scratch);
    let demod = detector.demodulator();
    let mut sig = SigCalc::new(demod, antennas, &mut scratch);
    let l = params.samples_per_symbol() as i64;

    // Provisional extents: headers + a typical 16-byte payload. Replaced
    // by exact extents once each header is decoded.
    let provisional_symbols = tnb_phy::block::data_symbol_count(16, &params) as i64;
    let mut extents: Vec<(i64, i64)> = detected
        .iter()
        .map(|d| {
            let ds = (d.start + params.preamble_symbols() * l as f64).round() as i64;
            (ds, ds + provisional_symbols * l)
        })
        .collect();

    // Pass A: headers. Per packet: (header, candidate header-block extra
    // nibbles, codewords BEC rescued in the header).
    type DecodedHeader = (Header, Vec<Vec<u8>>, usize);
    let mut headers: Vec<Option<DecodedHeader>> = Vec::new();
    for (i, _) in detected.iter().enumerate() {
        let mut syms: Vec<u16> = Vec::with_capacity(LoRaParams::HEADER_SYMBOLS);
        for j in 0..LoRaParams::HEADER_SYMBOLS as isize {
            match assigner.assign(&mut sig, antennas, &detected, &extents, i, j) {
                Some((v, _)) => syms.push(v),
                None => break,
            }
        }
        let decoded = if syms.len() < LoRaParams::HEADER_SYMBOLS {
            None
        } else if use_bec {
            bec::decode_header_with_bec(&syms, &params)
                .map(|(h, extras, stats)| (h, extras, stats.rescued_codewords))
        } else {
            phy_decoder::decode_header(&syms, &params)
                .ok()
                .map(|dh| (dh.header, vec![dh.extra_nibbles], 0))
        };
        if let Some((h, _, _)) = &decoded {
            let mut p = params;
            p.cr = h.cr;
            let n = tnb_phy::block::data_symbol_count(h.payload_len as usize, &p) as i64;
            extents[i].1 = extents[i].0 + n * l;
        }
        headers.push(decoded);
    }

    // Pass B: payloads.
    let mut out = Vec::new();
    for (i, det) in detected.iter().enumerate() {
        let Some((header, extras, mut rescued)) = headers[i].clone() else {
            continue;
        };
        let mut p = params;
        p.cr = header.cr;
        let n_symbols = tnb_phy::block::data_symbol_count(header.payload_len as usize, &p);
        let mut syms: Vec<u16> = Vec::new();
        for j in LoRaParams::HEADER_SYMBOLS as isize..n_symbols as isize {
            match assigner.assign(&mut sig, antennas, &detected, &extents, i, j) {
                Some((v, _)) => syms.push(v),
                None => break,
            }
        }
        if syms.len() + LoRaParams::HEADER_SYMBOLS < n_symbols {
            continue;
        }
        let payload = if use_bec {
            match bec::decode_payload_with_bec(&syms, &header, &extras, &params) {
                Ok(d) => {
                    rescued += d.stats.rescued_codewords;
                    Some(d.payload)
                }
                Err(_) => None,
            }
        } else {
            let mut nibbles = extras.first().cloned().unwrap_or_default();
            for rows in phy_decoder::received_payload_blocks(&syms, &p) {
                nibbles.extend(phy_decoder::default_decode_rows(&rows, p.cr));
            }
            phy_decoder::assemble_payload(&nibbles, header.payload_len as usize).ok()
        };
        if let Some(payload) = payload {
            let snr_db = snr_from_peak_db(det.preamble_peak, params.samples_per_symbol(), 1.0);
            out.push(DecodedPacket {
                payload,
                header,
                start: det.start,
                cfo_cycles: det.cfo_cycles,
                snr_db,
                rescued_codewords: rescued,
                pass: 1,
            });
        }
    }
    out
}

/// Packets (other than `me`) whose data transmission overlaps the window
/// `[w, w + L)`, including their preamble region (a preamble interferes
/// too). Returns their indices.
pub(crate) fn interferers(
    packets: &[DetectedPacket],
    extents: &[(i64, i64)],
    params: &LoRaParams,
    me: usize,
    w: i64,
) -> Vec<usize> {
    let l = params.samples_per_symbol() as i64;
    packets
        .iter()
        .enumerate()
        .filter(|&(q, d)| {
            if q == me {
                return false;
            }
            let begin = d.start.round() as i64;
            let end = extents[q].1;
            begin < w + l && end > w
        })
        .map(|(q, _)| q)
        .collect()
}
