//! The `LoRaPHY` baseline: the standard single-packet LoRa decoder.
//!
//! For each detected packet every symbol is demodulated as the strongest
//! bin of its own signal vector (no collision resolution) and decoded
//! with the default Hamming decoder — what a commodity gateway does.

use crate::scheme::{drive_baseline, Scheme, SymbolAssigner};
use tnb_core::packet::{DecodedPacket, DetectedPacket};
use tnb_core::sigcalc::SigCalc;
use tnb_dsp::Complex32;
use tnb_phy::params::LoRaParams;

/// The standard decoder baseline.
pub struct LoRaPhyScheme {
    params: LoRaParams,
}

impl LoRaPhyScheme {
    /// Builds the baseline for a parameter set.
    pub fn new(params: LoRaParams) -> Self {
        LoRaPhyScheme { params }
    }
}

struct ArgmaxAssigner;

impl SymbolAssigner for ArgmaxAssigner {
    fn assign(
        &self,
        sig: &mut SigCalc<'_>,
        _antennas: &[&[Complex32]],
        packets: &[DetectedPacket],
        _extents: &[(i64, i64)],
        pkt: usize,
        j: isize,
    ) -> Option<(u16, f32)> {
        let v = sig.symbol_vector(pkt, &packets[pkt], j)?;
        let (bin, &h) = v.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1))?;
        Some((bin as u16, h))
    }
}

impl Scheme for LoRaPhyScheme {
    fn name(&self) -> &'static str {
        "LoRaPHY"
    }

    fn decode(&self, antennas: &[&[Complex32]]) -> Vec<DecodedPacket> {
        drive_baseline(self.params, false, &ArgmaxAssigner, antennas)
    }
}
