//! Baseline scheme tests: every scheme must decode clean packets, and the
//! collision-resolution schemes must beat LoRaPHY under collisions.

use tnb_baselines::SchemeKind;
use tnb_channel::trace::{PacketConfig, TraceBuilder};
use tnb_phy::{CodingRate, LoRaParams, SpreadingFactor};

fn params() -> LoRaParams {
    LoRaParams::new(SpreadingFactor::SF8, CodingRate::CR4)
}

#[test]
fn every_scheme_decodes_a_clean_packet() {
    let p = params();
    let payload = b"clean as can be!".to_vec();
    let mut b = TraceBuilder::new(p, 1);
    b.add_packet(
        &payload,
        PacketConfig {
            start_sample: 6_000,
            snr_db: 10.0,
            cfo_hz: 1100.0,
            ..Default::default()
        },
    );
    let t = b.build();
    for kind in SchemeKind::ALL {
        let scheme = kind.build(p);
        let decoded = scheme.decode_single(t.samples());
        assert_eq!(decoded.len(), 1, "{}", scheme.name());
        assert_eq!(decoded[0].payload, payload, "{}", scheme.name());
    }
}

#[test]
fn collision_resolvers_beat_lora_phy_under_collision() {
    let p = params();
    let l = p.samples_per_symbol();
    // Two packets overlapping through most of their payloads.
    let pay1 = b"first payload 01".to_vec();
    let pay2 = b"second payload 2".to_vec();
    let mut b = TraceBuilder::new(p, 2);
    b.add_packet(
        &pay1,
        PacketConfig {
            start_sample: 3_000,
            snr_db: 12.0,
            cfo_hz: 1700.0,
            ..Default::default()
        },
    );
    b.add_packet(
        &pay2,
        PacketConfig {
            start_sample: 3_000 + 15 * l + 777,
            snr_db: 11.0,
            cfo_hz: -2100.0,
            ..Default::default()
        },
    );
    let t = b.build();

    let count = |kind: SchemeKind| kind.build(p).decode_single(t.samples()).len();
    let tnb = count(SchemeKind::Tnb);
    let cic = count(SchemeKind::Cic);
    let at = count(SchemeKind::AlignTrack);
    assert_eq!(tnb, 2, "TnB should resolve both");
    assert!(cic >= 1, "CIC should decode at least one, got {cic}");
    assert!(at >= 1, "AlignTrack* should decode at least one, got {at}");
}

#[test]
fn bec_variants_do_no_worse() {
    let p = LoRaParams::new(SpreadingFactor::SF8, CodingRate::CR3);
    let l = p.samples_per_symbol();
    let mut b = TraceBuilder::new(p, 3);
    for (i, off) in [2_000usize, 2_000 + 13 * l + 555].into_iter().enumerate() {
        b.add_packet(
            &[(i as u8 + 1) * 17; 16],
            PacketConfig {
                start_sample: off,
                snr_db: 8.0 + i as f32,
                cfo_hz: 1000.0 - 2500.0 * i as f64,
                ..Default::default()
            },
        );
    }
    let t = b.build();
    let plain = SchemeKind::Cic.build(p).decode_single(t.samples()).len();
    let plus = SchemeKind::CicBec.build(p).decode_single(t.samples()).len();
    assert!(plus >= plain, "CIC+ {plus} < CIC {plain}");
    let plain = SchemeKind::AlignTrack
        .build(p)
        .decode_single(t.samples())
        .len();
    let plus = SchemeKind::AlignTrackBec
        .build(p)
        .decode_single(t.samples())
        .len();
    assert!(plus >= plain, "AlignTrack*+ {plus} < AlignTrack* {plain}");
}

#[test]
fn scheme_names_are_stable() {
    for kind in SchemeKind::ALL {
        let p = params();
        assert_eq!(kind.build(p).name(), kind.name());
    }
}
