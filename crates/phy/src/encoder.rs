//! Byte/nibble conversions and the full bytes-to-symbols encode path.

use crate::block;
use crate::crc::append_crc16;
use crate::header::Header;
use crate::params::LoRaParams;
use crate::whitening::whiten;

/// Splits bytes into nibbles, low nibble first (LoRa convention).
pub fn bytes_to_nibbles(bytes: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(bytes.len() * 2);
    for &b in bytes {
        out.push(b & 0xF);
        out.push(b >> 4);
    }
    out
}

/// Reassembles nibbles (low first) into bytes. A trailing odd nibble is
/// ignored.
pub fn nibbles_to_bytes(nibbles: &[u8]) -> Vec<u8> {
    nibbles
        .chunks_exact(2)
        .map(|p| (p[0] & 0xF) | (p[1] << 4))
        .collect()
}

/// Encodes a payload into the data symbol values (header block + payload
/// blocks), without the preamble.
///
/// The payload is CRC-16-protected and whitened; the header is neither
/// (paper §3: whitening applies to the payload; the header carries its own
/// checksum).
///
/// # Panics
/// Panics if `payload.len() > 255`.
pub fn encode_packet_symbols(payload: &[u8], params: &LoRaParams) -> Vec<u16> {
    assert!(payload.len() <= 255, "LoRa payload is at most 255 bytes"); // tnb-lint: allow(TNB-PANIC02) -- documented `# Panics` precondition: violating it is a caller bug, not hostile input
    let protected = whiten(&append_crc16(payload));
    let data_nibbles = bytes_to_nibbles(&protected);

    let header = Header {
        payload_len: payload.len() as u8,
        cr: params.cr,
        has_crc: true,
    };
    let mut header_rows: Vec<u8> = header.to_nibbles().to_vec();
    let in_header = block::header_block_payload_nibbles(params);
    let take = in_header.min(data_nibbles.len());
    header_rows.extend_from_slice(&data_nibbles[..take]);

    let mut symbols = block::encode_header_block(&header_rows, params);
    for chunk in data_nibbles[take..].chunks(params.payload_bits_per_symbol()) {
        symbols.extend(block::encode_payload_block(chunk, params));
    }
    symbols
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{CodingRate, SpreadingFactor};

    #[test]
    fn nibble_roundtrip() {
        let bytes: Vec<u8> = (0..=255).collect();
        assert_eq!(nibbles_to_bytes(&bytes_to_nibbles(&bytes)), bytes);
    }

    #[test]
    fn nibble_order_low_first() {
        assert_eq!(bytes_to_nibbles(&[0xAB]), vec![0xB, 0xA]);
    }

    #[test]
    fn odd_trailing_nibble_ignored() {
        assert_eq!(nibbles_to_bytes(&[0x1, 0x2, 0x3]), vec![0x21]);
    }

    #[test]
    fn symbol_count_matches_block_math() {
        for sf in [SpreadingFactor::SF8, SpreadingFactor::SF10] {
            for cr in CodingRate::ALL {
                let p = LoRaParams::new(sf, cr);
                let payload = vec![0x5A; 16];
                let symbols = encode_packet_symbols(&payload, &p);
                assert_eq!(symbols.len(), block::data_symbol_count(16, &p));
            }
        }
    }

    #[test]
    fn symbols_in_range() {
        let p = LoRaParams::new(SpreadingFactor::SF7, CodingRate::CR1);
        let symbols = encode_packet_symbols(b"hello world pad", &p);
        for &s in &symbols {
            assert!(s < 128);
        }
    }

    #[test]
    fn empty_payload_encodes() {
        let p = LoRaParams::new(SpreadingFactor::SF8, CodingRate::CR4);
        let symbols = encode_packet_symbols(&[], &p);
        // 4 nibbles (CRC only): 1 in header block, 3 remaining → 1 block.
        assert_eq!(symbols.len(), 8 + 8);
    }
}
