//! The (8,4) Hamming code used by LoRa (paper §3) and its *default*
//! decoder, plus the code-structure queries BEC builds on (codeword tables,
//! minimum-distance decoding, masked matching, companions).
//!
//! # Bit/column convention
//!
//! The paper writes codewords as rows `c₁ c₂ … c₈` where `c₁..c₄` are the
//! data bits. We store a codeword in a `u8` with paper column `cⱼ` at bit
//! position `j−1` (LSB-first). A data nibble `d` therefore occupies the low
//! 4 bits, and `encode(d) & 0xF == d` (the code is systematic).
//!
//! The generator matrix (paper §3):
//!
//! ```text
//! 1 0 0 0 1 0 1 1
//! 0 1 0 0 1 1 1 0
//! 0 0 1 0 1 1 0 1
//! 0 0 0 1 0 1 1 1
//! ```
//!
//! With CR < 4 only the first `4 + CR` columns are transmitted; CR 1 is
//! special: the single extra bit is the checksum (XOR) of the 4 data bits.

use crate::params::CodingRate;

/// Generator rows as LSB-first column masks: row `i` is the codeword for
/// data nibble `1 << i`.
pub const GENERATOR_ROWS: [u8; 4] = [
    0b1101_0001, // c1, c5, c7, c8
    0b0111_0010, // c2, c5, c6, c7
    0b1011_0100, // c3, c5, c6, c8
    0b1110_1000, // c4, c6, c7, c8
];

/// Encodes a data nibble (low 4 bits) into the full 8-bit codeword.
#[inline]
pub fn encode_full(nibble: u8) -> u8 {
    let mut cw = 0u8;
    for (i, row) in GENERATOR_ROWS.iter().enumerate() {
        if nibble & (1 << i) != 0 {
            cw ^= row;
        }
    }
    cw
}

/// Encodes a nibble into the transmitted codeword for the given coding
/// rate: the first `4 + CR` columns, except CR 1 where the parity column is
/// the checksum of the data bits.
#[inline]
pub fn encode(nibble: u8, cr: CodingRate) -> u8 {
    let nibble = nibble & 0xF;
    match cr {
        CodingRate::CR1 => {
            let parity = (nibble.count_ones() as u8) & 1;
            nibble | (parity << 4)
        }
        _ => encode_full(nibble) & cw_mask(cr),
    }
}

/// Bit mask covering the transmitted columns of a CR's codeword.
#[inline]
pub fn cw_mask(cr: CodingRate) -> u8 {
    ((1u16 << cr.codeword_len()) - 1) as u8
}

/// The 16 transmitted codewords for a coding rate, indexed by data nibble.
pub fn codeword_table(cr: CodingRate) -> [u8; 16] {
    let mut t = [0u8; 16];
    for (d, slot) in t.iter_mut().enumerate() {
        *slot = encode(d as u8, cr);
    }
    t
}

/// Data nibble of a codeword (the code is systematic).
#[inline]
pub fn codeword_data(cw: u8) -> u8 {
    cw & 0xF
}

/// Minimum Hamming distance of the transmitted code at a coding rate.
///
/// CR 1 and CR 2 have distance 2 (1-bit detection); CR 3 has distance 3 and
/// CR 4 distance 4 (1-bit correction), per paper §3.
pub fn min_distance(cr: CodingRate) -> u32 {
    let table = codeword_table(cr);
    let mut best = u32::MAX;
    for i in 0..16 {
        for j in (i + 1)..16 {
            best = best.min((table[i] ^ table[j]).count_ones());
        }
    }
    best
}

/// Result of decoding one received row with the default decoder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DefaultDecode {
    /// Decoded data nibble.
    pub nibble: u8,
    /// The codeword the row was snapped to (the "cleaned" row Γᵢ).
    pub cleaned: u8,
    /// Hamming distance between the received row and the cleaned row.
    pub distance: u32,
}

/// The default LoRa decoder: snap the received row to the closest codeword
/// (minimum Hamming distance; ties broken toward the smallest codeword
/// value — the paper notes the choice is arbitrary).
///
/// This produces the paper's *cleaned block* Γ row by row.
pub fn decode_default(row: u8, cr: CodingRate) -> DefaultDecode {
    let row = row & cw_mask(cr);
    let table = codeword_table(cr);
    let mut best = DefaultDecode {
        nibble: 0,
        cleaned: table[0],
        distance: (row ^ table[0]).count_ones(),
    };
    for (d, &cw) in table.iter().enumerate().skip(1) {
        let dist = (row ^ cw).count_ones();
        if dist < best.distance || (dist == best.distance && cw < best.cleaned) {
            best = DefaultDecode {
                nibble: d as u8,
                cleaned: cw,
                distance: dist,
            };
        }
    }
    best
}

/// Whether a CR-1 row passes its parity check.
#[inline]
pub fn cr1_parity_ok(row: u8) -> bool {
    (row & 0x1F).count_ones().is_multiple_of(2)
}

/// Finds the unique codeword that matches `row` on all columns *not* in
/// `mask` (a bit mask of masked columns). Returns `None` if no codeword
/// matches.
///
/// Uniqueness holds whenever `mask` has fewer set bits than the code's
/// minimum distance, which is the only regime BEC uses (repair method Δ₁).
pub fn codeword_matching_masked(row: u8, mask: u8, cr: CodingRate) -> Option<u8> {
    let keep = cw_mask(cr) & !mask;
    codeword_table(cr)
        .into_iter()
        .find(|cw| (cw ^ row) & keep == 0)
}

/// All *companions* of the column set `cols` (0-indexed) for a coding rate:
/// column sets `Π'`, disjoint from `Π = cols`, such that the indicator
/// vector of `Π ∪ Π'` is a codeword — equivalently, the supports of the
/// minimum-weight (weight = `4 + CR` minus... weight = code minimum
/// distance) codewords containing `Π` (paper §6.2, §A.1). Satisfies
/// `|Π| + |Π'| = min_distance`.
pub fn companions(cols: &[usize], cr: CodingRate) -> Vec<Vec<usize>> {
    let pi_mask: u8 = cols.iter().fold(0u8, |m, &c| m | (1 << c));
    let want_weight = min_distance(cr);
    let mut out = Vec::new();
    for cw in codeword_table(cr) {
        if cw == 0 || cw.count_ones() != want_weight {
            continue;
        }
        if cw & pi_mask == pi_mask {
            let extra = cw & !pi_mask;
            let cols: Vec<usize> = (0..8).filter(|&b| extra & (1 << b) != 0).collect();
            out.push(cols);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::CodingRate::*;

    #[test]
    fn paper_example_data_1001() {
        // Paper §3: data '1001' (d1=1, d4=1) → complete codeword '10011100'
        // = columns {1, 4, 5, 6}.
        let nibble = 0b1001; // d1 at bit 0, d4 at bit 3
        let cw = encode_full(nibble);
        let expected = (1 << 0) | (1 << 3) | (1 << 4) | (1 << 5);
        assert_eq!(cw, expected);
        // CR 3 transmits '1001110' (first 7 columns).
        assert_eq!(encode(nibble, CR3), expected & 0x7F);
    }

    #[test]
    fn systematic() {
        for d in 0..16u8 {
            assert_eq!(encode_full(d) & 0xF, d);
            for cr in CodingRate::ALL {
                assert_eq!(codeword_data(encode(d, cr)), d);
            }
        }
    }

    #[test]
    fn min_distances_match_paper() {
        assert_eq!(min_distance(CR1), 2);
        assert_eq!(min_distance(CR2), 2);
        assert_eq!(min_distance(CR3), 3);
        assert_eq!(min_distance(CR4), 4);
    }

    #[test]
    fn full_code_weight_enumerator() {
        // (8,4) extended Hamming: 1 word of weight 0, 14 of weight 4, 1 of
        // weight 8.
        let mut counts = [0usize; 9];
        for d in 0..16u8 {
            counts[encode_full(d).count_ones() as usize] += 1;
        }
        assert_eq!(counts[0], 1);
        assert_eq!(counts[4], 14);
        assert_eq!(counts[8], 1);
    }

    #[test]
    fn cr1_parity() {
        for d in 0..16u8 {
            assert!(cr1_parity_ok(encode(d, CR1)));
            // Flipping any single bit breaks parity.
            for b in 0..5 {
                assert!(!cr1_parity_ok(encode(d, CR1) ^ (1 << b)));
            }
        }
    }

    #[test]
    fn default_decoder_corrects_single_bit_cr3_cr4() {
        for cr in [CR3, CR4] {
            for d in 0..16u8 {
                let cw = encode(d, cr);
                for b in 0..cr.codeword_len() {
                    let corrupted = cw ^ (1 << b);
                    let r = decode_default(corrupted, cr);
                    assert_eq!(r.nibble, d, "cr={cr:?} d={d} b={b}");
                    assert_eq!(r.cleaned, cw);
                    assert_eq!(r.distance, 1);
                }
            }
        }
    }

    #[test]
    fn default_decoder_clean_input_distance_zero() {
        for cr in CodingRate::ALL {
            for d in 0..16u8 {
                let r = decode_default(encode(d, cr), cr);
                assert_eq!(r.nibble, d);
                assert_eq!(r.distance, 0);
            }
        }
    }

    #[test]
    fn cr2_single_bit_error_cleans_within_one_bit() {
        // Paper §6.5: "a row in R and the corresponding row in Γ differ by
        // at most one bit" for CR 2 (distance-2 code: any row is within 1
        // of some codeword).
        for d in 0..16u8 {
            let cw = encode(d, CR2);
            for b in 0..6 {
                let r = decode_default(cw ^ (1 << b), CR2);
                assert!(r.distance <= 1);
            }
        }
    }

    #[test]
    fn cr4_two_bit_error_cleans_within_two_bits() {
        // Paper §6.7: for CR 4 rows of R and Γ differ by at most two bits.
        for d in 0..16u8 {
            let cw = encode(d, CR4);
            for b1 in 0..8 {
                for b2 in 0..8 {
                    let r = decode_default(cw ^ (1 << b1) ^ (1 << b2), CR4);
                    assert!(r.distance <= 2);
                }
            }
        }
    }

    #[test]
    fn companions_cr2_pairs_match_paper() {
        // Paper §A.1: companion pairs are (c1,c5), (c2,c3), (c4,c6)
        // — 0-indexed: (0,4), (1,2), (3,5).
        assert_eq!(companions(&[0], CR2), vec![vec![4]]);
        assert_eq!(companions(&[4], CR2), vec![vec![0]]);
        assert_eq!(companions(&[1], CR2), vec![vec![2]]);
        assert_eq!(companions(&[3], CR2), vec![vec![5]]);
    }

    #[test]
    fn companions_cr3_of_c2_c7_is_c3() {
        // Paper §6.1 (Fig. 7): the companion of {c2, c7} is {c3}
        // — 0-indexed: companion of {1, 6} is {2}.
        assert_eq!(companions(&[1, 6], CR3), vec![vec![2]]);
        // And symmetric statements from §6.1: c2 is the companion of
        // {c3, c7}; c7 is the companion of {c2, c3}.
        assert_eq!(companions(&[2, 6], CR3), vec![vec![1]]);
        assert_eq!(companions(&[1, 2], CR3), vec![vec![6]]);
    }

    #[test]
    fn companions_cr3_pair_unique() {
        // §A.1: for CR 3 and |Π| = 2 the companion is a single column and
        // unique.
        for a in 0..7 {
            for b in (a + 1)..7 {
                let comps = companions(&[a, b], CR3);
                assert!(comps.len() <= 1, "cols ({a},{b}): {comps:?}");
                if let Some(c) = comps.first() {
                    assert_eq!(c.len(), 1);
                }
            }
        }
    }

    #[test]
    fn companions_cr4_of_c1_c2_matches_paper() {
        // Paper §A.1: companions of {c1,c2} are {c6,c8}, {c3,c5}, {c4,c7}
        // — 0-indexed: {5,7}, {2,4}, {3,6}.
        let mut comps = companions(&[0, 1], CR4);
        comps.sort();
        assert_eq!(comps, vec![vec![2, 4], vec![3, 6], vec![5, 7]]);
    }

    #[test]
    fn companions_cr4_every_pair_has_three() {
        // §A.1: with CR 4 and |Π| = 2, Π has 3 possible companions.
        for a in 0..8 {
            for b in (a + 1)..8 {
                assert_eq!(companions(&[a, b], CR4).len(), 3, "({a},{b})");
            }
        }
    }

    #[test]
    fn companions_cr4_triple_unique() {
        // §A.1: for CR 4 and |Π| = 3 the companion is one column, unique.
        for a in 0..8 {
            for b in (a + 1)..8 {
                for c in (b + 1)..8 {
                    let comps = companions(&[a, b, c], CR4);
                    assert_eq!(comps.len(), 1, "({a},{b},{c})");
                    assert_eq!(comps[0].len(), 1);
                }
            }
        }
    }

    #[test]
    fn masked_match_recovers_codeword() {
        for cr in [CR2, CR3, CR4] {
            let dmin = min_distance(cr);
            for d in 0..16u8 {
                let cw = encode(d, cr);
                // Mask up to dmin-1 columns and corrupt them arbitrarily:
                // the original codeword must be recovered.
                for mask_cols in 0..cr.codeword_len() {
                    let mask = 1u8 << mask_cols;
                    if mask.count_ones() >= dmin {
                        continue;
                    }
                    let corrupted = cw ^ mask;
                    let found = codeword_matching_masked(corrupted, mask, cr);
                    assert_eq!(found, Some(cw));
                }
            }
        }
    }

    #[test]
    fn masked_match_none_when_no_codeword_fits() {
        // Corrupt 2 unmasked columns of a CR4 codeword while masking 1
        // other column: since dmin = 4, no codeword can match.
        let cw = encode(0b0110, CR4);
        let corrupted = cw ^ 0b11; // flip c1, c2
        let mask = 1 << 7; // mask c8
        assert_eq!(codeword_matching_masked(corrupted, mask, CR4), None);
    }
}
