//! LoRa PHY parameters (paper §3 and Table 3).

/// LoRa spreading factor. A symbol carries `SF` bits and spans `2^SF`
/// chips.
///
/// SF 6 is excluded: it requires LoRa's implicit-header mode (the SF−2-row
/// header block cannot hold the 5 header nibbles), which the paper does not
/// evaluate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SpreadingFactor {
    SF7,
    SF8,
    SF9,
    SF10,
    SF11,
    SF12,
}

impl SpreadingFactor {
    /// Numeric spreading factor (7..=12).
    #[inline]
    pub const fn value(self) -> usize {
        match self {
            SpreadingFactor::SF7 => 7,
            SpreadingFactor::SF8 => 8,
            SpreadingFactor::SF9 => 9,
            SpreadingFactor::SF10 => 10,
            SpreadingFactor::SF11 => 11,
            SpreadingFactor::SF12 => 12,
        }
    }

    /// Number of chips per symbol, `2^SF`.
    #[inline]
    pub const fn chips(self) -> usize {
        1 << self.value()
    }

    /// Builds from a numeric value.
    pub fn from_value(v: usize) -> Option<Self> {
        Some(match v {
            7 => SpreadingFactor::SF7,
            8 => SpreadingFactor::SF8,
            9 => SpreadingFactor::SF9,
            10 => SpreadingFactor::SF10,
            11 => SpreadingFactor::SF11,
            12 => SpreadingFactor::SF12,
            _ => return None,
        })
    }

    /// All supported spreading factors, ascending.
    pub const ALL: [SpreadingFactor; 6] = [
        SpreadingFactor::SF7,
        SpreadingFactor::SF8,
        SpreadingFactor::SF9,
        SpreadingFactor::SF10,
        SpreadingFactor::SF11,
        SpreadingFactor::SF12,
    ];
}

/// LoRa coding rate: the number of Hamming parity bits transmitted per
/// 4-data-bit codeword (paper §3). CR 1 transmits a single checksum bit
/// instead of a Hamming parity bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CodingRate {
    CR1,
    CR2,
    CR3,
    CR4,
}

impl CodingRate {
    /// Number of parity bits per codeword (1..=4).
    #[inline]
    pub const fn value(self) -> usize {
        match self {
            CodingRate::CR1 => 1,
            CodingRate::CR2 => 2,
            CodingRate::CR3 => 3,
            CodingRate::CR4 => 4,
        }
    }

    /// Transmitted codeword length, `4 + CR`.
    #[inline]
    pub const fn codeword_len(self) -> usize {
        4 + self.value()
    }

    /// Builds from a numeric value.
    pub fn from_value(v: usize) -> Option<Self> {
        Some(match v {
            1 => CodingRate::CR1,
            2 => CodingRate::CR2,
            3 => CodingRate::CR3,
            4 => CodingRate::CR4,
            _ => return None,
        })
    }

    /// All coding rates, ascending.
    pub const ALL: [CodingRate; 4] = [
        CodingRate::CR1,
        CodingRate::CR2,
        CodingRate::CR3,
        CodingRate::CR4,
    ];
}

/// Complete parameter set for a LoRa link.
///
/// Defaults match the paper's Table 3: 125 kHz bandwidth, over-sampling
/// factor 8 at the receiver (so traces are sampled at 1 Msps, as the
/// paper's USRP B210 recorded).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoRaParams {
    /// Spreading factor.
    pub sf: SpreadingFactor,
    /// Coding rate used by the payload (the header always uses CR 4).
    pub cr: CodingRate,
    /// Signal bandwidth in Hz.
    pub bandwidth: f64,
    /// Over-sampling factor `U`: receiver samples per transmitted chip.
    pub osf: usize,
    /// Low Data Rate Optimization: payload symbols carry `SF − 2` bits
    /// (reduced-rate mapping), making them robust to timing drift over
    /// very long symbols. LoRa mandates it for SF 11/12 at 125 kHz, which
    /// is what [`LoRaParams::new`] applies.
    pub ldro: bool,
}

impl LoRaParams {
    /// Creates parameters with the paper's defaults (BW 125 kHz, OSF 8)
    /// and LoRa's standard LDRO rule (on for symbol times ≥ 16.38 ms,
    /// i.e. SF 11/12 at 125 kHz).
    pub fn new(sf: SpreadingFactor, cr: CodingRate) -> Self {
        let mut p = LoRaParams {
            sf,
            cr,
            bandwidth: 125_000.0,
            osf: 8,
            ldro: false,
        };
        p.ldro = p.symbol_time() >= 16.38e-3;
        p
    }

    /// Bits carried by one payload symbol (`SF`, or `SF − 2` under LDRO).
    #[inline]
    pub fn payload_bits_per_symbol(&self) -> usize {
        if self.ldro {
            self.sf.value() - 2
        } else {
            self.sf.value()
        }
    }

    /// Chips per symbol, `N = 2^SF`.
    #[inline]
    pub fn n(&self) -> usize {
        self.sf.chips()
    }

    /// Receiver samples per symbol, `N · U`.
    #[inline]
    pub fn samples_per_symbol(&self) -> usize {
        self.n() * self.osf
    }

    /// Receiver sample rate in Hz, `BW · U`.
    #[inline]
    pub fn sample_rate(&self) -> f64 {
        self.bandwidth * self.osf as f64
    }

    /// Symbol duration in seconds, `N / BW`.
    #[inline]
    pub fn symbol_time(&self) -> f64 {
        self.n() as f64 / self.bandwidth
    }

    /// FFT-bin spacing expressed in Hz: one bin of the length-`N` signal
    /// vector corresponds to `BW / N` Hz (equivalently `1/T`).
    #[inline]
    pub fn bin_hz(&self) -> f64 {
        self.bandwidth / self.n() as f64
    }

    /// Number of preamble base upchirps (paper §3: "typically starts with 8
    /// upchirps").
    pub const PREAMBLE_UPCHIRPS: usize = 8;
    /// Number of sync symbols after the upchirps.
    pub const SYNC_SYMBOLS: usize = 2;
    /// Sync symbol values: the artifact appendix gives peaks at bins 9 and
    /// 17 in MATLAB's 1-based indexing, i.e. symbol values 8 and 16.
    pub const SYNC_VALUES: [u16; 2] = [8, 16];
    /// Downchirps at the end of the preamble, in symbol units (2.25).
    pub const DOWNCHIRP_SYMBOLS: f64 = 2.25;
    /// PHY header length in symbols (paper §3: 8 symbols at CR 4).
    pub const HEADER_SYMBOLS: usize = 8;

    /// Total preamble length in receiver samples (8 upchirps + 2 sync +
    /// 2.25 downchirps).
    #[inline]
    pub fn preamble_samples(&self) -> usize {
        let l = self.samples_per_symbol();
        (Self::PREAMBLE_UPCHIRPS + Self::SYNC_SYMBOLS) * l + l * 9 / 4
    }

    /// Length of the whole preamble in symbol periods (12.25).
    #[inline]
    pub fn preamble_symbols(&self) -> f64 {
        (Self::PREAMBLE_UPCHIRPS + Self::SYNC_SYMBOLS) as f64 + Self::DOWNCHIRP_SYMBOLS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sf_values() {
        assert_eq!(SpreadingFactor::SF8.value(), 8);
        assert_eq!(SpreadingFactor::SF8.chips(), 256);
        assert_eq!(SpreadingFactor::SF10.chips(), 1024);
        assert_eq!(SpreadingFactor::from_value(9), Some(SpreadingFactor::SF9));
        assert_eq!(SpreadingFactor::from_value(6), None);
        assert_eq!(SpreadingFactor::from_value(13), None);
    }

    #[test]
    fn cr_values() {
        assert_eq!(CodingRate::CR3.value(), 3);
        assert_eq!(CodingRate::CR3.codeword_len(), 7);
        assert_eq!(CodingRate::from_value(4), Some(CodingRate::CR4));
        assert_eq!(CodingRate::from_value(0), None);
    }

    #[test]
    fn ldro_rule_matches_lora_spec() {
        use crate::params::CodingRate::CR4;
        for sf in SpreadingFactor::ALL {
            let p = LoRaParams::new(sf, CR4);
            let expect = sf.value() >= 11; // symbol time ≥ 16.38 ms at 125 kHz
            assert_eq!(p.ldro, expect, "sf={sf:?}");
            assert_eq!(
                p.payload_bits_per_symbol(),
                if expect { sf.value() - 2 } else { sf.value() }
            );
        }
    }

    #[test]
    fn derived_quantities_sf8() {
        let p = LoRaParams::new(SpreadingFactor::SF8, CodingRate::CR4);
        assert_eq!(p.n(), 256);
        assert_eq!(p.samples_per_symbol(), 2048);
        assert_eq!(p.sample_rate(), 1_000_000.0);
        assert!((p.symbol_time() - 2.048e-3).abs() < 1e-9);
        assert!((p.bin_hz() - 488.28125).abs() < 1e-6);
    }

    #[test]
    fn preamble_length() {
        let p = LoRaParams::new(SpreadingFactor::SF8, CodingRate::CR1);
        // 12.25 symbols of 2048 samples = 25088.
        assert_eq!(p.preamble_samples(), 25088);
        assert!((p.preamble_symbols() - 12.25).abs() < 1e-12);
    }
}
