//! Chirp waveform synthesis (paper §3).
//!
//! The base *upchirp* `C` sweeps linearly from `−BW/2` to `+BW/2` over one
//! symbol time `T = N/BW`. A symbol with value `h` is `C` cyclically
//! shifted by `h` chips. The *downchirp* `C'` is the conjugate of `C`.
//!
//! At over-sampling factor `U` the waveforms have `N·U` samples per symbol.
//! Phases are accumulated in `f64` before narrowing to `Complex32`
//! (see `tnb_dsp::complex`).

use crate::params::LoRaParams;
use tnb_dsp::Complex32;

/// Precomputed chirp waveforms for one parameter set. Build once, reuse for
/// every symbol (`ChirpTable` powers both the transmitter and all
/// receivers' de-chirping).
#[derive(Debug, Clone)]
pub struct ChirpTable {
    /// Base upchirp (symbol value 0), length `N·U`.
    upchirp: Vec<Complex32>,
    /// Base downchirp (conjugate of the upchirp).
    downchirp: Vec<Complex32>,
    samples_per_symbol: usize,
    osf: usize,
}

impl ChirpTable {
    /// Builds the chirp table for `params`.
    pub fn new(params: &LoRaParams) -> Self {
        let l = params.samples_per_symbol();
        let n = params.n() as f64;
        let u = params.osf as f64;
        let mut upchirp = Vec::with_capacity(l);
        for i in 0..l {
            // φ(n) = (π/U)·(n²/(N·U) − n): instantaneous frequency sweeps
            // from −BW/2 at n = 0 to +BW/2 at n = N·U.
            let nn = i as f64;
            let phase = std::f64::consts::PI / u * (nn * nn / (n * u) - nn);
            upchirp.push(Complex32::from_phase(phase));
        }
        let downchirp = upchirp.iter().map(|z| z.conj()).collect();
        ChirpTable {
            upchirp,
            downchirp,
            samples_per_symbol: l,
            osf: params.osf,
        }
    }

    /// Samples per symbol (`N·U`).
    #[inline]
    pub fn samples_per_symbol(&self) -> usize {
        self.samples_per_symbol
    }

    /// The base upchirp (symbol value 0).
    #[inline]
    pub fn upchirp(&self) -> &[Complex32] {
        &self.upchirp
    }

    /// The base downchirp.
    #[inline]
    pub fn downchirp(&self) -> &[Complex32] {
        &self.downchirp
    }

    /// Writes the waveform of an upchirp symbol with value `h` into `out`
    /// (cyclic shift of the base upchirp by `h` chips = `h·U` samples).
    pub fn write_symbol(&self, h: u16, out: &mut Vec<Complex32>) {
        let l = self.samples_per_symbol;
        let shift = (h as usize * self.osf) % l;
        out.extend_from_slice(&self.upchirp[shift..]);
        out.extend_from_slice(&self.upchirp[..shift]);
    }

    /// Returns the waveform of an upchirp symbol with value `h`.
    pub fn symbol(&self, h: u16) -> Vec<Complex32> {
        let mut v = Vec::with_capacity(self.samples_per_symbol);
        self.write_symbol(h, &mut v);
        v
    }

    /// Writes `count` whole downchirps plus `extra_samples` samples of one
    /// more downchirp (the preamble ends with 2.25 downchirps).
    pub fn write_downchirps(&self, count: usize, extra_samples: usize, out: &mut Vec<Complex32>) {
        for _ in 0..count {
            out.extend_from_slice(&self.downchirp);
        }
        out.extend_from_slice(&self.downchirp[..extra_samples.min(self.downchirp.len())]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{CodingRate, LoRaParams, SpreadingFactor};
    use tnb_dsp::fft::fft;

    fn params() -> LoRaParams {
        LoRaParams::new(SpreadingFactor::SF8, CodingRate::CR4)
    }

    #[test]
    fn unit_amplitude() {
        let t = ChirpTable::new(&params());
        for &z in t.upchirp() {
            assert!((z.abs() - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn downchirp_is_conjugate() {
        let t = ChirpTable::new(&params());
        for (u, d) in t.upchirp().iter().zip(t.downchirp()) {
            assert_eq!(u.conj(), *d);
        }
    }

    #[test]
    fn dechirped_symbol_peaks_at_its_value() {
        let p = params();
        let t = ChirpTable::new(&p);
        let l = p.samples_per_symbol();
        let n = p.n();
        for &h in &[0u16, 1, 100, 255] {
            let sym = t.symbol(h);
            let dechirped: Vec<_> = sym
                .iter()
                .zip(t.downchirp())
                .map(|(&s, &d)| s * d)
                .collect();
            let spec = fft(&dechirped);
            // Fold the oversampling aliases into N bins.
            let folded: Vec<f32> = (0..n)
                .map(|k| {
                    let m = spec[k].abs() + spec[l - n + k].abs();
                    m * m
                })
                .collect();
            let peak = folded
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .unwrap()
                .0;
            assert_eq!(peak, h as usize, "h={h}");
            // Peak dominance: the peak bin holds most of the energy
            // (leakage from the two truncated tone segments takes the
            // rest).
            let total: f32 = folded.iter().sum();
            assert!(
                folded[peak] / total > 0.5,
                "h={h} frac={}",
                folded[peak] / total
            );
            // Magnitude folding makes peak height h-independent: the peak
            // equals the squared symbol length.
            let expect = (l as f32) * (l as f32);
            assert!((folded[peak] / expect - 1.0).abs() < 0.05, "h={h}");
        }
    }

    #[test]
    fn symbol_is_cyclic_shift() {
        let p = params();
        let t = ChirpTable::new(&p);
        let h = 42u16;
        let sym = t.symbol(h);
        let shift = h as usize * p.osf;
        for (i, &s) in sym.iter().enumerate() {
            let expect = t.upchirp()[(i + shift) % p.samples_per_symbol()];
            assert!((s - expect).abs() < 1e-6);
        }
    }

    #[test]
    fn distinct_symbols_nearly_orthogonal() {
        let p = params();
        let t = ChirpTable::new(&p);
        let a = t.symbol(10);
        let b = t.symbol(200);
        let l = p.samples_per_symbol() as f32;
        let inner: Complex32 = a
            .iter()
            .zip(&b)
            .fold(Complex32::ZERO, |acc, (&x, &y)| acc + x.mul_conj(y));
        assert!(inner.abs() / l < 0.05, "correlation {}", inner.abs() / l);
    }

    #[test]
    fn write_downchirps_fractional() {
        let p = params();
        let t = ChirpTable::new(&p);
        let mut out = Vec::new();
        let quarter = p.samples_per_symbol() / 4;
        t.write_downchirps(2, quarter, &mut out);
        assert_eq!(out.len(), 2 * p.samples_per_symbol() + quarter);
    }
}
