//! Full-packet framing and the [`Transmitter`].
//!
//! A LoRa packet on the air (paper §3 and artifact appendix B.3.4):
//! 8 base upchirps, 2 sync symbols (values 8 and 16), 2.25 downchirps,
//! then the 8 header symbols and the payload symbols.

use crate::chirp::ChirpTable;
use crate::encoder::encode_packet_symbols;
use crate::modulate::modulate_symbols;
use crate::params::LoRaParams;
use tnb_dsp::Complex32;

/// A complete LoRa transmitter for one parameter set.
#[derive(Debug, Clone)]
pub struct Transmitter {
    params: LoRaParams,
    chirps: ChirpTable,
}

impl Transmitter {
    /// Builds a transmitter.
    pub fn new(params: LoRaParams) -> Self {
        Transmitter {
            chirps: ChirpTable::new(&params),
            params,
        }
    }

    /// The parameter set.
    #[inline]
    pub fn params(&self) -> &LoRaParams {
        &self.params
    }

    /// Appends the preamble waveform (8 upchirps + 2 sync + 2.25
    /// downchirps) to `out`.
    pub fn write_preamble(&self, out: &mut Vec<Complex32>) {
        for _ in 0..LoRaParams::PREAMBLE_UPCHIRPS {
            self.chirps.write_symbol(0, out);
        }
        for &sync in &LoRaParams::SYNC_VALUES {
            self.chirps.write_symbol(sync, out);
        }
        let quarter = self.params.samples_per_symbol() / 4;
        self.chirps.write_downchirps(2, quarter, out);
    }

    /// Encodes `payload` and returns the data symbol values (header +
    /// payload blocks), as transmitted after the preamble.
    pub fn data_symbols(&self, payload: &[u8]) -> Vec<u16> {
        encode_packet_symbols(payload, &self.params)
    }

    /// Modulates a complete packet (preamble + data symbols) to baseband
    /// samples at the receiver rate (`BW · OSF`).
    pub fn transmit(&self, payload: &[u8]) -> Vec<Complex32> {
        let symbols = self.data_symbols(payload);
        let mut out = Vec::with_capacity(
            self.params.preamble_samples() + symbols.len() * self.params.samples_per_symbol(),
        );
        self.write_preamble(&mut out);
        modulate_symbols(&self.chirps, &symbols, &mut out);
        out
    }

    /// Total packet duration in samples for a payload of `len` bytes.
    pub fn packet_samples(&self, len: usize) -> usize {
        self.params.preamble_samples()
            + crate::block::data_symbol_count(len, &self.params) * self.params.samples_per_symbol()
    }

    /// Total packet airtime in seconds for a payload of `len` bytes.
    pub fn packet_airtime(&self, len: usize) -> f64 {
        self.packet_samples(len) as f64 / self.params.sample_rate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{CodingRate, SpreadingFactor};

    #[test]
    fn packet_length_matches_prediction() {
        for sf in [SpreadingFactor::SF8, SpreadingFactor::SF10] {
            for cr in CodingRate::ALL {
                let tx = Transmitter::new(LoRaParams::new(sf, cr));
                let payload = vec![7u8; 16];
                let wave = tx.transmit(&payload);
                assert_eq!(wave.len(), tx.packet_samples(16), "sf={sf:?} cr={cr:?}");
            }
        }
    }

    #[test]
    fn airtime_sf10_longer_than_sf8() {
        // Paper §8.3: "the packet duration is longer with SF 10, resulting
        // in more collisions".
        let t8 = Transmitter::new(LoRaParams::new(SpreadingFactor::SF8, CodingRate::CR4));
        let t10 = Transmitter::new(LoRaParams::new(SpreadingFactor::SF10, CodingRate::CR4));
        assert!(t10.packet_airtime(16) > 2.5 * t8.packet_airtime(16));
    }

    #[test]
    fn preamble_is_12_25_symbols() {
        let tx = Transmitter::new(LoRaParams::new(SpreadingFactor::SF7, CodingRate::CR1));
        let mut pre = Vec::new();
        tx.write_preamble(&mut pre);
        let l = tx.params().samples_per_symbol();
        assert_eq!(pre.len() * 4, 49 * l); // 12.25 symbols
    }

    #[test]
    fn unit_amplitude_everywhere() {
        let tx = Transmitter::new(LoRaParams::new(SpreadingFactor::SF7, CodingRate::CR2));
        for z in tx.transmit(b"abc") {
            assert!((z.abs() - 1.0).abs() < 1e-5);
        }
    }
}
