//! The explicit PHY header (paper §3): 8 symbols at CR 4 carrying the
//! payload length, the coding rate of the payload, a CRC-present flag and
//! a checksum. Occupies the first [`HEADER_NIBBLES`] rows of the header
//! block.

use crate::crc::crc8;
use crate::params::CodingRate;

/// Number of nibbles the header content occupies in the header block.
pub const HEADER_NIBBLES: usize = 5;

/// Decoded PHY header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Header {
    /// Payload length in bytes (CRC excluded).
    pub payload_len: u8,
    /// Coding rate of the payload blocks.
    pub cr: CodingRate,
    /// Whether a payload CRC-16 follows the payload.
    pub has_crc: bool,
}

impl Header {
    /// Packs the header into its 5 nibbles:
    /// `[len_hi, len_lo, (has_crc << 3) | cr, chk_hi, chk_lo]` where the
    /// checksum is a CRC-8 over the first 12 content bits (packed into two
    /// bytes).
    pub fn to_nibbles(&self) -> [u8; HEADER_NIBBLES] {
        let len = self.payload_len;
        let flags = ((self.has_crc as u8) << 3) | self.cr.value() as u8;
        let chk = crc8(&[len, flags]);
        [len >> 4, len & 0xF, flags, chk >> 4, chk & 0xF]
    }

    /// Parses and validates 5 header nibbles. Returns `None` if the
    /// checksum fails or the CR field is invalid.
    pub fn from_nibbles(nibbles: &[u8]) -> Option<Header> {
        if nibbles.len() < HEADER_NIBBLES {
            return None;
        }
        let len = (nibbles[0] << 4) | (nibbles[1] & 0xF);
        let flags = nibbles[2] & 0xF;
        let chk = ((nibbles[3] & 0xF) << 4) | (nibbles[4] & 0xF);
        if crc8(&[len, flags]) != chk {
            return None;
        }
        let cr = CodingRate::from_value((flags & 0x7) as usize)?;
        Some(Header {
            payload_len: len,
            cr,
            has_crc: flags & 0x8 != 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_crs_and_lengths() {
        for cr in CodingRate::ALL {
            for len in [0u8, 1, 16, 128, 255] {
                for has_crc in [false, true] {
                    let h = Header {
                        payload_len: len,
                        cr,
                        has_crc,
                    };
                    let n = h.to_nibbles();
                    assert!(n.iter().all(|&x| x < 16));
                    assert_eq!(Header::from_nibbles(&n), Some(h));
                }
            }
        }
    }

    #[test]
    fn corrupted_nibble_fails_checksum() {
        let h = Header {
            payload_len: 16,
            cr: CodingRate::CR3,
            has_crc: true,
        };
        let n = h.to_nibbles();
        for i in 0..HEADER_NIBBLES {
            for flip in 1..16u8 {
                let mut bad = n;
                bad[i] ^= flip;
                // Any corruption must be caught (or decode to the same
                // header, which a nonzero flip of these fields cannot).
                assert_eq!(Header::from_nibbles(&bad), None, "i={i} flip={flip}");
            }
        }
    }

    #[test]
    fn short_input_rejected() {
        assert_eq!(Header::from_nibbles(&[1, 2, 3]), None);
    }

    #[test]
    fn invalid_cr_rejected() {
        // flags nibble with CR field 0 (invalid), consistent checksum.
        let len = 10u8;
        let flags = 0x8; // has_crc set, cr = 0
        let chk = crc8(&[len, flags]);
        let n = [len >> 4, len & 0xF, flags, chk >> 4, chk & 0xF];
        assert_eq!(Header::from_nibbles(&n), None);
    }
}
