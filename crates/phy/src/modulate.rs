//! Symbol-to-waveform modulation: concatenates cyclically shifted upchirps.

use crate::chirp::ChirpTable;
use tnb_dsp::Complex32;

/// Appends the waveform of each symbol in `symbols` to `out`.
pub fn modulate_symbols(table: &ChirpTable, symbols: &[u16], out: &mut Vec<Complex32>) {
    out.reserve(symbols.len() * table.samples_per_symbol());
    for &h in symbols {
        table.write_symbol(h, out);
    }
}

/// Returns the waveform of a symbol sequence.
pub fn modulate(table: &ChirpTable, symbols: &[u16]) -> Vec<Complex32> {
    let mut out = Vec::new();
    modulate_symbols(table, symbols, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{CodingRate, LoRaParams, SpreadingFactor};

    #[test]
    fn length_and_content() {
        let p = LoRaParams::new(SpreadingFactor::SF7, CodingRate::CR4);
        let t = ChirpTable::new(&p);
        let symbols = [0u16, 5, 127];
        let wave = modulate(&t, &symbols);
        assert_eq!(wave.len(), 3 * p.samples_per_symbol());
        let l = p.samples_per_symbol();
        assert_eq!(&wave[l..2 * l], t.symbol(5).as_slice());
    }
}
