//! The diagonal block interleaver (paper §3, Fig. 2).
//!
//! A code block is an `SF × (4+CR)` binary matrix: each of the `SF` rows is
//! a codeword, and each of the `4+CR` columns is carried by one symbol.
//! LoRa additionally applies a diagonal rotation so consecutive rows map to
//! rotated bit positions; the property the paper's BEC relies on — *a
//! corrupted symbol corrupts the same column of every codeword* — holds
//! with or without the rotation, and we keep the rotation for fidelity to
//! real LoRa.
//!
//! The header block uses the *reduced-rate* geometry with `SF − 2` rows.
//!
//! Convention: bit `r` of symbol word `c` carries bit `c` (column `c`) of
//! row `(r + c) mod rows`.

/// Interleaves `rows.len()` codewords (each `cw_len` bits, LSB-first) into
/// `cw_len` symbol words of `rows.len()` bits each.
///
/// # Panics
/// Panics if `rows` is empty or longer than 16 (words are `u16`).
pub fn interleave(rows: &[u8], cw_len: usize) -> Vec<u16> {
    let nrows = rows.len();
    assert!(nrows > 0 && nrows <= 16, "row count {nrows} out of range"); // tnb-lint: allow(TNB-PANIC02) -- documented `# Panics` precondition: violating it is a caller bug, not hostile input
    let mut words = vec![0u16; cw_len];
    for (c, word) in words.iter_mut().enumerate() {
        for r in 0..nrows {
            let src_row = (r + c) % nrows;
            let bit = (rows[src_row] >> c) & 1;
            *word |= (bit as u16) << r;
        }
    }
    words
}

/// Inverse of [`interleave`]: recovers `nrows` codeword rows from `cw_len`
/// symbol words.
///
/// # Panics
/// Panics if `words.len() != cw_len` or `nrows` is out of range.
pub fn deinterleave(words: &[u16], nrows: usize, cw_len: usize) -> Vec<u8> {
    assert_eq!(words.len(), cw_len, "expected {cw_len} symbol words"); // tnb-lint: allow(TNB-PANIC02) -- documented `# Panics` precondition: violating it is a caller bug, not hostile input
    assert!(nrows > 0 && nrows <= 16, "row count {nrows} out of range"); // tnb-lint: allow(TNB-PANIC02) -- documented `# Panics` precondition: violating it is a caller bug, not hostile input
    let mut rows = vec![0u8; nrows];
    for (c, &word) in words.iter().enumerate() {
        for r in 0..nrows {
            let bit = (word >> r) & 1;
            let dst_row = (r + c) % nrows;
            rows[dst_row] |= (bit as u8) << c;
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_various_geometries() {
        // (rows, cw_len) pairs covering payload (SF × 4+CR) and header
        // (SF−2 × 8) geometries.
        for &(nrows, cw_len) in &[(7usize, 5usize), (8, 8), (10, 7), (5, 8), (12, 6), (8, 5)] {
            let rows: Vec<u8> = (0..nrows)
                .map(|r| ((r * 37 + 11) % 256) as u8 & ((1u16 << cw_len) - 1) as u8)
                .collect();
            let words = interleave(&rows, cw_len);
            assert_eq!(words.len(), cw_len);
            for &w in &words {
                assert!(w < (1 << nrows));
            }
            assert_eq!(deinterleave(&words, nrows, cw_len), rows);
        }
    }

    #[test]
    fn corrupted_symbol_corrupts_one_column_of_every_row() {
        // The structural property BEC depends on (paper §6.1): flipping
        // bits of one received *symbol* changes only column `c` of the
        // deinterleaved block.
        let nrows = 8;
        let cw_len = 7;
        let rows: Vec<u8> = (0..nrows).map(|r| (r * 19 + 3) as u8 & 0x7F).collect();
        let mut words = interleave(&rows, cw_len);
        let c = 4;
        words[c] ^= 0b1011_0110 & ((1 << nrows) - 1); // corrupt symbol c
        let got = deinterleave(&words, nrows, cw_len);
        for r in 0..nrows {
            let diff = got[r] ^ rows[r];
            assert!(diff == 0 || diff == 1 << c, "row {r} diff {diff:#b}");
        }
        // And the corruption did land somewhere.
        assert!(got.iter().zip(&rows).any(|(a, b)| a != b));
    }

    #[test]
    fn diagonal_rotation_present() {
        // With only row 0 nonzero, its bits must appear in *different* bit
        // positions of successive symbols (the diagonal).
        let nrows = 4;
        let cw_len = 4;
        let rows = [0b1111u8, 0, 0, 0];
        let words = interleave(&rows, cw_len);
        // Row 0 bit c appears in symbol c at bit position (0 - c) mod nrows.
        for (c, &word) in words.iter().enumerate() {
            let expect_bit = (nrows - c % nrows) % nrows;
            assert_eq!(word, 1 << expect_bit, "c={c}");
        }
    }

    #[test]
    fn zero_block_roundtrip() {
        let rows = vec![0u8; 10];
        let words = interleave(&rows, 8);
        assert!(words.iter().all(|&w| w == 0));
        assert_eq!(deinterleave(&words, 10, 8), rows);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn empty_rows_panics() {
        interleave(&[], 5);
    }
}
