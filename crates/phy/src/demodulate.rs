//! De-chirping and signal-vector computation (paper §3).
//!
//! A received symbol window `β` (length `N·U`) is de-chirped by
//! element-wise multiplication with the downchirp, FFT'd, and the
//! over-sampling aliases folded so the *signal vector*
//! `Y = |FFT(γ)| ⊙ |FFT(γ)|` has `N` bins with the peak at the symbol
//! value `h`.
//!
//! The energy of a symbol with value `h` lands in FFT bins `h` and
//! `N·(U−1) + h` of the length-`N·U` spectrum (the two aliases of the
//! dechirped sinusoid's wrapped frequency); folding sums the squared
//! magnitudes of both.

use crate::chirp::ChirpTable;
use crate::params::LoRaParams;
use tnb_dsp::{simd, Complex32, DspScratch, FftPlan};

/// Fills `rot` with the CFO-removal rotator `e^{-j2π·δ·n/L}` for
/// `n in 0..l` (phase accumulated in `f64`, as everywhere else).
fn fill_rot(l: usize, cfo_cycles: f64, rot: &mut Vec<Complex32>) {
    let step = -2.0 * std::f64::consts::PI * cfo_cycles / l as f64;
    rot.clear();
    rot.extend((0..l).map(|n| Complex32::from_phase(step * n as f64)));
}

/// De-chirps `window` against `chirp` into `out`; with `rot` present the
/// CFO rotator is applied as a second elementwise multiply, preserving
/// the scalar association `(w·d)·rot` bit-for-bit. Both multiplies run
/// on the dispatched SIMD kernel.
fn dechirp_into(
    window: &[Complex32],
    chirp: &[Complex32],
    rot: Option<&[Complex32]>,
    out: &mut Vec<Complex32>,
) {
    out.clear();
    out.resize(window.len().min(chirp.len()), Complex32::ZERO);
    simd::cmul(window, chirp, out);
    if let Some(rot) = rot {
        simd::cmul_assign(out, rot);
    }
}

/// Reusable demodulator: owns the chirp table, FFT plan and scratch buffer
/// for one parameter set.
#[derive(Debug, Clone)]
pub struct Demodulator {
    params: LoRaParams,
    chirps: ChirpTable,
    plan: FftPlan,
}

impl Demodulator {
    /// Builds a demodulator for `params`.
    pub fn new(params: LoRaParams) -> Self {
        let chirps = ChirpTable::new(&params);
        let plan = FftPlan::new(params.samples_per_symbol());
        Demodulator {
            params,
            chirps,
            plan,
        }
    }

    /// The parameter set this demodulator was built for.
    #[inline]
    pub fn params(&self) -> &LoRaParams {
        &self.params
    }

    /// The underlying chirp table (shared with modulation code).
    #[inline]
    pub fn chirps(&self) -> &ChirpTable {
        &self.chirps
    }

    /// De-chirps a symbol window and returns the full complex spectrum of
    /// length `N·U` (the paper's *complex signal vector*, needed by the
    /// phase-coherent synchronization search).
    ///
    /// `cfo_cycles` is the carrier-frequency offset to *remove*, expressed
    /// in cycles per symbol (i.e. in units of `1/T` = one FFT bin).
    ///
    /// # Panics
    /// Panics if `window.len() != N·U`.
    pub fn complex_spectrum(&self, window: &[Complex32], cfo_cycles: f64) -> Vec<Complex32> {
        let l = self.params.samples_per_symbol();
        assert_eq!(window.len(), l, "window must be one symbol long"); // tnb-lint: allow(TNB-PANIC02) -- documented `# Panics` precondition: a wrong-length window is a caller bug, not hostile input
        let mut buf: Vec<Complex32> = Vec::with_capacity(l);
        if cfo_cycles == 0.0 {
            dechirp_into(window, self.chirps.downchirp(), None, &mut buf);
        } else {
            // Remove the CFO: multiply by e^{-j2π·δ·n/(N·U)} where δ is in
            // cycles per symbol.
            let mut rot: Vec<Complex32> = Vec::new();
            fill_rot(l, cfo_cycles, &mut rot);
            dechirp_into(window, self.chirps.downchirp(), Some(&rot), &mut buf);
        }
        self.plan.forward(&mut buf);
        buf
    }

    /// Folds a complex spectrum of length `N·U` into the length-`N` signal
    /// vector `Y[k] = (|F[k]| + |F[N(U−1)+k]|)²`.
    ///
    /// A cyclically shifted chirp de-chirps into *two* tone segments whose
    /// lengths depend on the symbol value `h`; their magnitudes always sum
    /// to the full symbol length, so adding magnitudes before squaring
    /// (as LoRaPHY's reference implementation does) makes the peak height
    /// independent of `h`. Squaring restores the paper's power-like units
    /// `Y = |FFT(γ)| ⊙ |FFT(γ)|`.
    pub fn fold(&self, spectrum: &[Complex32]) -> Vec<f32> {
        let mut out = Vec::new();
        self.fold_into(spectrum, &mut out);
        out
    }

    /// Convenience: signal vector of a symbol window (de-chirp, FFT, fold).
    pub fn signal_vector(&self, window: &[Complex32], cfo_cycles: f64) -> Vec<f32> {
        self.fold(&self.complex_spectrum(window, cfo_cycles))
    }

    /// Complex spectrum of a window de-chirped with the *upchirp* (used
    /// for the preamble's downchirps). A downchirp at offset 0 peaks at
    /// bin 0. The CFO correction has the same sign as for upchirps: the
    /// offset sits on the received signal either way.
    pub fn complex_spectrum_down(&self, window: &[Complex32], cfo_cycles: f64) -> Vec<Complex32> {
        let l = self.params.samples_per_symbol();
        assert_eq!(window.len(), l, "window must be one symbol long"); // tnb-lint: allow(TNB-PANIC02) -- documented `# Panics` precondition: a wrong-length window is a caller bug, not hostile input
                                                                       // The rotator is applied even for a zero CFO (it is exactly 1+0i
                                                                       // there), matching the historical code path bit-for-bit.
        let mut rot: Vec<Complex32> = Vec::new();
        fill_rot(l, cfo_cycles, &mut rot);
        let mut buf: Vec<Complex32> = Vec::with_capacity(l);
        dechirp_into(window, self.chirps.upchirp(), Some(&rot), &mut buf);
        self.plan.forward(&mut buf);
        buf
    }

    /// De-chirps with the *upchirp* instead (used to detect the preamble's
    /// downchirps) and folds. A downchirp at offset 0 peaks at bin 0.
    pub fn signal_vector_down(&self, window: &[Complex32], cfo_cycles: f64) -> Vec<f32> {
        self.fold(&self.complex_spectrum_down(window, cfo_cycles))
    }

    /// Allocation-free [`Self::complex_spectrum`]: de-chirps into
    /// `scratch.cbuf` and FFTs it in place (plan from the scratch's
    /// cache, so one scratch serves demodulators of any size). The
    /// spectrum is left in `scratch.cbuf`.
    ///
    /// Produces bit-identical values to the allocating path.
    // tnb-lint: no_alloc_root -- de-chirp + in-place FFT inside the warm scratch
    pub fn complex_spectrum_scratch(
        &self,
        window: &[Complex32],
        cfo_cycles: f64,
        scratch: &mut DspScratch,
    ) {
        let l = self.params.samples_per_symbol();
        assert_eq!(window.len(), l, "window must be one symbol long"); // tnb-lint: allow(TNB-PANIC02) -- documented `# Panics` precondition: a wrong-length window is a caller bug, not hostile input
        let DspScratch {
            plans, cbuf, crot, ..
        } = scratch;
        if cfo_cycles == 0.0 {
            dechirp_into(window, self.chirps.downchirp(), None, cbuf);
        } else {
            fill_rot(l, cfo_cycles, crot);
            dechirp_into(window, self.chirps.downchirp(), Some(crot), cbuf);
        }
        plans.get(l).forward(cbuf);
    }

    /// Allocation-free [`Self::complex_spectrum_down`]: the upchirp-dechirped
    /// spectrum is left in `scratch.cbuf`.
    // tnb-lint: no_alloc_root -- upchirp de-chirp + in-place FFT inside the warm scratch
    pub fn complex_spectrum_down_scratch(
        &self,
        window: &[Complex32],
        cfo_cycles: f64,
        scratch: &mut DspScratch,
    ) {
        let l = self.params.samples_per_symbol();
        assert_eq!(window.len(), l, "window must be one symbol long"); // tnb-lint: allow(TNB-PANIC02) -- documented `# Panics` precondition: a wrong-length window is a caller bug, not hostile input
        let DspScratch {
            plans, cbuf, crot, ..
        } = scratch;
        fill_rot(l, cfo_cycles, crot);
        dechirp_into(window, self.chirps.upchirp(), Some(crot), cbuf);
        plans.get(l).forward(cbuf);
    }

    /// [`Self::fold`] into a caller-owned buffer (cleared and refilled;
    /// capacity is reused across calls).
    // tnb-lint: no_alloc_root -- fold into a caller-owned buffer, capacity reused
    pub fn fold_into(&self, spectrum: &[Complex32], out: &mut Vec<f32>) {
        let n = self.params.n();
        let l = self.params.samples_per_symbol();
        debug_assert_eq!(spectrum.len(), l);
        out.clear();
        out.resize(n.min(spectrum.len()), 0.0);
        // The two alias segments: bins k and N(U−1)+k. The kernel trims
        // to the common prefix, which is exactly `n` on a well-formed
        // spectrum.
        let back = spectrum.get(l - n..).unwrap_or(spectrum);
        simd::fold_mag(spectrum, back, out);
    }

    /// Allocation-free [`Self::signal_vector`]: de-chirp, FFT and fold
    /// entirely inside `scratch`. The length-`N` signal vector is left in
    /// `scratch.fbuf` (and `scratch.cbuf` holds the complex spectrum).
    // tnb-lint: no_alloc_root -- full symbol path: de-chirp, FFT, fold, all in scratch
    pub fn signal_vector_scratch(
        &self,
        window: &[Complex32],
        cfo_cycles: f64,
        scratch: &mut DspScratch,
    ) {
        self.complex_spectrum_scratch(window, cfo_cycles, scratch);
        let DspScratch { cbuf, fbuf, .. } = scratch;
        self.fold_into(cbuf, fbuf);
    }

    /// Allocation-free [`Self::signal_vector_down`]: result in
    /// `scratch.fbuf`.
    // tnb-lint: no_alloc_root -- downchirp symbol path, all in scratch
    pub fn signal_vector_down_scratch(
        &self,
        window: &[Complex32],
        cfo_cycles: f64,
        scratch: &mut DspScratch,
    ) {
        self.complex_spectrum_down_scratch(window, cfo_cycles, scratch);
        let DspScratch { cbuf, fbuf, .. } = scratch;
        self.fold_into(cbuf, fbuf);
    }

    /// Demodulates a window to the most likely symbol value (argmax of the
    /// signal vector) and its peak height.
    pub fn demod_symbol(&self, window: &[Complex32], cfo_cycles: f64) -> (u16, f32) {
        let y = self.signal_vector(window, cfo_cycles);
        let (idx, &h) = y
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap_or((0, &0.0));
        (idx as u16, h)
    }
}

/// Maximum value of a signal vector (peak height), used by sensitivity
/// analyses.
pub fn peak_height(signal_vector: &[f32]) -> f32 {
    signal_vector.iter().copied().fold(0.0, f32::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{CodingRate, SpreadingFactor};

    fn demod(sf: SpreadingFactor) -> Demodulator {
        Demodulator::new(LoRaParams::new(sf, CodingRate::CR4))
    }

    #[test]
    fn clean_symbols_demodulate_exactly() {
        for sf in [
            SpreadingFactor::SF7,
            SpreadingFactor::SF8,
            SpreadingFactor::SF10,
        ] {
            let d = demod(sf);
            let n = d.params().n() as u16;
            for h in [0u16, 1, n / 3, n - 1] {
                let wave = d.chirps().symbol(h);
                let (got, _) = d.demod_symbol(&wave, 0.0);
                assert_eq!(got, h, "sf={sf:?} h={h}");
            }
        }
    }

    #[test]
    fn integer_cfo_shifts_peak() {
        let d = demod(SpreadingFactor::SF8);
        let l = d.params().samples_per_symbol();
        let h = 50u16;
        // Apply a CFO of +3 cycles per symbol to the transmitted symbol.
        let wave: Vec<Complex32> = d
            .chirps()
            .symbol(h)
            .into_iter()
            .enumerate()
            .map(|(n, z)| {
                z * Complex32::from_phase(2.0 * std::f64::consts::PI * 3.0 * n as f64 / l as f64)
            })
            .collect();
        let (got, _) = d.demod_symbol(&wave, 0.0);
        assert_eq!(got, h + 3);
        // Correcting the CFO restores the true value.
        let (got, _) = d.demod_symbol(&wave, 3.0);
        assert_eq!(got, h);
    }

    #[test]
    fn fractional_cfo_reduces_peak_height() {
        // Paper Fig. 1(c): a residual CFO of 0.5 cycles much reduces the
        // peak.
        let d = demod(SpreadingFactor::SF8);
        let l = d.params().samples_per_symbol();
        let h = 77u16;
        let clean = d.chirps().symbol(h);
        let (_, clean_height) = d.demod_symbol(&clean, 0.0);
        let shifted: Vec<Complex32> = clean
            .iter()
            .enumerate()
            .map(|(n, &z)| {
                z * Complex32::from_phase(2.0 * std::f64::consts::PI * 0.5 * n as f64 / l as f64)
            })
            .collect();
        let (_, off_height) = d.demod_symbol(&shifted, 0.0);
        assert!(
            off_height < clean_height * 0.75,
            "clean {clean_height} vs 0.5-cycle offset {off_height}"
        );
    }

    #[test]
    fn timing_error_reduces_peak_height() {
        // Paper Fig. 1(b): processing with a misaligned boundary lowers the
        // peak (part of the window holds a different symbol).
        let d = demod(SpreadingFactor::SF8);
        let l = d.params().samples_per_symbol();
        let wave = [d.chirps().symbol(30), d.chirps().symbol(200)].concat();
        let aligned = &wave[..l];
        let (_, aligned_height) = d.demod_symbol(aligned, 0.0);
        let misaligned = &wave[l / 4..l / 4 + l];
        let y = d.signal_vector(misaligned, 0.0);
        let mis_height = y[30];
        assert!(
            mis_height < aligned_height * 0.7,
            "aligned {aligned_height} vs misaligned {mis_height}"
        );
    }

    #[test]
    fn downchirp_detected_with_upchirp_dechirp() {
        let d = demod(SpreadingFactor::SF8);
        let l = d.params().samples_per_symbol();
        let mut wave = Vec::with_capacity(l);
        d.chirps().write_downchirps(1, 0, &mut wave);
        let y = d.signal_vector_down(&wave, 0.0);
        let peak = y
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(peak, 0);
    }

    #[test]
    fn two_collided_symbols_yield_two_peaks() {
        let d = demod(SpreadingFactor::SF8);
        let a = d.chirps().symbol(40);
        let b = d.chirps().symbol(150);
        let sum: Vec<Complex32> = a.iter().zip(&b).map(|(&x, &y)| x + y).collect();
        let y = d.signal_vector(&sum, 0.0);
        let mean = y.iter().sum::<f32>() / y.len() as f32;
        assert!(y[40] > 10.0 * mean);
        assert!(y[150] > 10.0 * mean);
    }

    #[test]
    #[should_panic(expected = "one symbol long")]
    fn wrong_window_length_panics() {
        let d = demod(SpreadingFactor::SF7);
        d.signal_vector(&[Complex32::ZERO; 5], 0.0);
    }

    #[test]
    fn scratch_path_is_bit_identical() {
        let d = demod(SpreadingFactor::SF8);
        let mut scratch = DspScratch::new();
        let wave = d.chirps().symbol(123);
        for cfo in [0.0, 1.25, -0.5] {
            let spec = d.complex_spectrum(&wave, cfo);
            d.complex_spectrum_scratch(&wave, cfo, &mut scratch);
            assert_eq!(spec, scratch.cbuf, "spectrum cfo={cfo}");

            let y = d.signal_vector(&wave, cfo);
            d.signal_vector_scratch(&wave, cfo, &mut scratch);
            assert_eq!(y, scratch.fbuf, "signal vector cfo={cfo}");

            let specd = d.complex_spectrum_down(&wave, cfo);
            d.complex_spectrum_down_scratch(&wave, cfo, &mut scratch);
            assert_eq!(specd, scratch.cbuf, "down spectrum cfo={cfo}");

            let yd = d.signal_vector_down(&wave, cfo);
            d.signal_vector_down_scratch(&wave, cfo, &mut scratch);
            assert_eq!(yd, scratch.fbuf, "down vector cfo={cfo}");
        }
        // One plan (the demodulator's size) was cached along the way.
        assert_eq!(scratch.plans.len(), 1);
    }
}
