//! Code-block assembly: nibbles ⇄ codeword rows ⇄ symbol words ⇄ symbol
//! values (paper §3, Fig. 2).
//!
//! Two geometries exist:
//! - **payload blocks**: `SF` rows, `4 + CR` symbols, full-rate Gray
//!   mapping;
//! - **the header block**: `SF − 2` rows, 8 symbols, always CR 4,
//!   reduced-rate Gray mapping (symbol values are multiples of 4).

use crate::gray;
use crate::hamming;
use crate::interleaver;
use crate::params::{CodingRate, LoRaParams};

/// Encodes up to `rows` nibbles into the symbol values of one block
/// (padding missing nibbles with zero).
fn encode_block(nibbles: &[u8], rows: usize, cr: CodingRate, sf: usize, reduced: bool) -> Vec<u16> {
    assert!(nibbles.len() <= rows); // tnb-lint: allow(TNB-PANIC02) -- internal encode helper; callers chunk nibbles to `rows` by construction
    let mut cw_rows = Vec::with_capacity(rows);
    for r in 0..rows {
        let nib = nibbles.get(r).copied().unwrap_or(0);
        cw_rows.push(hamming::encode(nib, cr));
    }
    let words = interleaver::interleave(&cw_rows, cr.codeword_len());
    words
        .into_iter()
        .map(|w| {
            if reduced {
                gray::bits_to_symbol_reduced(w, sf)
            } else {
                gray::bits_to_symbol(w, sf)
            }
        })
        .collect()
}

/// Recovers the *received block* — the codeword rows `R` of paper §6.2,
/// before any error correction — from one block's demodulated symbol
/// values.
fn received_block(
    symbols: &[u16],
    rows: usize,
    cr: CodingRate,
    sf: usize,
    reduced: bool,
) -> Vec<u8> {
    assert_eq!(symbols.len(), cr.codeword_len()); // tnb-lint: allow(TNB-PANIC02) -- internal decode helper; callers slice exactly one block of symbols
    let words: Vec<u16> = symbols
        .iter()
        .map(|&h| {
            if reduced {
                gray::symbol_to_bits_reduced(h, sf)
            } else {
                gray::symbol_to_bits(h, sf)
            }
        })
        .collect();
    interleaver::deinterleave(&words, rows, cr.codeword_len())
}

/// Encodes payload nibbles into one block of `4 + CR` symbol values.
/// Blocks have `SF` rows at full rate, or `SF − 2` rows with reduced-rate
/// mapping when LDRO is active (SF 11/12 at 125 kHz).
pub fn encode_payload_block(nibbles: &[u8], params: &LoRaParams) -> Vec<u16> {
    encode_block(
        nibbles,
        params.payload_bits_per_symbol(),
        params.cr,
        params.sf.value(),
        params.ldro,
    )
}

/// Recovers the received rows of a payload block (full-rate or LDRO).
pub fn receive_payload_block(symbols: &[u16], params: &LoRaParams) -> Vec<u8> {
    received_block(
        symbols,
        params.payload_bits_per_symbol(),
        params.cr,
        params.sf.value(),
        params.ldro,
    )
}

/// Encodes the header block: `SF − 2` nibbles (5 header + the first payload
/// nibbles), CR 4, reduced-rate mapping, 8 symbols.
pub fn encode_header_block(nibbles: &[u8], params: &LoRaParams) -> Vec<u16> {
    encode_block(
        nibbles,
        params.sf.value() - 2,
        CodingRate::CR4,
        params.sf.value(),
        true,
    )
}

/// Recovers the received rows of the header block.
pub fn receive_header_block(symbols: &[u16], params: &LoRaParams) -> Vec<u8> {
    received_block(
        symbols,
        params.sf.value() - 2,
        CodingRate::CR4,
        params.sf.value(),
        true,
    )
}

/// Number of nibbles the header block carries beyond the 5 header nibbles.
#[inline]
pub fn header_block_payload_nibbles(params: &LoRaParams) -> usize {
    params.sf.value() - 2 - crate::header::HEADER_NIBBLES
}

/// Number of full-rate payload blocks needed for `total_nibbles` payload
/// nibbles (after the header block absorbed its share).
pub fn payload_block_count(total_nibbles: usize, params: &LoRaParams) -> usize {
    let in_header = header_block_payload_nibbles(params);
    let remaining = total_nibbles.saturating_sub(in_header);
    remaining.div_ceil(params.payload_bits_per_symbol())
}

/// Total number of data symbols (header + payload blocks) for a payload of
/// `payload_len` bytes (CRC included automatically: `payload_len + 2` bytes
/// = `2·(payload_len+2)` nibbles).
pub fn data_symbol_count(payload_len: usize, params: &LoRaParams) -> usize {
    let total_nibbles = 2 * (payload_len + 2);
    LoRaParams::HEADER_SYMBOLS
        + payload_block_count(total_nibbles, params) * params.cr.codeword_len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{CodingRate, LoRaParams, SpreadingFactor};

    fn params(sf: SpreadingFactor, cr: CodingRate) -> LoRaParams {
        LoRaParams::new(sf, cr)
    }

    #[test]
    fn payload_block_roundtrip_all_crs() {
        for cr in CodingRate::ALL {
            let p = params(SpreadingFactor::SF8, cr);
            let nibbles: Vec<u8> = (0..8).map(|i| (i * 3 + 1) as u8 & 0xF).collect();
            let symbols = encode_payload_block(&nibbles, &p);
            assert_eq!(symbols.len(), cr.codeword_len());
            let rows = receive_payload_block(&symbols, &p);
            for (r, row) in rows.iter().enumerate() {
                assert_eq!(
                    hamming::codeword_data(*row),
                    nibbles[r],
                    "cr={cr:?} row {r}"
                );
                // Rows must be exact codewords (no channel errors here).
                assert_eq!(*row, hamming::encode(nibbles[r], cr));
            }
        }
    }

    #[test]
    fn header_block_roundtrip() {
        for sf in [
            SpreadingFactor::SF7,
            SpreadingFactor::SF8,
            SpreadingFactor::SF10,
        ] {
            let p = params(sf, CodingRate::CR2);
            let rows = sf.value() - 2;
            let nibbles: Vec<u8> = (0..rows).map(|i| (13 * i + 5) as u8 & 0xF).collect();
            let symbols = encode_header_block(&nibbles, &p);
            assert_eq!(symbols.len(), 8);
            // Reduced-rate symbols are multiples of 4.
            for &s in &symbols {
                assert_eq!(s % 4, 0);
            }
            let got = receive_header_block(&symbols, &p);
            for (r, row) in got.iter().enumerate() {
                assert_eq!(
                    hamming::codeword_data(*row),
                    nibbles[r],
                    "sf={sf:?} row {r}"
                );
            }
        }
    }

    #[test]
    fn short_block_pads_with_zero() {
        let p = params(SpreadingFactor::SF8, CodingRate::CR4);
        let symbols = encode_payload_block(&[0xA, 0x5], &p);
        let rows = receive_payload_block(&symbols, &p);
        assert_eq!(hamming::codeword_data(rows[0]), 0xA);
        assert_eq!(hamming::codeword_data(rows[1]), 0x5);
        for row in &rows[2..] {
            assert_eq!(*row, hamming::encode(0, CodingRate::CR4));
        }
    }

    #[test]
    fn block_counts_match_paper_scale() {
        // Paper §6.1: "a packet with 16 bytes has only 3 to 5 blocks
        // depending on the SF and CR" (payload blocks for the 36 nibbles of
        // 16 payload + 2 CRC bytes).
        for sf in [SpreadingFactor::SF8, SpreadingFactor::SF10] {
            for cr in CodingRate::ALL {
                let p = params(sf, cr);
                let blocks = payload_block_count(2 * (16 + 2), &p);
                assert!(
                    (3..=5).contains(&blocks),
                    "sf={sf:?} cr={cr:?}: {blocks} blocks"
                );
            }
        }
    }

    #[test]
    fn ldro_blocks_use_reduced_geometry() {
        // SF 12 at 125 kHz: LDRO active → 10 rows per payload block and
        // symbol values that are multiples of 4.
        let p = params(SpreadingFactor::SF12, CodingRate::CR4);
        assert!(p.ldro);
        let nibbles: Vec<u8> = (0..10).map(|i| (i * 7 + 2) as u8 & 0xF).collect();
        let symbols = encode_payload_block(&nibbles, &p);
        assert!(symbols.iter().all(|&s| s % 4 == 0), "{symbols:?}");
        let rows = receive_payload_block(&symbols, &p);
        assert_eq!(rows.len(), 10);
        for (r, row) in rows.iter().enumerate() {
            assert_eq!(hamming::codeword_data(*row), nibbles[r]);
        }
    }

    #[test]
    fn ldro_tolerates_plus_minus_two_bin_errors() {
        // The point of LDRO: long symbols drift; ±1..2-bin demodulation
        // errors must not corrupt any bit.
        let p = params(SpreadingFactor::SF11, CodingRate::CR2);
        assert!(p.ldro);
        let nibbles: Vec<u8> = (0..9).map(|i| (i * 5 + 1) as u8 & 0xF).collect();
        let clean = encode_payload_block(&nibbles, &p);
        let n = p.n() as i32;
        for err in [-2i32, -1, 1] {
            let noisy: Vec<u16> = clean
                .iter()
                .map(|&s| ((s as i32 + err).rem_euclid(n)) as u16)
                .collect();
            let rows = receive_payload_block(&noisy, &p);
            for (r, row) in rows.iter().enumerate() {
                assert_eq!(
                    hamming::codeword_data(*row),
                    nibbles[r],
                    "err={err} row {r}"
                );
            }
        }
    }

    #[test]
    fn symbol_count_sf8_cr4() {
        let p = params(SpreadingFactor::SF8, CodingRate::CR4);
        // 36 nibbles: 1 in the header block, 35 remaining → 5 blocks of 8
        // rows → 5 × 8 symbols + 8 header symbols.
        assert_eq!(data_symbol_count(16, &p), 8 + 5 * 8);
    }

    #[test]
    fn symbol_count_sf10_cr1() {
        let p = params(SpreadingFactor::SF10, CodingRate::CR1);
        // 36 nibbles: 3 in the header block, 33 remaining → 4 blocks of 10
        // rows → 4 × 5 symbols + 8 header symbols.
        assert_eq!(data_symbol_count(16, &p), 8 + 4 * 5);
    }
}
