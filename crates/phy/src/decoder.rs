//! Symbols-to-bytes decoding: the default (non-BEC) decode path plus the
//! intermediate representations BEC consumes.
//!
//! The split matters for TnB: BEC (in `tnb-core`) replaces only the
//! per-block error-correction step; header parsing, de-whitening and the
//! packet CRC gate live here and are shared by every scheme.

use crate::block;
use crate::crc::check_crc16;
use crate::encoder::nibbles_to_bytes;
use crate::hamming;
use crate::header::{Header, HEADER_NIBBLES};
use crate::params::{CodingRate, LoRaParams};
use crate::whitening::whiten;

/// Why a packet failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// Fewer symbols than the geometry requires.
    TooShort,
    /// The header checksum failed (or the CR field was invalid).
    BadHeader,
    /// The payload CRC-16 did not match.
    BadCrc,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::TooShort => write!(f, "not enough symbols"),
            DecodeError::BadHeader => write!(f, "header checksum failed"),
            DecodeError::BadCrc => write!(f, "payload CRC mismatch"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// The header block after default Hamming decoding.
#[derive(Debug, Clone)]
pub struct DecodedHeader {
    /// Parsed and checksum-validated header.
    pub header: Header,
    /// Payload nibbles carried in the header block (after the 5 header
    /// nibbles).
    pub extra_nibbles: Vec<u8>,
    /// The raw received rows `R` of the header block (for BEC).
    pub received_rows: Vec<u8>,
}

/// Decodes the 8 header symbols with the default decoder.
pub fn decode_header(symbols: &[u16], params: &LoRaParams) -> Result<DecodedHeader, DecodeError> {
    if symbols.len() < LoRaParams::HEADER_SYMBOLS {
        return Err(DecodeError::TooShort);
    }
    let received_rows = block::receive_header_block(&symbols[..LoRaParams::HEADER_SYMBOLS], params);
    let nibbles: Vec<u8> = received_rows
        .iter()
        .map(|&r| hamming::decode_default(r, CodingRate::CR4).nibble)
        .collect();
    let header = Header::from_nibbles(&nibbles[..HEADER_NIBBLES]).ok_or(DecodeError::BadHeader)?;
    Ok(DecodedHeader {
        header,
        extra_nibbles: nibbles[HEADER_NIBBLES..].to_vec(),
        received_rows,
    })
}

/// Splits payload symbols into received blocks (rows `R` per block), given
/// the payload CR from the header.
pub fn received_payload_blocks(symbols: &[u16], params: &LoRaParams) -> Vec<Vec<u8>> {
    symbols
        .chunks_exact(params.cr.codeword_len())
        .map(|chunk| block::receive_payload_block(chunk, params))
        .collect()
}

/// Default-decodes one received block's rows into nibbles.
pub fn default_decode_rows(rows: &[u8], cr: CodingRate) -> Vec<u8> {
    rows.iter()
        .map(|&r| hamming::decode_default(r, cr).nibble)
        .collect()
}

/// Final assembly: takes all payload nibbles (header-block extras first),
/// truncates to the advertised length, de-whitens and checks the CRC.
/// Returns the payload bytes on success.
pub fn assemble_payload(nibbles: &[u8], payload_len: usize) -> Result<Vec<u8>, DecodeError> {
    let needed = 2 * (payload_len + 2);
    if nibbles.len() < needed {
        return Err(DecodeError::TooShort);
    }
    let bytes = nibbles_to_bytes(&nibbles[..needed]);
    let clear = whiten(&bytes);
    match check_crc16(&clear) {
        Some(payload) => Ok(payload.to_vec()),
        None => Err(DecodeError::BadCrc),
    }
}

/// Complete default decode: header symbols followed by payload symbols.
/// This is the reference `LoRaPHY` decode path (no BEC).
pub fn decode_packet(symbols: &[u16], params: &LoRaParams) -> Result<Vec<u8>, DecodeError> {
    let dh = decode_header(symbols, params)?;
    // Payload blocks use the CR from the header.
    let mut p = *params;
    p.cr = dh.header.cr;
    let needed_payload_symbols =
        block::data_symbol_count(dh.header.payload_len as usize, &p) - LoRaParams::HEADER_SYMBOLS;
    let rest = &symbols[LoRaParams::HEADER_SYMBOLS..];
    if rest.len() < needed_payload_symbols {
        return Err(DecodeError::TooShort);
    }
    let mut nibbles = dh.extra_nibbles.clone();
    for rows in received_payload_blocks(&rest[..needed_payload_symbols], &p) {
        nibbles.extend(default_decode_rows(&rows, p.cr));
    }
    assemble_payload(&nibbles, dh.header.payload_len as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::encode_packet_symbols;
    use crate::params::SpreadingFactor;

    fn roundtrip(sf: SpreadingFactor, cr: CodingRate, payload: &[u8]) {
        let p = LoRaParams::new(sf, cr);
        let symbols = encode_packet_symbols(payload, &p);
        let got = decode_packet(&symbols, &p).expect("decode");
        assert_eq!(got, payload, "sf={sf:?} cr={cr:?}");
    }

    #[test]
    fn clean_roundtrip_all_sf_cr() {
        let payload: Vec<u8> = (0..16).collect();
        for sf in SpreadingFactor::ALL {
            for cr in CodingRate::ALL {
                roundtrip(sf, cr, &payload);
            }
        }
    }

    #[test]
    fn roundtrip_various_lengths() {
        let p = LoRaParams::new(SpreadingFactor::SF8, CodingRate::CR3);
        for len in [0usize, 1, 7, 16, 31, 64, 255] {
            let payload: Vec<u8> = (0..len).map(|i| (i * 7 + 1) as u8).collect();
            let symbols = encode_packet_symbols(&payload, &p);
            assert_eq!(decode_packet(&symbols, &p).unwrap(), payload, "len={len}");
        }
    }

    #[test]
    fn single_bit_symbol_error_corrected_cr4() {
        // A ±1-bin error on one payload symbol flips one Gray bit → a
        // 1-bit row error the default CR4 decoder corrects.
        let p = LoRaParams::new(SpreadingFactor::SF8, CodingRate::CR4);
        let payload = b"sixteen bytes!!!".to_vec();
        let mut symbols = encode_packet_symbols(&payload, &p);
        let idx = LoRaParams::HEADER_SYMBOLS + 3;
        symbols[idx] = (symbols[idx] + 1) % 256;
        assert_eq!(decode_packet(&symbols, &p).unwrap(), payload);
    }

    #[test]
    fn garbage_symbols_fail_crc_not_panic() {
        let p = LoRaParams::new(SpreadingFactor::SF8, CodingRate::CR2);
        let payload = vec![0x42; 16];
        let mut symbols = encode_packet_symbols(&payload, &p);
        for s in symbols.iter_mut().skip(LoRaParams::HEADER_SYMBOLS) {
            *s = (*s).wrapping_mul(31).wrapping_add(97) % 256;
        }
        match decode_packet(&symbols, &p) {
            Err(DecodeError::BadCrc) | Err(DecodeError::TooShort) => {}
            other => panic!("expected CRC failure, got {other:?}"),
        }
    }

    #[test]
    fn corrupted_header_reports_bad_header() {
        let p = LoRaParams::new(SpreadingFactor::SF8, CodingRate::CR4);
        let mut symbols = encode_packet_symbols(&[1, 2, 3, 4], &p);
        // Smash several header symbols beyond the reduced-rate margin.
        for s in symbols.iter_mut().take(4) {
            *s = (*s + 128) % 256;
        }
        assert_eq!(decode_packet(&symbols, &p), Err(DecodeError::BadHeader));
    }

    #[test]
    fn truncated_symbols_report_too_short() {
        let p = LoRaParams::new(SpreadingFactor::SF8, CodingRate::CR4);
        let symbols = encode_packet_symbols(&[9; 16], &p);
        assert_eq!(
            decode_packet(&symbols[..symbols.len() - 4], &p),
            Err(DecodeError::TooShort)
        );
        assert_eq!(decode_packet(&symbols[..5], &p), Err(DecodeError::TooShort));
    }

    #[test]
    fn header_cr_overrides_params_cr() {
        // Encode with CR1 payload, decode with params claiming CR4: the
        // header must win.
        let enc = LoRaParams::new(SpreadingFactor::SF8, CodingRate::CR1);
        let payload = b"cr from header!!".to_vec();
        let symbols = encode_packet_symbols(&payload, &enc);
        let dec = LoRaParams::new(SpreadingFactor::SF8, CodingRate::CR4);
        assert_eq!(decode_packet(&symbols, &dec).unwrap(), payload);
    }
}
