//! Payload whitening.
//!
//! LoRa whitens payload bytes with a fixed pseudo-random sequence so the
//! transmitted symbols look noise-like. Vendors differ on the exact LFSR;
//! we use the PN9 sequence (polynomial x⁹ + x⁵ + 1, seed all-ones), a
//! documented substitution (DESIGN.md): both our transmitter and all
//! receivers use the same sequence, and every algorithm under test operates
//! below the whitening layer, so the choice cannot affect any result.
//!
//! Whitening is an involution (`whiten(whiten(x)) == x`), so the same
//! function serves both directions.

/// Maximal-length period of the 9-bit PN9 LFSR.
pub const PN9_PERIOD_BITS: usize = 511;

/// Generates the `n`-th..`n+len` bytes of the PN9 whitening sequence.
fn pn9_bytes(len: usize) -> Vec<u8> {
    let mut state: u16 = 0x1FF;
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        let mut byte = 0u8;
        for bit in 0..8 {
            let out_bit = (state & 1) as u8;
            byte |= out_bit << bit;
            // Feedback: x^9 + x^5 + 1 → new MSB = bit0 ⊕ bit5.
            let fb = (state ^ (state >> 5)) & 1;
            state = (state >> 1) | (fb << 8);
        }
        out.push(byte);
    }
    out
}

/// XORs `data` with the whitening sequence in place.
pub fn whiten_in_place(data: &mut [u8]) {
    let seq = pn9_bytes(data.len());
    for (b, w) in data.iter_mut().zip(seq) {
        *b ^= w;
    }
}

/// Returns a whitened (or de-whitened) copy of `data`.
pub fn whiten(data: &[u8]) -> Vec<u8> {
    let mut out = data.to_vec();
    whiten_in_place(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn involution() {
        let data: Vec<u8> = (0..=255).collect();
        assert_eq!(whiten(&whiten(&data)), data);
    }

    #[test]
    fn sequence_is_deterministic() {
        assert_eq!(pn9_bytes(4), pn9_bytes(8)[..4].to_vec());
    }

    #[test]
    fn sequence_has_full_period() {
        // The 9-bit LFSR state must cycle through all 511 nonzero states.
        let mut state: u16 = 0x1FF;
        let mut seen = std::collections::HashSet::new();
        loop {
            if !seen.insert(state) {
                break;
            }
            let fb = (state ^ (state >> 5)) & 1;
            state = (state >> 1) | (fb << 8);
        }
        assert_eq!(seen.len(), PN9_PERIOD_BITS);
    }

    #[test]
    fn whitening_changes_constant_data() {
        // An all-zero payload must become noise-like (no long zero runs).
        let w = whiten(&[0u8; 64]);
        assert!(w.iter().filter(|&&b| b == 0).count() <= 2);
        let ones: u32 = w.iter().map(|b| b.count_ones()).sum();
        // Balanced within a loose band: ~50% ones.
        assert!((180..330).contains(&ones), "ones={ones}");
    }

    #[test]
    fn empty_input() {
        assert!(whiten(&[]).is_empty());
    }
}
