//! Gray mapping between symbol values (FFT bins) and bit words.
//!
//! LoRa Gray-maps symbol values so that a ±1-bin demodulation error flips a
//! single bit. Convention used throughout this workspace (documented in
//! DESIGN.md): the receiver computes `bits = gray(h)` with
//! `gray(x) = x ^ (x >> 1)`; the transmitter sends `h = gray⁻¹(bits)`.
//!
//! Header symbols use LoRa's *reduced-rate* mapping: they carry `SF − 2`
//! bits, and the symbol value is a multiple of 4 (`h = gray⁻¹(bits) · 4`),
//! so the receiver can round `h/4` and tolerate up to ±2-bin errors on the
//! header.

/// Binary-reflected Gray code of `x`.
#[inline]
pub fn gray(x: u16) -> u16 {
    x ^ (x >> 1)
}

/// Inverse Gray code: `gray_inv(gray(x)) == x`.
#[inline]
pub fn gray_inv(g: u16) -> u16 {
    let mut x = g;
    let mut shift = 1;
    while shift < 16 {
        x ^= x >> shift;
        shift <<= 1;
    }
    x
}

/// Maps an `sf`-bit word to the symbol value to transmit (full rate).
#[inline]
pub fn bits_to_symbol(word: u16, sf: usize) -> u16 {
    debug_assert!(word < (1 << sf));
    gray_inv(word) & ((1 << sf) - 1)
}

/// Maps a demodulated symbol value back to its `sf`-bit word (full rate).
#[inline]
pub fn symbol_to_bits(symbol: u16, sf: usize) -> u16 {
    gray(symbol & ((1 << sf) - 1) as u16)
}

/// Reduced-rate (header) mapping: an `(sf-2)`-bit word to a symbol value
/// that is a multiple of 4.
#[inline]
pub fn bits_to_symbol_reduced(word: u16, sf: usize) -> u16 {
    debug_assert!(word < (1 << (sf - 2)));
    (gray_inv(word) << 2) & ((1 << sf) - 1) as u16
}

/// Reduced-rate (header) demapping: rounds the symbol value to the nearest
/// multiple of 4 (mod `2^sf`) before un-Gray-coding, absorbing ±2-bin
/// errors.
#[inline]
pub fn symbol_to_bits_reduced(symbol: u16, sf: usize) -> u16 {
    let n = 1u32 << sf;
    let rounded = (((symbol as u32) + 2) / 4) % (n / 4);
    gray(rounded as u16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gray_first_values() {
        let expected = [0u16, 1, 3, 2, 6, 7, 5, 4];
        for (x, &g) in expected.iter().enumerate() {
            assert_eq!(gray(x as u16), g);
        }
    }

    #[test]
    fn gray_roundtrip_all_12bit() {
        for x in 0u16..4096 {
            assert_eq!(gray_inv(gray(x)), x);
        }
    }

    #[test]
    fn adjacent_symbols_differ_in_one_bit() {
        let sf = 8;
        for h in 0u16..255 {
            let a = symbol_to_bits(h, sf);
            let b = symbol_to_bits(h + 1, sf);
            assert_eq!((a ^ b).count_ones(), 1, "h={h}");
        }
    }

    #[test]
    fn full_rate_roundtrip() {
        for sf in 7..=12 {
            for w in (0..(1u32 << sf)).step_by(7) {
                let h = bits_to_symbol(w as u16, sf);
                assert!(h < (1 << sf));
                assert_eq!(symbol_to_bits(h, sf), w as u16, "sf={sf} w={w}");
            }
        }
    }

    #[test]
    fn reduced_rate_roundtrip() {
        for sf in 7usize..=12 {
            for w in 0..(1u32 << (sf - 2)) {
                let h = bits_to_symbol_reduced(w as u16, sf);
                assert_eq!(h % 4, 0);
                assert!(h < (1 << sf));
                assert_eq!(symbol_to_bits_reduced(h, sf), w as u16, "sf={sf} w={w}");
            }
        }
    }

    #[test]
    fn reduced_rate_tolerates_small_bin_errors() {
        let sf = 8;
        for w in 0..(1u16 << (sf - 2)) {
            let h = bits_to_symbol_reduced(w, sf);
            let n = 1u16 << sf;
            for err in [-2i32, -1, 0, 1] {
                let noisy = ((h as i32 + err).rem_euclid(n as i32)) as u16;
                assert_eq!(symbol_to_bits_reduced(noisy, sf), w, "w={w} err={err}");
            }
        }
    }
}
