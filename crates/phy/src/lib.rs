//! Complete LoRa PHY layer (substrate for TnB).
//!
//! Implements everything between payload bytes and baseband IQ samples:
//! chirp modulation/demodulation, Gray mapping, the diagonal interleaver,
//! the (8,4) Hamming code (generator matrix from the paper §3), whitening,
//! the PHY header, and the payload CRC — composed into a [`Transmitter`]
//! and a standard single-packet receiver used as the `LoRaPHY` baseline.

pub mod block;
pub mod chirp;
pub mod crc;
pub mod decoder;
pub mod demodulate;
pub mod encoder;
pub mod frame;
pub mod gray;
pub mod hamming;
pub mod header;
pub mod interleaver;
pub mod modulate;
pub mod params;
pub mod whitening;

pub use frame::Transmitter;
pub use params::{CodingRate, LoRaParams, SpreadingFactor};
