//! CRC calculations: the packet-level CRC-16 (the check BEC relies on to
//! pick the correct repaired packet) and the 8-bit PHY-header checksum.

/// CRC-16/CCITT-FALSE (poly 0x1021, init 0xFFFF, no reflection), the
/// polynomial LoRa uses for its payload CRC.
pub fn crc16(data: &[u8]) -> u16 {
    let mut crc: u16 = 0xFFFF;
    for &byte in data {
        crc ^= (byte as u16) << 8;
        for _ in 0..8 {
            if crc & 0x8000 != 0 {
                crc = (crc << 1) ^ 0x1021;
            } else {
                crc <<= 1;
            }
        }
    }
    crc
}

/// Appends the CRC-16 (big-endian) to a payload.
pub fn append_crc16(payload: &[u8]) -> Vec<u8> {
    let mut out = payload.to_vec();
    let c = crc16(payload);
    out.push((c >> 8) as u8);
    out.push((c & 0xFF) as u8);
    out
}

/// Checks a payload+CRC byte sequence; returns the payload on success.
pub fn check_crc16(data: &[u8]) -> Option<&[u8]> {
    if data.len() < 2 {
        return None;
    }
    let (payload, tail) = data.split_at(data.len() - 2);
    let expect = ((tail[0] as u16) << 8) | tail[1] as u16;
    if crc16(payload) == expect {
        Some(payload)
    } else {
        None
    }
}

/// CRC-8 (poly 0x07, init 0x00) used as the PHY-header checksum over the
/// 12 header content bits packed into two bytes (documented convention;
/// both ends of this workspace's link use it consistently).
pub fn crc8(data: &[u8]) -> u8 {
    let mut crc: u8 = 0;
    for &byte in data {
        crc ^= byte;
        for _ in 0..8 {
            if crc & 0x80 != 0 {
                crc = (crc << 1) ^ 0x07;
            } else {
                crc <<= 1;
            }
        }
    }
    crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc16_check_value() {
        // CRC-16/CCITT-FALSE("123456789") = 0x29B1 (standard check value).
        assert_eq!(crc16(b"123456789"), 0x29B1);
    }

    #[test]
    fn crc16_empty_is_init() {
        assert_eq!(crc16(&[]), 0xFFFF);
    }

    #[test]
    fn append_then_check_roundtrip() {
        let payload = b"fourteen bytes".to_vec();
        let framed = append_crc16(&payload);
        assert_eq!(framed.len(), payload.len() + 2);
        assert_eq!(check_crc16(&framed), Some(payload.as_slice()));
    }

    #[test]
    fn check_detects_any_single_bit_error() {
        let framed = append_crc16(b"payload!");
        for byte in 0..framed.len() {
            for bit in 0..8 {
                let mut bad = framed.clone();
                bad[byte] ^= 1 << bit;
                assert_eq!(check_crc16(&bad), None, "byte {byte} bit {bit}");
            }
        }
    }

    #[test]
    fn check_rejects_short_input() {
        assert_eq!(check_crc16(&[0x12]), None);
        assert_eq!(check_crc16(&[]), None);
    }

    #[test]
    fn crc8_check_value() {
        // CRC-8 (SMBus PEC polynomial, init 0): crc8("123456789") = 0xF4.
        assert_eq!(crc8(b"123456789"), 0xF4);
    }

    #[test]
    fn crc8_detects_single_bit_errors() {
        let data = [0xA5u8, 0x3C];
        let c = crc8(&data);
        for byte in 0..2 {
            for bit in 0..8 {
                let mut bad = data;
                bad[byte] ^= 1 << bit;
                assert_ne!(crc8(&bad), c);
            }
        }
    }
}
