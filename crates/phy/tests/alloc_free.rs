//! Proves the steady-state symbol DSP path is allocation-free: once a
//! [`DspScratch`] is warm (FFT plan cached, buffers sized), dechirp →
//! FFT → fold performs zero heap allocations per symbol.
//!
//! The counting allocator is process-global, so this file holds exactly
//! one test — a sibling test allocating concurrently would race the
//! counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use tnb_dsp::DspScratch;
use tnb_phy::demodulate::Demodulator;
use tnb_phy::{CodingRate, LoRaParams, SpreadingFactor};

struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

// SAFETY: every method delegates to `System` after touching only an
// atomic counter, so `System`'s allocator contract is preserved verbatim.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: forwards the caller's layout to `System` unchanged.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    // SAFETY: `ptr`/`layout` came from this allocator, which always
    // allocates via `System`, so handing them back to `System` is sound.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    // SAFETY: same provenance argument as `dealloc`; `System.realloc`
    // upholds the `GlobalAlloc` contract for the forwarded arguments.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn warm_scratch_symbol_path_makes_zero_allocations() {
    let p = LoRaParams::new(SpreadingFactor::SF8, CodingRate::CR4);
    let demod = Demodulator::new(p);
    let window = demod.chirps().symbol(37);
    let mut scratch = DspScratch::new();

    // Warm-up: builds the FFT plan and sizes every buffer, including the
    // rotating (cfo != 0) and downchirp variants.
    demod.signal_vector_scratch(&window, 1.25, &mut scratch);
    demod.signal_vector_scratch(&window, 0.0, &mut scratch);
    demod.signal_vector_down_scratch(&window, -0.5, &mut scratch);

    // The counter is process-global, so runtime machinery (test-harness
    // threads, lazy stdio buffers) can allocate concurrently with the
    // measurement window. A genuine per-symbol allocation would show up
    // in every trial; transient noise does not — so assert on the
    // minimum over a few trials instead of a single racy window.
    let min_allocs = (0..5)
        .map(|_| {
            let before = ALLOCS.load(Ordering::Relaxed);
            for i in 0..256u32 {
                let cfo = f64::from(i % 7) * 0.25 - 0.75;
                demod.signal_vector_scratch(&window, cfo, &mut scratch);
                demod.signal_vector_down_scratch(&window, cfo, &mut scratch);
            }
            ALLOCS.load(Ordering::Relaxed) - before
        })
        .min()
        .unwrap_or(usize::MAX);
    assert_eq!(
        min_allocs, 0,
        "steady-state symbol DSP allocated {min_allocs} times over 512 symbols in every trial"
    );
    // Sanity: the warm-up really did cache exactly one plan size.
    assert_eq!(scratch.plans.len(), 1);
}
