//! Golden-vector tests: freeze the on-air format so refactors cannot
//! silently change it (whitening sequence, symbol mapping, chirp shape).
//! If any of these change, previously written trace files and recorded
//! expectations become undecodable — bump them only deliberately.

use tnb_phy::{CodingRate, LoRaParams, SpreadingFactor};

#[test]
fn sf8_cr4_symbol_stream_frozen() {
    let p = LoRaParams::new(SpreadingFactor::SF8, CodingRate::CR4);
    let syms = tnb_phy::encoder::encode_packet_symbols(b"golden vector!!!", &p);
    assert_eq!(
        &syms[..20],
        &[
            68, 32, 8, 224, 156, 248, 228, 188, 110, 46, 232, 168, 230, 42, 34, 238, 147, 101, 33,
            160
        ]
    );
    // Header symbols (first 8) are reduced-rate: multiples of 4.
    assert!(syms[..8].iter().all(|s| s % 4 == 0));
}

#[test]
fn sf10_cr1_symbol_stream_frozen() {
    let p = LoRaParams::new(SpreadingFactor::SF10, CodingRate::CR1);
    let syms = tnb_phy::encoder::encode_packet_symbols(b"golden vector!!!", &p);
    assert_eq!(
        &syms[..16],
        &[484, 480, 240, 940, 412, 788, 736, 368, 795, 372, 122, 213, 660, 73, 377, 194]
    );
}

#[test]
fn whitening_sequence_frozen() {
    assert_eq!(
        tnb_phy::whitening::whiten(&[0u8; 16]),
        vec![255, 225, 29, 154, 237, 133, 51, 36, 234, 122, 210, 57, 112, 151, 87, 10]
    );
}

/// The full transmit chain (whitening → Hamming(8,4) → interleave →
/// gray) frozen per coding rate: symbol count, header+first-payload-block
/// symbols, and the final CRC-bearing symbols. Any change to any stage
/// shifts at least one of these.
#[test]
fn full_chain_frozen_per_coding_rate() {
    let cases: [(CodingRate, usize, [u16; 16], [u16; 4]); 4] = [
        (
            CodingRate::CR1,
            33,
            [
                24, 28, 12, 236, 96, 196, 184, 160, 110, 46, 232, 168, 178, 147, 101, 33,
            ],
            [254, 127, 192, 96],
        ),
        (
            CodingRate::CR2,
            38,
            [
                120, 16, 12, 224, 100, 4, 184, 172, 110, 46, 232, 168, 230, 42, 147, 101,
            ],
            [127, 192, 0, 47],
        ),
        (
            CodingRate::CR3,
            43,
            [
                24, 44, 16, 224, 28, 4, 164, 160, 110, 46, 232, 168, 230, 42, 34, 147,
            ],
            [192, 0, 47, 31],
        ),
        (
            CodingRate::CR4,
            48,
            [
                68, 32, 8, 224, 156, 248, 228, 188, 110, 46, 232, 168, 230, 42, 34, 238,
            ],
            [0, 47, 31, 8],
        ),
    ];
    for (cr, total, first16, last4) in cases {
        let p = LoRaParams::new(SpreadingFactor::SF8, cr);
        let syms = tnb_phy::encoder::encode_packet_symbols(b"golden vector!!!", &p);
        assert_eq!(syms.len(), total, "{cr:?} symbol count");
        assert_eq!(&syms[..16], &first16, "{cr:?} head");
        assert_eq!(&syms[total - 4..], &last4, "{cr:?} tail");
        // The header block is CR4/reduced-rate regardless of payload CR.
        assert!(syms[..8].iter().all(|s| s % 4 == 0), "{cr:?} header");
    }
}

/// Hamming(8,4) codeword tables frozen for every puncturing (CR1 = parity
/// only … CR4 = full codeword).
#[test]
fn hamming_codeword_tables_frozen() {
    let cases: [(CodingRate, [u8; 16]); 4] = [
        (
            CodingRate::CR1,
            [0, 17, 18, 3, 20, 5, 6, 23, 24, 9, 10, 27, 12, 29, 30, 15],
        ),
        (
            CodingRate::CR2,
            [0, 17, 50, 35, 52, 37, 6, 23, 40, 57, 26, 11, 28, 13, 46, 63],
        ),
        (
            CodingRate::CR3,
            [
                0, 81, 114, 35, 52, 101, 70, 23, 104, 57, 26, 75, 92, 13, 46, 127,
            ],
        ),
        (
            CodingRate::CR4,
            [
                0, 209, 114, 163, 180, 101, 198, 23, 232, 57, 154, 75, 92, 141, 46, 255,
            ],
        ),
    ];
    for (cr, table) in cases {
        assert_eq!(tnb_phy::hamming::codeword_table(cr), table, "{cr:?}");
    }
}

/// One payload block (fixed 8 nibbles, SF 8) through Hamming, interleave
/// and gray per coding rate, and back: the symbols are frozen and the
/// receive direction recovers the exact codeword rows.
#[test]
fn payload_block_roundtrip_frozen_per_coding_rate() {
    let nibbles: [u8; 8] = [0x9, 0xE, 0x3, 0x7, 0x7, 0x9, 0xB, 0x1];
    let expect: [&[u16]; 4] = [
        &[169, 53, 251, 72, 201],
        &[169, 53, 251, 72, 237, 46],
        &[169, 53, 251, 72, 237, 46, 2],
        &[169, 53, 251, 72, 237, 46, 2, 14],
    ];
    for (cr, want) in [
        CodingRate::CR1,
        CodingRate::CR2,
        CodingRate::CR3,
        CodingRate::CR4,
    ]
    .into_iter()
    .zip(expect)
    {
        let p = LoRaParams::new(SpreadingFactor::SF8, cr);
        let block = tnb_phy::block::encode_payload_block(&nibbles, &p);
        assert_eq!(block, want, "{cr:?}");
        let rows = tnb_phy::block::receive_payload_block(&block, &p);
        for (row, &nib) in rows.iter().zip(&nibbles) {
            assert_eq!(*row, tnb_phy::hamming::encode(nib, cr), "{cr:?}");
        }
    }
}

/// The diagonal interleaver itself, frozen for an 8-row CR4 block.
#[test]
fn interleaver_frozen() {
    // Wrapping arithmetic: i = 7 exceeds u8 range (7·37 + 11 = 270), and
    // the frozen vector below was produced with the wrapped value.
    let rows: Vec<u8> = (0..8u8)
        .map(|i| i.wrapping_mul(37).wrapping_add(11))
        .collect();
    assert_eq!(
        tnb_phy::interleaver::interleave(&rows, 8),
        vec![85, 204, 45, 59, 225, 82, 177, 224]
    );
}

#[test]
fn chirp_waveform_frozen() {
    let t =
        tnb_phy::chirp::ChirpTable::new(&LoRaParams::new(SpreadingFactor::SF7, CodingRate::CR1));
    let c = t.upchirp()[100];
    assert!((c.re - -0.63912445).abs() < 1e-6);
    assert!((c.im - 0.76910335).abs() < 1e-6);
}
