//! Golden-vector tests: freeze the on-air format so refactors cannot
//! silently change it (whitening sequence, symbol mapping, chirp shape).
//! If any of these change, previously written trace files and recorded
//! expectations become undecodable — bump them only deliberately.

use tnb_phy::{CodingRate, LoRaParams, SpreadingFactor};

#[test]
fn sf8_cr4_symbol_stream_frozen() {
    let p = LoRaParams::new(SpreadingFactor::SF8, CodingRate::CR4);
    let syms = tnb_phy::encoder::encode_packet_symbols(b"golden vector!!!", &p);
    assert_eq!(
        &syms[..20],
        &[
            68, 32, 8, 224, 156, 248, 228, 188, 110, 46, 232, 168, 230, 42, 34, 238, 147, 101, 33,
            160
        ]
    );
    // Header symbols (first 8) are reduced-rate: multiples of 4.
    assert!(syms[..8].iter().all(|s| s % 4 == 0));
}

#[test]
fn sf10_cr1_symbol_stream_frozen() {
    let p = LoRaParams::new(SpreadingFactor::SF10, CodingRate::CR1);
    let syms = tnb_phy::encoder::encode_packet_symbols(b"golden vector!!!", &p);
    assert_eq!(
        &syms[..16],
        &[484, 480, 240, 940, 412, 788, 736, 368, 795, 372, 122, 213, 660, 73, 377, 194]
    );
}

#[test]
fn whitening_sequence_frozen() {
    assert_eq!(
        tnb_phy::whitening::whiten(&[0u8; 16]),
        vec![255, 225, 29, 154, 237, 133, 51, 36, 234, 122, 210, 57, 112, 151, 87, 10]
    );
}

#[test]
fn chirp_waveform_frozen() {
    let t =
        tnb_phy::chirp::ChirpTable::new(&LoRaParams::new(SpreadingFactor::SF7, CodingRate::CR1));
    let c = t.upchirp()[100];
    assert!((c.re - -0.63912445).abs() < 1e-6);
    assert!((c.im - 0.76910335).abs() < 1e-6);
}
