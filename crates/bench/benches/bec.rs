//! Criterion benches for BEC vs the default Hamming decoder — the
//! complexity claim of paper Table 2 ("the complexity of BEC is
//! moderate").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tnb_core::bec::decode_block;
use tnb_phy::hamming::{decode_default, encode};
use tnb_phy::params::CodingRate;

/// A corrupted block with 2 error columns (errors beyond the default
/// decoder).
fn corrupted_block(cr: CodingRate, sf: usize) -> Vec<u8> {
    let mut rows: Vec<u8> = (0..sf).map(|i| encode((i * 5 % 16) as u8, cr)).collect();
    for (i, row) in rows.iter_mut().enumerate() {
        if i % 3 == 0 {
            *row ^= 0b11; // columns 0 and 1
        } else if i % 3 == 1 {
            *row ^= 0b01;
        }
    }
    rows
}

fn bench_block_decode(c: &mut Criterion) {
    let mut g = c.benchmark_group("block_decode");
    for cr in [CodingRate::CR2, CodingRate::CR3, CodingRate::CR4] {
        let rows = corrupted_block(cr, 8);
        g.bench_with_input(BenchmarkId::new("bec", cr.value()), &cr, |b, &cr| {
            b.iter(|| decode_block(std::hint::black_box(&rows), cr));
        });
        g.bench_with_input(BenchmarkId::new("default", cr.value()), &cr, |b, &cr| {
            b.iter(|| {
                rows.iter()
                    .map(|&r| decode_default(std::hint::black_box(r), cr).nibble)
                    .collect::<Vec<u8>>()
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_block_decode);
criterion_main!(benches);
