//! Criterion benches for the PHY layer: modulation, demodulation, and the
//! full encode path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tnb_phy::demodulate::Demodulator;
use tnb_phy::{CodingRate, LoRaParams, SpreadingFactor, Transmitter};

fn bench_transmit(c: &mut Criterion) {
    let mut g = c.benchmark_group("transmit");
    for sf in [SpreadingFactor::SF8, SpreadingFactor::SF10] {
        let tx = Transmitter::new(LoRaParams::new(sf, CodingRate::CR4));
        let payload = [0xA5u8; 16];
        g.bench_with_input(BenchmarkId::new("16B", sf.value()), &sf, |b, _| {
            b.iter(|| tx.transmit(std::hint::black_box(&payload)));
        });
    }
    g.finish();
}

fn bench_demod_symbol(c: &mut Criterion) {
    let mut g = c.benchmark_group("demod_symbol");
    for sf in [SpreadingFactor::SF8, SpreadingFactor::SF10] {
        let d = Demodulator::new(LoRaParams::new(sf, CodingRate::CR4));
        let wave = d.chirps().symbol(42);
        g.bench_with_input(
            BenchmarkId::new("signal_vector", sf.value()),
            &sf,
            |b, _| {
                b.iter(|| d.signal_vector(std::hint::black_box(&wave), 1.5));
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_transmit, bench_demod_symbol);
criterion_main!(benches);
