//! Criterion benches for the DSP substrate: FFT and peak finding — the
//! inner loops of every receiver in the workspace.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tnb_dsp::{find_peaks, Complex32, FftPlan, PeakFinderConfig};

fn bench_fft(c: &mut Criterion) {
    let mut g = c.benchmark_group("fft");
    for &size in &[1024usize, 2048, 8192] {
        let plan = FftPlan::new(size);
        let mut buf: Vec<Complex32> = (0..size)
            .map(|i| Complex32::from_phase(i as f64 * 0.37))
            .collect();
        g.bench_with_input(BenchmarkId::new("forward", size), &size, |b, _| {
            b.iter(|| plan.forward(std::hint::black_box(&mut buf)));
        });
    }
    g.finish();
}

fn bench_peakfinder(c: &mut Criterion) {
    let mut g = c.benchmark_group("peakfinder");
    for &n in &[256usize, 1024] {
        // A realistic collided signal vector: a few peaks over noise.
        let mut s = 0x12345u64;
        let mut rnd = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s % 1000) as f32 / 1000.0
        };
        let mut v: Vec<f32> = (0..n).map(|_| rnd()).collect();
        for k in 0..6 {
            v[(k * 41 + 13) % n] = 20.0 + k as f32;
        }
        let cfg = PeakFinderConfig {
            circular: true,
            max_peaks: Some(12),
            ..PeakFinderConfig::default()
        };
        g.bench_with_input(BenchmarkId::new("circular", n), &n, |b, _| {
            b.iter(|| find_peaks(std::hint::black_box(&v), &cfg));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fft, bench_peakfinder);
criterion_main!(benches);
