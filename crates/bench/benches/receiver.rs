//! Criterion benches for the receiver pipeline stages: detection scan,
//! the 36-point fractional synchronization (vs an exhaustive grid — the
//! ablation DESIGN.md calls out), Thrive checkpoint assignment, and the
//! full TnB decode of a short collided trace.

use criterion::{criterion_group, criterion_main, Criterion};
use tnb_channel::trace::{PacketConfig, TraceBuilder};
use tnb_core::detect::Detector;
use tnb_core::sync::{fractional_sync, SyncConfig};
use tnb_core::{ParallelReceiver, TnbReceiver};
use tnb_phy::demodulate::Demodulator;
use tnb_phy::{CodingRate, LoRaParams, SpreadingFactor};

fn params() -> LoRaParams {
    LoRaParams::new(SpreadingFactor::SF8, CodingRate::CR4)
}

fn two_packet_trace(seed: u64) -> tnb_channel::trace::Trace {
    let p = params();
    let l = p.samples_per_symbol();
    let mut b = TraceBuilder::new(p, seed);
    b.add_packet(
        &[1; 16],
        PacketConfig {
            start_sample: 4_000,
            snr_db: 12.0,
            cfo_hz: 1500.0,
            ..Default::default()
        },
    );
    b.add_packet(
        &[2; 16],
        PacketConfig {
            start_sample: 4_000 + 15 * l + 700,
            snr_db: 9.0,
            cfo_hz: -2200.0,
            ..Default::default()
        },
    );
    b.build()
}

fn bench_detection(c: &mut Criterion) {
    let trace = two_packet_trace(1);
    let det = Detector::new(params());
    c.bench_function("detect/two_packet_trace", |b| {
        b.iter(|| det.detect(std::hint::black_box(trace.samples())));
    });
}

fn bench_sync(c: &mut Criterion) {
    let trace = two_packet_trace(2);
    let demod = Demodulator::new(params());
    let mut g = c.benchmark_group("fractional_sync");
    // The paper's 36-point three-phase search …
    g.bench_function("three_phase_36pt", |b| {
        b.iter(|| {
            fractional_sync(
                std::hint::black_box(trace.samples()),
                &demod,
                4_000,
                3.0,
                &SyncConfig::default(),
            )
        });
    });
    // … against a naive exhaustive grid with the same resolution
    // (17 CFO × 17 timing points = 289 evaluations), approximated by
    // running the phase-1 line 17 times.
    g.bench_function("exhaustive_grid_289pt", |b| {
        b.iter(|| {
            for dt in -8..=8i64 {
                let cfg = SyncConfig {
                    cfo_grid: 17,
                    require_qstar: false,
                };
                let _ = fractional_sync(
                    std::hint::black_box(trace.samples()),
                    &demod,
                    4_000 + dt,
                    3.0,
                    &cfg,
                );
            }
        });
    });
    g.finish();
}

fn bench_full_decode(c: &mut Criterion) {
    let trace = two_packet_trace(3);
    let rx = TnbReceiver::new(params());
    let mut g = c.benchmark_group("tnb_full_decode");
    g.sample_size(10);
    g.bench_function("two_collided_packets", |b| {
        b.iter(|| rx.decode(std::hint::black_box(trace.samples())));
    });
    g.finish();
}

/// Eight staggered packets in well-separated clusters — the workload the
/// parallel receiver fans out.
fn staggered_trace(seed: u64, n: usize) -> tnb_channel::trace::Trace {
    let p = params();
    let l = p.samples_per_symbol();
    let mut b = TraceBuilder::new(p, seed);
    for i in 0..n {
        b.add_packet(
            &[(i as u8 + 1) * 13; 16],
            PacketConfig {
                start_sample: 4_000 + i * 60 * l + i * 137,
                snr_db: 9.0 + (i % 3) as f32,
                cfo_hz: -2_000.0 + 550.0 * i as f64,
                ..Default::default()
            },
        );
    }
    b.build()
}

fn bench_parallel_decode(c: &mut Criterion) {
    let trace = staggered_trace(7, 8);
    let p = params();
    let serial = TnbReceiver::new(p);
    let mut g = c.benchmark_group("parallel_decode");
    g.sample_size(10);
    g.bench_function("serial_8_packets", |b| {
        b.iter(|| serial.decode(std::hint::black_box(trace.samples())));
    });
    for workers in [2usize, 4] {
        let rx = ParallelReceiver::new(p, workers).with_max_payload_len(16);
        g.bench_function(format!("workers_{workers}_8_packets"), |b| {
            b.iter(|| rx.decode(std::hint::black_box(trace.samples())));
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_detection,
    bench_sync,
    bench_full_decode,
    bench_parallel_decode
);
criterion_main!(benches);
