//! Criterion benches for trace synthesis: the ETU tapped delay line and
//! full packet insertion (the dominant cost of building long traces).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tnb_channel::fading::{ChannelModel, TappedChannel};
use tnb_channel::trace::{PacketConfig, TraceBuilder};
use tnb_dsp::Complex32;
use tnb_phy::{CodingRate, LoRaParams, SpreadingFactor};

fn bench_etu(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let ch = TappedChannel::realise(&mut rng, ChannelModel::Etu { doppler_hz: 5.0 }, 1e6)
        .expect("etu channel");
    let input = vec![Complex32::ONE; 131_072]; // one SF8 packet's worth
    c.bench_function("etu_apply/128k_samples", |b| {
        b.iter(|| ch.apply(std::hint::black_box(&input)));
    });
}

fn bench_trace_build(c: &mut Criterion) {
    let params = LoRaParams::new(SpreadingFactor::SF8, CodingRate::CR4);
    let mut g = c.benchmark_group("trace_build");
    g.sample_size(10);
    g.bench_function("ten_packets_awgn", |b| {
        b.iter(|| {
            let mut builder = TraceBuilder::new(params, 3);
            for k in 0..10usize {
                builder.add_packet(
                    &[k as u8; 16],
                    PacketConfig {
                        start_sample: k * 100_000,
                        snr_db: 10.0,
                        cfo_hz: 1000.0,
                        ..Default::default()
                    },
                );
            }
            builder.build()
        });
    });
    g.finish();
}

criterion_group!(benches, bench_etu, bench_trace_build);
criterion_main!(benches);
