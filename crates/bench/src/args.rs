//! Minimal command-line parsing shared by the experiment binaries (no
//! external dependency; flags follow `--name value`).

/// Common experiment knobs.
#[derive(Debug, Clone)]
pub struct ExpArgs {
    /// Trace duration in seconds (default 3; the paper used 30 — offered
    /// load keeps collision statistics duration-invariant, shorter traces
    /// only widen confidence intervals).
    pub duration_s: f64,
    /// Runs (seeds) averaged per data point (paper: 3).
    pub runs: u64,
    /// Offered loads in packets per second (paper: 5..=25 step 5).
    pub loads: Vec<f64>,
    /// Base RNG seed.
    pub seed: u64,
    /// Quick mode: restricts sweeps for smoke tests.
    pub quick: bool,
}

impl Default for ExpArgs {
    fn default() -> Self {
        ExpArgs {
            duration_s: 3.0,
            runs: 1,
            loads: vec![5.0, 10.0, 15.0, 20.0, 25.0],
            seed: 1,
            quick: false,
        }
    }
}

impl ExpArgs {
    /// Parses `std::env::args()`; unknown flags abort with a usage
    /// message.
    pub fn parse() -> Self {
        let mut out = ExpArgs::default();
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--duration" => {
                    out.duration_s = next(&args, &mut i).parse().expect("--duration seconds");
                }
                "--runs" => {
                    out.runs = next(&args, &mut i).parse().expect("--runs count");
                }
                "--seed" => {
                    out.seed = next(&args, &mut i).parse().expect("--seed value");
                }
                "--loads" => {
                    out.loads = next(&args, &mut i)
                        .split(',')
                        .map(|s| s.parse().expect("--loads a,b,c"))
                        .collect();
                }
                "--quick" => {
                    out.quick = true;
                    i += 1;
                }
                other => {
                    eprintln!(
                        "unknown flag {other}; supported: --duration S --runs N --seed N --loads a,b,c --quick"
                    );
                    std::process::exit(2);
                }
            }
        }
        if out.quick {
            out.duration_s = out.duration_s.min(1.5);
            out.loads = vec![*out.loads.last().unwrap_or(&25.0)];
            out.runs = 1;
        }
        out
    }
}

fn next<'a>(args: &'a [String], i: &mut usize) -> &'a str {
    *i += 2;
    args.get(*i - 1)
        .unwrap_or_else(|| panic!("flag {} needs a value", args[*i - 2]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_sweep() {
        let a = ExpArgs::default();
        assert_eq!(a.loads, vec![5.0, 10.0, 15.0, 20.0, 25.0]);
        assert_eq!(a.runs, 1);
    }
}
