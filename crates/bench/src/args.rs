//! Minimal command-line parsing shared by the experiment binaries (no
//! external dependency; flags follow `--name value`).

/// Usage string shared by every experiment binary.
pub const USAGE: &str =
    "supported: --duration S --runs N --seed N --loads a,b,c --json-out FILE --quick";

/// Common experiment knobs.
#[derive(Debug, Clone)]
pub struct ExpArgs {
    /// Trace duration in seconds (default 3; the paper used 30 — offered
    /// load keeps collision statistics duration-invariant, shorter traces
    /// only widen confidence intervals).
    pub duration_s: f64,
    /// Runs (seeds) averaged per data point (paper: 3).
    pub runs: u64,
    /// Offered loads in packets per second (paper: 5..=25 step 5).
    pub loads: Vec<f64>,
    /// Base RNG seed.
    pub seed: u64,
    /// Write machine-readable results (BENCH JSON, including stage
    /// timings when the binary records them) to this path.
    pub json_out: Option<String>,
    /// Quick mode: restricts sweeps for smoke tests.
    pub quick: bool,
}

impl Default for ExpArgs {
    fn default() -> Self {
        ExpArgs {
            duration_s: 3.0,
            runs: 1,
            loads: vec![5.0, 10.0, 15.0, 20.0, 25.0],
            seed: 1,
            json_out: None,
            quick: false,
        }
    }
}

impl ExpArgs {
    /// Parses `std::env::args()`; malformed or unknown flags abort with a
    /// message naming the offending flag plus the usage line.
    pub fn parse() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        match Self::try_parse(&args) {
            Ok(out) => out,
            Err(msg) => {
                eprintln!("{msg}; {USAGE}");
                std::process::exit(2);
            }
        }
    }

    /// Parses an argument slice, returning a usage error (naming the
    /// offending flag) instead of panicking on malformed input.
    pub fn try_parse(args: &[String]) -> Result<Self, String> {
        let mut out = ExpArgs::default();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--duration" => {
                    out.duration_s = parse_value(args, &mut i, "--duration", "seconds")?;
                }
                "--runs" => {
                    out.runs = parse_value(args, &mut i, "--runs", "a count")?;
                }
                "--seed" => {
                    out.seed = parse_value(args, &mut i, "--seed", "an integer")?;
                }
                "--loads" => {
                    out.loads = next(args, &mut i, "--loads")?
                        .split(',')
                        .map(|s| {
                            s.parse().map_err(|_| {
                                format!("--loads expects comma-separated numbers, got {s:?}")
                            })
                        })
                        .collect::<Result<_, _>>()?;
                    if out.loads.is_empty() {
                        return Err("--loads expects at least one load".into());
                    }
                }
                "--json-out" => {
                    out.json_out = Some(next(args, &mut i, "--json-out")?.to_string());
                }
                "--quick" => {
                    out.quick = true;
                    i += 1;
                }
                other => {
                    return Err(format!("unknown flag {other}"));
                }
            }
        }
        if out.quick {
            out.duration_s = out.duration_s.min(1.5);
            out.loads = vec![*out.loads.last().unwrap_or(&25.0)];
            out.runs = 1;
        }
        Ok(out)
    }
}

fn next<'a>(args: &'a [String], i: &mut usize, flag: &str) -> Result<&'a str, String> {
    *i += 2;
    args.get(*i - 1)
        .map(String::as_str)
        .ok_or_else(|| format!("flag {flag} needs a value"))
}

fn parse_value<T: std::str::FromStr>(
    args: &[String],
    i: &mut usize,
    flag: &str,
    expects: &str,
) -> Result<T, String> {
    let raw = next(args, i, flag)?;
    raw.parse()
        .map_err(|_| format!("{flag} expects {expects}, got {raw:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults_match_paper_sweep() {
        let a = ExpArgs::default();
        assert_eq!(a.loads, vec![5.0, 10.0, 15.0, 20.0, 25.0]);
        assert_eq!(a.runs, 1);
    }

    #[test]
    fn parses_all_flags() {
        let a = ExpArgs::try_parse(&argv(&[
            "--duration",
            "2.5",
            "--runs",
            "4",
            "--seed",
            "9",
            "--loads",
            "5,10",
            "--json-out",
            "out.json",
        ]))
        .unwrap();
        assert_eq!(a.duration_s, 2.5);
        assert_eq!(a.runs, 4);
        assert_eq!(a.seed, 9);
        assert_eq!(a.loads, vec![5.0, 10.0]);
        assert_eq!(a.json_out.as_deref(), Some("out.json"));
    }

    #[test]
    fn malformed_values_name_the_flag() {
        for (args, flag) in [
            (argv(&["--duration", "abc"]), "--duration"),
            (argv(&["--runs", "1.5"]), "--runs"),
            (argv(&["--seed", "xyzzy"]), "--seed"),
            (argv(&["--loads", "5,ten"]), "--loads"),
        ] {
            let err = ExpArgs::try_parse(&args).unwrap_err();
            assert!(err.contains(flag), "{err:?} should mention {flag}");
        }
    }

    #[test]
    fn missing_value_and_unknown_flag_are_errors() {
        let err = ExpArgs::try_parse(&argv(&["--seed"])).unwrap_err();
        assert!(err.contains("--seed"), "{err:?}");
        let err = ExpArgs::try_parse(&argv(&["--frobnicate"])).unwrap_err();
        assert!(err.contains("--frobnicate"), "{err:?}");
    }

    #[test]
    fn quick_mode_restricts_sweep() {
        let a = ExpArgs::try_parse(&argv(&["--quick"])).unwrap();
        assert!(a.quick);
        assert_eq!(a.loads, vec![25.0]);
        assert_eq!(a.runs, 1);
    }
}
