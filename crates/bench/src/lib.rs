//! Shared utilities for the experiment binaries in `src/bin/` (one binary
//! per paper table/figure) and the Criterion benches in `benches/`.

pub mod args;
pub mod table;

pub use args::ExpArgs;
pub use table::TablePrinter;
