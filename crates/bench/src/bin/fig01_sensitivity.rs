//! Fig. 1(b)/(c): sensitivity of the de-chirped peak height to symbol
//! boundary (timing) error and to residual CFO.
//!
//! Prints two series: normalized peak height vs timing error (fraction of
//! a symbol) and vs residual CFO (cycles per symbol).

use tnb_bench::TablePrinter;
use tnb_dsp::Complex32;
use tnb_phy::demodulate::Demodulator;
use tnb_phy::{CodingRate, LoRaParams, SpreadingFactor};

fn main() {
    let p = LoRaParams::new(SpreadingFactor::SF8, CodingRate::CR4);
    let d = Demodulator::new(p);
    let l = p.samples_per_symbol();
    let h = 1u16; // the symbol shown in the paper's Fig. 1(a)

    println!("Fig. 1(b): peak height vs symbol-boundary error (SF 8)\n");
    let mut t = TablePrinter::new(["timing error (symbols)", "relative peak height"]);
    // Two consecutive symbols; slide the window across the boundary.
    let wave = [d.chirps().symbol(h), d.chirps().symbol(200)].concat();
    let (_, h0) = d.demod_symbol(&wave[..l], 0.0);
    for step in 0..=10 {
        let frac = step as f64 / 20.0; // up to half a symbol
        let off = (frac * l as f64).round() as usize;
        let y = d.signal_vector(&wave[off..off + l], 0.0);
        // A window offset by `off` samples shifts the peak by off/U bins;
        // read the (reduced) peak at its displaced location, ±1 bin.
        let n = p.n();
        let shifted = (h as usize + off / p.osf) % n;
        let height = (0..3)
            .map(|k| y[(shifted + n + k - 1) % n])
            .fold(0.0f32, f32::max);
        t.row([format!("{frac:.2}"), format!("{:.3}", height / h0)]);
    }
    t.print();

    println!("\nFig. 1(c): peak height vs residual CFO (SF 8)\n");
    let mut t = TablePrinter::new(["residual CFO (cycles/symbol)", "relative peak height"]);
    let clean = d.chirps().symbol(h);
    for step in 0..=10 {
        let cfo = step as f64 / 20.0; // up to 0.5 cycles
        let shifted: Vec<Complex32> = clean
            .iter()
            .enumerate()
            .map(|(n, &z)| {
                z * Complex32::from_phase(2.0 * std::f64::consts::PI * cfo * n as f64 / l as f64)
            })
            .collect();
        let y = d.signal_vector(&shifted, 0.0);
        t.row([format!("{cfo:.2}"), format!("{:.3}", y[h as usize] / h0)]);
    }
    t.print();
}
