//! Fig. 8: the synchronization objective `Q(δt, δf)` of one packet, and
//! the `Q*`-gated variant, over a grid of fractional timing and CFO
//! offsets. Shows why the 3-phase search works: `Q` ridges repeat at ±1
//! bin in `δf`; `Q*` keeps only the true one.

use tnb_channel::trace::{PacketConfig, TraceBuilder};
use tnb_core::sync::{fractional_sync, SyncConfig};
use tnb_phy::demodulate::Demodulator;
use tnb_phy::{CodingRate, LoRaParams, SpreadingFactor};

fn main() {
    let p = LoRaParams::new(SpreadingFactor::SF8, CodingRate::CR4);
    let demod = Demodulator::new(p);
    let start = 5_000usize;
    let cfo_hz = 1700.0; // fractional part ≈ 0.48 bins
    let mut b = TraceBuilder::new(p, 42);
    b.add_packet(
        &[0x5A; 16],
        PacketConfig {
            start_sample: start,
            snr_db: 10.0,
            cfo_hz,
            ..Default::default()
        },
    );
    let trace = b.build();

    let cfo_bins = cfo_hz / p.bin_hz();
    let cfo_int = cfo_bins.round();
    println!(
        "Q(δt, δf) for a packet at sample {start} with CFO {cfo_hz} Hz = {cfo_bins:.3} bins (coarse estimate {cfo_int})\n"
    );
    println!("rows: δt in chips; columns: δf in bins relative to the coarse estimate");
    print!("{:>6}", "δt\\δf");
    let dfs: Vec<f64> = (-8..=8).map(|i| i as f64 / 8.0).collect();
    for df in &dfs {
        print!("{df:>7.2}");
    }
    println!();
    for ti in -4..=4i64 {
        let dt = ti as f64 / 4.0;
        print!("{dt:>6.2}");
        for &df in &dfs {
            // Evaluate Q by running the internal machinery through the
            // public API: a one-point sync at (dt, df) equals shifting
            // start and CFO.
            let q = probe_q(&demod, trace.samples(), start as i64, dt, cfo_int + df);
            print!("{:>7.2}", q);
        }
        println!();
    }

    // And the actual 36-point search result.
    let r = fractional_sync(
        trace.samples(),
        &demod,
        start as i64,
        cfo_int,
        &SyncConfig::default(),
    );
    match r {
        Some(pkt) => println!(
            "\n3-phase search: start {:.1} (true {start}), CFO {:.3} bins (true {cfo_bins:.3})",
            pkt.start, pkt.cfo_cycles
        ),
        None => println!("\n3-phase search failed"),
    }
}

/// Normalized Q at one (δt, δf): coherent preamble peak energy.
fn probe_q(
    demod: &Demodulator,
    samples: &[tnb_dsp::Complex32],
    start: i64,
    dt_chips: f64,
    cfo: f64,
) -> f32 {
    let p = demod.params();
    let l = p.samples_per_symbol() as i64;
    let shift = (dt_chips * p.osf as f64).round() as i64;
    let base = start + shift;
    let mut sum = vec![tnb_dsp::Complex32::ZERO; l as usize];
    for j in 0..8i64 {
        let s = base + j * l;
        if s < 0 || (s + l) as usize > samples.len() {
            return 0.0;
        }
        let spec = demod.complex_spectrum(&samples[s as usize..(s + l) as usize], cfo);
        let rot = tnb_dsp::Complex32::from_phase(-2.0 * std::f64::consts::PI * cfo * j as f64);
        for (a, b) in sum.iter_mut().zip(spec) {
            *a += b * rot;
        }
    }
    let folded = demod.fold(&sum);
    let max = folded.iter().copied().fold(0.0f32, f32::max);
    // Normalize by the ideal coherent energy (8 symbols × L)².
    max / ((8 * l) as f32 * (8 * l) as f32) * 100.0
}
