//! Fig. 17: packet reception ratio of TnB and CIC within SNR ranges at
//! the highest load. Each cell aggregates packets whose (ground-truth)
//! node SNR falls in the range.

use std::collections::HashMap;
use tnb_baselines::SchemeKind;
use tnb_bench::{ExpArgs, TablePrinter};
use tnb_phy::{CodingRate, LoRaParams, SpreadingFactor};
use tnb_sim::{build_experiment, run_scheme, Deployment, ExperimentConfig};

const RANGES: [(f32, f32); 4] = [(-10.0, 0.0), (0.0, 5.0), (5.0, 10.0), (10.0, 40.0)];

fn range_of(snr: f32) -> Option<usize> {
    RANGES.iter().position(|&(lo, hi)| snr >= lo && snr < hi)
}

fn main() {
    let args = ExpArgs::parse();
    let load = args.loads.iter().copied().fold(0.0f64, f64::max);
    let sfs = if args.quick {
        vec![SpreadingFactor::SF8]
    } else {
        vec![SpreadingFactor::SF8, SpreadingFactor::SF10]
    };
    println!("Fig. 17: PRR by ground-truth SNR range at {load} pkt/s\n");
    for &sf in &sfs {
        println!("== SF {} ==", sf.value());
        let mut t = TablePrinter::new(["range (dB)", "sent", "TnB PRR", "CIC PRR"]);
        // sent / decoded per range per scheme, aggregated over deployments
        // and CRs.
        let mut sent = [0usize; RANGES.len()];
        let mut got: HashMap<&str, [usize; RANGES.len()]> = HashMap::new();
        let crs = if args.quick {
            vec![CodingRate::CR4]
        } else {
            CodingRate::ALL.to_vec()
        };
        for dep in if args.quick {
            vec![Deployment::Indoor]
        } else {
            Deployment::ALL.to_vec()
        } {
            for &cr in &crs {
                let params = LoRaParams::new(sf, cr);
                let cfg = ExperimentConfig {
                    load_pps: load,
                    duration_s: args.duration_s,
                    seed: args.seed,
                    ..ExperimentConfig::new(params, dep)
                };
                let built = build_experiment(&cfg);
                // Ground-truth SNR per (node, seq) from the trace truth.
                let snr_of: HashMap<(u32, u32), f32> = built
                    .trace
                    .truth
                    .iter()
                    .map(|g| ((g.node_id, g.seq), g.snr_db))
                    .collect();
                for p in &built.schedule {
                    if let Some(ri) = snr_of.get(&(p.node, p.seq)).and_then(|&s| range_of(s)) {
                        sent[ri] += 1;
                    }
                }
                for kind in [SchemeKind::Tnb, SchemeKind::Cic] {
                    let r = run_scheme(kind.build(params).as_ref(), &built);
                    let bucket = got.entry(kind.name()).or_insert([0; RANGES.len()]);
                    for key in &r.matched.correct {
                        if let Some(ri) = snr_of.get(key).and_then(|&s| range_of(s)) {
                            bucket[ri] += 1;
                        }
                    }
                }
            }
        }
        for (ri, &(lo, hi)) in RANGES.iter().enumerate() {
            let prr = |s: &str| {
                let g = got.get(s).map(|b| b[ri]).unwrap_or(0);
                if sent[ri] == 0 {
                    0.0
                } else {
                    g as f64 / sent[ri] as f64
                }
            };
            t.row([
                format!("[{lo}, {hi})"),
                format!("{}", sent[ri]),
                format!("{:.2}", prr("TnB")),
                format!("{:.2}", prr("CIC")),
            ]);
        }
        t.print();
        println!();
    }
    println!("paper: higher SNR -> higher PRR; TnB >= CIC in (almost) all ranges");
}
