//! Fig. 19: PRR under the LTE ETU fading channel (strong multipath, 5 Hz
//! Doppler) for CIC, CIC+, AlignTrack*, AlignTrack*+, Thrive, TnB and
//! TnB2ant (two receive antennas), per SF and CR.
//!
//! As in the paper (§8.5): SNR uniform in [0, 20] dB for SF 8 and
//! [−6, 14] dB for SF 10; CFO uniform in ±4.88 kHz; load chosen so that
//! TnB2ant reaches high PRR.

use tnb_baselines::SchemeKind;
use tnb_bench::{ExpArgs, TablePrinter};
use tnb_channel::fading::ChannelModel;
use tnb_phy::{CodingRate, LoRaParams, SpreadingFactor};
use tnb_sim::{build_experiment, run_scheme_limited, Deployment, ExperimentConfig};

fn main() {
    let args = ExpArgs::parse();
    let schemes = [
        SchemeKind::Cic,
        SchemeKind::CicBec,
        SchemeKind::AlignTrack,
        SchemeKind::AlignTrackBec,
        SchemeKind::Thrive,
        SchemeKind::Tnb,
    ];
    let sfs = if args.quick {
        vec![SpreadingFactor::SF8]
    } else {
        vec![SpreadingFactor::SF8, SpreadingFactor::SF10]
    };
    let crs = if args.quick {
        vec![CodingRate::CR4]
    } else {
        CodingRate::ALL.to_vec()
    };
    println!("Fig. 19: PRR in the ETU channel (5 us delay spread, 5 Hz Doppler)\n");
    for &sf in &sfs {
        let snr_range = match sf {
            SpreadingFactor::SF8 => (0.0f32, 20.0f32),
            _ => (-6.0, 14.0),
        };
        // Moderate load so TnB2ant can approach its ceiling (the paper
        // picks the load so TnB2ant exceeds 0.9 for at least one CR).
        let load = match sf {
            SpreadingFactor::SF8 => 5.0,
            _ => 3.0,
        };
        println!(
            "== SF {} | SNR in [{}, {}] dB | load {load} pkt/s ==",
            sf.value(),
            snr_range.0,
            snr_range.1
        );
        let mut t = TablePrinter::new({
            let mut h = vec!["CR".to_string()];
            h.extend(schemes.iter().map(|s| s.name().to_string()));
            h.push("TnB2ant".to_string());
            h
        });
        for &cr in &crs {
            let params = LoRaParams::new(sf, cr);
            let mut row = vec![format!("{}", cr.value())];
            let mut prrs: Vec<f64> = vec![0.0; schemes.len() + 1];
            for run in 0..args.runs {
                let cfg = ExperimentConfig {
                    load_pps: load,
                    duration_s: args.duration_s,
                    seed: args.seed + run * 999,
                    channel: ChannelModel::Etu { doppler_hz: 5.0 },
                    antennas: 2,
                    snr_range_db: Some(snr_range),
                    ..ExperimentConfig::new(params, Deployment::Outdoor1)
                };
                let built = build_experiment(&cfg);
                for (k, kind) in schemes.iter().enumerate() {
                    let r = run_scheme_limited(kind.build(params).as_ref(), &built, 1);
                    prrs[k] += r.prr / args.runs as f64;
                }
                // TnB2ant: both antennas.
                let r = run_scheme_limited(SchemeKind::Tnb.build(params).as_ref(), &built, 2);
                prrs[schemes.len()] += r.prr / args.runs as f64;
            }
            for p in prrs {
                row.push(format!("{p:.2}"));
            }
            t.row(row);
        }
        t.print();
        println!();
    }
    println!(
        "paper: TnB2ant near/above 0.9; TnB and Thrive gain more over CIC than in the testbed;"
    );
    println!("       BEC improves CIC and AlignTrack* whenever combined");
}
