//! Deployment capacity curve: goodput, PRR and delay percentiles vs
//! offered load for a seeded city, decoded by plain TnB and by TnB+SIC.
//! This is the network-level headline the paper's trace-level figures
//! imply: collision resolution translates directly into deployment
//! capacity. Emits BENCH JSON rows under `--json-out`.

use tnb_bench::{ExpArgs, TablePrinter};
use tnb_deploy::{run_deploy, DeployConfig, Scene};
use tnb_phy::SpreadingFactor;

/// One scheme at one load point.
struct Row {
    load_pps: f64,
    scheme: &'static str,
    offered: usize,
    delivered: usize,
    goodput_pps: f64,
    prr: f64,
    delay_ms: (f64, f64, f64),
    duplicates: u64,
}

fn run_point(cfg: &DeployConfig, sic: bool, workers: usize) -> Row {
    let mut cfg = cfg.clone();
    cfg.sic = sic;
    let scene = Scene::new(cfg);
    let report = run_deploy(&scene, workers);
    let n = &report.network;
    Row {
        load_pps: report.load_pps,
        scheme: if sic { "tnb+sic" } else { "tnb" },
        offered: report.offered,
        delivered: n.deliveries.len(),
        goodput_pps: n.goodput_pps(report.duration_s),
        prr: n.prr(report.offered),
        delay_ms: n.delay_percentiles_ms(),
        duplicates: n.duplicates,
    }
}

fn main() {
    let args = ExpArgs::parse();
    // The city shrinks in quick mode but keeps two load points: the
    // CI gate compares the schemes at *every* point, so a one-point
    // "curve" would weaken it.
    let (loads, duration_s, nodes) = if args.quick {
        (vec![10.0, 30.0], 0.4, 5_000u32)
    } else {
        (args.loads.clone(), args.duration_s.min(2.0), 20_000)
    };
    let base = DeployConfig {
        nodes,
        gateways: 2,
        sfs: vec![SpreadingFactor::SF7, SpreadingFactor::SF8],
        side_m: 700.0,
        duration_s,
        seed: args.seed,
        shard_samples: 500_000,
        ..DeployConfig::default()
    };
    let workers = std::thread::available_parallelism().map_or(2, |n| n.get().min(8));
    println!(
        "Capacity curve: {} nodes, {} gateways, SF{{7,8}}, {duration_s} s per point, \
         seed {} ({} load points, tnb vs tnb+sic)\n",
        base.nodes,
        base.gateways,
        base.seed,
        loads.len(),
    );
    let mut t = TablePrinter::new([
        "load (pps)",
        "scheme",
        "offered",
        "delivered",
        "goodput (pps)",
        "PRR",
        "p50/p95/p99 delay (ms)",
    ]);
    let mut rows: Vec<Row> = Vec::new();
    for &load in &loads {
        for sic in [false, true] {
            let mut cfg = base.clone();
            cfg.load_pps = load;
            let row = run_point(&cfg, sic, workers);
            t.row([
                format!("{load}"),
                row.scheme.to_string(),
                format!("{}", row.offered),
                format!("{}", row.delivered),
                format!("{:.2}", row.goodput_pps),
                format!("{:.3}", row.prr),
                format!(
                    "{:.1}/{:.1}/{:.1}",
                    row.delay_ms.0, row.delay_ms.1, row.delay_ms.2
                ),
            ]);
            rows.push(row);
        }
    }
    t.print();
    println!(
        "\nSIC rescues only add deliveries, so tnb+sic goodput must be >= tnb at every load point"
    );

    if let Some(path) = &args.json_out {
        let json_rows: Vec<String> = rows
            .iter()
            .map(|r| {
                format!(
                    "{{\"load_pps\":{},\"scheme\":\"{}\",\"offered\":{},\
                     \"delivered\":{},\"goodput_pps\":{:.4},\"prr\":{:.4},\
                     \"delay_p50_ms\":{:.3},\"delay_p95_ms\":{:.3},\
                     \"delay_p99_ms\":{:.3},\"duplicates\":{}}}",
                    r.load_pps,
                    r.scheme,
                    r.offered,
                    r.delivered,
                    r.goodput_pps,
                    r.prr,
                    r.delay_ms.0,
                    r.delay_ms.1,
                    r.delay_ms.2,
                    r.duplicates,
                )
            })
            .collect();
        let body = format!(
            "{{\"benchmark\":\"capacity_curve\",\"nodes\":{},\"gateways\":{},\
             \"duration_s\":{duration_s},\"seed\":{},\"rows\":[{}]}}",
            base.nodes,
            base.gateways,
            base.seed,
            json_rows.join(","),
        );
        match std::fs::write(path, body) {
            Ok(()) => println!("wrote {path} ({} rows)", json_rows.len()),
            Err(e) => eprintln!("failed to write {path}: {e}"),
        }
    }
}
