//! Wideband channelizer throughput: synthesizes an 8-channel wideband
//! scene (one packet per occupied LoRa uplink channel), streams it
//! through the gateway daemon with the wire protocol's WIDEBAND flag,
//! and reports end-to-end packets/sec and samples/sec — while checking
//! the uplink transcript is byte-identical to a direct in-process
//! `WidebandReceiver` decode. The JSON row (`--json-out`) feeds the
//! BENCH_throughput.json artifact and the CI packets/sec regression
//! gate against `results/channelizer_baseline.json`.

use tnb_bench::{ExpArgs, TablePrinter};
use tnb_phy::{CodingRate, LoRaParams, SpreadingFactor};
use tnb_sim::wideband::{bench_wideband, WidebandLoopbackConfig};

fn main() {
    let args = ExpArgs::parse();
    let params = LoRaParams::new(SpreadingFactor::SF8, CodingRate::CR4);
    let mut cfg = WidebandLoopbackConfig::new(params);
    cfg.seed = args.seed.wrapping_add(39);
    if !args.quick {
        // Spread packets across more of the band (channel edges stay
        // covered by the dsp chunk-invariance and wideband unit tests).
        cfg.occupied = vec![1, 2, 4, 5, 6];
    }
    let bench = match bench_wideband(&cfg) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("wideband loopback failed: {e}");
            std::process::exit(1);
        }
    };
    if !bench.byte_identical {
        eprintln!("wideband loopback diverged from the in-process reference decode");
        std::process::exit(1);
    }

    println!(
        "Wideband channelizer loopback: {} channels, {} occupied, seed {}\n",
        bench.per_channel.len(),
        cfg.occupied.len(),
        cfg.seed
    );
    let mut t = TablePrinter::new(["channel", "packets"]);
    for (c, n) in bench.per_channel.iter().enumerate() {
        t.row([format!("{c}"), format!("{n}")]);
    }
    t.print();
    println!(
        "\n{} packets uplinked over {:.1} Msamples: {:.1} packets/s, {:.2} Msamples/s, byte-identical",
        bench.uplinked,
        bench.samples as f64 / 1e6,
        bench.packets_per_sec,
        bench.samples_per_sec / 1e6,
    );

    if let Some(path) = &args.json_out {
        let body = format!(
            "{{\"benchmark\":\"channelizer_throughput\",\"seed\":{},\
             \"occupied\":{},\"wideband\":{}}}",
            cfg.seed,
            cfg.occupied.len(),
            bench.to_json(),
        );
        match std::fs::write(path, body) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => eprintln!("failed to write {path}: {e}"),
        }
    }
}
