//! Near-far rescue sweep: a weak packet whose preamble is buried under a
//! strong collider ΔSNR louder. Plain TnB cannot detect the weak
//! preamble at large ΔSNR; the SIC rescue pass reconstructs and
//! subtracts the strong packet and re-decodes the residual. Reports the
//! weak-packet PRR for TnB vs TnB+SIC per power delta, plus the rescue
//! tally, as a BENCH JSON row set under `--json-out`.

use tnb_bench::{ExpArgs, TablePrinter};
use tnb_channel::trace::{PacketConfig, TraceBuilder};
use tnb_core::{PipelineMetrics, SicConfig, TnbConfig, TnbReceiver};
use tnb_phy::{CodingRate, LoRaParams, SpreadingFactor};

const WEAK_SNR_DB: f32 = 3.0;
const DELTAS_DB: [f32; 4] = [9.0, 12.0, 15.0, 18.0];

fn sic_on() -> TnbConfig {
    TnbConfig {
        sic: SicConfig {
            enabled: true,
            ..SicConfig::default()
        },
        ..TnbConfig::default()
    }
}

/// One seeded scene: the weak preamble starts 3⅓ symbols into the strong
/// packet, with distinct CFOs and fractional delays per node.
fn near_far_trace(p: LoRaParams, seed: u64, delta_db: f32) -> (Vec<tnb_dsp::Complex32>, Vec<u8>) {
    let l = p.samples_per_symbol();
    let weak_payload = vec![0x57u8; 16];
    let mut b = TraceBuilder::new(p, seed);
    b.add_packet(
        &[0xA5u8; 16],
        PacketConfig {
            start_sample: 4_000,
            snr_db: WEAK_SNR_DB + delta_db,
            cfo_hz: -1_800.0,
            frac_delay: 0.41,
            node_id: 1,
            ..Default::default()
        },
    );
    b.add_packet(
        &weak_payload,
        PacketConfig {
            start_sample: 4_000 + 3 * l + l / 3,
            snr_db: WEAK_SNR_DB,
            cfo_hz: 2_400.0,
            frac_delay: 0.73,
            node_id: 2,
            ..Default::default()
        },
    );
    (b.build().samples().to_vec(), weak_payload)
}

fn main() {
    let args = ExpArgs::parse();
    let seeds = if args.quick { 2 } else { args.runs.max(5) };
    let p = LoRaParams::new(SpreadingFactor::SF8, CodingRate::CR4);
    println!(
        "Near-far rescue sweep: weak packet at {WEAK_SNR_DB} dB SNR under a \
         collider ΔSNR louder ({seeds} seeds per Δ, SF 8, CR 4)\n"
    );
    let mut t = TablePrinter::new(["ΔSNR (dB)", "TnB weak PRR", "TnB+SIC weak PRR", "rescues"]);
    let mut json_rows: Vec<String> = Vec::new();
    for delta in DELTAS_DB {
        let mut weak_plain = 0usize;
        let mut weak_sic = 0usize;
        let mut rescues = 0u64;
        for k in 0..seeds {
            let (trace, weak) = near_far_trace(p, args.seed + 41 + k, delta);
            let (plain, _) = TnbReceiver::new(p)
                .decode_multi_report_observed(&[&trace], &PipelineMetrics::disabled());
            weak_plain += usize::from(plain.iter().any(|d| d.payload == weak));
            let (sic, report) = TnbReceiver::with_config(p, sic_on())
                .decode_multi_report_observed(&[&trace], &PipelineMetrics::disabled());
            weak_sic += usize::from(sic.iter().any(|d| d.payload == weak));
            rescues += report.second_pass_rescues as u64;
        }
        let prr = |n: usize| n as f64 / seeds as f64;
        t.row([
            format!("{delta}"),
            format!("{:.2}", prr(weak_plain)),
            format!("{:.2}", prr(weak_sic)),
            format!("{rescues}"),
        ]);
        json_rows.push(format!(
            "{{\"delta_db\":{delta},\"seeds\":{seeds},\
             \"weak_prr_tnb\":{:.4},\"weak_prr_tnb_sic\":{:.4},\
             \"second_pass_rescues\":{rescues}}}",
            prr(weak_plain),
            prr(weak_sic),
        ));
    }
    t.print();
    println!("\nTnB+SIC must strictly improve the weak-packet PRR wherever the strong collider masks the weak preamble");

    if let Some(path) = &args.json_out {
        let body = format!(
            "{{\"benchmark\":\"nearfar_sic\",\"weak_snr_db\":{WEAK_SNR_DB},\
             \"rows\":[{}]}}",
            json_rows.join(","),
        );
        match std::fs::write(path, body) {
            Ok(()) => println!("wrote {path} ({} rows)", json_rows.len()),
            Err(e) => eprintln!("failed to write {path}: {e}"),
        }
    }
}
