//! Fig. 20: BEC decoding-error probability for CR 4 with three error
//! columns — the Lemma 4 closed form vs Monte-Carlo simulation, for
//! SF 7..=12.

use tnb_bench::TablePrinter;
use tnb_core::bec::analysis::{lemma4_error_probability, simulate_3col_error_probability};

fn main() {
    let trials = if std::env::args().any(|a| a == "--quick") {
        20_000
    } else {
        200_000
    };
    println!(
        "Fig. 20: decoding error probability, CR 4, 3 error columns ({trials} trials/point)\n"
    );
    let mut t = TablePrinter::new(["SF", "analysis (Lemma 4)", "simulation"]);
    for sf in 7..=12usize {
        let a = lemma4_error_probability(sf);
        let s = simulate_3col_error_probability(sf, trials, 0xF1620 + sf as u64);
        t.row([format!("{sf}"), format!("{a:.5}"), format!("{s:.5}")]);
    }
    t.print();
    println!(
        "\npaper: error probability < 0.04 at SF 7, decreasing with SF; analysis ≈ simulation"
    );
}
