//! Figs. 12–14: decoded throughput vs offered load for the three
//! deployments, SF ∈ {8, 10} × CR ∈ {1..4}, schemes TnB / CIC /
//! AlignTrack* / LoRaPHY — the paper's headline comparison.
//!
//! Also prints the paper's summary statistic: the median throughput gain
//! of TnB over CIC at the highest load, per SF.

use tnb_baselines::SchemeKind;
use tnb_bench::{ExpArgs, TablePrinter};
use tnb_phy::{CodingRate, LoRaParams, SpreadingFactor};
use tnb_sim::{build_experiment, run_scheme, run_scheme_observed, Deployment, ExperimentConfig};

fn main() {
    let args = ExpArgs::parse();
    // With --json-out, rows (throughput per cell, plus TnB stage timings
    // from the observability layer) are also written as BENCH JSON.
    let mut json_rows: Vec<String> = Vec::new();
    let schemes = [
        SchemeKind::Tnb,
        SchemeKind::TnbSic,
        SchemeKind::Cic,
        SchemeKind::AlignTrack,
        SchemeKind::LoRaPhy,
    ];
    let sfs = if args.quick {
        vec![SpreadingFactor::SF8]
    } else {
        vec![SpreadingFactor::SF8, SpreadingFactor::SF10]
    };
    let crs = if args.quick {
        vec![CodingRate::CR4]
    } else {
        CodingRate::ALL.to_vec()
    };
    let deployments = if args.quick {
        vec![Deployment::Indoor]
    } else {
        Deployment::ALL.to_vec()
    };

    // Collect TnB/CIC ratios at the highest load for the summary.
    let mut gains: std::collections::HashMap<usize, Vec<f64>> = Default::default();
    let top_load = args.loads.iter().copied().fold(0.0f64, f64::max);

    for dep in &deployments {
        for &sf in &sfs {
            for &cr in &crs {
                let params = LoRaParams::new(sf, cr);
                println!(
                    "\n== {} | SF {} | CR {} | throughput (pkt/s) vs offered load ==",
                    dep.name(),
                    sf.value(),
                    cr.value()
                );
                let mut t = TablePrinter::new({
                    let mut h = vec!["load".to_string()];
                    h.extend(schemes.iter().map(|s| s.name().to_string()));
                    h
                });
                for &load in &args.loads {
                    let mut row = vec![format!("{load}")];
                    let mut tp = std::collections::HashMap::new();
                    let mut tnb_metrics = None;
                    let mut sic_rescues = 0u64;
                    for run in 0..args.runs {
                        let cfg = ExperimentConfig {
                            load_pps: load,
                            duration_s: args.duration_s,
                            seed: args.seed + run * 1000 + load as u64,
                            ..ExperimentConfig::new(params, *dep)
                        };
                        let built = build_experiment(&cfg);
                        for kind in schemes {
                            let scheme = kind.build(params);
                            let observed = matches!(kind, SchemeKind::Tnb | SchemeKind::TnbSic);
                            let r = if observed && args.json_out.is_some() {
                                let r = run_scheme_observed(scheme.as_ref(), &built, 1);
                                if kind == SchemeKind::Tnb {
                                    tnb_metrics = r.stage_metrics;
                                } else if let Some(rep) = &r.report {
                                    sic_rescues += rep.second_pass_rescues as u64;
                                }
                                r
                            } else {
                                run_scheme(scheme.as_ref(), &built)
                            };
                            *tp.entry(kind.name()).or_insert(0.0) +=
                                r.throughput_pps / args.runs as f64;
                        }
                    }
                    for kind in schemes {
                        row.push(format!("{:.2}", tp[kind.name()]));
                    }
                    if args.json_out.is_some() {
                        for kind in schemes {
                            let mut obj = format!(
                                "{{\"deployment\":\"{}\",\"sf\":{},\"cr\":{},\"load\":{load},\
                                 \"scheme\":\"{}\",\"throughput_pps\":{:.4}",
                                dep.name(),
                                sf.value(),
                                cr.value(),
                                kind.name(),
                                tp[kind.name()],
                            );
                            if kind == SchemeKind::Tnb {
                                if let Some(snap) = &tnb_metrics {
                                    obj.push_str(",\"metrics\":");
                                    obj.push_str(&snap.to_json());
                                }
                            }
                            if kind == SchemeKind::TnbSic {
                                obj.push_str(&format!(",\"second_pass_rescues\":{sic_rescues}"));
                            }
                            obj.push('}');
                            json_rows.push(obj);
                        }
                    }
                    if (load - top_load).abs() < 1e-9 {
                        let cic = tp["CIC"].max(1e-9);
                        gains.entry(sf.value()).or_default().push(tp["TnB"] / cic);
                    }
                    t.row(row);
                }
                t.print();
            }
        }
    }

    if let Some(path) = &args.json_out {
        let body = format!(
            "{{\"benchmark\":\"fig12_14_throughput\",\"duration_s\":{},\"runs\":{},\
             \"rows\":[{}]}}",
            args.duration_s,
            args.runs,
            json_rows.join(","),
        );
        match std::fs::write(path, body) {
            Ok(()) => println!("\nwrote {path} ({} rows)", json_rows.len()),
            Err(e) => eprintln!("\nfailed to write {path}: {e}"),
        }
    }

    println!("\n== summary: TnB/CIC throughput ratio at the highest load ==");
    for (sf, mut g) in gains {
        g.sort_by(f64::total_cmp);
        let median = g[g.len() / 2];
        println!(
            "SF {sf}: median {median:.2}x over {} (deployment x CR) cells (paper: 1.36x for SF 8, 2.46x for SF 10)",
            g.len()
        );
    }
}
