//! Fig. 10: CDF of the estimated SNR of the nodes in the three
//! deployments, from the packets TnB decodes (as in the paper, SNRs are
//! estimated from peak heights of decoded packets).

use std::collections::HashMap;
use tnb_baselines::SchemeKind;
use tnb_bench::ExpArgs;
use tnb_phy::{CodingRate, LoRaParams, SpreadingFactor};
use tnb_sim::{build_experiment, run_scheme, Deployment, ExperimentConfig};

fn main() {
    let args = ExpArgs::parse();
    let sfs = if args.quick {
        vec![SpreadingFactor::SF8]
    } else {
        vec![SpreadingFactor::SF8, SpreadingFactor::SF10]
    };
    println!(
        "Fig. 10: per-node estimated SNR CDF by deployment (decoded packets, load 10 pkt/s)\n"
    );
    for sf in sfs {
        println!("== SF {} ==", sf.value());
        let params = LoRaParams::new(sf, CodingRate::CR4);
        for dep in Deployment::ALL {
            let cfg = ExperimentConfig {
                load_pps: 10.0,
                duration_s: args.duration_s,
                seed: args.seed,
                ..ExperimentConfig::new(params, dep)
            };
            let built = build_experiment(&cfg);
            let scheme = SchemeKind::Tnb.build(params);
            let r = run_scheme(scheme.as_ref(), &built);
            // Per-node median estimated SNR (one sample per node, as the
            // paper plots node CDFs).
            let mut per_node: HashMap<u32, Vec<f32>> = HashMap::new();
            for (key, snr) in r.matched.correct.iter().zip(&r.matched.snr_per_packet) {
                per_node.entry(key.0).or_default().push(*snr);
            }
            let mut node_snrs: Vec<f32> = per_node
                .values()
                .map(|v| tnb_dsp::stats::median(v))
                .collect();
            node_snrs.sort_by(f32::total_cmp);
            print!("{:<10} ({} nodes decoded): ", dep.name(), node_snrs.len());
            let pts: Vec<String> = node_snrs.iter().map(|s| format!("{s:.1}")).collect();
            println!("[{}]", pts.join(", "));
            if !node_snrs.is_empty() {
                println!(
                    "           p10 {:.1} dB, median {:.1} dB, p90 {:.1} dB, spread {:.1} dB",
                    tnb_dsp::stats::percentile(&node_snrs, 10.0),
                    tnb_dsp::stats::percentile(&node_snrs, 50.0),
                    tnb_dsp::stats::percentile(&node_snrs, 90.0),
                    node_snrs.last().unwrap() - node_snrs.first().unwrap(),
                );
            }
        }
        println!();
    }
    println!("paper: SNRs vary across deployments; within one deployment nodes differ by > 20 dB");
}
