//! Thrive parameter ablation: the weight ω of the history cost (paper
//! §5.3.3 sets ω = 0.1; ω = 0 degenerates to the "Sibling" configuration
//! of Fig. 15) and the history smoothing window.

use tnb_baselines::Scheme;
use tnb_bench::{ExpArgs, TablePrinter};
use tnb_core::packet::DecodedPacket;
use tnb_core::receiver::{TnbConfig, TnbReceiver};
use tnb_core::thrive::ThriveConfig;
use tnb_dsp::Complex32;
use tnb_phy::{CodingRate, LoRaParams, SpreadingFactor};
use tnb_sim::{build_experiment, run_scheme, Deployment, ExperimentConfig};

/// A TnB receiver with a custom Thrive configuration, as a Scheme.
struct CustomTnb {
    rx: TnbReceiver,
}

impl Scheme for CustomTnb {
    fn name(&self) -> &'static str {
        "TnB(custom)"
    }
    fn decode(&self, antennas: &[&[Complex32]]) -> Vec<DecodedPacket> {
        self.rx.decode_multi(antennas)
    }
}

fn main() {
    let args = ExpArgs::parse();
    let load = args.loads.iter().copied().fold(0.0f64, f64::max);
    let sf = if args.quick {
        SpreadingFactor::SF8
    } else {
        SpreadingFactor::SF10
    };
    let params = LoRaParams::new(sf, CodingRate::CR4);
    // Average over `--runs` independent traces: single-trace differences
    // between Thrive configurations are noisy.
    let builds: Vec<_> = (0..args.runs.max(1))
        .map(|r| {
            build_experiment(&ExperimentConfig {
                load_pps: load,
                duration_s: args.duration_s,
                seed: args.seed + r * 131,
                ..ExperimentConfig::new(params, Deployment::Indoor)
            })
        })
        .collect();
    let sent: usize = builds.iter().map(|b| b.schedule.len()).sum();
    println!(
        "Thrive ablation: SF {} CR 4 Indoor at {load} pkt/s ({} packets over {} runs)\n",
        sf.value(),
        sent,
        builds.len()
    );

    println!("history-cost weight ω (paper default 0.1; 0 = \"Sibling\"):");
    let mut t = TablePrinter::new(["omega", "decoded", "PRR"]);
    for omega in [0.0f32, 0.05, 0.1, 0.2, 0.5, 1.0] {
        let thrive = ThriveConfig {
            omega,
            use_history: omega > 0.0,
            ..ThriveConfig::default()
        };
        let scheme = CustomTnb {
            rx: TnbReceiver::with_config(
                params,
                TnbConfig {
                    thrive,
                    ..TnbConfig::default()
                },
            ),
        };
        let decoded: usize = builds
            .iter()
            .map(|b| run_scheme(&scheme, b).matched.correct.len())
            .sum();
        t.row([
            format!("{omega}"),
            format!("{decoded}"),
            format!("{:.2}", decoded as f64 / sent as f64),
        ]);
    }
    t.print();

    println!("\nhistory smoothing window (symbols):");
    let mut t = TablePrinter::new(["window", "decoded", "PRR"]);
    for window in [1usize, 3, 7, 15, 31] {
        let thrive = ThriveConfig {
            history_window: window,
            ..ThriveConfig::default()
        };
        let scheme = CustomTnb {
            rx: TnbReceiver::with_config(
                params,
                TnbConfig {
                    thrive,
                    ..TnbConfig::default()
                },
            ),
        };
        let decoded: usize = builds
            .iter()
            .map(|b| run_scheme(&scheme, b).matched.correct.len())
            .sum();
        t.row([
            format!("{window}"),
            format!("{decoded}"),
            format!("{:.2}", decoded as f64 / sent as f64),
        ]);
    }
    t.print();
}
