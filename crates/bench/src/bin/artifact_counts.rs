//! Artifact appendix B.5: decoded-packet counts per trace, one synthetic
//! trace per (deployment, SF, CR) — the same 24-cell grid as the paper's
//! published trace files (numbers differ: our traces are synthetic and,
//! by default, shorter).

use tnb_baselines::SchemeKind;
use tnb_bench::{ExpArgs, TablePrinter};
use tnb_phy::{CodingRate, LoRaParams, SpreadingFactor};
use tnb_sim::{build_experiment, run_scheme, Deployment, ExperimentConfig};

fn main() {
    let args = ExpArgs::parse();
    println!(
        "Artifact B.5: TnB decoded-packet counts per synthetic trace ({}s @ 25 pkt/s)\n",
        args.duration_s
    );
    let mut t = TablePrinter::new(["trace", "sent", "TnB decoded"]);
    let deployments = if args.quick {
        vec![Deployment::Indoor]
    } else {
        Deployment::ALL.to_vec()
    };
    let sfs = if args.quick {
        vec![SpreadingFactor::SF8]
    } else {
        vec![SpreadingFactor::SF8, SpreadingFactor::SF10]
    };
    for dep in deployments {
        for &sf in &sfs {
            for cr in if args.quick {
                vec![CodingRate::CR4]
            } else {
                CodingRate::ALL.to_vec()
            } {
                let params = LoRaParams::new(sf, cr);
                let cfg = ExperimentConfig {
                    load_pps: 25.0,
                    duration_s: args.duration_s,
                    seed: args.seed,
                    ..ExperimentConfig::new(params, dep)
                };
                let built = build_experiment(&cfg);
                let r = run_scheme(SchemeKind::Tnb.build(params).as_ref(), &built);
                t.row([
                    format!(
                        "{}-SF{}-CR{}",
                        dep.name().to_lowercase().replace(' ', ""),
                        sf.value(),
                        cr.value()
                    ),
                    format!("{}", r.sent),
                    format!("{}", r.matched.correct.len()),
                ]);
            }
        }
    }
    t.print();
}
