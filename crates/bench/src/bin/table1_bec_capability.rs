//! Table 1: decoding capability of the default decoder vs BEC, per CR.
//!
//! Monte-Carlo over random blocks with k corrupted symbols (k error
//! columns, each bit flipped with probability 0.5 but at least one flip
//! per column, mimicking a real corrupted symbol). A decode counts as a
//! success when the true data is recovered — for BEC, when it is among
//! the candidate blocks (the packet CRC identifies it, paper §6.1).

use tnb_bench::TablePrinter;
use tnb_core::bec::decode_block;
use tnb_phy::hamming::{decode_default, encode};
use tnb_phy::params::CodingRate;

struct Xorshift(u64);
impl Xorshift {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

fn trial(rng: &mut Xorshift, cr: CodingRate, k_cols: usize, sf: usize) -> (bool, bool) {
    let width = cr.codeword_len();
    // k distinct random error columns.
    let mut cols: Vec<usize> = Vec::new();
    while cols.len() < k_cols {
        let c = (rng.next() as usize) % width;
        if !cols.contains(&c) {
            cols.push(c);
        }
    }
    let nibbles: Vec<u8> = (0..sf).map(|_| (rng.next() % 16) as u8).collect();
    let mut rows: Vec<u8> = nibbles.iter().map(|&n| encode(n, cr)).collect();
    for &c in &cols {
        let mut any = false;
        for row in rows.iter_mut() {
            if rng.next() & 1 == 1 {
                *row ^= 1 << c;
                any = true;
            }
        }
        if !any {
            // A corrupted symbol flips at least one bit in its column.
            let r = (rng.next() as usize) % rows.len();
            rows[r] ^= 1 << c;
        }
    }
    let default_ok = rows
        .iter()
        .zip(&nibbles)
        .all(|(&r, &n)| decode_default(r, cr).nibble == n);
    let dec = decode_block(&rows, cr);
    let bec_ok = dec.candidates.iter().any(|c| c == &nibbles);
    (default_ok, bec_ok)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let trials = if quick { 5_000 } else { 50_000 };
    let sf = 8;
    println!("Table 1: decoding capability (SF {sf}, {trials} random blocks per cell)\n");
    let mut t = TablePrinter::new([
        "CR",
        "# err symbols",
        "default success",
        "BEC success",
        "paper says (BEC)",
    ]);
    for cr in CodingRate::ALL {
        let max_cols = match cr {
            CodingRate::CR1 | CodingRate::CR2 => 1,
            CodingRate::CR3 => 2,
            CodingRate::CR4 => 3,
        };
        for k in 1..=max_cols {
            let mut rng = Xorshift(0x7AB1E1 + cr.value() as u64 * 100 + k as u64);
            let mut def = 0usize;
            let mut bec = 0usize;
            for _ in 0..trials {
                let (d, b) = trial(&mut rng, cr, k, sf);
                def += d as usize;
                bec += b as usize;
            }
            let paper = match (cr, k) {
                (CodingRate::CR1, 1) | (CodingRate::CR2, 1) => "corrects 1-symbol",
                (CodingRate::CR3, 1) | (CodingRate::CR4, 1) => "corrects (trivially)",
                (CodingRate::CR3, 2) => "almost all 2-symbol",
                (CodingRate::CR4, 2) => "all 2-symbol",
                (CodingRate::CR4, 3) => "over 96% of 3-symbol",
                _ => "",
            };
            t.row([
                format!("{}", cr.value()),
                format!("{k}"),
                format!("{:.4}", def as f64 / trials as f64),
                format!("{:.4}", bec as f64 / trials as f64),
                paper.to_string(),
            ]);
        }
    }
    t.print();
}
