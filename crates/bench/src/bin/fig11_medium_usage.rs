//! Fig. 11: lower bound of the medium usage (packets simultaneously on
//! the air) at the highest load, for SF 8 and SF 10, computed — as in the
//! paper — from the packets TnB decodes.

use tnb_baselines::SchemeKind;
use tnb_bench::ExpArgs;
use tnb_phy::{CodingRate, LoRaParams, SpreadingFactor};
use tnb_sim::metrics::medium_usage;
use tnb_sim::{build_experiment, run_scheme, Deployment, ExperimentConfig};

fn main() {
    let args = ExpArgs::parse();
    let load = *args.loads.last().unwrap_or(&25.0);
    println!("Fig. 11: medium usage lower bound at {load} pkt/s (Indoor, CR 4)\n");
    for sf in [SpreadingFactor::SF8, SpreadingFactor::SF10] {
        let params = LoRaParams::new(sf, CodingRate::CR4);
        let cfg = ExperimentConfig {
            load_pps: load,
            duration_s: args.duration_s,
            seed: args.seed,
            ..ExperimentConfig::new(params, Deployment::Indoor)
        };
        let built = build_experiment(&cfg);
        let scheme = SchemeKind::Tnb.build(params);
        let r = run_scheme(scheme.as_ref(), &built);
        let usage = medium_usage(&r.decoded_intervals, cfg.duration_s, 0.05);
        let truth = medium_usage(&built.intervals, cfg.duration_s, 0.05);
        println!(
            "SF {}: decoded {}/{} packets",
            sf.value(),
            r.matched.correct.len(),
            r.sent
        );
        let series: Vec<String> = usage.iter().map(|u| u.to_string()).collect();
        println!("  decoded-packet usage per 50 ms: [{}]", series.join(" "));
        println!(
            "  mean usage: decoded lower bound {:.2}, ground truth {:.2}, max {} / {}",
            usage.iter().sum::<usize>() as f64 / usage.len().max(1) as f64,
            truth.iter().sum::<usize>() as f64 / truth.len().max(1) as f64,
            usage.iter().max().unwrap_or(&0),
            truth.iter().max().unwrap_or(&0),
        );
    }
    println!(
        "\npaper: the medium can be very busy for both SFs, more so for SF 10 (longer packets)"
    );
}
