//! Table 2: BEC repair complexity — the number of BEC-fixed blocks (and
//! therefore CRC checks) generated per block decode, measured per CR and
//! number of error columns, against the paper's bounds.

use tnb_bench::TablePrinter;
use tnb_core::bec::decode_block;
use tnb_phy::hamming::encode;
use tnb_phy::params::CodingRate;

struct Xorshift(u64);
impl Xorshift {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let trials = if quick { 5_000 } else { 50_000 };
    let sf = 8;
    println!(
        "Table 2: BEC-fixed blocks (= CRC checks) per block decode (SF {sf}, {trials} trials)\n"
    );
    let mut t = TablePrinter::new([
        "CR",
        "# err columns",
        "mean candidates",
        "max candidates",
        "paper bound",
    ]);
    for (cr, k, bound) in [
        (CodingRate::CR1, 1, "5"),
        (CodingRate::CR2, 1, "2"),
        (CodingRate::CR3, 2, "3"),
        (CodingRate::CR4, 2, "<=4"),
        (CodingRate::CR4, 3, "4 (9 delta1 worst)"),
    ] {
        let mut rng = Xorshift(0x7AB1E2 + cr.value() as u64 * 100 + k as u64);
        let width = cr.codeword_len();
        let mut total = 0usize;
        let mut max = 0usize;
        for _ in 0..trials {
            let mut cols: Vec<usize> = Vec::new();
            while cols.len() < k {
                let c = (rng.next() as usize) % width;
                if !cols.contains(&c) {
                    cols.push(c);
                }
            }
            let nibbles: Vec<u8> = (0..sf).map(|_| (rng.next() % 16) as u8).collect();
            let mut rows: Vec<u8> = nibbles.iter().map(|&n| encode(n, cr)).collect();
            for &c in &cols {
                let mut any = false;
                for row in rows.iter_mut() {
                    if rng.next() & 1 == 1 {
                        *row ^= 1 << c;
                        any = true;
                    }
                }
                if !any {
                    let r = (rng.next() as usize) % rows.len();
                    rows[r] ^= 1 << c;
                }
            }
            let dec = decode_block(&rows, cr);
            total += dec.candidates.len();
            max = max.max(dec.candidates.len());
        }
        t.row([
            format!("{}", cr.value()),
            format!("{k}"),
            format!("{:.2}", total as f64 / trials as f64),
            format!("{max}"),
            bound.to_string(),
        ]);
    }
    t.print();
    println!("\nW limits on packet-level CRC checks (paper §6.9): CR1=125, CR2..4=16");
}
