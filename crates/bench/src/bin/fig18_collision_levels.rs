//! Fig. 18: collision levels of the packets TnB decodes at the highest
//! load — the highest number of other packets each decoded packet
//! overlapped with (a lower bound, computed over decoded packets as in
//! the paper).

use tnb_baselines::SchemeKind;
use tnb_bench::{ExpArgs, TablePrinter};
use tnb_phy::{CodingRate, LoRaParams, SpreadingFactor};
use tnb_sim::metrics::collision_levels;
use tnb_sim::{build_experiment, run_scheme, Deployment, ExperimentConfig};

fn main() {
    let args = ExpArgs::parse();
    let load = args.loads.iter().copied().fold(0.0f64, f64::max);
    println!("Fig. 18: collision level of packets decoded by TnB at {load} pkt/s (Indoor, CR 4)\n");
    let mut t = TablePrinter::new(["scheme", "SF", "decoded", "0", "1", "2", "3", ">=4"]);
    for kind in [SchemeKind::Tnb, SchemeKind::TnbSic] {
        for sf in [SpreadingFactor::SF8, SpreadingFactor::SF10] {
            let params = LoRaParams::new(sf, CodingRate::CR4);
            let mut hist = [0usize; 5];
            let mut total = 0usize;
            for run in 0..args.runs {
                let cfg = ExperimentConfig {
                    load_pps: load,
                    duration_s: args.duration_s,
                    seed: args.seed + run * 7000,
                    ..ExperimentConfig::new(params, Deployment::Indoor)
                };
                let built = build_experiment(&cfg);
                let r = run_scheme(kind.build(params).as_ref(), &built);
                // Collision level within the decoded (lower-bound) subset.
                for lv in collision_levels(&r.decoded_intervals) {
                    hist[lv.min(4)] += 1;
                    total += 1;
                }
            }
            let pct = |k: usize| format!("{:.0}%", 100.0 * hist[k] as f64 / total.max(1) as f64);
            t.row([
                kind.name().to_string(),
                format!("{}", sf.value()),
                format!("{total}"),
                pct(0),
                pct(1),
                pct(2),
                pct(3),
                pct(4),
            ]);
        }
    }
    t.print();
    println!("\npaper: <15% of SF 8 decodes had no collision; most SF 10 decodes collided with 4+ packets");
}
