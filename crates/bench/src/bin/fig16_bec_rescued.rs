//! Fig. 16: CDF of the number of BEC-rescued codewords per decoded packet
//! (codewords decoded by BEC that the default decoder got wrong) at the
//! highest load.

use tnb_baselines::SchemeKind;
use tnb_bench::{ExpArgs, TablePrinter};
use tnb_phy::{CodingRate, LoRaParams, SpreadingFactor};
use tnb_sim::{build_experiment, run_scheme, Deployment, ExperimentConfig};

fn main() {
    let args = ExpArgs::parse();
    let load = args.loads.iter().copied().fold(0.0f64, f64::max);
    let sfs = if args.quick {
        vec![SpreadingFactor::SF8]
    } else {
        vec![SpreadingFactor::SF8, SpreadingFactor::SF10]
    };
    println!("Fig. 16: BEC-rescued codewords per decoded packet at {load} pkt/s (Indoor)\n");
    let mut t = TablePrinter::new(["SF/CR", "decoded", "rescued>0 (%)", "mean rescued", "max"]);
    for &sf in &sfs {
        for cr in CodingRate::ALL {
            let params = LoRaParams::new(sf, cr);
            let mut counts: Vec<usize> = Vec::new();
            for run in 0..args.runs {
                let cfg = ExperimentConfig {
                    load_pps: load,
                    duration_s: args.duration_s,
                    seed: args.seed + run * 1000,
                    ..ExperimentConfig::new(params, Deployment::Indoor)
                };
                let built = build_experiment(&cfg);
                let r = run_scheme(SchemeKind::Tnb.build(params).as_ref(), &built);
                counts.extend(r.matched.rescued_per_packet.iter().copied());
            }
            let decoded = counts.len();
            let with = counts.iter().filter(|&&c| c > 0).count();
            let mean = counts.iter().sum::<usize>() as f64 / decoded.max(1) as f64;
            t.row([
                format!("SF{}/CR{}", sf.value(), cr.value()),
                format!("{decoded}"),
                format!("{:.1}", 100.0 * with as f64 / decoded.max(1) as f64),
                format!("{mean:.2}"),
                format!("{}", counts.iter().max().copied().unwrap_or(0)),
            ]);
        }
    }
    t.print();
    println!(
        "\npaper: a visible fraction of decoded packets has >= 1 rescued codeword, often several"
    );
}
