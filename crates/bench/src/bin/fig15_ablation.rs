//! Fig. 15: component ablation at the highest load — full TnB vs Thrive
//! (no BEC) vs Sibling (no history cost), with CIC for reference.
//!
//! The paper reports a median TnB/Thrive improvement of 1.31×, confirming
//! BEC's contribution, and shows Sibling losing in some cases, confirming
//! the history cost.

use tnb_baselines::SchemeKind;
use tnb_bench::{ExpArgs, TablePrinter};
use tnb_phy::{CodingRate, LoRaParams, SpreadingFactor};
use tnb_sim::{build_experiment, run_scheme, Deployment, ExperimentConfig};

fn main() {
    let args = ExpArgs::parse();
    let load = args.loads.iter().copied().fold(0.0f64, f64::max);
    let schemes = [
        SchemeKind::Tnb,
        SchemeKind::Thrive,
        SchemeKind::Sibling,
        SchemeKind::Cic,
    ];
    let sfs = if args.quick {
        vec![SpreadingFactor::SF8]
    } else {
        vec![SpreadingFactor::SF8, SpreadingFactor::SF10]
    };
    let crs = if args.quick {
        vec![CodingRate::CR4]
    } else {
        CodingRate::ALL.to_vec()
    };
    let deployments = if args.quick {
        vec![Deployment::Indoor]
    } else {
        Deployment::ALL.to_vec()
    };

    println!("Fig. 15: throughput (pkt/s) of TnB configurations at {load} pkt/s offered\n");
    let mut ratios: Vec<f64> = Vec::new();
    for dep in &deployments {
        let mut t = TablePrinter::new({
            let mut h = vec!["SF/CR".to_string()];
            h.extend(schemes.iter().map(|s| s.name().to_string()));
            h
        });
        for &sf in &sfs {
            for &cr in &crs {
                let params = LoRaParams::new(sf, cr);
                let mut tp = std::collections::HashMap::new();
                for run in 0..args.runs {
                    let cfg = ExperimentConfig {
                        load_pps: load,
                        duration_s: args.duration_s,
                        seed: args.seed + run * 1000,
                        ..ExperimentConfig::new(params, *dep)
                    };
                    let built = build_experiment(&cfg);
                    for kind in schemes {
                        let r = run_scheme(kind.build(params).as_ref(), &built);
                        *tp.entry(kind.name()).or_insert(0.0) +=
                            r.throughput_pps / args.runs as f64;
                    }
                }
                let mut row = vec![format!("SF{}/CR{}", sf.value(), cr.value())];
                for kind in schemes {
                    row.push(format!("{:.2}", tp[kind.name()]));
                }
                ratios.push(tp["TnB"] / tp["Thrive"].max(1e-9));
                t.row(row);
            }
        }
        println!("== {} ==", dep.name());
        t.print();
        println!();
    }
    ratios.sort_by(f64::total_cmp);
    println!(
        "median TnB/Thrive improvement: {:.2}x (paper: 1.31x)",
        ratios[ratios.len() / 2]
    );
}
