//! W ablation (paper §6.9): the number of packet-CRC attempts `W` caps
//! BEC's packet-level search. The paper: "when the CR is 1, changing W to
//! 25 reduces the number of decoded packets by less than 5%."
//!
//! Monte-Carlo over CR-1 packets with several corrupted symbols spread
//! across blocks (the regime where the candidate product explodes).

use tnb_bench::TablePrinter;
use tnb_core::bec::{decode_header_with_bec, decode_payload_with_bec_limited};
use tnb_phy::encoder::encode_packet_symbols;
use tnb_phy::params::{CodingRate, LoRaParams, SpreadingFactor};

struct Xorshift(u64);
impl Xorshift {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let trials = if quick { 300 } else { 2000 };
    let params = LoRaParams::new(SpreadingFactor::SF8, CodingRate::CR1);
    let n = params.n() as u16;
    println!("W ablation, CR 1, SF 8 ({trials} packets per cell)");
    println!("one corrupted symbol per corrupted block; 5 BEC candidates/block -> 5^k combos\n");

    let mut t = TablePrinter::new(["corrupted blocks", "W=125", "W=50", "W=25", "W=10", "W=5"]);
    for k_blocks in 1..=4usize {
        let mut cells: Vec<String> = vec![format!("{k_blocks} (5^{k_blocks} combos)")];
        for &w in &[125usize, 50, 25, 10, 5] {
            let mut rng = Xorshift(0xAB1A7E + k_blocks as u64);
            let mut ok = 0usize;
            for k in 0..trials {
                let payload: Vec<u8> = (0..16)
                    .map(|i| (k as u8).wrapping_mul(7).wrapping_add(i))
                    .collect();
                let mut symbols = encode_packet_symbols(&payload, &params);
                // One corrupted symbol in each of the first k payload
                // blocks (5 symbols per CR-1 block).
                for b in 0..k_blocks {
                    let idx = 8 + b * 5 + (rng.next() as usize % 5);
                    let err = 1 + (rng.next() as u16 % (n - 1));
                    symbols[idx] = (symbols[idx] + err) % n;
                }
                let Some((h, extras, _)) = decode_header_with_bec(&symbols, &params) else {
                    continue;
                };
                if let Ok(d) =
                    decode_payload_with_bec_limited(&symbols[8..], &h, &extras, &params, Some(w))
                {
                    ok += (d.payload == payload) as usize;
                }
            }
            cells.push(format!("{:.2}", ok as f64 / trials as f64));
        }
        t.row(cells);
    }
    t.print();
    println!(
        "\npaper (\u{00a7}6.9): on the real traces, W=25 loses < 5% vs W=125 for CR 1 \u{2014}"
    );
    println!("consistent with the rows above when most packets corrupt <= 2 blocks");
    println!("(5^2 = 25 combos, still exhaustively searched at W=25).");
}
