//! Plain-text table/series printing shared by the experiment binaries.

/// Prints aligned text tables: one header row and any number of data rows.
#[derive(Debug, Default)]
pub struct TablePrinter {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TablePrinter {
    /// Starts a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        TablePrinter {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Adds a data row (must match the header length).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Renders the table to a string.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = h.chars().count();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(c);
                for _ in c.chars().count()..widths[i] {
                    line.push(' ');
                }
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a float with the given number of decimals.
pub fn f(v: f64, decimals: usize) -> String {
    format!("{v:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TablePrinter::new(["load", "TnB", "CIC"]);
        t.row(["5", "4.9", "4.5"]);
        t.row(["25", "19.2", "8.0"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("load"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[3].starts_with("25"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn width_mismatch_panics() {
        let mut t = TablePrinter::new(["a", "b"]);
        t.row(["only one"]);
    }

    #[test]
    fn float_format() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(f(2.0, 0), "2");
    }
}
