//! Discrete-event traffic synthesis on the sample clock.
//!
//! Transmissions are generated as a deterministic event list: each
//! event's time and originating node are hashes of `(seed, event
//! index)`, so generation is O(events), independent of the node count —
//! a 10⁶-node city with 100 packets costs 100 events, not 10⁶ RNG
//! streams. A regulatory duty-cycle pass then walks the sorted events
//! and silences any node transmitting faster than its budget allows,
//! exactly like the radio's duty-cycle enforcer would.

use crate::{space, DeployConfig};
use std::collections::BTreeMap;
use tnb_phy::Transmitter;
use tnb_sim::traffic::PAYLOAD_LEN;

const TAG_TIME: u64 = 0x7478_5f74; // "tx_t"
const TAG_NODE: u64 = 0x7478_5f6e; // "tx_n"
const TAG_BURST: u64 = 0x7478_5f62; // "tx_b"

/// Traffic model for the event generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrafficModel {
    /// Memoryless arrivals: every packet is an independent event at a
    /// uniform time from a hash-uniform node (a Poisson process
    /// conditioned on the offered count).
    Poisson,
    /// Bursty arrivals: events come as back-to-back trains of up to
    /// `max_burst` packets from one node — the duty-cycle pass then
    /// clips each train to what regulation permits.
    Bursty {
        /// Largest burst length an event may request (≥ 1).
        max_burst: u32,
    },
}

/// One scheduled transmission (the simulator's event record).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tx {
    /// Transmitting node.
    pub node: u32,
    /// Per-node sequence number, assigned in time order.
    pub seq: u32,
    /// Transmit time as a channel-rate sample index (fractional).
    pub start: f64,
    /// Index into `cfg.sfs` of the node's spreading factor.
    pub sf_idx: u8,
}

/// Per-SF airtime of the fixed-size application payload, seconds.
pub fn airtimes_s(cfg: &DeployConfig) -> Vec<f64> {
    (0..cfg.sfs.len().max(1))
        .map(|i| Transmitter::new(cfg.params(i)).packet_airtime(PAYLOAD_LEN))
        .collect()
}

/// Generates the deployment's transmission schedule: offered load ×
/// duration events, each mapped to a node and a time by hashing,
/// filtered by the per-node duty-cycle budget, sorted by time with
/// per-node sequence numbers assigned in that order.
pub fn generate(cfg: &DeployConfig) -> Vec<Tx> {
    let airtimes = airtimes_s(cfg);
    let max_airtime = airtimes.iter().copied().fold(0.0f64, f64::max);
    let fs = cfg.sample_rate();
    let latest = (cfg.duration_s - max_airtime).max(0.0);
    let offered = (cfg.load_pps * cfg.duration_s).round() as u64;
    let n_nodes = cfg.nodes.max(1);

    // Candidate events, before regulation.
    let mut events: Vec<(f64, u32)> = Vec::new();
    match cfg.traffic {
        TrafficModel::Poisson => {
            for k in 0..offered {
                let t = space::unit_f64(space::hash_words(cfg.seed, &[TAG_TIME, k])) * latest;
                let node = (space::hash_words(cfg.seed, &[TAG_NODE, k]) % n_nodes as u64) as u32;
                events.push((t, node));
            }
        }
        TrafficModel::Bursty { max_burst } => {
            let max_burst = max_burst.max(1) as u64;
            let mut emitted = 0u64;
            let mut k = 0u64;
            while emitted < offered {
                let t0 = space::unit_f64(space::hash_words(cfg.seed, &[TAG_TIME, k])) * latest;
                let node = (space::hash_words(cfg.seed, &[TAG_NODE, k]) % n_nodes as u64) as u32;
                let want = 1 + space::hash_words(cfg.seed, &[TAG_BURST, k]) % max_burst;
                let len = want.min(offered - emitted);
                let gap = airtimes
                    .get(space::node_sf_index(cfg, node))
                    .copied()
                    .unwrap_or(max_airtime)
                    * 1.05;
                for i in 0..len {
                    events.push((t0 + i as f64 * gap, node));
                }
                emitted += len;
                k += 1;
            }
        }
    }
    // Sort by (time, node) so the duty-cycle walk and the sequence
    // numbering are total-order deterministic.
    events.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));

    // Regulatory duty cycle: after a packet of airtime A, the node is
    // silent for A·(1/duty − 1). State only exists for active nodes.
    let duty = cfg.duty_cycle.clamp(1e-6, 1.0);
    let mut next_ok: BTreeMap<u32, f64> = BTreeMap::new();
    let mut seqs: BTreeMap<u32, u32> = BTreeMap::new();
    let mut out = Vec::with_capacity(events.len());
    for (t, node) in events {
        if t > latest {
            continue;
        }
        let gate = next_ok.get(&node).copied().unwrap_or(f64::NEG_INFINITY);
        if t < gate {
            continue; // silenced by the duty-cycle budget
        }
        let sf_idx = space::node_sf_index(cfg, node);
        let airtime = airtimes.get(sf_idx).copied().unwrap_or(max_airtime);
        next_ok.insert(node, t + airtime / duty);
        let seq = seqs.entry(node).or_insert(0);
        out.push(Tx {
            node,
            seq: *seq,
            start: t * fs,
            sf_idx: sf_idx as u8,
        });
        *seq += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> DeployConfig {
        DeployConfig {
            nodes: 50_000,
            load_pps: 40.0,
            duration_s: 2.0,
            ..DeployConfig::default()
        }
    }

    #[test]
    fn poisson_schedule_is_sorted_and_bounded() {
        let c = cfg();
        let s = generate(&c);
        assert!(!s.is_empty());
        assert!(s.len() <= 80);
        let fs = c.sample_rate();
        for w in s.windows(2) {
            assert!(w[0].start <= w[1].start);
        }
        for t in &s {
            assert!(t.start >= 0.0 && t.start < c.duration_s * fs);
            assert!(t.node < c.nodes);
            assert!((t.sf_idx as usize) < c.sfs.len());
        }
    }

    #[test]
    fn schedule_is_deterministic_and_seed_sensitive() {
        let c = cfg();
        assert_eq!(generate(&c), generate(&c));
        let c2 = DeployConfig { seed: 2, ..cfg() };
        assert_ne!(generate(&c), generate(&c2));
    }

    #[test]
    fn seqs_are_per_node_and_dense() {
        let c = DeployConfig {
            nodes: 3,
            load_pps: 50.0,
            duration_s: 2.0,
            duty_cycle: 1.0, // let every event through
            ..DeployConfig::default()
        };
        let s = generate(&c);
        let mut counts: BTreeMap<u32, u32> = BTreeMap::new();
        for t in &s {
            let c = counts.entry(t.node).or_insert(0);
            assert_eq!(t.seq, *c, "seq must count transmissions in order");
            *c += 1;
        }
    }

    #[test]
    fn duty_cycle_enforces_silence() {
        let c = DeployConfig {
            nodes: 1, // every event collides on the same node
            load_pps: 100.0,
            duration_s: 2.0,
            duty_cycle: 0.01,
            ..DeployConfig::default()
        };
        let s = generate(&c);
        let airtimes = airtimes_s(&c);
        let fs = c.sample_rate();
        for w in s.windows(2) {
            let a = airtimes[w[0].sf_idx as usize] * fs;
            let gap = w[1].start - w[0].start;
            assert!(gap >= a * (1.0 / 0.01) - 1.0, "gap {gap} < budget");
        }
    }

    #[test]
    fn bursty_trains_come_from_one_node() {
        let c = DeployConfig {
            traffic: TrafficModel::Bursty { max_burst: 4 },
            duty_cycle: 1.0,
            nodes: 10_000,
            load_pps: 30.0,
            ..DeployConfig::default()
        };
        let s = generate(&c);
        assert!(!s.is_empty());
        // At least one burst: some node transmits more than once.
        let mut counts: BTreeMap<u32, u32> = BTreeMap::new();
        for t in &s {
            *counts.entry(t.node).or_insert(0) += 1;
        }
        assert!(counts.values().any(|&c| c > 1), "expected a burst");
    }
}
