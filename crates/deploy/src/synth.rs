//! Streaming per-gateway IQ synthesis.
//!
//! The deployment's IQ is never materialized whole: a gateway's stream
//! is defined *functionally* — `synth_window(gw, a, b)` returns samples
//! `[a, b)` of the stream — and the run loop asks for one chunk at a
//! time. Two properties make any chunking byte-identical:
//!
//! 1. **Counter-based noise.** Each noise sample is a pure hash of
//!    `(seed, gateway, absolute sample index)` pushed through
//!    Box–Muller, not a draw from a sequential RNG, so sample `n` has
//!    the same value no matter which window asked for it.
//! 2. **Whole-packet rendering.** A transmission overlapping a window
//!    is rendered from its own sample 0 (chirp synthesis, fractional
//!    delay, CFO, amplitude, phase, and — in wideband mode — channel
//!    upconversion all walk the packet from its start) and then sliced,
//!    so a packet straddling a window boundary contributes identical
//!    values to both windows.
//!
//! Memory is O(window + one packet), independent of the city duration.

use crate::traffic::{self, Tx};
use crate::{space, DeployConfig};
use tnb_channel::impairments::{apply_cfo, fractional_delay};
use tnb_dsp::channelizer::upconvert;
use tnb_dsp::stats::from_db;
use tnb_dsp::Complex32;
use tnb_phy::params::LoRaParams;
use tnb_phy::Transmitter;
use tnb_sim::traffic::{make_payload, PAYLOAD_LEN};

const TAG_NOISE: u64 = 0x006e_6f69_7365; // "noise"
const TAG_PHASE: u64 = 0x0070_6861_7365; // "phase"
const SQRT_HALF: f32 = std::f32::consts::FRAC_1_SQRT_2;

/// A fully specified deployment scene: the config plus its transmission
/// schedule (generated, or injected for tests), with per-SF PHY
/// parameters resolved. All synthesis is a pure function of this.
#[derive(Debug, Clone)]
pub struct Scene {
    /// The deployment configuration.
    pub cfg: DeployConfig,
    /// Transmissions sorted by `(start, node)`.
    pub schedule: Vec<Tx>,
    params_by_sf: Vec<LoRaParams>,
    /// Rendered waveform length per SF slot (packet samples plus the
    /// one-sample fractional-delay spill).
    len_by_sf: Vec<usize>,
    /// Upper bound on `waveform length + propagation delay`, for the
    /// window candidate search.
    max_span: u64,
}

impl Scene {
    /// Builds the scene with the schedule drawn from the traffic model.
    pub fn new(cfg: DeployConfig) -> Scene {
        let schedule = traffic::generate(&cfg);
        Scene::with_schedule(cfg, schedule)
    }

    /// Builds the scene around an explicit schedule (sorted internally);
    /// used by tests that need exact packet placement.
    pub fn with_schedule(cfg: DeployConfig, mut schedule: Vec<Tx>) -> Scene {
        schedule.sort_by(|a, b| a.start.total_cmp(&b.start).then(a.node.cmp(&b.node)));
        let params_by_sf: Vec<LoRaParams> =
            (0..cfg.sfs.len().max(1)).map(|i| cfg.params(i)).collect();
        let len_by_sf: Vec<usize> = params_by_sf
            .iter()
            .map(|p| Transmitter::new(*p).packet_samples(PAYLOAD_LEN) + 1)
            .collect();
        let max_len = len_by_sf.iter().copied().max().unwrap_or(0) as u64;
        let max_delay = cfg.side_m * std::f64::consts::SQRT_2 / space::SPEED_OF_LIGHT_M_S
            * cfg.params(0).sample_rate();
        let max_span = max_len + max_delay.ceil() as u64 + 4;
        Scene {
            cfg,
            schedule,
            params_by_sf,
            len_by_sf,
            max_span,
        }
    }

    /// PHY parameters of SF slot `i`.
    pub fn params(&self, sf_idx: usize) -> LoRaParams {
        self.params_by_sf
            .get(sf_idx)
            .or_else(|| self.params_by_sf.first())
            .copied()
            .unwrap_or_else(|| self.cfg.params(0))
    }

    /// Longest rendered packet over all SFs, channel-rate samples.
    pub fn max_packet_samples(&self) -> usize {
        self.len_by_sf.iter().copied().max().unwrap_or(0)
    }

    /// Channel-rate length of every gateway's stream: the configured
    /// duration (or the last packet's end, whichever is later) plus a
    /// flush tail of four symbols of the slowest SF.
    pub fn total_samples(&self) -> u64 {
        let fs = self.cfg.sample_rate();
        let mut end = (self.cfg.duration_s * fs).ceil() as u64;
        if let Some(last) = self.schedule.last() {
            end = end.max(last.start.ceil() as u64 + self.max_span);
        }
        let sps = self
            .params_by_sf
            .iter()
            .map(|p| p.samples_per_symbol())
            .max()
            .unwrap_or(0) as u64;
        end + 4 * sps
    }

    /// Samples `[a, b)` of gateway `gw`'s channel-rate stream.
    pub fn synth_window(&self, gw: u32, a: u64, b: u64) -> Vec<Complex32> {
        let n = b.saturating_sub(a) as usize;
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            out.push(noise_sample(self.cfg.seed, gw as u64, a + i as u64));
        }
        for (tx, start, w) in self.render_overlapping(gw, a, b, false) {
            let _ = tx;
            add_slice(&mut out, a, start, &w);
        }
        out
    }

    /// Samples `[a·M, b·M)` of gateway `gw`'s *wideband* stream, where
    /// `a`/`b` are channel-rate bounds and `M = cfg.channels`. Each
    /// packet is rendered at the wideband rate and upconverted to its
    /// node's channel slot; noise is counter-based on the wideband
    /// sample index.
    pub fn synth_window_wideband(&self, gw: u32, a: u64, b: u64) -> Vec<Complex32> {
        let m = self.cfg.channels.max(1) as u64;
        let (wa, wb) = (a * m, b * m);
        let n = wb.saturating_sub(wa) as usize;
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            out.push(noise_sample(
                self.cfg.seed ^ 0x5749_4445,
                gw as u64,
                wa + i as u64,
            ));
        }
        for (tx, start, w) in self.render_overlapping(gw, wa, wb, true) {
            let _ = tx;
            add_slice(&mut out, wa, start, &w);
        }
        out
    }

    /// The whole stream of one gateway in a single allocation — the
    /// materialized reference the chunked path is tested against. Only
    /// sized for test scenes.
    pub fn materialize(&self, gw: u32) -> Vec<Complex32> {
        if self.cfg.wideband {
            self.synth_window_wideband(gw, 0, self.total_samples())
        } else {
            self.synth_window(gw, 0, self.total_samples())
        }
    }

    /// Renders every transmission overlapping `[a, b)` (wideband-rate
    /// bounds when `wideband`): `(tx, absolute start, waveform)`.
    fn render_overlapping(
        &self,
        gw: u32,
        a: u64,
        b: u64,
        wideband: bool,
    ) -> Vec<(Tx, u64, Vec<Complex32>)> {
        let m = if wideband {
            self.cfg.channels.max(1) as u64
        } else {
            1
        };
        let span = self.max_span * m;
        // Schedule is sorted by channel-rate start; candidates lie in
        // [a − span, b) on the stream clock.
        let lo_key = (a.saturating_sub(span)) as f64 / m as f64;
        let hi_key = b as f64 / m as f64;
        let lo = self.schedule.partition_point(|t| t.start < lo_key);
        let hi = self.schedule.partition_point(|t| t.start < hi_key);
        let mut out = Vec::new();
        for tx in self.schedule.get(lo..hi).unwrap_or(&[]) {
            let delay = space::prop_delay_samples(&self.cfg, tx.node, gw);
            let s = (tx.start + delay) * m as f64;
            let start = s.floor().max(0.0) as u64;
            let frac = (s - start as f64) as f32;
            let len = self.len_by_sf.get(tx.sf_idx as usize).copied().unwrap_or(0) as u64 * m;
            if start >= b || start + len + m <= a {
                continue;
            }
            out.push((*tx, start, self.render_tx(tx, gw, frac, wideband)));
        }
        out
    }

    /// Renders one transmission as heard by `gw`: chirp synthesis at
    /// the (wideband-scaled) rate, fractional arrival delay, the node's
    /// CFO, link amplitude from the SNR against unit noise power, a
    /// per-(tx, gateway) random carrier phase, and — in wideband mode —
    /// upconversion to the node's channel.
    fn render_tx(&self, tx: &Tx, gw: u32, frac: f32, wideband: bool) -> Vec<Complex32> {
        let mut params = self.params(tx.sf_idx as usize);
        let m = self.cfg.channels.max(1);
        if wideband {
            params.osf *= m;
        }
        let payload = make_payload(tx.node, tx.seq);
        let w = Transmitter::new(params).transmit(&payload);
        let mut w = fractional_delay(&w, frac);
        apply_cfo(
            &mut w,
            space::node_cfo_hz(&self.cfg, tx.node),
            params.sample_rate(),
        );
        let snr = space::link_snr_db(&self.cfg, tx.node, gw);
        let amp = from_db(snr).sqrt();
        let phase = space::unit_f64(space::hash_words(
            self.cfg.seed,
            &[TAG_PHASE, tx.node as u64, tx.seq as u64, gw as u64],
        )) * 2.0
            * std::f64::consts::PI;
        let rot = Complex32::from_polar(amp, phase as f32);
        for s in w.iter_mut() {
            *s *= rot;
        }
        if wideband {
            upconvert(&mut w, space::node_channel(&self.cfg, tx.node), m);
        }
        w
    }
}

/// Unit-power complex AWGN as a pure function of the sample counter.
#[inline]
fn noise_sample(seed: u64, gw: u64, idx: u64) -> Complex32 {
    let z = space::hash_words(seed, &[TAG_NOISE, gw, idx]);
    let u1 = space::unit_f64(space::mix64(z ^ 0x9E37_79B9)).max(f64::MIN_POSITIVE);
    let u2 = space::unit_f64(space::mix64(z ^ 0x85EB_CA6B));
    let r = (-2.0 * u1.ln()).sqrt();
    let th = 2.0 * std::f64::consts::PI * u2;
    Complex32::new(
        (r * th.cos()) as f32 * SQRT_HALF,
        (r * th.sin()) as f32 * SQRT_HALF,
    )
}

/// Adds `w` (starting at absolute sample `start`) into `out`, whose
/// first element is absolute sample `base`.
fn add_slice(out: &mut [Complex32], base: u64, start: u64, w: &[Complex32]) {
    let lo_abs = start.max(base);
    let hi_abs = (start + w.len() as u64).min(base + out.len() as u64);
    if lo_abs >= hi_abs {
        return;
    }
    let src = (lo_abs - start) as usize;
    let dst = (lo_abs - base) as usize;
    let n = (hi_abs - lo_abs) as usize;
    for i in 0..n {
        if let (Some(o), Some(s)) = (out.get_mut(dst + i), w.get(src + i)) {
            *o += *s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tnb_phy::params::SpreadingFactor;

    fn tiny() -> Scene {
        let cfg = DeployConfig {
            nodes: 70_000,
            gateways: 2,
            sfs: vec![SpreadingFactor::SF7, SpreadingFactor::SF8],
            duration_s: 0.25,
            load_pps: 12.0,
            ..DeployConfig::default()
        };
        Scene::new(cfg)
    }

    #[test]
    fn noise_is_counter_based_and_unit_power() {
        let mut p = 0.0f64;
        let n = 20_000u64;
        for i in 0..n {
            let s = noise_sample(7, 1, i);
            assert_eq!(s, noise_sample(7, 1, i), "pure function of the index");
            p += s.norm_sqr() as f64;
        }
        let mean = p / n as f64;
        assert!((mean - 1.0).abs() < 0.05, "noise power {mean}");
    }

    #[test]
    fn windows_tile_into_the_materialized_stream() {
        let sc = tiny();
        let total = sc.total_samples();
        let full = sc.synth_window(0, 0, total);
        assert_eq!(full.len() as u64, total);
        for chunk in [977u64, 65_536] {
            let mut tiled = Vec::new();
            let mut a = 0;
            while a < total {
                let b = (a + chunk).min(total);
                tiled.extend(sc.synth_window(0, a, b));
                a = b;
            }
            assert_eq!(tiled, full, "chunk {chunk} must tile exactly");
        }
    }

    #[test]
    fn gateways_hear_different_streams() {
        let sc = tiny();
        let a = sc.synth_window(0, 0, 4_096);
        let b = sc.synth_window(1, 0, 4_096);
        assert_ne!(a, b);
    }

    #[test]
    fn wideband_window_is_m_times_longer_and_tiles() {
        let mut sc = tiny();
        sc.cfg.wideband = true;
        sc.cfg.duration_s = 0.05;
        let sc = Scene::with_schedule(sc.cfg.clone(), Vec::new());
        let m = sc.cfg.channels as u64;
        let full = sc.synth_window_wideband(0, 0, 10_000);
        assert_eq!(full.len() as u64, 10_000 * m);
        let mut tiled = sc.synth_window_wideband(0, 0, 6_000);
        tiled.extend(sc.synth_window_wideband(0, 6_000, 10_000));
        assert_eq!(tiled, full);
    }
}
