//! The network-server view: cross-gateway dedup and capture over the
//! PR 5 Semtech-style uplink interchange.
//!
//! Gateways do not share receiver state — like a real LoRaWAN network,
//! each forwards its own uplink JSON lines and the network server
//! reconstructs the deployment's truth from that interchange alone.
//! This module parses the lines (base64 payload, `lsnr`, `tmst`,
//! `datr`, optional `channel`), identifies each underlying transmission
//! from the application payload, collapses multi-gateway copies to one
//! delivery, and applies capture: the copy with the strongest reported
//! SNR wins, ties broken toward the lower gateway id, so the outcome is
//! deterministic regardless of which gateway's feed arrives first.

use crate::synth::Scene;
use std::collections::BTreeMap;
use tnb_phy::params::{CodingRate, LoRaParams, SpreadingFactor};
use tnb_phy::Transmitter;
use tnb_sim::traffic::parse_payload;

/// One deduped network-level delivery.
#[derive(Debug, Clone, PartialEq)]
pub struct Delivery {
    /// Originating node (from the payload).
    pub node: u32,
    /// Per-node sequence number (from the payload).
    pub seq: u32,
    /// Gateway whose copy won capture.
    pub gateway: u32,
    /// Winning copy's reported SNR, dB.
    pub snr_db: f32,
    /// Spreading factor from the line's `datr`.
    pub sf: u8,
    /// Uplink channel (wideband feeds only).
    pub channel: Option<usize>,
    /// End-to-end delay: scheduled transmit start to decoded packet
    /// end, microseconds of sample-clock time.
    pub delay_us: u64,
    /// Gateways that reported a copy of this transmission.
    pub copies: u32,
}

/// The deduped network view of one run.
#[derive(Debug, Clone, Default)]
pub struct NetworkReport {
    /// One entry per delivered transmission, ordered by `(node, seq)`.
    pub deliveries: Vec<Delivery>,
    /// Cross-gateway duplicate copies suppressed by dedup.
    pub duplicates: u64,
    /// Uplink lines that matched no scheduled transmission (malformed
    /// or CRC-passing ghosts).
    pub ghosts: u64,
    /// Capture wins per gateway.
    pub wins_per_gateway: Vec<u64>,
}

/// Fields the network server reads off one uplink line.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedUplink {
    /// Decoded application payload bytes.
    pub data: Vec<u8>,
    /// Reported SNR, dB.
    pub snr_db: f32,
    /// Sample-clock timestamp of the packet start, µs.
    pub tmst: u64,
    /// Spreading factor from `datr`.
    pub sf: u8,
    /// Coding rate from `datr`.
    pub cr: u8,
    /// Payload size the gateway reported.
    pub size: usize,
    /// Channel tag (wideband lines only).
    pub channel: Option<usize>,
}

/// Decodes RFC 4648 padded base64 (the uplink `data` encoding).
pub fn base64_decode(s: &str) -> Option<Vec<u8>> {
    fn val(c: u8) -> Option<u32> {
        match c {
            b'A'..=b'Z' => Some((c - b'A') as u32),
            b'a'..=b'z' => Some((c - b'a' + 26) as u32),
            b'0'..=b'9' => Some((c - b'0' + 52) as u32),
            b'+' => Some(62),
            b'/' => Some(63),
            _ => None,
        }
    }
    let bytes = s.as_bytes();
    if !bytes.len().is_multiple_of(4) {
        return None;
    }
    let mut out = Vec::with_capacity(bytes.len() / 4 * 3);
    for q in bytes.chunks(4) {
        let pad = q.iter().filter(|&&c| c == b'=').count();
        if pad > 2 || q[..4 - pad].iter().any(|&c| val(c).is_none()) {
            return None;
        }
        let mut v = 0u32;
        for &c in &q[..4 - pad] {
            v = (v << 6) | val(c).unwrap_or(0);
        }
        v <<= 6 * pad as u32;
        out.push((v >> 16) as u8);
        if pad < 2 {
            out.push((v >> 8) as u8);
        }
        if pad < 1 {
            out.push(v as u8);
        }
    }
    Some(out)
}

/// Returns the raw text following `"key":` in `line`, if present.
fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let at = line.find(&pat)?;
    line.get(at + pat.len()..)
}

/// Parses a number field terminated by `,`/`}` (JSON object member).
fn num_field(line: &str, key: &str) -> Option<f64> {
    let rest = field(line, key)?;
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest.get(..end)?.trim().parse::<f64>().ok()
}

/// Parses a string field (`"key":"…"`).
fn str_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let rest = field(line, key)?;
    let rest = rest.strip_prefix('"')?;
    let end = rest.find('"')?;
    rest.get(..end)
}

/// Parses one uplink JSON line into the fields the server uses; `None`
/// for control lines (`end`, `stats`) or malformed input.
pub fn parse_uplink_line(line: &str) -> Option<ParsedUplink> {
    if str_field(line, "type") != Some("uplink") {
        return None;
    }
    let datr = str_field(line, "datr")?;
    let (sf, cr) = parse_datr(datr)?;
    Some(ParsedUplink {
        data: base64_decode(str_field(line, "data")?)?,
        snr_db: num_field(line, "lsnr")? as f32,
        tmst: num_field(line, "tmst")? as u64,
        sf,
        cr,
        size: num_field(line, "size")? as usize,
        channel: num_field(line, "channel").map(|c| c as usize),
    })
}

/// Splits a `SF8CR4`-style data-rate string.
fn parse_datr(datr: &str) -> Option<(u8, u8)> {
    let rest = datr.strip_prefix("SF")?;
    let cr_at = rest.find("CR")?;
    let sf = rest.get(..cr_at)?.parse::<u8>().ok()?;
    let cr = rest.get(cr_at + 2..)?.parse::<u8>().ok()?;
    Some((sf, cr))
}

fn sf_from_value(v: u8) -> Option<SpreadingFactor> {
    Some(match v {
        7 => SpreadingFactor::SF7,
        8 => SpreadingFactor::SF8,
        9 => SpreadingFactor::SF9,
        10 => SpreadingFactor::SF10,
        11 => SpreadingFactor::SF11,
        12 => SpreadingFactor::SF12,
        _ => return None,
    })
}

fn cr_from_value(v: u8) -> Option<CodingRate> {
    Some(match v {
        1 => CodingRate::CR1,
        2 => CodingRate::CR2,
        3 => CodingRate::CR3,
        4 => CodingRate::CR4,
        _ => return None,
    })
}

/// Airtime (µs) of a payload of `size` bytes at the line's data rate —
/// computed from the uplink fields alone, as a real server would.
fn airtime_us(sf: u8, cr: u8, size: usize) -> Option<u64> {
    let params = LoRaParams::new(sf_from_value(sf)?, cr_from_value(cr)?);
    Some((Transmitter::new(params).packet_airtime(size) * 1e6) as u64)
}

impl NetworkReport {
    /// Builds the network view from each gateway's uplink feed (index =
    /// gateway id). The scene supplies the schedule for ghost detection
    /// and delay accounting; dedup itself uses only the lines.
    pub fn collect(scene: &Scene, uplinks: &[Vec<String>]) -> NetworkReport {
        let fs = scene.cfg.sample_rate();
        // Scheduled transmit start in µs of sample-clock time.
        let sched_us: BTreeMap<(u32, u32), u64> = scene
            .schedule
            .iter()
            .map(|t| ((t.node, t.seq), (t.start / fs * 1e6) as u64))
            .collect();
        let mut best: BTreeMap<(u32, u32), Delivery> = BTreeMap::new();
        let mut ghosts = 0u64;
        for (gw, lines) in uplinks.iter().enumerate() {
            for line in lines {
                let Some(p) = parse_uplink_line(line) else {
                    ghosts += 1;
                    continue;
                };
                let Some((node, seq)) = parse_payload(&p.data) else {
                    ghosts += 1;
                    continue;
                };
                let Some(&sent_us) = sched_us.get(&(node, seq)) else {
                    ghosts += 1;
                    continue;
                };
                let end_us = p.tmst + airtime_us(p.sf, p.cr, p.size).unwrap_or(0);
                let d = Delivery {
                    node,
                    seq,
                    gateway: gw as u32,
                    snr_db: p.snr_db,
                    sf: p.sf,
                    channel: p.channel,
                    delay_us: end_us.saturating_sub(sent_us),
                    copies: 1,
                };
                match best.get_mut(&(node, seq)) {
                    None => {
                        best.insert((node, seq), d);
                    }
                    Some(cur) => {
                        let copies = cur.copies + 1;
                        // Capture: strictly stronger SNR wins; equal SNR
                        // keeps the earlier (lower-id) gateway.
                        if d.snr_db > cur.snr_db {
                            *cur = d;
                        }
                        cur.copies = copies;
                    }
                }
            }
        }
        let mut wins = vec![0u64; uplinks.len()];
        let mut duplicates = 0u64;
        let deliveries: Vec<Delivery> = best.into_values().collect();
        for d in &deliveries {
            duplicates += (d.copies - 1) as u64;
            if let Some(w) = wins.get_mut(d.gateway as usize) {
                *w += 1;
            }
        }
        NetworkReport {
            deliveries,
            duplicates,
            ghosts,
            wins_per_gateway: wins,
        }
    }

    /// Unique delivered transmissions per second of simulated time.
    pub fn goodput_pps(&self, duration_s: f64) -> f64 {
        if duration_s <= 0.0 {
            0.0
        } else {
            self.deliveries.len() as f64 / duration_s
        }
    }

    /// Delivered fraction of the offered load.
    pub fn prr(&self, offered: usize) -> f64 {
        if offered == 0 {
            0.0
        } else {
            self.deliveries.len() as f64 / offered as f64
        }
    }

    /// Deliveries at a given SF.
    pub fn delivered_for_sf(&self, sf: u8) -> usize {
        self.deliveries.iter().filter(|d| d.sf == sf).count()
    }

    /// `(p50, p95, p99)` of delivery delay in milliseconds (zeros when
    /// nothing was delivered).
    pub fn delay_percentiles_ms(&self) -> (f64, f64, f64) {
        if self.deliveries.is_empty() {
            return (0.0, 0.0, 0.0);
        }
        let mut d: Vec<u64> = self.deliveries.iter().map(|d| d.delay_us).collect();
        d.sort_unstable();
        let pick = |q: f64| -> f64 {
            let i = ((d.len() - 1) as f64 * q).round() as usize;
            d.get(i).copied().unwrap_or(0) as f64 / 1e3
        };
        (pick(0.50), pick(0.95), pick(0.99))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base64_roundtrips_the_gateway_encoder() {
        for n in 0..40usize {
            let bytes: Vec<u8> = (0..n).map(|i| (i * 37 + n) as u8).collect();
            let enc = tnb_gateway::uplink::base64(&bytes);
            assert_eq!(base64_decode(&enc).as_deref(), Some(bytes.as_slice()));
        }
        assert_eq!(base64_decode("!!!!"), None);
        assert_eq!(base64_decode("AB"), None);
    }

    #[test]
    fn datr_parses_both_knobs() {
        assert_eq!(parse_datr("SF8CR4"), Some((8, 4)));
        assert_eq!(parse_datr("SF12CR1"), Some((12, 1)));
        assert_eq!(parse_datr("SFXCR1"), None);
        assert_eq!(parse_datr("8CR1"), None);
    }

    #[test]
    fn uplink_line_roundtrips_through_parser() {
        use tnb_core::DecodedPacket;
        use tnb_phy::header::Header;
        let params = LoRaParams::new(SpreadingFactor::SF8, CodingRate::CR4);
        let payload = tnb_sim::traffic::make_payload(70_000, 3);
        let pkt = DecodedPacket {
            payload: payload.clone(),
            header: Header {
                payload_len: 16,
                cr: CodingRate::CR4,
                has_crc: true,
            },
            start: 12_345.5,
            cfo_cycles: 0.01,
            snr_db: 7.5,
            rescued_codewords: 1,
            pass: 1,
        };
        let line = tnb_gateway::uplink::uplink_line(&params, 0, 0, &pkt);
        let p = parse_uplink_line(&line).expect("parse");
        assert_eq!(p.data, payload);
        assert_eq!(p.sf, 8);
        assert_eq!(p.cr, 4);
        assert_eq!(p.size, 16);
        assert_eq!(p.channel, None);
        assert!((p.snr_db - 7.5).abs() < 0.05);
        assert_eq!(p.tmst, 12_345);
        assert_eq!(parse_payload(&p.data), Some((70_000, 3)));
    }
}
