//! Planar spatial model: stateless node geometry and link budgets.
//!
//! A city of 10⁶ nodes must not cost 10⁶ stored positions. Every
//! per-node and per-link quantity here — position, shadowing, CFO,
//! spreading factor, uplink channel — is a pure hash of
//! `(seed, node[, gateway])`, computed on demand in O(1). The hash is
//! the SplitMix64 finalizer, whose output is uniform enough for
//! Box–Muller shadowing draws and is endian- and platform-independent,
//! so a config reproduces the same city everywhere.

use crate::DeployConfig;

/// Propagation speed used for per-gateway arrival offsets, m/s.
pub const SPEED_OF_LIGHT_M_S: f64 = 299_792_458.0;

/// Link SNRs are clamped into this range (dB): the floor keeps the
/// weakest nodes barely undecodable rather than minus-infinitely so,
/// the ceiling models front-end saturation.
pub const SNR_CLAMP_DB: (f64, f64) = (-10.0, 30.0);

// Domain-separation tags so independent draws never reuse a hash.
const TAG_X: u64 = 0x0070_6f73_5f78; // "pos_x"
const TAG_Y: u64 = 0x0070_6f73_5f79; // "pos_y"
const TAG_SHADOW: u64 = 0x7368_6164_6f77; // "shadow"
const TAG_CFO: u64 = 0x63666f; // "cfo"
const TAG_CHANNEL: u64 = 0x6368_616e; // "chan"

/// SplitMix64 finalizer: a bijective avalanche mix on 64 bits.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hashes a word sequence under `seed` (order-sensitive).
#[inline]
pub fn hash_words(seed: u64, words: &[u64]) -> u64 {
    let mut z = mix64(seed ^ 0xD1B5_4A32_D192_ED03);
    for &w in words {
        z = mix64(z ^ w);
    }
    z
}

/// Maps a hash to a uniform `f64` in `[0, 1)` (53 mantissa bits).
#[inline]
pub fn unit_f64(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Standard-normal draw from two independent hashes (Box–Muller).
#[inline]
pub fn gaussian(h1: u64, h2: u64) -> f64 {
    let u1 = unit_f64(h1).max(f64::MIN_POSITIVE);
    let u2 = unit_f64(h2);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Node position: uniform over the `side_m × side_m` square.
pub fn node_pos(cfg: &DeployConfig, node: u32) -> (f64, f64) {
    let x = unit_f64(hash_words(cfg.seed, &[TAG_X, node as u64])) * cfg.side_m;
    let y = unit_f64(hash_words(cfg.seed, &[TAG_Y, node as u64])) * cfg.side_m;
    (x, y)
}

/// Gateway position: the single gateway sits at the city center; `K ≥ 2`
/// gateways spread evenly on a circle of radius `side/3` around it.
pub fn gateway_pos(cfg: &DeployConfig, gw: u32) -> (f64, f64) {
    let c = cfg.side_m / 2.0;
    let k = cfg.gateways.max(1);
    if k == 1 {
        return (c, c);
    }
    let r = cfg.side_m / 3.0;
    let th = 2.0 * std::f64::consts::PI * gw as f64 / k as f64;
    (c + r * th.cos(), c + r * th.sin())
}

/// Node→gateway distance, metres (floored at 1 m so the log-distance
/// model never sees a co-located pair).
pub fn link_distance_m(cfg: &DeployConfig, node: u32, gw: u32) -> f64 {
    let (nx, ny) = node_pos(cfg, node);
    let (gx, gy) = gateway_pos(cfg, gw);
    let (dx, dy) = (nx - gx, ny - gy);
    (dx * dx + dy * dy).sqrt().max(1.0)
}

/// Link SNR in dB: log-distance path loss from the 1 m reference plus
/// per-link log-normal shadowing, clamped to [`SNR_CLAMP_DB`]. Distance
/// spread across the square gives the near-far power deltas (and thus
/// capture) for free.
pub fn link_snr_db(cfg: &DeployConfig, node: u32, gw: u32) -> f32 {
    let d = link_distance_m(cfg, node, gw);
    let path_loss = 10.0 * cfg.path_loss_exp * d.log10();
    let h1 = hash_words(cfg.seed, &[TAG_SHADOW, node as u64, gw as u64, 0]);
    let h2 = hash_words(cfg.seed, &[TAG_SHADOW, node as u64, gw as u64, 1]);
    let shadow = gaussian(h1, h2) * cfg.shadow_sigma_db;
    (cfg.ref_snr_db - path_loss + shadow).clamp(SNR_CLAMP_DB.0, SNR_CLAMP_DB.1) as f32
}

/// Best link SNR over all gateways (what ADR would see).
pub fn best_snr_db(cfg: &DeployConfig, node: u32) -> f32 {
    let mut best = SNR_CLAMP_DB.0 as f32;
    for gw in 0..cfg.gateways.max(1) {
        best = best.max(link_snr_db(cfg, node, gw));
    }
    best
}

/// ADR-style spreading-factor assignment: the clamped SNR range splits
/// into `cfg.sfs.len()` equal buckets, strongest links taking the first
/// (fastest) SF and the weakest the last (slowest, most robust).
pub fn node_sf_index(cfg: &DeployConfig, node: u32) -> usize {
    let n = cfg.sfs.len();
    if n <= 1 {
        return 0;
    }
    let span = (SNR_CLAMP_DB.1 - SNR_CLAMP_DB.0) as f32;
    let depth = (SNR_CLAMP_DB.1 as f32 - best_snr_db(cfg, node)).max(0.0);
    ((depth / (span / n as f32)) as usize).min(n - 1)
}

/// Per-node crystal CFO, uniform in `±cfo_max_hz`.
pub fn node_cfo_hz(cfg: &DeployConfig, node: u32) -> f64 {
    let u = unit_f64(hash_words(cfg.seed, &[TAG_CFO, node as u64]));
    (2.0 * u - 1.0) * cfg.cfo_max_hz
}

/// Uplink channel of a node in wideband mode (`0..channels`, by hash).
pub fn node_channel(cfg: &DeployConfig, node: u32) -> usize {
    (hash_words(cfg.seed, &[TAG_CHANNEL, node as u64]) % cfg.channels.max(1) as u64) as usize
}

/// Propagation delay of the node→gateway link in channel-rate samples
/// (at 1 Msps one sample is ~300 m of travel, so a 2 km city spans a
/// few samples of inter-gateway arrival skew).
pub fn prop_delay_samples(cfg: &DeployConfig, node: u32, gw: u32) -> f64 {
    link_distance_m(cfg, node, gw) / SPEED_OF_LIGHT_M_S * cfg.sample_rate()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hashes_are_stable() {
        // Pinned values: the spatial model is part of the reproducibility
        // contract, so the mixer must never drift.
        assert_eq!(mix64(0), 0xE220_A839_7B1D_CDAF);
        assert_eq!(
            hash_words(1, &[2, 3]),
            hash_words(1, &[2, 3]),
            "hash must be pure"
        );
        assert_ne!(hash_words(1, &[2, 3]), hash_words(1, &[3, 2]));
    }

    #[test]
    fn unit_in_range_and_gaussian_sane() {
        let mut acc = 0.0;
        for i in 0..4096u64 {
            let u = unit_f64(mix64(i));
            assert!((0.0..1.0).contains(&u));
            acc += gaussian(mix64(i ^ 0xAAAA), mix64(i ^ 0x5555));
        }
        // Mean of 4096 standard normals is within ~5σ/64 of zero.
        assert!((acc / 4096.0).abs() < 0.1, "gaussian mean {acc}");
    }

    #[test]
    fn geometry_inside_city() {
        let cfg = DeployConfig::default();
        for node in [0u32, 7, 65_536, 999_999] {
            let (x, y) = node_pos(&cfg, node);
            assert!(x >= 0.0 && x < cfg.side_m && y >= 0.0 && y < cfg.side_m);
        }
        for gw in 0..cfg.gateways {
            let (x, y) = gateway_pos(&cfg, gw);
            assert!(x >= 0.0 && x <= cfg.side_m && y >= 0.0 && y <= cfg.side_m);
        }
    }

    #[test]
    fn snr_falls_with_distance_on_average() {
        let cfg = DeployConfig {
            shadow_sigma_db: 0.0,
            ..DeployConfig::default()
        };
        // With shadowing off, SNR is monotone in distance.
        let mut pairs: Vec<(f64, f32)> = (0..200)
            .map(|n| (link_distance_m(&cfg, n, 0), link_snr_db(&cfg, n, 0)))
            .collect();
        pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
        for w in pairs.windows(2) {
            assert!(w[0].1 >= w[1].1 - 1e-3);
        }
    }

    #[test]
    fn sf_assignment_covers_all_slots() {
        let cfg = DeployConfig::default();
        let mut seen = [false; 2];
        for n in 0..2_000 {
            seen[node_sf_index(&cfg, n)] = true;
        }
        assert!(seen[0] && seen[1], "both SFs should be in use");
    }

    #[test]
    fn cfo_bounded_and_channels_cover_band() {
        let cfg = DeployConfig::default();
        let mut chans = std::collections::HashSet::new();
        for n in 0..4_000 {
            assert!(node_cfo_hz(&cfg, n).abs() <= cfg.cfo_max_hz);
            chans.insert(node_channel(&cfg, n));
        }
        assert_eq!(chans.len(), cfg.channels);
    }
}
