//! City-scale deployment simulator for TnB (ROADMAP item 5).
//!
//! The paper evaluates TnB on single traces; network-level work such as
//! SS5G treats collision resolution as a *deployment* property — goodput
//! vs offered load, delay, per-node fairness — across thousands to
//! millions of devices and multiple gateways. This crate provides that
//! layer as a deterministic discrete-event simulation:
//!
//! - **Event model** ([`traffic`]): Poisson or bursty (duty-cycle
//!   constrained) transmissions on the sample clock. No wall clock
//!   anywhere — the crate is in the xtask determinism set.
//! - **Spatial model** ([`space`]): nodes drop uniformly on a planar
//!   city square; each node→gateway link maps distance to SNR through
//!   log-distance path loss plus seeded shadowing, which yields near-far
//!   power deltas and capture for free.
//! - **Streaming synthesis** ([`synth`]): each gateway's IQ stream is
//!   generated on the fly, one sample window at a time, from only the
//!   transmissions overlapping that window. Noise is a counter-based
//!   function of the absolute sample index, so any chunking of the
//!   stream is byte-identical — and a city-long trace is never resident
//!   in memory.
//! - **Sharded decode** ([`run`]): the timeline splits into fixed-size
//!   shards decoded by a work-stealing `std::thread::scope` pool and
//!   merged in shard order, so results are byte-identical for any
//!   worker count.
//! - **Network layer** ([`network`]): gateways emit the PR 5
//!   Semtech-style uplink lines; the network server parses those lines,
//!   deduplicates cross-gateway copies of the same transmission, and
//!   applies capture (strongest-gateway copy wins, deterministic
//!   tie-break).
//!
//! Everything is a pure function of [`DeployConfig`] (including its
//! seed); node state is derived statelessly by hashing, so memory
//! scales with the number of *transmissions*, not with `nodes ×
//! duration × sample_rate`.

pub mod network;
pub mod run;
pub mod space;
pub mod synth;
pub mod traffic;

pub use network::NetworkReport;
pub use run::{run_deploy, DeployReport};
pub use synth::Scene;
pub use traffic::{TrafficModel, Tx};

use tnb_phy::params::{CodingRate, SpreadingFactor};

/// Complete description of one deployment run. Every derived quantity —
/// node positions, link SNRs, traffic, IQ samples — is a pure function
/// of this struct, so two runs with equal configs are byte-identical
/// regardless of worker count or chunking.
#[derive(Debug, Clone, PartialEq)]
pub struct DeployConfig {
    /// Number of nodes in the city (node ids `0..nodes`).
    pub nodes: u32,
    /// Number of gateways (ids `0..gateways`).
    pub gateways: u32,
    /// Aggregate offered load over the whole city, packets per second.
    pub load_pps: f64,
    /// Simulated duration in seconds.
    pub duration_s: f64,
    /// Master seed; all randomness is hashed from it.
    pub seed: u64,
    /// Spreading factors in use, fastest first; each node is assigned
    /// one by link quality (ADR-style). Must be non-empty.
    pub sfs: Vec<SpreadingFactor>,
    /// Coding rate shared by all nodes.
    pub cr: CodingRate,
    /// Traffic model (Poisson or duty-cycle-constrained bursts).
    pub traffic: TrafficModel,
    /// Regulatory duty cycle per node (EU868: 0.01). After each packet a
    /// node stays silent for `airtime × (1/duty − 1)`.
    pub duty_cycle: f64,
    /// Side of the square deployment area, metres.
    pub side_m: f64,
    /// Log-distance path-loss exponent.
    pub path_loss_exp: f64,
    /// Log-normal shadowing standard deviation, dB.
    pub shadow_sigma_db: f64,
    /// Link SNR at 1 m (transmit power minus noise floor, dB).
    pub ref_snr_db: f64,
    /// Per-node CFO drawn uniformly from `±cfo_max_hz`.
    pub cfo_max_hz: f64,
    /// Run the SIC rescue pass in every receiver.
    pub sic: bool,
    /// Wideband mode: gateways capture one `channels`-wide stream and
    /// decode through the polyphase [`tnb_core::WidebandReceiver`];
    /// nodes spread across uplink channels by hash.
    pub wideband: bool,
    /// Channel count `M` in wideband mode.
    pub channels: usize,
    /// Streaming chunk pushed into each receiver, in channel-rate
    /// samples. Purely an execution knob: results are chunk-invariant.
    pub chunk_samples: usize,
    /// Timeline shard length in channel-rate samples. Fixed by config —
    /// never derived from the worker count — so parallel runs stay
    /// byte-identical.
    pub shard_samples: u64,
}

impl Default for DeployConfig {
    fn default() -> Self {
        DeployConfig {
            nodes: 1_000,
            gateways: 2,
            load_pps: 20.0,
            duration_s: 2.0,
            seed: 1,
            sfs: vec![SpreadingFactor::SF8, SpreadingFactor::SF10],
            cr: CodingRate::CR4,
            traffic: TrafficModel::Poisson,
            duty_cycle: 0.01,
            side_m: 2_000.0,
            path_loss_exp: 3.5,
            shadow_sigma_db: 6.0,
            ref_snr_db: 120.0,
            cfo_max_hz: 4_880.0,
            sic: false,
            wideband: false,
            channels: 8,
            chunk_samples: 262_144,
            shard_samples: 1_000_000,
        }
    }
}

impl DeployConfig {
    /// Channel-rate sample rate (identical for every SF in this PHY:
    /// bandwidth × oversampling).
    pub fn sample_rate(&self) -> f64 {
        self.params(0).sample_rate()
    }

    /// PHY parameters of SF slot `i` (clamped into range so a malformed
    /// index degrades to the first slot instead of panicking).
    pub fn params(&self, sf_idx: usize) -> tnb_phy::params::LoRaParams {
        let sf = self
            .sfs
            .get(sf_idx)
            .or_else(|| self.sfs.first())
            .copied()
            .unwrap_or(SpreadingFactor::SF8);
        tnb_phy::params::LoRaParams::new(sf, self.cr)
    }
}
