//! The sharded decode loop: deterministic fan-out over
//! `(gateway, SF, time-shard)` tasks.
//!
//! The timeline splits into fixed-length shards (a pure function of the
//! config — never of the worker count). Each task synthesizes its shard
//! window with pre/post padding, streams it through a fresh
//! [`StreamingReceiver`] (or [`WidebandReceiver`]), and keeps only the
//! decodes whose start falls inside the shard it owns. A
//! work-stealing `std::thread::scope` pool executes tasks in any order;
//! results land in a slot per task id and merge in task order, so the
//! output — down to the uplink-line bytes — is identical for 1, 2 or 8
//! workers.

use crate::network::NetworkReport;
use crate::synth::Scene;
use crate::TrafficModel;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use tnb_core::{
    same_transmission, DecodedPacket, SicConfig, StreamingConfig, StreamingReceiver, TnbConfig,
    WidebandConfig, WidebandReceiver,
};
use tnb_dsp::ChannelizerConfig;
use tnb_gateway::uplink;
use tnb_phy::Transmitter;
use tnb_sim::traffic::PAYLOAD_LEN;

/// One decode task: a gateway's shard of the timeline at one SF.
#[derive(Debug, Clone, Copy)]
struct Task {
    gw: u32,
    sf_idx: usize,
    shard: u64,
}

/// One decoded packet attributed to where it was heard. `packet.start`
/// is absolute on the gateway's channel-rate sample clock.
#[derive(Debug, Clone)]
struct Heard {
    sf_idx: usize,
    channel: usize,
    packet: DecodedPacket,
}

/// Everything one deployment run produced.
#[derive(Debug, Clone)]
pub struct DeployReport {
    /// The scene's config echo (see [`DeployReport::to_json`]).
    pub nodes: u32,
    /// Gateways simulated.
    pub gateways: u32,
    /// Offered load, packets/s.
    pub load_pps: f64,
    /// Simulated seconds.
    pub duration_s: f64,
    /// Master seed.
    pub seed: u64,
    /// SIC rescue pass on?
    pub sic: bool,
    /// Wideband front-end?
    pub wideband: bool,
    /// Traffic model echo.
    pub traffic: TrafficModel,
    /// SF values in use.
    pub sfs: Vec<u8>,
    /// Scheduled transmissions.
    pub offered: usize,
    /// Offered count per SF slot.
    pub offered_per_sf: Vec<usize>,
    /// Uplink lines emitted per gateway (pre-dedup).
    pub uplinks: Vec<Vec<String>>,
    /// The deduped network view.
    pub network: NetworkReport,
}

/// Runs the deployment end to end with `workers` decode threads.
/// Byte-identical output for any `workers ≥ 1`.
pub fn run_deploy(scene: &Scene, workers: usize) -> DeployReport {
    let cfg = &scene.cfg;
    let total = scene.total_samples();
    let shard_len = cfg.shard_samples.max(1);
    let n_shards = total.div_ceil(shard_len).max(1);
    let n_sfs = cfg.sfs.len().max(1);

    let mut tasks = Vec::new();
    for gw in 0..cfg.gateways.max(1) {
        for sf_idx in 0..n_sfs {
            for shard in 0..n_shards {
                tasks.push(Task { gw, sf_idx, shard });
            }
        }
    }

    let results: Mutex<Vec<Option<Vec<Heard>>>> = Mutex::new(vec![None; tasks.len()]);
    let next = AtomicUsize::new(0);
    let n_workers = workers.clamp(1, tasks.len().max(1));
    std::thread::scope(|s| {
        for _ in 0..n_workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(task) = tasks.get(i) else { break };
                let heard = decode_task(scene, *task, total, shard_len, n_shards);
                if let Ok(mut slots) = results.lock() {
                    if let Some(slot) = slots.get_mut(i) {
                        *slot = Some(heard);
                    }
                }
            });
        }
    });
    let slots = match results.into_inner() {
        Ok(v) => v,
        Err(e) => e.into_inner(),
    };

    // Merge in task order: per (gateway, SF), shards concatenate in
    // time order and boundary duplicates collapse under the same
    // `same_transmission` predicate the receivers use internally.
    let mut per_gateway: Vec<Vec<Heard>> = vec![Vec::new(); cfg.gateways.max(1) as usize];
    let mut it = slots.into_iter();
    for gw in 0..cfg.gateways.max(1) {
        for sf_idx in 0..n_sfs {
            let sps = scene.params(sf_idx).samples_per_symbol() as f64;
            let mut kept: Vec<(usize, f64, f64)> = Vec::new(); // (channel, start, cfo)
            for _shard in 0..n_shards {
                let heard = it.next().flatten().unwrap_or_default();
                for h in heard {
                    let dup = kept.iter().any(|&(c, st, cf)| {
                        c == h.channel
                            && same_transmission(st, cf, h.packet.start, h.packet.cfo_cycles, sps)
                    });
                    if dup {
                        continue;
                    }
                    kept.push((h.channel, h.packet.start, h.packet.cfo_cycles));
                    if let Some(bucket) = per_gateway.get_mut(gw as usize) {
                        bucket.push(h);
                    }
                }
            }
        }
    }

    // Gateway uplink feeds: every gateway orders its packets by start
    // time (then SF, then channel) and emits PR 5 Semtech-style lines.
    let mut uplinks: Vec<Vec<String>> = Vec::new();
    for (gw, heard) in per_gateway.iter_mut().enumerate() {
        heard.sort_by(|a, b| {
            a.packet
                .start
                .total_cmp(&b.packet.start)
                .then(a.sf_idx.cmp(&b.sf_idx))
                .then(a.channel.cmp(&b.channel))
        });
        let mut lines = Vec::with_capacity(heard.len());
        for (n, h) in heard.iter().enumerate() {
            let params = scene.params(h.sf_idx);
            let line = if cfg.wideband {
                uplink::uplink_line_on_channel(&params, gw as u32, n as u64, h.channel, &h.packet)
            } else {
                uplink::uplink_line(&params, gw as u32, n as u64, &h.packet)
            };
            lines.push(line);
        }
        uplinks.push(lines);
    }

    let network = NetworkReport::collect(scene, &uplinks);
    let mut offered_per_sf = vec![0usize; n_sfs];
    for tx in &scene.schedule {
        if let Some(slot) = offered_per_sf.get_mut(tx.sf_idx as usize) {
            *slot += 1;
        }
    }
    DeployReport {
        nodes: cfg.nodes,
        gateways: cfg.gateways,
        load_pps: cfg.load_pps,
        duration_s: cfg.duration_s,
        seed: cfg.seed,
        sic: cfg.sic,
        wideband: cfg.wideband,
        traffic: cfg.traffic,
        sfs: cfg.sfs.iter().map(|s| s.value() as u8).collect(),
        offered: scene.schedule.len(),
        offered_per_sf,
        uplinks,
        network,
    }
}

/// Decodes one `(gateway, SF, shard)` task and returns the decodes the
/// shard owns, with absolute channel-clock starts.
fn decode_task(scene: &Scene, t: Task, total: u64, shard_len: u64, n_shards: u64) -> Vec<Heard> {
    let cfg = &scene.cfg;
    let params = scene.params(t.sf_idx);
    let max_pkt = (Transmitter::new(params).packet_samples(PAYLOAD_LEN) + 1) as u64;
    let sps = params.samples_per_symbol() as u64;
    // Pre-padding gives the decoder one full batch window of context
    // before the first owned sample (Thrive's peak matching sees the
    // same colliders a continuous receiver would); post-padding lets a
    // packet starting at the shard's last sample finish (plus one
    // extra airtime for the SIC rescue window).
    let pre = 4 * max_pkt + sps;
    let post = (2 + u64::from(cfg.sic)) * max_pkt + sps;
    let shard_lo = t.shard * shard_len;
    let shard_hi = (shard_lo + shard_len).min(total);
    let a = shard_lo.saturating_sub(pre);
    let b = (shard_hi + post).min(total);
    let upper = if t.shard + 1 >= n_shards {
        f64::INFINITY
    } else {
        shard_hi as f64
    };

    let streaming = StreamingConfig {
        receiver: TnbConfig {
            noise_power: Some(1.0),
            sic: SicConfig {
                enabled: cfg.sic,
                ..SicConfig::default()
            },
            ..TnbConfig::default()
        },
        max_payload: PAYLOAD_LEN,
        window_factor: 4,
        observe: false,
        workers: 1,
    };
    let chunk = (cfg.chunk_samples.max(1024)) as u64;
    let mut out = Vec::new();
    let keep = |channel: usize, mut p: DecodedPacket, out: &mut Vec<Heard>| {
        p.start += a as f64;
        if p.start >= shard_lo as f64 && p.start < upper {
            out.push(Heard {
                sf_idx: t.sf_idx,
                channel,
                packet: p,
            });
        }
    };
    if cfg.wideband {
        let mut rx = WidebandReceiver::with_config(
            params,
            WidebandConfig {
                channelizer: ChannelizerConfig {
                    channels: cfg.channels.max(1),
                    ..ChannelizerConfig::default()
                },
                streaming,
            },
        );
        let mut pos = a;
        while pos < b {
            let e = (pos + chunk).min(b);
            let w = scene.synth_window_wideband(t.gw, pos, e);
            for cp in rx.push(&w) {
                keep(cp.channel, cp.packet, &mut out);
            }
            pos = e;
        }
        for cp in rx.finish() {
            keep(cp.channel, cp.packet, &mut out);
        }
    } else {
        let mut rx = StreamingReceiver::with_config(params, streaming);
        let mut pos = a;
        while pos < b {
            let e = (pos + chunk).min(b);
            let w = scene.synth_window(t.gw, pos, e);
            for p in rx.push(&w) {
                keep(0, p, &mut out);
            }
            pos = e;
        }
        for p in rx.finish() {
            keep(0, p, &mut out);
        }
    }
    out
}

impl DeployReport {
    /// Deterministic JSON rendering of the run: config echo, offered
    /// load, per-gateway uplink counts and the deduped network metrics.
    /// Worker count is deliberately absent — the bytes of this string
    /// are part of the determinism contract across worker counts.
    pub fn to_json(&self) -> String {
        let sfs: Vec<String> = self.sfs.iter().map(|s| s.to_string()).collect();
        let per_sf: Vec<String> = self
            .offered_per_sf
            .iter()
            .enumerate()
            .map(|(i, &n)| {
                format!(
                    "{{\"sf\":{},\"offered\":{},\"delivered\":{}}}",
                    self.sfs.get(i).copied().unwrap_or(0),
                    n,
                    self.network
                        .delivered_for_sf(self.sfs.get(i).copied().unwrap_or(0))
                )
            })
            .collect();
        let per_gw: Vec<String> = self
            .uplinks
            .iter()
            .enumerate()
            .map(|(g, lines)| {
                format!(
                    "{{\"gateway\":{},\"uplinks\":{},\"wins\":{}}}",
                    g,
                    lines.len(),
                    self.network.wins_per_gateway.get(g).copied().unwrap_or(0)
                )
            })
            .collect();
        let traffic = match self.traffic {
            TrafficModel::Poisson => "\"poisson\"".to_string(),
            TrafficModel::Bursty { max_burst } => {
                format!("{{\"bursty\":{{\"max_burst\":{max_burst}}}}}")
            }
        };
        let (p50, p95, p99) = self.network.delay_percentiles_ms();
        format!(
            "{{\"deploy\":{{\"nodes\":{},\"gateways\":{},\"load_pps\":{:.4},\
             \"duration_s\":{:.4},\"seed\":{},\"traffic\":{},\"sic\":{},\
             \"wideband\":{},\"sfs\":[{}],\"offered\":{}}},\
             \"network\":{{\"delivered\":{},\"duplicates\":{},\"ghosts\":{},\
             \"goodput_pps\":{:.4},\"prr\":{:.4},\
             \"delay_ms\":{{\"p50\":{:.3},\"p95\":{:.3},\"p99\":{:.3}}},\
             \"per_gateway\":[{}],\"per_sf\":[{}]}}}}",
            self.nodes,
            self.gateways,
            self.load_pps,
            self.duration_s,
            self.seed,
            traffic,
            self.sic,
            self.wideband,
            sfs.join(","),
            self.offered,
            self.network.deliveries.len(),
            self.network.duplicates,
            self.network.ghosts,
            self.network.goodput_pps(self.duration_s),
            self.network.prr(self.offered),
            p50,
            p95,
            p99,
            per_gw.join(","),
            per_sf.join(","),
        )
    }

    /// One-screen human summary.
    pub fn summary(&self) -> String {
        let (p50, p95, p99) = self.network.delay_percentiles_ms();
        let mut s = format!(
            "deploy: {} nodes, {} gateways, {:.1} pps offered over {:.1} s (seed {})\n\
             offered {} | delivered {} | goodput {:.2} pps | PRR {:.3}\n\
             cross-gateway duplicates {} | ghosts {} | delay ms p50 {:.2} p95 {:.2} p99 {:.2}\n",
            self.nodes,
            self.gateways,
            self.load_pps,
            self.duration_s,
            self.seed,
            self.offered,
            self.network.deliveries.len(),
            self.network.goodput_pps(self.duration_s),
            self.network.prr(self.offered),
            self.network.duplicates,
            self.network.ghosts,
            p50,
            p95,
            p99,
        );
        for (g, lines) in self.uplinks.iter().enumerate() {
            s.push_str(&format!(
                "  gateway {g}: {} uplinks, {} capture wins\n",
                lines.len(),
                self.network.wins_per_gateway.get(g).copied().unwrap_or(0)
            ));
        }
        s
    }
}
