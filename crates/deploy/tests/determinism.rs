//! Streaming-synthesis and sharding determinism (ISSUE 10 satellite 3
//! and the acceptance criterion): the chunked, sharded, multi-worker
//! deploy pipeline must be byte-identical to a materialized-trace
//! reference decode, across chunk sizes and shard/worker counts
//! {1, 2, 8} — and a city-scale config must produce byte-identical
//! `--json` output for any worker count.

use tnb_core::{SicConfig, StreamingConfig, StreamingReceiver, TnbConfig};
use tnb_deploy::{run_deploy, DeployConfig, Scene};
use tnb_gateway::uplink;
use tnb_phy::params::SpreadingFactor;
use tnb_sim::traffic::PAYLOAD_LEN;

/// Decodes gateway `gw`'s fully materialized stream with one
/// continuous receiver (the same receiver config and chunk feed the
/// deploy loop uses) and renders the same uplink lines. Identical IQ
/// through identical decode windows must give identical bytes — so any
/// difference isolates a synthesis divergence.
fn reference_lines(sc: &Scene, gw: u32, chunk: usize) -> Vec<String> {
    let params = sc.params(0);
    let trace = sc.materialize(gw);
    let mut rx = StreamingReceiver::with_config(
        params,
        StreamingConfig {
            receiver: TnbConfig {
                noise_power: Some(1.0),
                sic: SicConfig::default(),
                ..TnbConfig::default()
            },
            max_payload: PAYLOAD_LEN,
            window_factor: 4,
            observe: false,
            workers: 1,
        },
    );
    let mut decoded = Vec::new();
    for c in trace.chunks(chunk.max(1)) {
        decoded.extend(rx.push(c));
    }
    decoded.extend(rx.finish());
    decoded.sort_by(|a, b| a.start.total_cmp(&b.start));
    decoded
        .iter()
        .enumerate()
        .map(|(n, p)| uplink::uplink_line(&params, gw, n as u64, p))
        .collect()
}

#[test]
fn chunked_sharded_run_matches_materialized_reference() {
    let cfg = DeployConfig {
        nodes: 70_000,
        gateways: 2,
        sfs: vec![SpreadingFactor::SF7],
        side_m: 500.0,
        duration_s: 0.35,
        load_pps: 20.0,
        seed: 3,
        ..DeployConfig::default()
    };
    let sc = Scene::new(cfg.clone());
    assert!(!sc.schedule.is_empty(), "scene must offer traffic");
    let total = sc.total_samples();

    // (chunk size, shard count, workers): every combination must
    // reproduce the materialized-trace reference's uplink bytes and
    // the same report JSON.
    let mut jsons = Vec::new();
    for (chunk, shards, workers) in [(37_777, 1u64, 1), (262_144, 2, 2), (90_001, 8, 8)] {
        let reference: Vec<Vec<String>> = (0..cfg.gateways)
            .map(|g| reference_lines(&sc, g, chunk))
            .collect();
        assert!(
            reference.iter().any(|l| !l.is_empty()),
            "reference must decode something"
        );
        let mut cfg_run = cfg.clone();
        cfg_run.chunk_samples = chunk;
        cfg_run.shard_samples = total.div_ceil(shards);
        let sc_run = Scene::with_schedule(cfg_run, sc.schedule.clone());
        let report = run_deploy(&sc_run, workers);
        assert_eq!(
            report.uplinks, reference,
            "chunk {chunk} × {shards} shards × {workers} workers diverged from the reference"
        );
        jsons.push(report.to_json());
    }
    assert!(
        jsons.windows(2).all(|w| w[0] == w[1]),
        "report JSON must not depend on chunking, sharding or workers"
    );
}

#[test]
fn city_scale_json_is_byte_identical_for_1_2_8_workers() {
    let cfg = DeployConfig {
        nodes: 100_000,
        gateways: 2,
        sfs: vec![SpreadingFactor::SF7, SpreadingFactor::SF8],
        side_m: 700.0,
        duration_s: 0.3,
        load_pps: 40.0,
        seed: 9,
        shard_samples: 160_000,
        ..DeployConfig::default()
    };
    let sc = Scene::new(cfg);
    let baseline = run_deploy(&sc, 1);
    assert!(
        !baseline.network.deliveries.is_empty(),
        "city run must deliver packets; summary:\n{}",
        baseline.summary()
    );
    // Node ids beyond u16 must be exercised by a 10⁵-node city.
    assert!(
        baseline.network.deliveries.iter().any(|d| d.node > 65_535),
        "expected wide node ids in the delivered set"
    );
    let json = baseline.to_json();
    for workers in [2usize, 8] {
        let report = run_deploy(&sc, workers);
        assert_eq!(
            report.to_json(),
            json,
            "worker count {workers} changed the output bytes"
        );
        assert_eq!(report.uplinks, baseline.uplinks);
    }
}
