//! Cross-gateway dedup and capture (ISSUE 10 satellite 4): the same
//! transmission heard at two or more gateways must yield exactly one
//! network-level delivery, with the winning copy chosen by reported
//! SNR (capture) under a deterministic tie-break.

use tnb_deploy::network::parse_uplink_line;
use tnb_deploy::{run_deploy, DeployConfig, Scene, Tx};
use tnb_phy::params::SpreadingFactor;
use tnb_sim::traffic::parse_payload;

/// A compact city where every gateway hears every packet: three
/// well-separated SF7 transmissions, three gateways.
fn scene() -> Scene {
    let cfg = DeployConfig {
        nodes: 100_000,
        gateways: 3,
        sfs: vec![SpreadingFactor::SF7],
        side_m: 500.0,
        shadow_sigma_db: 0.0,
        duration_s: 0.45,
        seed: 11,
        shard_samples: 1_000_000,
        ..DeployConfig::default()
    };
    let txs = vec![
        Tx {
            node: 70_001,
            seq: 0,
            start: 40_000.0,
            sf_idx: 0,
        },
        Tx {
            node: 5,
            seq: 0,
            start: 170_000.0,
            sf_idx: 0,
        },
        Tx {
            node: 99_999,
            seq: 0,
            start: 300_000.0,
            sf_idx: 0,
        },
    ];
    Scene::with_schedule(cfg, txs)
}

#[test]
fn multi_gateway_copies_collapse_to_one_delivery_with_capture() {
    let sc = scene();
    let report = run_deploy(&sc, 2);

    // Every gateway decoded every transmission (small city, strong
    // links), yet the network delivers each exactly once.
    let total_uplinks: usize = report.uplinks.iter().map(Vec::len).sum();
    assert_eq!(
        report.network.deliveries.len(),
        3,
        "one delivery per transmission; summary:\n{}",
        report.summary()
    );
    assert!(
        total_uplinks >= 6,
        "expected 2+ gateways to hear each packet, got {total_uplinks} uplinks"
    );
    assert_eq!(
        report.network.duplicates as usize,
        total_uplinks - 3,
        "every non-winning copy counts as a suppressed duplicate"
    );
    assert_eq!(report.network.ghosts, 0);

    // Capture: the winner of each delivery is the gateway whose uplink
    // line reported the strongest SNR, ties to the lower gateway id —
    // verified directly against the interchange lines.
    for d in &report.network.deliveries {
        let mut best: Option<(u32, f32)> = None;
        for (gw, lines) in report.uplinks.iter().enumerate() {
            for line in lines {
                let p = parse_uplink_line(line).expect("well-formed uplink line");
                if parse_payload(&p.data) == Some((d.node, d.seq))
                    && best.is_none_or(|(_, s)| p.snr_db > s)
                {
                    best = Some((gw as u32, p.snr_db));
                }
            }
        }
        let (gw, snr) = best.expect("delivery must originate from an uplink");
        assert_eq!(
            d.gateway, gw,
            "capture must pick the strongest gateway for node {}",
            d.node
        );
        assert_eq!(d.snr_db, snr);
        assert!(d.copies >= 2, "node {} heard {} times", d.node, d.copies);
    }

    // Wins ledger is consistent with the deliveries.
    let wins: u64 = report.network.wins_per_gateway.iter().sum();
    assert_eq!(wins, 3);

    // Deterministic: an identical run reproduces the exact decision.
    let again = run_deploy(&sc, 1);
    assert_eq!(again.to_json(), report.to_json());
    assert_eq!(again.network.deliveries, report.network.deliveries);
}
