//! Bounded-memory acceptance check (ISSUE 10): a seeded 10⁵-node,
//! two-gateway, multi-SF deployment run must complete with a live-heap
//! high-water mark far below what materializing the city's IQ would
//! cost — proving the synthesis path really streams.
//!
//! The counting allocator is process-global, so this file holds exactly
//! one test — a sibling test allocating concurrently would pollute the
//! high-water mark.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use tnb_deploy::{run_deploy, DeployConfig, Scene};
use tnb_phy::params::SpreadingFactor;

struct PeakAlloc;

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

fn on_alloc(size: usize) {
    let live = LIVE.fetch_add(size, Ordering::Relaxed) + size;
    PEAK.fetch_max(live, Ordering::Relaxed);
}

// SAFETY: every method delegates to `System` after touching only
// atomics, so `System`'s allocator contract is preserved verbatim.
unsafe impl GlobalAlloc for PeakAlloc {
    // SAFETY: forwards the caller's layout to `System` unchanged.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }
    // SAFETY: `ptr`/`layout` came from this allocator, which always
    // allocates via `System`, so handing them back to `System` is sound.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
    }
    // SAFETY: same provenance argument as `dealloc`; `System.realloc`
    // upholds the `GlobalAlloc` contract for the forwarded arguments.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
            on_alloc(new_size);
        }
        p
    }
}

#[global_allocator]
static GLOBAL: PeakAlloc = PeakAlloc;

#[test]
fn city_run_peak_heap_stays_far_below_materialized_iq() {
    let cfg = DeployConfig {
        nodes: 100_000,
        gateways: 2,
        sfs: vec![SpreadingFactor::SF7, SpreadingFactor::SF8],
        side_m: 700.0,
        duration_s: 2.0,
        load_pps: 40.0,
        seed: 7,
        chunk_samples: 65_536,
        shard_samples: 1_000_000,
        ..DeployConfig::default()
    };
    let sc = Scene::new(cfg);

    // What a naive implementation would hold resident: every gateway's
    // full-duration IQ trace (Complex32 = 8 bytes per sample).
    let full_city_bytes = sc.total_samples() as usize * sc.cfg.gateways as usize * 8;
    assert!(
        full_city_bytes > 24 << 20,
        "config too small for the bound to mean anything ({full_city_bytes} B)"
    );

    let before = PEAK
        .load(Ordering::Relaxed)
        .max(LIVE.load(Ordering::Relaxed));
    let report = run_deploy(&sc, 1);
    let peak = PEAK.load(Ordering::Relaxed);
    let delta = peak.saturating_sub(before);
    eprintln!(
        "peak heap delta {delta} B ({:.1} MiB) vs full-city {full_city_bytes} B ({:.1} MiB)",
        delta as f64 / (1 << 20) as f64,
        full_city_bytes as f64 / (1 << 20) as f64,
    );

    assert!(
        !report.network.deliveries.is_empty(),
        "city run must deliver packets; summary:\n{}",
        report.summary()
    );
    // The streaming pipeline's high-water mark must stay well under the
    // materialized-trace cost: chunk buffers + receiver windows are a
    // few MB regardless of city duration. Half the full-city size is a
    // generous ceiling that still catches any accidental materialize.
    assert!(
        delta < full_city_bytes / 2,
        "peak live heap grew by {delta} B ({:.1} MiB) — expected well under \
         half the full-city IQ of {full_city_bytes} B ({:.1} MiB)",
        delta as f64 / (1 << 20) as f64,
        full_city_bytes as f64 / (1 << 20) as f64,
    );
}
