//! Property tests for the wire framing: encode/decode round-trips over
//! random frames, arbitrary split points, and garbage-prefix rejection —
//! the decoder must never panic and never mis-parse.

use proptest::prelude::*;
use tnb_dsp::Complex32;
use tnb_gateway::wire::{
    crc32, decode_frame, decode_frame_exact, encode_frame, quantize, FrameReader, ReadStep,
    WireError, CRC_LEN, HEADER_LEN,
};
use tnb_gateway::{Frame, FrameKind};

/// Deterministic sample synthesis from a seed (xorshift), so cases are
/// reproducible without threading RNG state through the strategy.
fn samples(seed: u64, n: usize) -> Vec<Complex32> {
    let mut x = seed | 1;
    (0..n)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let re = ((x & 0xFFFF) as f32 / 32768.0) - 1.0;
            let im = (((x >> 16) & 0xFFFF) as f32 / 32768.0) - 1.0;
            Complex32::new(re, im)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn data_frames_roundtrip(
        stream_id in 0u32..u32::MAX,
        seq in 0u32..u32::MAX,
        seed in 0u64..10_000,
        n in 0usize..600,
    ) {
        let s = samples(seed, n);
        let f = Frame::data(stream_id, seq, s.clone());
        let bytes = encode_frame(&f);
        prop_assert_eq!(bytes.len(), HEADER_LEN + 4 * n + CRC_LEN);
        let back = decode_frame_exact(&bytes)
            .unwrap_or_else(|e| panic!("decode failed: {e}"));
        prop_assert_eq!(back.kind, FrameKind::Data);
        prop_assert_eq!(back.stream_id, stream_id);
        prop_assert_eq!(back.seq, seq);
        // The payload survives as its wire quantization, idempotently.
        prop_assert_eq!(&back.samples, &quantize(&s));
        prop_assert_eq!(&quantize(&back.samples), &back.samples);
    }

    #[test]
    fn every_prefix_is_pending_or_typed_error(
        seed in 0u64..10_000,
        n in 0usize..200,
        cut_frac in 0.0f64..1.0,
    ) {
        let bytes = encode_frame(&Frame::data(1, 2, samples(seed, n)));
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        // A strict prefix never yields a frame and never panics.
        match decode_frame(&bytes[..cut.min(bytes.len() - 1)]) {
            Ok(None) | Err(_) => {}
            Ok(Some(_)) => prop_assert!(false, "prefix decoded a whole frame"),
        }
    }

    #[test]
    fn split_streams_reassemble(
        seed in 0u64..10_000,
        n1 in 0usize..120,
        n2 in 0usize..120,
        step in 1usize..64,
    ) {
        let f1 = Frame::data(3, 0, samples(seed, n1));
        let f2 = Frame::data(3, 1, samples(seed ^ 0xABCD, n2));
        let f3 = Frame::end_stream(3, 2);
        let mut bytes = encode_frame(&f1);
        bytes.extend_from_slice(&encode_frame(&f2));
        bytes.extend_from_slice(&encode_frame(&f3));

        struct Trickle<'a> { data: &'a [u8], pos: usize, step: usize }
        impl std::io::Read for Trickle<'_> {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                let n = self.step.min(self.data.len() - self.pos).min(buf.len());
                buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
                self.pos += n;
                Ok(n)
            }
        }
        let mut r = Trickle { data: &bytes, pos: 0, step };
        let mut reader = FrameReader::new();
        let mut frames = Vec::new();
        loop {
            match reader.poll(&mut r) {
                Ok(ReadStep::Frame(f)) => frames.push(f),
                Ok(ReadStep::Pending) => {}
                Ok(ReadStep::Eof) => break,
                Err(e) => panic!("wire error: {e}"),
            }
        }
        prop_assert_eq!(frames.len(), 3);
        prop_assert_eq!(frames[0].seq, 0);
        prop_assert_eq!(frames[1].seq, 1);
        prop_assert_eq!(frames[2].kind, FrameKind::EndStream);
    }

    #[test]
    fn corrupted_byte_never_misparses(
        seed in 0u64..10_000,
        n in 1usize..100,
        flip_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let f = Frame::data(9, 4, samples(seed, n));
        let good = encode_frame(&f);
        let mut bad = good.clone();
        let idx = ((bad.len() as f64) * flip_frac) as usize % bad.len();
        bad[idx] ^= 1 << bit;
        match decode_frame_exact(&bad) {
            // A flip must surface as a typed error...
            Err(
                WireError::BadMagic(_)
                | WireError::BadVersion(_)
                | WireError::BadKind(_)
                | WireError::BadFlags { .. }
                | WireError::ControlWithPayload { .. }
                | WireError::Oversized { .. }
                | WireError::Truncated { .. }
                | WireError::CrcMismatch { .. },
            ) => {}
            Err(e) => panic!("unexpected error class: {e}"),
            // ...except a flip in `sample_count` that still CRC-fails is
            // impossible: a parse can only succeed if the CRC matches,
            // which a single flipped bit cannot achieve.
            Ok(_) => prop_assert!(false, "corrupted frame decoded successfully"),
        }
    }

    #[test]
    fn crc32_catches_single_bit_flips(seed in 0u64..10_000, n in 1usize..64, pos_frac in 0.0f64..1.0, bit in 0u8..8) {
        let mut bytes: Vec<u8> = samples(seed, n).iter().flat_map(|s| {
            [(s.re * 100.0) as i8 as u8, (s.im * 100.0) as i8 as u8]
        }).collect();
        let before = crc32(&bytes);
        let idx = ((bytes.len() as f64) * pos_frac) as usize % bytes.len();
        bytes[idx] ^= 1 << bit;
        prop_assert_ne!(before, crc32(&bytes));
    }
}
