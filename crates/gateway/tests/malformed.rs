//! Malformed-frame and fault-injection fuzz against a **live daemon**:
//! every fault class must surface as a typed error line + an
//! incremented drop counter, the offending connection closes, and the
//! daemon keeps serving every other connection. No panics anywhere.

use std::time::Duration;

use tnb_channel::FaultPlan;
use tnb_core::StreamingConfig;
use tnb_gateway::wire::{encode_frame, HEADER_LEN};
use tnb_gateway::{Frame, Gateway, GatewayClient, GatewayConfig};
use tnb_phy::{CodingRate, LoRaParams, SpreadingFactor};
use tnb_sim::gateway::collided_samples;

fn params() -> LoRaParams {
    LoRaParams::new(SpreadingFactor::SF8, CodingRate::CR4)
}

fn spawn_daemon() -> Gateway {
    Gateway::spawn(
        ("127.0.0.1", 0),
        GatewayConfig {
            params: params(),
            streaming: StreamingConfig::default(),
            queue_chunks: 64,
            ..GatewayConfig::new(params())
        },
    )
    .expect("bind loopback")
}

fn connect(gw: &Gateway) -> GatewayClient {
    GatewayClient::connect(gw.local_addr(), Duration::from_secs(5)).expect("connect")
}

/// Sends `bytes` on a fresh connection and returns the daemon's lines.
fn send_malformed(gw: &Gateway, bytes: &[u8]) -> Vec<String> {
    let mut c = connect(gw);
    c.send_raw(bytes).expect("send");
    c.finish()
}

fn error_line_of(lines: &[String]) -> Option<&String> {
    lines.iter().find(|l| l.contains("\"type\":\"error\""))
}

#[test]
fn every_malformation_yields_typed_error_and_daemon_survives() {
    let gw = spawn_daemon();
    let good = encode_frame(&Frame::data(1, 0, vec![tnb_dsp::Complex32::ZERO; 64]));

    // (name, mutated bytes) — one case per wire-error class.
    let mut cases: Vec<(&str, Vec<u8>)> = Vec::new();
    let mut b = good.clone();
    b[0] = b'X';
    cases.push(("bad-magic", b));
    let mut b = good.clone();
    b[4] = 42;
    cases.push(("bad-version", b));
    let mut b = good.clone();
    b[5] = 250;
    cases.push(("bad-kind", b));
    let mut b = good.clone();
    b[6] = 0x80;
    cases.push(("bad-flags", b));
    let mut b = good.clone();
    b[16..20].copy_from_slice(&u32::MAX.to_le_bytes());
    cases.push(("oversized", b));
    let mut b = encode_frame(&Frame::stats());
    b[16] = 8;
    cases.push(("control-with-payload", b));
    let mut b = good.clone();
    let flip = HEADER_LEN + 5;
    b[flip] ^= 0xFF;
    cases.push(("crc-mismatch", b));
    cases.push(("truncated", good[..good.len() - 3].to_vec()));
    // Pure garbage that happens to start with the magic: the CRC gate
    // still rejects it.
    let mut garbage = b"TNBG".to_vec();
    garbage.push(1);
    garbage.extend(std::iter::repeat_n(0u8, 40));
    garbage[16] = 2;
    cases.push(("crc-mismatch", garbage));

    let mut expected_errors = 0;
    for (name, bytes) in cases {
        let lines = send_malformed(&gw, &bytes);
        expected_errors += 1;
        let err =
            error_line_of(&lines).unwrap_or_else(|| panic!("{name}: no error line in {lines:?}"));
        assert!(
            err.contains(&format!("\"error\":\"{name}\"")),
            "{name}: wrong class in {err}"
        );
        // Counters saw this error.
        assert_eq!(gw.stats().protocol_errors, expected_errors, "{name}");
    }

    // After all that abuse, a clean connection still decodes packets.
    let samples = collided_samples(params(), 7, 3);
    let mut c = connect(&gw);
    c.send_samples(0, &samples, 65_536).expect("stream");
    c.end_stream(0).expect("end");
    let lines = c.finish();
    assert!(
        lines.iter().any(|l| l.contains("\"type\":\"uplink\"")),
        "no uplinks after malformed-frame storm: {lines:?}"
    );
    assert!(
        lines.iter().any(|l| l.contains("\"type\":\"end\"")),
        "no end line: {lines:?}"
    );

    let stats = gw.join();
    assert_eq!(stats.protocol_errors, expected_errors);
    assert!(stats.packets_uplinked >= 2, "{stats:?}");
    assert_eq!(stats.worker_panics, 0, "{stats:?}");
}

#[test]
fn fault_injected_iq_never_kills_the_daemon() {
    let gw = spawn_daemon();
    let clean = collided_samples(params(), 11, 2);

    for (i, (name, plan)) in FaultPlan::matrix(11).into_iter().enumerate() {
        let hostile = plan.apply(&clean);
        let mut c = connect(&gw);
        c.send_samples(i as u32, &hostile, 32_768).expect("stream");
        c.end_stream(i as u32).expect("end");
        let lines = c.finish();
        // Hostile IQ is *valid* wire traffic: the daemon must finish the
        // stream and report, never error out or panic.
        assert!(
            lines.iter().any(|l| l.contains("\"type\":\"end\"")),
            "{name}: no end line in {lines:?}"
        );
        assert!(error_line_of(&lines).is_none(), "{name}: {lines:?}");
    }

    let stats = gw.join();
    assert_eq!(stats.protocol_errors, 0, "{stats:?}");
    assert_eq!(stats.worker_panics, 0, "{stats:?}");
}

#[test]
fn backpressure_drops_oldest_and_counts() {
    // A tiny ingest bound plus a decoder that cannot keep up (the first
    // chunk of a big trace takes a while) forces drop-oldest eviction;
    // the connection must stay healthy and the counter must record it.
    let gw = Gateway::spawn(
        ("127.0.0.1", 0),
        GatewayConfig {
            params: params(),
            streaming: StreamingConfig::default(),
            queue_chunks: 2,
            ..GatewayConfig::new(params())
        },
    )
    .expect("bind");
    let samples = collided_samples(params(), 3, 3);
    let mut c = GatewayClient::connect(gw.local_addr(), Duration::from_secs(5)).expect("connect");
    // Ending stream 0 parks the decoder inside a full collision decode;
    // stream 1's small chunks then flood the 2-chunk queue far faster
    // than the decoder can drain it, forcing drop-oldest eviction.
    c.send_samples(0, &samples, 65_536).expect("stream");
    c.end_stream(0).expect("end");
    c.send_samples(1, &samples, 1_024).expect("stream");
    c.end_stream(1).expect("end");
    let lines = c.finish();
    assert!(
        lines.iter().any(|l| l.contains("\"type\":\"end\"")),
        "{lines:?}"
    );
    let stats = gw.join();
    assert!(
        stats.chunks_dropped > 0,
        "expected drop-oldest eviction: {stats:?}"
    );
    assert_eq!(stats.protocol_errors, 0, "{stats:?}");
}
