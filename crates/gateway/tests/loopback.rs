//! End-to-end loopback determinism: synthesized collided traffic
//! streamed through the daemon must uplink **byte-identical** JSON
//! lines to a direct in-process `StreamingReceiver` decode of the same
//! wire-quantized samples — for 1 worker and 4 workers, across
//! multiplexed streams, including payload bytes, outcomes, and
//! sample-clock timestamps.

use std::time::Duration;

use tnb_gateway::{Gateway, GatewayClient, GatewayConfig};
use tnb_phy::{CodingRate, LoRaParams, SpreadingFactor};
use tnb_sim::gateway::{run_loopback, LoopbackConfig};

fn params() -> LoRaParams {
    LoRaParams::new(SpreadingFactor::SF8, CodingRate::CR4)
}

fn run(workers: usize) {
    let cfg = LoopbackConfig {
        workers,
        streams: 2,
        packets: 3,
        chunk: 32_768,
        seed: 7,
        ..LoopbackConfig::new(params())
    };
    let outcome = run_loopback(&cfg).expect("loopback run");
    assert!(
        outcome.uplinked >= 2 * cfg.streams as u64,
        "expected ≥2 decodes per 3-packet collision per stream: {outcome:?}"
    );
    for s in 0..cfg.streams as usize {
        assert_eq!(
            outcome.daemon_lines[s], outcome.reference_lines[s],
            "stream {s} transcript diverged at {} workers",
            workers
        );
        // Spot-check the schema: uplinks carry sample-clock timestamps
        // and per-packet outcomes; the stream terminates with a report.
        let uplink = outcome.daemon_lines[s]
            .iter()
            .find(|l| l.contains("\"type\":\"uplink\""))
            .expect("at least one uplink line");
        for key in [
            "\"tmst\":",
            "\"datr\":\"SF8CR4\"",
            "\"data\":\"",
            "\"outcome\":{",
        ] {
            assert!(uplink.contains(key), "missing {key} in {uplink}");
        }
        let end = outcome.daemon_lines[s].last().expect("end line");
        assert!(end.contains("\"type\":\"end\""), "{end}");
        assert!(end.contains("\"outcomes\":["), "{end}");
    }
    assert_eq!(outcome.stats.protocol_errors, 0, "{outcome:?}");
    assert_eq!(outcome.stats.worker_panics, 0, "{outcome:?}");
}

#[test]
fn loopback_byte_identical_one_worker() {
    run(1);
}

#[test]
fn loopback_byte_identical_four_workers() {
    run(4);
}

#[test]
fn stats_and_shutdown_verbs() {
    let gw = Gateway::spawn(("127.0.0.1", 0), GatewayConfig::new(params())).expect("bind");
    let addr = gw.local_addr();
    let mut c = GatewayClient::connect(addr, Duration::from_secs(5)).expect("connect");
    let samples = tnb_sim::gateway::collided_samples(params(), 7, 3);
    c.send_samples(0, &samples, 65_536).expect("stream");
    c.end_stream(0).expect("end");
    c.request_stats().expect("stats");
    c.request_shutdown().expect("shutdown");
    let lines = c.finish();

    let stats_line = lines
        .iter()
        .find(|l| l.contains("\"type\":\"stats\""))
        .unwrap_or_else(|| panic!("no stats line in {lines:?}"));
    for key in [
        "\"gateway\":{",
        "\"report\":{",
        "\"metrics\":{",
        "\"packets_uplinked\":",
    ] {
        assert!(stats_line.contains(key), "missing {key} in {stats_line}");
    }

    // SHUTDOWN verb stops the whole daemon: join() returns promptly and
    // final counters are coherent.
    let final_stats = gw.join();
    assert_eq!(final_stats.connections_accepted, 1, "{final_stats:?}");
    assert_eq!(final_stats.connections_closed, 1, "{final_stats:?}");
    assert!(final_stats.packets_uplinked >= 2, "{final_stats:?}");
}
