//! Resilience-layer integration tests against a **live daemon**:
//! heartbeats, idle deadlines, admission control, load-shedding, and
//! the reconnect+RESUME path continuing a stream mid-packet with a
//! byte-identical transcript.

use std::io::{BufRead, BufReader, Read};
use std::net::TcpStream;
use std::time::Duration;

use tnb_core::StreamingConfig;
use tnb_gateway::netfaults::{ChaosProxy, NetFault, NetFaultPlan};
use tnb_gateway::wire::{encode_frame, quantize, Frame};
use tnb_gateway::{Gateway, GatewayClient, GatewayConfig, ResilientClient, ResilientConfig};
use tnb_phy::{CodingRate, LoRaParams, SpreadingFactor};
use tnb_sim::gateway::{collided_samples, reference_transcript};

fn params() -> LoRaParams {
    LoRaParams::new(SpreadingFactor::SF7, CodingRate::CR4)
}

fn spawn_daemon(cfg: GatewayConfig) -> Gateway {
    Gateway::spawn(("127.0.0.1", 0), cfg).expect("bind loopback")
}

fn resilient(addr: std::net::SocketAddr) -> ResilientClient {
    ResilientClient::connect(
        addr,
        ResilientConfig {
            max_reconnects: 10,
            base_delay: Duration::from_millis(20),
            reply_timeout: Duration::from_secs(10),
            ..ResilientConfig::default()
        },
    )
    .expect("resilient connect")
}

#[test]
fn hello_assigns_tokens_and_ping_answers_with_the_nonce() {
    let gw = spawn_daemon(GatewayConfig::new(params()));
    let mut a = resilient(gw.local_addr());
    let mut b = resilient(gw.local_addr());
    assert_ne!(a.session_token(), b.session_token(), "tokens are unique");
    assert!(a.session_token() > 0 && b.session_token() > 0);
    assert!(a.ping(0xC0FF_EE00).expect("ping"), "pong echoes the nonce");
    assert!(b.ping(7).expect("ping"));
    drop(a);
    drop(b);
    let stats = gw.join();
    assert!(stats.pings_answered >= 2, "{stats:?}");
}

#[test]
fn idle_deadline_disconnects_a_silent_peer() {
    let gw = spawn_daemon(GatewayConfig {
        idle_timeout: Some(Duration::from_millis(150)),
        ..GatewayConfig::new(params())
    });
    // A plain client that sends one frame, then goes silent.
    let mut c = GatewayClient::connect(gw.local_addr(), Duration::from_secs(5)).expect("connect");
    c.send_raw(&encode_frame(&Frame::stats())).expect("stats");
    // Well past the idle deadline the daemon must have hung up on us:
    // the reader thread sees EOF and finish() returns on its own (if
    // the daemon did NOT disconnect, finish() would also return — the
    // counters below are the discriminator).
    std::thread::sleep(Duration::from_millis(600));
    let lines = c.finish();
    assert!(
        lines
            .iter()
            .any(|l| l.contains("\"type\":\"goaway\"") && l.contains("idle-timeout")),
        "{lines:?}"
    );
    let stats = gw.join();
    assert_eq!(stats.idle_disconnects, 1, "{stats:?}");
    assert_eq!(stats.connections_closed, 1, "{stats:?}");
}

#[test]
fn admission_control_answers_busy_past_the_connection_cap() {
    let gw = spawn_daemon(GatewayConfig {
        max_conns: 1,
        ..GatewayConfig::new(params())
    });
    let first = GatewayClient::connect(gw.local_addr(), Duration::from_secs(5)).expect("first");
    // The daemon accepts, counts the active connection, then answers
    // BUSY to the next peer without spawning a decode pipeline for it.
    // The accept loop may need a beat to register the first connection.
    std::thread::sleep(Duration::from_millis(100));
    let second = TcpStream::connect(gw.local_addr()).expect("tcp connect");
    let mut line = String::new();
    BufReader::new(&second)
        .read_line(&mut line)
        .expect("busy line");
    assert!(
        line.starts_with("{\"type\":\"busy\""),
        "expected busy reject, got {line:?}"
    );
    // The rejected socket is closed server-side.
    let mut rest = Vec::new();
    let _ = (&second).read_to_end(&mut rest);
    assert!(rest.is_empty());
    drop(second);
    drop(first);
    let stats = gw.join();
    assert_eq!(stats.busy_rejects, 1, "{stats:?}");
    assert_eq!(
        stats.connections_accepted, 1,
        "only the first got a pipeline"
    );
}

#[test]
fn backpressure_sheds_load_while_the_decoder_is_busy() {
    // Tiny ingest queue + per-stream quota. The first frame is a heavy
    // decode (a full collided chunk); while the decoder chews on it the
    // follow-up frames pile onto the queue and must be shed/evicted —
    // deterministically, because the decode takes far longer than the
    // blast of sends.
    let gw = spawn_daemon(GatewayConfig {
        queue_chunks: 4,
        quota_chunks: 2,
        ..GatewayConfig::new(params())
    });
    let mut c = GatewayClient::connect(gw.local_addr(), Duration::from_secs(5)).expect("connect");
    let samples = collided_samples(params(), 3, 2);
    c.send_samples(0, &samples, samples.len())
        .expect("heavy chunk");
    for _ in 0..40 {
        let frame = Frame::data(0, u32::MAX, vec![tnb_dsp::Complex32::ZERO; 64]);
        c.send_raw(&encode_frame(&frame)).expect("blast");
    }
    c.end_stream(0).expect("end");
    let _ = c.finish();
    let stats = gw.join();
    assert!(
        stats.shed_frames > 0,
        "quota must shed the over-quota blast: {stats:?}"
    );
    assert_eq!(stats.worker_panics, 0);
    // Accounting: every DATA frame in is consumed, shed, evicted, or a
    // seq drop — the shed+dropped total can never exceed what came in.
    assert!(stats.shed_frames + stats.chunks_dropped + stats.seq_dups <= stats.chunks_in);
}

#[test]
fn reconnect_resume_continues_a_stream_mid_packet_byte_identically() {
    // The core resilience contract: cut the connection mid-frame while
    // packets are still being decoded; the client reconnects, RESUMEs,
    // resends from the last ack, the daemon replays undelivered uplink
    // lines — and the final transcript equals a clean run's, byte for
    // byte.
    let p = params();
    let gw = spawn_daemon(GatewayConfig {
        ack_every: 4,
        ..GatewayConfig::new(p)
    });
    let plan = NetFaultPlan {
        name: "cut-mid-frame",
        seed: 0,
        faults: vec![NetFault::DisconnectAt { byte: 40_000 }],
        recoverable: true,
    };
    let proxy = ChaosProxy::spawn(gw.local_addr(), plan).expect("proxy");
    let mut client = resilient(proxy.local_addr());

    let chunk = 4096;
    let samples = collided_samples(p, 11, 2);
    client.send_samples(0, &samples, chunk).expect("send");
    client.end_stream(0).expect("end");
    client.drain().expect("all frames acked after recovery");
    let client_stats = client.stats();
    let transcript = client.finish();
    let stats = gw.join();

    assert!(client_stats.reconnects >= 1, "{client_stats:?}");
    assert!(client_stats.retransmitted_frames >= 1, "{client_stats:?}");
    assert!(stats.sessions_parked >= 1, "{stats:?}");
    assert!(stats.sessions_resumed >= 1, "{stats:?}");
    assert_eq!(stats.worker_panics, 0);

    let quantized = quantize(&samples);
    let (reference, _) = reference_transcript(p, StreamingConfig::default(), 0, &quantized, chunk);
    let got: Vec<String> = transcript
        .iter()
        .filter(|l| l.starts_with("{\"type\":\"uplink\"") || l.starts_with("{\"type\":\"end\""))
        .cloned()
        .collect();
    assert_eq!(
        got, reference,
        "recovered transcript must be byte-identical"
    );
}

#[test]
fn shutdown_with_streams_in_flight_drains_and_exits_clean() {
    // Satellite: SHUTDOWN arrives on one connection while another
    // connection's stream is open mid-stream (no END sent). The daemon
    // must drain what it consumed, flush the open stream's tail, keep
    // every uplink already emitted, and exit cleanly.
    let p = params();
    let gw = spawn_daemon(GatewayConfig {
        // Ack every consumed chunk so drain() proves consumption
        // without an END frame.
        ack_every: 1,
        ..GatewayConfig::new(p)
    });
    let chunk = 4096;
    let samples = collided_samples(p, 5, 2);
    let mut inflight = resilient(gw.local_addr());
    inflight.send_samples(0, &samples, chunk).expect("send");
    // No end_stream: the stream stays open. Wait until the daemon has
    // consumed (acked) every chunk, so the shutdown below races only
    // the flush, not the ingest.
    inflight.drain().expect("all chunks consumed");

    let mut killer =
        GatewayClient::connect(gw.local_addr(), Duration::from_secs(5)).expect("connect");
    killer.request_shutdown().expect("shutdown verb");
    let _ = killer.finish();
    let stats = gw.join();

    let transcript = inflight.finish();
    let got: Vec<String> = transcript
        .iter()
        .filter(|l| l.starts_with("{\"type\":\"uplink\"") || l.starts_with("{\"type\":\"end\""))
        .cloned()
        .collect();
    // The shutdown flush equals a clean END-driven decode: push all
    // chunks, finish, end line.
    let quantized = quantize(&samples);
    let (reference, _) = reference_transcript(p, StreamingConfig::default(), 0, &quantized, chunk);
    assert_eq!(got, reference, "drained transcript must be complete");
    assert_eq!(stats.worker_panics, 0);
    assert_eq!(stats.protocol_errors, 0);
    assert_eq!(
        stats.connections_accepted, stats.connections_closed,
        "every connection torn down: {stats:?}"
    );
}
