//! Wideband streams and sequence-number accounting, end to end.
//!
//! A WIDEBAND-flagged stream must decode through the channelizer +
//! per-channel receivers **byte-identically** to a direct in-process
//! [`tnb_core::WidebandReceiver`] over the same wire-quantized samples,
//! with every uplink line carrying its channel. Sequence numbers must
//! split cleanly into gaps (counted, frame accepted) and duplicates
//! (counted, frame dropped — a replayed chunk is never decoded twice).

use std::time::Duration;

use tnb_gateway::wire::{encode_frame, quantize, Frame};
use tnb_gateway::{Gateway, GatewayClient, GatewayConfig};
use tnb_phy::{CodingRate, LoRaParams, SpreadingFactor};
use tnb_sim::gateway::{collided_samples, reference_transcript};
use tnb_sim::wideband::{run_wideband_loopback, WidebandLoopbackConfig};

fn params() -> LoRaParams {
    LoRaParams::new(SpreadingFactor::SF8, CodingRate::CR4)
}

#[test]
fn wideband_stream_uplinks_byte_identical_per_channel_lines() {
    let cfg = WidebandLoopbackConfig::new(params());
    let outcome = run_wideband_loopback(&cfg).expect("wideband loopback");

    assert!(
        outcome
            .daemon_lines
            .iter()
            .any(|l| l.contains("\"uplink\"")),
        "daemon uplinked nothing: {:?}",
        outcome.daemon_lines
    );
    assert_eq!(
        outcome.daemon_lines, outcome.reference_lines,
        "wideband transcript diverged from the in-process reference"
    );
    // Every uplink line names its channel; only occupied channels appear.
    for line in &outcome.daemon_lines {
        if line.contains("\"type\":\"uplink\"") {
            assert!(line.contains("\"channel\":"), "{line}");
        }
    }
    for &c in &cfg.occupied {
        assert!(
            outcome.per_channel[c] >= 1,
            "channel {c} decoded nothing: {:?}",
            outcome.per_channel
        );
    }
    for (c, &n) in outcome.per_channel.iter().enumerate() {
        if !cfg.occupied.contains(&c) {
            assert_eq!(n, 0, "ghost packets on empty channel {c}");
        }
    }
    assert_eq!(outcome.stats.protocol_errors, 0, "{:?}", outcome.stats);
    assert_eq!(outcome.stats.worker_panics, 0, "{:?}", outcome.stats);
}

/// Streams `samples` as raw DATA frames whose `seq` values are given
/// explicitly (chunk `i` carries `seqs[i]`), then ends the stream.
fn stream_with_seqs(
    client: &mut GatewayClient,
    samples: &[tnb_dsp::Complex32],
    chunk: usize,
    seqs: &[u32],
    end_seq: u32,
) {
    let chunks: Vec<_> = samples.chunks(chunk).collect();
    assert_eq!(chunks.len(), seqs.len(), "test wiring: one seq per chunk");
    for (c, &seq) in chunks.iter().zip(seqs) {
        let frame = Frame::data(0, seq, c.to_vec());
        client.send_raw(&encode_frame(&frame)).expect("send");
    }
    client
        .send_raw(&encode_frame(&Frame::end_stream(0, end_seq)))
        .expect("end");
}

#[test]
fn duplicate_frames_are_dropped_and_counted_gaps_accepted() {
    let p = params();
    let samples = collided_samples(p, 7, 2);
    let chunk = samples.len().div_ceil(4);

    // Chunks 0..4 sent as seqs [0, 1, 1, 2, 3]: the replayed seq-1 frame
    // (identical bytes, a retransmission) must be dropped, so the decode
    // and transcript match a clean single send exactly.
    let gw = Gateway::spawn(("127.0.0.1", 0), GatewayConfig::new(p)).expect("bind");
    let mut c = GatewayClient::connect(gw.local_addr(), Duration::from_secs(5)).expect("connect");
    let chunks: Vec<_> = samples.chunks(chunk).collect();
    for (i, payload) in chunks.iter().enumerate() {
        let frame = Frame::data(0, i as u32, payload.to_vec());
        c.send_raw(&encode_frame(&frame)).expect("send");
        if i == 1 {
            c.send_raw(&encode_frame(&frame)).expect("resend dup");
        }
    }
    c.send_raw(&encode_frame(&Frame::end_stream(0, chunks.len() as u32)))
        .expect("end");
    let lines = c.finish();
    let stats = gw.join();

    let (reference, uplinked) =
        reference_transcript(p, Default::default(), 0, &quantize(&samples), chunk);
    assert!(uplinked >= 1, "scene decodes at least one packet");
    assert_eq!(
        lines, reference,
        "a duplicated frame changed the transcript (decoded twice or corrupted the stream)"
    );
    assert_eq!(stats.seq_dups, 1, "{stats:?}");
    assert_eq!(stats.seq_gaps, 0, "{stats:?}");
    assert_eq!(stats.packets_uplinked, uplinked, "{stats:?}");
}

#[test]
fn seq_gap_is_counted_and_stream_keeps_decoding() {
    let p = params();
    let samples = collided_samples(p, 9, 2);
    let chunk = samples.len().div_ceil(4);

    let gw = Gateway::spawn(("127.0.0.1", 0), GatewayConfig::new(p)).expect("bind");
    let mut c = GatewayClient::connect(gw.local_addr(), Duration::from_secs(5)).expect("connect");
    // Seqs [0, 1, 5, 6]: one gap of 3 lost frames after seq 1 — counted
    // once, and the surviving frames still decode (all samples present,
    // only the numbering skipped).
    stream_with_seqs(&mut c, &samples, chunk, &[0, 1, 5, 6], 7);
    let lines = c.finish();
    let stats = gw.join();

    assert_eq!(stats.seq_gaps, 1, "{stats:?}");
    assert_eq!(stats.seq_dups, 0, "{stats:?}");
    let (reference, _) = reference_transcript(p, Default::default(), 0, &quantize(&samples), chunk);
    assert_eq!(
        lines, reference,
        "a seq gap (with no actual sample loss) must not change the decode"
    );
}
