//! Gateway service counters.
//!
//! These live on the *control plane*: they are bumped concurrently by
//! socket readers and per-connection decoders whose interleaving is
//! inherently nondeterministic, so they use the `Sync`
//! [`tnb_metrics::SharedCounter`] rather than the per-worker `Cell`
//! counters of the decode path — and they never feed anything compared
//! for byte-identity.

use tnb_metrics::SharedCounter;

/// Live counters of one daemon instance (shared across every
/// connection's threads via `Arc`).
#[derive(Debug, Default)]
pub struct GatewayStats {
    /// Connections accepted by the listener.
    pub connections_accepted: SharedCounter,
    /// Connections fully torn down (reader and decoder joined).
    pub connections_closed: SharedCounter,
    /// Frames parsed successfully (data + control).
    pub frames_in: SharedCounter,
    /// DATA frames parsed.
    pub chunks_in: SharedCounter,
    /// Complex samples received in DATA frames.
    pub samples_in: SharedCounter,
    /// DATA chunks evicted by the drop-oldest backpressure policy
    /// (ingest queue full: the decoder is slower than the socket).
    pub chunks_dropped: SharedCounter,
    /// DATA frames whose `seq` skipped ahead of the previous chunk of
    /// the same stream (sender-side loss or reordering).
    pub seq_gaps: SharedCounter,
    /// DATA frames whose `seq` was at or behind the stream's cursor
    /// (duplicate or stale retransmission); dropped without decoding so
    /// a replayed chunk cannot be decoded twice.
    pub seq_dups: SharedCounter,
    /// Malformed frames (any [`crate::wire::WireError`]); each closes
    /// its connection, the daemon keeps serving the others.
    pub protocol_errors: SharedCounter,
    /// Decoded packets uplinked as JSON lines.
    pub packets_uplinked: SharedCounter,
    /// Stream decodes that panicked and were contained (receiver
    /// replaced, connection kept alive).
    pub worker_panics: SharedCounter,
    /// Connections disconnected because no frame arrived within the
    /// configured idle deadline (dead peer; session parked if resumable).
    pub idle_disconnects: SharedCounter,
    /// Connections disconnected because an uplink write blocked past the
    /// configured write deadline (slow consumer; session parked if
    /// resumable).
    pub write_timeouts: SharedCounter,
    /// Connections rejected with BUSY by admission control (`max_conns`
    /// reached).
    pub busy_rejects: SharedCounter,
    /// DATA frames shed at ingest: the incoming frame itself was dropped
    /// because its stream was over its per-stream queue quota, or a
    /// buffered chunk was evicted by the fair-share policy.
    pub shed_frames: SharedCounter,
    /// DATA frames re-sent by a resumed client that the per-stream seq
    /// cursor had already delivered to the decoder; dropped without
    /// decoding, so a resend is never uplinked twice.
    pub retransmitted_frames: SharedCounter,
    /// Sessions parked in the resume table after an unexpected
    /// disconnect (EOF/error/idle/write-timeout with a HELLO'd session).
    pub sessions_parked: SharedCounter,
    /// Parked sessions successfully re-attached by a RESUME verb.
    pub sessions_resumed: SharedCounter,
    /// Parked sessions dropped because no RESUME arrived within the
    /// grace window.
    pub sessions_expired: SharedCounter,
    /// PING frames answered with a pong line.
    pub pings_answered: SharedCounter,
    /// Socket-option configuration calls (read/write deadlines) that
    /// failed; the connection proceeds without the deadline, visibly.
    pub sock_config_errors: SharedCounter,
}

impl GatewayStats {
    /// Plain-data snapshot of every counter.
    pub fn snapshot(&self) -> GatewayStatsSnapshot {
        GatewayStatsSnapshot {
            connections_accepted: self.connections_accepted.get(),
            connections_closed: self.connections_closed.get(),
            frames_in: self.frames_in.get(),
            chunks_in: self.chunks_in.get(),
            samples_in: self.samples_in.get(),
            chunks_dropped: self.chunks_dropped.get(),
            seq_gaps: self.seq_gaps.get(),
            seq_dups: self.seq_dups.get(),
            protocol_errors: self.protocol_errors.get(),
            packets_uplinked: self.packets_uplinked.get(),
            worker_panics: self.worker_panics.get(),
            idle_disconnects: self.idle_disconnects.get(),
            write_timeouts: self.write_timeouts.get(),
            busy_rejects: self.busy_rejects.get(),
            shed_frames: self.shed_frames.get(),
            retransmitted_frames: self.retransmitted_frames.get(),
            sessions_parked: self.sessions_parked.get(),
            sessions_resumed: self.sessions_resumed.get(),
            sessions_expired: self.sessions_expired.get(),
            pings_answered: self.pings_answered.get(),
            sock_config_errors: self.sock_config_errors.get(),
        }
    }
}

/// Plain-data snapshot of [`GatewayStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GatewayStatsSnapshot {
    pub connections_accepted: u64,
    pub connections_closed: u64,
    pub frames_in: u64,
    pub chunks_in: u64,
    pub samples_in: u64,
    pub chunks_dropped: u64,
    pub seq_gaps: u64,
    pub seq_dups: u64,
    pub protocol_errors: u64,
    pub packets_uplinked: u64,
    pub worker_panics: u64,
    pub idle_disconnects: u64,
    pub write_timeouts: u64,
    pub busy_rejects: u64,
    pub shed_frames: u64,
    pub retransmitted_frames: u64,
    pub sessions_parked: u64,
    pub sessions_resumed: u64,
    pub sessions_expired: u64,
    pub pings_answered: u64,
    pub sock_config_errors: u64,
}

impl GatewayStatsSnapshot {
    /// Every counter as a `(name, value)` pair, in the stable JSON key
    /// order.
    pub fn fields(&self) -> [(&'static str, u64); 21] {
        [
            ("connections_accepted", self.connections_accepted),
            ("connections_closed", self.connections_closed),
            ("frames_in", self.frames_in),
            ("chunks_in", self.chunks_in),
            ("samples_in", self.samples_in),
            ("chunks_dropped", self.chunks_dropped),
            ("seq_gaps", self.seq_gaps),
            ("seq_dups", self.seq_dups),
            ("protocol_errors", self.protocol_errors),
            ("packets_uplinked", self.packets_uplinked),
            ("worker_panics", self.worker_panics),
            ("idle_disconnects", self.idle_disconnects),
            ("write_timeouts", self.write_timeouts),
            ("busy_rejects", self.busy_rejects),
            ("shed_frames", self.shed_frames),
            ("retransmitted_frames", self.retransmitted_frames),
            ("sessions_parked", self.sessions_parked),
            ("sessions_resumed", self.sessions_resumed),
            ("sessions_expired", self.sessions_expired),
            ("pings_answered", self.pings_answered),
            ("sock_config_errors", self.sock_config_errors),
        ]
    }

    /// Compact JSON object with one key per counter.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (name, value)) in self.fields().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{name}\":{value}"));
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_and_json_cover_every_counter() {
        let stats = GatewayStats::default();
        stats.frames_in.add(3);
        stats.chunks_dropped.inc();
        let snap = stats.snapshot();
        assert_eq!(snap.frames_in, 3);
        assert_eq!(snap.chunks_dropped, 1);
        let json = snap.to_json();
        for (key, _) in snap.fields() {
            assert!(json.contains(&format!("\"{key}\":")), "{json}");
        }
        assert!(json.contains("\"frames_in\":3"), "{json}");
        // The resilience counters ride along in the same object.
        stats.sessions_resumed.inc();
        stats.shed_frames.add(2);
        let json = stats.snapshot().to_json();
        assert!(json.contains("\"sessions_resumed\":1"), "{json}");
        assert!(json.contains("\"shed_frames\":2"), "{json}");
        assert!(json.contains("\"busy_rejects\":0"), "{json}");
    }
}
