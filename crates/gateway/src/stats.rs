//! Gateway service counters.
//!
//! These live on the *control plane*: they are bumped concurrently by
//! socket readers and per-connection decoders whose interleaving is
//! inherently nondeterministic, so they use the `Sync`
//! [`tnb_metrics::SharedCounter`] rather than the per-worker `Cell`
//! counters of the decode path — and they never feed anything compared
//! for byte-identity.

use tnb_metrics::SharedCounter;

/// Live counters of one daemon instance (shared across every
/// connection's threads via `Arc`).
#[derive(Debug, Default)]
pub struct GatewayStats {
    /// Connections accepted by the listener.
    pub connections_accepted: SharedCounter,
    /// Connections fully torn down (reader and decoder joined).
    pub connections_closed: SharedCounter,
    /// Frames parsed successfully (data + control).
    pub frames_in: SharedCounter,
    /// DATA frames parsed.
    pub chunks_in: SharedCounter,
    /// Complex samples received in DATA frames.
    pub samples_in: SharedCounter,
    /// DATA chunks evicted by the drop-oldest backpressure policy
    /// (ingest queue full: the decoder is slower than the socket).
    pub chunks_dropped: SharedCounter,
    /// DATA frames whose `seq` skipped ahead of the previous chunk of
    /// the same stream (sender-side loss or reordering).
    pub seq_gaps: SharedCounter,
    /// DATA frames whose `seq` was at or behind the stream's cursor
    /// (duplicate or stale retransmission); dropped without decoding so
    /// a replayed chunk cannot be decoded twice.
    pub seq_dups: SharedCounter,
    /// Malformed frames (any [`crate::wire::WireError`]); each closes
    /// its connection, the daemon keeps serving the others.
    pub protocol_errors: SharedCounter,
    /// Decoded packets uplinked as JSON lines.
    pub packets_uplinked: SharedCounter,
    /// Stream decodes that panicked and were contained (receiver
    /// replaced, connection kept alive).
    pub worker_panics: SharedCounter,
}

impl GatewayStats {
    /// Plain-data snapshot of every counter.
    pub fn snapshot(&self) -> GatewayStatsSnapshot {
        GatewayStatsSnapshot {
            connections_accepted: self.connections_accepted.get(),
            connections_closed: self.connections_closed.get(),
            frames_in: self.frames_in.get(),
            chunks_in: self.chunks_in.get(),
            samples_in: self.samples_in.get(),
            chunks_dropped: self.chunks_dropped.get(),
            seq_gaps: self.seq_gaps.get(),
            seq_dups: self.seq_dups.get(),
            protocol_errors: self.protocol_errors.get(),
            packets_uplinked: self.packets_uplinked.get(),
            worker_panics: self.worker_panics.get(),
        }
    }
}

/// Plain-data snapshot of [`GatewayStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GatewayStatsSnapshot {
    pub connections_accepted: u64,
    pub connections_closed: u64,
    pub frames_in: u64,
    pub chunks_in: u64,
    pub samples_in: u64,
    pub chunks_dropped: u64,
    pub seq_gaps: u64,
    pub seq_dups: u64,
    pub protocol_errors: u64,
    pub packets_uplinked: u64,
    pub worker_panics: u64,
}

impl GatewayStatsSnapshot {
    /// Compact JSON object with one key per counter.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"connections_accepted\":{},\"connections_closed\":{},\
             \"frames_in\":{},\"chunks_in\":{},\"samples_in\":{},\
             \"chunks_dropped\":{},\"seq_gaps\":{},\"seq_dups\":{},\
             \"protocol_errors\":{},\
             \"packets_uplinked\":{},\"worker_panics\":{}}}",
            self.connections_accepted,
            self.connections_closed,
            self.frames_in,
            self.chunks_in,
            self.samples_in,
            self.chunks_dropped,
            self.seq_gaps,
            self.seq_dups,
            self.protocol_errors,
            self.packets_uplinked,
            self.worker_panics,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_and_json_cover_every_counter() {
        let stats = GatewayStats::default();
        stats.frames_in.add(3);
        stats.chunks_dropped.inc();
        let snap = stats.snapshot();
        assert_eq!(snap.frames_in, 3);
        assert_eq!(snap.chunks_dropped, 1);
        let json = snap.to_json();
        for key in [
            "connections_accepted",
            "connections_closed",
            "frames_in",
            "chunks_in",
            "samples_in",
            "chunks_dropped",
            "seq_gaps",
            "seq_dups",
            "protocol_errors",
            "packets_uplinked",
            "worker_panics",
        ] {
            assert!(json.contains(&format!("\"{key}\":")), "{json}");
        }
        assert!(json.contains("\"frames_in\":3"), "{json}");
    }
}
