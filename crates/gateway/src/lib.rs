//! tnb-gateway: a networked gateway daemon serving the TnB streaming
//! decoder over a framed IQ wire protocol.
//!
//! This crate turns the library pipeline into a deployable service, the
//! shape the paper's testbed uses (USRP frontends feeding a gateway
//! that forwards decoded LoRa frames upstream):
//!
//! - [`wire`] — the versioned, CRC-checked binary framing for IQ chunks
//!   (interleaved i16 IQ at 1 Msps) plus control verbs.
//! - [`server`] — the `std::net` TCP daemon: one reader + one decoder
//!   thread per connection, per-stream [`tnb_core::StreamingReceiver`]s,
//!   bounded drop-oldest ingest queues, and `catch_unwind` fault
//!   containment.
//! - [`uplink`] — the JSON-lines uplink format for decoded packets
//!   (Semtech `PUSH_DATA`-style `rxpk` objects, timestamps from the
//!   sample clock — never the wall clock).
//! - [`client`] — the loopback client used by `tnb-sim`'s load
//!   generator, the CLI, and the integration tests, plus the
//!   resilient variant ([`client::ResilientClient`]) with
//!   HELLO/RESUME sessions, seeded-backoff reconnect, and a bounded
//!   resend-from-last-acked buffer.
//! - [`stats`] — `Sync` control-plane counters ([`tnb_metrics::SharedCounter`])
//!   exposed through the STATS verb.
//! - [`netfaults`] — the deterministic network-chaos harness: a seeded
//!   [`netfaults::NetFaultPlan`] of socket-layer injectors (partial
//!   writes, split/coalesced reads, stall, disconnect-mid-frame, bit
//!   flip) applied by an in-process [`netfaults::ChaosProxy`], the
//!   transport-level mirror of the decode pipeline's `FaultPlan`.
//!
//! Everything is dependency-free (`std::net` only), and the whole
//! uplink path is deterministic: streaming the same trace yields
//! byte-identical JSON lines on every run and every worker count.

pub mod client;
pub mod netfaults;
pub mod server;
pub mod stats;
pub mod uplink;
pub mod wire;

pub use client::{GatewayClient, ResilientClient, ResilientConfig, ResilientStats};
pub use netfaults::{ChaosProxy, NetFault, NetFaultPlan};
pub use server::{Gateway, GatewayConfig};
pub use stats::{GatewayStats, GatewayStatsSnapshot};
pub use wire::{Frame, FrameKind, FrameReader, WireError};
