//! The gateway daemon: a `std::net` TCP server feeding per-stream
//! [`StreamingReceiver`]s from framed IQ connections.
//!
//! # Thread model
//!
//! ```text
//! accept loop ──► one connection thread per client
//!                   ├─ reader  (this thread): FrameReader::poll → Ingest queue
//!                   └─ decoder (spawned):     Ingest queue → StreamingReceiver
//!                                              → uplink JSON lines on the socket
//! ```
//!
//! The ingest queue is **bounded with fair-share backpressure**: when
//! the decoder falls behind the socket, the oldest buffered DATA chunk
//! of the *most-buffered stream* is evicted (never control verbs) and
//! `chunks_dropped` increments — the daemon sheds load from the
//! heaviest stream instead of ballooning memory or letting one firehose
//! starve its neighbours. An optional per-stream quota sheds incoming
//! frames of a stream that already holds its fair share
//! (`shed_frames`). Each connection is fault-contained: a panicking
//! stream decode is caught ([`std::panic::catch_unwind`], same policy
//! as the parallel receiver's worker containment), the stream's
//! receiver is restarted, and every other stream and connection keeps
//! decoding. A malformed frame yields a typed
//! [`crate::wire::WireError`], one `error` JSON line, and closes only
//! that connection.
//!
//! # Resilience layer
//!
//! The daemon's *control plane* (and only the control plane) also keeps
//! wall-clock deadlines — every clock read below carries a justified
//! `TNB-DET01` allowance:
//!
//! - **Idle deadline** (`idle_timeout`): a connection that delivers no
//!   frame within the window is disconnected (`idle_disconnects`) with
//!   a `goaway` line; PING frames are cheap keepalives.
//! - **Write deadline** (`write_timeout`): an uplink write that blocks
//!   past the window marks the peer as a slow consumer
//!   (`write_timeouts`) and disconnects it.
//! - **Session resume**: a connection that sent HELLO owns a session
//!   token. On an *unexpected* disconnect (EOF, wire error, idle or
//!   write deadline) its per-stream receiver state is parked for
//!   `resume_grace`; a reconnecting client sends RESUME(token) and
//!   continues decoding mid-packet with nothing lost. A clean GOAWAY
//!   (or daemon SHUTDOWN) flushes and reports instead of parking.
//! - **Admission control** (`max_conns`): connections beyond the cap
//!   are answered with a `busy` line and closed (`busy_rejects`).
//!
//! All timing on the *uplink path* still comes from the sample clock
//! ([`StreamingReceiver::position`]); decoded output never depends on
//! the wall clock, so a replayed stream uplinks byte-identical lines.

use std::collections::{BTreeMap, VecDeque};
use std::io::{self, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use crate::stats::{GatewayStats, GatewayStatsSnapshot};
use crate::uplink;
use crate::wire::{FrameKind, FrameReader, ReadStep};
use tnb_core::{
    DecodeReport, MetricsSnapshot, StreamingConfig, StreamingReceiver, WidebandConfig,
    WidebandReceiver,
};
use tnb_dsp::{ChannelizerConfig, Complex32};
use tnb_phy::LoRaParams;

/// How often blocked socket reads wake up to check the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// Daemon configuration.
#[derive(Debug, Clone, Copy)]
pub struct GatewayConfig {
    /// PHY parameters every stream of this daemon is decoded with.
    pub params: LoRaParams,
    /// Per-stream streaming-receiver configuration (`workers` reuses the
    /// parallel pipeline inside each stream's receiver).
    pub streaming: StreamingConfig,
    /// Ingest-queue bound, in buffered DATA chunks per connection.
    /// Beyond it the fair-share policy evicts the oldest chunk of the
    /// most-buffered stream (clamped to ≥ 1).
    pub queue_chunks: usize,
    /// Filterbank geometry for streams that arrive with the wire
    /// protocol's WIDEBAND flag (see [`crate::wire::FLAG_WIDEBAND`]).
    pub channelizer: ChannelizerConfig,
    /// Disconnect a connection that delivers no frame within this
    /// window (`None` = never; the default). PING keepalives count as
    /// activity.
    pub idle_timeout: Option<Duration>,
    /// Socket write deadline for uplink lines: a peer that blocks the
    /// writer past this window is disconnected as a slow consumer
    /// (`None` = block forever; the default).
    pub write_timeout: Option<Duration>,
    /// Admission cap: connections beyond this many concurrent peers are
    /// answered with a `busy` line and closed (0 = unlimited).
    pub max_conns: usize,
    /// How long a HELLO'd connection's stream state survives an
    /// unexpected disconnect waiting for a RESUME.
    pub resume_grace: Duration,
    /// Ack cadence on HELLO'd connections: write an `ack` line after
    /// every this-many consumed chunks per stream (0 = ack only at end
    /// of stream). Plain connections are never acked.
    pub ack_every: u64,
    /// Per-stream ingest quota, in buffered chunks (0 = none): a DATA
    /// frame for a stream already holding this many queued chunks is
    /// shed on arrival (`shed_frames`) instead of evicting neighbours.
    pub quota_chunks: usize,
}

impl GatewayConfig {
    /// Defaults: single worker, no observation, 256-chunk ingest bound,
    /// 8-channel wideband filterbank, no idle/write deadlines, no
    /// admission cap, 30 s resume grace, ack every 16 chunks.
    pub fn new(params: LoRaParams) -> Self {
        GatewayConfig {
            params,
            streaming: StreamingConfig::default(),
            queue_chunks: 256,
            channelizer: ChannelizerConfig::default(),
            idle_timeout: None,
            write_timeout: None,
            max_conns: 0,
            resume_grace: Duration::from_secs(30),
            ack_every: 16,
            quota_chunks: 0,
        }
    }
}

/// Work items flowing from a connection's reader to its decoder.
enum Work {
    /// One DATA frame's samples.
    Chunk {
        stream_id: u32,
        seq: u32,
        wideband: bool,
        samples: Vec<Complex32>,
    },
    /// END_STREAM verb: flush and report one stream (`seq` is the END
    /// frame's own sequence number, acked back to resumable clients).
    End { stream_id: u32, seq: u32 },
    /// STATS verb: emit a stats JSON line.
    Stats,
    /// PING verb: emit a pong line echoing the nonce.
    Ping { nonce: u32 },
    /// HELLO verb: allocate (or repeat) this connection's session token.
    Hello,
    /// RESUME verb: re-attach the parked session `token`. `delivered`
    /// is how many session lines the client already received; the
    /// daemon replays the session log past that point, recovering the
    /// lines that died in the old connection's socket buffer.
    Resume { token: u32, delivered: u32 },
    /// Reader is done (EOF, shutdown, or a protocol error): tear the
    /// connection down. `error` carries the wire-error name + detail
    /// when a malformed frame ended the connection; `park` asks the
    /// decoder to park a HELLO'd session for resume instead of
    /// finishing it; `goaway` names the reason line to send first.
    Terminal {
        error: Option<(&'static str, String)>,
        park: bool,
        goaway: Option<&'static str>,
    },
}

impl Work {
    /// A clean end-of-connection marker (flush + report everything).
    fn finish_terminal() -> Work {
        Work::Terminal {
            error: None,
            park: false,
            goaway: None,
        }
    }
}

/// Outcome of enqueueing one DATA chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PushOutcome {
    /// Enqueued; `evicted` buffered chunks were dropped to make room.
    Queued { evicted: u64 },
    /// The incoming frame itself was shed (stream over its quota).
    Shed,
}

/// Bounded MPSC queue with fair-share backpressure on DATA chunks.
/// Control verbs are never dropped and don't count toward the bound.
struct Ingest {
    state: Mutex<IngestState>,
    ready: Condvar,
    cap: usize,
    quota: usize,
}

struct IngestState {
    items: VecDeque<Work>,
    chunks: usize,
    /// Buffered-chunk count per stream id (fair-share bookkeeping).
    per_stream: BTreeMap<u32, usize>,
}

impl Ingest {
    fn new(cap: usize, quota: usize) -> Self {
        Ingest {
            state: Mutex::new(IngestState {
                items: VecDeque::new(),
                chunks: 0,
                per_stream: BTreeMap::new(),
            }),
            ready: Condvar::new(),
            cap: cap.max(1),
            quota,
        }
    }

    fn lock_queue(&self) -> MutexGuard<'_, IngestState> {
        // A poisoned queue mutex only means a decoder panicked while
        // holding it; the queue data is still structurally valid.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Enqueues `w`, applying the per-stream quota and the fair-share
    /// eviction policy to DATA chunks.
    fn push(&self, w: Work) -> PushOutcome {
        let mut st = self.lock_queue();
        let mut evicted = 0u64;
        if let Work::Chunk { stream_id, .. } = w {
            let held = st.per_stream.get(&stream_id).copied().unwrap_or(0);
            if self.quota > 0 && held >= self.quota {
                return PushOutcome::Shed;
            }
            while st.chunks >= self.cap {
                // Fair share: evict the oldest chunk of the stream
                // holding the most buffered chunks (ties → lowest id),
                // so a firehose stream sheds before its neighbours.
                let Some((&victim, _)) = st.per_stream.iter().max_by_key(|(id, n)| {
                    // max_by_key keeps the *last* max; invert the id so
                    // ties resolve to the lowest stream id.
                    (**n, u32::MAX - **id)
                }) else {
                    break;
                };
                let Some(pos) = st.items.iter().position(
                    |i| matches!(i, Work::Chunk { stream_id, .. } if *stream_id == victim),
                ) else {
                    break;
                };
                st.items.remove(pos);
                st.chunks -= 1;
                match st.per_stream.get_mut(&victim) {
                    Some(n) if *n > 1 => *n -= 1,
                    _ => {
                        st.per_stream.remove(&victim);
                    }
                }
                evicted += 1;
            }
            st.chunks += 1;
            *st.per_stream.entry(stream_id).or_insert(0) += 1;
        }
        st.items.push_back(w);
        drop(st);
        self.ready.notify_one();
        PushOutcome::Queued { evicted }
    }

    /// Blocks until an item is available. The reader always enqueues a
    /// [`Work::Terminal`] before exiting, so this cannot hang forever.
    fn pop(&self) -> Work {
        let mut st = self.lock_queue();
        loop {
            if let Some(w) = st.items.pop_front() {
                if let Work::Chunk { stream_id, .. } = &w {
                    st.chunks -= 1;
                    match st.per_stream.get_mut(stream_id) {
                        Some(n) if *n > 1 => *n -= 1,
                        _ => {
                            st.per_stream.remove(stream_id);
                        }
                    }
                }
                return w;
            }
            st = self.ready.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// Bound on the per-session line log (see [`SessionLog`]): a resumed
/// client more than this many lines behind gets a gapped replay.
const SESSION_LOG_CAP: usize = 8192;

/// The per-session delivery log: every *session line* (uplink / end /
/// ack / stats / error — the lines whose delivery matters for the
/// transcript) written on a resumable connection, indexed from the
/// session's start. TCP write success only means "reached the kernel
/// buffer": the lines in flight when a connection dies are lost, and
/// the parked receiver cannot re-decode them. A RESUME carries the
/// client's received-line count, and the daemon replays `lines[count -
/// start ..]` — exactly the lost tail, nothing else.
#[derive(Default)]
struct SessionLog {
    lines: VecDeque<String>,
    /// Session-line index of `lines[0]` (grows as the cap evicts).
    start: u64,
}

impl SessionLog {
    fn append(&mut self, line: &str) {
        self.lines.push_back(line.to_owned());
        while self.lines.len() > SESSION_LOG_CAP {
            self.lines.pop_front();
            self.start += 1;
        }
    }

    /// The lines a client that received `delivered` lines is missing
    /// (clamped to what the cap kept).
    fn replay_from(&self, delivered: u64) -> impl Iterator<Item = &String> {
        let idx = delivered
            .saturating_sub(self.start)
            .min(self.lines.len() as u64);
        self.lines.iter().skip(idx as usize)
    }
}

/// One parked (disconnected, resumable) connection's decode state.
struct Parked {
    sessions: BTreeMap<u32, Session>,
    finished: BTreeMap<u32, FinishedStream>,
    closed_report: DecodeReport,
    last_metrics: MetricsSnapshot,
    log: SessionLog,
    /// When the grace window runs out and this entry is dropped.
    deadline: Instant,
}

/// The resume table: session token → parked state, shared by every
/// connection thread and pruned by the accept loop.
#[derive(Default)]
struct SessionTable {
    inner: Mutex<BTreeMap<u32, Parked>>,
}

impl SessionTable {
    fn lock_table(&self) -> MutexGuard<'_, BTreeMap<u32, Parked>> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn park(&self, token: u32, parked: Parked) {
        self.lock_table().insert(token, parked);
    }

    fn resume(&self, token: u32) -> Option<Parked> {
        self.lock_table().remove(&token)
    }

    /// Drops entries whose grace window has passed; returns how many.
    fn prune(&self, now: Instant) -> u64 {
        let mut table = self.lock_table();
        let before = table.len();
        table.retain(|_, p| p.deadline > now);
        (before - table.len()) as u64
    }
}

/// A running gateway daemon. Dropping (or [`Gateway::join`]) signals
/// shutdown and joins every thread.
pub struct Gateway {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    stats: Arc<GatewayStats>,
    accept: Option<JoinHandle<()>>,
}

impl Gateway {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts the
    /// accept loop in a background thread.
    pub fn spawn<A: ToSocketAddrs>(addr: A, cfg: GatewayConfig) -> io::Result<Gateway> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(GatewayStats::default());
        let accept = {
            let shutdown = Arc::clone(&shutdown);
            let stats = Arc::clone(&stats);
            thread::spawn(move || accept_loop(listener, cfg, stats, shutdown))
        };
        Ok(Gateway {
            local_addr,
            shutdown,
            stats,
            accept: Some(accept),
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Live counter snapshot.
    pub fn stats(&self) -> GatewayStatsSnapshot {
        self.stats.snapshot()
    }

    /// Whether shutdown has been requested (locally or by a client's
    /// SHUTDOWN verb).
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Requests shutdown without blocking; threads exit within one poll
    /// interval.
    pub fn signal_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Graceful shutdown: signals every thread, joins them (flushing
    /// per-stream end lines on open connections) and returns the final
    /// counters.
    pub fn join(mut self) -> GatewayStatsSnapshot {
        self.shutdown_and_join();
        self.stats.snapshot()
    }

    fn shutdown_and_join(&mut self) {
        self.signal_shutdown();
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Gateway {
    fn drop(&mut self) {
        self.shutdown_and_join();
    }
}

fn accept_loop(
    listener: TcpListener,
    cfg: GatewayConfig,
    stats: Arc<GatewayStats>,
    shutdown: Arc<AtomicBool>,
) {
    let mut conns: Vec<JoinHandle<()>> = Vec::new();
    let table = Arc::new(SessionTable::default());
    // Session tokens are a daemon-global monotonic counter (never the
    // clock, never random): deterministic and collision-free.
    let tokens = Arc::new(AtomicU32::new(0));
    let active = Arc::new(AtomicUsize::new(0));
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((sock, _peer)) => {
                if cfg.max_conns > 0 && active.load(Ordering::SeqCst) >= cfg.max_conns {
                    // Admission control: answer BUSY and close without
                    // spawning threads for the peer.
                    stats.busy_rejects.inc();
                    let line = uplink::busy_line(active.load(Ordering::SeqCst), cfg.max_conns);
                    let mut sock = sock;
                    let _ = writeln!(sock, "{line}");
                    continue;
                }
                active.fetch_add(1, Ordering::SeqCst);
                let stats = Arc::clone(&stats);
                let shutdown = Arc::clone(&shutdown);
                let table = Arc::clone(&table);
                let tokens = Arc::clone(&tokens);
                let active = Arc::clone(&active);
                conns.push(thread::spawn(move || {
                    serve_connection(sock, cfg, stats, shutdown, table, tokens);
                    active.fetch_sub(1, Ordering::SeqCst);
                }));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                // Reap finished connections so the handle list stays
                // bounded on long-lived daemons.
                let mut live = Vec::with_capacity(conns.len());
                for h in conns {
                    if h.is_finished() {
                        let _ = h.join();
                    } else {
                        live.push(h);
                    }
                }
                conns = live;
                // Expire parked sessions whose grace window has passed.
                // tnb-lint: allow(TNB-DET01) -- control-plane resume-grace expiry, never on the decode path
                let expired = table.prune(Instant::now());
                if expired > 0 {
                    stats.sessions_expired.add(expired);
                }
                thread::sleep(POLL_INTERVAL);
            }
            Err(_) => thread::sleep(POLL_INTERVAL),
        }
    }
    for h in conns {
        let _ = h.join();
    }
}

fn serve_connection(
    sock: TcpStream,
    cfg: GatewayConfig,
    stats: Arc<GatewayStats>,
    shutdown: Arc<AtomicBool>,
    table: Arc<SessionTable>,
    tokens: Arc<AtomicU32>,
) {
    stats.connections_accepted.inc();
    let write_half = match sock.try_clone() {
        Ok(w) => w,
        Err(_) => {
            // No way to uplink results; nothing useful to serve.
            stats.connections_closed.inc();
            return;
        }
    };
    if sock.set_read_timeout(Some(POLL_INTERVAL)).is_err() {
        // Without the read timeout the reader cannot poll the shutdown
        // flag; serve anyway (a hung connection still dies with the
        // process) but make the degraded mode visible in the counters.
        stats.sock_config_errors.inc();
    }
    if let Some(wt) = cfg.write_timeout {
        if write_half.set_write_timeout(Some(wt)).is_err() {
            stats.sock_config_errors.inc();
        }
    }
    // Set by the decoder when the write half dies (slow consumer), so
    // the reader stops draining a connection nobody answers on.
    let conn_done = Arc::new(AtomicBool::new(false));
    let ingest = Arc::new(Ingest::new(cfg.queue_chunks, cfg.quota_chunks));
    let decoder = {
        let ingest = Arc::clone(&ingest);
        let stats = Arc::clone(&stats);
        let table = Arc::clone(&table);
        let tokens = Arc::clone(&tokens);
        let conn_done = Arc::clone(&conn_done);
        thread::spawn(move || {
            decode_loop(
                &ingest, write_half, cfg, &stats, &table, &tokens, &conn_done,
            )
        })
    };
    read_loop(
        sock,
        &ingest,
        &stats,
        &shutdown,
        &conn_done,
        cfg.idle_timeout,
    );
    let _ = decoder.join();
    stats.connections_closed.inc();
}

/// Parses frames off the socket until EOF, shutdown, idle deadline, or
/// a wire error, feeding the decoder through the bounded ingest queue.
fn read_loop(
    mut sock: TcpStream,
    ingest: &Ingest,
    stats: &GatewayStats,
    shutdown: &AtomicBool,
    conn_done: &AtomicBool,
    idle_timeout: Option<Duration>,
) {
    let mut reader = FrameReader::new();
    // Idle deadline (control plane): armed only when configured, so the
    // default daemon never reads the clock at all.
    // tnb-lint: allow(TNB-DET01) -- control-plane idle deadline, never on the decode path
    let mut last_activity = idle_timeout.map(|_| Instant::now());
    loop {
        if shutdown.load(Ordering::SeqCst) {
            ingest.push(Work::finish_terminal());
            return;
        }
        if conn_done.load(Ordering::SeqCst) {
            // The decoder already tore the connection down (dead write
            // half); nobody is listening for a terminal.
            return;
        }
        match reader.poll(&mut sock) {
            Ok(ReadStep::Pending) => {
                if let (Some(limit), Some(last)) = (idle_timeout, last_activity) {
                    // tnb-lint: allow(TNB-DET01) -- control-plane idle deadline, never on the decode path
                    let now = Instant::now();
                    if now.duration_since(last) >= limit {
                        stats.idle_disconnects.inc();
                        ingest.push(Work::Terminal {
                            error: None,
                            park: true,
                            goaway: Some("idle-timeout"),
                        });
                        return;
                    }
                }
            }
            Ok(ReadStep::Eof) => {
                // Unexpected close (a clean leave is GOAWAY/SHUTDOWN):
                // park a resumable session rather than finishing it.
                ingest.push(Work::Terminal {
                    error: None,
                    park: true,
                    goaway: None,
                });
                return;
            }
            Ok(ReadStep::Frame(frame)) => {
                stats.frames_in.inc();
                if let Some(last) = last_activity.as_mut() {
                    // tnb-lint: allow(TNB-DET01) -- control-plane idle deadline, never on the decode path
                    *last = Instant::now();
                }
                match frame.kind {
                    FrameKind::Data => {
                        stats.chunks_in.inc();
                        stats.samples_in.add(frame.samples.len() as u64);
                        let outcome = ingest.push(Work::Chunk {
                            stream_id: frame.stream_id,
                            seq: frame.seq,
                            wideband: frame.is_wideband(),
                            samples: frame.samples,
                        });
                        match outcome {
                            PushOutcome::Queued { evicted } => stats.chunks_dropped.add(evicted),
                            PushOutcome::Shed => stats.shed_frames.inc(),
                        }
                    }
                    FrameKind::EndStream => {
                        ingest.push(Work::End {
                            stream_id: frame.stream_id,
                            seq: frame.seq,
                        });
                    }
                    FrameKind::Stats => {
                        ingest.push(Work::Stats);
                    }
                    FrameKind::Ping => {
                        ingest.push(Work::Ping {
                            nonce: frame.nonce(),
                        });
                    }
                    FrameKind::Hello => {
                        ingest.push(Work::Hello);
                    }
                    FrameKind::Resume => {
                        ingest.push(Work::Resume {
                            token: frame.session_token(),
                            delivered: frame.delivered(),
                        });
                    }
                    FrameKind::GoAway => {
                        // Clean close: flush + report, never park.
                        ingest.push(Work::finish_terminal());
                        return;
                    }
                    FrameKind::Pong | FrameKind::Busy => {
                        // Server→client verbs; harmless as inbound
                        // keepalive traffic (they reset the idle clock).
                    }
                    FrameKind::Shutdown => {
                        shutdown.store(true, Ordering::SeqCst);
                        ingest.push(Work::finish_terminal());
                        return;
                    }
                }
            }
            Err(e) => {
                stats.protocol_errors.inc();
                ingest.push(Work::Terminal {
                    error: Some((e.name(), e.to_string())),
                    park: true,
                    goaway: None,
                });
                return;
            }
        }
    }
}

/// The decode engine of one stream: narrowband (one receiver) or
/// wideband (channelizer feeding per-channel receivers). The mode is
/// latched by the stream's first DATA frame's WIDEBAND flag.
enum Rx {
    Narrow(Box<StreamingReceiver>),
    Wide(WidebandReceiver),
}

/// One stream's decode state inside a connection.
struct Session {
    rx: Rx,
    next_seq: u32,
    uplinked: u64,
    /// Chunks consumed by the decoder (drives the ack cadence).
    processed: u64,
}

/// What remains of a stream after END_STREAM: enough to recognize (and
/// ack) retransmissions of already-delivered frames after a resume.
#[derive(Debug, Clone, Copy)]
struct FinishedStream {
    /// The seq cursor after the END frame (first never-consumed seq).
    next_seq: u32,
    /// Packets the stream uplinked before it finished.
    uplinked: u64,
}

impl Session {
    fn new(cfg: &GatewayConfig, wideband: bool) -> Session {
        let rx = if wideband {
            Rx::Wide(WidebandReceiver::with_config(
                cfg.params,
                WidebandConfig {
                    channelizer: cfg.channelizer,
                    streaming: cfg.streaming,
                },
            ))
        } else {
            Rx::Narrow(Box::new(StreamingReceiver::with_config(
                cfg.params,
                cfg.streaming,
            )))
        };
        Session {
            rx,
            next_seq: 0,
            uplinked: 0,
            processed: 0,
        }
    }

    fn is_wideband(&self) -> bool {
        matches!(self.rx, Rx::Wide(_))
    }

    /// Feeds one chunk; returns `(channel, packet)` pairs (`None` on a
    /// narrowband stream).
    fn push(&mut self, samples: &[Complex32]) -> Vec<(Option<usize>, tnb_core::DecodedPacket)> {
        match &mut self.rx {
            Rx::Narrow(rx) => rx.push(samples).into_iter().map(|p| (None, p)).collect(),
            Rx::Wide(rx) => rx
                .push(samples)
                .into_iter()
                .map(|cp| (Some(cp.channel), cp.packet))
                .collect(),
        }
    }

    /// Flushes the stream's tail at end of stream.
    fn finish(&mut self) -> Vec<(Option<usize>, tnb_core::DecodedPacket)> {
        match &mut self.rx {
            Rx::Narrow(rx) => rx.finish().into_iter().map(|p| (None, p)).collect(),
            Rx::Wide(rx) => rx
                .finish()
                .into_iter()
                .map(|cp| (Some(cp.channel), cp.packet))
                .collect(),
        }
    }

    /// Cumulative decode report (wideband: absorbed across channels).
    fn report(&self) -> DecodeReport {
        match &self.rx {
            Rx::Narrow(rx) => rx.report(),
            Rx::Wide(rx) => {
                let mut all = DecodeReport::default();
                for r in rx.reports() {
                    all.absorb(&r);
                }
                all
            }
        }
    }

    fn metrics_snapshot(&self) -> MetricsSnapshot {
        match &self.rx {
            Rx::Narrow(rx) => rx.metrics_snapshot(),
            // Wideband streams don't aggregate wall-time metrics across
            // channels (the per-channel receivers observe independently).
            Rx::Wide(_) => MetricsSnapshot::default(),
        }
    }

    /// Samples consumed so far, on the stream's own input clock
    /// (wideband streams consume `M` input samples per channel sample).
    fn position(&self) -> u64 {
        match &self.rx {
            Rx::Narrow(rx) => rx.position(),
            Rx::Wide(rx) => rx.position(0) * rx.channels() as u64,
        }
    }
}

/// The uplink writer plus its health and the session delivery log.
/// Once a write fails (slow consumer hitting the write deadline, or a
/// vanished peer) the connection is torn down and — for HELLO'd
/// sessions — parked for resume; the log makes the undelivered lines
/// replayable.
struct Uplink {
    out: BufWriter<TcpStream>,
    broken: bool,
    /// True once the connection holds a session token: session lines
    /// are logged for replay from then on.
    logging: bool,
    log: SessionLog,
}

impl Uplink {
    /// Writes a *session line* (uplink / end / ack / stats / error):
    /// logged for resume replay on resumable connections. The set of
    /// logged types must match what [`crate::client::ResilientClient`]
    /// counts as delivered.
    fn session(&mut self, line: &str, stats: &GatewayStats) {
        if self.logging {
            self.log.append(line);
        }
        self.write(line, stats);
    }

    /// Writes a *link line* (hello / resumed / pong / busy / goaway):
    /// connection-scoped, never logged or replayed.
    fn link(&mut self, line: &str, stats: &GatewayStats) {
        self.write(line, stats);
    }

    /// Writes one line; on failure marks the link broken and counts a
    /// write timeout when the failure was the write deadline.
    fn write(&mut self, line: &str, stats: &GatewayStats) {
        if self.broken {
            return;
        }
        let r = writeln!(self.out, "{line}").and_then(|()| self.out.flush());
        if let Err(e) = r {
            if matches!(
                e.kind(),
                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
            ) {
                stats.write_timeouts.inc();
            }
            self.broken = true;
        }
    }
}

/// Everything one connection's decoder accumulates.
struct ConnState {
    sessions: BTreeMap<u32, Session>,
    finished: BTreeMap<u32, FinishedStream>,
    closed_report: DecodeReport,
    last_metrics: MetricsSnapshot,
    /// HELLO-assigned session token (makes the connection resumable).
    token: Option<u32>,
    /// Whether this connection re-attached a parked session (switches
    /// the stale-frame counter from `seq_dups` to `retransmitted_frames`).
    resumed: bool,
}

impl ConnState {
    fn new() -> ConnState {
        ConnState {
            sessions: BTreeMap::new(),
            finished: BTreeMap::new(),
            closed_report: DecodeReport::default(),
            last_metrics: MetricsSnapshot::default(),
            token: None,
            resumed: false,
        }
    }
}

/// Drains the ingest queue, decoding each stream with its own
/// [`StreamingReceiver`] and writing uplink JSON lines to `write_half`.
fn decode_loop(
    ingest: &Ingest,
    write_half: TcpStream,
    cfg: GatewayConfig,
    stats: &GatewayStats,
    table: &SessionTable,
    tokens: &AtomicU32,
    conn_done: &AtomicBool,
) {
    let mut up = Uplink {
        out: BufWriter::new(write_half),
        broken: false,
        logging: false,
        log: SessionLog::default(),
    };
    let mut state = ConnState::new();
    loop {
        match ingest.pop() {
            Work::Chunk {
                stream_id,
                seq,
                wideband,
                samples,
            } => {
                if let Some(f) = state.finished.get(&stream_id) {
                    // The stream already ended on this session; frames
                    // at/behind its cursor are resends of delivered
                    // data, dropped so nothing decodes twice.
                    if seq.wrapping_sub(f.next_seq) >= 1 << 31 {
                        count_stale(stats, state.resumed);
                        continue;
                    }
                    // A genuinely new seq on a finished stream falls
                    // through and (re)creates the stream.
                    state.finished.remove(&stream_id);
                }
                let s = state
                    .sessions
                    .entry(stream_id)
                    .or_insert_with(|| Session::new(&cfg, wideband));
                // Sequence tracking with u32 wraparound: a frame ahead
                // of the cursor (by less than half the sequence space)
                // is a gap — counted, then accepted; a frame at or
                // behind the cursor is a duplicate / stale
                // retransmission — counted and dropped, so a replayed
                // chunk is never decoded (and uplinked) twice.
                let diff = seq.wrapping_sub(s.next_seq);
                if diff != 0 {
                    if diff < 1 << 31 {
                        stats.seq_gaps.inc();
                    } else {
                        count_stale(stats, state.resumed);
                        continue;
                    }
                }
                s.next_seq = seq.wrapping_add(1);
                // Fault containment: a panicking decode restarts this
                // stream's receiver (sample clock rebases); every other
                // stream and connection is untouched.
                let pkts = match catch_unwind(AssertUnwindSafe(|| s.push(&samples))) {
                    Ok(pkts) => pkts,
                    Err(_) => {
                        stats.worker_panics.inc();
                        let wide = s.is_wideband();
                        let uplinked = s.uplinked;
                        let next_seq = s.next_seq;
                        let processed = s.processed;
                        *s = Session::new(&cfg, wide);
                        s.uplinked = uplinked;
                        s.next_seq = next_seq;
                        s.processed = processed;
                        Vec::new()
                    }
                };
                s.processed += 1;
                for (chan, p) in &pkts {
                    let line = match chan {
                        Some(c) => uplink::uplink_line_on_channel(
                            &cfg.params,
                            stream_id,
                            s.uplinked,
                            *c,
                            p,
                        ),
                        None => uplink::uplink_line(&cfg.params, stream_id, s.uplinked, p),
                    };
                    s.uplinked += 1;
                    stats.packets_uplinked.inc();
                    up.session(&line, stats);
                }
                // Delivery acks let a resumable client trim its resend
                // buffer; plain connections never see them.
                if state.token.is_some()
                    && cfg.ack_every > 0
                    && s.processed.is_multiple_of(cfg.ack_every)
                {
                    up.session(&uplink::ack_line(stream_id, seq), stats);
                }
            }
            Work::End { stream_id, seq } => {
                if let Some(mut s) = state.sessions.remove(&stream_id) {
                    let cursor = seq.wrapping_add(1);
                    finish_session(
                        stream_id,
                        &mut s,
                        &cfg,
                        stats,
                        &mut up,
                        &mut state.closed_report,
                        &mut state.last_metrics,
                    );
                    state.finished.insert(
                        stream_id,
                        FinishedStream {
                            next_seq: cursor,
                            uplinked: s.uplinked,
                        },
                    );
                }
                if state.token.is_some() {
                    // Final ack: the whole stream (END included) is
                    // delivered; the client drops its resend buffer.
                    up.session(&uplink::ack_line(stream_id, seq), stats);
                }
            }
            Work::Stats => {
                let mut report = state.closed_report.clone();
                let mut metrics = state.last_metrics;
                for s in state.sessions.values() {
                    report.absorb(&s.report());
                    metrics = s.metrics_snapshot();
                }
                let line = uplink::stats_line(&stats.snapshot(), &report, &metrics);
                up.session(&line, stats);
            }
            Work::Ping { nonce } => {
                stats.pings_answered.inc();
                up.link(&uplink::pong_line(nonce), stats);
            }
            Work::Hello => {
                let token = match state.token {
                    Some(t) => t,
                    None => {
                        let t = tokens.fetch_add(1, Ordering::SeqCst).wrapping_add(1);
                        state.token = Some(t);
                        up.logging = true;
                        t
                    }
                };
                up.link(
                    &uplink::hello_line(token, cfg.resume_grace.as_millis() as u64),
                    stats,
                );
            }
            Work::Resume { token, delivered } => match table.resume(token) {
                Some(parked) => {
                    stats.sessions_resumed.inc();
                    state.sessions = parked.sessions;
                    state.finished = parked.finished;
                    state.closed_report = parked.closed_report;
                    state.last_metrics = parked.last_metrics;
                    state.token = Some(token);
                    state.resumed = true;
                    up.log = parked.log;
                    up.logging = true;
                    let mut streams: Vec<(u32, u32, u64)> = state
                        .sessions
                        .iter()
                        .map(|(&id, s)| (id, s.next_seq, s.uplinked))
                        .collect();
                    streams.extend(
                        state
                            .finished
                            .iter()
                            .map(|(&id, f)| (id, f.next_seq, f.uplinked)),
                    );
                    streams.sort_unstable();
                    up.link(&uplink::resumed_line(token, &streams), stats);
                    // Replay the session lines that died in the old
                    // connection's socket buffer: everything past the
                    // client's delivered count (already in the log, so
                    // written raw — not re-appended).
                    let replay: Vec<String> =
                        up.log.replay_from(delivered as u64).cloned().collect();
                    for line in &replay {
                        up.write(line, stats);
                    }
                }
                None => {
                    // Unknown or expired token: tell the client its
                    // session is gone; it can HELLO a fresh one.
                    up.link(&uplink::goaway_line("unknown-session"), stats);
                }
            },
            Work::Terminal {
                error,
                park,
                goaway,
            } => {
                if let Some((name, detail)) = error {
                    up.session(&uplink::error_line(name, &detail), stats);
                }
                if let Some(reason) = goaway {
                    up.link(&uplink::goaway_line(reason), stats);
                }
                teardown(state, park, &cfg, stats, table, &mut up);
                return;
            }
        }
        if up.broken {
            // Slow or vanished consumer: stop decoding for a peer that
            // cannot take uplinks; park a resumable session and tell
            // the reader to stop.
            teardown(state, true, &cfg, stats, table, &mut up);
            conn_done.store(true, Ordering::SeqCst);
            return;
        }
    }
}

/// Counts a dropped stale DATA frame: a resumed connection's resends
/// are expected (`retransmitted_frames`); on a plain connection they
/// are duplicates (`seq_dups`).
fn count_stale(stats: &GatewayStats, resumed: bool) {
    if resumed {
        stats.retransmitted_frames.inc();
    } else {
        stats.seq_dups.inc();
    }
}

/// End-of-connection: parks a resumable session for the grace window,
/// or flushes and reports everything.
fn teardown(
    mut state: ConnState,
    park: bool,
    cfg: &GatewayConfig,
    stats: &GatewayStats,
    table: &SessionTable,
    up: &mut Uplink,
) {
    if park {
        if let Some(token) = state.token {
            stats.sessions_parked.inc();
            // tnb-lint: allow(TNB-DET01) -- control-plane resume-grace deadline, never on the decode path
            let deadline = Instant::now() + cfg.resume_grace;
            table.park(
                token,
                Parked {
                    sessions: state.sessions,
                    finished: state.finished,
                    closed_report: state.closed_report,
                    last_metrics: state.last_metrics,
                    log: std::mem::take(&mut up.log),
                    deadline,
                },
            );
            return;
        }
    }
    let ids: Vec<u32> = state.sessions.keys().copied().collect();
    for id in ids {
        if let Some(mut s) = state.sessions.remove(&id) {
            finish_session(
                id,
                &mut s,
                cfg,
                stats,
                up,
                &mut state.closed_report,
                &mut state.last_metrics,
            );
        }
    }
}

/// Flushes a stream's tail, uplinks any final packets, and writes the
/// end-of-stream report line.
fn finish_session(
    stream_id: u32,
    s: &mut Session,
    cfg: &GatewayConfig,
    stats: &GatewayStats,
    up: &mut Uplink,
    closed_report: &mut DecodeReport,
    last_metrics: &mut MetricsSnapshot,
) {
    let pkts = match catch_unwind(AssertUnwindSafe(|| s.finish())) {
        Ok(pkts) => pkts,
        Err(_) => {
            stats.worker_panics.inc();
            Vec::new()
        }
    };
    for (chan, p) in &pkts {
        let line = match chan {
            Some(c) => uplink::uplink_line_on_channel(&cfg.params, stream_id, s.uplinked, *c, p),
            None => uplink::uplink_line(&cfg.params, stream_id, s.uplinked, p),
        };
        s.uplinked += 1;
        stats.packets_uplinked.inc();
        up.session(&line, stats);
    }
    let report = s.report();
    *last_metrics = s.metrics_snapshot();
    up.session(
        &uplink::end_line(stream_id, s.position(), s.uplinked, &report),
        stats,
    );
    closed_report.absorb(&report);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chunk(stream_id: u32, n: usize) -> Work {
        Work::Chunk {
            stream_id,
            seq: n as u32,
            wideband: false,
            samples: vec![Complex32::ZERO; 4],
        }
    }

    fn popped_chunk(q: &Ingest) -> (u32, u32) {
        match q.pop() {
            Work::Chunk { stream_id, seq, .. } => (stream_id, seq),
            _ => panic!("expected chunk"),
        }
    }

    #[test]
    fn ingest_evicts_chunks_but_never_control_verbs() {
        let q = Ingest::new(2, 0);
        assert_eq!(q.push(chunk(0, 0)), PushOutcome::Queued { evicted: 0 });
        assert_eq!(q.push(Work::Stats), PushOutcome::Queued { evicted: 0 });
        assert_eq!(q.push(chunk(0, 1)), PushOutcome::Queued { evicted: 0 });
        // Queue holds chunks {0,1} at the cap of 2: the next chunk
        // evicts seq 0, the oldest buffered chunk of the only stream.
        assert_eq!(q.push(chunk(0, 2)), PushOutcome::Queued { evicted: 1 });
        // Control verbs are never counted or dropped.
        assert_eq!(
            q.push(Work::End {
                stream_id: 0,
                seq: 3
            }),
            PushOutcome::Queued { evicted: 0 }
        );
        match q.pop() {
            Work::Stats => {}
            _ => panic!("Stats verb survives eviction and stays FIFO-first"),
        }
        assert_eq!(popped_chunk(&q), (0, 1), "seq 0 was evicted");
        assert_eq!(popped_chunk(&q), (0, 2));
        match q.pop() {
            Work::End { .. } => {}
            _ => panic!("expected end"),
        }
    }

    #[test]
    fn ingest_cap_zero_clamps_to_one() {
        let q = Ingest::new(0, 0);
        assert_eq!(q.push(chunk(0, 0)), PushOutcome::Queued { evicted: 0 });
        assert_eq!(q.push(chunk(0, 1)), PushOutcome::Queued { evicted: 1 });
    }

    #[test]
    fn ingest_fair_share_evicts_the_heaviest_stream() {
        // Stream 7 hogs 3 of the 4 slots; stream 1 holds one. The next
        // chunk (for stream 1) must evict from stream 7 — the heaviest
        // stream pays, not the oldest frame overall (which is 7's
        // anyway) and not the newcomer.
        let q = Ingest::new(4, 0);
        for seq in 0..3 {
            assert_eq!(q.push(chunk(7, seq)), PushOutcome::Queued { evicted: 0 });
        }
        assert_eq!(q.push(chunk(1, 0)), PushOutcome::Queued { evicted: 0 });
        assert_eq!(q.push(chunk(1, 1)), PushOutcome::Queued { evicted: 1 });
        // Stream 7's oldest chunk (seq 0) is gone; everything of
        // stream 1 survives.
        let mut remaining = Vec::new();
        for _ in 0..4 {
            remaining.push(popped_chunk(&q));
        }
        assert_eq!(remaining, vec![(7, 1), (7, 2), (1, 0), (1, 1)]);
    }

    #[test]
    fn ingest_fair_share_breaks_ties_toward_the_lowest_stream_id() {
        let q = Ingest::new(2, 0);
        assert_eq!(q.push(chunk(5, 0)), PushOutcome::Queued { evicted: 0 });
        assert_eq!(q.push(chunk(9, 0)), PushOutcome::Queued { evicted: 0 });
        // Both streams hold one chunk; the tie resolves to stream 5.
        assert_eq!(q.push(chunk(9, 1)), PushOutcome::Queued { evicted: 1 });
        assert_eq!(popped_chunk(&q), (9, 0));
        assert_eq!(popped_chunk(&q), (9, 1));
    }

    #[test]
    fn ingest_quota_sheds_the_incoming_frame() {
        let q = Ingest::new(16, 2);
        assert_eq!(q.push(chunk(3, 0)), PushOutcome::Queued { evicted: 0 });
        assert_eq!(q.push(chunk(3, 1)), PushOutcome::Queued { evicted: 0 });
        // Stream 3 is at its quota: the new frame is shed, nothing
        // buffered is touched…
        assert_eq!(q.push(chunk(3, 2)), PushOutcome::Shed);
        // …and other streams are unaffected.
        assert_eq!(q.push(chunk(4, 0)), PushOutcome::Queued { evicted: 0 });
        assert_eq!(popped_chunk(&q), (3, 0));
        // Consuming frees quota for the shedding stream.
        assert_eq!(q.push(chunk(3, 3)), PushOutcome::Queued { evicted: 0 });
    }

    #[test]
    fn session_log_replays_exactly_the_undelivered_tail() {
        let mut log = SessionLog::default();
        for i in 0..5 {
            log.append(&format!("line-{i}"));
        }
        // Client saw 3 lines: replay 3 and 4 only.
        let replay: Vec<&String> = log.replay_from(3).collect();
        assert_eq!(replay, [&"line-3".to_owned(), &"line-4".to_owned()]);
        // Fully delivered (or a stale over-count): nothing to replay.
        assert_eq!(log.replay_from(5).count(), 0);
        assert_eq!(log.replay_from(99).count(), 0);
        // Cap eviction shifts the start index; a client further behind
        // than the cap gets the oldest retained line onward.
        for i in 5..(SESSION_LOG_CAP + 10) {
            log.append(&format!("line-{i}"));
        }
        assert_eq!(log.start, 10);
        assert_eq!(log.replay_from(0).count(), SESSION_LOG_CAP);
        assert_eq!(
            log.replay_from(0).next().map(String::as_str),
            Some("line-10")
        );
    }

    #[test]
    fn session_table_parks_resumes_and_prunes() {
        let table = SessionTable::default();
        // tnb-lint: allow(TNB-DET01) -- test-only clock anchor
        let now = Instant::now();
        let parked = |grace: Duration| Parked {
            sessions: BTreeMap::new(),
            finished: BTreeMap::new(),
            closed_report: DecodeReport::default(),
            last_metrics: MetricsSnapshot::default(),
            log: SessionLog::default(),
            deadline: now + grace,
        };
        table.park(1, parked(Duration::from_secs(60)));
        table.park(2, parked(Duration::from_millis(0)));
        // Token 2's grace has already passed at now + 1ms.
        assert_eq!(table.prune(now + Duration::from_millis(1)), 1);
        assert!(table.resume(2).is_none());
        assert!(table.resume(1).is_some(), "unexpired session resumes");
        assert!(table.resume(1).is_none(), "a session resumes only once");
    }
}
