//! The gateway daemon: a `std::net` TCP server feeding per-stream
//! [`StreamingReceiver`]s from framed IQ connections.
//!
//! # Thread model
//!
//! ```text
//! accept loop ──► one connection thread per client
//!                   ├─ reader  (this thread): FrameReader::poll → Ingest queue
//!                   └─ decoder (spawned):     Ingest queue → StreamingReceiver
//!                                              → uplink JSON lines on the socket
//! ```
//!
//! The ingest queue is **bounded with drop-oldest backpressure**: when
//! the decoder falls behind the socket, the oldest buffered DATA chunk
//! is evicted (never control verbs) and `chunks_dropped` increments —
//! the daemon sheds load instead of ballooning memory or stalling the
//! reader. Each connection is fault-contained: a panicking stream decode
//! is caught ([`std::panic::catch_unwind`], same policy as the parallel
//! receiver's worker containment), the stream's receiver is restarted,
//! and every other stream and connection keeps decoding. A malformed
//! frame yields a typed [`crate::wire::WireError`], one `error` JSON
//! line, and closes only that connection.
//!
//! All timing on the uplink path comes from the sample clock
//! ([`StreamingReceiver::position`]); the daemon never reads the wall
//! clock (TNB-DET01), so a replayed stream uplinks byte-identical lines.

use std::collections::{BTreeMap, VecDeque};
use std::io::{self, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::{self, JoinHandle};
use std::time::Duration;

use crate::stats::{GatewayStats, GatewayStatsSnapshot};
use crate::uplink;
use crate::wire::{FrameKind, FrameReader, ReadStep};
use tnb_core::{
    DecodeReport, MetricsSnapshot, StreamingConfig, StreamingReceiver, WidebandConfig,
    WidebandReceiver,
};
use tnb_dsp::{ChannelizerConfig, Complex32};
use tnb_phy::LoRaParams;

/// How often blocked socket reads wake up to check the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// Daemon configuration.
#[derive(Debug, Clone, Copy)]
pub struct GatewayConfig {
    /// PHY parameters every stream of this daemon is decoded with.
    pub params: LoRaParams,
    /// Per-stream streaming-receiver configuration (`workers` reuses the
    /// parallel pipeline inside each stream's receiver).
    pub streaming: StreamingConfig,
    /// Ingest-queue bound, in buffered DATA chunks per connection.
    /// Beyond it the oldest buffered chunk is dropped (clamped to ≥ 1).
    pub queue_chunks: usize,
    /// Filterbank geometry for streams that arrive with the wire
    /// protocol's WIDEBAND flag (see [`crate::wire::FLAG_WIDEBAND`]).
    pub channelizer: ChannelizerConfig,
}

impl GatewayConfig {
    /// Defaults: single worker, no observation, 256-chunk ingest bound,
    /// 8-channel wideband filterbank.
    pub fn new(params: LoRaParams) -> Self {
        GatewayConfig {
            params,
            streaming: StreamingConfig::default(),
            queue_chunks: 256,
            channelizer: ChannelizerConfig::default(),
        }
    }
}

/// Work items flowing from a connection's reader to its decoder.
enum Work {
    /// One DATA frame's samples.
    Chunk {
        stream_id: u32,
        seq: u32,
        wideband: bool,
        samples: Vec<Complex32>,
    },
    /// END_STREAM verb: flush and report one stream.
    End { stream_id: u32 },
    /// STATS verb: emit a stats JSON line.
    Stats,
    /// Reader is done (EOF, shutdown, or a protocol error): flush every
    /// stream and exit. `error` carries the wire-error name + detail
    /// when a malformed frame ended the connection.
    Terminal {
        error: Option<(&'static str, String)>,
    },
}

/// Bounded MPSC queue with drop-oldest backpressure on DATA chunks.
/// Control verbs are never dropped and don't count toward the bound.
struct Ingest {
    state: Mutex<IngestState>,
    ready: Condvar,
    cap: usize,
}

struct IngestState {
    items: VecDeque<Work>,
    chunks: usize,
}

impl Ingest {
    fn new(cap: usize) -> Self {
        Ingest {
            state: Mutex::new(IngestState {
                items: VecDeque::new(),
                chunks: 0,
            }),
            ready: Condvar::new(),
            cap: cap.max(1),
        }
    }

    fn lock(&self) -> MutexGuard<'_, IngestState> {
        // A poisoned queue mutex only means a decoder panicked while
        // holding it; the queue data is still structurally valid.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Enqueues `w`; returns how many chunks were evicted to make room.
    fn push(&self, w: Work) -> u64 {
        let mut st = self.lock();
        let mut dropped = 0;
        if matches!(w, Work::Chunk { .. }) {
            while st.chunks >= self.cap {
                let Some(pos) = st
                    .items
                    .iter()
                    .position(|i| matches!(i, Work::Chunk { .. }))
                else {
                    break;
                };
                st.items.remove(pos);
                st.chunks -= 1;
                dropped += 1;
            }
            st.chunks += 1;
        }
        st.items.push_back(w);
        drop(st);
        self.ready.notify_one();
        dropped
    }

    /// Blocks until an item is available. The reader always enqueues a
    /// [`Work::Terminal`] before exiting, so this cannot hang forever.
    fn pop(&self) -> Work {
        let mut st = self.lock();
        loop {
            if let Some(w) = st.items.pop_front() {
                if matches!(w, Work::Chunk { .. }) {
                    st.chunks -= 1;
                }
                return w;
            }
            st = self.ready.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// A running gateway daemon. Dropping (or [`Gateway::join`]) signals
/// shutdown and joins every thread.
pub struct Gateway {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    stats: Arc<GatewayStats>,
    accept: Option<JoinHandle<()>>,
}

impl Gateway {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts the
    /// accept loop in a background thread.
    pub fn spawn<A: ToSocketAddrs>(addr: A, cfg: GatewayConfig) -> io::Result<Gateway> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(GatewayStats::default());
        let accept = {
            let shutdown = Arc::clone(&shutdown);
            let stats = Arc::clone(&stats);
            thread::spawn(move || accept_loop(listener, cfg, stats, shutdown))
        };
        Ok(Gateway {
            local_addr,
            shutdown,
            stats,
            accept: Some(accept),
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Live counter snapshot.
    pub fn stats(&self) -> GatewayStatsSnapshot {
        self.stats.snapshot()
    }

    /// Whether shutdown has been requested (locally or by a client's
    /// SHUTDOWN verb).
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Requests shutdown without blocking; threads exit within one poll
    /// interval.
    pub fn signal_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Graceful shutdown: signals every thread, joins them (flushing
    /// per-stream end lines on open connections) and returns the final
    /// counters.
    pub fn join(mut self) -> GatewayStatsSnapshot {
        self.shutdown_and_join();
        self.stats.snapshot()
    }

    fn shutdown_and_join(&mut self) {
        self.signal_shutdown();
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Gateway {
    fn drop(&mut self) {
        self.shutdown_and_join();
    }
}

fn accept_loop(
    listener: TcpListener,
    cfg: GatewayConfig,
    stats: Arc<GatewayStats>,
    shutdown: Arc<AtomicBool>,
) {
    let mut conns: Vec<JoinHandle<()>> = Vec::new();
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((sock, _peer)) => {
                let stats = Arc::clone(&stats);
                let shutdown = Arc::clone(&shutdown);
                conns.push(thread::spawn(move || {
                    serve_connection(sock, cfg, stats, shutdown)
                }));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                // Reap finished connections so the handle list stays
                // bounded on long-lived daemons.
                let mut live = Vec::with_capacity(conns.len());
                for h in conns {
                    if h.is_finished() {
                        let _ = h.join();
                    } else {
                        live.push(h);
                    }
                }
                conns = live;
                thread::sleep(POLL_INTERVAL);
            }
            Err(_) => thread::sleep(POLL_INTERVAL),
        }
    }
    for h in conns {
        let _ = h.join();
    }
}

fn serve_connection(
    sock: TcpStream,
    cfg: GatewayConfig,
    stats: Arc<GatewayStats>,
    shutdown: Arc<AtomicBool>,
) {
    stats.connections_accepted.inc();
    let write_half = match sock.try_clone() {
        Ok(w) => w,
        Err(_) => {
            // No way to uplink results; nothing useful to serve.
            stats.connections_closed.inc();
            return;
        }
    };
    let _ = sock.set_read_timeout(Some(POLL_INTERVAL));
    let ingest = Arc::new(Ingest::new(cfg.queue_chunks));
    let decoder = {
        let ingest = Arc::clone(&ingest);
        let stats = Arc::clone(&stats);
        thread::spawn(move || decode_loop(&ingest, write_half, cfg, &stats))
    };
    read_loop(sock, &ingest, &stats, &shutdown);
    let _ = decoder.join();
    stats.connections_closed.inc();
}

/// Parses frames off the socket until EOF, shutdown, or a wire error,
/// feeding the decoder through the bounded ingest queue.
fn read_loop(mut sock: TcpStream, ingest: &Ingest, stats: &GatewayStats, shutdown: &AtomicBool) {
    let mut reader = FrameReader::new();
    loop {
        if shutdown.load(Ordering::SeqCst) {
            ingest.push(Work::Terminal { error: None });
            return;
        }
        match reader.poll(&mut sock) {
            Ok(ReadStep::Pending) => {}
            Ok(ReadStep::Eof) => {
                ingest.push(Work::Terminal { error: None });
                return;
            }
            Ok(ReadStep::Frame(frame)) => {
                stats.frames_in.inc();
                match frame.kind {
                    FrameKind::Data => {
                        stats.chunks_in.inc();
                        stats.samples_in.add(frame.samples.len() as u64);
                        let dropped = ingest.push(Work::Chunk {
                            stream_id: frame.stream_id,
                            seq: frame.seq,
                            wideband: frame.is_wideband(),
                            samples: frame.samples,
                        });
                        stats.chunks_dropped.add(dropped);
                    }
                    FrameKind::EndStream => {
                        ingest.push(Work::End {
                            stream_id: frame.stream_id,
                        });
                    }
                    FrameKind::Stats => {
                        ingest.push(Work::Stats);
                    }
                    FrameKind::Shutdown => {
                        shutdown.store(true, Ordering::SeqCst);
                        ingest.push(Work::Terminal { error: None });
                        return;
                    }
                }
            }
            Err(e) => {
                stats.protocol_errors.inc();
                ingest.push(Work::Terminal {
                    error: Some((e.name(), e.to_string())),
                });
                return;
            }
        }
    }
}

/// The decode engine of one stream: narrowband (one receiver) or
/// wideband (channelizer feeding per-channel receivers). The mode is
/// latched by the stream's first DATA frame's WIDEBAND flag.
enum Rx {
    Narrow(Box<StreamingReceiver>),
    Wide(WidebandReceiver),
}

/// One stream's decode state inside a connection.
struct Session {
    rx: Rx,
    next_seq: u32,
    uplinked: u64,
}

impl Session {
    fn new(cfg: &GatewayConfig, wideband: bool) -> Session {
        let rx = if wideband {
            Rx::Wide(WidebandReceiver::with_config(
                cfg.params,
                WidebandConfig {
                    channelizer: cfg.channelizer,
                    streaming: cfg.streaming,
                },
            ))
        } else {
            Rx::Narrow(Box::new(StreamingReceiver::with_config(
                cfg.params,
                cfg.streaming,
            )))
        };
        Session {
            rx,
            next_seq: 0,
            uplinked: 0,
        }
    }

    fn is_wideband(&self) -> bool {
        matches!(self.rx, Rx::Wide(_))
    }

    /// Feeds one chunk; returns `(channel, packet)` pairs (`None` on a
    /// narrowband stream).
    fn push(&mut self, samples: &[Complex32]) -> Vec<(Option<usize>, tnb_core::DecodedPacket)> {
        match &mut self.rx {
            Rx::Narrow(rx) => rx.push(samples).into_iter().map(|p| (None, p)).collect(),
            Rx::Wide(rx) => rx
                .push(samples)
                .into_iter()
                .map(|cp| (Some(cp.channel), cp.packet))
                .collect(),
        }
    }

    /// Flushes the stream's tail at end of stream.
    fn finish(&mut self) -> Vec<(Option<usize>, tnb_core::DecodedPacket)> {
        match &mut self.rx {
            Rx::Narrow(rx) => rx.finish().into_iter().map(|p| (None, p)).collect(),
            Rx::Wide(rx) => rx
                .finish()
                .into_iter()
                .map(|cp| (Some(cp.channel), cp.packet))
                .collect(),
        }
    }

    /// Cumulative decode report (wideband: absorbed across channels).
    fn report(&self) -> DecodeReport {
        match &self.rx {
            Rx::Narrow(rx) => rx.report(),
            Rx::Wide(rx) => {
                let mut all = DecodeReport::default();
                for r in rx.reports() {
                    all.absorb(&r);
                }
                all
            }
        }
    }

    fn metrics_snapshot(&self) -> MetricsSnapshot {
        match &self.rx {
            Rx::Narrow(rx) => rx.metrics_snapshot(),
            // Wideband streams don't aggregate wall-time metrics across
            // channels (the per-channel receivers observe independently).
            Rx::Wide(_) => MetricsSnapshot::default(),
        }
    }

    /// Samples consumed so far, on the stream's own input clock
    /// (wideband streams consume `M` input samples per channel sample).
    fn position(&self) -> u64 {
        match &self.rx {
            Rx::Narrow(rx) => rx.position(),
            Rx::Wide(rx) => rx.position(0) * rx.channels() as u64,
        }
    }
}

/// Drains the ingest queue, decoding each stream with its own
/// [`StreamingReceiver`] and writing uplink JSON lines to `write_half`.
fn decode_loop(ingest: &Ingest, write_half: TcpStream, cfg: GatewayConfig, stats: &GatewayStats) {
    let mut out = BufWriter::new(write_half);
    let mut sessions: BTreeMap<u32, Session> = BTreeMap::new();
    let mut closed_report = DecodeReport::default();
    let mut last_metrics = MetricsSnapshot::default();
    loop {
        match ingest.pop() {
            Work::Chunk {
                stream_id,
                seq,
                wideband,
                samples,
            } => {
                let s = sessions
                    .entry(stream_id)
                    .or_insert_with(|| Session::new(&cfg, wideband));
                // Sequence tracking with u32 wraparound: a frame ahead
                // of the cursor (by less than half the sequence space)
                // is a gap — counted, then accepted; a frame at or
                // behind the cursor is a duplicate / stale
                // retransmission — counted and dropped, so a replayed
                // chunk is never decoded (and uplinked) twice.
                let diff = seq.wrapping_sub(s.next_seq);
                if diff != 0 {
                    if diff < 1 << 31 {
                        stats.seq_gaps.inc();
                    } else {
                        stats.seq_dups.inc();
                        continue;
                    }
                }
                s.next_seq = seq.wrapping_add(1);
                // Fault containment: a panicking decode restarts this
                // stream's receiver (sample clock rebases); every other
                // stream and connection is untouched.
                let pkts = match catch_unwind(AssertUnwindSafe(|| s.push(&samples))) {
                    Ok(pkts) => pkts,
                    Err(_) => {
                        stats.worker_panics.inc();
                        let wide = s.is_wideband();
                        let uplinked = s.uplinked;
                        let next_seq = s.next_seq;
                        *s = Session::new(&cfg, wide);
                        s.uplinked = uplinked;
                        s.next_seq = next_seq;
                        Vec::new()
                    }
                };
                for (chan, p) in &pkts {
                    let line = match chan {
                        Some(c) => uplink::uplink_line_on_channel(
                            &cfg.params,
                            stream_id,
                            s.uplinked,
                            *c,
                            p,
                        ),
                        None => uplink::uplink_line(&cfg.params, stream_id, s.uplinked, p),
                    };
                    s.uplinked += 1;
                    stats.packets_uplinked.inc();
                    let _ = writeln!(out, "{line}");
                }
                if !pkts.is_empty() {
                    let _ = out.flush();
                }
            }
            Work::End { stream_id } => {
                if let Some(mut s) = sessions.remove(&stream_id) {
                    finish_session(
                        stream_id,
                        &mut s,
                        &cfg,
                        stats,
                        &mut out,
                        &mut closed_report,
                        &mut last_metrics,
                    );
                }
                let _ = out.flush();
            }
            Work::Stats => {
                let mut report = closed_report.clone();
                let mut metrics = last_metrics;
                for s in sessions.values() {
                    report.absorb(&s.report());
                    metrics = s.metrics_snapshot();
                }
                let line = uplink::stats_line(&stats.snapshot(), &report, &metrics);
                let _ = writeln!(out, "{line}");
                let _ = out.flush();
            }
            Work::Terminal { error } => {
                if let Some((name, detail)) = error {
                    let _ = writeln!(out, "{}", uplink::error_line(name, &detail));
                }
                let ids: Vec<u32> = sessions.keys().copied().collect();
                for id in ids {
                    if let Some(mut s) = sessions.remove(&id) {
                        finish_session(
                            id,
                            &mut s,
                            &cfg,
                            stats,
                            &mut out,
                            &mut closed_report,
                            &mut last_metrics,
                        );
                    }
                }
                let _ = out.flush();
                return;
            }
        }
    }
}

/// Flushes a stream's tail, uplinks any final packets, and writes the
/// end-of-stream report line.
fn finish_session(
    stream_id: u32,
    s: &mut Session,
    cfg: &GatewayConfig,
    stats: &GatewayStats,
    out: &mut BufWriter<TcpStream>,
    closed_report: &mut DecodeReport,
    last_metrics: &mut MetricsSnapshot,
) {
    let pkts = match catch_unwind(AssertUnwindSafe(|| s.finish())) {
        Ok(pkts) => pkts,
        Err(_) => {
            stats.worker_panics.inc();
            Vec::new()
        }
    };
    for (chan, p) in &pkts {
        let line = match chan {
            Some(c) => uplink::uplink_line_on_channel(&cfg.params, stream_id, s.uplinked, *c, p),
            None => uplink::uplink_line(&cfg.params, stream_id, s.uplinked, p),
        };
        s.uplinked += 1;
        stats.packets_uplinked.inc();
        let _ = writeln!(out, "{line}");
    }
    let report = s.report();
    *last_metrics = s.metrics_snapshot();
    let _ = writeln!(
        out,
        "{}",
        uplink::end_line(stream_id, s.position(), s.uplinked, &report)
    );
    closed_report.absorb(&report);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chunk(n: usize) -> Work {
        Work::Chunk {
            stream_id: 0,
            seq: n as u32,
            wideband: false,
            samples: vec![Complex32::ZERO; 4],
        }
    }

    #[test]
    fn ingest_drops_oldest_chunk_but_never_control_verbs() {
        let q = Ingest::new(2);
        assert_eq!(q.push(chunk(0)), 0);
        assert_eq!(q.push(Work::Stats), 0);
        assert_eq!(q.push(chunk(1)), 0);
        // Queue holds chunks {0,1} at the cap of 2: the next chunk
        // evicts seq 0, the oldest buffered chunk.
        assert_eq!(q.push(chunk(2)), 1);
        // Control verbs are never counted or dropped.
        assert_eq!(q.push(Work::End { stream_id: 0 }), 0);
        match q.pop() {
            Work::Stats => {}
            _ => panic!("Stats verb survives eviction and stays FIFO-first"),
        }
        match q.pop() {
            Work::Chunk { seq, .. } => assert_eq!(seq, 1, "seq 0 was evicted"),
            _ => panic!("expected chunk"),
        }
        match q.pop() {
            Work::Chunk { seq, .. } => assert_eq!(seq, 2),
            _ => panic!("expected chunk"),
        }
        match q.pop() {
            Work::End { .. } => {}
            _ => panic!("expected end"),
        }
    }

    #[test]
    fn ingest_cap_zero_clamps_to_one() {
        let q = Ingest::new(0);
        assert_eq!(q.push(chunk(0)), 0);
        assert_eq!(q.push(chunk(1)), 1);
    }
}
