//! JSON-lines uplink format for decoded packets.
//!
//! Modeled on the Semtech UDP packet-forwarder `PUSH_DATA` shape: each
//! decoded packet becomes one `rxpk`-style JSON object on its own line,
//! with base64 payload bytes, the data-rate string, SNR, and a `tmst`
//! microsecond timestamp. Unlike Semtech's, the timestamp derives from
//! the **sample clock** (the packet's absolute sample index in the
//! stream; at 1 Msps one sample is one microsecond) — never the wall
//! clock — so the uplink of a replayed stream is byte-identical on
//! every run and on every worker count (TNB-DET01).

use crate::stats::GatewayStatsSnapshot;
use tnb_core::{DecodeReport, DecodedPacket, MetricsSnapshot};
use tnb_phy::params::LoRaParams;

/// Center frequency reported in uplink lines, in MHz. The synthetic
/// traces are baseband captures with no RF frontend, so this is a
/// documentation-only constant (the EU868 default the paper's testbed
/// uses).
pub const UPLINK_FREQ_MHZ: f64 = 868.1;

const B64_ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Standard (RFC 4648, padded) base64 of `bytes` — implemented locally
/// so the crate stays dependency-free.
pub fn base64(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len().div_ceil(3) * 4);
    for chunk in bytes.chunks(3) {
        let b0 = chunk[0] as u32;
        let b1 = chunk.get(1).copied().unwrap_or(0) as u32;
        let b2 = chunk.get(2).copied().unwrap_or(0) as u32;
        let v = (b0 << 16) | (b1 << 8) | b2;
        out.push(B64_ALPHABET[(v >> 18) as usize & 0x3F] as char);
        out.push(B64_ALPHABET[(v >> 12) as usize & 0x3F] as char);
        out.push(if chunk.len() > 1 {
            B64_ALPHABET[(v >> 6) as usize & 0x3F] as char
        } else {
            '='
        });
        out.push(if chunk.len() > 2 {
            B64_ALPHABET[v as usize & 0x3F] as char
        } else {
            '='
        });
    }
    out
}

/// Data-rate string for the uplink (`SF8CR4` style: spreading factor
/// plus coding rate, the two knobs this PHY exposes).
pub fn datr(params: &LoRaParams) -> String {
    format!("SF{}CR{}", params.sf.value(), params.cr.value())
}

/// Sample-clock timestamp of a packet start, in microseconds: the
/// absolute sample index at 1 Msps. Clamped at zero (a packet start can
/// sit fractionally before the first sample after synchronization).
pub fn sample_clock_us(start: f64, params: &LoRaParams) -> u64 {
    let us = start * 1e6 / params.sample_rate();
    if us <= 0.0 {
        0
    } else {
        us as u64
    }
}

/// One uplink JSON line (no trailing newline) for a decoded packet.
///
/// `n` is the per-stream uplink ordinal (0-based). The `outcome` object
/// reuses the per-packet schema of `DecodeReport.outcomes` (`tnb-cli
/// report --json`), so consumers parse both feeds the same way.
pub fn uplink_line(params: &LoRaParams, stream_id: u32, n: u64, pkt: &DecodedPacket) -> String {
    uplink_line_impl(params, stream_id, n, None, pkt)
}

/// Like [`uplink_line`] but for a wideband stream: tags the line with
/// the logical uplink channel the packet was heard on (`0..M`, ascending
/// frequency), as a top-level `channel` key.
pub fn uplink_line_on_channel(
    params: &LoRaParams,
    stream_id: u32,
    n: u64,
    channel: usize,
    pkt: &DecodedPacket,
) -> String {
    uplink_line_impl(params, stream_id, n, Some(channel), pkt)
}

fn uplink_line_impl(
    params: &LoRaParams,
    stream_id: u32,
    n: u64,
    channel: Option<usize>,
    pkt: &DecodedPacket,
) -> String {
    let chan = channel.map_or(String::new(), |c| format!("\"channel\":{c},"));
    format!(
        "{{\"type\":\"uplink\",\"stream\":{stream_id},\"n\":{n},{chan}\
         \"rxpk\":{{\"tmst\":{},\"freq\":{UPLINK_FREQ_MHZ},\"datr\":\"{}\",\
         \"lsnr\":{:.1},\"foff\":{:.0},\"size\":{},\"data\":\"{}\"}},\
         \"outcome\":{{\"status\":\"decoded\",\"start\":{},\"pass\":{}}},\
         \"rescued\":{}}}",
        sample_clock_us(pkt.start, params),
        datr(params),
        pkt.snr_db,
        pkt.cfo_cycles * params.bin_hz(),
        pkt.payload.len(),
        base64(&pkt.payload),
        pkt.start,
        pkt.pass,
        pkt.rescued_codewords,
    )
}

/// The end-of-stream line: totals plus the cumulative decode report
/// (aggregate counts and per-packet outcomes with degradation reasons).
pub fn end_line(stream_id: u32, samples: u64, uplinked: u64, report: &DecodeReport) -> String {
    format!(
        "{{\"type\":\"end\",\"stream\":{stream_id},\"samples\":{samples},\
         \"uplinked\":{uplinked},\"report\":{}}}",
        report.to_json()
    )
}

/// The STATS control-verb response: gateway counters, the cumulative
/// decode report across this connection's streams, and the
/// [`MetricsSnapshot`] (all-zero unless the daemon observes).
pub fn stats_line(
    gateway: &GatewayStatsSnapshot,
    report: &DecodeReport,
    metrics: &MetricsSnapshot,
) -> String {
    format!(
        "{{\"type\":\"stats\",\"gateway\":{},\"report\":{},\"metrics\":{}}}",
        gateway.to_json(),
        report.to_json(),
        metrics.to_json()
    )
}

/// The HELLO reply: the session token this connection can later RESUME
/// with, and the grace window (in milliseconds) a parked session
/// survives a disconnect.
pub fn hello_line(session: u32, grace_ms: u64) -> String {
    format!("{{\"type\":\"hello\",\"session\":{session},\"grace_ms\":{grace_ms}}}")
}

/// The RESUME reply: the re-attached session plus each parked stream's
/// state — its `next_seq` cursor (first sequence number the decoder has
/// not consumed; resend from here) and how many packets it already
/// uplinked.
pub fn resumed_line(session: u32, streams: &[(u32, u32, u64)]) -> String {
    let mut body = String::new();
    for (i, (stream, next_seq, uplinked)) in streams.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str(&format!(
            "{{\"stream\":{stream},\"next_seq\":{next_seq},\"uplinked\":{uplinked}}}"
        ));
    }
    format!("{{\"type\":\"resumed\",\"session\":{session},\"streams\":[{body}]}}")
}

/// A delivery acknowledgment: every DATA frame of `stream` with
/// `seq <= ack` has been consumed by the decoder, so the client can
/// drop those frames from its resend buffer.
pub fn ack_line(stream: u32, ack: u32) -> String {
    format!("{{\"type\":\"ack\",\"stream\":{stream},\"seq\":{ack}}}")
}

/// The PING reply, echoing the probe's nonce.
pub fn pong_line(nonce: u32) -> String {
    format!("{{\"type\":\"pong\",\"nonce\":{nonce}}}")
}

/// The admission-control reject: the daemon is at its connection cap;
/// the client should back off and retry.
pub fn busy_line(active: usize, max_conns: usize) -> String {
    format!("{{\"type\":\"busy\",\"active\":{active},\"max_conns\":{max_conns}}}")
}

/// A graceful-close notice with a stable reason
/// (`idle-timeout` / `write-timeout` / `unknown-session` / `shutdown`).
pub fn goaway_line(reason: &str) -> String {
    format!("{{\"type\":\"goaway\",\"reason\":\"{reason}\"}}")
}

/// A protocol-error line (`error` is a stable [`crate::wire::WireError`]
/// name; `detail` is the human-readable rendering).
pub fn error_line(error: &str, detail: &str) -> String {
    let clean: String = detail
        .chars()
        .map(|c| match c {
            '"' => '\'',
            '\n' | '\r' => ' ',
            c => c,
        })
        .collect();
    format!("{{\"type\":\"error\",\"error\":\"{error}\",\"detail\":\"{clean}\"}}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use tnb_phy::{CodingRate, SpreadingFactor};

    #[test]
    fn base64_rfc4648_vectors() {
        assert_eq!(base64(b""), "");
        assert_eq!(base64(b"f"), "Zg==");
        assert_eq!(base64(b"fo"), "Zm8=");
        assert_eq!(base64(b"foo"), "Zm9v");
        assert_eq!(base64(b"foob"), "Zm9vYg==");
        assert_eq!(base64(b"fooba"), "Zm9vYmE=");
        assert_eq!(base64(b"foobar"), "Zm9vYmFy");
    }

    #[test]
    fn uplink_line_shape_and_sample_clock() {
        let params = LoRaParams::new(SpreadingFactor::SF8, CodingRate::CR4);
        let pkt = DecodedPacket {
            payload: b"foobar".to_vec(),
            header: tnb_phy::header::Header {
                payload_len: 6,
                cr: CodingRate::CR4,
                has_crc: true,
            },
            start: 4000.5,
            cfo_cycles: 3.0,
            snr_db: 12.25,
            rescued_codewords: 1,
            pass: 2,
        };
        let line = uplink_line(&params, 9, 0, &pkt);
        assert!(line.starts_with("{\"type\":\"uplink\",\"stream\":9,\"n\":0,"));
        assert!(line.contains("\"tmst\":4000,"), "{line}");
        assert!(line.contains("\"datr\":\"SF8CR4\""), "{line}");
        assert!(line.contains("\"data\":\"Zm9vYmFy\""), "{line}");
        assert!(
            line.contains("\"lsnr\":12.2") || line.contains("\"lsnr\":12.3"),
            "{line}"
        );
        assert!(
            line.contains("\"outcome\":{\"status\":\"decoded\",\"start\":4000.5,\"pass\":2}"),
            "{line}"
        );
        assert!(line.contains("\"rescued\":1"), "{line}");
        // Sample clock: 1 sample = 1 µs at 1 Msps; never negative.
        assert_eq!(sample_clock_us(-3.0, &params), 0);
        assert_eq!(sample_clock_us(1_000_000.0, &params), 1_000_000);
    }

    #[test]
    fn wideband_uplink_line_carries_channel() {
        let params = LoRaParams::new(SpreadingFactor::SF8, CodingRate::CR4);
        let pkt = DecodedPacket {
            payload: b"x".to_vec(),
            header: tnb_phy::header::Header {
                payload_len: 1,
                cr: CodingRate::CR4,
                has_crc: true,
            },
            start: 100.0,
            cfo_cycles: 0.0,
            snr_db: 10.0,
            rescued_codewords: 0,
            pass: 1,
        };
        let line = uplink_line_on_channel(&params, 2, 1, 6, &pkt);
        assert!(
            line.starts_with("{\"type\":\"uplink\",\"stream\":2,\"n\":1,\"channel\":6,"),
            "{line}"
        );
        // Narrowband lines carry no channel key.
        assert!(!uplink_line(&params, 2, 1, &pkt).contains("\"channel\""));
    }

    #[test]
    fn control_lines_have_stable_shapes() {
        assert_eq!(
            hello_line(7, 30_000),
            "{\"type\":\"hello\",\"session\":7,\"grace_ms\":30000}"
        );
        assert_eq!(
            resumed_line(7, &[(0, 12, 3), (4, 1, 0)]),
            "{\"type\":\"resumed\",\"session\":7,\"streams\":[\
             {\"stream\":0,\"next_seq\":12,\"uplinked\":3},\
             {\"stream\":4,\"next_seq\":1,\"uplinked\":0}]}"
        );
        assert_eq!(
            resumed_line(9, &[]),
            "{\"type\":\"resumed\",\"session\":9,\"streams\":[]}"
        );
        assert_eq!(
            ack_line(3, 41),
            "{\"type\":\"ack\",\"stream\":3,\"seq\":41}"
        );
        assert_eq!(pong_line(0xFFFF), "{\"type\":\"pong\",\"nonce\":65535}");
        assert_eq!(
            busy_line(8, 8),
            "{\"type\":\"busy\",\"active\":8,\"max_conns\":8}"
        );
        assert_eq!(
            goaway_line("idle-timeout"),
            "{\"type\":\"goaway\",\"reason\":\"idle-timeout\"}"
        );
    }

    #[test]
    fn error_line_escapes_quotes_and_newlines() {
        let line = error_line("crc-mismatch", "bad \"frame\"\nnext");
        assert_eq!(
            line,
            "{\"type\":\"error\",\"error\":\"crc-mismatch\",\"detail\":\"bad 'frame' next\"}"
        );
    }
}
