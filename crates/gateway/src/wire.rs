//! The framed binary wire protocol for IQ chunks.
//!
//! A gateway ingest link carries fixed-layout frames, little-endian
//! throughout:
//!
//! ```text
//! offset  size  field
//! 0       4     magic           "TNBG"
//! 4       1     version         1
//! 5       1     kind            0=DATA 1=END_STREAM 2=STATS 3=SHUTDOWN
//!                               4=PING 5=PONG 6=HELLO 7=RESUME
//!                               8=BUSY 9=GOAWAY
//! 6       1     flags           bit 0 = WIDEBAND (DATA only); other bits
//!                               must be 0 (reserved for extensions)
//! 7       1     reserved        must be 0
//! 8       4     stream_id       u32, groups chunks into one IQ stream
//! 12      4     seq             u32, per-stream chunk sequence number
//! 16      4     sample_count    u32, complex samples in the payload
//! 20      4n    payload         interleaved i16 I/Q pairs (DATA only)
//! 20+4n   4     crc32           IEEE CRC-32 over header + payload
//! ```
//!
//! The payload is the paper's USRP capture format (16-bit interleaved
//! I/Q at 1 Msps) quantized with the same [`IQ_SCALE`] the trace files
//! use — reusing [`tnb_channel::io`]'s serializer — so a trace streamed
//! over the wire decodes to the same bytes as the trace loaded from
//! disk. Every malformed input surfaces as a typed [`WireError`], never
//! a panic: the daemon must keep serving its other connections no
//! matter what one socket feeds it.

use std::fmt;
use std::io::{self, Read, Write};
use tnb_channel::io::{read_iq16, write_iq16, IQ16_SCALE};
use tnb_dsp::Complex32;

/// Leading frame magic.
pub const MAGIC: [u8; 4] = *b"TNBG";

/// Current protocol version.
pub const VERSION: u8 = 1;

/// Fixed header length in bytes (before payload and CRC).
pub const HEADER_LEN: usize = 20;

/// CRC trailer length in bytes.
pub const CRC_LEN: usize = 4;

/// Upper bound on samples per frame (4 MiB of payload). A `sample_count`
/// above this is rejected as [`WireError::Oversized`] before any
/// allocation, so a garbage header cannot make the daemon reserve
/// gigabytes.
pub const MAX_FRAME_SAMPLES: usize = 1 << 20;

/// Quantization scale shared with the trace-file format.
pub const IQ_SCALE: f32 = IQ16_SCALE;

/// DATA-frame flag bit: the stream carries *wideband* IQ that the daemon
/// must split through the polyphase channelizer (8 LoRa uplink channels)
/// instead of decoding as one narrowband stream. Only legal on DATA
/// frames; the stream's mode is latched by its first DATA frame.
pub const FLAG_WIDEBAND: u8 = 0x01;

/// All flag bits the protocol knows; anything else is [`WireError::BadFlags`].
const KNOWN_FLAGS: u8 = FLAG_WIDEBAND;

/// Frame kind discriminator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// An IQ chunk for `stream_id`.
    Data,
    /// End of `stream_id`: flush the stream's receiver and uplink the
    /// remaining packets.
    EndStream,
    /// Control verb: reply with a stats line (gateway counters, decode
    /// report, metrics snapshot) on this connection.
    Stats,
    /// Control verb: gracefully shut the whole daemon down (finish every
    /// in-flight stream, then stop accepting).
    Shutdown,
    /// Keepalive probe: `seq` carries an opaque nonce the peer echoes
    /// back. Any frame (PING included) resets the receiver's idle
    /// deadline.
    Ping,
    /// Keepalive reply: `seq` echoes the PING nonce. On a live daemon
    /// link the reply travels as a `pong` JSON line (the server→client
    /// channel is line-oriented); the frame kind exists so symmetric /
    /// frame-to-frame deployments and the chaos harness can speak it.
    Pong,
    /// Session open: asks the daemon to allocate a resumable session
    /// for this connection. The daemon answers with a `hello` JSON line
    /// carrying the session token.
    Hello,
    /// Session resume after a reconnect: `stream_id` carries the session
    /// token from the original `hello` line. The daemon re-attaches the
    /// parked per-stream receiver state and answers with a `resumed`
    /// JSON line listing each stream's `next_seq` cursor, so the client
    /// knows where to resend from.
    Resume,
    /// Admission-control reject: the peer is at capacity and this
    /// connection will be closed (daemon side: a `busy` JSON line).
    /// Back off and retry.
    Busy,
    /// Graceful connection close: the sender is done with this
    /// connection and its session state should be *finished* (flushed +
    /// reported), not parked for resume.
    GoAway,
}

impl FrameKind {
    fn to_byte(self) -> u8 {
        match self {
            FrameKind::Data => 0,
            FrameKind::EndStream => 1,
            FrameKind::Stats => 2,
            FrameKind::Shutdown => 3,
            FrameKind::Ping => 4,
            FrameKind::Pong => 5,
            FrameKind::Hello => 6,
            FrameKind::Resume => 7,
            FrameKind::Busy => 8,
            FrameKind::GoAway => 9,
        }
    }

    fn from_byte(b: u8) -> Option<FrameKind> {
        match b {
            0 => Some(FrameKind::Data),
            1 => Some(FrameKind::EndStream),
            2 => Some(FrameKind::Stats),
            3 => Some(FrameKind::Shutdown),
            4 => Some(FrameKind::Ping),
            5 => Some(FrameKind::Pong),
            6 => Some(FrameKind::Hello),
            7 => Some(FrameKind::Resume),
            8 => Some(FrameKind::Busy),
            9 => Some(FrameKind::GoAway),
            _ => None,
        }
    }
}

/// One parsed frame. Control frames carry no samples.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    pub kind: FrameKind,
    /// Flag bits (see [`FLAG_WIDEBAND`]); zero on control frames.
    pub flags: u8,
    pub stream_id: u32,
    pub seq: u32,
    pub samples: Vec<Complex32>,
}

impl Frame {
    /// A DATA frame carrying one narrowband IQ chunk.
    pub fn data(stream_id: u32, seq: u32, samples: Vec<Complex32>) -> Frame {
        Frame {
            kind: FrameKind::Data,
            flags: 0,
            stream_id,
            seq,
            samples,
        }
    }

    /// A DATA frame carrying one *wideband* IQ chunk (see
    /// [`FLAG_WIDEBAND`]).
    pub fn data_wideband(stream_id: u32, seq: u32, samples: Vec<Complex32>) -> Frame {
        Frame {
            flags: FLAG_WIDEBAND,
            ..Frame::data(stream_id, seq, samples)
        }
    }

    /// An END_STREAM frame for `stream_id`.
    pub fn end_stream(stream_id: u32, seq: u32) -> Frame {
        Frame {
            kind: FrameKind::EndStream,
            flags: 0,
            stream_id,
            seq,
            samples: Vec::new(),
        }
    }

    /// A STATS control frame.
    pub fn stats() -> Frame {
        Frame {
            kind: FrameKind::Stats,
            flags: 0,
            stream_id: 0,
            seq: 0,
            samples: Vec::new(),
        }
    }

    /// A SHUTDOWN control frame.
    pub fn shutdown() -> Frame {
        Frame {
            kind: FrameKind::Shutdown,
            flags: 0,
            stream_id: 0,
            seq: 0,
            samples: Vec::new(),
        }
    }

    /// A control frame with no payload and no flags.
    fn control(kind: FrameKind, stream_id: u32, seq: u32) -> Frame {
        Frame {
            kind,
            flags: 0,
            stream_id,
            seq,
            samples: Vec::new(),
        }
    }

    /// A PING keepalive probe carrying `nonce` in the seq field.
    pub fn ping(nonce: u32) -> Frame {
        Frame::control(FrameKind::Ping, 0, nonce)
    }

    /// A PONG keepalive reply echoing `nonce`.
    pub fn pong(nonce: u32) -> Frame {
        Frame::control(FrameKind::Pong, 0, nonce)
    }

    /// A HELLO session-open request.
    pub fn hello() -> Frame {
        Frame::control(FrameKind::Hello, 0, 0)
    }

    /// A RESUME request for the session identified by `token`. The seq
    /// field carries `delivered` — how many session lines (uplink /
    /// end / ack / stats / error) the client has already received — so
    /// the daemon can replay exactly the lines lost with the dead
    /// connection and nothing else.
    pub fn resume(token: u32, delivered: u32) -> Frame {
        Frame::control(FrameKind::Resume, token, delivered)
    }

    /// The delivered-lines count a RESUME frame carries.
    pub fn delivered(&self) -> u32 {
        self.seq
    }

    /// A BUSY admission-control reject.
    pub fn busy() -> Frame {
        Frame::control(FrameKind::Busy, 0, 0)
    }

    /// A GOAWAY graceful-close notice.
    pub fn goaway() -> Frame {
        Frame::control(FrameKind::GoAway, 0, 0)
    }

    /// The session token a RESUME frame carries.
    pub fn session_token(&self) -> u32 {
        self.stream_id
    }

    /// The nonce a PING/PONG frame carries.
    pub fn nonce(&self) -> u32 {
        self.seq
    }

    /// Whether this DATA frame carries wideband IQ.
    pub fn is_wideband(&self) -> bool {
        self.flags & FLAG_WIDEBAND != 0
    }
}

/// Typed decode/transport error. Every variant has a stable short name
/// used by the protocol-error counters and the JSON error lines.
#[derive(Debug)]
pub enum WireError {
    /// Underlying socket/file error.
    Io(io::Error),
    /// The stream ended cleanly between frames.
    Eof,
    /// The first four bytes are not [`MAGIC`].
    BadMagic([u8; 4]),
    /// Unknown protocol version.
    BadVersion(u8),
    /// Unknown frame kind byte.
    BadKind(u8),
    /// Nonzero flags/reserved bytes (reserved for future extensions).
    BadFlags { flags: u8, reserved: u8 },
    /// A control frame declared a payload.
    ControlWithPayload { kind: FrameKind, samples: u32 },
    /// `sample_count` exceeds [`MAX_FRAME_SAMPLES`].
    Oversized { samples: u32 },
    /// The input ended mid-frame.
    Truncated { expected: usize, got: usize },
    /// The CRC-32 trailer does not match the header + payload.
    CrcMismatch { expected: u32, got: u32 },
}

impl WireError {
    /// Stable short name (counter label / JSON `error` field).
    pub fn name(&self) -> &'static str {
        match self {
            WireError::Io(_) => "io",
            WireError::Eof => "eof",
            WireError::BadMagic(_) => "bad-magic",
            WireError::BadVersion(_) => "bad-version",
            WireError::BadKind(_) => "bad-kind",
            WireError::BadFlags { .. } => "bad-flags",
            WireError::ControlWithPayload { .. } => "control-with-payload",
            WireError::Oversized { .. } => "oversized",
            WireError::Truncated { .. } => "truncated",
            WireError::CrcMismatch { .. } => "crc-mismatch",
        }
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "wire i/o error: {e}"),
            WireError::Eof => write!(f, "stream closed"),
            WireError::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            WireError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            WireError::BadKind(k) => write!(f, "unknown frame kind {k}"),
            WireError::BadFlags { flags, reserved } => {
                write!(f, "nonzero flags/reserved bytes ({flags:#x}/{reserved:#x})")
            }
            WireError::ControlWithPayload { kind, samples } => {
                write!(f, "{kind:?} frame declares {samples} payload samples")
            }
            WireError::Oversized { samples } => write!(
                f,
                "frame declares {samples} samples (max {MAX_FRAME_SAMPLES})"
            ),
            WireError::Truncated { expected, got } => {
                write!(f, "truncated frame: expected {expected} bytes, got {got}")
            }
            WireError::CrcMismatch { expected, got } => {
                write!(
                    f,
                    "crc mismatch: computed {expected:#010x}, frame carries {got:#010x}"
                )
            }
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        WireError::Io(e)
    }
}

/// IEEE CRC-32 lookup table (polynomial 0xEDB88320), built at compile
/// time so the hot ingest path is a byte-per-iteration table walk.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// IEEE CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Round-trips samples through the wire quantization (f32 → i16 → f32),
/// returning exactly what a receiver on the far end of the link would
/// see. Used by loopback tests to build the byte-identical reference
/// decode.
pub fn quantize(samples: &[Complex32]) -> Vec<Complex32> {
    let mut bytes = Vec::with_capacity(samples.len() * 4);
    // Writing into a Vec cannot fail.
    let _ = write_iq16(&mut bytes, samples, IQ_SCALE);
    read_iq16(&bytes[..], IQ_SCALE).unwrap_or_default()
}

/// Encodes a frame to bytes (header + payload + CRC trailer).
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    let n = frame.samples.len();
    let mut out = Vec::with_capacity(HEADER_LEN + 4 * n + CRC_LEN);
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    out.push(frame.kind.to_byte());
    out.push(frame.flags);
    out.push(0); // reserved
    out.extend_from_slice(&frame.stream_id.to_le_bytes());
    out.extend_from_slice(&frame.seq.to_le_bytes());
    out.extend_from_slice(&(n as u32).to_le_bytes());
    // Payload: the trace-file serializer, writing into the frame buffer.
    let _ = write_iq16(&mut out, &frame.samples, IQ_SCALE);
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Writes one frame to a stream.
pub fn write_frame<W: Write>(mut w: W, frame: &Frame) -> io::Result<()> {
    w.write_all(&encode_frame(frame))
}

/// Little-endian u32 at `off` (caller guarantees bounds via `get`).
fn read_u32(bytes: &[u8], off: usize) -> u32 {
    match bytes.get(off..off + 4) {
        Some(b) => u32::from_le_bytes([b[0], b[1], b[2], b[3]]),
        None => 0,
    }
}

/// Attempts to decode one frame from the start of `bytes`.
///
/// - `Ok(Some((frame, consumed)))` — a whole frame was parsed.
/// - `Ok(None)` — `bytes` is a valid prefix; more bytes are needed.
/// - `Err(_)` — the prefix can never become a valid frame.
pub fn decode_frame(bytes: &[u8]) -> Result<Option<(Frame, usize)>, WireError> {
    // Header fields are validated as soon as they are present, so garbage
    // is rejected without waiting for a (possibly absurd) payload length.
    let have = bytes.len();
    if have >= 4 {
        let magic = [bytes[0], bytes[1], bytes[2], bytes[3]];
        if magic != MAGIC {
            return Err(WireError::BadMagic(magic));
        }
    }
    if have >= 5 && bytes[4] != VERSION {
        return Err(WireError::BadVersion(bytes[4]));
    }
    let kind = if have >= 6 {
        match FrameKind::from_byte(bytes[5]) {
            Some(k) => Some(k),
            None => return Err(WireError::BadKind(bytes[5])),
        }
    } else {
        None
    };
    if have >= 8 {
        let flags = bytes[6];
        // Unknown flag bits are always rejected; the known WIDEBAND bit
        // is only meaningful on DATA frames. `kind` is Some here (it
        // parses at 6 bytes, and we have 8).
        let allowed = match kind {
            Some(FrameKind::Data) => KNOWN_FLAGS,
            _ => 0,
        };
        if flags & !allowed != 0 || bytes[7] != 0 {
            return Err(WireError::BadFlags {
                flags,
                reserved: bytes[7],
            });
        }
    }
    if have < HEADER_LEN {
        return Ok(None);
    }
    let stream_id = read_u32(bytes, 8);
    let seq = read_u32(bytes, 12);
    let sample_count = read_u32(bytes, 16);
    if sample_count as usize > MAX_FRAME_SAMPLES {
        return Err(WireError::Oversized {
            samples: sample_count,
        });
    }
    let kind = match kind {
        Some(k) => k,
        None => return Ok(None), // unreachable: have >= HEADER_LEN >= 6
    };
    if kind != FrameKind::Data && sample_count != 0 {
        return Err(WireError::ControlWithPayload {
            kind,
            samples: sample_count,
        });
    }
    let payload_len = 4 * sample_count as usize;
    let total = HEADER_LEN + payload_len + CRC_LEN;
    if have < total {
        return Ok(None);
    }
    let body = match bytes.get(..HEADER_LEN + payload_len) {
        Some(b) => b,
        None => return Ok(None),
    };
    let expected = crc32(body);
    let got = read_u32(bytes, HEADER_LEN + payload_len);
    if expected != got {
        return Err(WireError::CrcMismatch { expected, got });
    }
    let payload = body.get(HEADER_LEN..).unwrap_or(&[]);
    let samples = read_iq16(payload, IQ_SCALE).unwrap_or_default();
    Ok(Some((
        Frame {
            kind,
            flags: bytes[6],
            stream_id,
            seq,
            samples,
        },
        total,
    )))
}

/// Decodes one frame from a complete byte slice, requiring the slice to
/// contain exactly the frame (test/fuzz entry point). A short slice is
/// [`WireError::Truncated`].
pub fn decode_frame_exact(bytes: &[u8]) -> Result<Frame, WireError> {
    match decode_frame(bytes)? {
        Some((frame, consumed)) if consumed == bytes.len() => Ok(frame),
        Some((_, consumed)) => Err(WireError::Truncated {
            expected: consumed,
            got: bytes.len(),
        }),
        None => {
            // The prefix is valid but incomplete: report the total the
            // header promises (or the header itself when even that is
            // short).
            let expected = if bytes.len() >= HEADER_LEN {
                HEADER_LEN + 4 * read_u32(bytes, 16) as usize + CRC_LEN
            } else {
                HEADER_LEN
            };
            Err(WireError::Truncated {
                expected,
                got: bytes.len(),
            })
        }
    }
}

/// Incremental frame reader over any `Read` (a `TcpStream` in the
/// daemon). Keeps partial bytes across reads, so socket read timeouts
/// between chunks never lose framing.
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
}

/// Outcome of one [`FrameReader::poll`] call.
#[derive(Debug)]
pub enum ReadStep {
    /// A whole frame was parsed.
    Frame(Frame),
    /// No complete frame yet; call again after more bytes arrive.
    Pending,
    /// The peer closed the stream cleanly (no partial frame buffered).
    Eof,
}

impl FrameReader {
    /// A fresh reader with no buffered bytes.
    pub fn new() -> FrameReader {
        FrameReader::default()
    }

    /// Reads from `r` at most once and tries to parse one frame.
    ///
    /// A read error with kind `WouldBlock`/`TimedOut`/`Interrupted` is
    /// reported as [`ReadStep::Pending`] so a caller with a socket read
    /// timeout can check its shutdown flag between polls; any other
    /// error, malformed bytes, or a mid-frame EOF is a typed
    /// [`WireError`].
    pub fn poll<R: Read>(&mut self, r: &mut R) -> Result<ReadStep, WireError> {
        if let Some((frame, consumed)) = decode_frame(&self.buf)? {
            self.buf.drain(..consumed);
            return Ok(ReadStep::Frame(frame));
        }
        let mut chunk = [0u8; 16 * 1024];
        match r.read(&mut chunk) {
            Ok(0) => {
                if self.buf.is_empty() {
                    Ok(ReadStep::Eof)
                } else {
                    Err(WireError::Truncated {
                        expected: HEADER_LEN.max(self.buf.len() + 1),
                        got: self.buf.len(),
                    })
                }
            }
            Ok(n) => {
                self.buf.extend_from_slice(&chunk[..n.min(chunk.len())]);
                if let Some((frame, consumed)) = decode_frame(&self.buf)? {
                    self.buf.drain(..consumed);
                    Ok(ReadStep::Frame(frame))
                } else {
                    Ok(ReadStep::Pending)
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) =>
            {
                Ok(ReadStep::Pending)
            }
            Err(e) => Err(WireError::Io(e)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples(n: usize) -> Vec<Complex32> {
        (0..n)
            .map(|i| Complex32::new((i as f32 * 0.1).sin(), (i as f32 * 0.07).cos()))
            .collect()
    }

    #[test]
    fn crc32_known_vector() {
        // IEEE CRC-32 of "123456789" is 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn data_frame_roundtrip() {
        let s = samples(100);
        let f = Frame::data(7, 42, s.clone());
        let bytes = encode_frame(&f);
        assert_eq!(bytes.len(), HEADER_LEN + 400 + CRC_LEN);
        let back = decode_frame_exact(&bytes).unwrap();
        assert_eq!(back.kind, FrameKind::Data);
        assert_eq!(back.stream_id, 7);
        assert_eq!(back.seq, 42);
        assert_eq!(back.samples, quantize(&s));
    }

    #[test]
    fn wideband_data_frame_roundtrip() {
        let s = samples(16);
        let f = Frame::data_wideband(3, 5, s.clone());
        assert!(f.is_wideband());
        let back = decode_frame_exact(&encode_frame(&f)).unwrap();
        assert!(back.is_wideband());
        assert_eq!(back.flags, FLAG_WIDEBAND);
        assert_eq!(back.samples, quantize(&s));
        // The narrowband constructor stays flag-free.
        assert!(!Frame::data(3, 5, s).is_wideband());
    }

    #[test]
    fn control_frames_roundtrip() {
        for f in [
            Frame::end_stream(3, 9),
            Frame::stats(),
            Frame::shutdown(),
            Frame::ping(0xDEAD_BEEF),
            Frame::pong(0xDEAD_BEEF),
            Frame::hello(),
            Frame::resume(0x1234_5678, 0xCAFE_F00D),
            Frame::busy(),
            Frame::goaway(),
        ] {
            let bytes = encode_frame(&f);
            assert_eq!(bytes.len(), HEADER_LEN + CRC_LEN);
            assert_eq!(decode_frame_exact(&bytes).unwrap(), f);
        }
        assert_eq!(Frame::ping(7).nonce(), 7);
        assert_eq!(Frame::pong(7).nonce(), 7);
        assert_eq!(Frame::resume(42, 17).session_token(), 42);
        assert_eq!(Frame::resume(42, 17).delivered(), 17);
    }

    #[test]
    fn resilience_verbs_reject_payload_and_flags() {
        // Every new control verb refuses a payload…
        for f in [
            Frame::ping(1),
            Frame::pong(1),
            Frame::hello(),
            Frame::resume(9, 0),
            Frame::busy(),
            Frame::goaway(),
        ] {
            let mut bad = encode_frame(&f);
            bad[16] = 2; // declare 2 payload samples
            assert!(
                matches!(
                    decode_frame_exact(&bad),
                    Err(WireError::ControlWithPayload { .. })
                ),
                "{:?}",
                f.kind
            );
            // …and the WIDEBAND flag (DATA-only).
            let mut bad = encode_frame(&f);
            bad[6] = FLAG_WIDEBAND;
            assert!(
                matches!(decode_frame_exact(&bad), Err(WireError::BadFlags { .. })),
                "{:?}",
                f.kind
            );
        }
    }

    #[test]
    fn typed_errors_for_each_malformation() {
        let good = encode_frame(&Frame::data(1, 0, samples(8)));

        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(matches!(
            decode_frame_exact(&bad),
            Err(WireError::BadMagic(_))
        ));

        let mut bad = good.clone();
        bad[4] = 99;
        assert!(matches!(
            decode_frame_exact(&bad),
            Err(WireError::BadVersion(99))
        ));

        let mut bad = good.clone();
        bad[5] = 200;
        assert!(matches!(
            decode_frame_exact(&bad),
            Err(WireError::BadKind(200))
        ));

        // Unknown flag bit on a DATA frame.
        let mut bad = good.clone();
        bad[6] = 0x80;
        assert!(matches!(
            decode_frame_exact(&bad),
            Err(WireError::BadFlags { .. })
        ));

        // The WIDEBAND bit is DATA-only: rejected on control frames.
        let mut bad = encode_frame(&Frame::stats());
        bad[6] = FLAG_WIDEBAND;
        assert!(matches!(
            decode_frame_exact(&bad),
            Err(WireError::BadFlags { .. })
        ));

        // Nonzero reserved byte.
        let mut bad = good.clone();
        bad[7] = 1;
        assert!(matches!(
            decode_frame_exact(&bad),
            Err(WireError::BadFlags { .. })
        ));

        // Oversized sample count: rejected straight from the header.
        let mut bad = good.clone();
        bad[16..20].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_frame_exact(&bad),
            Err(WireError::Oversized { .. })
        ));

        // Control frame with a payload.
        let mut bad = encode_frame(&Frame::stats());
        bad[16] = 4;
        assert!(matches!(
            decode_frame_exact(&bad),
            Err(WireError::ControlWithPayload { .. })
        ));

        // Flipped payload byte: CRC mismatch.
        let mut bad = good.clone();
        bad[HEADER_LEN + 3] ^= 0xFF;
        assert!(matches!(
            decode_frame_exact(&bad),
            Err(WireError::CrcMismatch { .. })
        ));

        // Truncation at every prefix length is Pending or a typed error.
        for cut in 0..good.len() {
            match decode_frame(&good[..cut]) {
                Ok(None) | Err(_) => {}
                Ok(Some(_)) => panic!("prefix of {cut} bytes decoded a whole frame"),
            }
            assert!(decode_frame_exact(&good[..cut]).is_err());
        }
    }

    #[test]
    fn frame_reader_reassembles_split_frames() {
        let f1 = Frame::data(1, 0, samples(33));
        let f2 = Frame::end_stream(1, 1);
        let mut bytes = encode_frame(&f1);
        bytes.extend_from_slice(&encode_frame(&f2));
        // Feed the stream 7 bytes at a time.
        struct Trickle<'a>(&'a [u8], usize);
        impl Read for Trickle<'_> {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                let n = 7.min(self.0.len() - self.1).min(buf.len());
                buf[..n].copy_from_slice(&self.0[self.1..self.1 + n]);
                self.1 += n;
                Ok(n)
            }
        }
        let mut r = Trickle(&bytes, 0);
        let mut reader = FrameReader::new();
        let mut frames = Vec::new();
        loop {
            match reader.poll(&mut r).unwrap() {
                ReadStep::Frame(f) => frames.push(f),
                ReadStep::Pending => {}
                ReadStep::Eof => break,
            }
        }
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[0].samples.len(), 33);
        assert_eq!(frames[1], f2);
    }

    #[test]
    fn frame_reader_mid_frame_eof_is_truncated() {
        let bytes = encode_frame(&Frame::data(1, 0, samples(16)));
        let cut = &bytes[..bytes.len() - 2];
        let mut reader = FrameReader::new();
        let mut r = io::Cursor::new(cut);
        let err = loop {
            match reader.poll(&mut r) {
                Ok(ReadStep::Frame(_)) => panic!("truncated frame decoded"),
                Ok(ReadStep::Pending) => {}
                Ok(ReadStep::Eof) => panic!("mid-frame eof reported as clean"),
                Err(e) => break e,
            }
        };
        assert!(matches!(err, WireError::Truncated { .. }), "{err}");
    }

    #[test]
    fn quantize_is_idempotent() {
        let s = samples(64);
        let q = quantize(&s);
        assert_eq!(q, quantize(&q));
        assert_eq!(q.len(), s.len());
    }

    #[test]
    fn nan_inf_samples_encode_without_panicking() {
        let hostile = vec![
            Complex32::new(f32::NAN, 1.0),
            Complex32::new(f32::INFINITY, f32::NEG_INFINITY),
            Complex32::new(0.5, f32::NAN),
        ];
        let f = Frame::data(0, 0, hostile);
        let back = decode_frame_exact(&encode_frame(&f)).unwrap();
        assert_eq!(back.samples.len(), 3);
        for s in &back.samples {
            assert!(s.re.is_finite() && s.im.is_finite(), "{s:?}");
        }
    }
}
