//! Deterministic network-chaos harness: seeded socket-layer fault
//! injection for the gateway, the transport-level mirror of the decode
//! pipeline's `FaultPlan` (PR 3).
//!
//! A [`NetFaultPlan`] is a named, seeded list of [`NetFault`]
//! injectors; [`ChaosProxy`] applies it to live connections as an
//! in-process TCP proxy sitting between a client and the daemon:
//!
//! ```text
//! ResilientClient ──► ChaosProxy (faults on client→daemon bytes) ──► Gateway
//!                 ◄──────────── clean copy ◄─────────────────────────
//! ```
//!
//! The injectors come in two flavors:
//!
//! - **Content-transparent** ([`NetFault::SplitWrites`],
//!   [`NetFault::CoalesceReads`], [`NetFault::Stall`]): the forwarded
//!   byte stream is identical, only its segmentation/timing changes —
//!   these stress [`crate::wire::FrameReader`]'s incremental parse and
//!   must never change the uplink transcript.
//! - **Destructive** ([`NetFault::DisconnectAt`],
//!   [`NetFault::BitFlip`]): the connection dies (or a frame is
//!   corrupted, which the daemon's CRC turns into a connection-closing
//!   wire error). A [`crate::client::ResilientClient`] recovers via
//!   reconnect + RESUME + resend; the soak test proves the recovered
//!   transcript is byte-identical to a clean run. Destructive faults
//!   are **one-shot**: armed only on the proxy's first connection, so
//!   the reconnect always lands on a clean path and recovery is
//!   guaranteed rather than probabilistic.
//!
//! Everything is deterministic given the plan seed: offsets and sizes
//! come from an LCG over the seed, never the clock or the OS RNG.

use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// How often proxy pumps wake up to check the shutdown flag.
const PUMP_POLL: Duration = Duration::from_millis(25);

/// One socket-layer fault injector (applied to client→daemon bytes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetFault {
    /// Forward in bursts of at most `max_burst` bytes, so the daemon's
    /// reader sees partial frames on every poll (partial-write /
    /// fragmented-read chaos). Content-transparent.
    SplitWrites { max_burst: usize },
    /// Hold up to `hold` bytes before forwarding (flushing on idle and
    /// EOF), so many frames arrive in one read. Content-transparent.
    CoalesceReads { hold: usize },
    /// Pause forwarding for `millis` once, when the byte counter
    /// crosses `at_byte`. Content-transparent (timing only).
    Stall { at_byte: u64, millis: u64 },
    /// Close the connection (both directions) after forwarding exactly
    /// `byte` bytes — almost always mid-frame. Destructive, one-shot.
    DisconnectAt { byte: u64 },
    /// XOR `0x01` into the byte at absolute offset `byte` — the
    /// daemon's frame CRC catches it as a wire error. Destructive,
    /// one-shot.
    BitFlip { byte: u64 },
}

/// A named, seeded chaos scenario: the fault list one [`ChaosProxy`]
/// applies.
#[derive(Debug, Clone)]
pub struct NetFaultPlan {
    /// Scenario label (stable across seeds; used in reports and JSON).
    pub name: &'static str,
    /// The seed the offsets/sizes were derived from.
    pub seed: u64,
    /// Injectors, applied together on the client→daemon direction.
    pub faults: Vec<NetFault>,
    /// Whether a reconnect+resend client is guaranteed to recover a
    /// byte-identical transcript under this plan (true for every
    /// matrix entry; destructive faults are one-shot).
    pub recoverable: bool,
}

fn lcg(x: &mut u64) -> u64 {
    *x = x
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *x >> 33
}

impl NetFaultPlan {
    /// No faults: the proxy forwards verbatim (the parity baseline).
    pub fn clean() -> NetFaultPlan {
        NetFaultPlan {
            name: "clean",
            seed: 0,
            faults: Vec::new(),
            recoverable: true,
        }
    }

    /// The standard chaos matrix for `seed`: every injector alone plus
    /// two combinations, with seeded offsets landing mid-stream
    /// (roughly within the first 64 KiB, so even short runs hit them).
    pub fn matrix(seed: u64) -> Vec<NetFaultPlan> {
        let mut s = seed ^ 0xd6e8_feb8_6659_fd93;
        let mut offset = |lo: u64, hi: u64| lo + lcg(&mut s) % (hi - lo);
        let plan = |name, faults| NetFaultPlan {
            name,
            seed,
            faults,
            recoverable: true,
        };
        vec![
            NetFaultPlan::clean(),
            plan(
                "split-writes",
                vec![NetFault::SplitWrites {
                    max_burst: 1 + offset(0, 96) as usize,
                }],
            ),
            plan(
                "coalesced-reads",
                vec![NetFault::CoalesceReads {
                    hold: 4096 + offset(0, 8192) as usize,
                }],
            ),
            plan(
                "stall",
                vec![NetFault::Stall {
                    at_byte: offset(1024, 65_536),
                    millis: 60,
                }],
            ),
            plan(
                "disconnect-mid-frame",
                vec![NetFault::DisconnectAt {
                    byte: offset(1024, 65_536),
                }],
            ),
            plan(
                "bitflip",
                vec![NetFault::BitFlip {
                    byte: offset(1024, 65_536),
                }],
            ),
            plan(
                "split+disconnect",
                vec![
                    NetFault::SplitWrites {
                        max_burst: 1 + offset(0, 32) as usize,
                    },
                    NetFault::DisconnectAt {
                        byte: offset(1024, 65_536),
                    },
                ],
            ),
            plan(
                "coalesce+bitflip",
                vec![
                    NetFault::CoalesceReads {
                        hold: 2048 + offset(0, 4096) as usize,
                    },
                    NetFault::BitFlip {
                        byte: offset(1024, 65_536),
                    },
                ],
            ),
        ]
    }

    /// Whether the plan contains a destructive (one-shot) injector.
    pub fn is_destructive(&self) -> bool {
        self.faults
            .iter()
            .any(|f| matches!(f, NetFault::DisconnectAt { .. } | NetFault::BitFlip { .. }))
    }
}

/// Live counters of one proxy instance.
#[derive(Debug, Default)]
pub struct ProxyStats {
    /// Connections proxied.
    pub connections: tnb_metrics::SharedCounter,
    /// Client→daemon bytes forwarded (post-fault).
    pub bytes_up: tnb_metrics::SharedCounter,
    /// Daemon→client bytes forwarded.
    pub bytes_down: tnb_metrics::SharedCounter,
    /// Destructive faults fired (bit flips + forced disconnects).
    pub faults_fired: tnb_metrics::SharedCounter,
}

/// An in-process TCP proxy applying a [`NetFaultPlan`] between a client
/// and a daemon. Accepts any number of sequential connections (a
/// reconnecting client comes back through the proxy); destructive
/// faults fire on the first connection only.
pub struct ChaosProxy {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    stats: Arc<ProxyStats>,
    accept: Option<JoinHandle<()>>,
}

impl ChaosProxy {
    /// Binds an ephemeral local port and proxies every connection to
    /// `upstream` under `plan`.
    pub fn spawn<A: ToSocketAddrs>(upstream: A, plan: NetFaultPlan) -> io::Result<ChaosProxy> {
        let upstream = upstream
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "no upstream address"))?;
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(ProxyStats::default());
        let accept = {
            let shutdown = Arc::clone(&shutdown);
            let stats = Arc::clone(&stats);
            thread::spawn(move || proxy_accept_loop(listener, upstream, plan, stats, shutdown))
        };
        Ok(ChaosProxy {
            local_addr,
            shutdown,
            stats,
            accept: Some(accept),
        })
    }

    /// The proxy's listen address (point clients here).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Counter snapshot: (connections, bytes_up, bytes_down,
    /// faults_fired).
    pub fn stats(&self) -> (u64, u64, u64, u64) {
        (
            self.stats.connections.get(),
            self.stats.bytes_up.get(),
            self.stats.bytes_down.get(),
            self.stats.faults_fired.get(),
        )
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

fn proxy_accept_loop(
    listener: TcpListener,
    upstream: SocketAddr,
    plan: NetFaultPlan,
    stats: Arc<ProxyStats>,
    shutdown: Arc<AtomicBool>,
) {
    // Destructive (one-shot) faults arm on the first connection only:
    // the post-reconnect path is clean, so recovery is guaranteed.
    let armed = Arc::new(AtomicBool::new(true));
    let mut pumps: Vec<JoinHandle<()>> = Vec::new();
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((client, _)) => {
                let Ok(daemon) = TcpStream::connect(upstream) else {
                    // Upstream gone (daemon shut down): drop the client.
                    continue;
                };
                stats.connections.inc();
                let one_shot = armed.swap(false, Ordering::SeqCst);
                let faults: Vec<NetFault> = plan
                    .faults
                    .iter()
                    .copied()
                    .filter(|f| {
                        one_shot
                            || !matches!(
                                f,
                                NetFault::DisconnectAt { .. }
                                    | NetFault::BitFlip { .. }
                                    | NetFault::Stall { .. }
                            )
                    })
                    .collect();
                let (c_up, d_up) = (client, daemon);
                let Ok(c_down) = c_up.try_clone() else {
                    continue;
                };
                let Ok(d_down) = d_up.try_clone() else {
                    continue;
                };
                {
                    let stats = Arc::clone(&stats);
                    let shutdown = Arc::clone(&shutdown);
                    pumps.push(thread::spawn(move || {
                        pump_faulted(c_up, d_up, &faults, &stats, &shutdown);
                    }));
                }
                {
                    let stats = Arc::clone(&stats);
                    let shutdown = Arc::clone(&shutdown);
                    pumps.push(thread::spawn(move || {
                        pump_clean(d_down, c_down, &stats, &shutdown);
                    }));
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                let mut live = Vec::with_capacity(pumps.len());
                for h in pumps {
                    if h.is_finished() {
                        let _ = h.join();
                    } else {
                        live.push(h);
                    }
                }
                pumps = live;
                thread::sleep(PUMP_POLL);
            }
            Err(_) => thread::sleep(PUMP_POLL),
        }
    }
    for h in pumps {
        let _ = h.join();
    }
}

/// Forwards daemon→client bytes verbatim.
fn pump_clean(mut src: TcpStream, mut dst: TcpStream, stats: &ProxyStats, shutdown: &AtomicBool) {
    let _ = src.set_read_timeout(Some(PUMP_POLL));
    let mut buf = [0u8; 8192];
    loop {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        match src.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                if dst.write_all(&buf[..n]).is_err() {
                    break;
                }
                stats.bytes_down.add(n as u64);
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) => {}
            Err(_) => break,
        }
    }
    let _ = dst.shutdown(Shutdown::Write);
}

/// Forwards client→daemon bytes through the fault list.
fn pump_faulted(
    mut src: TcpStream,
    mut dst: TcpStream,
    faults: &[NetFault],
    stats: &ProxyStats,
    shutdown: &AtomicBool,
) {
    let _ = src.set_read_timeout(Some(PUMP_POLL));
    let mut buf = [0u8; 8192];
    // Absolute byte offset of the next byte to leave the proxy.
    let mut sent: u64 = 0;
    // CoalesceReads holding buffer (empty unless the fault is present).
    let mut held: Vec<u8> = Vec::new();
    let hold_cap = faults.iter().find_map(|f| match f {
        NetFault::CoalesceReads { hold } => Some(*hold),
        _ => None,
    });
    let max_burst = faults.iter().find_map(|f| match f {
        NetFault::SplitWrites { max_burst } => Some((*max_burst).max(1)),
        _ => None,
    });
    let mut stall = faults.iter().find_map(|f| match f {
        NetFault::Stall { at_byte, millis } => Some((*at_byte, *millis)),
        _ => None,
    });
    let disconnect_at = faults.iter().find_map(|f| match f {
        NetFault::DisconnectAt { byte } => Some(*byte),
        _ => None,
    });
    let mut flip_at = faults.iter().find_map(|f| match f {
        NetFault::BitFlip { byte } => Some(*byte),
        _ => None,
    });
    'pump: loop {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        let chunk: Vec<u8> = match src.read(&mut buf) {
            Ok(0) => {
                // EOF: flush anything coalesced, then half-close.
                if !held.is_empty()
                    && forward(
                        &mut dst,
                        &mut held,
                        &mut sent,
                        max_burst,
                        &mut stall,
                        &mut flip_at,
                        disconnect_at,
                        stats,
                    )
                    .is_err()
                {
                    break;
                }
                break;
            }
            Ok(n) => buf[..n].to_vec(),
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                // Idle: flush the coalesce buffer so a request/reply
                // handshake (HELLO, PING) can't deadlock behind it.
                if !held.is_empty()
                    && forward(
                        &mut dst,
                        &mut held,
                        &mut sent,
                        max_burst,
                        &mut stall,
                        &mut flip_at,
                        disconnect_at,
                        stats,
                    )
                    .is_err()
                {
                    break;
                }
                continue;
            }
            Err(_) => break,
        };
        held.extend_from_slice(&chunk);
        if let Some(cap) = hold_cap {
            if held.len() < cap {
                continue;
            }
        }
        if forward(
            &mut dst,
            &mut held,
            &mut sent,
            max_burst,
            &mut stall,
            &mut flip_at,
            disconnect_at,
            stats,
        )
        .is_err()
        {
            break 'pump;
        }
    }
    let _ = dst.shutdown(Shutdown::Write);
    let _ = src.shutdown(Shutdown::Read);
}

/// Drains `held` into `dst`, applying stall, bit-flip, burst-split, and
/// the forced disconnect. Errors mean the connection is done.
// One flat injector pipeline beats a struct invented only to carry it.
#[allow(clippy::too_many_arguments)]
fn forward(
    dst: &mut TcpStream,
    held: &mut Vec<u8>,
    sent: &mut u64,
    max_burst: Option<usize>,
    stall: &mut Option<(u64, u64)>,
    flip_at: &mut Option<u64>,
    disconnect_at: Option<u64>,
    stats: &ProxyStats,
) -> io::Result<()> {
    let mut data = std::mem::take(held);
    // Bit flip: XOR the byte at its absolute stream offset.
    if let Some(at) = *flip_at {
        if at >= *sent && at < *sent + data.len() as u64 {
            data[(at - *sent) as usize] ^= 0x01;
            *flip_at = None;
            stats.faults_fired.inc();
        }
    }
    // Forced disconnect: truncate at the boundary, ship the prefix,
    // then kill the connection mid-frame.
    let mut kill_after = None;
    if let Some(at) = disconnect_at {
        if at < *sent + data.len() as u64 {
            data.truncate((at.saturating_sub(*sent)) as usize);
            kill_after = Some(());
        }
    }
    let mut off = 0usize;
    while off < data.len() {
        if let Some((at, millis)) = *stall {
            if at >= *sent && at < *sent + data.len() as u64 {
                thread::sleep(Duration::from_millis(millis));
                *stall = None;
            }
        }
        let burst = max_burst.unwrap_or(data.len() - off).min(data.len() - off);
        dst.write_all(&data[off..off + burst])?;
        *sent += burst as u64;
        stats.bytes_up.add(burst as u64);
        off += burst;
    }
    if kill_after.is_some() {
        stats.faults_fired.inc();
        let _ = dst.shutdown(Shutdown::Both);
        return Err(io::Error::new(
            io::ErrorKind::ConnectionAborted,
            "injected disconnect",
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_is_deterministic_and_covers_every_injector() {
        let a = NetFaultPlan::matrix(42);
        let b = NetFaultPlan::matrix(42);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.faults, y.faults, "same seed, same plan: {}", x.name);
        }
        let names: Vec<&str> = a.iter().map(|p| p.name).collect();
        assert_eq!(
            names,
            [
                "clean",
                "split-writes",
                "coalesced-reads",
                "stall",
                "disconnect-mid-frame",
                "bitflip",
                "split+disconnect",
                "coalesce+bitflip"
            ]
        );
        // Different seeds move the offsets (spot-check the disconnect).
        let c = NetFaultPlan::matrix(43);
        assert_ne!(a[4].faults, c[4].faults);
        assert!(a[0].faults.is_empty() && !a[0].is_destructive());
        assert!(a[4].is_destructive() && a[5].is_destructive());
        assert!(!a[1].is_destructive() && !a[3].is_destructive());
        assert!(a.iter().all(|p| p.recoverable));
    }

    #[test]
    fn seeded_offsets_stay_in_the_early_stream_window() {
        for seed in 0..32 {
            for plan in NetFaultPlan::matrix(seed) {
                for f in &plan.faults {
                    match *f {
                        NetFault::SplitWrites { max_burst } => {
                            assert!((1..=97).contains(&max_burst))
                        }
                        NetFault::CoalesceReads { hold } => assert!((2048..16384).contains(&hold)),
                        NetFault::Stall { at_byte, millis } => {
                            assert!((1024..65_536).contains(&at_byte) && millis > 0)
                        }
                        NetFault::DisconnectAt { byte } | NetFault::BitFlip { byte } => {
                            assert!((1024..65_536).contains(&byte))
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn proxy_forwards_bytes_verbatim_without_faults() {
        // echo upstream: one connection, echoes everything back.
        let upstream = TcpListener::bind("127.0.0.1:0").expect("bind upstream");
        let up_addr = upstream.local_addr().expect("upstream addr");
        let echo = thread::spawn(move || {
            let (mut s, _) = upstream.accept().expect("accept");
            let mut buf = [0u8; 1024];
            loop {
                match s.read(&mut buf) {
                    Ok(0) | Err(_) => break,
                    Ok(n) => {
                        if s.write_all(&buf[..n]).is_err() {
                            break;
                        }
                    }
                }
            }
        });
        let proxy = ChaosProxy::spawn(up_addr, NetFaultPlan::clean()).expect("proxy");
        let mut sock = TcpStream::connect(proxy.local_addr()).expect("connect");
        let payload: Vec<u8> = (0..=255u8).cycle().take(4096).collect();
        sock.write_all(&payload).expect("write");
        let mut got = vec![0u8; payload.len()];
        sock.read_exact(&mut got).expect("read back");
        assert_eq!(got, payload, "clean proxy is byte-transparent");
        drop(sock);
        echo.join().expect("echo thread");
        let (conns, up, down, fired) = proxy.stats();
        assert_eq!(conns, 1);
        assert!(up >= 4096 && down >= 4096);
        assert_eq!(fired, 0);
    }

    #[test]
    fn proxy_disconnects_mid_stream_exactly_at_the_seeded_byte() {
        let upstream = TcpListener::bind("127.0.0.1:0").expect("bind upstream");
        let up_addr = upstream.local_addr().expect("upstream addr");
        let sink = thread::spawn(move || {
            let (mut s, _) = upstream.accept().expect("accept");
            let mut total = 0usize;
            let mut buf = [0u8; 1024];
            loop {
                match s.read(&mut buf) {
                    Ok(0) | Err(_) => break,
                    Ok(n) => total += n,
                }
            }
            total
        });
        let plan = NetFaultPlan {
            name: "cut",
            seed: 0,
            faults: vec![NetFault::DisconnectAt { byte: 1000 }],
            recoverable: true,
        };
        let proxy = ChaosProxy::spawn(up_addr, plan).expect("proxy");
        let mut sock = TcpStream::connect(proxy.local_addr()).expect("connect");
        // Writes beyond the cut may appear to succeed locally; the far
        // side must see exactly the first 1000 bytes.
        for _ in 0..8 {
            if sock.write_all(&[0xAB; 512]).is_err() {
                break;
            }
            thread::sleep(Duration::from_millis(10));
        }
        let delivered = sink.join().expect("sink thread");
        assert_eq!(delivered, 1000, "stream cut exactly at the fault offset");
        let (_, up, _, fired) = proxy.stats();
        assert_eq!(up, 1000);
        assert_eq!(fired, 1);
    }
}
