//! Loopback / load-generator client for the gateway wire protocol.
//!
//! Speaks the framed IQ protocol of [`crate::wire`] over a plain
//! [`TcpStream`]: chunked DATA frames per stream, END_STREAM / STATS /
//! SHUTDOWN control verbs, and a background reader collecting the
//! daemon's JSON uplink lines. The traffic synthesis that drives this
//! client lives in `tnb-sim` (the layer above); this module is only the
//! socket plumbing, so integration tests and the CLI can reuse it.

use std::collections::BTreeMap;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{Shutdown, TcpStream, ToSocketAddrs};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use crate::wire::{encode_frame, quantize, Frame, MAX_FRAME_SAMPLES};
use tnb_dsp::Complex32;

/// Default DATA-frame chunk length in samples (64 ms at 1 Msps — large
/// enough to amortize framing, small enough to exercise chunk-boundary
/// packet reassembly).
pub const DEFAULT_CHUNK: usize = 65_536;

/// A connected gateway client. Writes frames on the caller's thread;
/// a background thread accumulates every uplink line the daemon sends.
pub struct GatewayClient {
    sock: TcpStream,
    reader: Option<JoinHandle<Vec<String>>>,
    next_seq: BTreeMap<u32, u32>,
}

impl GatewayClient {
    /// Connects, retrying until `timeout` (the daemon binds and starts
    /// accepting asynchronously). The deadline is control-plane only —
    /// nothing on the decode path ever reads the wall clock.
    pub fn connect<A: ToSocketAddrs + Clone>(addr: A, timeout: Duration) -> io::Result<Self> {
        // tnb-lint: allow(TNB-DET01) -- control-plane connect deadline, never on the decode path
        let deadline = Instant::now() + timeout;
        let sock = loop {
            match TcpStream::connect(addr.clone()) {
                Ok(s) => break s,
                Err(e) => {
                    // tnb-lint: allow(TNB-DET01) -- control-plane connect deadline, never on the decode path
                    if Instant::now() >= deadline {
                        return Err(e);
                    }
                    thread::sleep(Duration::from_millis(20));
                }
            }
        };
        sock.set_nodelay(true).ok();
        let read_half = sock.try_clone()?;
        let reader = thread::spawn(move || {
            let mut lines = Vec::new();
            for line in BufReader::new(read_half).lines() {
                match line {
                    Ok(l) => lines.push(l),
                    Err(_) => break,
                }
            }
            lines
        });
        Ok(GatewayClient {
            sock,
            reader: Some(reader),
            next_seq: BTreeMap::new(),
        })
    }

    /// Streams `samples` as DATA frames of `chunk_len` samples on
    /// `stream_id`, quantizing through the shared wire quantizer (so a
    /// local reference decode over [`quantize`]d samples sees exactly
    /// the bytes the daemon sees). Returns the number of frames sent.
    pub fn send_samples(
        &mut self,
        stream_id: u32,
        samples: &[Complex32],
        chunk_len: usize,
    ) -> io::Result<u32> {
        self.send_samples_mode(stream_id, samples, chunk_len, false)
    }

    /// Like [`Self::send_samples`] but marks every DATA frame with the
    /// WIDEBAND flag, so the daemon channelizes the stream into the 8
    /// LoRa uplink channels before decoding.
    pub fn send_samples_wideband(
        &mut self,
        stream_id: u32,
        samples: &[Complex32],
        chunk_len: usize,
    ) -> io::Result<u32> {
        self.send_samples_mode(stream_id, samples, chunk_len, true)
    }

    fn send_samples_mode(
        &mut self,
        stream_id: u32,
        samples: &[Complex32],
        chunk_len: usize,
        wideband: bool,
    ) -> io::Result<u32> {
        let chunk_len = chunk_len.clamp(1, MAX_FRAME_SAMPLES);
        let mut sent = 0;
        for chunk in samples.chunks(chunk_len) {
            let seq = self.bump_seq(stream_id);
            let frame = if wideband {
                Frame::data_wideband(stream_id, seq, chunk.to_vec())
            } else {
                Frame::data(stream_id, seq, chunk.to_vec())
            };
            self.sock.write_all(&encode_frame(&frame))?;
            sent += 1;
        }
        self.sock.flush()?;
        Ok(sent)
    }

    /// Sends one raw, already-built frame (fault-injection tests use
    /// this to ship deliberately corrupted byte strings).
    pub fn send_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.sock.write_all(bytes)?;
        self.sock.flush()
    }

    /// END_STREAM: the daemon flushes the stream's receiver and writes
    /// its end-of-stream report line.
    pub fn end_stream(&mut self, stream_id: u32) -> io::Result<()> {
        let seq = self.bump_seq(stream_id);
        self.sock
            .write_all(&encode_frame(&Frame::end_stream(stream_id, seq)))?;
        self.sock.flush()
    }

    /// STATS: the daemon replies with one stats JSON line.
    pub fn request_stats(&mut self) -> io::Result<()> {
        self.sock.write_all(&encode_frame(&Frame::stats()))?;
        self.sock.flush()
    }

    /// SHUTDOWN: asks the whole daemon to shut down gracefully.
    pub fn request_shutdown(&mut self) -> io::Result<()> {
        self.sock.write_all(&encode_frame(&Frame::shutdown()))?;
        self.sock.flush()
    }

    /// Closes the write half and returns every JSON line the daemon
    /// sent (the daemon flushes end-of-stream lines on EOF, so this
    /// collects a complete transcript).
    pub fn finish(mut self) -> Vec<String> {
        let _ = self.sock.shutdown(Shutdown::Write);
        match self.reader.take() {
            Some(h) => h.join().unwrap_or_default(),
            None => Vec::new(),
        }
    }

    fn bump_seq(&mut self, stream_id: u32) -> u32 {
        let seq = self.next_seq.entry(stream_id).or_insert(0);
        let cur = *seq;
        *seq = seq.wrapping_add(1);
        cur
    }
}

impl Drop for GatewayClient {
    fn drop(&mut self) {
        let _ = self.sock.shutdown(Shutdown::Both);
        if let Some(h) = self.reader.take() {
            let _ = h.join();
        }
    }
}

/// Quantizes `samples` exactly as the wire does end-to-end — the
/// reference for byte-identity checks against a direct
/// [`tnb_core::StreamingReceiver`] decode.
pub fn wire_reference(samples: &[Complex32]) -> Vec<Complex32> {
    quantize(samples)
}
