//! Loopback / load-generator clients for the gateway wire protocol.
//!
//! Two clients share the framed IQ protocol of [`crate::wire`] over a
//! plain [`TcpStream`]:
//!
//! - [`GatewayClient`] — the minimal fire-and-forget sender: chunked
//!   DATA frames per stream, END_STREAM / STATS / SHUTDOWN verbs, and a
//!   background reader collecting the daemon's JSON uplink lines.
//! - [`ResilientClient`] — the fault-tolerant sender behind
//!   `gateway send`: HELLO/RESUME session handshake, seeded-jitter
//!   exponential-backoff reconnect, and a bounded
//!   resend-from-last-acked frame buffer, so an uplink survives a
//!   daemon bounce (or a chaos-proxy disconnect) with a byte-identical
//!   transcript whenever the buffer still holds the unacked tail.
//!
//! The traffic synthesis that drives these clients lives in `tnb-sim`
//! (the layer above); this module is only the socket plumbing, so
//! integration tests and the CLI can reuse it.

use std::collections::{BTreeMap, VecDeque};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use crate::wire::{encode_frame, quantize, Frame, MAX_FRAME_SAMPLES};
use tnb_dsp::Complex32;

/// Default DATA-frame chunk length in samples (64 ms at 1 Msps — large
/// enough to amortize framing, small enough to exercise chunk-boundary
/// packet reassembly).
pub const DEFAULT_CHUNK: usize = 65_536;

/// Dials `addr`, retrying with exponential backoff (10 ms doubling to a
/// 320 ms ceiling, clipped to the remaining deadline) until `timeout`.
/// The backoff keeps a daemon that is still binding from being
/// hammered by a hot connect loop.
fn connect_with_backoff<A: ToSocketAddrs + Clone>(
    addr: A,
    timeout: Duration,
) -> io::Result<TcpStream> {
    // tnb-lint: allow(TNB-DET01) -- control-plane connect deadline, never on the decode path
    let deadline = Instant::now() + timeout;
    let mut delay = Duration::from_millis(10);
    loop {
        match TcpStream::connect(addr.clone()) {
            Ok(s) => return Ok(s),
            Err(e) => {
                // tnb-lint: allow(TNB-DET01) -- control-plane connect deadline, never on the decode path
                let now = Instant::now();
                if now >= deadline {
                    return Err(e);
                }
                thread::sleep(delay.min(deadline - now));
                delay = (delay * 2).min(Duration::from_millis(320));
            }
        }
    }
}

/// A connected gateway client. Writes frames on the caller's thread;
/// a background thread accumulates every uplink line the daemon sends.
pub struct GatewayClient {
    sock: TcpStream,
    reader: Option<JoinHandle<Vec<String>>>,
    next_seq: BTreeMap<u32, u32>,
}

impl GatewayClient {
    /// Connects, retrying with backoff until `timeout` (the daemon
    /// binds and starts accepting asynchronously). The deadline is
    /// control-plane only — nothing on the decode path ever reads the
    /// wall clock.
    pub fn connect<A: ToSocketAddrs + Clone>(addr: A, timeout: Duration) -> io::Result<Self> {
        let sock = connect_with_backoff(addr, timeout)?;
        sock.set_nodelay(true).ok();
        let read_half = sock.try_clone()?;
        let reader = thread::spawn(move || {
            let mut lines = Vec::new();
            for line in BufReader::new(read_half).lines() {
                match line {
                    Ok(l) => lines.push(l),
                    Err(_) => break,
                }
            }
            lines
        });
        Ok(GatewayClient {
            sock,
            reader: Some(reader),
            next_seq: BTreeMap::new(),
        })
    }

    /// Streams `samples` as DATA frames of `chunk_len` samples on
    /// `stream_id`, quantizing through the shared wire quantizer (so a
    /// local reference decode over [`quantize`]d samples sees exactly
    /// the bytes the daemon sees). Returns the number of frames sent.
    pub fn send_samples(
        &mut self,
        stream_id: u32,
        samples: &[Complex32],
        chunk_len: usize,
    ) -> io::Result<u32> {
        self.send_samples_mode(stream_id, samples, chunk_len, false)
    }

    /// Like [`Self::send_samples`] but marks every DATA frame with the
    /// WIDEBAND flag, so the daemon channelizes the stream into the 8
    /// LoRa uplink channels before decoding.
    pub fn send_samples_wideband(
        &mut self,
        stream_id: u32,
        samples: &[Complex32],
        chunk_len: usize,
    ) -> io::Result<u32> {
        self.send_samples_mode(stream_id, samples, chunk_len, true)
    }

    fn send_samples_mode(
        &mut self,
        stream_id: u32,
        samples: &[Complex32],
        chunk_len: usize,
        wideband: bool,
    ) -> io::Result<u32> {
        let chunk_len = chunk_len.clamp(1, MAX_FRAME_SAMPLES);
        let mut sent = 0;
        for chunk in samples.chunks(chunk_len) {
            let seq = self.bump_seq(stream_id);
            let frame = if wideband {
                Frame::data_wideband(stream_id, seq, chunk.to_vec())
            } else {
                Frame::data(stream_id, seq, chunk.to_vec())
            };
            self.sock.write_all(&encode_frame(&frame))?;
            sent += 1;
        }
        self.sock.flush()?;
        Ok(sent)
    }

    /// Sends one raw, already-built frame (fault-injection tests use
    /// this to ship deliberately corrupted byte strings).
    pub fn send_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.sock.write_all(bytes)?;
        self.sock.flush()
    }

    /// END_STREAM: the daemon flushes the stream's receiver and writes
    /// its end-of-stream report line.
    pub fn end_stream(&mut self, stream_id: u32) -> io::Result<()> {
        let seq = self.bump_seq(stream_id);
        self.sock
            .write_all(&encode_frame(&Frame::end_stream(stream_id, seq)))?;
        self.sock.flush()
    }

    /// STATS: the daemon replies with one stats JSON line.
    pub fn request_stats(&mut self) -> io::Result<()> {
        self.sock.write_all(&encode_frame(&Frame::stats()))?;
        self.sock.flush()
    }

    /// SHUTDOWN: asks the whole daemon to shut down gracefully.
    pub fn request_shutdown(&mut self) -> io::Result<()> {
        self.sock.write_all(&encode_frame(&Frame::shutdown()))?;
        self.sock.flush()
    }

    /// Closes the write half and returns every JSON line the daemon
    /// sent (the daemon flushes end-of-stream lines on EOF, so this
    /// collects a complete transcript).
    pub fn finish(mut self) -> Vec<String> {
        let _ = self.sock.shutdown(Shutdown::Write);
        match self.reader.take() {
            Some(h) => h.join().unwrap_or_default(),
            None => Vec::new(),
        }
    }

    fn bump_seq(&mut self, stream_id: u32) -> u32 {
        let seq = self.next_seq.entry(stream_id).or_insert(0);
        let cur = *seq;
        *seq = seq.wrapping_add(1);
        cur
    }
}

impl Drop for GatewayClient {
    fn drop(&mut self) {
        let _ = self.sock.shutdown(Shutdown::Both);
        if let Some(h) = self.reader.take() {
            let _ = h.join();
        }
    }
}

/// Quantizes `samples` exactly as the wire does end-to-end — the
/// reference for byte-identity checks against a direct
/// [`tnb_core::StreamingReceiver`] decode.
pub fn wire_reference(samples: &[Complex32]) -> Vec<Complex32> {
    quantize(samples)
}

// ---------------------------------------------------------------------
// Resilient client
// ---------------------------------------------------------------------

/// Knobs of the [`ResilientClient`] reconnect machinery. Everything is
/// deterministic given `seed`: the backoff jitter comes from a seeded
/// LCG, never the clock or the OS RNG.
#[derive(Debug, Clone, Copy)]
pub struct ResilientConfig {
    /// Per-dial connect deadline (also used for the first connect).
    pub connect_timeout: Duration,
    /// Reconnect attempts per failed send before giving up.
    pub max_reconnects: u32,
    /// Backoff base: attempt `n` sleeps `base * 2^n` (plus jitter).
    pub base_delay: Duration,
    /// Backoff ceiling.
    pub max_delay: Duration,
    /// Jitter seed (LCG); same seed → same delay schedule.
    pub seed: u64,
    /// Resend-buffer bound, in frames. Older unacked frames beyond it
    /// are evicted (counted in [`ResilientStats::resend_evicted`]) —
    /// past that point a resume can no longer guarantee a gap-free
    /// stream.
    pub resend_frames: usize,
    /// How long to wait for the daemon's `hello` / `resumed` / `pong`
    /// reply lines.
    pub reply_timeout: Duration,
}

impl Default for ResilientConfig {
    fn default() -> Self {
        ResilientConfig {
            connect_timeout: Duration::from_secs(2),
            max_reconnects: 5,
            base_delay: Duration::from_millis(20),
            max_delay: Duration::from_millis(500),
            seed: 0,
            resend_frames: 1024,
            reply_timeout: Duration::from_secs(5),
        }
    }
}

/// Client-side resilience counters (the daemon-side mirror lives in
/// [`crate::stats::GatewayStats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResilientStats {
    /// Successful reconnect+RESUME cycles.
    pub reconnects: u64,
    /// Buffered frames re-sent after a resume.
    pub retransmitted_frames: u64,
    /// Unacked frames evicted from the full resend buffer.
    pub resend_evicted: u64,
}

/// One buffered (sent but not yet acked) frame.
struct BufferedFrame {
    stream_id: u32,
    seq: u32,
    bytes: Vec<u8>,
}

/// What the background reader learned from the daemon's control lines.
#[derive(Default)]
struct LinkState {
    /// Full transcript, in arrival order (uplink + control lines).
    lines: Vec<String>,
    /// Session token from the last `hello` line.
    session: Option<u32>,
    /// Per-stream `next_seq` cursors from the last `resumed` line
    /// (`None` until one arrives after a RESUME).
    resume_cursors: Option<BTreeMap<u32, u32>>,
    /// Latest acked seq per stream (daemon `ack` lines).
    acks: BTreeMap<u32, u32>,
    /// Session lines received (uplink / end / ack / stats / error) —
    /// the delivery cursor a RESUME reports so the daemon replays
    /// exactly the lines lost with a dead connection. The counted set
    /// must match what the daemon's session log records.
    session_lines: u64,
    /// Nonce of the most recent `pong` line.
    last_pong: Option<u32>,
    /// `goaway` lines seen (a RESUME of an expired session is answered
    /// with `goaway "unknown-session"` instead of `resumed`).
    goaways: u64,
}

struct Link {
    state: Mutex<LinkState>,
    cv: Condvar,
}

impl Link {
    fn lock_state(&self) -> MutexGuard<'_, LinkState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// Extracts the unsigned integer following `"key":` in a JSON line
/// (the daemon's control lines are flat enough that this never needs a
/// real parser).
fn json_u64(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let at = line.find(&pat)? + pat.len();
    let digits: &str = line[at..]
        .split(|c: char| !c.is_ascii_digit())
        .next()
        .unwrap_or("");
    digits.parse().ok()
}

/// Parses the `streams` array of a `resumed` line into
/// stream → next_seq cursors.
fn parse_resumed_streams(line: &str) -> BTreeMap<u32, u32> {
    let mut out = BTreeMap::new();
    for part in line.split("{\"stream\":").skip(1) {
        let id = part
            .split(|c: char| !c.is_ascii_digit())
            .next()
            .and_then(|d| d.parse::<u32>().ok());
        let next = json_u64(part, "next_seq").map(|v| v as u32);
        if let (Some(id), Some(next)) = (id, next) {
            out.insert(id, next);
        }
    }
    out
}

fn spawn_link_reader(read_half: TcpStream, link: Arc<Link>) -> JoinHandle<()> {
    thread::spawn(move || {
        for line in BufReader::new(read_half).lines() {
            let Ok(l) = line else { break };
            let mut st = link.lock_state();
            if l.starts_with("{\"type\":\"hello\"") {
                st.session = json_u64(&l, "session").map(|v| v as u32);
            } else if l.starts_with("{\"type\":\"resumed\"") {
                st.resume_cursors = Some(parse_resumed_streams(&l));
            } else if l.starts_with("{\"type\":\"ack\"") {
                if let (Some(s), Some(q)) = (json_u64(&l, "stream"), json_u64(&l, "seq")) {
                    st.acks.insert(s as u32, q as u32);
                }
            } else if l.starts_with("{\"type\":\"pong\"") {
                st.last_pong = json_u64(&l, "nonce").map(|v| v as u32);
            } else if l.starts_with("{\"type\":\"goaway\"") {
                st.goaways += 1;
            }
            if l.starts_with("{\"type\":\"uplink\"")
                || l.starts_with("{\"type\":\"end\"")
                || l.starts_with("{\"type\":\"ack\"")
                || l.starts_with("{\"type\":\"stats\"")
                || l.starts_with("{\"type\":\"error\"")
            {
                st.session_lines += 1;
            }
            st.lines.push(l);
            drop(st);
            link.cv.notify_all();
        }
        link.cv.notify_all();
    })
}

/// The fault-tolerant gateway client: HELLO on connect, seeded-jitter
/// exponential-backoff reconnect with RESUME, and a bounded
/// resend-from-last-acked frame buffer. Any send that hits a dead
/// socket transparently reconnects, resumes the session, and resends
/// the unacked tail — the daemon's seq cursors make the resend
/// idempotent, so the uplink transcript matches a clean run.
pub struct ResilientClient {
    addr: SocketAddr,
    cfg: ResilientConfig,
    sock: TcpStream,
    reader: Option<JoinHandle<()>>,
    link: Arc<Link>,
    token: u32,
    next_seq: BTreeMap<u32, u32>,
    buffer: VecDeque<BufferedFrame>,
    rng: u64,
    stats: ResilientStats,
}

impl ResilientClient {
    /// Connects, performs the HELLO handshake, and waits for the
    /// daemon's session token.
    pub fn connect<A: ToSocketAddrs>(addr: A, cfg: ResilientConfig) -> io::Result<Self> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "no address"))?;
        let sock = connect_with_backoff(addr, cfg.connect_timeout)?;
        sock.set_nodelay(true).ok();
        let read_half = sock.try_clone()?;
        let link = Arc::new(Link {
            state: Mutex::new(LinkState::default()),
            cv: Condvar::new(),
        });
        let reader = spawn_link_reader(read_half, Arc::clone(&link));
        let mut client = ResilientClient {
            addr,
            cfg,
            sock,
            reader: Some(reader),
            link,
            token: 0,
            next_seq: BTreeMap::new(),
            buffer: VecDeque::new(),
            rng: cfg.seed ^ 0x9e37_79b9_7f4a_7c15,
            stats: ResilientStats::default(),
        };
        client.sock.write_all(&encode_frame(&Frame::hello()))?;
        let token = client.wait_state(cfg.reply_timeout, |st| st.session);
        match token {
            Some(t) => {
                client.token = t;
                Ok(client)
            }
            None => Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "no hello reply from daemon",
            )),
        }
    }

    /// The daemon-assigned session token.
    pub fn session_token(&self) -> u32 {
        self.token
    }

    /// Client-side resilience counters.
    pub fn stats(&self) -> ResilientStats {
        self.stats
    }

    /// Streams `samples` as DATA frames (see
    /// [`GatewayClient::send_samples`]), surviving daemon bounces via
    /// reconnect+RESUME+resend. Returns the number of frames sent
    /// (retransmissions not counted).
    pub fn send_samples(
        &mut self,
        stream_id: u32,
        samples: &[Complex32],
        chunk_len: usize,
    ) -> io::Result<u32> {
        let chunk_len = chunk_len.clamp(1, MAX_FRAME_SAMPLES);
        let mut sent = 0;
        for chunk in samples.chunks(chunk_len) {
            let seq = self.bump_seq(stream_id);
            let frame = Frame::data(stream_id, seq, chunk.to_vec());
            self.ship(stream_id, seq, encode_frame(&frame))?;
            sent += 1;
        }
        Ok(sent)
    }

    /// END_STREAM with resend protection: if the END frame (or any
    /// unacked DATA before it) dies with the connection, the resume
    /// path replays it.
    pub fn end_stream(&mut self, stream_id: u32) -> io::Result<()> {
        let seq = self.bump_seq(stream_id);
        let bytes = encode_frame(&Frame::end_stream(stream_id, seq));
        self.ship(stream_id, seq, bytes)
    }

    /// PING keepalive: sends the nonce and waits for the matching pong
    /// line. Returns whether it arrived within the reply timeout.
    pub fn ping(&mut self, nonce: u32) -> io::Result<bool> {
        {
            let mut st = self.link.lock_state();
            st.last_pong = None;
        }
        self.sock.write_all(&encode_frame(&Frame::ping(nonce)))?;
        Ok(self
            .wait_state(self.cfg.reply_timeout, |st| {
                st.last_pong.filter(|&n| n == nonce)
            })
            .is_some())
    }

    /// STATS: the daemon replies with one stats JSON line (collected in
    /// the transcript).
    pub fn request_stats(&mut self) -> io::Result<()> {
        self.sock.write_all(&encode_frame(&Frame::stats()))
    }

    /// SHUTDOWN: asks the whole daemon to shut down gracefully.
    pub fn request_shutdown(&mut self) -> io::Result<()> {
        self.sock.write_all(&encode_frame(&Frame::shutdown()))
    }

    /// Blocks until every buffered frame has been acked by the daemon,
    /// reconnecting and resending whenever ack progress stalls for a
    /// full reply timeout. This is what turns "the write syscall
    /// succeeded" into "the daemon consumed it": a send swallowed by a
    /// dying socket's kernel buffer is detected here and replayed.
    pub fn drain(&mut self) -> io::Result<()> {
        let mut attempts_left = self.cfg.max_reconnects.max(1);
        loop {
            self.prune_acked();
            if self.buffer.is_empty() {
                return Ok(());
            }
            let before = {
                let st = self.link.lock_state();
                st.acks.clone()
            };
            if self.wait_until(self.cfg.reply_timeout, |st| st.acks != before) {
                continue;
            }
            if attempts_left == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "unacked frames after reconnect attempts",
                ));
            }
            attempts_left -= 1;
            self.reconnect()?;
        }
    }

    /// Clean close: waits for every buffered frame to be acked
    /// (reconnecting if needed), sends GOAWAY (so the daemon flushes
    /// instead of parking the session), then returns the full
    /// transcript.
    pub fn finish(mut self) -> Vec<String> {
        let _ = self.drain();
        let _ = self.sock.write_all(&encode_frame(&Frame::goaway()));
        let _ = self.sock.shutdown(Shutdown::Write);
        if let Some(h) = self.reader.take() {
            let _ = h.join();
        }
        let mut st = self.link.lock_state();
        std::mem::take(&mut st.lines)
    }

    fn bump_seq(&mut self, stream_id: u32) -> u32 {
        let seq = self.next_seq.entry(stream_id).or_insert(0);
        let cur = *seq;
        *seq = seq.wrapping_add(1);
        cur
    }

    /// Buffers the frame, trims acked/overflowed entries, writes it,
    /// and falls back to the reconnect path when the socket is dead.
    fn ship(&mut self, stream_id: u32, seq: u32, bytes: Vec<u8>) -> io::Result<()> {
        self.prune_acked();
        self.buffer.push_back(BufferedFrame {
            stream_id,
            seq,
            bytes,
        });
        while self.buffer.len() > self.cfg.resend_frames.max(1) {
            self.buffer.pop_front();
            self.stats.resend_evicted += 1;
        }
        let tail = match self.buffer.back() {
            Some(f) => f.bytes.clone(),
            None => return Ok(()),
        };
        if self.sock.write_all(&tail).is_ok() {
            return Ok(());
        }
        // Dead socket: the reconnect path resends the whole unacked
        // buffer (this frame included) after RESUME.
        self.reconnect()
    }

    /// Drops buffered frames the daemon has acked (per-stream cursor,
    /// u32-wraparound aware).
    fn prune_acked(&mut self) {
        let acks = {
            let st = self.link.lock_state();
            st.acks.clone()
        };
        self.buffer.retain(|f| match acks.get(&f.stream_id) {
            // Keep the frame only while it is ahead of the acked seq.
            Some(&acked) => f.seq.wrapping_sub(acked) < 1 << 31 && f.seq != acked,
            None => true,
        });
    }

    /// Seeded-jitter exponential backoff: `base * 2^attempt` capped at
    /// `max_delay`, plus an LCG-jittered fraction of `base`.
    fn backoff_delay(&mut self, attempt: u32) -> Duration {
        self.rng = self
            .rng
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let base = self.cfg.base_delay.max(Duration::from_millis(1));
        let exp = base
            .saturating_mul(1u32 << attempt.min(16))
            .min(self.cfg.max_delay);
        let jitter_ms = (self.rng >> 33) % (base.as_millis().max(1) as u64);
        exp + Duration::from_millis(jitter_ms)
    }

    /// Reconnect loop: backoff, dial, RESUME the session, resend every
    /// buffered frame at/ahead of the daemon's per-stream cursors.
    fn reconnect(&mut self) -> io::Result<()> {
        'attempts: for attempt in 0..self.cfg.max_reconnects.max(1) {
            // Force the old reader to EOF so its lines are all in the
            // transcript before the new connection starts appending.
            let _ = self.sock.shutdown(Shutdown::Both);
            if let Some(h) = self.reader.take() {
                let _ = h.join();
            }
            thread::sleep(self.backoff_delay(attempt));
            let Ok(sock) = connect_with_backoff(self.addr, self.cfg.connect_timeout) else {
                continue;
            };
            sock.set_nodelay(true).ok();
            let Ok(read_half) = sock.try_clone() else {
                continue;
            };
            self.sock = sock;
            self.reader = Some(spawn_link_reader(read_half, Arc::clone(&self.link)));
            let (goaways_before, delivered) = {
                let mut st = self.link.lock_state();
                st.resume_cursors = None;
                (st.goaways, st.session_lines)
            };
            if self
                .sock
                .write_all(&encode_frame(&Frame::resume(self.token, delivered as u32)))
                .is_err()
            {
                continue;
            }
            let answered = self.wait_until(self.cfg.reply_timeout, |st| {
                st.resume_cursors.is_some() || st.goaways > goaways_before
            });
            if !answered {
                continue;
            }
            let cursors = {
                let mut st = self.link.lock_state();
                st.resume_cursors.take()
            };
            let Some(cursors) = cursors else {
                // goaway "unknown-session". Either the grace window
                // expired (the daemon dropped our state for good) or —
                // right after a disconnect — the old connection's
                // decoder is still draining its queue and has not
                // parked the session yet. The latter heals on its own,
                // so retry with backoff and only give up when the
                // attempts run out.
                continue;
            };
            // Resend the unacked tail: everything the daemon's cursors
            // say it has not consumed yet. Streams the daemon never saw
            // are resent in full.
            let mut resent = 0u64;
            for f in &self.buffer {
                let needed = match cursors.get(&f.stream_id) {
                    Some(&next) => f.seq.wrapping_sub(next) < 1 << 31,
                    None => true,
                };
                if !needed {
                    continue;
                }
                if self.sock.write_all(&f.bytes).is_err() {
                    continue 'attempts;
                }
                resent += 1;
            }
            self.stats.reconnects += 1;
            self.stats.retransmitted_frames += resent;
            return Ok(());
        }
        Err(io::Error::new(
            io::ErrorKind::ConnectionAborted,
            "gateway unreachable after reconnect attempts",
        ))
    }

    /// Blocks until `f` yields `Some` on the link state, or `timeout`.
    fn wait_state<T, F: Fn(&LinkState) -> Option<T>>(&self, timeout: Duration, f: F) -> Option<T> {
        // tnb-lint: allow(TNB-DET01) -- control-plane reply deadline, never on the decode path
        let deadline = Instant::now() + timeout;
        let mut st = self.link.lock_state();
        loop {
            if let Some(v) = f(&st) {
                return Some(v);
            }
            // tnb-lint: allow(TNB-DET01) -- control-plane reply deadline, never on the decode path
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (g, _) = self
                .link
                .cv
                .wait_timeout(st, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            st = g;
        }
    }

    fn wait_until<F: Fn(&LinkState) -> bool>(&self, timeout: Duration, pred: F) -> bool {
        self.wait_state(timeout, |st| if pred(st) { Some(()) } else { None })
            .is_some()
    }
}

impl Drop for ResilientClient {
    fn drop(&mut self) {
        let _ = self.sock.shutdown(Shutdown::Both);
        if let Some(h) = self.reader.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_u64_extracts_flat_numbers() {
        let line = r#"{"type":"ack","stream":7,"seq":4123}"#;
        assert_eq!(json_u64(line, "stream"), Some(7));
        assert_eq!(json_u64(line, "seq"), Some(4123));
        assert_eq!(json_u64(line, "nonce"), None);
    }

    #[test]
    fn resumed_line_parses_every_stream_cursor() {
        let line = concat!(
            "{\"type\":\"resumed\",\"session\":3,\"streams\":[",
            "{\"stream\":0,\"next_seq\":12,\"uplinked\":2},",
            "{\"stream\":9,\"next_seq\":0,\"uplinked\":0}]}"
        );
        let cursors = parse_resumed_streams(line);
        assert_eq!(cursors.len(), 2);
        assert_eq!(cursors.get(&0), Some(&12));
        assert_eq!(cursors.get(&9), Some(&0));
        assert!(
            parse_resumed_streams("{\"type\":\"resumed\",\"session\":1,\"streams\":[]}").is_empty()
        );
    }

    #[test]
    fn backoff_schedule_is_deterministic_per_seed() {
        let delays = |seed: u64| -> Vec<Duration> {
            let cfg = ResilientConfig {
                seed,
                ..ResilientConfig::default()
            };
            // Build the schedule without a socket: only the RNG and the
            // config feed it.
            let mut rng = cfg.seed ^ 0x9e37_79b9_7f4a_7c15;
            (0..5)
                .map(|attempt: u32| {
                    rng = rng
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let base = cfg.base_delay.max(Duration::from_millis(1));
                    let exp = base
                        .saturating_mul(1u32 << attempt.min(16))
                        .min(cfg.max_delay);
                    exp + Duration::from_millis((rng >> 33) % (base.as_millis().max(1) as u64))
                })
                .collect()
        };
        assert_eq!(delays(42), delays(42), "same seed, same schedule");
        assert_ne!(delays(42), delays(43), "different seed, different jitter");
        // The exponential envelope grows and respects the cap.
        let d = delays(7);
        let base = ResilientConfig::default().base_delay;
        let cap = ResilientConfig::default().max_delay + base;
        assert!(d.iter().all(|&x| x <= cap), "{d:?}");
        assert!(d[4] >= Duration::from_millis(320 - 20), "{d:?}");
    }
}
