//! Golden-fixture suite: every lint rule has a minimal bad snippet in
//! `tests/fixtures/` declaring, in `//@` header lines, the scope it is
//! analyzed under and the exact `(rule, line)` diagnostics it must
//! produce. The suite fails on missing *and* on surplus diagnostics, so
//! rule regressions in either direction are caught.

use std::path::{Path, PathBuf};
use tnb_xtask::rules::{FileKind, FileScope};
use tnb_xtask::{analyze_source, layering, run_lint};

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// Parsed `//@` header: the scope to analyze under and the expected
/// `(rule, 1-based line)` pairs (empty for `//@ expect: none`).
fn parse_header(name: &str, content: &str) -> (FileScope, Vec<(String, usize)>) {
    let mut crate_name = None;
    let mut kind = None;
    let mut expects = Vec::new();
    for line in content.lines() {
        let Some(rest) = line.strip_prefix("//@ ") else {
            continue;
        };
        let (key, value) = rest
            .split_once(':')
            .unwrap_or_else(|| panic!("{name}: malformed header line `{line}`"));
        let value = value.trim();
        match key.trim() {
            "crate" => crate_name = Some(value.to_string()),
            "kind" => {
                kind = Some(match value {
                    "lib" => FileKind::LibSrc,
                    "test" => FileKind::TestCode,
                    other => panic!("{name}: unknown kind `{other}`"),
                })
            }
            "expect" if value == "none" => {}
            "expect" => {
                let (rule, at) = value
                    .split_once('@')
                    .unwrap_or_else(|| panic!("{name}: malformed expect `{value}`"));
                expects.push((
                    rule.trim().to_string(),
                    at.trim()
                        .parse()
                        .unwrap_or_else(|_| panic!("{name}: bad line in `{value}`")),
                ));
            }
            other => panic!("{name}: unknown header key `{other}`"),
        }
    }
    let scope = FileScope {
        crate_name: crate_name.unwrap_or_else(|| panic!("{name}: missing `//@ crate:`")),
        kind: kind.unwrap_or_else(|| panic!("{name}: missing `//@ kind:`")),
    };
    (scope, expects)
}

#[test]
fn every_fixture_produces_exactly_its_expected_diagnostics() {
    let dir = fixtures_dir();
    let mut names: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("fixtures dir")
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
        .collect();
    names.sort();
    assert!(
        names.len() >= 18,
        "expected at least one fixture per source rule, found {}",
        names.len()
    );
    for path in names {
        let name = path.file_name().unwrap().to_string_lossy().to_string();
        let content = std::fs::read_to_string(&path).expect("read fixture");
        let (scope, mut expected) = parse_header(&name, &content);
        let mut actual: Vec<(String, usize)> = analyze_source(&name, &content, &scope)
            .into_iter()
            .map(|d| (d.rule.to_string(), d.line))
            .collect();
        expected.sort();
        actual.sort();
        assert_eq!(
            actual, expected,
            "{name}: diagnostics mismatch (left = actual, right = expected)"
        );
    }
}

#[test]
fn diagnostics_are_span_accurate_and_ci_greppable() {
    let content = std::fs::read_to_string(fixtures_dir().join("det01_wall_clock.rs")).unwrap();
    let scope = FileScope {
        crate_name: "tnb-core".into(),
        kind: FileKind::LibSrc,
    };
    let diags = analyze_source("det01_wall_clock.rs", &content, &scope);
    assert_eq!(diags.len(), 1);
    let d = &diags[0];
    // Column points at the `Instant::now` token itself (1-based).
    let line = content.lines().nth(d.line - 1).unwrap();
    assert_eq!(
        &line[d.col - 1..d.col - 1 + "Instant::now".len()],
        "Instant::now"
    );
    assert_eq!(
        d.render(),
        format!("det01_wall_clock.rs:{}: [TNB-DET01] {}", d.line, d.message)
    );
}

fn load_manifest(file: &str) -> layering::Manifest {
    let content = std::fs::read_to_string(fixtures_dir().join("layering").join(file)).unwrap();
    layering::parse_manifest(file, &content).expect("parse fixture manifest")
}

#[test]
fn layering_fixture_bad_dependency() {
    let manifests = [load_manifest("bad_dep_core.toml")];
    let mut diags = Vec::new();
    layering::check(&manifests, &mut diags);
    let got: Vec<(&str, usize)> = diags.iter().map(|d| (d.rule, d.line)).collect();
    // Only the tnb-sim line violates; tnb-dsp is allowed.
    assert_eq!(got, vec![("TNB-LAYER01", 8)]);
}

#[test]
fn layering_fixture_cycle() {
    let manifests = [
        load_manifest("cycle_extras.toml"),
        load_manifest("cycle_widgets.toml"),
    ];
    let mut diags = Vec::new();
    layering::check(&manifests, &mut diags);
    let mut got: Vec<(&str, &str, usize)> = diags
        .iter()
        .map(|d| (d.rule, d.file.as_str(), d.line))
        .collect();
    got.sort();
    // The cycle is reported from both entry points, on each closing edge;
    // neither crate is in the ALLOWED table so there is no LAYER01 noise.
    assert_eq!(
        got,
        vec![
            ("TNB-LAYER02", "cycle_extras.toml", 8),
            ("TNB-LAYER02", "cycle_widgets.toml", 6),
        ]
    );
}

#[test]
fn workspace_tree_is_lint_clean() {
    // The zero-violation baseline is itself an invariant: a PR that
    // introduces a violation (or an analyzer change that misfires on the
    // real tree) fails this test even before the CI lint gate runs.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let root = root.canonicalize().expect("workspace root");
    let diags = run_lint(&root).expect("lint run");
    let rendered: Vec<String> = diags.iter().map(|d| d.render()).collect();
    assert!(
        rendered.is_empty(),
        "workspace is not lint-clean:\n{}",
        rendered.join("\n")
    );
}
