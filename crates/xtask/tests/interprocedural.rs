//! Red-flip regression tests for the interprocedural analyses: the
//! inferred hot-path coverage must actually be load-bearing. Each test
//! takes a *real* workspace source file, applies a one-line mutation a
//! careless PR could make, and asserts the lint flips red — proving the
//! `no_alloc_root` seeds plus effect propagation cover what the old
//! hand-annotated helper regions used to.

use std::path::{Path, PathBuf};
use tnb_xtask::{classify, lint_files, Diagnostic, LintInput};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root")
}

/// Lints one real workspace file (optionally mutated) on its own.
fn lint_one(rel: &str, content: String) -> Vec<Diagnostic> {
    lint_files(&[LintInput {
        rel_path: rel.to_string(),
        scope: classify(rel),
        content,
    }])
}

fn read(rel: &str) -> String {
    std::fs::read_to_string(workspace_root().join(rel)).expect("read workspace file")
}

/// Injects `stmt` as the first statement of `fn_name`'s body.
fn inject_into_fn(content: &str, fn_name: &str, stmt: &str) -> String {
    let sig_at = content
        .find(&format!("fn {fn_name}"))
        .unwrap_or_else(|| panic!("fn {fn_name} not found"));
    let brace = content[sig_at..]
        .find('{')
        .map(|o| sig_at + o)
        .expect("fn body opening brace");
    format!(
        "{}{{\n        {stmt}\n{}",
        &content[..brace],
        &content[brace + 1..]
    )
}

fn rules_of(diags: &[Diagnostic]) -> Vec<&str> {
    diags.iter().map(|d| d.rule).collect()
}

#[test]
fn hot_path_files_are_clean_as_checked_in() {
    for rel in [
        "crates/phy/src/demodulate.rs",
        "crates/core/src/sigcalc.rs",
        "crates/core/src/sync.rs",
        "crates/core/src/thrive/mod.rs",
        "crates/core/src/sic.rs",
    ] {
        let diags = lint_one(rel, read(rel));
        assert!(diags.is_empty(), "{rel} not clean: {diags:?}");
    }
}

#[test]
fn deleting_a_root_directive_flips_red() {
    // Demoting a registered root back to a plain `no_alloc` region must
    // be caught: the fn is in REQUIRED_NO_ALLOC_ROOTS.
    let rel = "crates/phy/src/demodulate.rs";
    let mutated = read(rel).replacen(
        "// tnb-lint: no_alloc_root -- full symbol path",
        "// tnb-lint: no_alloc -- full symbol path",
        1,
    );
    let diags = lint_one(rel, mutated);
    assert!(
        diags
            .iter()
            .any(|d| d.rule == "TNB-FLOW01" && d.message.contains("signal_vector_scratch")),
        "expected a TNB-FLOW01 for the demoted root, got {diags:?}"
    );
}

#[test]
fn transitive_alloc_in_dechirp_helper_flips_red() {
    // `dechirp_into` lost its hand-written `no_alloc` region; coverage
    // now flows from the roots that call it.
    let rel = "crates/phy/src/demodulate.rs";
    let mutated = inject_into_fn(&read(rel), "dechirp_into", "let leak = Vec::new();");
    let diags = lint_one(rel, mutated);
    assert!(
        diags
            .iter()
            .any(|d| d.rule == "TNB-FLOW01" && d.message.contains("dechirp_into")),
        "expected TNB-FLOW01 through dechirp_into, got {:?}",
        rules_of(&diags)
    );
}

#[test]
fn transitive_alloc_in_sigcalc_compute_flips_red() {
    let rel = "crates/core/src/sigcalc.rs";
    let mutated = inject_into_fn(&read(rel), "compute", "let leak = Vec::new();");
    let diags = lint_one(rel, mutated);
    assert!(
        diags
            .iter()
            .any(|d| d.rule == "TNB-FLOW01" && d.message.contains("symbol_vector")),
        "expected TNB-FLOW01 from root symbol_vector, got {:?}",
        rules_of(&diags)
    );
}

#[test]
fn transitive_alloc_in_thrive_fallback_flips_red() {
    let rel = "crates/core/src/thrive/mod.rs";
    let mutated = inject_into_fn(&read(rel), "fallback_bin", "let leak = Vec::new();");
    let diags = lint_one(rel, mutated);
    assert!(
        diags.iter().any(|d| d.rule == "TNB-FLOW01"),
        "expected TNB-FLOW01 through fallback_bin, got {:?}",
        rules_of(&diags)
    );
}

#[test]
fn transitive_alloc_behind_sic_root_flips_red() {
    // A new allocating helper called from a SIC root: the root's own
    // body stays clean (the call is just a call), but the helper's
    // allocation is reachable and must be flagged.
    let rel = "crates/core/src/sic.rs";
    let content = read(rel);
    let mutated = format!(
        "{}\nfn sic_leak_helper(v: &mut Vec<f32>) {{\n    let mut t = Vec::new();\n    t.push(0.0);\n    v.extend(t);\n}}\n",
        inject_into_fn(&content, "subtract_replica", "sic_leak_helper(&mut scratch);")
    );
    let diags = lint_one(rel, mutated);
    assert!(
        diags
            .iter()
            .any(|d| d.rule == "TNB-FLOW01" && d.message.contains("subtract_replica")),
        "expected TNB-FLOW01 from root subtract_replica, got {:?}",
        rules_of(&diags)
    );
}

#[test]
fn gateway_lock_files_are_cycle_free_as_checked_in() {
    for rel in [
        "crates/gateway/src/server.rs",
        "crates/gateway/src/client.rs",
    ] {
        let diags = lint_one(rel, read(rel));
        let locks: Vec<&Diagnostic> = diags
            .iter()
            .filter(|d| d.rule.starts_with("TNB-LOCK"))
            .collect();
        assert!(locks.is_empty(), "{rel} lock findings: {locks:?}");
    }
}

#[test]
fn swapping_gateway_lock_order_flips_red() {
    // `count_stale` takes the session table; synthesize a helper that
    // nests the queue lock inside it while `push` nests the other way.
    let rel = "crates/gateway/src/server.rs";
    let content = read(rel);
    let mutated = format!(
        "{content}\nimpl Gateway2 {{\n    fn bad_order(&self) {{\n        let t = self.inner.lock();\n        let q = self.state.lock();\n        drop(q);\n        drop(t);\n    }}\n    fn good_order(&self) {{\n        let q = self.state.lock();\n        let t = self.inner.lock();\n        drop(t);\n        drop(q);\n    }}\n}}\n"
    );
    let diags = lint_one(rel, mutated);
    assert!(
        diags.iter().any(|d| d.rule == "TNB-LOCK01"),
        "expected a TNB-LOCK01 cycle, got {:?}",
        rules_of(&diags)
    );
}
