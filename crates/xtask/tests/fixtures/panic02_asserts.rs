//@ crate: tnb-phy
//@ kind: lib
//@ expect: TNB-PANIC02 @ 7

/// Length precondition (bad: assert aborts release builds too).
pub fn check_len(xs: &[u8], n: usize) {
    assert_eq!(xs.len(), n);
}
