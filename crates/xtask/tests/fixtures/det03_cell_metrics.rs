//@ crate: tnb-core
//@ kind: lib
//@ expect: TNB-DET03 @ 7

/// Per-worker hit counter (bad: Cell-based metrics outside tnb-metrics).
pub struct Hits {
    count: Cell<u64>,
}
