//@ crate: tnb-channel
//@ kind: lib
//@ expect: TNB-PANIC03 @ 7

/// First channel tap (bad: unwrap on potentially hostile input).
pub fn first_tap(taps: &[f32]) -> f32 {
    *taps.first().unwrap()
}
