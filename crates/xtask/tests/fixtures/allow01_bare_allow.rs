//@ crate: tnb-sim
//@ kind: lib
//@ expect: TNB-ALLOW01 @ 6

/// Wide helper (bad: doc comments are not a justification).
#[allow(clippy::too_many_arguments)]
pub fn wide(a: u8, b: u8, c: u8, d: u8, e: u8, f: u8, g: u8, h: u8) {}
