//@ crate: tnb-core
//@ kind: lib
//@ expect: TNB-LINT01 @ 7
//@ expect: TNB-LINT01 @ 10
//@ expect: TNB-LINT01 @ 13

// tnb-lint: allow(TNB-PANIC02)
pub fn reasonless() {}

// tnb-lint: allow(TNB-NOPE99) -- not a real rule
pub fn unknown_rule() {}

// tnb-lint: frobnicate
pub fn unknown_directive() {}
