//@ crate: tnb-phy
//@ kind: lib
//@ expect: TNB-FLOW01 @ 11

// tnb-lint: no_alloc_root -- warm-scratch symbol path (fixture)
pub fn hot(out: &mut Vec<f32>) {
    helper(out);
}

fn helper(out: &mut Vec<f32>) {
    let scratch = Vec::new();
    out.extend(scratch);
}
