//@ crate: tnb-gateway
//@ kind: lib
//@ expect: TNB-LOCK02 @ 8

impl Conn {
    fn flush_stats(&self, payload: &[u8]) {
        let st = self.state.lock();
        self.sock.write_all(payload);
        drop(st);
    }
}
