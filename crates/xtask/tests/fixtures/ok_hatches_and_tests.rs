//@ crate: tnb-core
//@ kind: lib
//@ expect: none

/// A documented precondition behind a justified escape hatch is clean.
pub fn checked(xs: &[u8], n: usize) {
    assert!(xs.len() >= n); // tnb-lint: allow(TNB-PANIC02) -- documented precondition
}

// SAFETY: the buffer outlives the call and the cast only reads the address.
pub fn covered(xs: &[u64]) -> usize {
    unsafe { xs.as_ptr() as usize }
}

/// Amortized growth of a warm scratch buffer is fine in a hot region.
// tnb-lint: no_alloc -- warm buffers only
pub fn warm(buf: &mut Vec<f32>, x: f32) {
    buf.push(x);
}

/// A justified flow hatch: an allowed allocation seed is covered for
/// the transitive story too — nothing propagates to the root.
// tnb-lint: no_alloc_root -- fixture hot entry
pub fn hot_entry(buf: &mut Vec<f32>) {
    cold_fill(buf);
}

fn cold_fill(buf: &mut Vec<f32>) {
    let seed = Vec::new(); // tnb-lint: allow(TNB-FLOW01) -- cold-start fill, runs once before the symbol loop
    buf.extend(seed);
}

impl Sink {
    /// A justified locking hatch on the blocking call itself.
    fn flush_locked(&self) {
        let g = self.state.lock();
        self.out.flush(); // tnb-lint: allow(TNB-LOCK02) -- fixture: flushing under the lock is deliberate
        drop(g);
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_out_of_scope_for_decode_rules() {
        assert_eq!(1 + 1, 2);
        let m: HashMap<u8, u8> = HashMap::new();
        drop(m);
    }
}
