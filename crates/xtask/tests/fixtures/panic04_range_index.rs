//@ crate: tnb-core
//@ kind: lib
//@ expect: TNB-PANIC04 @ 8

/// Hot window slice (bad: a short trace panics mid-batch; use .get()).
// tnb-lint: no_alloc
pub fn window(xs: &[f32], s: usize, l: usize) -> f32 {
    xs[s..s + l].iter().sum()
}
