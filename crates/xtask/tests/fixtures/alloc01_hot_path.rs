//@ crate: tnb-core
//@ kind: lib
//@ expect: TNB-ALLOC01 @ 8

/// Hot symbol loop (bad: fresh heap allocation per symbol).
// tnb-lint: no_alloc
pub fn hot(n: usize) -> Vec<f32> {
    let buf = vec![0.0f32; n];
    buf
}
