//@ crate: tnb-dsp
//@ kind: lib
//@ expect: TNB-PANIC01 @ 7

/// Unfinished branch (bad: panic macro in a panic-free crate).
pub fn fold(kind: u8) -> u32 {
    todo!("fold variant {kind}")
}
