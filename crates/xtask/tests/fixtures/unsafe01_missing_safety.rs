//@ crate: tnb-dsp
//@ kind: lib
//@ expect: TNB-UNSAFE01 @ 7

/// Reinterprets a buffer (bad: missing soundness comment).
pub fn reinterpret(xs: &[u64]) -> &[u32] {
    unsafe { std::slice::from_raw_parts(xs.as_ptr() as *const u32, xs.len() * 2) }
}
