//@ crate: tnb-core
//@ kind: lib
//@ expect: TNB-DET01 @ 7

/// Timestamps a decode pass (bad: wall clock in the decode path).
pub fn stamp_pass() -> u64 {
    let t0 = Instant::now();
    t0.elapsed().as_nanos() as u64
}
