//@ crate: tnb-gateway
//@ kind: lib
//@ expect: TNB-PANIC03 @ 11
//@ expect: TNB-FLOW02 @ 11

pub fn api(v: Option<u32>) -> u32 {
    helper(v)
}

fn helper(v: Option<u32>) -> u32 {
    v.unwrap()
}
