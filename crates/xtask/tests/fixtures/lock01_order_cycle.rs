//@ crate: tnb-gateway
//@ kind: lib
//@ expect: TNB-LOCK01 @ 8

impl Pair {
    fn forward(&self) {
        let a = self.alpha.lock();
        let b = self.beta.lock();
        drop(b);
        drop(a);
    }

    fn backward(&self) {
        let b = self.beta.lock();
        let a = self.alpha.lock();
        drop(a);
        drop(b);
    }
}
