//@ crate: tnb-phy
//@ kind: test
//@ expect: none

/// Integration-test helpers may unwrap and assert freely.
pub fn helper(xs: &[u8]) -> u8 {
    assert!(!xs.is_empty());
    xs.first().copied().unwrap()
}
