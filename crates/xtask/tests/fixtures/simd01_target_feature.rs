//@ crate: tnb-dsp
//@ kind: lib
//@ expect: TNB-SIMD01 @ 14

/// In a no_alloc region: the hot-path rules cover the body (good).
// tnb-lint: no_alloc
#[target_feature(enable = "avx2")]
/// SAFETY: caller checked AVX2.
pub unsafe fn covered(x: &mut [f32]) {
    // SAFETY: in-bounds by construction.
    unsafe { *x.get_unchecked_mut(0) = 1.0 };
}

#[target_feature(enable = "avx2")]
/// SAFETY: caller checked AVX2.
pub unsafe fn uncovered(x: &mut [f32]) {
    // SAFETY: in-bounds by construction.
    unsafe { *x.get_unchecked_mut(0) = 2.0 };
}
