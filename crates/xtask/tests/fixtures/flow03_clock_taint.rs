//@ crate: tnb-core
//@ kind: lib
//@ expect: TNB-FLOW03 @ 7
//@ expect: TNB-DET01 @ 11

pub fn decode_step(x: u32) -> u32 {
    stamp(x)
}

fn stamp(x: u32) -> u32 {
    let _t0 = Instant::now();
    x
}
