//@ crate: tnb-phy
//@ kind: lib
//@ expect: TNB-DET02 @ 7

/// Caches folded spectra keyed by bin (bad: randomized iteration order).
pub struct SpectrumCache {
    cache: HashMap<usize, f32>,
}
